package volatile

import (
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/stats"
)

// MoldableConfig describes a moldable-iterations sweep: the same grid
// geometry as SweepConfig, plus an allocation-policy spec that decides each
// iteration's task count at the iteration boundary (see ParseAllocPolicy
// for the accepted specs). With Alloc "fixed" every run is bit-identical to
// the rigid model, so the family's aggregates match RunSweep's exactly; the
// adaptive policies (maximum-iters, split-into, reshape) size iterations
// from the worker availability each heuristic's own schedule encounters, so
// their dfb rankings measure heuristic quality under a moldable workload.
type MoldableConfig struct {
	// Cells are the (n, ncom, wmin) combinations to cover. A cell's Tasks
	// value remains the application's natural shape: policies receive it as
	// Params.M and the first iteration of every run starts from the
	// policy's decision over it.
	Cells []Cell
	// Heuristics are the heuristic names to compare (default: all 17).
	Heuristics []string
	// Alloc is the allocation-policy spec ("fixed", "maximum-iters",
	// "split-into[:parts]", "reshape[:step]"). Empty means "fixed".
	Alloc string
	// Scenarios is the number of random scenarios per cell.
	Scenarios int
	// Trials is the number of availability draws per scenario.
	Trials int
	// Options tunes scenario generation.
	Options ScenarioOptions
	// Mode selects the engine time base (default ModeSlot).
	Mode Mode
	// Seed makes the whole sweep reproducible.
	Seed uint64
	// Workers bounds parallelism (default: GOMAXPROCS). Results are
	// bit-identical for every worker count.
	Workers int
	// Progress, when non-nil, receives (completedInstances, totalInstances);
	// see SweepConfig.Progress for the delivery contract.
	Progress func(done, total int)
	// Checkpoint, when non-nil, makes the sweep crash-safe exactly as in
	// SweepConfig: resumed runs are bit-identical to uninterrupted ones.
	Checkpoint *CheckpointConfig
	// Stop requests a graceful interrupt when closed.
	Stop <-chan struct{}
	// MaxRetries bounds per-instance rerun attempts after a failed run.
	MaxRetries int
	// RetryBackoff is the wait before the first retry, doubling per attempt.
	RetryBackoff time.Duration
	// ContinueOnError drops retry-exhausted instances instead of aborting.
	ContinueOnError bool
	// Faults injects deterministic failures for crash-safety tests.
	Faults *faultinject.Plan
}

// allocSpec resolves the config's policy spec, defaulting empty to "fixed".
func (cfg MoldableConfig) allocSpec() string {
	if cfg.Alloc == "" {
		return "fixed"
	}
	return cfg.Alloc
}

// ConfigDigest returns the moldable sweep's canonical content address; see
// SweepConfig.ConfigDigest. The allocation policy's canonical name is part
// of the digest, so sweeps differing only in policy (or policy parameter)
// never share checkpoints or cached results.
func (cfg MoldableConfig) ConfigDigest() (string, error) {
	heuristics, err := sweepHeuristics(cfg.Cells, cfg.Scenarios, cfg.Trials, cfg.Heuristics)
	if err != nil {
		return "", err
	}
	pol, err := ParseAllocPolicy(cfg.allocSpec())
	if err != nil {
		return "", err
	}
	return sweepConfigDigest("moldable", cfg.Cells, heuristics,
		cfg.Scenarios, cfg.Trials, cfg.Options, cfg.Mode, cfg.Seed,
		"alloc "+pol.Name()), nil
}

// MoldableSweep executes a moldable-iterations sweep through the sharded,
// checkpointed pipeline shared with RunSweep: deterministic for a fixed
// config, bit-identical for every worker count, and resumable from a
// checkpoint. Each worker holds its own policy instance; stateful policies
// reset at every run boundary, so pooling them across the worker's runs
// changes nothing.
func MoldableSweep(cfg MoldableConfig) (*SweepResult, error) {
	heuristics, err := sweepHeuristics(cfg.Cells, cfg.Scenarios, cfg.Trials, cfg.Heuristics)
	if err != nil {
		return nil, err
	}
	spec := cfg.allocSpec()
	pol, err := ParseAllocPolicy(spec)
	if err != nil {
		return nil, err
	}
	return runSharded(shardedSweep{
		cells:     cfg.Cells,
		scenarios: cfg.Scenarios,
		trials:    cfg.Trials,
		options:   cfg.Options,
		seed:      cfg.Seed,
		workers:   cfg.Workers,
		progress:  cfg.Progress,
		control: sweepControl{
			digest: sweepConfigDigest("moldable", cfg.Cells, heuristics,
				cfg.Scenarios, cfg.Trials, cfg.Options, cfg.Mode, cfg.Seed,
				"alloc "+pol.Name()),
			checkpoint:      cfg.Checkpoint,
			stop:            cfg.Stop,
			faults:          cfg.Faults,
			maxRetries:      cfg.MaxRetries,
			retryBackoff:    cfg.RetryBackoff,
			continueOnError: cfg.ContinueOnError,
		},
		newRunner: func() instanceRunner {
			rn := NewRunner()
			rn.SetMode(cfg.Mode)
			// Per-worker policy instance: stateful policies must not be
			// shared between goroutines. The spec already parsed above, so
			// a failure here is unreachable; surface it per instance anyway
			// rather than panicking inside the pool.
			wpol, perr := ParseAllocPolicy(spec)
			return func(scn *Scenario, cellIdx, scenIdx, trialIdx int, ir *stats.InstanceResult) (int, error) {
				if perr != nil {
					return 0, perr
				}
				trialSeed := deriveSeed(cfg.Seed, uint64(cellIdx), uint64(scenIdx), uint64(trialIdx))
				nCens := 0
				for _, h := range heuristics {
					res, err := scn.RunAllocWith(rn, h, wpol, trialSeed)
					if err != nil {
						return 0, fmt.Errorf("volatile: %s on %s: %w", h, scn.inner.Name, err)
					}
					ir.Makespans[h] = res.Makespan
					if !res.Completed {
						ir.Censored[h] = true
						nCens++
					}
				}
				return nCens, nil
			}
		},
	})
}

// MoldableSweepConfig builds a Table 2-shaped moldable sweep: the full
// Table 1 grid under the given allocation policy, with the given per-cell
// scenario and trial counts.
func MoldableSweepConfig(alloc string, scenarios, trials int, seed uint64) MoldableConfig {
	return MoldableConfig{
		Cells:     PaperGrid(),
		Alloc:     alloc,
		Scenarios: scenarios,
		Trials:    trials,
		Seed:      seed,
	}
}
