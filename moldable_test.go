package volatile

import (
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// moldableTestConfig is the small moldable sweep the determinism and
// crash/resume properties grind through: 2 cells × 3 scenarios = 6 chunks
// under the maximum-iters policy (the one whose decisions depend most on
// observed availability, so any nondeterminism in the decision inputs
// would show here first).
func moldableTestConfig() MoldableConfig {
	return MoldableConfig{
		Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}, {Tasks: 8, Ncom: 4, Wmin: 2}},
		Heuristics: []string{"emct", "mct*", "random2w"},
		Alloc:      "maximum-iters",
		Scenarios:  3,
		Trials:     2,
		Seed:       1234,
	}
}

// goldenMoldableDigest is the SHA-256 of the formatted output of
// moldableTestConfig's sweep, captured when the moldable family landed.
// It is the family's regression anchor: engine or policy changes that move
// it are behavioural changes, not refactors.
const goldenMoldableDigest = "3de61fe543eed972518d83176d0da24f624d56c98175941dc32ea979199dfc72"

// TestMoldableFixedMatchesRunSweep pins the bridge between the moldable
// family and the rigid goldens: under the "fixed" policy (explicit or
// defaulted) MoldableSweep must produce the exact RunSweep result — same
// instances, same aggregates, bit for bit.
func TestMoldableFixedMatchesRunSweep(t *testing.T) {
	base := resumeTestConfig()
	ref, err := RunSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, alloc := range []string{"fixed", ""} {
		res, err := MoldableSweep(MoldableConfig{
			Cells:      base.Cells,
			Heuristics: base.Heuristics,
			Alloc:      alloc,
			Scenarios:  base.Scenarios,
			Trials:     base.Trials,
			Seed:       base.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Format() != ref.Format() {
			t.Errorf("alloc=%q moldable sweep diverged from RunSweep:\nmoldable:\n%s\nrunsweep:\n%s",
				alloc, res.Format(), ref.Format())
		}
	}
}

// TestMoldableSweepGoldenAndWorkerDeterminism locks the moldable family's
// numeric output under an adaptive policy and requires every worker count
// to reproduce it: the policy's decision inputs (UP counts at each
// iteration boundary) must be a pure function of the instance, never of
// scheduling across goroutines.
func TestMoldableSweepGoldenAndWorkerDeterminism(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		cfg := moldableTestConfig()
		cfg.Workers = workers
		res, err := MoldableSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Digest(); got != goldenMoldableDigest {
			t.Errorf("workers=%d moldable digest drifted:\n got  %s\n want %s\noutput:\n%s",
				workers, got, goldenMoldableDigest, res.Format())
		}
	}
}

// TestMoldableSweepCrossModeAndPolicies smoke-runs every policy family in
// both engine time bases and checks the family invariants: runs complete,
// and each policy's digest is internally reproducible.
func TestMoldableSweepCrossModeAndPolicies(t *testing.T) {
	for _, alloc := range []string{"fixed", "maximum-iters", "split-into:3", "reshape:1"} {
		for _, mode := range []Mode{ModeSlot, ModeEvent} {
			cfg := moldableTestConfig()
			cfg.Alloc = alloc
			cfg.Mode = mode
			cfg.Scenarios = 1
			res, err := MoldableSweep(cfg)
			if err != nil {
				t.Fatalf("alloc=%s mode=%v: %v", alloc, mode, err)
			}
			if res.Instances == 0 {
				t.Fatalf("alloc=%s mode=%v aggregated no instances", alloc, mode)
			}
			again, err := MoldableSweep(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if again.Digest() != res.Digest() {
				t.Errorf("alloc=%s mode=%v not reproducible: %s != %s", alloc, mode, again.Digest(), res.Digest())
			}
		}
	}
}

// TestMoldableSweepCrashResume extends the crash/resume property to the
// moldable pipeline: a sweep killed by an injected committer crash at any
// boundary and resumed from its checkpoint is bit-identical to an
// uninterrupted run — including the stateful reshape policy, whose
// run-boundary reset is what makes re-running a chunk reproducible.
func TestMoldableSweepCrashResume(t *testing.T) {
	for _, alloc := range []string{"maximum-iters", "reshape:2"} {
		base := moldableTestConfig()
		base.Alloc = alloc
		ref, err := MoldableSweep(base)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Digest()
		for _, k := range []int{1, 3, 5} {
			path := filepath.Join(t.TempDir(), "moldable.ckpt")
			crashed := base
			crashed.Checkpoint = &CheckpointConfig{Path: path, Every: 1}
			crashed.Faults = &faultinject.Plan{CrashAfterChunks: k}
			if _, err := MoldableSweep(crashed); !errors.Is(err, faultinject.ErrCommitterCrash) {
				t.Fatalf("alloc=%s k=%d: crashed moldable sweep returned %v, want ErrCommitterCrash", alloc, k, err)
			}
			resumed := base
			resumed.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
			res, err := MoldableSweep(resumed)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Digest(); got != want {
				t.Fatalf("alloc=%s k=%d: resumed moldable sweep drifted: %s != %s", alloc, k, got, want)
			}
		}
	}
}

// TestMoldableConfigDigest pins the content-address contract: the policy
// (and its parameter) is part of the digest, so two sweeps differing only
// in policy never share checkpoints or cached results — and the digest of
// the defaulted spec equals the explicit "fixed" one.
func TestMoldableConfigDigest(t *testing.T) {
	base := moldableTestConfig()
	digests := make(map[string]string)
	for _, alloc := range []string{"fixed", "maximum-iters", "split-into:2", "split-into:3", "reshape:2"} {
		cfg := base
		cfg.Alloc = alloc
		d, err := cfg.ConfigDigest()
		if err != nil {
			t.Fatal(err)
		}
		for prev, pd := range digests {
			if pd == d {
				t.Errorf("alloc %q and %q share digest %s", alloc, prev, d)
			}
		}
		digests[alloc] = d
	}
	cfg := base
	cfg.Alloc = ""
	d, err := cfg.ConfigDigest()
	if err != nil {
		t.Fatal(err)
	}
	if d != digests["fixed"] {
		t.Errorf("empty alloc digest %s != explicit fixed %s", d, digests["fixed"])
	}

	// A moldable digest must also differ from the rigid family's on the
	// same grid: flavour and policy both feed the hash.
	sw := SweepConfig{Cells: base.Cells, Heuristics: base.Heuristics,
		Scenarios: base.Scenarios, Trials: base.Trials, Seed: base.Seed}
	swd, err := sw.ConfigDigest()
	if err != nil {
		t.Fatal(err)
	}
	if swd == digests["fixed"] {
		t.Error("moldable 'fixed' sweep shares its digest with RunSweep")
	}

	cfg = base
	cfg.Alloc = "split-into:0"
	if _, err := cfg.ConfigDigest(); err == nil || !strings.Contains(err.Error(), "positive integer") {
		t.Errorf("ConfigDigest accepted bad alloc spec: %v", err)
	}
	cfg.Alloc = "nope"
	if _, err := MoldableSweep(cfg); err == nil || !strings.Contains(err.Error(), "unknown alloc policy") {
		t.Errorf("MoldableSweep accepted unknown alloc spec: %v", err)
	}
}
