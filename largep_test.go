package volatile

import (
	"strings"
	"testing"
)

// TestScenarioOptionsValidate pins the option-validation contract: the zero
// value and the documented replication-disable switch are valid, every
// negative knob except MaxReplicas is rejected with a message naming the
// field, and the rejection surfaces through RunSweep (so a bad -p never
// reaches scenario generation).
func TestScenarioOptionsValidate(t *testing.T) {
	valid := []ScenarioOptions{
		{},
		{MaxReplicas: -1},
		{Processors: 10_000, Iterations: 3, CommScale: 2, MaxSlots: 500},
	}
	for _, opt := range valid {
		if err := opt.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", opt, err)
		}
	}

	invalid := []struct {
		opt  ScenarioOptions
		want string
	}{
		{ScenarioOptions{Processors: -1}, "Processors"},
		{ScenarioOptions{Iterations: -2}, "Iterations"},
		{ScenarioOptions{CommScale: -3}, "CommScale"},
		{ScenarioOptions{MaxSlots: -4}, "MaxSlots"},
	}
	for _, tc := range invalid {
		err := tc.opt.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %v, want error naming %s", tc.opt, err, tc.want)
		}
	}

	// The sweep front door rejects the same options before running anything.
	cfg := Table2Config(1, 1, 1)
	cfg.Options.Processors = -5
	if _, err := RunSweep(cfg); err == nil || !strings.Contains(err.Error(), "Processors") {
		t.Fatalf("RunSweep with Processors=-5: err = %v, want validation error", err)
	}
}

// TestLargePConfigSweepRuns exercises the volunteer-grid family end to end
// at a CI-sized platform: every instance must complete (or be censored)
// without error in both time bases, and the two runs of the same seed must
// agree row for row — the large-P path inherits the determinism contract.
func TestLargePConfigSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("large-P sweep is seconds-long; skipped in -short")
	}
	const p = 500
	run := func(mode Mode) *SweepResult {
		cfg := LargePConfig(p, 1, 1, 99)
		cfg.Mode = mode
		cfg.Options.MaxSlots = 4000 // bound the tail; censored runs are fine
		res, err := RunSweep(cfg)
		if err != nil {
			t.Fatalf("RunSweep(LargePConfig(%d)) mode %v: %v", p, mode, err)
		}
		return res
	}
	for _, mode := range []Mode{ModeSlot, ModeEvent} {
		a, b := run(mode), run(mode)
		if a.Instances == 0 {
			t.Fatalf("mode %v: no instances ran", mode)
		}
		if len(a.Overall) != len(b.Overall) {
			t.Fatalf("mode %v: reruns disagree on row count: %d vs %d", mode, len(a.Overall), len(b.Overall))
		}
		for i := range a.Overall {
			if a.Overall[i] != b.Overall[i] {
				t.Fatalf("mode %v row %d: rerun diverged: %+v vs %+v", mode, i, a.Overall[i], b.Overall[i])
			}
		}
	}
}
