package volatile

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
)

// resumeTestConfig is the small sweep the crash/resume property tests grind
// through: 2 cells × 3 scenarios = 6 chunks, enough boundaries to crash at
// every one of them quickly.
func resumeTestConfig() SweepConfig {
	return SweepConfig{
		Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}, {Tasks: 8, Ncom: 4, Wmin: 2}},
		Heuristics: []string{"emct", "mct*", "random2w"},
		Scenarios:  3,
		Trials:     2,
		Seed:       1234,
	}
}

// mustDigest runs the sweep and returns its result digest.
func mustDigest(t *testing.T, cfg SweepConfig) string {
	t.Helper()
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Digest()
}

// TestCrashAtEveryChunkBoundaryResumesBitIdentical is the tentpole property:
// for every chunk boundary k, in both engine modes and across worker counts,
// a sweep killed by an injected committer crash at k and resumed from its
// checkpoint produces a result bit-identical to an uninterrupted run. k=1
// also covers the no-checkpoint-written-yet crash (resume from a missing
// file restarts from scratch).
func TestCrashAtEveryChunkBoundaryResumesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("boundary × mode × workers product sweep is a few seconds long")
	}
	for _, mode := range []Mode{ModeSlot, ModeEvent} {
		base := resumeTestConfig()
		base.Mode = mode
		want := mustDigest(t, base)
		chunks := len(base.Cells) * base.Scenarios
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			for k := 1; k < chunks; k++ {
				path := filepath.Join(t.TempDir(), "sweep.ckpt")

				crashed := base
				crashed.Workers = workers
				crashed.Checkpoint = &CheckpointConfig{Path: path, Every: 1}
				crashed.Faults = &faultinject.Plan{CrashAfterChunks: k}
				if _, err := RunSweep(crashed); !errors.Is(err, faultinject.ErrCommitterCrash) {
					t.Fatalf("mode=%v workers=%d k=%d: crashed run returned %v, want ErrCommitterCrash", mode, workers, k, err)
				}
				// The crash lands after merging chunk k but before
				// checkpointing it, so the file (when one exists) must hold
				// watermark k-1 — the resume re-runs the lost chunk.
				if k > 1 {
					snap, err := checkpoint.Load(path)
					if err != nil {
						t.Fatalf("mode=%v workers=%d k=%d: crashed checkpoint unreadable: %v", mode, workers, k, err)
					}
					if snap.NextChunk != k-1 {
						t.Fatalf("mode=%v workers=%d k=%d: checkpoint watermark %d, want %d", mode, workers, k, snap.NextChunk, k-1)
					}
				}

				resumed := base
				resumed.Workers = workers
				resumed.Checkpoint = &CheckpointConfig{Path: path, Every: 1, Resume: true}
				if got := mustDigest(t, resumed); got != want {
					t.Fatalf("mode=%v workers=%d k=%d: resumed digest %s != uninterrupted %s", mode, workers, k, got, want)
				}
			}
		}
	}
}

// TestMidSweepResumeReproducesGoldenDigest crosses the crash/resume property
// with the repo's golden anchor: a golden-config sweep started at workers=4,
// crashed mid-flight, and resumed at workers=1 must still land exactly on
// goldenSweepDigest — resume changes neither the numbers nor their
// floating-point summation order, even across a parallelism change.
func TestMidSweepResumeReproducesGoldenDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is a few seconds long")
	}
	path := filepath.Join(t.TempDir(), "golden.ckpt")

	crashed := goldenSweepConfig()
	crashed.Workers = 4
	crashed.Checkpoint = &CheckpointConfig{Path: path, Every: 1}
	crashed.Faults = &faultinject.Plan{CrashAfterChunks: 3}
	if _, err := RunSweep(crashed); !errors.Is(err, faultinject.ErrCommitterCrash) {
		t.Fatalf("crashed run returned %v, want ErrCommitterCrash", err)
	}

	resumed := goldenSweepConfig()
	resumed.Workers = 1
	resumed.Checkpoint = &CheckpointConfig{Path: path, Every: 1, Resume: true}
	res, err := RunSweep(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Digest(); got != goldenSweepDigest {
		t.Fatalf("resumed golden sweep drifted:\n got  %s\n want %s\noutput:\n%s", got, goldenSweepDigest, res.Format())
	}
}

// TestResumeWithCoarseCheckpointInterval pins the floor-watermark property:
// with Every > 1 the checkpoint lags the commit cursor, so a resume re-runs
// the chunks since the last write — and still matches bit for bit.
func TestResumeWithCoarseCheckpointInterval(t *testing.T) {
	base := resumeTestConfig()
	want := mustDigest(t, base)
	path := filepath.Join(t.TempDir(), "coarse.ckpt")

	crashed := base
	crashed.Checkpoint = &CheckpointConfig{Path: path, Every: 3}
	crashed.Faults = &faultinject.Plan{CrashAfterChunks: 5}
	if _, err := RunSweep(crashed); !errors.Is(err, faultinject.ErrCommitterCrash) {
		t.Fatalf("crashed run returned %v, want ErrCommitterCrash", err)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NextChunk != 3 {
		t.Fatalf("Every=3 checkpoint holds watermark %d, want 3", snap.NextChunk)
	}

	resumed := base
	resumed.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
	if got := mustDigest(t, resumed); got != want {
		t.Fatalf("coarse-interval resume drifted: %s != %s", got, want)
	}
}

// TestCheckpointWriteFailureDegradesGracefully pins the degradation policy:
// checkpoint-I/O faults must not fail the sweep or change its numbers, only
// surface as Warnings.
func TestCheckpointWriteFailureDegradesGracefully(t *testing.T) {
	base := resumeTestConfig()
	want := mustDigest(t, base)

	cfg := base
	cfg.Checkpoint = &CheckpointConfig{Path: filepath.Join(t.TempDir(), "fail.ckpt"), Every: 1}
	cfg.Faults = &faultinject.Plan{Checkpoint: faultinject.CheckpointFailures(0, 1, 2, 3, 4, 5, 6)}
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatalf("sweep failed on checkpoint-I/O faults: %v", err)
	}
	if got := res.Digest(); got != want {
		t.Fatalf("checkpoint faults changed the result: %s != %s", got, want)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("failed checkpoint writes produced no Warnings")
	}
	if !strings.Contains(res.Warnings[0], "checkpoint write") {
		t.Fatalf("warning %q does not describe the failed write", res.Warnings[0])
	}
}

// TestUnwritableCheckpointPathWarns exercises the real (non-injected)
// checkpoint-write failure: a directory that does not exist.
func TestUnwritableCheckpointPathWarns(t *testing.T) {
	base := resumeTestConfig()
	want := mustDigest(t, base)

	cfg := base
	cfg.Checkpoint = &CheckpointConfig{Path: filepath.Join(t.TempDir(), "no", "such", "dir", "x.ckpt"), Every: 1}
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatalf("sweep failed on unwritable checkpoint path: %v", err)
	}
	if got := res.Digest(); got != want {
		t.Fatalf("unwritable checkpoint path changed the result: %s != %s", got, want)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("unwritable checkpoint path produced no Warnings")
	}
}

// TestTransientFaultsRetriedBitIdentical pins the retry contract: transient
// instance failures recovered within the retry budget leave the sweep
// output bit-identical to an undisturbed run, with nothing censored out.
func TestTransientFaultsRetriedBitIdentical(t *testing.T) {
	base := resumeTestConfig()
	want := mustDigest(t, base)

	cfg := base
	cfg.MaxRetries = 2
	cfg.Faults = &faultinject.Plan{Instance: faultinject.TransientInstanceFaults(99, 0.5, 2)}
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatalf("transient faults were not absorbed by retries: %v", err)
	}
	if res.FailedInstances != 0 {
		t.Fatalf("recovered sweep reports %d failed instances", res.FailedInstances)
	}
	if got := res.Digest(); got != want {
		t.Fatalf("retried sweep drifted: %s != %s", got, want)
	}
}

// TestRetryBackoffDoubles pins the backoff shape through the injectable
// sleeper: 1ms, then 2ms, per doubly-failing instance.
func TestRetryBackoffDoubles(t *testing.T) {
	var mu sync.Mutex
	var waits []time.Duration
	cfg := resumeTestConfig()
	cfg.Workers = 1
	cfg.MaxRetries = 2
	cfg.RetryBackoff = time.Millisecond
	cfg.Faults = &faultinject.Plan{
		Instance: faultinject.PersistentInstanceFaultUntil(2, 0, 2),
		Sleep: func(d time.Duration) {
			mu.Lock()
			waits = append(waits, d)
			mu.Unlock()
		},
	}
	if _, err := RunSweep(cfg); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 2 || waits[0] != time.Millisecond || waits[1] != 2*time.Millisecond {
		t.Fatalf("backoff sequence %v, want [1ms 2ms]", waits)
	}
}

// TestPersistentFaultRecordAndContinue pins the censor path: an instance
// that exhausts its retries under ContinueOnError is dropped from the
// aggregates, counted in FailedInstances, sampled in InstanceErrors — and
// the degraded result is identical for every worker count.
func TestPersistentFaultRecordAndContinue(t *testing.T) {
	base := resumeTestConfig()
	total := len(base.Cells) * base.Scenarios * base.Trials

	mk := func(workers int) *SweepResult {
		cfg := base
		cfg.Workers = workers
		cfg.MaxRetries = 1
		cfg.ContinueOnError = true
		cfg.Faults = &faultinject.Plan{Instance: faultinject.PersistentInstanceFault(3, 1)}
		res, err := RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := mk(1)
	if ref.FailedInstances != 1 {
		t.Fatalf("FailedInstances = %d, want 1", ref.FailedInstances)
	}
	if ref.Instances != total-1 {
		t.Fatalf("Instances = %d, want %d (one dropped)", ref.Instances, total-1)
	}
	if len(ref.InstanceErrors) == 0 || !strings.Contains(ref.InstanceErrors[0], "persistent fault") {
		t.Fatalf("InstanceErrors %v does not sample the fault", ref.InstanceErrors)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		got := mk(workers)
		if got.Format() != ref.Format() || got.FailedInstances != ref.FailedInstances {
			t.Fatalf("workers=%d degraded result diverged from workers=1", workers)
		}
	}
}

// TestPersistentFaultAbortsWithoutContinueOnError pins the default policy:
// retry exhaustion without ContinueOnError fails the sweep with the
// instance's error.
func TestPersistentFaultAbortsWithoutContinueOnError(t *testing.T) {
	cfg := resumeTestConfig()
	cfg.MaxRetries = 1
	cfg.Faults = &faultinject.Plan{Instance: faultinject.PersistentInstanceFault(3, 1)}
	if _, err := RunSweep(cfg); err == nil || !strings.Contains(err.Error(), "persistent fault") {
		t.Fatalf("RunSweep = %v, want the persistent-fault error", err)
	}
}

// TestGracefulStopAndResume pins the Stop channel path: a sweep interrupted
// through Stop returns *InterruptedError, its final checkpoint holds the
// committed prefix, and a resume completes to the uninterrupted digest.
func TestGracefulStopAndResume(t *testing.T) {
	base := SweepConfig{
		Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}, {Tasks: 8, Ncom: 4, Wmin: 2}},
		Heuristics: []string{"emct", "mct*"},
		Scenarios:  8, // 16 chunks: more than one worker's feed window, so Stop lands mid-feed
		Trials:     1,
		Seed:       4321,
	}
	want := mustDigest(t, base)
	path := filepath.Join(t.TempDir(), "stop.ckpt")

	stopCh := make(chan struct{})
	var once sync.Once
	cfg := base
	cfg.Workers = 1
	cfg.Checkpoint = &CheckpointConfig{Path: path, Every: 1}
	cfg.Stop = stopCh
	cfg.Progress = func(done, total int) {
		once.Do(func() { close(stopCh) })
	}
	_, err := RunSweep(cfg)
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("stopped sweep returned %v, want *InterruptedError", err)
	}
	if ie.Committed <= 0 || ie.Committed >= ie.Chunks {
		t.Fatalf("interrupt committed %d of %d chunks, want a strict prefix", ie.Committed, ie.Chunks)
	}
	if ie.Path != path || !strings.Contains(ie.Error(), path) {
		t.Fatalf("InterruptedError %q does not carry the checkpoint path", ie.Error())
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("final checkpoint unreadable after graceful stop: %v", err)
	}
	if snap.NextChunk != ie.Committed {
		t.Fatalf("checkpoint watermark %d != reported committed %d", snap.NextChunk, ie.Committed)
	}

	resumed := base
	resumed.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
	if got := mustDigest(t, resumed); got != want {
		t.Fatalf("resume after graceful stop drifted: %s != %s", got, want)
	}
}

// TestResumeCompletedCheckpoint pins resume idempotence: resuming a sweep
// whose checkpoint already covers every chunk re-runs nothing and returns
// the identical result.
func TestResumeCompletedCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "done.ckpt")
	cfg := resumeTestConfig()
	cfg.Checkpoint = &CheckpointConfig{Path: path}
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
	cfg.Progress = func(done, total int) {
		t.Errorf("resume of a completed checkpoint ran instance %d/%d", done, total)
	}
	again, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest() != res.Digest() {
		t.Fatalf("completed-checkpoint resume drifted: %s != %s", again.Digest(), res.Digest())
	}
}

// TestResumeRejectsMismatchedConfig pins the digest guard: a checkpoint
// must not resume into a sweep whose config differs in anything that
// shapes the numbers.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "guard.ckpt")
	cfg := resumeTestConfig()
	cfg.Checkpoint = &CheckpointConfig{Path: path}
	if _, err := RunSweep(cfg); err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func(*SweepConfig){
		"seed":       func(c *SweepConfig) { c.Seed++ },
		"mode":       func(c *SweepConfig) { c.Mode = ModeEvent },
		"heuristics": func(c *SweepConfig) { c.Heuristics = []string{"emct", "mct*"} },
		"trials":     func(c *SweepConfig) { c.Trials++ },
		"options":    func(c *SweepConfig) { c.Options.CommScale = 5 },
	} {
		t.Run(name, func(t *testing.T) {
			bad := resumeTestConfig()
			mutate(&bad)
			bad.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
			if _, err := RunSweep(bad); err == nil || !strings.Contains(err.Error(), "different sweep config") {
				t.Fatalf("mismatched %s resumed anyway: %v", name, err)
			}
		})
	}
}

// TestWorkerAbortWritesFinalCheckpoint pins that even a fail-fast abort
// flushes the committed prefix, and the error names the checkpoint so the
// operator knows a resume is possible.
func TestWorkerAbortWritesFinalCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "abort.ckpt")
	cfg := resumeTestConfig()
	cfg.Workers = 1
	cfg.Checkpoint = &CheckpointConfig{Path: path, Every: 1}
	cfg.Faults = &faultinject.Plan{Instance: faultinject.PersistentInstanceFault(2, 0)}
	_, err := RunSweep(cfg)
	if err == nil || !strings.Contains(err.Error(), "persistent fault") {
		t.Fatalf("RunSweep = %v, want the persistent-fault error", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("abort error %q does not point at the checkpoint", err)
	}
	snap, ckErr := checkpoint.Load(path)
	if ckErr != nil {
		t.Fatalf("no usable checkpoint after abort: %v", ckErr)
	}
	if snap.NextChunk != 2 {
		t.Fatalf("abort checkpoint watermark %d, want 2 (chunks before the poisoned one)", snap.NextChunk)
	}

	// With the fault gone, resume completes to the uninterrupted digest.
	clean := resumeTestConfig()
	clean.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
	if got, want := mustDigest(t, clean), mustDigest(t, resumeTestConfig()); got != want {
		t.Fatalf("resume after abort drifted: %s != %s", got, want)
	}
}

// TestTraceSweepCrashResume extends the crash/resume property to the
// trace-driven pipeline (synthetic traces, model fitting, the same sharded
// committer).
func TestTraceSweepCrashResume(t *testing.T) {
	base := TraceSweepConfig{
		Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}, {Tasks: 10, Ncom: 5, Wmin: 2}},
		Heuristics: []string{"emct", "mct*", "random2w"},
		Scenarios:  2,
		Trials:     2,
		TraceLen:   150,
		Style:      TraceWeibull,
		Options:    ScenarioOptions{Processors: 6, Iterations: 2},
		Seed:       2026,
	}
	ref, err := TraceSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Digest()
	for _, k := range []int{1, 2, 3} {
		path := filepath.Join(t.TempDir(), "trace.ckpt")
		crashed := base
		crashed.Checkpoint = &CheckpointConfig{Path: path, Every: 1}
		crashed.Faults = &faultinject.Plan{CrashAfterChunks: k}
		if _, err := TraceSweep(crashed); !errors.Is(err, faultinject.ErrCommitterCrash) {
			t.Fatalf("k=%d: crashed trace sweep returned %v, want ErrCommitterCrash", k, err)
		}
		resumed := base
		resumed.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
		res, err := TraceSweep(resumed)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Digest(); got != want {
			t.Fatalf("k=%d: resumed trace sweep drifted: %s != %s", k, got, want)
		}
	}
}

// TestCompareSweepCrashResume extends the property to the DFRS comparison
// pipeline (fractional heuristics + batch disciplines per instance).
func TestCompareSweepCrashResume(t *testing.T) {
	base := CompareConfig{
		Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}},
		Heuristics: []string{"emct", "mct*"},
		Scenarios:  3,
		Trials:     1,
		Seed:       77,
	}
	ref, err := CompareSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Digest()
	path := filepath.Join(t.TempDir(), "cmp.ckpt")
	crashed := base
	crashed.Checkpoint = &CheckpointConfig{Path: path, Every: 1}
	crashed.Faults = &faultinject.Plan{CrashAfterChunks: 2}
	if _, err := CompareSweep(crashed); !errors.Is(err, faultinject.ErrCommitterCrash) {
		t.Fatalf("crashed compare sweep returned %v, want ErrCommitterCrash", err)
	}
	resumed := base
	resumed.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
	res, err := CompareSweep(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Digest(); got != want {
		t.Fatalf("resumed compare sweep drifted: %s != %s", got, want)
	}

	// A CompareSweep checkpoint must not resume into a BatchSweep of the
	// same shape (different contender set, different flavour digest).
	batchCfg := base
	batchCfg.Heuristics = nil
	batchCfg.Checkpoint = &CheckpointConfig{Path: path, Resume: true}
	if _, err := BatchSweep(batchCfg); err == nil || !strings.Contains(err.Error(), "different sweep config") {
		t.Fatalf("BatchSweep resumed a CompareSweep checkpoint: %v", err)
	}
}

// TestFormatMatchesDigest pins that Digest is exactly the SHA-256 of
// Format — the invariant the golden tests and the volabench -digest flag
// both rely on.
func TestFormatMatchesDigest(t *testing.T) {
	res, err := RunSweep(resumeTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(res.Format()))
	if got := hex.EncodeToString(sum[:]); got != res.Digest() {
		t.Fatalf("Digest %s is not the hash of Format (%s)", res.Digest(), got)
	}
}
