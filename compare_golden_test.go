package volatile

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"runtime"
	"testing"
)

// goldenCompareDigest pins the exact numeric output of the fixed-seed DFRS
// comparison sweep below (fractional heuristics vs batch disciplines on
// identical instances). Any drift means the batch engine, the shared trial
// materialization or the sharded merge changed behaviour.
const goldenCompareDigest = "ed7e1e6882e7a3470b1249783cf61d9886139343a8cdaa57782143f04e74d3ac"

// goldenBatchDigest pins the batch-only sweep (BatchSweep) on the same
// grid: FCFS vs EASY with no fractional contenders.
const goldenBatchDigest = "854bb0b0dd0343bd1fbc760364ac95a5d87d83a9d18618ffc33912bbe259c0bf"

func goldenCompareConfig() CompareConfig {
	return CompareConfig{
		Cells: []Cell{
			{Tasks: 5, Ncom: 5, Wmin: 1},
			{Tasks: 10, Ncom: 5, Wmin: 3},
			{Tasks: 20, Ncom: 10, Wmin: 5},
		},
		Heuristics:  []string{"emct*", "mct", "random2w"},
		Disciplines: []string{BatchFCFS, BatchEASY},
		Scenarios:   2,
		Trials:      2,
		Options:     ScenarioOptions{Processors: 8, Iterations: 3},
		Seed:        77,
	}
}

// TestCompareSweepGolden locks the DFRS comparison's numeric output, the
// batch-engine analogue of TestRunSweepGolden.
func TestCompareSweepGolden(t *testing.T) {
	res, err := CompareSweep(goldenCompareConfig())
	if err != nil {
		t.Fatal(err)
	}
	text := formatSweep(res)
	sum := sha256.Sum256([]byte(text))
	if got := hex.EncodeToString(sum[:]); got != goldenCompareDigest {
		t.Errorf("compare digest drifted:\n got  %s\n want %s\noutput:\n%s", got, goldenCompareDigest, text)
	}
}

// TestCompareSweepWorkerCountDeterminism extends the worker-count property
// to the comparison pipeline: fractional and batch runs of one instance
// execute on the same worker, shards merge in chunk order, so any worker
// count reproduces the golden digest bit for bit.
func TestCompareSweepWorkerCountDeterminism(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		cfg := goldenCompareConfig()
		cfg.Workers = workers
		res, err := CompareSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256([]byte(formatSweep(res)))
		if got := hex.EncodeToString(sum[:]); got != goldenCompareDigest {
			t.Errorf("workers=%d drifted from the golden compare digest:\n got  %s\n want %s",
				workers, got, goldenCompareDigest)
		}
	}
}

// TestBatchSweepWorkerCountDeterminism is the same property for the
// batch-only sweep, pinned by its own golden digest.
func TestBatchSweepWorkerCountDeterminism(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		cfg := goldenCompareConfig()
		cfg.Heuristics = nil // ignored by BatchSweep
		cfg.Workers = workers
		res, err := BatchSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Instances == 0 {
			t.Fatal("batch sweep aggregated no instances")
		}
		sum := sha256.Sum256([]byte(formatSweep(res)))
		if got := hex.EncodeToString(sum[:]); got != goldenBatchDigest {
			t.Errorf("workers=%d drifted from the golden batch digest:\n got  %s\n want %s\noutput:\n%s",
				workers, got, goldenBatchDigest, formatSweep(res))
		}
	}
}

// TestCompareSweepRowsCoverBothFamilies checks the result surface: every
// configured contender appears in the overall ranking, and CompareCells
// produces one row per cell with both family winners filled in.
func TestCompareSweepRowsCoverBothFamilies(t *testing.T) {
	cfg := goldenCompareConfig()
	res, err := CompareSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]string{}, cfg.Heuristics...), cfg.Disciplines...)
	seen := make(map[string]bool, len(res.Overall))
	for _, r := range res.Overall {
		seen[r.Name] = true
	}
	for _, name := range want {
		if !seen[name] {
			t.Errorf("overall ranking is missing %q", name)
		}
	}
	rows := CompareCells(res)
	if len(rows) != len(cfg.Cells) {
		t.Fatalf("CompareCells returned %d rows for %d cells", len(rows), len(cfg.Cells))
	}
	for _, row := range rows {
		if row.BestFractional == "" || row.BestBatch == "" {
			t.Errorf("cell %s: missing family winner: %+v", row.Cell, row)
			continue
		}
		if math.IsNaN(row.FractionalDFB) || math.IsNaN(row.BatchDFB) {
			t.Errorf("cell %s: NaN dfb for a populated family: %+v", row.Cell, row)
		}
		if row.Gap != row.BatchDFB-row.FractionalDFB {
			t.Errorf("cell %s: gap %v != %v - %v", row.Cell, row.Gap, row.BatchDFB, row.FractionalDFB)
		}
	}
}

// TestCompareSweepValidation exercises the fail-fast paths.
func TestCompareSweepValidation(t *testing.T) {
	base := goldenCompareConfig()

	bad := base
	bad.Disciplines = []string{"batch-sjf"}
	if _, err := CompareSweep(bad); err == nil {
		t.Error("unknown discipline accepted")
	}
	if _, err := BatchSweep(bad); err == nil {
		t.Error("BatchSweep accepted unknown discipline")
	}

	bad = base
	bad.Heuristics = []string{"no-such-heuristic"}
	if _, err := CompareSweep(bad); err == nil {
		t.Error("unknown heuristic accepted")
	}

	bad = base
	bad.Cells = nil
	if _, err := BatchSweep(bad); err == nil {
		t.Error("BatchSweep accepted empty cells")
	}

	bad = base
	bad.Trials = 0
	if _, err := BatchSweep(bad); err == nil {
		t.Error("BatchSweep accepted zero trials")
	}

	if _, err := (&Scenario{}).RunBatch("batch-sjf", 1); err == nil {
		t.Error("RunBatch accepted unknown discipline")
	}
}

// TestRunBatchMatchesCompareSweepWorld pins that the single-run RunBatch
// entry point sees the same world as a CompareSweep instance: same
// scenario seed + trial seed → same batch makespan as the sweep recorded.
func TestRunBatchMatchesCompareSweepWorld(t *testing.T) {
	cell := Cell{Tasks: 5, Ncom: 5, Wmin: 2}
	opt := ScenarioOptions{Processors: 6, Iterations: 2}
	seed := uint64(99)

	res, err := CompareSweep(CompareConfig{
		Cells: []Cell{cell}, Heuristics: []string{"mct"}, Scenarios: 1, Trials: 1,
		Options: opt, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	scn := NewScenario(deriveSeed(seed, 0, 0, 0xA11CE), cell, opt)
	trialSeed := deriveSeed(seed, 0, 0, 0)
	for _, d := range BatchDisciplines() {
		direct, err := scn.RunBatch(d, trialSeed)
		if err != nil {
			t.Fatal(err)
		}
		// The sweep's per-instance makespans are folded into dfb, so verify
		// through the overall ranking: recompute this single instance's dfb
		// from the direct runs and compare.
		if direct.Makespan <= 0 {
			t.Fatalf("%s: non-positive makespan %d", d, direct.Makespan)
		}
		mct, err := scn.Run("mct", trialSeed)
		if err != nil {
			t.Fatal(err)
		}
		best := direct.Makespan
		for _, other := range BatchDisciplines() {
			r, err := scn.RunBatch(other, trialSeed)
			if err != nil {
				t.Fatal(err)
			}
			if r.Makespan < best {
				best = r.Makespan
			}
		}
		if mct.Makespan < best {
			best = mct.Makespan
		}
		wantDFB := 100 * float64(direct.Makespan-best) / float64(best)
		got, ok := rowValue(res.Overall, d)
		if !ok {
			t.Fatalf("%s missing from sweep ranking", d)
		}
		if got != wantDFB {
			t.Errorf("%s: sweep dfb %v != direct-run dfb %v", d, got, wantDFB)
		}
	}
}
