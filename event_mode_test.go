package volatile

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"runtime"
	"strings"
	"testing"
)

// goldenEventSweepDigest is the SHA-256 of the formatted output of the
// golden sweep config run in event mode, captured when the event-driven
// time base landed. Event mode consumes the per-processor availability
// streams at sojourn granularity, so its trajectories — and hence its
// digest — legitimately differ from goldenSweepDigest; what this constant
// pins is that event-mode results never drift silently afterwards.
const goldenEventSweepDigest = "a74bfdf51056b7edd8e667076d37faaaa1c600eb19af13a2c01282780defebd5"

func goldenEventSweepConfig() SweepConfig {
	cfg := goldenSweepConfig()
	cfg.Mode = ModeEvent
	return cfg
}

// TestRunSweepGoldenEvent locks the exact numeric output of the fixed-seed
// sweep in event mode, for every worker count: the event-driven engine and
// the sharded merge must stay bit-identical run over run and independent of
// parallelism, exactly like the slot-mode golden tests.
func TestRunSweepGoldenEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is a few seconds long")
	}
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		cfg := goldenEventSweepConfig()
		cfg.Workers = workers
		res, err := RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		text := formatSweep(res)
		sum := sha256.Sum256([]byte(text))
		if got := hex.EncodeToString(sum[:]); got != goldenEventSweepDigest {
			t.Errorf("event sweep digest drifted (workers=%d):\n got  %s\n want %s\noutput:\n%s",
				workers, got, goldenEventSweepDigest, text)
		}
	}
}

// TestCrossModeSweepEquivalence is the distribution-level cross-mode pin on
// a Table 2 style grid: slot and event mode see different availability
// trajectories for the same trial seeds (per-slot vs per-sojourn RNG
// consumption), so their aggregates must agree only statistically. At the
// pinned seed both sweeps are deterministic, so the tolerance below never
// flakes — it documents how close the two time bases land on the same
// grid, heuristic by heuristic.
func TestCrossModeSweepEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-mode sweep is a few seconds long")
	}
	slotRes, err := RunSweep(goldenSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	eventRes, err := RunSweep(goldenEventSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	if slotRes.Instances != eventRes.Instances {
		t.Fatalf("instance counts differ: slot %d, event %d", slotRes.Instances, eventRes.Instances)
	}
	slotDFB := make(map[string]float64, len(slotRes.Overall))
	for _, row := range slotRes.Overall {
		slotDFB[row.Name] = row.AvgDFB
	}
	// Calibrated against the pinned seed: at this grid's 16 instances the
	// largest per-heuristic gap between the two time bases is ~5.9 dfb
	// points (random family; the sample is small and dfb is best-relative,
	// so trajectory differences compound). The bound documents that scale
	// and catches gross divergence — the ordering check below carries the
	// structural claim.
	const tol = 8.0
	for _, row := range eventRes.Overall {
		want, ok := slotDFB[row.Name]
		if !ok {
			t.Errorf("heuristic %s only ranked in event mode", row.Name)
			continue
		}
		if diff := math.Abs(row.AvgDFB - want); diff > tol {
			t.Errorf("%s: event AvgDFB %.4f vs slot %.4f (|diff| %.4f > %.2f)",
				row.Name, row.AvgDFB, want, diff, tol)
		}
	}
	// The families must also agree on the paper's headline ordering: the
	// best contention-corrected greedy heuristic beats plain random in both
	// modes.
	rank := func(rows []TableRow) map[string]int {
		m := make(map[string]int, len(rows))
		for i, r := range rows {
			m[r.Name] = i
		}
		return m
	}
	slotRank, eventRank := rank(slotRes.Overall), rank(eventRes.Overall)
	for _, mode := range []map[string]int{slotRank, eventRank} {
		if mode["emct*"] > mode["random"] {
			t.Errorf("emct* ranked below random (slot %d/%d, event %d/%d)",
				slotRank["emct*"], slotRank["random"], eventRank["emct*"], eventRank["random"])
		}
	}
}

// TestTraceSweepCrossModeBitIdentical pins the strongest public cross-mode
// contract: trace replay consumes no availability RNG, so a trace sweep
// restricted to deterministic heuristics must produce bit-identical
// aggregates in both modes — every makespan, dfb and win equal.
func TestTraceSweepCrossModeBitIdentical(t *testing.T) {
	mk := func(mode Mode) string {
		res, err := TraceSweep(TraceSweepConfig{
			Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}, {Tasks: 10, Ncom: 5, Wmin: 2}},
			Heuristics: []string{"emct", "emct*", "mct*", "lw", "ud*"},
			Scenarios:  2,
			Trials:     2,
			TraceLen:   150,
			Style:      TraceWeibull,
			Options:    ScenarioOptions{Processors: 6, Iterations: 2},
			Mode:       mode,
			Seed:       2026,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Instances == 0 {
			t.Fatal("trace sweep aggregated no instances")
		}
		return formatSweep(res)
	}
	slot, event := mk(ModeSlot), mk(ModeEvent)
	if slot != event {
		t.Errorf("trace sweep diverged across modes:\nslot:\n%s\nevent:\n%s", slot, event)
	}
}

// TestRunTraceModeBitIdentical pins the single-run trace contract across
// the public one-shot and pooled entry points: deterministic heuristics on
// explicit vectors match bit for bit across modes and across Runner reuse.
func TestRunTraceModeBitIdentical(t *testing.T) {
	scn := NewScenario(7, Cell{Tasks: 6, Ncom: 3, Wmin: 2}, ScenarioOptions{Processors: 4, Iterations: 2})
	vectors := []string{
		strings.Repeat("u", 80),
		"uuuuurrrrr" + strings.Repeat("u", 60) + "dddddddddd",
		strings.Repeat("urd", 25),
		"dddddddddd" + strings.Repeat("u", 70),
	}
	for _, h := range []string{"emct*", "mct", "lw*", "ud"} {
		slot, err := scn.RunTrace(h, 3, vectors)
		if err != nil {
			t.Fatal(err)
		}
		event, err := scn.RunTraceMode(h, 3, vectors, ModeEvent)
		if err != nil {
			t.Fatal(err)
		}
		if slot.Makespan != event.Makespan || slot.Stats != event.Stats {
			t.Errorf("%s: slot %+v, event %+v", h, slot, event)
		}
		rn := NewRunner()
		rn.SetMode(ModeEvent)
		pooled, err := scn.RunTraceWith(rn, h, 3, vectors)
		if err != nil {
			t.Fatal(err)
		}
		if pooled.Makespan != event.Makespan || pooled.Stats != event.Stats {
			t.Errorf("%s: pooled event %+v, one-shot event %+v", h, pooled, event)
		}
	}
}

// TestModePublicSurface pins the re-exported mode API: parsing, the valid
// name list, and that RunMode/SetMode actually reach the engine (an event
// run on a model-driven scenario must succeed and stay reproducible).
func TestModePublicSurface(t *testing.T) {
	if got, err := ParseMode("event"); err != nil || got != ModeEvent {
		t.Fatalf("ParseMode(event) = %v, %v", got, err)
	}
	if _, err := ParseMode("bogus"); err == nil || !strings.Contains(err.Error(), "slot") {
		t.Fatalf("ParseMode(bogus) should list valid names, got %v", err)
	}
	if names := ModeNames(); len(names) != 2 || names[0] != "slot" || names[1] != "event" {
		t.Fatalf("ModeNames() = %v", names)
	}
	scn := NewScenario(11, Cell{Tasks: 5, Ncom: 5, Wmin: 1}, ScenarioOptions{Processors: 5, Iterations: 2})
	a, err := scn.RunMode("emct*", 4, ModeEvent)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scn.RunMode("emct*", 4, ModeEvent)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Stats != b.Stats {
		t.Fatalf("event runs not reproducible: %+v vs %+v", a, b)
	}
	rn := NewRunner()
	rn.SetMode(ModeEvent)
	c, err := scn.RunWith(rn, "emct*", 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Makespan != a.Makespan || c.Stats != a.Stats {
		t.Fatalf("pooled event run diverged from one-shot: %+v vs %+v", c, a)
	}
}
