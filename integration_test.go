package volatile

// Cross-layer integration tests tying the on-line simulator (internal/sim,
// internal/core) to the off-line theory (internal/offline) on identical
// availability vectors.

import (
	"testing"

	"repro/internal/avail"
	"repro/internal/offline"
	"repro/internal/rng"
)

// offlineBound computes a certified lower bound on any schedule's makespan
// for the given availability vectors: DOWN slots are split away (Section 4's
// equivalence) and the bandwidth constraint is relaxed to ncom = ∞, where
// MCT is provably optimal (Proposition 2). Returns -1 when even the relaxed
// problem cannot finish within the horizon.
func offlineBound(vectors []avail.Vector, speeds []int, tprog, tdata, m int) (int, error) {
	in, err := offline.SplitDowns(vectors, speeds, tprog, tdata, offline.NoContention, m)
	if err != nil {
		return 0, err
	}
	_, makespan, err := offline.MCTNoContention(in)
	return makespan, err
}

func TestOnlineNeverBeatsOfflineBound(t *testing.T) {
	// For any heuristic and any availability realization, the on-line
	// makespan must be >= the relaxed off-line optimum on the same vectors.
	// This exercises simulator timing, bandwidth accounting, replication and
	// crash handling against an independently implemented reference.
	const horizon = 30000
	heuristics := []string{"mct", "emct*", "ud", "random", "passive-emct"}
	master := rng.New(2024)
	checked := 0
	for trial := 0; trial < 12; trial++ {
		scn := NewScenario(master.Uint64(),
			Cell{Tasks: 4 + int(master.Uint64()%5), Ncom: 2 + int(master.Uint64()%3), Wmin: 1 + int(master.Uint64()%3)},
			ScenarioOptions{Processors: 6, Iterations: 1})
		prm := scn.Params()

		// One shared availability realization per trial.
		vecRng := rng.New(master.Uint64())
		vectors := make([]avail.Vector, scn.Processors())
		specs := make([]string, scn.Processors())
		speeds := make([]int, scn.Processors())
		for i, proc := range scn.inner.Platform.Processors {
			stream := vecRng.Split()
			vectors[i] = avail.Record(proc.Avail.NewProcess(stream, avail.Up), horizon)
			specs[i] = vectors[i].String()
			speeds[i] = proc.W
		}
		bound, err := offlineBound(vectors, speeds, prm.Tprog, prm.Tdata, prm.M)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range heuristics {
			res, err := scn.RunTrace(h, uint64(trial), specs)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				continue // censored; nothing to compare
			}
			if bound < 0 {
				t.Fatalf("trial %d: online %s completed in %d but relaxed offline bound says impossible",
					trial, h, res.Makespan)
			}
			if res.Makespan < bound {
				t.Fatalf("trial %d: %s finished in %d slots, below the offline bound %d",
					trial, h, res.Makespan, bound)
			}
			checked++
		}
	}
	if checked < 30 {
		t.Fatalf("only %d comparisons executed; scenario generation too hostile", checked)
	}
}

func TestPassiveClassIsDominatedByDynamic(t *testing.T) {
	// Section 6.1 argues the passive class (assign once, wait out RECLAIMED
	// periods, re-assign only on crashes) is strictly weaker than dynamic
	// re-planning. Quantify it: across instances, dynamic EMCT must win on
	// average by a clear margin.
	var dynTotal, pasTotal int64
	instances := 0
	for seed := uint64(0); seed < 15; seed++ {
		scn := NewScenario(seed, Cell{Tasks: 10, Ncom: 5, Wmin: 3},
			ScenarioOptions{Processors: 10, Iterations: 3})
		dyn, err := scn.Run("emct", 1)
		if err != nil {
			t.Fatal(err)
		}
		pas, err := scn.Run("passive-emct", 1)
		if err != nil {
			t.Fatal(err)
		}
		if !dyn.Completed || !pas.Completed {
			continue
		}
		dynTotal += int64(dyn.Makespan)
		pasTotal += int64(pas.Makespan)
		instances++
	}
	if instances < 10 {
		t.Fatalf("too few completed instances (%d)", instances)
	}
	if pasTotal <= dynTotal {
		t.Fatalf("passive (%d total slots) did not lose to dynamic (%d) over %d instances",
			pasTotal, dynTotal, instances)
	}
	t.Logf("dynamic emct: %d slots total; passive-emct: %d (%.1f%% worse) over %d instances",
		dynTotal, pasTotal, 100*float64(pasTotal-dynTotal)/float64(dynTotal), instances)
}

func TestPassiveSchedulerCompletes(t *testing.T) {
	// Passive heuristics decline picks while committed processors are
	// RECLAIMED; the engine must still drive every run to completion.
	for _, h := range []string{"passive-mct", "passive-emct", "passive-ud", "passive-random"} {
		scn := NewScenario(3, Cell{Tasks: 6, Ncom: 3, Wmin: 2},
			ScenarioOptions{Processors: 8, Iterations: 2})
		res, err := scn.Run(h, 5)
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		if !res.Completed {
			t.Fatalf("%s censored at %d slots", h, res.Makespan)
		}
		if res.Stats.TasksCompleted != 12 {
			t.Fatalf("%s completed %d tasks, want 12", h, res.Stats.TasksCompleted)
		}
	}
}

func TestProactiveClassCompletesAndCancels(t *testing.T) {
	// The proactive variants must finish every run; on straggler-heavy
	// scenarios (small m, very heterogeneous speeds) they should actually
	// exercise cancellation.
	cancelledSeen := false
	for seed := uint64(0); seed < 10; seed++ {
		scn := NewScenario(seed, Cell{Tasks: 3, Ncom: 5, Wmin: 8},
			ScenarioOptions{Processors: 12, Iterations: 2, MaxReplicas: -1})
		res, err := scn.RunWithHooks("proactive-emct", 1, nil, func(ev Event) {
			if ev.Kind.String() == "copy-cancelled" {
				cancelledSeen = true
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: censored at %d", seed, res.Makespan)
		}
		if res.Stats.TasksCompleted != 6 {
			t.Fatalf("seed %d: %d tasks", seed, res.Stats.TasksCompleted)
		}
	}
	if !cancelledSeen {
		t.Fatal("proactive scheduler never cancelled anything on straggler scenarios")
	}
}

func TestProactiveVsDynamicOnStragglers(t *testing.T) {
	// The paper argues proactive cancellation could help when m is small and
	// replication is unavailable. Measure it (informational; proactive must
	// at least not be catastrophically worse).
	var dyn, pro int64
	for seed := uint64(0); seed < 20; seed++ {
		scn := NewScenario(seed, Cell{Tasks: 3, Ncom: 5, Wmin: 8},
			ScenarioOptions{Processors: 12, Iterations: 2, MaxReplicas: -1})
		a, err := scn.Run("emct", 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scn.Run("proactive-emct", 1)
		if err != nil {
			t.Fatal(err)
		}
		if a.Completed && b.Completed {
			dyn += int64(a.Makespan)
			pro += int64(b.Makespan)
		}
	}
	t.Logf("no-replication stragglers: dynamic emct %d slots vs proactive-emct %d (%+.1f%%)",
		dyn, pro, 100*float64(pro-dyn)/float64(dyn))
	if pro > dyn*3/2 {
		t.Fatalf("proactive catastrophically worse: %d vs %d", pro, dyn)
	}
}

func TestAggressiveCorrectionVariantsComplete(t *testing.T) {
	for _, h := range []string{"mct+", "emct+", "lw+", "ud+"} {
		scn := NewScenario(4, ContentionCell(), ScenarioOptions{Iterations: 2, CommScale: 5})
		res, err := scn.Run(h, 5)
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		if !res.Completed {
			t.Fatalf("%s censored", h)
		}
	}
}

func TestExtensionHeuristicsCompleteAndCompete(t *testing.T) {
	// The analytics-driven extensions (risk-averse remct, deadline
	// probability) must complete runs and stay in the same performance
	// league as EMCT on a mid-grid cell.
	var emctTotal, remctTotal, dlTotal int64
	for seed := uint64(0); seed < 8; seed++ {
		scn := NewScenario(seed, Cell{Tasks: 8, Ncom: 5, Wmin: 4},
			ScenarioOptions{Processors: 10, Iterations: 3})
		for _, h := range []string{"emct", "remct", "deadline"} {
			res, err := scn.Run(h, 1)
			if err != nil {
				t.Fatalf("%s: %v", h, err)
			}
			if !res.Completed {
				t.Fatalf("%s censored on seed %d", h, seed)
			}
			switch h {
			case "emct":
				emctTotal += int64(res.Makespan)
			case "remct":
				remctTotal += int64(res.Makespan)
			case "deadline":
				dlTotal += int64(res.Makespan)
			}
		}
	}
	t.Logf("extension shoot-out (total slots over 8 instances): emct=%d remct=%d deadline=%d",
		emctTotal, remctTotal, dlTotal)
	// League check: within 50% of EMCT.
	for name, total := range map[string]int64{"remct": remctTotal, "deadline": dlTotal} {
		if total > emctTotal*3/2 {
			t.Fatalf("%s far off the pace: %d vs emct %d", name, total, emctTotal)
		}
	}
}
