package volatile

// Service surface for long-running frontends (cmd/volaserved): exported
// content addresses for sweep configs and read access to checkpoint files,
// so a server can key a result cache on exactly the digest the checkpoint
// layer binds resumes to, and can report partial aggregates from the
// committer's persisted state while a job is still running.

import (
	"fmt"

	"repro/internal/checkpoint"
)

// ConfigDigest returns the sweep's canonical content address: the SHA-256
// digest of everything that determines its numeric output (flavour, cells,
// resolved heuristics, scenario/trial counts, options, mode, seed).
// Execution knobs that cannot change the result — Workers, Progress,
// checkpoint placement, retry policy, fault plans — are excluded, so equal
// digests mean equal results regardless of how the sweep is executed. It is
// the same digest checkpoints are bound to: a content-addressed result
// cache keyed on it is automatically coherent with crash/resume.
func (cfg SweepConfig) ConfigDigest() (string, error) {
	heuristics, err := sweepHeuristics(cfg.Cells, cfg.Scenarios, cfg.Trials, cfg.Heuristics)
	if err != nil {
		return "", err
	}
	return sweepConfigDigest("runsweep", cfg.Cells, heuristics,
		cfg.Scenarios, cfg.Trials, cfg.Options, cfg.Mode, cfg.Seed), nil
}

// ConfigDigest returns the trace sweep's canonical content address; see
// SweepConfig.ConfigDigest. Recorded trace files are content-hashed, so two
// configs naming different files with identical vectors share a digest, and
// an edited file changes it.
func (cfg TraceSweepConfig) ConfigDigest() (string, error) {
	plan, err := traceSweepPlan(cfg)
	if err != nil {
		return "", err
	}
	return plan.digest, nil
}

// ConfigDigest returns the comparison sweep's canonical content address as
// run by CompareSweep (fractional heuristics plus batch disciplines); see
// SweepConfig.ConfigDigest.
func (cfg CompareConfig) ConfigDigest() (string, error) {
	heuristics, err := sweepHeuristics(cfg.Cells, cfg.Scenarios, cfg.Trials, cfg.Heuristics)
	if err != nil {
		return "", err
	}
	_, _, digest, err := comparePlan(cfg, heuristics)
	if err != nil {
		return "", err
	}
	return digest, nil
}

// CheckpointStatus is the read-only view of a sweep checkpoint file: which
// sweep it belongs to, how far the committer got, and the aggregates it had
// committed — a bit-exact partial SweepResult.
type CheckpointStatus struct {
	// ConfigDigest identifies the sweep the checkpoint was taken for
	// (compare against ConfigDigest of the config).
	ConfigDigest string
	// CommittedChunks and Chunks report progress: chunks [0, CommittedChunks)
	// of Chunks are covered by Partial.
	CommittedChunks, Chunks int
	// Partial holds the committed aggregates as a SweepResult. Its rows are
	// restored bit-exactly, so a checkpoint written at completion formats
	// (and digests) identically to the result the sweep returned.
	Partial *SweepResult
}

// ReadCheckpoint loads a sweep checkpoint file without resuming it: the
// inspection path behind progress endpoints and partial-aggregate streams.
// The file is validated (version, checksum) exactly as a resume would.
func ReadCheckpoint(path string) (*CheckpointStatus, error) {
	snap, err := checkpoint.Load(path)
	if err != nil {
		return nil, err
	}
	overall, byWmin, byCell, err := restoreSnapshot(snap)
	if err != nil {
		return nil, fmt.Errorf("volatile: checkpoint %s: %w", path, err)
	}
	res := &SweepResult{
		Instances:       overall.Instances(),
		Overall:         overall.Rows(),
		ByWmin:          make(map[int][]TableRow, len(byWmin)),
		ByCell:          make(map[Cell][]TableRow, len(byCell)),
		Censored:        snap.Censored,
		FailedInstances: snap.Failed,
	}
	for wmin, agg := range byWmin {
		res.ByWmin[wmin] = agg.Rows()
	}
	for cell, agg := range byCell {
		res.ByCell[cell] = agg.Rows()
	}
	return &CheckpointStatus{
		ConfigDigest:    snap.ConfigDigest,
		CommittedChunks: snap.NextChunk,
		Chunks:          snap.Chunks,
		Partial:         res,
	}, nil
}
