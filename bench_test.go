package volatile

// Benchmark harness: one benchmark per experimental artifact of the paper.
//
//	BenchmarkTable2     — Table 2  (avg dfb + wins, all 17 heuristics)
//	BenchmarkFigure2    — Figure 2 (avg dfb vs wmin, 6 plotted heuristics)
//	BenchmarkTable3x5   — Table 3 left  (communication ×5)
//	BenchmarkTable3x10  — Table 3 right (communication ×10)
//	BenchmarkFigure1Reduction — Figure 1 / Theorem 1 (3SAT reduction pipeline)
//	BenchmarkProposition2     — MCT vs exhaustive optimum, ncom = ∞
//	BenchmarkAblation*        — design-choice ablations (replication,
//	                            correction interpretation)
//
// Benchmarks run reduced sweeps (the paper uses 247 scenarios × 10 trials
// per cell; see EXPERIMENTS.md for full-scale runs via cmd/volabench) and
// log the regenerated rows on their first iteration. Key values are also
// exposed as benchmark metrics so regressions are visible in -benchmem
// output diffs.

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/avail"
	"repro/internal/offline"
	"repro/internal/rng"
)

// benchSweepScale keeps bench iterations affordable; EXPERIMENTS.md records
// larger runs.
const (
	benchScenarios = 1
	benchTrials    = 1
)

func logRows(b *testing.B, title string, rows []TableRow) {
	b.Helper()
	b.Logf("%s", title)
	b.Logf("%-10s %-12s %s", "Algorithm", "Average dfb", "#wins")
	for _, r := range rows {
		b.Logf("%-10s %-12.2f %d", r.Name, r.AvgDFB, r.Wins)
	}
}

func dfb(rows []TableRow, name string) float64 {
	v, _ := rowValue(rows, name) // NaN for absent heuristics, never a fake 0
	return v
}

func benchTable2(b *testing.B, mode Mode) {
	for i := 0; i < b.N; i++ {
		cfg := Table2Config(benchScenarios, benchTrials, 42)
		cfg.Mode = mode
		res, err := RunSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRows(b, fmt.Sprintf("Table 2 (%s mode, reduced: %d instances)", mode, res.Instances), res.Overall)
			b.ReportMetric(dfb(res.Overall, "emct"), "emct_dfb")
			b.ReportMetric(dfb(res.Overall, "mct"), "mct_dfb")
			b.ReportMetric(dfb(res.Overall, "random"), "random_dfb")
		}
	}
}

func BenchmarkTable2(b *testing.B) { benchTable2(b, ModeSlot) }

// BenchmarkTable2Event regenerates the same grid on the event-driven time
// base; CI's bench-smoke records both entries side by side in
// BENCH_table2.json so the two engines' costs stay visible together.
func BenchmarkTable2Event(b *testing.B) { benchTable2(b, ModeEvent) }

// BenchmarkMoldableSweep runs the reduced Table 2 grid under the
// maximum-iters allocation policy — the moldable family's default, and its
// most allocation-active policy (every iteration resizes to the UP count).
// CI's bench-smoke records it in BENCH_table2.json next to the rigid-model
// entries, so the per-iteration allocation overhead and the moldable dfb
// ordering stay visible per commit.
func BenchmarkMoldableSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := MoldableSweep(MoldableSweepConfig("maximum-iters", benchScenarios, benchTrials, 42))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRows(b, fmt.Sprintf("Moldable (maximum-iters, reduced: %d instances)", res.Instances), res.Overall)
			b.ReportMetric(dfb(res.Overall, "emct"), "emct_dfb")
			b.ReportMetric(dfb(res.Overall, "mct"), "mct_dfb")
			b.ReportMetric(dfb(res.Overall, "random"), "random_dfb")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := Figure2Config(benchScenarios, benchTrials, 42)
		res, err := RunSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			wmins, series := Figure2Series(res, cfg.Heuristics)
			names := append([]string(nil), cfg.Heuristics...)
			sort.Strings(names)
			b.Logf("Figure 2 (reduced): avg dfb per wmin")
			header := "wmin"
			for _, h := range names {
				header += fmt.Sprintf("  %8s", h)
			}
			b.Logf("%s", header)
			for xi, w := range wmins {
				line := fmt.Sprintf("%4d", w)
				for _, h := range names {
					line += fmt.Sprintf("  %8.2f", series[h][xi])
				}
				b.Logf("%s", line)
			}
			// The figure's headline: EMCT's advantage over MCT at the
			// hard end of the axis.
			last := len(wmins) - 1
			b.ReportMetric(series["mct"][last]-series["emct"][last], "mct_minus_emct_at_wmin10")
		}
	}
}

func benchTable3(b *testing.B, scale int) {
	for i := 0; i < b.N; i++ {
		cfg := Table3Config(scale, 10, 2, 42)
		res, err := RunSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRows(b, fmt.Sprintf("Table 3 ×%d (reduced: %d instances)", scale, res.Instances), res.Overall)
			b.ReportMetric(dfb(res.Overall, "mct"), "mct_dfb")
			b.ReportMetric(dfb(res.Overall, "emct*"), "emct_star_dfb")
			b.ReportMetric(dfb(res.Overall, "ud*"), "ud_star_dfb")
		}
	}
}

func BenchmarkTable3x5(b *testing.B)  { benchTable3(b, 5) }
func BenchmarkTable3x10(b *testing.B) { benchTable3(b, 10) }

// BenchmarkFigure1Reduction regenerates the Theorem 1 pipeline on the
// paper's Figure 1 formula: build the reduction, solve with DPLL, construct
// the schedule, and verify it within the horizon.
func BenchmarkFigure1Reduction(b *testing.B) {
	f := &offline.CNF{NumVars: 4, Clauses: []offline.Clause{
		{-1, 3, 4}, {1, -2, -3}, {2, 3, -4}, {1, 2, 4}, {-1, -2, -4}, {-2, 3, 4},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in, err := offline.FromCNF(f)
		if err != nil {
			b.Fatal(err)
		}
		assignment, ok := f.Solve()
		if !ok {
			b.Fatal("figure-1 formula must be satisfiable")
		}
		sched, err := offline.ScheduleFromAssignment(f, in, assignment)
		if err != nil {
			b.Fatal(err)
		}
		done, makespan, err := in.Replay(sched)
		if err != nil || done != in.M || makespan > in.N() {
			b.Fatalf("schedule invalid: done=%d makespan=%d err=%v", done, makespan, err)
		}
		if i == 0 {
			b.Logf("Figure 1: p=%d, N=%d, schedule makespan %d", in.P(), in.N(), makespan)
		}
	}
}

// BenchmarkProposition2 measures the ncom=∞ MCT schedule against the
// exhaustive-allocation optimum on random instances (they must agree).
func BenchmarkProposition2(b *testing.B) {
	r := rng.New(9)
	instances := make([]*offline.Instance, 16)
	for i := range instances {
		in := &offline.Instance{
			Tprog: 1 + r.Intn(3), Tdata: r.Intn(3),
			Ncom: offline.NoContention, M: 1 + r.Intn(4),
		}
		p := 2 + r.Intn(3)
		in.W = make([]int, p)
		for q := 0; q < p; q++ {
			in.W[q] = 1 + r.Intn(3)
			v := make(avail.Vector, 25)
			for t := range v {
				if r.Bernoulli(0.7) {
					v[t] = avail.Up
				} else {
					v[t] = avail.Reclaimed
				}
			}
			in.Vectors = append(in.Vectors, v)
		}
		instances[i] = in
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in := instances[i%len(instances)]
		_, mct, err := offline.MCTNoContention(in)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := offline.OptimalNoContention(in)
		if err != nil {
			b.Fatal(err)
		}
		if mct != opt {
			b.Fatalf("Proposition 2 violated: MCT %d vs optimal %d", mct, opt)
		}
	}
}

// BenchmarkAblationReplication quantifies the replication design choice
// (Section 6.1): the same sweep with replication on vs off, on a cell with
// few tasks where stragglers dominate.
func BenchmarkAblationReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cell := Cell{Tasks: 5, Ncom: 5, Wmin: 5}
		run := func(maxReplicas int) float64 {
			var total float64
			const scenarios = 12
			for seed := uint64(0); seed < scenarios; seed++ {
				scn := NewScenario(seed, cell, ScenarioOptions{MaxReplicas: maxReplicas})
				res, err := scn.Run("emct", 1)
				if err != nil {
					b.Fatal(err)
				}
				total += float64(res.Makespan)
			}
			return total / scenarios
		}
		withRepl := run(0) // 0 = paper default (2 extra replicas)
		without := run(-1) // disabled
		if i == 0 {
			b.Logf("Ablation: replication on: avg makespan %.0f; off: %.0f (gain %.1f%%)",
				withRepl, without, 100*(without-withRepl)/withRepl)
			b.ReportMetric(without/withRepl, "makespan_ratio_off_over_on")
		}
	}
}

// BenchmarkAblationCorrectionModes compares the paper's Equation 2
// correction ("*") with the aggressive extension ("+", scaling Delay's
// communication remainders too) on the contention-prone cell.
func BenchmarkAblationCorrectionModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunSweep(SweepConfig{
			Cells:      []Cell{ContentionCell()},
			Heuristics: []string{"emct", "emct*", "emct+", "mct", "mct*", "mct+"},
			Scenarios:  10,
			Trials:     2,
			Seed:       42,
			Options:    ScenarioOptions{CommScale: 10},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logRows(b, "Ablation: correction interpretations (comm ×10)", res.Overall)
			b.ReportMetric(dfb(res.Overall, "emct*")-dfb(res.Overall, "emct+"), "eq2_minus_aggressive")
		}
	}
}

// BenchmarkAblationSchedulingClasses compares the paper's three heuristic
// classes (Section 6.1) head to head: passive (assign once), dynamic
// (re-plan every slot; the paper's choice), and proactive (dynamic + abort
// bad commitments), all built on EMCT, with and without replication.
func BenchmarkAblationSchedulingClasses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		classes := []string{"passive-emct", "emct", "proactive-emct"}
		for _, repl := range []bool{true, false} {
			opt := ScenarioOptions{Processors: 12, Iterations: 3}
			if !repl {
				opt.MaxReplicas = -1
			}
			totals := make(map[string]int64, len(classes))
			const scenarios = 10
			for seed := uint64(0); seed < scenarios; seed++ {
				scn := NewScenario(seed, Cell{Tasks: 5, Ncom: 5, Wmin: 5}, opt)
				for _, h := range classes {
					res, err := scn.Run(h, 1)
					if err != nil {
						b.Fatal(err)
					}
					totals[h] += int64(res.Makespan)
				}
			}
			if i == 0 {
				b.Logf("classes with replication=%v: passive=%d dynamic=%d proactive=%d (total slots, %d scenarios)",
					repl, totals["passive-emct"], totals["emct"], totals["proactive-emct"], scenarios)
				if repl {
					b.ReportMetric(float64(totals["passive-emct"])/float64(totals["emct"]), "passive_over_dynamic")
					b.ReportMetric(float64(totals["proactive-emct"])/float64(totals["emct"]), "proactive_over_dynamic")
				}
			}
		}
	}
}

// BenchmarkRunSweep measures sweep-pipeline scaling across worker counts on
// a reduced grid: 2 cells × 8 scenarios × 1 trial, all 17 heuristics, i.e.
// 16 equally sized chunks for the sharded committer to reorder. Near-linear
// scaling from 1 to 4 workers is the acceptance bar for the sharded
// aggregation (no serial post-pass, no shared locks in the hot loop).
func BenchmarkRunSweep(b *testing.B) {
	cells := []Cell{{Tasks: 20, Ncom: 10, Wmin: 5}, {Tasks: 20, Ncom: 5, Wmin: 5}}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunSweep(SweepConfig{
					Cells:     cells,
					Scenarios: 8,
					Trials:    1,
					Seed:      42,
					Workers:   workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Instances == 0 {
					b.Fatal("empty sweep")
				}
			}
		})
	}
}

// BenchmarkSingleRunHeavy measures engine throughput on the heaviest grid
// cell (n=40, ncom=5, wmin=10).
func BenchmarkSingleRunHeavy(b *testing.B) {
	scn := NewScenario(1, Cell{Tasks: 40, Ncom: 5, Wmin: 10}, ScenarioOptions{})
	b.ReportAllocs()
	totalSlots := 0
	for i := 0; i < b.N; i++ {
		res, err := scn.Run("emct*", uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		totalSlots += res.Makespan
	}
	b.ReportMetric(float64(totalSlots)/float64(b.N), "slots/run")
}

// BenchmarkSingleRunLight measures engine throughput on a light cell.
func BenchmarkSingleRunLight(b *testing.B) {
	scn := NewScenario(1, Cell{Tasks: 5, Ncom: 20, Wmin: 1}, ScenarioOptions{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scn.Run("emct*", uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
