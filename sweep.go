package volatile

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/rng"
	"repro/internal/stats"
)

// TableRow is one line of a Table 2-style ranking: a heuristic's average
// degradation-from-best (percent) and its number of (tied-)wins.
type TableRow = stats.Row

// SweepConfig describes one experiment sweep: a set of grid cells, the
// heuristics to compare, and the number of scenarios and trials per cell.
// All heuristics face identical instances (same platform, same availability
// trajectories), which the dfb metric requires.
type SweepConfig struct {
	// Cells are the (n, ncom, wmin) combinations to cover.
	Cells []Cell
	// Heuristics are the heuristic names to compare (default: all 17).
	Heuristics []string
	// Scenarios is the number of random scenarios per cell (paper: 247).
	Scenarios int
	// Trials is the number of availability draws per scenario (paper: 10).
	Trials int
	// Options tunes scenario generation (CommScale for Table 3, etc.).
	Options ScenarioOptions
	// Seed makes the whole sweep reproducible.
	Seed uint64
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives (completedInstances, totalInstances).
	Progress func(done, total int)
}

// SweepResult aggregates a sweep.
type SweepResult struct {
	// Instances is the number of (scenario × trial) instances aggregated.
	Instances int
	// Overall ranks heuristics over all instances (Table 2).
	Overall []TableRow
	// ByWmin ranks heuristics per wmin value (Figure 2's x-axis).
	ByWmin map[int][]TableRow
	// ByCell ranks heuristics per grid cell.
	ByCell map[Cell][]TableRow
	// Censored counts runs that hit the slot cap.
	Censored int
}

// RunSweep executes the sweep, parallelizing across instances. Results are
// deterministic for a fixed config, independent of worker count.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	if len(cfg.Cells) == 0 {
		return nil, fmt.Errorf("volatile: sweep with no cells")
	}
	if cfg.Scenarios <= 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("volatile: sweep needs Scenarios > 0 and Trials > 0")
	}
	heuristics := cfg.Heuristics
	if len(heuristics) == 0 {
		heuristics = Heuristics()
	}
	for _, h := range heuristics {
		if _, err := NewScenario(0, Cell{Tasks: 1, Ncom: 1, Wmin: 1}, ScenarioOptions{}).Run(h, 0); err != nil {
			return nil, fmt.Errorf("volatile: heuristic %q: %w", h, err)
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct {
		cellIdx, scenIdx, trialIdx int
	}
	var jobs []job
	for c := range cfg.Cells {
		for s := 0; s < cfg.Scenarios; s++ {
			for tr := 0; tr < cfg.Trials; tr++ {
				jobs = append(jobs, job{c, s, tr})
			}
		}
	}
	results := make([]*stats.InstanceResult, len(jobs))
	censored := make([]int, len(jobs))

	// Scenario cache: scenario generation is deterministic in
	// (seed, cell, scenario index), shared across trials.
	scenarios := make([]*Scenario, len(cfg.Cells)*cfg.Scenarios)
	for c, cell := range cfg.Cells {
		for s := 0; s < cfg.Scenarios; s++ {
			scnSeed := deriveSeed(cfg.Seed, uint64(c), uint64(s), 0xA11CE)
			scenarios[c*cfg.Scenarios+s] = NewScenario(scnSeed, cell, cfg.Options)
		}
	}

	var wg sync.WaitGroup
	jobCh := make(chan int)
	errCh := make(chan error, workers)
	// stop is closed on the first worker error so the feeder below never
	// blocks on a channel no worker is draining (a worker that aborts stops
	// receiving; with an unbuffered jobCh the feed would deadlock otherwise).
	stop := make(chan struct{})
	var stopOnce sync.Once
	var doneMu sync.Mutex
	done := 0
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner := NewRunner()
			for ji := range jobCh {
				j := jobs[ji]
				scn := scenarios[j.cellIdx*cfg.Scenarios+j.scenIdx]
				trialSeed := deriveSeed(cfg.Seed, uint64(j.cellIdx), uint64(j.scenIdx), uint64(j.trialIdx))
				ir := &stats.InstanceResult{
					Makespans: make(map[string]int, len(heuristics)),
					Censored:  make(map[string]bool),
				}
				nCens := 0
				for _, h := range heuristics {
					res, err := scn.RunWith(runner, h, trialSeed)
					if err != nil {
						select {
						case errCh <- fmt.Errorf("volatile: %s on %s: %w", h, scn.inner.Name, err):
						default:
						}
						stopOnce.Do(func() { close(stop) })
						return
					}
					ir.Makespans[h] = res.Makespan
					if !res.Completed {
						ir.Censored[h] = true
						nCens++
					}
				}
				results[ji] = ir
				censored[ji] = nCens
				if cfg.Progress != nil {
					doneMu.Lock()
					done++
					d := done
					doneMu.Unlock()
					cfg.Progress(d, len(jobs))
				}
			}
		}()
	}
feed:
	for ji := range jobs {
		select {
		case jobCh <- ji:
		case <-stop:
			break feed
		}
	}
	close(jobCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	// Deterministic sequential aggregation.
	overall := stats.NewAggregator()
	byWmin := make(map[int]*stats.Aggregator)
	byCell := make(map[Cell]*stats.Aggregator)
	out := &SweepResult{ByWmin: make(map[int][]TableRow), ByCell: make(map[Cell][]TableRow)}
	for ji, ir := range results {
		if ir == nil {
			continue
		}
		j := jobs[ji]
		cell := cfg.Cells[j.cellIdx]
		overall.Add(ir)
		if byWmin[cell.Wmin] == nil {
			byWmin[cell.Wmin] = stats.NewAggregator()
		}
		byWmin[cell.Wmin].Add(ir)
		if byCell[cell] == nil {
			byCell[cell] = stats.NewAggregator()
		}
		byCell[cell].Add(ir)
		out.Censored += censored[ji]
	}
	out.Instances = overall.Instances()
	out.Overall = overall.Rows()
	for wmin, agg := range byWmin {
		out.ByWmin[wmin] = agg.Rows()
	}
	for cell, agg := range byCell {
		out.ByCell[cell] = agg.Rows()
	}
	return out, nil
}

// deriveSeed mixes sweep indices into a reproducible sub-seed.
func deriveSeed(parts ...uint64) uint64 {
	s := rng.SplitMix64(0x9E3779B97F4A7C15)
	acc := s.Next()
	for _, p := range parts {
		sp := rng.SplitMix64(acc ^ p)
		acc = sp.Next()
	}
	return acc
}

// Table2Config builds the sweep of the paper's Table 2: the full Table 1
// grid with the given per-cell scenario and trial counts (the paper uses
// 247 scenarios × 10 trials; scale down for quick runs).
func Table2Config(scenarios, trials int, seed uint64) SweepConfig {
	return SweepConfig{
		Cells:     PaperGrid(),
		Scenarios: scenarios,
		Trials:    trials,
		Seed:      seed,
	}
}

// Figure2Config builds the sweep behind Figure 2: the same grid, restricted
// to the heuristics the figure plots (mct, mct*, emct, emct*, ud*, lw*).
func Figure2Config(scenarios, trials int, seed uint64) SweepConfig {
	cfg := Table2Config(scenarios, trials, seed)
	cfg.Heuristics = []string{"mct", "mct*", "emct", "emct*", "ud*", "lw*"}
	return cfg
}

// Table3Config builds a contention-prone sweep of Table 3: n=20, ncom=5,
// wmin=1 with communication scaled by commScale (5 or 10), greedy
// heuristics only (as in the paper's table).
func Table3Config(commScale, scenarios, trials int, seed uint64) SweepConfig {
	return SweepConfig{
		Cells:      []Cell{ContentionCell()},
		Heuristics: GreedyHeuristics(),
		Scenarios:  scenarios,
		Trials:     trials,
		Options:    ScenarioOptions{CommScale: commScale},
		Seed:       seed,
	}
}

// Figure2Series extracts, for each named heuristic, its average dfb per
// wmin value (ascending), ready for plotting. A heuristic absent from every
// wmin bucket is omitted from the series map; individual missing samples are
// NaN (never 0, which would read as "tied-best").
func Figure2Series(res *SweepResult, heuristics []string) (wmins []int, series map[string][]float64) {
	for wmin := range res.ByWmin {
		wmins = append(wmins, wmin)
	}
	sort.Ints(wmins)
	series = make(map[string][]float64, len(heuristics))
	for _, h := range heuristics {
		ys := make([]float64, len(wmins))
		any := false
		for i, wmin := range wmins {
			v, ok := rowValue(res.ByWmin[wmin], h)
			if ok {
				any = true
			}
			ys[i] = v
		}
		if any {
			series[h] = ys
		}
	}
	return wmins, series
}

// rowValue looks a heuristic up in a ranking. Absent heuristics report
// (NaN, false) so callers cannot mistake missing data for a perfect score.
func rowValue(rows []TableRow, name string) (float64, bool) {
	for _, r := range rows {
		if r.Name == name {
			return r.AvgDFB, true
		}
	}
	return math.NaN(), false
}
