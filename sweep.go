package volatile

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/rng"
	"repro/internal/stats"
)

// TableRow is one line of a Table 2-style ranking: a heuristic's average
// degradation-from-best (percent) and its number of (tied-)wins.
type TableRow = stats.Row

// SweepConfig describes one experiment sweep: a set of grid cells, the
// heuristics to compare, and the number of scenarios and trials per cell.
// All heuristics face identical instances (same platform, same availability
// trajectories), which the dfb metric requires.
type SweepConfig struct {
	// Cells are the (n, ncom, wmin) combinations to cover.
	Cells []Cell
	// Heuristics are the heuristic names to compare (default: all 17).
	Heuristics []string
	// Scenarios is the number of random scenarios per cell (paper: 247).
	Scenarios int
	// Trials is the number of availability draws per scenario (paper: 10).
	Trials int
	// Options tunes scenario generation (CommScale for Table 3, etc.).
	Options ScenarioOptions
	// Mode selects the engine time base (default ModeSlot). Event mode is
	// distribution-equivalent but consumes the availability RNG streams at
	// sojourn granularity, so sweep aggregates differ from slot mode within
	// sampling noise; see EXPERIMENTS.md.
	Mode Mode
	// Seed makes the whole sweep reproducible.
	Seed uint64
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives (completedInstances, totalInstances).
	// It may be called concurrently from several worker goroutines; each
	// done value in 1..total is delivered exactly once, but not necessarily
	// in ascending order. A resumed sweep starts done at the instance count
	// its checkpoint already covers.
	Progress func(done, total int)
	// Checkpoint, when non-nil, makes the sweep crash-safe: committed state
	// is persisted at chunk boundaries and a rerun with Checkpoint.Resume
	// continues from the watermark, bit-identical to an uninterrupted run.
	Checkpoint *CheckpointConfig
	// Stop, when non-nil, requests a graceful interrupt when closed: no new
	// chunks are fed, in-flight chunks commit, a final checkpoint is written
	// (when configured), and the sweep returns *InterruptedError.
	Stop <-chan struct{}
	// MaxRetries bounds per-instance rerun attempts after a failed run
	// (default 0: fail fast). Retries re-derive the identical trial seed, so
	// a transient failure recovered within the budget leaves the sweep
	// output bit-identical to an undisturbed run.
	MaxRetries int
	// RetryBackoff is the wait before the first retry, doubling per attempt
	// (default 0: retry immediately).
	RetryBackoff time.Duration
	// ContinueOnError switches retry-exhausted instances from aborting the
	// sweep to record-and-continue: the instance is dropped from the
	// aggregates and surfaced via SweepResult.FailedInstances /
	// InstanceErrors.
	ContinueOnError bool
	// Faults injects deterministic failures (worker errors, committer
	// crashes, checkpoint-I/O faults) for crash-safety tests; nil in
	// production.
	Faults *faultinject.Plan
}

// SweepResult aggregates a sweep.
type SweepResult struct {
	// Instances is the number of (scenario × trial) instances aggregated.
	Instances int
	// Overall ranks heuristics over all instances (Table 2).
	Overall []TableRow
	// ByWmin ranks heuristics per wmin value (Figure 2's x-axis).
	ByWmin map[int][]TableRow
	// ByCell ranks heuristics per grid cell.
	ByCell map[Cell][]TableRow
	// Censored counts runs that hit the slot cap.
	Censored int
	// FailedInstances counts instances dropped after exhausting their retry
	// budget under ContinueOnError. They contribute to no aggregate; a
	// nonzero count means the rows above summarize a censored population.
	FailedInstances int
	// InstanceErrors samples the errors behind FailedInstances (bounded; a
	// long degraded sweep keeps the first few, not megabytes of repeats).
	InstanceErrors []string
	// Warnings reports non-fatal degradations — checkpoint writes that
	// failed while the sweep itself carried on.
	Warnings []string
}

// RunSweep executes the sweep, parallelizing across instances. Results are
// deterministic for a fixed config, independent of worker count: workers
// aggregate into per-chunk shards that are merged in a fixed order (see
// runSharded), so the output is bit-identical to a sequential pass.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	heuristics, err := sweepHeuristics(cfg.Cells, cfg.Scenarios, cfg.Trials, cfg.Heuristics)
	if err != nil {
		return nil, err
	}
	return runSharded(shardedSweep{
		cells:     cfg.Cells,
		scenarios: cfg.Scenarios,
		trials:    cfg.Trials,
		options:   cfg.Options,
		seed:      cfg.Seed,
		workers:   cfg.Workers,
		progress:  cfg.Progress,
		control: sweepControl{
			digest: sweepConfigDigest("runsweep", cfg.Cells, heuristics,
				cfg.Scenarios, cfg.Trials, cfg.Options, cfg.Mode, cfg.Seed),
			checkpoint:      cfg.Checkpoint,
			stop:            cfg.Stop,
			faults:          cfg.Faults,
			maxRetries:      cfg.MaxRetries,
			retryBackoff:    cfg.RetryBackoff,
			continueOnError: cfg.ContinueOnError,
		},
		newRunner: func() instanceRunner {
			rn := NewRunner()
			rn.SetMode(cfg.Mode)
			return func(scn *Scenario, cellIdx, scenIdx, trialIdx int, ir *stats.InstanceResult) (int, error) {
				trialSeed := deriveSeed(cfg.Seed, uint64(cellIdx), uint64(scenIdx), uint64(trialIdx))
				nCens := 0
				for _, h := range heuristics {
					res, err := scn.RunWith(rn, h, trialSeed)
					if err != nil {
						return 0, fmt.Errorf("volatile: %s on %s: %w", h, scn.inner.Name, err)
					}
					ir.Makespans[h] = res.Makespan
					if !res.Completed {
						ir.Censored[h] = true
						nCens++
					}
				}
				return nCens, nil
			}
		},
	})
}

// validateSweepShape checks the grid parameters every sweep flavour
// shares (RunSweep, TraceSweep, CompareSweep, BatchSweep).
func validateSweepShape(cells []Cell, scenarios, trials int) error {
	if len(cells) == 0 {
		return fmt.Errorf("volatile: sweep with no cells")
	}
	if scenarios <= 0 || trials <= 0 {
		return fmt.Errorf("volatile: sweep needs Scenarios > 0 and Trials > 0")
	}
	return nil
}

// sweepHeuristics validates the common sweep parameters and resolves the
// heuristic list, rejecting unknown names via a registry lookup (no
// throwaway simulation runs) so misconfigured sweeps fail fast.
func sweepHeuristics(cells []Cell, scenarios, trials int, heuristics []string) ([]string, error) {
	if err := validateSweepShape(cells, scenarios, trials); err != nil {
		return nil, err
	}
	if len(heuristics) == 0 {
		heuristics = Heuristics()
	}
	for _, h := range heuristics {
		if _, err := core.Lookup(h); err != nil {
			return nil, fmt.Errorf("volatile: heuristic %q: %w", h, err)
		}
	}
	return heuristics, nil
}

// instanceRunner executes one (cell, scenario, trial) instance, filling ir
// with every heuristic's makespan. It returns the instance's censored-run
// count. Each worker goroutine gets its own instanceRunner (and thus its own
// engine and trial scratch) from the factory passed to runSharded.
type instanceRunner func(scn *Scenario, cellIdx, scenIdx, trialIdx int, ir *stats.InstanceResult) (censoredRuns int, err error)

// sweepControl carries the durability and failure-policy knobs every sweep
// flavour shares: the canonical config digest checkpoints are bound to,
// checkpoint placement, graceful stop, fault injection, and the retry
// policy. The zero value means "no checkpointing, fail fast" — the
// pre-durability behaviour.
type sweepControl struct {
	digest          string
	checkpoint      *CheckpointConfig
	stop            <-chan struct{}
	faults          *faultinject.Plan
	maxRetries      int
	retryBackoff    time.Duration
	continueOnError bool
}

// shardedSweep is the input to runSharded: the grid geometry plus a factory
// for per-worker instance runners.
type shardedSweep struct {
	cells     []Cell
	scenarios int
	trials    int
	options   ScenarioOptions
	seed      uint64
	workers   int
	progress  func(done, total int)
	control   sweepControl
	newRunner func() instanceRunner
}

// maxInstanceErrors bounds SweepResult.InstanceErrors; a sweep degrading on
// every chunk reports a sample of its failures, not all of them.
const maxInstanceErrors = 4

// maxChunkErrors bounds the per-chunk error sample workers ship to the
// committer.
const maxChunkErrors = 2

// runSharded is the sweep pipeline shared by RunSweep and TraceSweep.
//
// Work is dispatched at chunk granularity, one chunk per (cell, scenario)
// pair, and every chunk's trials run in order on a single worker. Each
// worker folds its current chunk into a stats.ShardAggregator; completed
// shards are handed to a single committer goroutine that merges them into
// the overall / per-wmin / per-cell aggregates strictly in chunk order
// (buffering out-of-order arrivals in a reorder window). Chunk order equals
// the job order of a sequential pass, and stats.Merge replays instances in
// that order, so the aggregates — floating-point summation order included —
// are bit-identical for every worker count. Committed shards are recycled
// through a pool, and the feeder holds a window permit per uncommitted
// chunk, so even when one slow chunk stalls the commit cursor the reorder
// window — and with it sweep memory — stays proportional to the worker
// count (× chunk size), never to the total instance count.
func runSharded(sw shardedSweep) (*SweepResult, error) {
	if err := sw.options.Validate(); err != nil {
		return nil, err
	}
	ctl := sw.control
	ck := ctl.checkpoint
	every := DefaultCheckpointEvery
	if ck != nil {
		if ck.Path == "" {
			return nil, fmt.Errorf("volatile: CheckpointConfig needs a Path")
		}
		// A negative Every is a typo, not a cadence: silently falling back
		// to the default would quietly change how much work a crash loses.
		if ck.Every < 0 {
			return nil, fmt.Errorf("volatile: CheckpointConfig.Every must be >= 0 (0 means DefaultCheckpointEvery; got %d)", ck.Every)
		}
		if ck.Every > 0 {
			every = ck.Every
		}
	}
	workers := sw.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks := len(sw.cells) * sw.scenarios
	total := chunks * sw.trials

	// Resume: restore the committer's aggregates and watermark from the
	// checkpoint, after binding it to this exact sweep (config digest and
	// chunk count). A missing file is a fresh start, so resume commands are
	// idempotent; a damaged or mismatched file is an error, never a silent
	// restart from zero.
	overall := stats.NewAggregator()
	byWmin := make(map[int]*stats.Aggregator)
	byCell := make(map[Cell]*stats.Aggregator)
	censored, failed := 0, 0
	startChunk := 0
	if ck != nil && ck.Resume {
		switch snap, err := checkpoint.Load(ck.Path); {
		case err != nil && isNotExist(err):
			// No checkpoint yet: run from scratch.
		case err != nil:
			return nil, err
		default:
			if snap.ConfigDigest != ctl.digest {
				return nil, fmt.Errorf("volatile: checkpoint %s was taken for a different sweep config (digest %.12s… != %.12s…)",
					ck.Path, snap.ConfigDigest, ctl.digest)
			}
			if snap.Chunks != chunks {
				return nil, fmt.Errorf("volatile: checkpoint %s covers %d chunks, sweep has %d",
					ck.Path, snap.Chunks, chunks)
			}
			if overall, byWmin, byCell, err = restoreSnapshot(snap); err != nil {
				return nil, err
			}
			censored, failed = snap.Censored, snap.Failed
			startChunk = snap.NextChunk
		}
	}

	// Scenario cache: scenario generation is deterministic in
	// (seed, cell, scenario index), shared across trials. Chunks the
	// checkpoint already covers are never touched, so their scenarios are
	// not built.
	scenarios := make([]*Scenario, chunks)
	for ci := startChunk; ci < chunks; ci++ {
		c, s := ci/sw.scenarios, ci%sw.scenarios
		scnSeed := deriveSeed(sw.seed, uint64(c), uint64(s), 0xA11CE)
		scenarios[ci] = NewScenario(scnSeed, sw.cells[c], sw.options)
	}

	type doneChunk struct {
		idx    int
		shard  *stats.ShardAggregator
		failed int
		errs   []string
	}
	jobCh := make(chan int)
	commitCh := make(chan doneChunk, workers)
	errCh := make(chan error, workers)
	// stop is closed on the first worker error so the feeder below never
	// blocks on a channel no worker is draining (a worker that aborts stops
	// receiving; with an unbuffered jobCh the feed would deadlock otherwise).
	stop := make(chan struct{})
	var stopOnce sync.Once
	var done atomic.Int64
	done.Store(int64(startChunk) * int64(sw.trials))
	shardPool := sync.Pool{New: func() any { return stats.NewShardAggregator() }}
	// window bounds the number of fed-but-uncommitted chunks: the feeder
	// acquires a permit per chunk, the committer releases it once the chunk
	// is merged. Without it, one slow chunk at the commit cursor would let
	// fast workers pile arbitrarily many completed shards into the reorder
	// buffer, growing memory toward the total instance count.
	window := make(chan struct{}, 4*workers+4)

	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := sw.newRunner()
			sleep := ctl.faults.SleepFn()
			for ci := range jobCh {
				scn := scenarios[ci]
				cellIdx, scenIdx := ci/sw.scenarios, ci%sw.scenarios
				shard := shardPool.Get().(*stats.ShardAggregator)
				chunkFailed := 0
				var chunkErrs []string
				for tr := 0; tr < sw.trials; tr++ {
					ir := shard.Acquire()
					// Retry loop: every attempt re-derives the identical
					// trial seed inside run, so a recovered transient
					// failure contributes exactly the instance an
					// undisturbed sweep would have.
					var nCens int
					var err error
					backoff := ctl.retryBackoff
					for attempt := 0; ; attempt++ {
						if err = ctl.faults.InstanceFault(ci, tr, attempt); err == nil {
							nCens, err = run(scn, cellIdx, scenIdx, tr, ir)
						}
						if err == nil {
							break
						}
						if attempt >= ctl.maxRetries {
							break
						}
						// A failed attempt may have partially filled the
						// result; wipe it before the rerun.
						clear(ir.Makespans)
						clear(ir.Censored)
						if backoff > 0 {
							sleep(backoff)
							backoff *= 2
						}
					}
					if err != nil {
						if ctl.continueOnError {
							// Record-and-continue: drop the instance, keep
							// the sweep alive. The loss is surfaced via
							// FailedInstances, and — because the verdict to
							// drop depends only on (chunk, trial) — is the
							// same for every worker count.
							shard.Discard(ir)
							chunkFailed++
							if len(chunkErrs) < maxChunkErrors {
								chunkErrs = append(chunkErrs, err.Error())
							}
							if sw.progress != nil {
								sw.progress(int(done.Add(1)), total)
							}
							continue
						}
						select {
						case errCh <- err:
						default:
						}
						stopOnce.Do(func() { close(stop) })
						shard.Reset()
						shardPool.Put(shard)
						return
					}
					shard.Add(ir, nCens)
					if sw.progress != nil {
						sw.progress(int(done.Add(1)), total)
					}
				}
				commitCh <- doneChunk{idx: ci, shard: shard, failed: chunkFailed, errs: chunkErrs}
			}
		}()
	}

	// Committer: merges shards in chunk order, holding out-of-order
	// arrivals in a reorder window. It owns the aggregates (and all
	// durability bookkeeping), so no lock guards them; main reads them only
	// after committerDone.
	next := startChunk
	var instanceErrors, warnings []string
	var crashErr error
	ckSeq := 0
	committerDone := make(chan struct{})
	persist := func() {
		if ferr := ctl.faults.CheckpointFault(ckSeq); ferr != nil {
			ckSeq++
			warnings = append(warnings, fmt.Sprintf("checkpoint write %s failed: %v", ck.Path, ferr))
			return
		}
		ckSeq++
		snap := buildSnapshot(ctl.digest, chunks, next, censored, failed, overall, byWmin, byCell)
		if err := checkpoint.Save(ck.Path, snap); err != nil {
			// A failed checkpoint degrades durability, not correctness: the
			// sweep carries on and the caller learns via Warnings.
			warnings = append(warnings, fmt.Sprintf("checkpoint write %s failed: %v", ck.Path, err))
		}
	}
	go func() {
		defer close(committerDone)
		pending := make(map[int]doneChunk, workers)
		sinceCk := 0
		discard := func(dc doneChunk) {
			dc.shard.Reset()
			shardPool.Put(dc.shard)
			<-window
		}
		for dc := range commitCh {
			if crashErr != nil {
				// Simulated committer death: drain without merging, as a
				// killed process would simply never see these shards.
				discard(dc)
				continue
			}
			pending[dc.idx] = dc
			for {
				d, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				cell := sw.cells[next/sw.scenarios]
				bw := byWmin[cell.Wmin]
				if bw == nil {
					bw = stats.NewAggregator()
					byWmin[cell.Wmin] = bw
				}
				bc := byCell[cell]
				if bc == nil {
					bc = stats.NewAggregator()
					byCell[cell] = bc
				}
				stats.Merge(d.shard, overall, bw, bc)
				censored += d.shard.CensoredRuns()
				failed += d.failed
				for _, e := range d.errs {
					if len(instanceErrors) < maxInstanceErrors {
						instanceErrors = append(instanceErrors, e)
					}
				}
				d.shard.Reset()
				shardPool.Put(d.shard)
				<-window
				next++
				sinceCk++
				if ctl.faults != nil && ctl.faults.CrashAfterChunks > 0 && next == ctl.faults.CrashAfterChunks {
					// Injected crash at the worst point of the boundary: the
					// chunk is merged in memory but not yet checkpointed, so
					// resume must re-run it.
					crashErr = fmt.Errorf("volatile: %w after %d/%d chunks",
						faultinject.ErrCommitterCrash, next, chunks)
					stopOnce.Do(func() { close(stop) })
					for idx, p := range pending {
						delete(pending, idx)
						discard(p)
					}
					break
				}
				if ck != nil && sinceCk >= every {
					persist()
					sinceCk = 0
				}
			}
		}
		// Final checkpoint: covers completion, graceful stop and worker
		// abort alike — but not an injected committer crash, which models a
		// process that died before it could write anything more.
		if ck != nil && crashErr == nil {
			persist()
		}
	}()

	stopped := false
feed:
	for ci := startChunk; ci < chunks; ci++ {
		select {
		case window <- struct{}{}:
		case <-stop:
			break feed
		case <-ctl.stop:
			stopped = true
			break feed
		}
		select {
		case jobCh <- ci:
		case <-stop:
			break feed
		case <-ctl.stop:
			stopped = true
			break feed
		}
	}
	close(jobCh)
	wg.Wait()
	close(commitCh)
	<-committerDone
	if crashErr != nil {
		return nil, crashErr
	}
	select {
	case err := <-errCh:
		if ck != nil {
			return nil, fmt.Errorf("%w (committed progress checkpointed to %s; rerun with Checkpoint.Resume)", err, ck.Path)
		}
		return nil, err
	default:
	}
	if stopped {
		path := ""
		if ck != nil {
			path = ck.Path
		}
		return nil, &InterruptedError{Path: path, Committed: next, Chunks: chunks}
	}

	out := &SweepResult{
		Instances:       overall.Instances(),
		Overall:         overall.Rows(),
		ByWmin:          make(map[int][]TableRow, len(byWmin)),
		ByCell:          make(map[Cell][]TableRow, len(byCell)),
		Censored:        censored,
		FailedInstances: failed,
		InstanceErrors:  instanceErrors,
		Warnings:        warnings,
	}
	for wmin, agg := range byWmin {
		out.ByWmin[wmin] = agg.Rows()
	}
	for cell, agg := range byCell {
		out.ByCell[cell] = agg.Rows()
	}
	return out, nil
}

// isNotExist reports whether err denotes a missing checkpoint file (Load
// wraps the underlying *PathError, so errors.Is sees through it).
func isNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// deriveSeed mixes sweep indices into a reproducible sub-seed.
func deriveSeed(parts ...uint64) uint64 {
	s := rng.SplitMix64(0x9E3779B97F4A7C15)
	acc := s.Next()
	for _, p := range parts {
		sp := rng.SplitMix64(acc ^ p)
		acc = sp.Next()
	}
	return acc
}

// Table2Config builds the sweep of the paper's Table 2: the full Table 1
// grid with the given per-cell scenario and trial counts (the paper uses
// 247 scenarios × 10 trials; scale down for quick runs).
func Table2Config(scenarios, trials int, seed uint64) SweepConfig {
	return SweepConfig{
		Cells:     PaperGrid(),
		Scenarios: scenarios,
		Trials:    trials,
		Seed:      seed,
	}
}

// Figure2Config builds the sweep behind Figure 2: the same grid, restricted
// to the heuristics the figure plots (mct, mct*, emct, emct*, ud*, lw*).
func Figure2Config(scenarios, trials int, seed uint64) SweepConfig {
	cfg := Table2Config(scenarios, trials, seed)
	cfg.Heuristics = []string{"mct", "mct*", "emct", "emct*", "ud*", "lw*"}
	return cfg
}

// Table3Config builds a contention-prone sweep of Table 3: n=20, ncom=5,
// wmin=1 with communication scaled by commScale (5 or 10), greedy
// heuristics only (as in the paper's table).
func Table3Config(commScale, scenarios, trials int, seed uint64) SweepConfig {
	return SweepConfig{
		Cells:      []Cell{ContentionCell()},
		Heuristics: GreedyHeuristics(),
		Scenarios:  scenarios,
		Trials:     trials,
		Options:    ScenarioOptions{CommScale: commScale},
		Seed:       seed,
	}
}

// LargePConfig builds the volunteer-grid sweep (the large-platform regime,
// P = 1k-100k): one cell whose task count tracks the platform size (n = P,
// so the originals phase exercises full-width rounds) with a quarter-width
// communication budget, restricted to the informed greedy pairs whose
// incremental scoring and heap argmin carry that scale. Combine with
// ModeEvent for sojourn-granularity stepping; see EXPERIMENTS.md ("Large
// platforms") for expected runtimes per P.
func LargePConfig(processors, scenarios, trials int, seed uint64) SweepConfig {
	ncom := processors / 4
	if ncom < 1 {
		ncom = 1
	}
	return SweepConfig{
		Cells:      []Cell{{Tasks: processors, Ncom: ncom, Wmin: 3}},
		Heuristics: []string{"mct", "mct*", "emct", "emct*"},
		Scenarios:  scenarios,
		Trials:     trials,
		Options:    ScenarioOptions{Processors: processors},
		Seed:       seed,
	}
}

// Figure2Series extracts, for each named heuristic, its average dfb per
// wmin value (ascending), ready for plotting. A heuristic absent from every
// wmin bucket is omitted from the series map; individual missing samples are
// NaN (never 0, which would read as "tied-best").
func Figure2Series(res *SweepResult, heuristics []string) (wmins []int, series map[string][]float64) {
	for wmin := range res.ByWmin {
		wmins = append(wmins, wmin)
	}
	sort.Ints(wmins)
	series = make(map[string][]float64, len(heuristics))
	for _, h := range heuristics {
		ys := make([]float64, len(wmins))
		any := false
		for i, wmin := range wmins {
			v, ok := rowValue(res.ByWmin[wmin], h)
			if ok {
				any = true
			}
			ys[i] = v
		}
		if any {
			series[h] = ys
		}
	}
	return wmins, series
}

// rowValue looks a heuristic up in a ranking. Absent heuristics report
// (NaN, false) so callers cannot mistake missing data for a perfect score.
func rowValue(rows []TableRow, name string) (float64, bool) {
	for _, r := range rows {
		if r.Name == name {
			return r.AvgDFB, true
		}
	}
	return math.NaN(), false
}
