package volatile

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
)

// TableRow is one line of a Table 2-style ranking: a heuristic's average
// degradation-from-best (percent) and its number of (tied-)wins.
type TableRow = stats.Row

// SweepConfig describes one experiment sweep: a set of grid cells, the
// heuristics to compare, and the number of scenarios and trials per cell.
// All heuristics face identical instances (same platform, same availability
// trajectories), which the dfb metric requires.
type SweepConfig struct {
	// Cells are the (n, ncom, wmin) combinations to cover.
	Cells []Cell
	// Heuristics are the heuristic names to compare (default: all 17).
	Heuristics []string
	// Scenarios is the number of random scenarios per cell (paper: 247).
	Scenarios int
	// Trials is the number of availability draws per scenario (paper: 10).
	Trials int
	// Options tunes scenario generation (CommScale for Table 3, etc.).
	Options ScenarioOptions
	// Mode selects the engine time base (default ModeSlot). Event mode is
	// distribution-equivalent but consumes the availability RNG streams at
	// sojourn granularity, so sweep aggregates differ from slot mode within
	// sampling noise; see EXPERIMENTS.md.
	Mode Mode
	// Seed makes the whole sweep reproducible.
	Seed uint64
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives (completedInstances, totalInstances).
	// It may be called concurrently from several worker goroutines; each
	// done value in 1..total is delivered exactly once, but not necessarily
	// in ascending order.
	Progress func(done, total int)
}

// SweepResult aggregates a sweep.
type SweepResult struct {
	// Instances is the number of (scenario × trial) instances aggregated.
	Instances int
	// Overall ranks heuristics over all instances (Table 2).
	Overall []TableRow
	// ByWmin ranks heuristics per wmin value (Figure 2's x-axis).
	ByWmin map[int][]TableRow
	// ByCell ranks heuristics per grid cell.
	ByCell map[Cell][]TableRow
	// Censored counts runs that hit the slot cap.
	Censored int
}

// RunSweep executes the sweep, parallelizing across instances. Results are
// deterministic for a fixed config, independent of worker count: workers
// aggregate into per-chunk shards that are merged in a fixed order (see
// runSharded), so the output is bit-identical to a sequential pass.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	heuristics, err := sweepHeuristics(cfg.Cells, cfg.Scenarios, cfg.Trials, cfg.Heuristics)
	if err != nil {
		return nil, err
	}
	return runSharded(shardedSweep{
		cells:     cfg.Cells,
		scenarios: cfg.Scenarios,
		trials:    cfg.Trials,
		options:   cfg.Options,
		seed:      cfg.Seed,
		workers:   cfg.Workers,
		progress:  cfg.Progress,
		newRunner: func() instanceRunner {
			rn := NewRunner()
			rn.SetMode(cfg.Mode)
			return func(scn *Scenario, cellIdx, scenIdx, trialIdx int, ir *stats.InstanceResult) (int, error) {
				trialSeed := deriveSeed(cfg.Seed, uint64(cellIdx), uint64(scenIdx), uint64(trialIdx))
				nCens := 0
				for _, h := range heuristics {
					res, err := scn.RunWith(rn, h, trialSeed)
					if err != nil {
						return 0, fmt.Errorf("volatile: %s on %s: %w", h, scn.inner.Name, err)
					}
					ir.Makespans[h] = res.Makespan
					if !res.Completed {
						ir.Censored[h] = true
						nCens++
					}
				}
				return nCens, nil
			}
		},
	})
}

// validateSweepShape checks the grid parameters every sweep flavour
// shares (RunSweep, TraceSweep, CompareSweep, BatchSweep).
func validateSweepShape(cells []Cell, scenarios, trials int) error {
	if len(cells) == 0 {
		return fmt.Errorf("volatile: sweep with no cells")
	}
	if scenarios <= 0 || trials <= 0 {
		return fmt.Errorf("volatile: sweep needs Scenarios > 0 and Trials > 0")
	}
	return nil
}

// sweepHeuristics validates the common sweep parameters and resolves the
// heuristic list, rejecting unknown names via a registry lookup (no
// throwaway simulation runs) so misconfigured sweeps fail fast.
func sweepHeuristics(cells []Cell, scenarios, trials int, heuristics []string) ([]string, error) {
	if err := validateSweepShape(cells, scenarios, trials); err != nil {
		return nil, err
	}
	if len(heuristics) == 0 {
		heuristics = Heuristics()
	}
	for _, h := range heuristics {
		if _, err := core.Lookup(h); err != nil {
			return nil, fmt.Errorf("volatile: heuristic %q: %w", h, err)
		}
	}
	return heuristics, nil
}

// instanceRunner executes one (cell, scenario, trial) instance, filling ir
// with every heuristic's makespan. It returns the instance's censored-run
// count. Each worker goroutine gets its own instanceRunner (and thus its own
// engine and trial scratch) from the factory passed to runSharded.
type instanceRunner func(scn *Scenario, cellIdx, scenIdx, trialIdx int, ir *stats.InstanceResult) (censoredRuns int, err error)

// shardedSweep is the input to runSharded: the grid geometry plus a factory
// for per-worker instance runners.
type shardedSweep struct {
	cells     []Cell
	scenarios int
	trials    int
	options   ScenarioOptions
	seed      uint64
	workers   int
	progress  func(done, total int)
	newRunner func() instanceRunner
}

// runSharded is the sweep pipeline shared by RunSweep and TraceSweep.
//
// Work is dispatched at chunk granularity, one chunk per (cell, scenario)
// pair, and every chunk's trials run in order on a single worker. Each
// worker folds its current chunk into a stats.ShardAggregator; completed
// shards are handed to a single committer goroutine that merges them into
// the overall / per-wmin / per-cell aggregates strictly in chunk order
// (buffering out-of-order arrivals in a reorder window). Chunk order equals
// the job order of a sequential pass, and stats.Merge replays instances in
// that order, so the aggregates — floating-point summation order included —
// are bit-identical for every worker count. Committed shards are recycled
// through a pool, and the feeder holds a window permit per uncommitted
// chunk, so even when one slow chunk stalls the commit cursor the reorder
// window — and with it sweep memory — stays proportional to the worker
// count (× chunk size), never to the total instance count.
func runSharded(sw shardedSweep) (*SweepResult, error) {
	if err := sw.options.Validate(); err != nil {
		return nil, err
	}
	workers := sw.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks := len(sw.cells) * sw.scenarios
	total := chunks * sw.trials

	// Scenario cache: scenario generation is deterministic in
	// (seed, cell, scenario index), shared across trials.
	scenarios := make([]*Scenario, chunks)
	for c, cell := range sw.cells {
		for s := 0; s < sw.scenarios; s++ {
			scnSeed := deriveSeed(sw.seed, uint64(c), uint64(s), 0xA11CE)
			scenarios[c*sw.scenarios+s] = NewScenario(scnSeed, cell, sw.options)
		}
	}

	type doneChunk struct {
		idx   int
		shard *stats.ShardAggregator
	}
	jobCh := make(chan int)
	commitCh := make(chan doneChunk, workers)
	errCh := make(chan error, workers)
	// stop is closed on the first worker error so the feeder below never
	// blocks on a channel no worker is draining (a worker that aborts stops
	// receiving; with an unbuffered jobCh the feed would deadlock otherwise).
	stop := make(chan struct{})
	var stopOnce sync.Once
	var done atomic.Int64
	shardPool := sync.Pool{New: func() any { return stats.NewShardAggregator() }}
	// window bounds the number of fed-but-uncommitted chunks: the feeder
	// acquires a permit per chunk, the committer releases it once the chunk
	// is merged. Without it, one slow chunk at the commit cursor would let
	// fast workers pile arbitrarily many completed shards into the reorder
	// buffer, growing memory toward the total instance count.
	window := make(chan struct{}, 4*workers+4)

	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := sw.newRunner()
			for ci := range jobCh {
				scn := scenarios[ci]
				cellIdx, scenIdx := ci/sw.scenarios, ci%sw.scenarios
				shard := shardPool.Get().(*stats.ShardAggregator)
				for tr := 0; tr < sw.trials; tr++ {
					ir := shard.Acquire()
					nCens, err := run(scn, cellIdx, scenIdx, tr, ir)
					if err != nil {
						select {
						case errCh <- err:
						default:
						}
						stopOnce.Do(func() { close(stop) })
						shard.Reset()
						shardPool.Put(shard)
						return
					}
					shard.Add(ir, nCens)
					if sw.progress != nil {
						sw.progress(int(done.Add(1)), total)
					}
				}
				commitCh <- doneChunk{idx: ci, shard: shard}
			}
		}()
	}

	// Committer: merges shards in chunk order, holding out-of-order
	// arrivals in a reorder window. It owns the aggregates, so no lock
	// guards them; main reads them only after committerDone.
	overall := stats.NewAggregator()
	byWmin := make(map[int]*stats.Aggregator)
	byCell := make(map[Cell]*stats.Aggregator)
	censored := 0
	committerDone := make(chan struct{})
	go func() {
		defer close(committerDone)
		pending := make(map[int]*stats.ShardAggregator, workers)
		next := 0
		for dc := range commitCh {
			pending[dc.idx] = dc.shard
			for {
				shard, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				cell := sw.cells[next/sw.scenarios]
				bw := byWmin[cell.Wmin]
				if bw == nil {
					bw = stats.NewAggregator()
					byWmin[cell.Wmin] = bw
				}
				bc := byCell[cell]
				if bc == nil {
					bc = stats.NewAggregator()
					byCell[cell] = bc
				}
				stats.Merge(shard, overall, bw, bc)
				censored += shard.CensoredRuns()
				shard.Reset()
				shardPool.Put(shard)
				<-window
				next++
			}
		}
	}()

feed:
	for ci := 0; ci < chunks; ci++ {
		select {
		case window <- struct{}{}:
		case <-stop:
			break feed
		}
		select {
		case jobCh <- ci:
		case <-stop:
			break feed
		}
	}
	close(jobCh)
	wg.Wait()
	close(commitCh)
	<-committerDone
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	out := &SweepResult{
		Instances: overall.Instances(),
		Overall:   overall.Rows(),
		ByWmin:    make(map[int][]TableRow, len(byWmin)),
		ByCell:    make(map[Cell][]TableRow, len(byCell)),
		Censored:  censored,
	}
	for wmin, agg := range byWmin {
		out.ByWmin[wmin] = agg.Rows()
	}
	for cell, agg := range byCell {
		out.ByCell[cell] = agg.Rows()
	}
	return out, nil
}

// deriveSeed mixes sweep indices into a reproducible sub-seed.
func deriveSeed(parts ...uint64) uint64 {
	s := rng.SplitMix64(0x9E3779B97F4A7C15)
	acc := s.Next()
	for _, p := range parts {
		sp := rng.SplitMix64(acc ^ p)
		acc = sp.Next()
	}
	return acc
}

// Table2Config builds the sweep of the paper's Table 2: the full Table 1
// grid with the given per-cell scenario and trial counts (the paper uses
// 247 scenarios × 10 trials; scale down for quick runs).
func Table2Config(scenarios, trials int, seed uint64) SweepConfig {
	return SweepConfig{
		Cells:     PaperGrid(),
		Scenarios: scenarios,
		Trials:    trials,
		Seed:      seed,
	}
}

// Figure2Config builds the sweep behind Figure 2: the same grid, restricted
// to the heuristics the figure plots (mct, mct*, emct, emct*, ud*, lw*).
func Figure2Config(scenarios, trials int, seed uint64) SweepConfig {
	cfg := Table2Config(scenarios, trials, seed)
	cfg.Heuristics = []string{"mct", "mct*", "emct", "emct*", "ud*", "lw*"}
	return cfg
}

// Table3Config builds a contention-prone sweep of Table 3: n=20, ncom=5,
// wmin=1 with communication scaled by commScale (5 or 10), greedy
// heuristics only (as in the paper's table).
func Table3Config(commScale, scenarios, trials int, seed uint64) SweepConfig {
	return SweepConfig{
		Cells:      []Cell{ContentionCell()},
		Heuristics: GreedyHeuristics(),
		Scenarios:  scenarios,
		Trials:     trials,
		Options:    ScenarioOptions{CommScale: commScale},
		Seed:       seed,
	}
}

// LargePConfig builds the volunteer-grid sweep (the large-platform regime,
// P = 1k-100k): one cell whose task count tracks the platform size (n = P,
// so the originals phase exercises full-width rounds) with a quarter-width
// communication budget, restricted to the informed greedy pairs whose
// incremental scoring and heap argmin carry that scale. Combine with
// ModeEvent for sojourn-granularity stepping; see EXPERIMENTS.md ("Large
// platforms") for expected runtimes per P.
func LargePConfig(processors, scenarios, trials int, seed uint64) SweepConfig {
	ncom := processors / 4
	if ncom < 1 {
		ncom = 1
	}
	return SweepConfig{
		Cells:      []Cell{{Tasks: processors, Ncom: ncom, Wmin: 3}},
		Heuristics: []string{"mct", "mct*", "emct", "emct*"},
		Scenarios:  scenarios,
		Trials:     trials,
		Options:    ScenarioOptions{Processors: processors},
		Seed:       seed,
	}
}

// Figure2Series extracts, for each named heuristic, its average dfb per
// wmin value (ascending), ready for plotting. A heuristic absent from every
// wmin bucket is omitted from the series map; individual missing samples are
// NaN (never 0, which would read as "tied-best").
func Figure2Series(res *SweepResult, heuristics []string) (wmins []int, series map[string][]float64) {
	for wmin := range res.ByWmin {
		wmins = append(wmins, wmin)
	}
	sort.Ints(wmins)
	series = make(map[string][]float64, len(heuristics))
	for _, h := range heuristics {
		ys := make([]float64, len(wmins))
		any := false
		for i, wmin := range wmins {
			v, ok := rowValue(res.ByWmin[wmin], h)
			if ok {
				any = true
			}
			ys[i] = v
		}
		if any {
			series[h] = ys
		}
	}
	return wmins, series
}

// rowValue looks a heuristic up in a ranking. Absent heuristics report
// (NaN, false) so callers cannot mistake missing data for a perfect score.
func rowValue(rows []TableRow, name string) (float64, bool) {
	for _, r := range rows {
		if r.Name == name {
			return r.AvgDFB, true
		}
	}
	return math.NaN(), false
}
