package volatile

// Trace-driven experiments: runs against explicit availability vectors
// (RunTrace and friends) and trace sweeps through the sharded pipeline
// (TraceSweep). The paper's conclusion proposes challenging the Markov
// assumption with real availability traces; internal/trace supplies
// FTA-style synthetic generators and the fitting code, and this file wires
// them into the public API.
//
// Fitting a Markov model to a vector and parsing vector specs are pure
// functions of the input, so each Scenario interns the derived artifacts —
// parsed vectors plus a platform carrying the fitted models — in a small
// keyed cache. The cache key is the full vector content, and a scenario
// rebuild invalidates everything because the cache lives on the Scenario
// itself. Repeated runs on the same explicit trace set (every heuristic
// comparison does this) then reuse one fit — and one interned analytics
// table (expect.Analytics) — instead of re-deriving both per run.
// TraceSweep's synthetic trace sets are unique per (scenario, trial) and
// shared across that instance's heuristics directly, so they bypass the
// cache rather than bloat it.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/avail"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TraceStyle selects the synthetic sojourn-distribution family of trace
// sweeps (re-exported from the internal trace package).
type TraceStyle = trace.FTAStyle

// Supported synthetic trace families.
const (
	// TraceWeibull draws Weibull sojourns with shape 0.6 (heavy tail).
	TraceWeibull = trace.Weibull
	// TracePareto draws Pareto sojourns with tail index 2.5.
	TracePareto = trace.Pareto
	// TraceLogNormal draws log-normal sojourns with sigma 1.2.
	TraceLogNormal = trace.LogNormal
)

// traceModels is one interned trace artifact set: the parsed availability
// vectors and a platform whose processors carry the Markov models fitted to
// them (the master's "belief" handed to informed heuristics). Both are
// immutable after construction and safe to share across goroutines.
type traceModels struct {
	vectors  []avail.Vector
	platform *platform.Platform
}

// traceCacheLimit bounds the per-scenario cache. Sweeps run every heuristic
// of an instance back to back on one trace set, so even a small cache gets
// a hit for all but the first run; the limit only caps memory when many
// distinct trace sets stream through one scenario.
const traceCacheLimit = 32

// traceCache interns traceModels per key. Safe for concurrent use.
type traceCache struct {
	mu      sync.Mutex
	entries map[string]*traceModels
}

// models returns the interned artifacts for key, building them on a miss.
// The build runs under the lock: duplicate fits would cost more than the
// brief contention, and sweep workers overwhelmingly hit distinct scenarios
// anyway.
func (c *traceCache) models(key string, build func() (*traceModels, error)) (*traceModels, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tm, ok := c.entries[key]; ok {
		return tm, nil
	}
	tm, err := build()
	if err != nil {
		return nil, err
	}
	if c.entries == nil {
		c.entries = make(map[string]*traceModels, traceCacheLimit)
	}
	if len(c.entries) >= traceCacheLimit {
		for k := range c.entries { // evict one arbitrary entry
			delete(c.entries, k)
			break
		}
	}
	c.entries[key] = tm
	return tm, nil
}

// RunTrace executes the named heuristic against explicit availability
// vectors (letters u/r/d, one string per processor; they replay verbatim and
// then hold their last state). The informed heuristics consult Markov models
// fitted to each vector, mirroring a master that estimated behaviour from
// history. Vector count must match the scenario's processor count. The
// fitted models are interned per scenario, so repeated runs on the same
// vectors (comparing heuristics, sweeping seeds) fit them only once.
func (s *Scenario) RunTrace(heuristic string, trialSeed uint64, vectors []string) (*RunResult, error) {
	return s.RunTraceWithEvents(heuristic, trialSeed, vectors, nil)
}

// RunTraceWith is RunTrace on a reusable Runner (nil falls back to a
// one-shot engine): replay processes and engine buffers are recycled across
// runs, results are identical.
func (s *Scenario) RunTraceWith(r *Runner, heuristic string, trialSeed uint64, vectors []string) (*RunResult, error) {
	tm, err := s.tracedModels(vectors)
	if err != nil {
		return nil, err
	}
	mode := ModeSlot
	if r != nil {
		mode = r.mode
	}
	return s.runTrace(r, tm, heuristic, trialSeed, mode, nil)
}

// RunTraceMode is RunTrace under an explicit engine time base. Trace
// replay consumes no RNG, so deterministic heuristics produce bit-identical
// results in both modes; see EXPERIMENTS.md for the full contract.
func (s *Scenario) RunTraceMode(heuristic string, trialSeed uint64, vectors []string, mode Mode) (*RunResult, error) {
	tm, err := s.tracedModels(vectors)
	if err != nil {
		return nil, err
	}
	return s.runTrace(nil, tm, heuristic, trialSeed, mode, nil)
}

// RunTraceWithEvents is RunTrace with an event callback for timelines.
func (s *Scenario) RunTraceWithEvents(heuristic string, trialSeed uint64, vectors []string,
	onEvent func(Event)) (*RunResult, error) {
	tm, err := s.tracedModels(vectors)
	if err != nil {
		return nil, err
	}
	return s.runTrace(nil, tm, heuristic, trialSeed, ModeSlot, onEvent)
}

// tracedModels resolves explicit vector specs through the scenario's
// intern cache, parsing and fitting on the first sighting only.
func (s *Scenario) tracedModels(vectors []string) (*traceModels, error) {
	if len(vectors) != s.inner.Platform.P() {
		return nil, fmt.Errorf("volatile: %d vectors for %d processors",
			len(vectors), s.inner.Platform.P())
	}
	key := "vec\x00" + strings.Join(vectors, "\x00")
	return s.traces.models(key, func() (*traceModels, error) {
		parsed := make([]avail.Vector, len(vectors))
		for i, spec := range vectors {
			v, err := avail.ParseVector(spec)
			if err != nil {
				return nil, fmt.Errorf("volatile: vector %d: %w", i, err)
			}
			parsed[i] = v
		}
		return fitTraceModels(s, parsed)
	})
}

// fitTraceModels builds the interned artifact set for a scenario from
// already-parsed vectors: the per-processor belief models fitted to them,
// on a platform keeping the scenario's speeds. Shared by the explicit-vector
// and synthetic-trace paths so the two cannot diverge.
func fitTraceModels(scn *Scenario, vectors []avail.Vector) (*traceModels, error) {
	pl := &platform.Platform{Processors: make([]*platform.Processor, len(vectors))}
	for i, v := range vectors {
		fitted, err := trace.FitMarkov3(v)
		if err != nil {
			return nil, fmt.Errorf("volatile: vector %d: %w", i, err)
		}
		orig := scn.inner.Platform.Processors[i]
		pl.Processors[i] = &platform.Processor{ID: i, W: orig.W, Avail: fitted}
	}
	return &traceModels{vectors: vectors, platform: pl}, nil
}

// runTrace executes one trace-driven run on interned models. With a Runner,
// the replay processes come from its pool; results are identical either way.
func (s *Scenario) runTrace(r *Runner, tm *traceModels, heuristic string, trialSeed uint64,
	mode Mode, onEvent func(Event)) (*RunResult, error) {
	var sched sim.Scheduler
	var err error
	if r != nil {
		// Pooled scheduler: Reseed mirrors the fresh rng.New construction.
		ps := r.pooled(heuristic)
		ps.pcg.Reseed(trialSeed)
		sched, err = ps.instance(heuristic)
	} else {
		sched, err = core.New(heuristic, rng.New(trialSeed))
	}
	if err != nil {
		return nil, err
	}
	var procs []avail.Process
	if r != nil {
		procs = r.vectorProcs(tm.vectors)
	} else {
		procs = make([]avail.Process, len(tm.vectors))
		for i, v := range tm.vectors {
			procs[i] = avail.NewVectorProcess(v)
		}
	}
	cfg := sim.Config{
		Platform:  tm.platform,
		Params:    s.inner.Params,
		Procs:     procs,
		Scheduler: sched,
		Mode:      mode,
		OnEvent:   onEvent,
	}
	if r == nil {
		return sim.Run(cfg)
	}
	return r.r.Run(cfg)
}

// vectorProcs rewinds the Runner's pooled replay processes onto the given
// vectors. The returned slice is valid until the next call.
func (r *Runner) vectorProcs(vectors []avail.Vector) []avail.Process {
	p := len(vectors)
	if cap(r.vprocs) < p {
		r.vprocs = make([]avail.VectorProcess, p)
		r.vps = make([]avail.Process, p)
	}
	r.vprocs, r.vps = r.vprocs[:p], r.vps[:p]
	for i, v := range vectors {
		r.vprocs[i].Reset(v)
		r.vps[i] = &r.vprocs[i]
	}
	return r.vps
}

// TraceSweepConfig describes a trace-driven sweep: for every (cell,
// scenario, trial) instance a synthetic FTA-style trace set is generated,
// Markov models are fitted to it, and every heuristic runs against the same
// replayed vectors — the trace-driven analogue of SweepConfig.
type TraceSweepConfig struct {
	// Cells are the (n, ncom, wmin) combinations to cover.
	Cells []Cell
	// Heuristics are the heuristic names to compare (default: all 17).
	Heuristics []string
	// Scenarios is the number of random scenarios per cell.
	Scenarios int
	// Trials is the number of independent trace draws per scenario.
	Trials int
	// TraceLen is the recorded length of each availability vector in slots
	// (default 1000; past the end, processors hold their last state).
	// Ignored when TraceFiles is set.
	TraceLen int
	// Style selects the synthetic sojourn family (default TraceWeibull).
	// Ignored when TraceFiles is set.
	Style TraceStyle
	// TraceFiles, when non-empty, replaces synthetic generation with
	// recorded trace sets read from disk (the format trace.Set.Write
	// produces — e.g. converted Failure Trace Archive data, or the output
	// of cmd/volatrace). Trial t of every scenario replays
	// TraceFiles[t mod len(TraceFiles)], so recorded vectors flow through
	// the identical sharded pipeline: every heuristic of an instance faces
	// the same replayed vectors, models are fitted once per (scenario,
	// file) through the per-scenario intern cache, and results stay
	// bit-identical for any worker count. Every file must hold exactly
	// Options.Processors vectors (default 20) of length >= 2.
	TraceFiles []string
	// Options tunes scenario generation (platform size, iterations, ...).
	Options ScenarioOptions
	// Mode selects the engine time base (default ModeSlot). Trace replay
	// consumes no RNG, so trial seeds confront both modes with identical
	// worlds; see EXPERIMENTS.md for when results match bit for bit.
	Mode Mode
	// Seed makes the whole sweep reproducible.
	Seed uint64
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives (completedInstances, totalInstances);
	// see SweepConfig.Progress for the concurrency contract.
	Progress func(done, total int)
	// Checkpoint, Stop, MaxRetries, RetryBackoff, ContinueOnError and
	// Faults mirror the SweepConfig fields of the same names: crash-safe
	// checkpointing, graceful interrupt and the failure policy. Recorded
	// trace sets are content-hashed into the checkpoint's config digest, so
	// a resume against edited trace files is rejected.
	Checkpoint      *CheckpointConfig
	Stop            <-chan struct{}
	MaxRetries      int
	RetryBackoff    time.Duration
	ContinueOnError bool
	Faults          *faultinject.Plan
}

// traceSeedSalt separates trace-generation streams from trial streams.
const traceSeedSalt = 0x7ACE5

// tracePlan is everything a trace sweep resolves up front, shared by
// TraceSweep and TraceSweepConfig.ConfigDigest: the validated heuristic
// list, the loaded recorded sets (nil for synthetic sweeps), the effective
// trace length and the canonical config digest.
type tracePlan struct {
	heuristics []string
	sets       []*trace.Set
	traceLen   int
	digest     string
}

// traceSweepPlan validates the config, loads any recorded trace sets and
// canonicalizes the sweep into its config digest.
func traceSweepPlan(cfg TraceSweepConfig) (*tracePlan, error) {
	heuristics, err := sweepHeuristics(cfg.Cells, cfg.Scenarios, cfg.Trials, cfg.Heuristics)
	if err != nil {
		return nil, err
	}
	var sets []*trace.Set
	if len(cfg.TraceFiles) > 0 {
		p := cfg.Options.Processors
		if p == 0 {
			p = workload.DefaultProcessors
		}
		sets, err = loadTraceSets(cfg.TraceFiles, p)
		if err != nil {
			return nil, err
		}
	}
	traceLen := cfg.TraceLen
	if traceLen == 0 {
		traceLen = 1000
	}
	if sets == nil && traceLen < 2 {
		return nil, fmt.Errorf("volatile: TraceLen %d too short to fit models (need >= 2)", traceLen)
	}
	// The digest pins the trace source: the sojourn family and recorded
	// length for synthetic sweeps, the full vector content for recorded
	// sets (paths alone would let an edited file poison a resume).
	var extra []string
	if sets != nil {
		if extra, err = traceSetDigests(sets); err != nil {
			return nil, err
		}
	} else {
		extra = []string{fmt.Sprintf("style %s", cfg.Style), fmt.Sprintf("tracelen %d", traceLen)}
	}
	return &tracePlan{
		heuristics: heuristics,
		sets:       sets,
		traceLen:   traceLen,
		digest: sweepConfigDigest("tracesweep", cfg.Cells, heuristics,
			cfg.Scenarios, cfg.Trials, cfg.Options, cfg.Mode, cfg.Seed, extra...),
	}, nil
}

// TraceSweep executes a trace-driven sweep through the same sharded
// pipeline as RunSweep: per-worker shard aggregation, deterministic
// chunk-order merge, bit-identical results for every worker count. Each
// instance resolves one trace set — synthetic by default, or recorded
// from disk when TraceFiles is set — fits models once (interned per
// scenario), and confronts every heuristic with the same replayed vectors.
func TraceSweep(cfg TraceSweepConfig) (*SweepResult, error) {
	plan, err := traceSweepPlan(cfg)
	if err != nil {
		return nil, err
	}
	heuristics, sets, traceLen := plan.heuristics, plan.sets, plan.traceLen
	return runSharded(shardedSweep{
		cells:     cfg.Cells,
		scenarios: cfg.Scenarios,
		trials:    cfg.Trials,
		options:   cfg.Options,
		seed:      cfg.Seed,
		workers:   cfg.Workers,
		progress:  cfg.Progress,
		control: sweepControl{
			digest:          plan.digest,
			checkpoint:      cfg.Checkpoint,
			stop:            cfg.Stop,
			faults:          cfg.Faults,
			maxRetries:      cfg.MaxRetries,
			retryBackoff:    cfg.RetryBackoff,
			continueOnError: cfg.ContinueOnError,
		},
		newRunner: func() instanceRunner {
			rn := NewRunner()
			rn.SetMode(cfg.Mode)
			return func(scn *Scenario, cellIdx, scenIdx, trialIdx int, ir *stats.InstanceResult) (int, error) {
				var tm *traceModels
				var err error
				if sets != nil {
					// Recorded sets repeat across scenarios (and across
					// trials when Trials > len(sets)), so intern the fitted
					// models through the per-scenario cache: one fit per
					// (scenario, file), shared by every heuristic and every
					// trial replaying that file.
					tm, err = scn.fileTraceModels(sets, trialIdx%len(sets))
				} else {
					// Each (scenario, trial) has a unique synthetic trace set
					// and all its heuristic runs share the tm below directly,
					// so interning synthetic sets in the scenario cache would
					// only retain memory — build them uncached and let them
					// die with the instance. (Explicit-vector runs, which
					// genuinely repeat, go through the cache in tracedModels.)
					genSeed := deriveSeed(cfg.Seed, uint64(cellIdx), uint64(scenIdx), uint64(trialIdx), traceSeedSalt)
					tm, err = synthTraceModels(scn, genSeed, cfg.Style, traceLen)
				}
				if err != nil {
					return 0, err
				}
				trialSeed := deriveSeed(cfg.Seed, uint64(cellIdx), uint64(scenIdx), uint64(trialIdx))
				nCens := 0
				for _, h := range heuristics {
					res, err := scn.runTrace(rn, tm, h, trialSeed, cfg.Mode, nil)
					if err != nil {
						return 0, fmt.Errorf("volatile: %s on %s: %w", h, scn.inner.Name, err)
					}
					ir.Makespans[h] = res.Makespan
					if !res.Completed {
						ir.Censored[h] = true
						nCens++
					}
				}
				return nCens, nil
			}
		},
	})
}

// loadTraceSets reads and validates every trace file up front, so a
// misconfigured sweep fails before any simulation work: each file must
// parse (trace.Read), hold exactly p vectors, and be long enough to fit
// Markov models on.
func loadTraceSets(paths []string, p int) ([]*trace.Set, error) {
	sets := make([]*trace.Set, len(paths))
	for i, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("volatile: trace file: %w", err)
		}
		set, err := trace.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("volatile: trace file %s: %w", path, err)
		}
		if got := len(set.Vectors); got != p {
			return nil, fmt.Errorf("volatile: trace file %s has %d vectors for %d processors",
				path, got, p)
		}
		if set.Len() < 2 {
			return nil, fmt.Errorf("volatile: trace file %s: vectors of length %d too short to fit models (need >= 2)",
				path, set.Len())
		}
		sets[i] = set
	}
	return sets, nil
}

// fileTraceModels resolves a recorded trace set through the scenario's
// intern cache, fitting the per-processor belief models on the first
// sighting only. The cache key is the file's index in the sweep's
// TraceFiles list — stable for the sweep's lifetime, which is exactly the
// cache's lifetime (it lives on the Scenario).
func (s *Scenario) fileTraceModels(sets []*trace.Set, idx int) (*traceModels, error) {
	key := "file\x00" + strconv.Itoa(idx)
	return s.traces.models(key, func() (*traceModels, error) {
		return fitTraceModels(s, sets[idx].Vectors)
	})
}

// synthTraceModels generates one synthetic trace set for a scenario and
// fits the per-processor belief models, entirely determined by genSeed.
func synthTraceModels(scn *Scenario, genSeed uint64, style TraceStyle, traceLen int) (*traceModels, error) {
	gen := rng.New(genSeed)
	p := scn.inner.Platform.P()
	vectors := make([]avail.Vector, p)
	for i := 0; i < p; i++ {
		proc, err := trace.NewSynthProcess(gen.Split(), trace.SynthOptions{Style: style})
		if err != nil {
			return nil, fmt.Errorf("volatile: trace style: %w", err)
		}
		vectors[i] = avail.Record(proc, traceLen)
	}
	return fitTraceModels(scn, vectors)
}
