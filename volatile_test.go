package volatile

import (
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestScenarioRunDeterministic(t *testing.T) {
	scn := NewScenario(1, Cell{Tasks: 5, Ncom: 5, Wmin: 1}, ScenarioOptions{Iterations: 2})
	a, err := scn.Run("emct", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scn.Run("emct", 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("same trial seed gave %d and %d", a.Makespan, b.Makespan)
	}
	c, err := scn.Run("emct", 8)
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may legitimately coincide; just ensure it runs
}

func TestScenarioRunUnknownHeuristic(t *testing.T) {
	scn := NewScenario(1, Cell{Tasks: 2, Ncom: 2, Wmin: 1}, ScenarioOptions{})
	if _, err := scn.Run("nope", 1); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestScenarioDescribe(t *testing.T) {
	scn := NewScenario(3, Cell{Tasks: 5, Ncom: 5, Wmin: 2}, ScenarioOptions{Processors: 4})
	d := scn.Describe()
	if !strings.Contains(d, "4 processors") || !strings.Contains(d, "Tprog=10") {
		t.Fatalf("describe output:\n%s", d)
	}
	if scn.Processors() != 4 {
		t.Fatalf("Processors() = %d", scn.Processors())
	}
	if scn.Params().Tdata != 2 {
		t.Fatalf("Params().Tdata = %d", scn.Params().Tdata)
	}
}

func TestAllHeuristicsCompleteSmallScenario(t *testing.T) {
	scn := NewScenario(5, Cell{Tasks: 5, Ncom: 5, Wmin: 1}, ScenarioOptions{Iterations: 2})
	for _, h := range Heuristics() {
		res, err := scn.Run(h, 11)
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		if !res.Completed {
			t.Fatalf("%s censored at %d", h, res.Makespan)
		}
		if res.Stats.TasksCompleted != 10 {
			t.Fatalf("%s completed %d tasks, want 10", h, res.Stats.TasksCompleted)
		}
	}
}

func TestReplicationToggle(t *testing.T) {
	cell := Cell{Tasks: 2, Ncom: 5, Wmin: 1}
	on := NewScenario(9, cell, ScenarioOptions{Iterations: 1})
	off := NewScenario(9, cell, ScenarioOptions{Iterations: 1, MaxReplicas: -1})
	if on.Params().MaxReplicas != 2 {
		t.Fatalf("default MaxReplicas = %d, want 2", on.Params().MaxReplicas)
	}
	if off.Params().MaxReplicas != 0 {
		t.Fatalf("disabled MaxReplicas = %d, want 0", off.Params().MaxReplicas)
	}
	res, err := off.Run("mct", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ReplicasStarted != 0 {
		t.Fatalf("replication disabled but %d replicas started", res.Stats.ReplicasStarted)
	}
}

func TestRunWithHooks(t *testing.T) {
	scn := NewScenario(13, Cell{Tasks: 3, Ncom: 3, Wmin: 1}, ScenarioOptions{Iterations: 1})
	slots, events := 0, 0
	res, err := scn.RunWithHooks("mct", 2,
		func(sr *SlotReport) { slots++ },
		func(ev Event) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if slots != res.Makespan {
		t.Fatalf("observer saw %d slots, makespan %d", slots, res.Makespan)
	}
	if events == 0 {
		t.Fatal("no events emitted")
	}
}

func TestRunTrace(t *testing.T) {
	scn := NewScenario(17, Cell{Tasks: 2, Ncom: 2, Wmin: 1}, ScenarioOptions{Processors: 2, Iterations: 1})
	long := strings.Repeat("u", 200)
	res, err := scn.RunTrace("emct", 3, []string{long, long})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("always-up trace censored")
	}
	// Vector count mismatch.
	if _, err := scn.RunTrace("emct", 3, []string{long}); err == nil {
		t.Fatal("vector count mismatch accepted")
	}
	// Bad letters.
	if _, err := scn.RunTrace("emct", 3, []string{long, "ux"}); err == nil {
		t.Fatal("bad vector accepted")
	}
}

func TestPaperGridPublic(t *testing.T) {
	if len(PaperGrid()) != 120 {
		t.Fatalf("PaperGrid has %d cells", len(PaperGrid()))
	}
	if ContentionCell().Tasks != 20 || ContentionCell().Ncom != 5 || ContentionCell().Wmin != 1 {
		t.Fatalf("ContentionCell = %v", ContentionCell())
	}
	if len(Heuristics()) != 17 || len(GreedyHeuristics()) != 8 {
		t.Fatal("heuristic lists wrong")
	}
}

func TestRunSweepSmall(t *testing.T) {
	cfg := SweepConfig{
		Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}, {Tasks: 5, Ncom: 5, Wmin: 2}},
		Heuristics: []string{"mct", "emct", "random"},
		Scenarios:  2,
		Trials:     2,
		Seed:       101,
		Options:    ScenarioOptions{Iterations: 2, Processors: 8},
	}
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 8 {
		t.Fatalf("Instances = %d, want 8", res.Instances)
	}
	if len(res.Overall) != 3 {
		t.Fatalf("Overall rows = %v", res.Overall)
	}
	if len(res.ByWmin) != 2 {
		t.Fatalf("ByWmin has %d entries", len(res.ByWmin))
	}
	if len(res.ByCell) != 2 {
		t.Fatalf("ByCell has %d entries", len(res.ByCell))
	}
	// Best row must have dfb 0 <= next rows, and wins must total >= instances.
	if res.Overall[0].AvgDFB > res.Overall[1].AvgDFB {
		t.Fatal("rows not sorted by dfb")
	}
	wins := 0
	for _, r := range res.Overall {
		wins += r.Wins
	}
	if wins < res.Instances {
		t.Fatalf("total wins %d < instances %d", wins, res.Instances)
	}
}

func TestRunSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	mk := func(workers int) *SweepResult {
		res, err := RunSweep(SweepConfig{
			Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}},
			Heuristics: []string{"emct", "random2w"},
			Scenarios:  2,
			Trials:     2,
			Seed:       55,
			Workers:    workers,
			Options:    ScenarioOptions{Iterations: 2, Processors: 6},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(1), mk(8)
	for i := range a.Overall {
		if a.Overall[i] != b.Overall[i] {
			t.Fatalf("worker count changed results: %+v vs %+v", a.Overall[i], b.Overall[i])
		}
	}
}

func TestRunSweepValidation(t *testing.T) {
	if _, err := RunSweep(SweepConfig{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := RunSweep(SweepConfig{Cells: []Cell{{Tasks: 1, Ncom: 1, Wmin: 1}}}); err == nil {
		t.Fatal("zero scenarios accepted")
	}
	if _, err := RunSweep(SweepConfig{
		Cells: []Cell{{Tasks: 1, Ncom: 1, Wmin: 1}}, Scenarios: 1, Trials: 1,
		Heuristics: []string{"bogus"},
	}); err == nil {
		t.Fatal("bogus heuristic accepted")
	}
}

func TestConfigBuilders(t *testing.T) {
	t2 := Table2Config(3, 4, 9)
	if len(t2.Cells) != 120 || t2.Scenarios != 3 || t2.Trials != 4 {
		t.Fatalf("Table2Config = %+v", t2)
	}
	f2 := Figure2Config(1, 1, 9)
	if len(f2.Heuristics) != 6 {
		t.Fatalf("Figure2Config heuristics = %v", f2.Heuristics)
	}
	t3 := Table3Config(5, 2, 2, 9)
	if t3.Options.CommScale != 5 || len(t3.Cells) != 1 || len(t3.Heuristics) != 8 {
		t.Fatalf("Table3Config = %+v", t3)
	}
}

func TestFigure2Series(t *testing.T) {
	res, err := RunSweep(SweepConfig{
		Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}, {Tasks: 5, Ncom: 5, Wmin: 3}},
		Heuristics: []string{"mct", "emct"},
		Scenarios:  1,
		Trials:     2,
		Seed:       77,
		Options:    ScenarioOptions{Iterations: 2, Processors: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	wmins, series := Figure2Series(res, []string{"mct", "emct"})
	if len(wmins) != 2 || wmins[0] != 1 || wmins[1] != 3 {
		t.Fatalf("wmins = %v", wmins)
	}
	if len(series["mct"]) != 2 || len(series["emct"]) != 2 {
		t.Fatalf("series = %v", series)
	}
}

func TestProgressCallback(t *testing.T) {
	// Progress may be invoked concurrently and out of order; the contract is
	// that the done counter covers 1..total, with total always the instance
	// count.
	var mu sync.Mutex
	maxDone, total, calls := 0, 0, 0
	_, err := RunSweep(SweepConfig{
		Cells:      []Cell{{Tasks: 3, Ncom: 3, Wmin: 1}},
		Heuristics: []string{"mct"},
		Scenarios:  2,
		Trials:     3,
		Seed:       5,
		Workers:    2,
		Options:    ScenarioOptions{Iterations: 1, Processors: 4},
		Progress: func(d, tot int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			total = tot
			if d > maxDone {
				maxDone = d
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxDone != 6 || total != 6 || calls != 6 {
		t.Fatalf("progress reached %d/%d over %d calls, want 6/6 over 6", maxDone, total, calls)
	}
}

// TestProgressCountsEachInstanceOnce pins the lock-free progress counter:
// across many workers, the done values delivered to Progress must be exactly
// the multiset {1, ..., total} — `done` reaches total exactly once, no value
// is skipped, and no value is delivered twice.
func TestProgressCountsEachInstanceOnce(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	const wantTotal = 4 * 3 * 2 // cells × scenarios × trials
	_, err := RunSweep(SweepConfig{
		Cells: []Cell{
			{Tasks: 2, Ncom: 2, Wmin: 1}, {Tasks: 3, Ncom: 2, Wmin: 1},
			{Tasks: 2, Ncom: 3, Wmin: 2}, {Tasks: 3, Ncom: 3, Wmin: 2},
		},
		Heuristics: []string{"mct", "emct"},
		Scenarios:  3,
		Trials:     2,
		Seed:       31,
		Workers:    4,
		Options:    ScenarioOptions{Iterations: 1, Processors: 4},
		Progress: func(d, tot int) {
			if tot != wantTotal {
				t.Errorf("total = %d, want %d", tot, wantTotal)
			}
			mu.Lock()
			seen = append(seen, d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != wantTotal {
		t.Fatalf("progress called %d times, want %d", len(seen), wantTotal)
	}
	sort.Ints(seen)
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("done values %v are not exactly 1..%d", seen, wantTotal)
		}
	}
}

// TestRunSweepUnknownHeuristicFailsFast pins the registry-based validation:
// a sweep naming an unknown heuristic must fail before any instance runs —
// even alongside valid names and with an enormous configured sweep — and
// the error must identify the bad name.
func TestRunSweepUnknownHeuristicFailsFast(t *testing.T) {
	calls := 0
	_, err := RunSweep(SweepConfig{
		Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}},
		Heuristics: []string{"emct", "no-such-heuristic", "mct"},
		Scenarios:  1 << 30, // would take forever if anything actually ran
		Trials:     1 << 30,
		Seed:       1,
		Progress:   func(d, tot int) { calls++ },
	})
	if err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	if !strings.Contains(err.Error(), "no-such-heuristic") {
		t.Fatalf("error %q does not name the unknown heuristic", err)
	}
	if calls != 0 {
		t.Fatalf("validation ran %d instances before failing", calls)
	}
	// TraceSweep shares the validation path.
	if _, err := TraceSweep(TraceSweepConfig{
		Cells:      []Cell{{Tasks: 2, Ncom: 2, Wmin: 1}},
		Heuristics: []string{"nope"},
		Scenarios:  1,
		Trials:     1,
	}); err == nil {
		t.Fatal("TraceSweep accepted an unknown heuristic")
	}
}

// TestTraceCacheConcurrentInterning hammers one scenario's trace-model
// cache from many goroutines (the sweep-worker sharing pattern): all
// callers must agree on the result, and the race detector must stay quiet
// over the intern map, the fitted models and their interned analytics.
func TestTraceCacheConcurrentInterning(t *testing.T) {
	scn := NewScenario(23, Cell{Tasks: 3, Ncom: 3, Wmin: 1}, ScenarioOptions{Processors: 4, Iterations: 1})
	long := strings.Repeat("uurduuruuud", 10) + "u"
	sets := [][]string{
		{long, long, long, long},
		{long + "u", long, long, long},
		{long, long + "r" + "u", long, long},
	}
	const goroutines = 8
	results := make([][]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rn := NewRunner()
			for i, specs := range sets {
				res, err := scn.RunTraceWith(rn, "emct", uint64(i), specs)
				if err != nil {
					t.Error(err)
					return
				}
				results[g] = append(results[g], res.Makespan)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d set %d: makespan %d, want %d", g, i, results[g][i], results[0][i])
			}
		}
	}
}
