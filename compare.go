package volatile

// DFRS-style experiments: the batch-scheduling baselines of internal/batch
// run head-to-head against the paper's fractional heuristics ("Dynamic
// Fractional Resource Scheduling vs. Batch Scheduling", Casanova, Stillwell,
// Vivien). CompareSweep confronts, per instance, every fractional heuristic
// AND every batch discipline with the same availability trajectories, so the
// dfb metric directly prices batch allocation against fine-grained
// scheduling; BatchSweep ranks the batch disciplines alone. Both run through
// runSharded — per-worker shard aggregation, chunk-order merge — so results
// are bit-identical for every worker count, exactly like RunSweep.

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/batch"
	"repro/internal/faultinject"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Batch discipline names. They appear as row names in sweep results,
// alongside the heuristic names they are compared against.
const (
	// BatchFCFS is strict-order batch dispatch (head-of-line blocking).
	BatchFCFS = "batch-fcfs"
	// BatchEASY is FCFS dispatch plus EASY backfilling.
	BatchEASY = "batch-easy"
)

// BatchDisciplines lists every implemented batch discipline name.
func BatchDisciplines() []string { return []string{BatchFCFS, BatchEASY} }

// parseDiscipline resolves a discipline name.
func parseDiscipline(name string) (batch.Discipline, error) {
	switch name {
	case BatchFCFS:
		return batch.FCFS, nil
	case BatchEASY:
		return batch.EASY, nil
	}
	return 0, fmt.Errorf("volatile: unknown batch discipline %q (want %q or %q)",
		name, BatchFCFS, BatchEASY)
}

// CompareConfig describes a DFRS-style comparison sweep: the grid cells,
// the fractional heuristics and the batch disciplines to confront on
// identical instances.
type CompareConfig struct {
	// Cells are the (n, ncom, wmin) combinations to cover.
	Cells []Cell
	// Heuristics are the fractional heuristic names (default: all 17).
	// BatchSweep ignores this field.
	Heuristics []string
	// Disciplines are the batch discipline names (default: both).
	Disciplines []string
	// Scenarios is the number of random scenarios per cell.
	Scenarios int
	// Trials is the number of availability draws per scenario.
	Trials int
	// Options tunes scenario generation (CommScale etc.). MaxReplicas only
	// affects the fractional side; batch jobs are never replicated.
	Options ScenarioOptions
	// Mode selects the engine time base for the fractional side (default
	// ModeSlot). The batch side always runs its own slot-exact simulator;
	// Mode does not affect it.
	Mode Mode
	// Seed makes the whole sweep reproducible.
	Seed uint64
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives (completedInstances, totalInstances);
	// see SweepConfig.Progress for the concurrency contract.
	Progress func(done, total int)
	// Checkpoint, Stop, MaxRetries, RetryBackoff, ContinueOnError and
	// Faults mirror the SweepConfig fields of the same names: crash-safe
	// checkpointing, graceful interrupt and the failure policy.
	Checkpoint      *CheckpointConfig
	Stop            <-chan struct{}
	MaxRetries      int
	RetryBackoff    time.Duration
	ContinueOnError bool
	Faults          *faultinject.Plan
}

// compareDisciplines resolves and validates the discipline list.
func compareDisciplines(names []string) ([]string, []batch.Discipline, error) {
	if len(names) == 0 {
		names = BatchDisciplines()
	}
	ds := make([]batch.Discipline, len(names))
	for i, name := range names {
		d, err := parseDiscipline(name)
		if err != nil {
			return nil, nil, err
		}
		ds[i] = d
	}
	return names, ds, nil
}

// CompareSweep executes the batch-vs-fractional comparison. Every instance
// first runs each fractional heuristic, then each batch discipline, all on
// the same availability trajectories (the trial seed re-materializes the
// same world for every contender, exactly as RunSweep does across
// heuristics), so the per-instance best — and with it each row's dfb — is
// taken over the union of both scheduler families.
func CompareSweep(cfg CompareConfig) (*SweepResult, error) {
	heuristics, err := sweepHeuristics(cfg.Cells, cfg.Scenarios, cfg.Trials, cfg.Heuristics)
	if err != nil {
		return nil, err
	}
	return compareSharded(cfg, heuristics)
}

// BatchSweep ranks the batch disciplines alone: a CompareSweep with no
// fractional contenders. Use it to study FCFS-vs-EASY head to head before
// pricing both against the paper's heuristics.
func BatchSweep(cfg CompareConfig) (*SweepResult, error) {
	if err := validateSweepShape(cfg.Cells, cfg.Scenarios, cfg.Trials); err != nil {
		return nil, err
	}
	return compareSharded(cfg, nil)
}

// comparePlan resolves the discipline list and canonicalizes the sweep into
// its config digest, shared by compareSharded and CompareConfig.ConfigDigest.
// CompareSweep and BatchSweep share this plan but are distinct sweeps: an
// empty heuristic list (BatchSweep) hashes differently from any resolved
// CompareSweep list, and the discipline names ride along as digest extras.
func comparePlan(cfg CompareConfig, heuristics []string) (discNames []string, discs []batch.Discipline, digest string, err error) {
	discNames, discs, err = compareDisciplines(cfg.Disciplines)
	if err != nil {
		return nil, nil, "", err
	}
	extra := make([]string, len(discNames))
	for i, name := range discNames {
		extra[i] = "discipline " + name
	}
	digest = sweepConfigDigest("comparesweep", cfg.Cells, heuristics,
		cfg.Scenarios, cfg.Trials, cfg.Options, cfg.Mode, cfg.Seed, extra...)
	return discNames, discs, digest, nil
}

// compareSharded is the shared body of CompareSweep and BatchSweep:
// heuristics may be empty, disciplines may not.
func compareSharded(cfg CompareConfig, heuristics []string) (*SweepResult, error) {
	discNames, discs, digest, err := comparePlan(cfg, heuristics)
	if err != nil {
		return nil, err
	}
	return runSharded(shardedSweep{
		cells:     cfg.Cells,
		scenarios: cfg.Scenarios,
		trials:    cfg.Trials,
		options:   cfg.Options,
		seed:      cfg.Seed,
		workers:   cfg.Workers,
		progress:  cfg.Progress,
		control: sweepControl{
			digest:          digest,
			checkpoint:      cfg.Checkpoint,
			stop:            cfg.Stop,
			faults:          cfg.Faults,
			maxRetries:      cfg.MaxRetries,
			retryBackoff:    cfg.RetryBackoff,
			continueOnError: cfg.ContinueOnError,
		},
		newRunner: func() instanceRunner {
			rn := NewRunner()
			rn.SetMode(cfg.Mode)
			brn := batch.NewRunner()
			return func(scn *Scenario, cellIdx, scenIdx, trialIdx int, ir *stats.InstanceResult) (int, error) {
				trialSeed := deriveSeed(cfg.Seed, uint64(cellIdx), uint64(scenIdx), uint64(trialIdx))
				nCens := 0
				for _, h := range heuristics {
					res, err := scn.RunWith(rn, h, trialSeed)
					if err != nil {
						return 0, fmt.Errorf("volatile: %s on %s: %w", h, scn.inner.Name, err)
					}
					ir.Makespans[h] = res.Makespan
					if !res.Completed {
						ir.Censored[h] = true
						nCens++
					}
				}
				for i, d := range discs {
					res, err := scn.runBatch(rn, brn, d, trialSeed)
					if err != nil {
						return 0, fmt.Errorf("volatile: %s on %s: %w", discNames[i], scn.inner.Name, err)
					}
					ir.Makespans[discNames[i]] = res.Makespan
					if !res.Completed {
						ir.Censored[discNames[i]] = true
						nCens++
					}
				}
				return nCens, nil
			}
		},
	})
}

// runBatch executes one batch run on the trajectories the given trial seed
// denotes — the same world every fractional heuristic of that (scenario,
// trial) instance faces. rn supplies the pooled trial resources (RNG +
// availability processes), brn the pooled batch engine.
func (s *Scenario) runBatch(rn *Runner, brn *batch.Runner, d batch.Discipline, trialSeed uint64) (*batch.Result, error) {
	rn.trialRng.Reseed(trialSeed)
	procs := rn.trials.Trial(s.inner, &rn.trialRng)
	return brn.Run(batch.Config{
		Platform:   s.inner.Platform,
		Params:     s.inner.Params,
		Procs:      procs,
		Discipline: d,
	})
}

// RunBatch executes one batch-discipline run on the scenario (name:
// BatchFCFS or BatchEASY) against the same world the fractional
// heuristics see for this trial seed — the single-run entry point behind
// CompareSweep, for walkthroughs and spot checks.
func (s *Scenario) RunBatch(discipline string, trialSeed uint64) (*RunResult, error) {
	d, err := parseDiscipline(discipline)
	if err != nil {
		return nil, err
	}
	trialRng := rng.New(trialSeed)
	procs := s.inner.Trial(trialRng)
	res, err := batch.Run(batch.Config{
		Platform:   s.inner.Platform,
		Params:     s.inner.Params,
		Procs:      procs,
		Discipline: d,
	})
	if err != nil {
		return nil, err
	}
	// Surface the batch outcome through the common RunResult shape so
	// callers compare makespans uniformly; batch-specific counters live in
	// batch.Result and are not carried over.
	return &RunResult{
		Completed:     res.Completed,
		Makespan:      res.Makespan,
		IterationEnds: res.IterationEnds,
	}, nil
}

// CompareCellRow is one grid cell of a batch-vs-fractional report: the best
// average dfb achieved by each family in that cell and the gap between
// them (positive gap = batch trails fractional).
type CompareCellRow struct {
	// Cell is the grid cell.
	Cell Cell
	// BestFractional / BestBatch name the family winners in this cell.
	BestFractional, BestBatch string
	// FractionalDFB / BatchDFB are the winners' average dfb (percent,
	// against the per-instance best over BOTH families). NaN when the
	// family has no rows in the cell.
	FractionalDFB, BatchDFB float64
	// Gap is BatchDFB − FractionalDFB.
	Gap float64
}

// CompareCells condenses a CompareSweep result into per-cell
// batch-vs-fractional columns: for every cell, the best fractional row
// versus the best batch row. Cells are ordered by (Tasks, Ncom, Wmin).
func CompareCells(res *SweepResult) []CompareCellRow {
	isBatch := func(name string) bool {
		_, err := parseDiscipline(name)
		return err == nil
	}
	cells := make([]Cell, 0, len(res.ByCell))
	for c := range res.ByCell {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Tasks != cells[j].Tasks {
			return cells[i].Tasks < cells[j].Tasks
		}
		if cells[i].Ncom != cells[j].Ncom {
			return cells[i].Ncom < cells[j].Ncom
		}
		return cells[i].Wmin < cells[j].Wmin
	})
	out := make([]CompareCellRow, 0, len(cells))
	for _, c := range cells {
		row := CompareCellRow{Cell: c, FractionalDFB: math.NaN(), BatchDFB: math.NaN()}
		// Rows are sorted by ascending dfb, so the first hit per family is
		// that family's winner.
		for _, r := range res.ByCell[c] {
			if isBatch(r.Name) {
				if row.BestBatch == "" {
					row.BestBatch, row.BatchDFB = r.Name, r.AvgDFB
				}
			} else if row.BestFractional == "" {
				row.BestFractional, row.FractionalDFB = r.Name, r.AvgDFB
			}
		}
		row.Gap = row.BatchDFB - row.FractionalDFB
		out = append(out, row)
	}
	return out
}
