package volatile

import "testing"

// TestPooledTrialAllocationCeiling is the companion to the engine-level
// TestSteadyStateSlotAllocationCeiling: with a warm Runner, a full
// Scenario.RunWith — trial RNG, availability processes, engine, result —
// must allocate only a handful of run-level objects (the scheduler, its RNG
// stream, the Result and its IterationEnds). Before trial pooling the trial
// alone allocated ~2 objects per processor per run (one split PCG + one
// Markov process each, plus the process slice), i.e. 40+ allocations on the
// paper's 20-processor platform.
func TestPooledTrialAllocationCeiling(t *testing.T) {
	scn := NewScenario(11, Cell{Tasks: 5, Ncom: 5, Wmin: 2}, ScenarioOptions{})
	rn := NewRunner()
	seed := uint64(0)
	run := func() {
		seed++
		if _, err := scn.RunWith(rn, "emct", seed); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run() // warm-up: sizes the engine buffers and the trial pool
	}
	allocs := testing.AllocsPerRun(50, run)
	t.Logf("%.1f allocs per pooled run (20-processor platform)", allocs)
	// Budget: scheduler + split RNG + Result + IterationEnds, with slack for
	// incidental interface boxing — far below the ~45 of the unpooled trial.
	const ceiling = 10
	if allocs > ceiling {
		t.Fatalf("pooled RunWith allocates %.1f objects per run, want <= %d (trial resources must be pooled)", allocs, ceiling)
	}
}

// TestPooledTraceRunAllocationSteadyState is the trace-path analogue: after
// the first run interned the fitted models and sized the replay-process
// pool, repeated RunTraceWith calls on the same vectors must not re-parse,
// re-fit or reallocate per-processor state.
func TestPooledTraceRunAllocationSteadyState(t *testing.T) {
	scn := NewScenario(12, Cell{Tasks: 4, Ncom: 4, Wmin: 1}, ScenarioOptions{Processors: 6, Iterations: 2})
	specs := make([]string, scn.Processors())
	// Ends UP so runs complete (past the vector, processors hold the last
	// state) instead of idling to the slot cap.
	base := "uuurduuuruuduuruuuduuruu"
	for i := range specs {
		specs[i] = base + base + base
	}
	rn := NewRunner()
	seed := uint64(0)
	run := func() {
		seed++
		if _, err := scn.RunTraceWith(rn, "emct", seed, specs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(50, run)
	t.Logf("%.1f allocs per pooled trace run (6-processor platform)", allocs)
	const ceiling = 12
	if allocs > ceiling {
		t.Fatalf("pooled RunTraceWith allocates %.1f objects per run, want <= %d (trace models must be interned)", allocs, ceiling)
	}
}
