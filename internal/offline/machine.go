package offline

import (
	"fmt"

	"repro/internal/avail"
)

// procState is the per-processor execution state used by both the schedule
// checker and the exact solver. The zero value is a fresh processor.
type procState struct {
	// progRecv counts program slots received (== Tprog means complete).
	progRecv int
	// dataRecv counts slots of the in-flight data transfer (0 = none).
	dataRecv int
	// hasData reports a complete data image waiting to start computing.
	hasData bool
	// computeRem is the remaining compute slots of the running task
	// (0 = not computing).
	computeRem int
}

// machine executes instance dynamics slot by slot. It is deterministic given
// the per-slot decisions (comm grants and zero-cost task starts).
type machine struct {
	in    *Instance
	procs []procState
	// tasksStarted counts data transfers begun (each binds one task).
	tasksStarted int
	// tasksDone counts completed tasks.
	tasksDone int
}

func newMachine(in *Instance) *machine {
	return &machine{in: in, procs: make([]procState, in.P())}
}

// clone deep-copies the machine (for search).
func (mc *machine) clone() *machine {
	cp := *mc
	cp.procs = append([]procState(nil), mc.procs...)
	return &cp
}

// step advances one slot. comm lists the processors granted a channel this
// slot; starts lists processors performing a zero-cost task start (only
// meaningful when Tdata == 0). Decisions violating the model produce errors.
func (mc *machine) step(t int, comm, starts []int) error {
	in := mc.in
	if len(comm) > in.Ncom {
		return fmt.Errorf("offline: slot %d: %d transfers exceed ncom=%d", t, len(comm), in.Ncom)
	}
	seen := make(map[int]bool, len(comm))

	// 1. Compute progress.
	for q := range mc.procs {
		p := &mc.procs[q]
		if in.Vectors[q][t] == avail.Up && p.computeRem > 0 {
			p.computeRem--
			if p.computeRem == 0 {
				mc.tasksDone++
			}
		}
	}

	// 2. Communication grants.
	for _, q := range comm {
		if q < 0 || q >= in.P() {
			return fmt.Errorf("offline: slot %d: bad processor %d", t, q)
		}
		if seen[q] {
			return fmt.Errorf("offline: slot %d: processor %d granted twice", t, q)
		}
		seen[q] = true
		if in.Vectors[q][t] != avail.Up {
			return fmt.Errorf("offline: slot %d: transfer to non-UP processor %d", t, q)
		}
		p := &mc.procs[q]
		switch {
		case p.progRecv < in.Tprog:
			p.progRecv++
		case p.dataRecv > 0:
			p.dataRecv++
			if p.dataRecv >= in.Tdata {
				p.dataRecv = 0
				p.hasData = true
			}
		case !p.hasData && in.Tdata > 0:
			if mc.tasksStarted >= in.M {
				return fmt.Errorf("offline: slot %d: processor %d starts data beyond m tasks", t, q)
			}
			mc.tasksStarted++
			p.dataRecv = 1
			if p.dataRecv >= in.Tdata {
				p.dataRecv = 0
				p.hasData = true
			}
		default:
			return fmt.Errorf("offline: slot %d: processor %d has nothing to receive", t, q)
		}
	}

	// 3. Zero-cost task starts (Tdata == 0 only).
	for _, q := range starts {
		if q < 0 || q >= in.P() {
			return fmt.Errorf("offline: slot %d: bad start processor %d", t, q)
		}
		if in.Tdata != 0 {
			return fmt.Errorf("offline: slot %d: zero-cost start with Tdata=%d", t, in.Tdata)
		}
		p := &mc.procs[q]
		if in.Vectors[q][t] != avail.Up {
			return fmt.Errorf("offline: slot %d: start on non-UP processor %d", t, q)
		}
		if p.progRecv < in.Tprog {
			return fmt.Errorf("offline: slot %d: start before program on processor %d", t, q)
		}
		if p.hasData || p.computeRem > 0 {
			return fmt.Errorf("offline: slot %d: start on busy processor %d", t, q)
		}
		if mc.tasksStarted >= in.M {
			return fmt.Errorf("offline: slot %d: processor %d starts beyond m tasks", t, q)
		}
		mc.tasksStarted++
		p.hasData = true
	}

	// 4. Promotion: a complete data image starts computing next slot.
	for q := range mc.procs {
		p := &mc.procs[q]
		if p.computeRem == 0 && p.hasData {
			p.hasData = false
			p.computeRem = in.W[q]
		}
	}
	return nil
}

// Schedule is an explicit off-line schedule: the communication grants and
// (for Tdata = 0 instances) the task starts of every slot. Computation is
// implicit: processors always compute begun tasks as early as possible,
// which is dominant for identical independent tasks.
type Schedule struct {
	// Comm[t] lists the processors granted a channel in slot t.
	Comm [][]int
	// Starts[t] lists the processors that begin a zero-cost task in slot t.
	Starts [][]int
}

// Validate replays the schedule on the instance. It returns the number of
// completed tasks and the makespan (the slot count at which the m-th task
// completed; 0 when the schedule never completes all tasks within N).
func (in *Instance) Replay(s *Schedule) (tasksDone, makespan int, err error) {
	if err := in.Validate(); err != nil {
		return 0, 0, err
	}
	n := in.N()
	if len(s.Comm) > n || len(s.Starts) > n {
		return 0, 0, fmt.Errorf("offline: schedule longer than horizon %d", n)
	}
	mc := newMachine(in)
	at := func(list [][]int, t int) []int {
		if t < len(list) {
			return list[t]
		}
		return nil
	}
	for t := 0; t < n; t++ {
		if err := mc.step(t, at(s.Comm, t), at(s.Starts, t)); err != nil {
			return mc.tasksDone, 0, err
		}
		if mc.tasksDone >= in.M && makespan == 0 {
			makespan = t + 1
		}
	}
	return mc.tasksDone, makespan, nil
}
