package offline

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestParseDIMACSBasic(t *testing.T) {
	src := `c a comment
p cnf 3 2
1 -2 3 0
-1 2 0
`
	f, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("parsed %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
	if f.Clauses[0][1] != -2 || f.Clauses[1][0] != -1 {
		t.Fatalf("clauses: %v", f.Clauses)
	}
}

func TestParseDIMACSMultiLineClause(t *testing.T) {
	src := "p cnf 4 1\n1 2\n3 -4 0\n"
	f, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 4 {
		t.Fatalf("clauses: %v", f.Clauses)
	}
}

func TestParseDIMACSMissingTrailingZero(t *testing.T) {
	src := "p cnf 2 2\n1 2 0\n-1 -2\n"
	f, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 2 {
		t.Fatalf("clauses: %v", f.Clauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"",
		"1 2 0\n",                  // clause before header
		"p cnf 0 1\n1 0\n",         // zero vars
		"p dnf 2 1\n1 0\n",         // wrong format tag
		"p cnf 2 1\n1 x 0\n",       // bad literal
		"p cnf 2 1\n3 0\n",         // out-of-range literal
		"p cnf 2 1\n0\n",           // empty clause
		"p cnf 2 1\np cnf 2 1\n",   // duplicate header
		"p cnf 2 1\nc only\nc c\n", // no clauses
	}
	for i, src := range cases {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Fatalf("case %d accepted: %q", i, src)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	r := rng.New(94)
	for trial := 0; trial < 30; trial++ {
		f := Random3SAT(r, 3+r.Intn(5), 1+r.Intn(10))
		var b strings.Builder
		if err := WriteDIMACS(&b, f); err != nil {
			t.Fatal(err)
		}
		g, err := ParseDIMACS(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
			t.Fatalf("round trip mismatch: %+v vs %+v", f, g)
		}
		for i := range f.Clauses {
			for j := range f.Clauses[i] {
				if f.Clauses[i][j] != g.Clauses[i][j] {
					t.Fatalf("clause %d differs", i)
				}
			}
		}
		// Satisfiability preserved.
		_, sf := f.Solve()
		_, sg := g.Solve()
		if sf != sg {
			t.Fatal("round trip changed satisfiability")
		}
	}
}
