// Package offline implements the off-line study of Section 4 of the paper:
// scheduling one iteration of m identical tasks on processors whose
// availability vectors are known in advance.
//
// Provided machinery:
//
//   - Instance: the off-line problem (availability vectors, Tprog, Tdata,
//     per-processor speeds, ncom, m, horizon N), restricted to 2-state
//     vectors {UP, RECLAIMED}; SplitDowns converts a 3-state instance using
//     the paper's DOWN-splitting argument.
//   - Schedule + Validate: explicit communication schedules and a checker
//     that replays them under the model's rules.
//   - MCTNoContention: the greedy schedule that is optimal for ncom = ∞
//     (Proposition 2), and OptimalNoContention, an exhaustive-allocation
//     optimum used to verify that optimality.
//   - ExactSearch: a breadth-first exact solver for bounded ncom on small
//     instances (the problem is NP-hard, Theorem 1).
//   - CNF / DPLL / FromCNF: the 3SAT machinery and the Theorem 1 reduction,
//     including the explicit schedule built from a satisfying assignment.
package offline

import (
	"fmt"

	"repro/internal/avail"
)

// Instance is one off-line scheduling problem: complete m identical tasks
// within N slots. Vectors must contain only Up and Reclaimed states (use
// SplitDowns first if the original instance has DOWN slots).
type Instance struct {
	// Vectors[q][t] is processor q's availability at slot t; every vector
	// has length N.
	Vectors []avail.Vector
	// W[q] is the number of UP compute slots processor q needs per task.
	W []int
	// Tprog is the program size in slots, Tdata the per-task data size.
	Tprog, Tdata int
	// Ncom bounds simultaneous transfers; use NoContention for ∞.
	Ncom int
	// M is the number of tasks of the single iteration.
	M int
}

// NoContention encodes ncom = ∞.
const NoContention = int(^uint(0) >> 1)

// N returns the horizon (the common vector length).
func (in *Instance) N() int {
	if len(in.Vectors) == 0 {
		return 0
	}
	return len(in.Vectors[0])
}

// P returns the number of processors.
func (in *Instance) P() int { return len(in.Vectors) }

// Validate checks structural consistency.
func (in *Instance) Validate() error {
	if in.P() == 0 {
		return fmt.Errorf("offline: no processors")
	}
	n := in.N()
	if n == 0 {
		return fmt.Errorf("offline: empty horizon")
	}
	for q, v := range in.Vectors {
		if len(v) != n {
			return fmt.Errorf("offline: vector %d has length %d, want %d", q, len(v), n)
		}
		for t, s := range v {
			if s == avail.Down {
				return fmt.Errorf("offline: vector %d has DOWN at slot %d; apply SplitDowns first", q, t)
			}
			if !s.Valid() {
				return fmt.Errorf("offline: vector %d has invalid state at slot %d", q, t)
			}
		}
	}
	if len(in.W) != in.P() {
		return fmt.Errorf("offline: %d speeds for %d processors", len(in.W), in.P())
	}
	for q, w := range in.W {
		if w <= 0 {
			return fmt.Errorf("offline: processor %d has speed %d", q, w)
		}
	}
	switch {
	case in.Tprog < 0:
		return fmt.Errorf("offline: Tprog=%d", in.Tprog)
	case in.Tdata < 0:
		return fmt.Errorf("offline: Tdata=%d", in.Tdata)
	case in.Ncom <= 0:
		return fmt.Errorf("offline: Ncom=%d", in.Ncom)
	case in.M <= 0:
		return fmt.Errorf("offline: M=%d", in.M)
	}
	return nil
}

// SplitDowns converts availability vectors that may contain DOWN slots into
// a 2-state instance, using the construction in Section 4: since a processor
// loses program, data and partial work when it goes DOWN, each maximal
// DOWN-free segment of a vector behaves as an independent processor that is
// RECLAIMED outside its segment. Speeds are inherited from the original
// processor. The resulting instance has the same optimal makespan.
func SplitDowns(vectors []avail.Vector, w []int, tprog, tdata, ncom, m int) (*Instance, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("offline: no vectors")
	}
	if len(w) != len(vectors) {
		return nil, fmt.Errorf("offline: %d speeds for %d vectors", len(w), len(vectors))
	}
	n := len(vectors[0])
	out := &Instance{Tprog: tprog, Tdata: tdata, Ncom: ncom, M: m}
	for q, v := range vectors {
		if len(v) != n {
			return nil, fmt.Errorf("offline: vector %d has length %d, want %d", q, len(v), n)
		}
		start := -1
		flush := func(end int) {
			if start < 0 {
				return
			}
			seg := make(avail.Vector, n)
			for t := range seg {
				if t >= start && t < end {
					seg[t] = v[t]
				} else {
					seg[t] = avail.Reclaimed
				}
			}
			out.Vectors = append(out.Vectors, seg)
			out.W = append(out.W, w[q])
			start = -1
		}
		for t, s := range v {
			if s == avail.Down {
				flush(t)
				continue
			}
			if start < 0 {
				start = t
			}
		}
		flush(n)
	}
	if len(out.Vectors) == 0 {
		// Every slot of every processor was DOWN; keep one dead processor so
		// the instance stays well-formed (it simply cannot complete tasks).
		dead := make(avail.Vector, n)
		for t := range dead {
			dead[t] = avail.Reclaimed
		}
		out.Vectors = append(out.Vectors, dead)
		out.W = append(out.W, w[0])
	}
	return out, out.Validate()
}
