package offline

import (
	"fmt"

	"repro/internal/avail"
)

// MaxTasksWithin computes, by exhaustive search, the maximum number of tasks
// completable within the instance's horizon (the optimization version that
// Proposition 1's inapproximability argument is about: on Theorem 1
// reduction instances, completed tasks correspond to satisfied clauses, so
// approximating the task count approximates MAXIMUM 3-SATISFIABILITY).
//
// Like ExactSearch it is exponential and guarded by a state limit.
func MaxTasksWithin(in *Instance, maxStates int) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if in.P() > 16 {
		return 0, fmt.Errorf("offline: MaxTasksWithin supports at most 16 processors, got %d", in.P())
	}
	start := newMachine(in)
	frontier := map[string]*machine{stateKey(start): start}
	best := 0

	for t := 0; t < in.N(); t++ {
		next := make(map[string]*machine)
		for _, mc := range frontier {
			var needy, startable []int
			for q := 0; q < in.P(); q++ {
				if in.Vectors[q][t] != avail.Up {
					continue
				}
				p := &mc.procs[q]
				switch {
				case p.progRecv < in.Tprog:
					needy = append(needy, q)
				case p.dataRecv > 0:
					needy = append(needy, q)
				case in.Tdata > 0 && !p.hasData && mc.tasksStarted < in.M:
					needy = append(needy, q)
				}
				if in.Tdata == 0 && !p.hasData && mc.tasksStarted < in.M &&
					p.progRecv >= in.Tprog-1 && p.computeRem <= 1 {
					startable = append(startable, q)
				}
			}
			for _, comm := range subsetsUpTo(needy, in.Ncom) {
				for _, starts := range subsetsUpTo(startable, len(startable)) {
					child := mc.clone()
					if err := child.step(t, comm, starts); err != nil {
						continue
					}
					if child.tasksDone > best {
						best = child.tasksDone
						if best >= in.M {
							return best, nil
						}
					}
					k := stateKey(child)
					if _, ok := next[k]; !ok {
						next[k] = child
						if len(next) > maxStates {
							return 0, fmt.Errorf("offline: MaxTasksWithin exceeded %d states at slot %d", maxStates, t)
						}
					}
				}
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	return best, nil
}

// MaxSatisfiableClauses brute-forces MAXIMUM SATISFIABILITY for small
// formulas: the largest number of clauses any assignment satisfies.
func MaxSatisfiableClauses(f *CNF) (int, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if f.NumVars > 20 {
		return 0, fmt.Errorf("offline: MaxSatisfiableClauses supports at most 20 variables")
	}
	assignment := make([]bool, f.NumVars+1)
	best := 0
	for mask := 0; mask < 1<<f.NumVars; mask++ {
		for v := 1; v <= f.NumVars; v++ {
			assignment[v] = mask&(1<<(v-1)) != 0
		}
		count := 0
		for _, c := range f.Clauses {
			for _, lit := range c {
				v := lit
				if v < 0 {
					v = -v
				}
				if (lit > 0) == assignment[v] {
					count++
					break
				}
			}
		}
		if count > best {
			best = count
			if best == len(f.Clauses) {
				break
			}
		}
	}
	return best, nil
}
