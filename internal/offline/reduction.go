package offline

import (
	"fmt"

	"repro/internal/avail"
)

// FromCNF builds the Off-Line instance of the Theorem 1 reduction: given a
// 3SAT formula with n variables and m clauses, it constructs p = 2n
// processors, ncom = 1, Tprog = m, Tdata = 0, w = 1, and horizon
// N = m(n+1), with availability (0-indexed slots):
//
//   - clause window, slots 0..m-1: processor 2i-2 (the paper's P_{2i-1},
//     carrying literal x_i) is UP at slot j-1 iff x_i ∈ C_j; processor 2i-1
//     (the paper's P_{2i}, carrying ¬x_i) is UP iff ¬x_i ∈ C_j;
//   - private window of variable i, slots m·i..m·(i+1)-1: both of variable
//     i's processors are UP, every other processor is RECLAIMED.
//
// The formula is satisfiable iff the instance can complete its m tasks
// within N slots.
func FromCNF(f *CNF) (*Instance, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	n := f.NumVars
	m := len(f.Clauses)
	horizon := m * (n + 1)
	in := &Instance{
		Tprog: m,
		Tdata: 0,
		Ncom:  1,
		M:     m,
		W:     make([]int, 2*n),
	}
	in.Vectors = make([]avail.Vector, 2*n)
	for q := range in.Vectors {
		v := make(avail.Vector, horizon)
		for t := range v {
			v[t] = avail.Reclaimed
		}
		in.Vectors[q] = v
		in.W[q] = 1
	}
	// Clause windows.
	for j, c := range f.Clauses {
		for _, lit := range c {
			v := lit
			if v < 0 {
				v = -v
			}
			if lit > 0 {
				in.Vectors[2*(v-1)][j] = avail.Up
			} else {
				in.Vectors[2*(v-1)+1][j] = avail.Up
			}
		}
	}
	// Private windows.
	for i := 1; i <= n; i++ {
		for t := m * i; t < m*(i+1); t++ {
			in.Vectors[2*(i-1)][t] = avail.Up
			in.Vectors[2*(i-1)+1][t] = avail.Up
		}
	}
	return in, in.Validate()
}

// litProc returns the processor index carrying the literal of variable v
// (1-indexed) with the given polarity.
func litProc(v int, positive bool) int {
	if positive {
		return 2 * (v - 1)
	}
	return 2*(v-1) + 1
}

// ScheduleFromAssignment materializes the schedule the Theorem 1 proof
// builds from a satisfying assignment: during clause slot j, the processor
// of one true literal of C_j downloads one program slot; during variable i's
// private window, processor p(i) (the one matching the assignment) finishes
// its program and computes as many tasks as it received clause slots.
// Task starts are generated greedily by replaying the machine.
func ScheduleFromAssignment(f *CNF, in *Instance, assignment []bool) (*Schedule, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if len(assignment) < f.NumVars+1 {
		return nil, fmt.Errorf("offline: assignment covers %d variables, want %d",
			len(assignment)-1, f.NumVars)
	}
	if !f.Eval(assignment) {
		return nil, fmt.Errorf("offline: assignment does not satisfy the formula")
	}
	n := f.NumVars
	m := len(f.Clauses)
	horizon := in.N()
	sched := &Schedule{
		Comm:   make([][]int, horizon),
		Starts: make([][]int, horizon),
	}
	// Clause windows: one program slot to the processor of a true literal.
	received := make([]int, in.P()) // L_q: program slots received early
	for j, c := range f.Clauses {
		proc := -1
		for _, lit := range c {
			v := lit
			if v < 0 {
				v = -v
			}
			if (lit > 0) == assignment[v] {
				proc = litProc(v, lit > 0)
				break
			}
		}
		if proc < 0 {
			return nil, fmt.Errorf("offline: clause %d has no true literal", j)
		}
		sched.Comm[j] = []int{proc}
		received[proc]++
	}
	// Private windows: p(i) completes the program.
	taskBudget := make([]int, in.P())
	for i := 1; i <= n; i++ {
		p := litProc(i, assignment[i])
		rem := m - received[p]
		for k := 0; k < rem; k++ {
			sched.Comm[m*i+k] = []int{p}
		}
		taskBudget[p] = received[p]
	}
	// Task starts: replay and start greedily wherever a budgeted processor
	// is idle with a complete program.
	mc := newMachine(in)
	for t := 0; t < horizon; t++ {
		var starts []int
		// Predict post-comm eligibility conservatively, then verify by
		// stepping a clone.
		for q := 0; q < in.P(); q++ {
			if taskBudget[q] == 0 || in.Vectors[q][t] != avail.Up {
				continue
			}
			p := mc.procs[q]
			willHaveProg := p.progRecv >= in.Tprog ||
				(p.progRecv == in.Tprog-1 && len(sched.Comm[t]) > 0 && sched.Comm[t][0] == q)
			if willHaveProg && !p.hasData && p.computeRem <= 1 {
				starts = append(starts, q)
			}
		}
		// Validate candidate starts one by one on a clone.
		var accepted []int
		for _, q := range starts {
			trial := mc.clone()
			if err := trial.step(t, sched.Comm[t], append(append([]int(nil), accepted...), q)); err == nil {
				accepted = append(accepted, q)
				taskBudget[q]--
			}
		}
		sched.Starts[t] = accepted
		if err := mc.step(t, sched.Comm[t], accepted); err != nil {
			return nil, fmt.Errorf("offline: schedule replay failed at slot %d: %w", t, err)
		}
	}
	return sched, nil
}
