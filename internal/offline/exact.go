package offline

import (
	"fmt"
	"math/bits"

	"repro/internal/avail"
)

// ExactSearch computes the optimal (minimum) makespan of an instance under
// bounded ncom by breadth-first search over execution states, or -1 when the
// instance cannot complete m tasks within its horizon.
//
// The problem is NP-hard (Theorem 1), so this solver is exponential; it
// guards against blow-ups with frontier and branching limits and returns an
// error when the instance is too large. It exists to certify small optima:
// validating the 3SAT reduction, the MCT counterexample of Section 4, and
// the optimality of MCTNoContention on contention-free instances.
func ExactSearch(in *Instance) (int, error) {
	return ExactSearchLimit(in, 2_000_000)
}

// ExactSearchLimit is ExactSearch with an explicit bound on the number of
// distinct states explored per slot.
func ExactSearchLimit(in *Instance, maxStates int) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if in.P() > 16 {
		return 0, fmt.Errorf("offline: ExactSearch supports at most 16 processors, got %d", in.P())
	}

	type key = string
	start := newMachine(in)
	frontier := map[key]*machine{stateKey(start): start}

	for t := 0; t < in.N(); t++ {
		next := make(map[key]*machine)
		for _, mc := range frontier {
			// Processors that could use a channel this slot.
			var needy []int
			// Processors that might perform a zero-cost start this slot.
			var startable []int
			for q := 0; q < in.P(); q++ {
				if in.Vectors[q][t] != avail.Up {
					continue
				}
				p := &mc.procs[q]
				switch {
				case p.progRecv < in.Tprog:
					needy = append(needy, q)
				case p.dataRecv > 0:
					needy = append(needy, q)
				case in.Tdata > 0 && !p.hasData && mc.tasksStarted < in.M:
					needy = append(needy, q)
				}
				// Superset of zero-start eligibility: the program may
				// complete and the computation may end within this very
				// slot; invalid combos are rejected by step().
				if in.Tdata == 0 && !p.hasData && mc.tasksStarted < in.M &&
					p.progRecv >= in.Tprog-1 && p.computeRem <= 1 {
					startable = append(startable, q)
				}
			}
			commSets := subsetsUpTo(needy, in.Ncom)
			startSets := subsetsUpTo(startable, len(startable))
			for _, comm := range commSets {
				for _, starts := range startSets {
					child := mc.clone()
					if err := child.step(t, comm, starts); err != nil {
						continue // invalid combo (over-eager superset)
					}
					if child.tasksDone >= in.M {
						return t + 1, nil
					}
					k := stateKey(child)
					if _, ok := next[k]; !ok {
						next[k] = child
						if len(next) > maxStates {
							return 0, fmt.Errorf("offline: ExactSearch exceeded %d states at slot %d", maxStates, t)
						}
					}
				}
			}
		}
		if len(next) == 0 {
			return -1, nil
		}
		frontier = next
	}
	return -1, nil
}

// stateKey canonically encodes a machine state.
func stateKey(mc *machine) string {
	buf := make([]byte, 0, 4*len(mc.procs)+2)
	for q := range mc.procs {
		p := &mc.procs[q]
		h := byte(0)
		if p.hasData {
			h = 1
		}
		buf = append(buf, byte(p.progRecv), byte(p.dataRecv), h, byte(p.computeRem))
	}
	buf = append(buf, byte(mc.tasksStarted), byte(mc.tasksDone))
	return string(buf)
}

// subsetsUpTo enumerates every subset of items with at most maxSize elements
// (including the empty set). len(items) must be <= 16.
func subsetsUpTo(items []int, maxSize int) [][]int {
	n := len(items)
	if n == 0 {
		return [][]int{nil}
	}
	var out [][]int
	for mask := 0; mask < 1<<n; mask++ {
		if bits.OnesCount(uint(mask)) > maxSize {
			continue
		}
		var sub []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, items[i])
			}
		}
		out = append(out, sub)
	}
	return out
}
