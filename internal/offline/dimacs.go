package offline

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in (simplified) DIMACS format:
//
//	c comment lines
//	p cnf <variables> <clauses>
//	<lit> <lit> ... 0        (clauses may span lines; 0 terminates)
//
// It allows the clause count in the header to disagree with the actual
// number of clauses (many generators get it wrong) but requires literals to
// stay within the declared variable range.
func ParseDIMACS(r io.Reader) (*CNF, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var f *CNF
	var current Clause
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if strings.HasPrefix(text, "p") {
			if f != nil {
				return nil, fmt.Errorf("offline: dimacs line %d: duplicate problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("offline: dimacs line %d: bad problem line %q", line, text)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv <= 0 {
				return nil, fmt.Errorf("offline: dimacs line %d: bad variable count %q", line, fields[2])
			}
			f = &CNF{NumVars: nv}
			continue
		}
		if f == nil {
			return nil, fmt.Errorf("offline: dimacs line %d: clause before problem line", line)
		}
		for _, tok := range strings.Fields(text) {
			lit, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("offline: dimacs line %d: bad literal %q", line, tok)
			}
			if lit == 0 {
				if len(current) == 0 {
					return nil, fmt.Errorf("offline: dimacs line %d: empty clause", line)
				}
				f.Clauses = append(f.Clauses, current)
				current = nil
				continue
			}
			v := lit
			if v < 0 {
				v = -v
			}
			if v > f.NumVars {
				return nil, fmt.Errorf("offline: dimacs line %d: literal %d exceeds %d variables",
					line, lit, f.NumVars)
			}
			current = append(current, lit)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("offline: dimacs: %w", err)
	}
	if f == nil {
		return nil, fmt.Errorf("offline: dimacs: no problem line")
	}
	if len(current) != 0 {
		// Tolerate a missing trailing 0 on the final clause.
		f.Clauses = append(f.Clauses, current)
	}
	if len(f.Clauses) == 0 {
		return nil, fmt.Errorf("offline: dimacs: no clauses")
	}
	return f, f.Validate()
}

// WriteDIMACS emits the formula in DIMACS format.
func WriteDIMACS(w io.Writer, f *CNF) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		parts := make([]string, 0, len(c)+1)
		for _, lit := range c {
			parts = append(parts, strconv.Itoa(lit))
		}
		parts = append(parts, "0")
		if _, err := fmt.Fprintln(w, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}
