package offline

import (
	"fmt"

	"repro/internal/avail"
)

// completionOnProc returns the earliest slot count by which processor q,
// working alone with unlimited master bandwidth, completes k tasks
// (program first, then per-task data, with the usual one-task prefetch and
// compute/communication overlap). It returns -1 when the horizon is too
// short. k = 0 returns 0.
func completionOnProc(in *Instance, q, k int) int {
	if k == 0 {
		return 0
	}
	var p procState
	started, done := 0, 0
	for t := 0; t < in.N(); t++ {
		if in.Vectors[q][t] != avail.Up {
			continue
		}
		// Compute.
		if p.computeRem > 0 {
			p.computeRem--
			if p.computeRem == 0 {
				done++
				if done == k {
					return t + 1
				}
			}
		}
		// Communication (one unit per slot at bandwidth bw).
		if p.progRecv < in.Tprog {
			p.progRecv++
		} else if p.dataRecv > 0 {
			p.dataRecv++
			if p.dataRecv >= in.Tdata {
				p.dataRecv = 0
				p.hasData = true
			}
		} else if in.Tdata > 0 && !p.hasData && started < k {
			started++
			p.dataRecv = 1
			if p.dataRecv >= in.Tdata {
				p.dataRecv = 0
				p.hasData = true
			}
		}
		// Zero-cost task start.
		if in.Tdata == 0 && p.progRecv >= in.Tprog && p.computeRem == 0 &&
			!p.hasData && started < k {
			started++
			p.hasData = true
		}
		// Promotion.
		if p.computeRem == 0 && p.hasData {
			p.hasData = false
			p.computeRem = in.W[q]
		}
	}
	return -1
}

// Allocation maps each processor to its number of assigned tasks.
type Allocation []int

// MCTNoContention runs the greedy MCT strategy of Proposition 2: the program
// is sent to every processor as soon as possible (free, since ncom = ∞), and
// each task goes to the processor that would finish it earliest. It returns
// the allocation and the resulting makespan, or -1 when the instance cannot
// complete m tasks within the horizon. The schedule it implies is optimal
// when in.Ncom is NoContention (Proposition 2).
func MCTNoContention(in *Instance) (Allocation, int, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	alloc := make(Allocation, in.P())
	for task := 0; task < in.M; task++ {
		best, bestT := -1, -1
		for q := 0; q < in.P(); q++ {
			ct := completionOnProc(in, q, alloc[q]+1)
			if ct < 0 {
				continue
			}
			if bestT < 0 || ct < bestT {
				best, bestT = q, ct
			}
		}
		if best < 0 {
			return alloc, -1, nil
		}
		alloc[best]++
	}
	makespan := 0
	for q, k := range alloc {
		if k == 0 {
			continue
		}
		ct := completionOnProc(in, q, k)
		if ct < 0 {
			return alloc, -1, fmt.Errorf("offline: internal: accepted allocation unschedulable")
		}
		if ct > makespan {
			makespan = ct
		}
	}
	return alloc, makespan, nil
}

// OptimalNoContention exhaustively enumerates all ways of splitting the m
// tasks across processors (valid for ncom = ∞, where processors do not
// interact) and returns the minimal makespan, or -1 when no allocation
// completes within the horizon. Exponential in p; intended to verify
// Proposition 2 on small instances.
func OptimalNoContention(in *Instance) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	// Memoize per-processor completion times.
	ct := make([][]int, in.P())
	for q := range ct {
		ct[q] = make([]int, in.M+1)
		for k := 0; k <= in.M; k++ {
			ct[q][k] = completionOnProc(in, q, k)
		}
	}
	best := -1
	var rec func(q, left, worst int)
	rec = func(q, left, worst int) {
		if best >= 0 && worst >= best {
			return // cannot improve
		}
		if q == in.P()-1 {
			last := ct[q][left]
			if last < 0 {
				return
			}
			if last > worst {
				worst = last
			}
			if best < 0 || worst < best {
				best = worst
			}
			return
		}
		for k := 0; k <= left; k++ {
			c := ct[q][k]
			if c < 0 {
				continue // this processor cannot run k tasks
			}
			w := worst
			if c > w {
				w = c
			}
			rec(q+1, left-k, w)
		}
	}
	rec(0, in.M, 0)
	return best, nil
}
