package offline

import (
	"testing"

	"repro/internal/avail"
	"repro/internal/rng"
)

func TestMaxSatisfiableClauses(t *testing.T) {
	// Contradictory pair: exactly one satisfiable.
	f := &CNF{NumVars: 1, Clauses: []Clause{{1}, {-1}}}
	if got, err := MaxSatisfiableClauses(f); err != nil || got != 1 {
		t.Fatalf("got %d/%v, want 1", got, err)
	}
	// Fully satisfiable formula.
	g := &CNF{NumVars: 2, Clauses: []Clause{{1, 2}, {-1, 2}}}
	if got, _ := MaxSatisfiableClauses(g); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
	// The minimal 2-var unsat formula satisfies 3 of 4.
	u := &CNF{NumVars: 2, Clauses: []Clause{{1, 2}, {-1, 2}, {1, -2}, {-1, -2}}}
	if got, _ := MaxSatisfiableClauses(u); got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
}

func TestMaxTasksMatchesMaxSATOnReductions(t *testing.T) {
	// Proposition 1's engine: on Theorem 1 instances, the maximum number of
	// completable tasks equals the maximum number of satisfiable clauses.
	// (For satisfiable formulas both equal m — covered elsewhere; here we
	// focus on unsatisfiable and mixed formulas.)
	formulas := []*CNF{
		{NumVars: 1, Clauses: []Clause{{1}, {-1}}},
		{NumVars: 2, Clauses: []Clause{{1, 2}, {-1, 2}, {1, -2}, {-1, -2}}},
		{NumVars: 2, Clauses: []Clause{{1}, {-1}, {2}}},
		{NumVars: 3, Clauses: []Clause{{1, 2, 3}, {-1, -2, -3}, {1, -2, 3}}},
	}
	r := rng.New(96)
	for i := 0; i < 4; i++ {
		formulas = append(formulas, Random3SAT(r, 3, 2+r.Intn(3)))
	}
	for fi, f := range formulas {
		in, err := FromCNF(f)
		if err != nil {
			t.Fatal(err)
		}
		maxTasks, err := MaxTasksWithin(in, 600_000)
		if err != nil {
			t.Fatalf("formula %d: %v", fi, err)
		}
		maxSat, err := MaxSatisfiableClauses(f)
		if err != nil {
			t.Fatal(err)
		}
		if maxTasks != maxSat {
			t.Fatalf("formula %d (%v): max tasks %d != max satisfiable clauses %d",
				fi, f.Clauses, maxTasks, maxSat)
		}
	}
}

func TestMaxTasksSimpleInstance(t *testing.T) {
	in := &Instance{
		Vectors: []avail.Vector{vec(t, "uuuuuu")},
		W:       []int{1}, Tprog: 1, Tdata: 1, Ncom: 1, M: 3,
	}
	// Single always-UP processor: the exhaustive maximum must match the
	// deterministic asap pipeline count.
	got, err := MaxTasksWithin(in, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	want := completionTasks(in)
	if got != want {
		t.Fatalf("MaxTasksWithin = %d, want %d (single-proc asap)", got, want)
	}
}

// completionTasks counts how many tasks the single processor finishes by the
// horizon under the asap policy.
func completionTasks(in *Instance) int {
	for k := in.M; k >= 1; k-- {
		if completionOnProc(in, 0, k) > 0 {
			return k
		}
	}
	return 0
}
