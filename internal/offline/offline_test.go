package offline

import (
	"testing"

	"repro/internal/avail"
	"repro/internal/rng"
)

func vec(t *testing.T, s string) avail.Vector {
	t.Helper()
	v, err := avail.ParseVector(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestInstanceValidate(t *testing.T) {
	ok := &Instance{
		Vectors: []avail.Vector{vec(t, "uuuu"), vec(t, "urur")},
		W:       []int{1, 2}, Tprog: 1, Tdata: 1, Ncom: 1, M: 1,
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := *ok
	bad.Vectors = []avail.Vector{vec(t, "uuuu"), vec(t, "ur")}
	if err := bad.Validate(); err == nil {
		t.Fatal("ragged vectors accepted")
	}
	bad = *ok
	bad.Vectors = []avail.Vector{vec(t, "uuud"), vec(t, "urur")}
	if err := bad.Validate(); err == nil {
		t.Fatal("DOWN state accepted")
	}
	bad = *ok
	bad.W = []int{1}
	if err := bad.Validate(); err == nil {
		t.Fatal("speed count mismatch accepted")
	}
	bad = *ok
	bad.M = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("M=0 accepted")
	}
}

func TestSplitDowns(t *testing.T) {
	// u u d u u  -> two segment processors:
	//   u u r r r   and   r r r u u
	in, err := SplitDowns([]avail.Vector{vec(t, "uuduu")}, []int{2}, 1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.P() != 2 {
		t.Fatalf("split produced %d processors, want 2", in.P())
	}
	if got := in.Vectors[0].String(); got != "uurrr" {
		t.Fatalf("first segment %q", got)
	}
	if got := in.Vectors[1].String(); got != "rrruu" {
		t.Fatalf("second segment %q", got)
	}
	if in.W[0] != 2 || in.W[1] != 2 {
		t.Fatal("speeds not inherited")
	}
}

func TestSplitDownsAllDown(t *testing.T) {
	in, err := SplitDowns([]avail.Vector{vec(t, "ddd")}, []int{1}, 1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.P() != 1 || in.Vectors[0].String() != "rrr" {
		t.Fatalf("all-down conversion wrong: %v", in.Vectors)
	}
}

func TestCompletionOnProcBasic(t *testing.T) {
	in := &Instance{
		Vectors: []avail.Vector{vec(t, "uuuuuuuuuuuu")},
		W:       []int{2}, Tprog: 2, Tdata: 1, Ncom: 1, M: 3,
	}
	// k=0 -> 0 slots.
	if got := completionOnProc(in, 0, 0); got != 0 {
		t.Fatalf("k=0: %d", got)
	}
	// k=1: prog 0-1, data 2, compute 3-4 -> 5.
	if got := completionOnProc(in, 0, 1); got != 5 {
		t.Fatalf("k=1: %d, want 5", got)
	}
	// k=2 pipelined: data(2) at slot 5 (after promote of task1's data at
	// slot 2... data2 transfers during compute): compute 5-6 -> 7.
	if got := completionOnProc(in, 0, 2); got != 7 {
		t.Fatalf("k=2: %d, want 7", got)
	}
	// k=3: one more (max(Tdata,w)=2) -> 9.
	if got := completionOnProc(in, 0, 3); got != 9 {
		t.Fatalf("k=3: %d, want 9", got)
	}
}

func TestCompletionOnProcReclaimed(t *testing.T) {
	// Interruptions stretch the schedule: u r u r u r ...
	in := &Instance{
		Vectors: []avail.Vector{vec(t, "urururururur")},
		W:       []int{1}, Tprog: 1, Tdata: 1, Ncom: 1, M: 2,
	}
	// UP slots: 0,2,4,6,...  prog@0, data@2, compute@4 -> 5 slots.
	if got := completionOnProc(in, 0, 1); got != 5 {
		t.Fatalf("k=1: %d, want 5", got)
	}
	// Task2: data@4 (overlap with compute), compute@6 -> 7.
	if got := completionOnProc(in, 0, 2); got != 7 {
		t.Fatalf("k=2: %d, want 7", got)
	}
}

func TestCompletionOnProcHorizonExceeded(t *testing.T) {
	in := &Instance{
		Vectors: []avail.Vector{vec(t, "uuu")},
		W:       []int{5}, Tprog: 1, Tdata: 1, Ncom: 1, M: 1,
	}
	if got := completionOnProc(in, 0, 1); got != -1 {
		t.Fatalf("impossible task returned %d", got)
	}
}

func TestCompletionOnProcZeroTdata(t *testing.T) {
	// Tdata=0, w=1: after the program, one task per UP slot.
	in := &Instance{
		Vectors: []avail.Vector{vec(t, "uuuuuuuu")},
		W:       []int{1}, Tprog: 3, Tdata: 0, Ncom: 1, M: 4,
	}
	// prog 0-2 (start same slot program completes), compute 3,4,5,6.
	for k := 1; k <= 4; k++ {
		if got := completionOnProc(in, 0, k); got != 3+k+1-1 {
			t.Fatalf("k=%d: %d, want %d", k, got, 3+k)
		}
	}
}

func TestMCTNoContentionSimple(t *testing.T) {
	// Two processors, one fast one slow, 3 tasks.
	in := &Instance{
		Vectors: []avail.Vector{vec(t, "uuuuuuuuuuuuuuuuuuuu"), vec(t, "uuuuuuuuuuuuuuuuuuuu")},
		W:       []int{1, 5}, Tprog: 1, Tdata: 1, Ncom: NoContention, M: 3,
	}
	alloc, makespan, err := MCTNoContention(in)
	if err != nil {
		t.Fatal(err)
	}
	// Fast proc: k tasks complete at 1+1+k*max(1,1)+... k=1:3, k=2:4, k=3:5.
	// Slow proc: k=1: 1+1+5=7. MCT puts all three on the fast processor.
	if alloc[0] != 3 || alloc[1] != 0 {
		t.Fatalf("allocation %v, want [3 0]", alloc)
	}
	if makespan != 5 {
		t.Fatalf("makespan %d, want 5", makespan)
	}
}

func TestMCTNoContentionImpossible(t *testing.T) {
	in := &Instance{
		Vectors: []avail.Vector{vec(t, "rrrr")},
		W:       []int{1}, Tprog: 1, Tdata: 1, Ncom: NoContention, M: 1,
	}
	_, makespan, err := MCTNoContention(in)
	if err != nil {
		t.Fatal(err)
	}
	if makespan != -1 {
		t.Fatalf("makespan %d for impossible instance", makespan)
	}
}

// randomTwoStateInstance draws a small 2-state instance.
func randomTwoStateInstance(r *rng.PCG, p, m, n int) *Instance {
	in := &Instance{
		Tprog: 1 + r.Intn(3),
		Tdata: r.Intn(3),
		Ncom:  NoContention,
		M:     m,
		W:     make([]int, p),
	}
	for q := 0; q < p; q++ {
		in.W[q] = 1 + r.Intn(3)
		v := make(avail.Vector, n)
		for t := range v {
			if r.Bernoulli(0.7) {
				v[t] = avail.Up
			} else {
				v[t] = avail.Reclaimed
			}
		}
		in.Vectors = append(in.Vectors, v)
	}
	return in
}

func TestMCTOptimalNoContentionProperty(t *testing.T) {
	// Proposition 2: MCT is optimal when ncom = ∞, heterogeneous speeds
	// included. Verified against exhaustive allocation enumeration.
	r := rng.New(61)
	for trial := 0; trial < 200; trial++ {
		in := randomTwoStateInstance(r, 2+r.Intn(3), 1+r.Intn(4), 25)
		_, mct, err := MCTNoContention(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalNoContention(in)
		if err != nil {
			t.Fatal(err)
		}
		if mct != opt {
			t.Fatalf("trial %d: MCT makespan %d != optimal %d\ninstance: %+v",
				trial, mct, opt, in)
		}
	}
}

func TestExactSearchMatchesSingleProc(t *testing.T) {
	// On single-processor instances the exact search must agree with the
	// deterministic pipeline simulation.
	r := rng.New(62)
	for trial := 0; trial < 40; trial++ {
		in := randomTwoStateInstance(r, 1, 1+r.Intn(3), 20)
		in.Ncom = 1
		want := completionOnProc(in, 0, in.M)
		got, err := ExactSearch(in)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: exact %d != single-proc %d (instance %+v)",
				trial, got, want, in)
		}
	}
}

func TestExactSearchMatchesOptimalWhenUncontended(t *testing.T) {
	// With ncom >= p the bound is vacuous; the exact search must equal the
	// allocation-enumeration optimum.
	r := rng.New(63)
	for trial := 0; trial < 25; trial++ {
		in := randomTwoStateInstance(r, 2, 1+r.Intn(3), 14)
		in.Ncom = in.P()
		opt, err := OptimalNoContention(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExactSearch(in)
		if err != nil {
			t.Fatal(err)
		}
		if got != opt {
			t.Fatalf("trial %d: exact %d != optimal %d (instance %+v)",
				trial, got, opt, in)
		}
	}
}

func TestMCTCounterexample(t *testing.T) {
	// Section 4's example: Tprog = Tdata = 2, m = 2, two identical
	// processors (w = 2), ncom = 1, S1 = uuuuuurrr, S2 = ruuuuuuuu.
	// The optimal schedule takes 9 slots (both tasks on P2); serving P1
	// first (the MCT choice) cannot finish by 9.
	in := &Instance{
		Vectors: []avail.Vector{vec(t, "uuuuuurrr"), vec(t, "ruuuuuuuu")},
		W:       []int{2, 2}, Tprog: 2, Tdata: 2, Ncom: 1, M: 2,
	}
	opt, err := ExactSearch(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 9 {
		t.Fatalf("optimal makespan %d, want 9", opt)
	}
	// The explicit optimal schedule: everything to P2 (prog 1-2, data 3-4,
	// compute 5-6 / prefetch 5-6, compute 7-8).
	sched := &Schedule{
		Comm: [][]int{1: {1}, 2: {1}, 3: {1}, 4: {1}, 5: {1}, 6: {1}},
	}
	done, makespan, err := in.Replay(sched)
	if err != nil {
		t.Fatal(err)
	}
	if done != 2 || makespan != 9 {
		t.Fatalf("P2-only schedule: done=%d makespan=%d, want 2/9", done, makespan)
	}
	// Serving P1 greedily: prog 0-1, data 2-3, compute 4-5; the channel is
	// busy until slot 3, so P2 starts its program at slot 4 at the earliest
	// and cannot finish the second task within the horizon.
	greedy := &Schedule{
		Comm: [][]int{0: {0}, 1: {0}, 2: {0}, 3: {0}, 4: {1}, 5: {1}, 6: {1}, 7: {1}},
	}
	done, _, err = in.Replay(greedy)
	if err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Fatalf("greedy-first schedule completed %d tasks, want 1", done)
	}
}

func TestCheckerRejectsViolations(t *testing.T) {
	in := &Instance{
		Vectors: []avail.Vector{vec(t, "uruu"), vec(t, "uuuu")},
		W:       []int{1, 1}, Tprog: 1, Tdata: 1, Ncom: 1, M: 2,
	}
	// Transfer to a RECLAIMED processor.
	if _, _, err := in.Replay(&Schedule{Comm: [][]int{1: {0}}}); err == nil {
		t.Fatal("transfer to reclaimed processor accepted")
	}
	// Exceeding ncom.
	if _, _, err := in.Replay(&Schedule{Comm: [][]int{0: {0, 1}}}); err == nil {
		t.Fatal("ncom violation accepted")
	}
	// Duplicate grant.
	if _, _, err := in.Replay(&Schedule{Comm: [][]int{0: {0, 0}}}); err == nil {
		t.Fatal("duplicate grant accepted")
	}
	// Zero-cost start on a Tdata>0 instance.
	if _, _, err := in.Replay(&Schedule{Starts: [][]int{0: {0}}}); err == nil {
		t.Fatal("zero-cost start accepted with Tdata>0")
	}
	// Receiving with nothing to receive (program done, pipeline full).
	in0 := &Instance{
		Vectors: []avail.Vector{vec(t, "uuuu")},
		W:       []int{4}, Tprog: 1, Tdata: 1, Ncom: 1, M: 1,
	}
	// prog@0, data@1 (task bound), slot 2: nothing left to receive.
	if _, _, err := in0.Replay(&Schedule{Comm: [][]int{0: {0}, 1: {0}, 2: {0}}}); err == nil {
		t.Fatal("over-transfer accepted")
	}
}

func TestDPLLKnownFormulas(t *testing.T) {
	sat := &CNF{NumVars: 2, Clauses: []Clause{{1, 2}, {-1, 2}, {1, -2}}}
	if a, ok := sat.Solve(); !ok || !sat.Eval(a) {
		t.Fatal("satisfiable formula not solved")
	}
	unsat := &CNF{NumVars: 2, Clauses: []Clause{{1, 2}, {-1, 2}, {1, -2}, {-1, -2}}}
	if _, ok := unsat.Solve(); ok {
		t.Fatal("unsatisfiable formula declared SAT")
	}
	single := &CNF{NumVars: 1, Clauses: []Clause{{1}}}
	if a, ok := single.Solve(); !ok || !a[1] {
		t.Fatal("unit formula mis-solved")
	}
	contradiction := &CNF{NumVars: 1, Clauses: []Clause{{1}, {-1}}}
	if _, ok := contradiction.Solve(); ok {
		t.Fatal("contradiction declared SAT")
	}
}

func TestDPLLAgainstBruteForce(t *testing.T) {
	r := rng.New(64)
	for trial := 0; trial < 300; trial++ {
		n := 3 + r.Intn(3)
		f := Random3SAT(r, n, 2+r.Intn(10))
		_, got := f.Solve()
		want := bruteForceSAT(f)
		if got != want {
			t.Fatalf("trial %d: DPLL=%v brute=%v for %+v", trial, got, want, f)
		}
	}
}

func bruteForceSAT(f *CNF) bool {
	assignment := make([]bool, f.NumVars+1)
	for mask := 0; mask < 1<<f.NumVars; mask++ {
		for v := 1; v <= f.NumVars; v++ {
			assignment[v] = mask&(1<<(v-1)) != 0
		}
		if f.Eval(assignment) {
			return true
		}
	}
	return false
}

// figure1CNF is the formula illustrated in Figure 1 of the paper:
// (¬x1∨x3∨x4)(x1∨¬x2∨¬x3)(x2∨x3∨¬x4)(x1∨x2∨x4)(¬x1∨¬x2∨¬x4)(¬x2∨x3∨x4).
func figure1CNF() *CNF {
	return &CNF{NumVars: 4, Clauses: []Clause{
		{-1, 3, 4}, {1, -2, -3}, {2, 3, -4}, {1, 2, 4}, {-1, -2, -4}, {-2, 3, 4},
	}}
}

func TestReductionStructureFigure1(t *testing.T) {
	f := figure1CNF()
	in, err := FromCNF(f)
	if err != nil {
		t.Fatal(err)
	}
	if in.P() != 8 || in.N() != 30 || in.Tprog != 6 || in.Tdata != 0 || in.Ncom != 1 || in.M != 6 {
		t.Fatalf("reduction shape wrong: p=%d N=%d Tprog=%d", in.P(), in.N(), in.Tprog)
	}
	// x1 appears positively in C2 and C4 (0-indexed slots 1 and 3).
	x1 := in.Vectors[0]
	for j := 0; j < 6; j++ {
		up := x1[j] == avail.Up
		want := j == 1 || j == 3
		if up != want {
			t.Fatalf("x1 clause window slot %d: up=%v, want %v", j, up, want)
		}
	}
	// ¬x2 appears in C2, C5, C6 (slots 1, 4, 5).
	nx2 := in.Vectors[3]
	for j := 0; j < 6; j++ {
		up := nx2[j] == avail.Up
		want := j == 1 || j == 4 || j == 5
		if up != want {
			t.Fatalf("¬x2 clause window slot %d: up=%v, want %v", j, up, want)
		}
	}
	// Private window of variable 3 (slots 18..23): exactly processors 4,5 UP.
	for tSlot := 18; tSlot < 24; tSlot++ {
		for q := 0; q < 8; q++ {
			up := in.Vectors[q][tSlot] == avail.Up
			want := q == 4 || q == 5
			if up != want {
				t.Fatalf("private window slot %d proc %d: up=%v want %v", tSlot, q, up, want)
			}
		}
	}
}

func TestReductionScheduleFromAssignmentFigure1(t *testing.T) {
	f := figure1CNF()
	in, err := FromCNF(f)
	if err != nil {
		t.Fatal(err)
	}
	assignment, ok := f.Solve()
	if !ok {
		t.Fatal("figure-1 formula should be satisfiable")
	}
	sched, err := ScheduleFromAssignment(f, in, assignment)
	if err != nil {
		t.Fatal(err)
	}
	done, makespan, err := in.Replay(sched)
	if err != nil {
		t.Fatal(err)
	}
	if done != in.M {
		t.Fatalf("schedule completed %d tasks, want %d", done, in.M)
	}
	if makespan == 0 || makespan > in.N() {
		t.Fatalf("makespan %d outside (0, %d]", makespan, in.N())
	}
}

func TestReductionAgreesWithSATSmall(t *testing.T) {
	// Theorem 1 both ways on exhaustively-solved instances: the reduction
	// instance completes within N iff the formula is satisfiable.
	r := rng.New(65)
	satSeen, unsatSeen := 0, 0
	for trial := 0; trial < 12; trial++ {
		f := Random3SAT(r, 3, 2+r.Intn(4))
		in, err := FromCNF(f)
		if err != nil {
			t.Fatal(err)
		}
		assignment, sat := f.Solve()
		makespan, err := ExactSearchLimit(in, 400_000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sat {
			satSeen++
			if makespan < 0 || makespan > in.N() {
				t.Fatalf("trial %d: SAT formula but exact makespan %d (N=%d)",
					trial, makespan, in.N())
			}
			// The constructive schedule must validate too.
			sched, err := ScheduleFromAssignment(f, in, assignment)
			if err != nil {
				t.Fatal(err)
			}
			if done, _, err := in.Replay(sched); err != nil || done != in.M {
				t.Fatalf("trial %d: constructive schedule invalid (done=%d err=%v)",
					trial, done, err)
			}
		} else {
			unsatSeen++
			if makespan != -1 {
				t.Fatalf("trial %d: UNSAT formula but schedule of makespan %d found",
					trial, makespan)
			}
		}
	}
	if satSeen == 0 {
		t.Error("no satisfiable formulas exercised")
	}
	if unsatSeen == 0 {
		t.Log("note: no unsatisfiable formulas drawn in this sample")
	}
}

func BenchmarkOfflineMCT(b *testing.B) {
	r := rng.New(66)
	in := randomTwoStateInstance(r, 8, 20, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := MCTNoContention(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSearchReduction(b *testing.B) {
	f := &CNF{NumVars: 3, Clauses: []Clause{{1, 2, 3}, {-1, -2, 3}}}
	in, err := FromCNF(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExactSearchLimit(in, 400_000); err != nil {
			b.Fatal(err)
		}
	}
}
