package offline

import (
	"fmt"

	"repro/internal/rng"
)

// Clause is a disjunction of literals. Literal +v means variable v is true,
// -v means variable v is false; variables are 1-indexed.
type Clause []int

// CNF is a propositional formula in conjunctive normal form.
type CNF struct {
	// NumVars is the number of variables (1..NumVars).
	NumVars int
	// Clauses are the conjuncts.
	Clauses []Clause
}

// Validate checks literal ranges and clause non-emptiness.
func (f *CNF) Validate() error {
	if f.NumVars <= 0 {
		return fmt.Errorf("offline: CNF with %d variables", f.NumVars)
	}
	if len(f.Clauses) == 0 {
		return fmt.Errorf("offline: CNF with no clauses")
	}
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("offline: clause %d is empty", i)
		}
		for _, lit := range c {
			v := lit
			if v < 0 {
				v = -v
			}
			if v == 0 || v > f.NumVars {
				return fmt.Errorf("offline: clause %d has literal %d out of range", i, lit)
			}
		}
	}
	return nil
}

// Eval reports whether assignment (1-indexed; index 0 unused) satisfies f.
func (f *CNF) Eval(assignment []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, lit := range c {
			v := lit
			if v < 0 {
				v = -v
			}
			if (lit > 0) == assignment[v] {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Solve decides satisfiability with DPLL (unit propagation + first-unassigned
// branching). It returns a satisfying assignment (1-indexed) when one exists.
func (f *CNF) Solve() ([]bool, bool) {
	if err := f.Validate(); err != nil {
		return nil, false
	}
	const (
		unset = 0
		tru   = 1
		fls   = 2
	)
	assign := make([]int8, f.NumVars+1)

	litVal := func(lit int) int8 {
		v := lit
		if v < 0 {
			v = -v
		}
		a := assign[v]
		if a == unset {
			return unset
		}
		if (lit > 0) == (a == tru) {
			return tru
		}
		return fls
	}

	var dpll func() bool
	dpll = func() bool {
		// Unit propagation to fixpoint.
		var trail []int // variables set during this propagation + branch
		undo := func() {
			for _, v := range trail {
				assign[v] = unset
			}
		}
		for {
			progress := false
			for _, c := range f.Clauses {
				unassigned := 0
				var unit int
				sat := false
				for _, lit := range c {
					switch litVal(lit) {
					case tru:
						sat = true
					case unset:
						unassigned++
						unit = lit
					}
					if sat {
						break
					}
				}
				if sat {
					continue
				}
				if unassigned == 0 {
					undo()
					return false // conflict
				}
				if unassigned == 1 {
					v := unit
					if v < 0 {
						v = -v
					}
					if unit > 0 {
						assign[v] = tru
					} else {
						assign[v] = fls
					}
					trail = append(trail, v)
					progress = true
				}
			}
			if !progress {
				break
			}
		}
		// Find a branching variable.
		branch := 0
		for v := 1; v <= f.NumVars; v++ {
			if assign[v] == unset {
				branch = v
				break
			}
		}
		if branch == 0 {
			return true // complete assignment, no conflicts
		}
		for _, val := range []int8{tru, fls} {
			assign[branch] = val
			if dpll() {
				return true
			}
			assign[branch] = unset
		}
		undo()
		return false
	}

	if !dpll() {
		return nil, false
	}
	out := make([]bool, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		out[v] = assign[v] == tru
	}
	return out, true
}

// Random3SAT draws a random 3SAT formula with n variables and m clauses
// (each clause has 3 literals over distinct variables).
func Random3SAT(r *rng.PCG, n, m int) *CNF {
	if n < 3 {
		panic("offline: Random3SAT needs n >= 3")
	}
	f := &CNF{NumVars: n}
	for i := 0; i < m; i++ {
		vars := r.Perm(n)[:3]
		c := make(Clause, 3)
		for j, v := range vars {
			lit := v + 1
			if r.Bernoulli(0.5) {
				lit = -lit
			}
			c[j] = lit
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}
