// Package atomicio provides crash-safe file writes. Every durable artifact
// of this repo (sweep checkpoints, trace sets, benchmark JSON, CSV exports)
// goes through WriteFile, so a process killed mid-write can never leave a
// torn file behind: readers observe either the previous content or the
// complete new content, nothing in between.
package atomicio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile writes path atomically: the content is staged into a temporary
// file in the same directory (rename is only atomic within a filesystem),
// flushed and fsynced, and then renamed over path. On any error the staged
// file is removed and path is left untouched.
//
// write receives a buffered writer; it must not retain it past its return.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: stage %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("atomicio: flush %s: %w", path, err)
	}
	// Persist the bytes before the rename publishes them: a crash between
	// rename and a later flush could otherwise expose an empty renamed file.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	// CreateTemp stages at 0600; published artifacts keep the conventional
	// file mode the direct os.Create path used to produce.
	if err = tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: publish %s: %w", path, err)
	}
	return nil
}
