package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileRoundTrip pins the happy path: the callback's bytes land at
// the destination, complete and byte-identical.
func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	want := strings.Repeat("payload line\n", 1000)
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, want)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("content mismatch: %d bytes, want %d", len(got), len(want))
	}
}

// TestWriteFileOverwritesAtomically pins the crash-safety contract a failed
// rewrite must honor: when the writer callback errors, the previous file
// content survives untouched and no .tmp litter is left in the directory.
func TestWriteFileOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "original")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("mid-write crash")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "torn half of the new conte")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("WriteFile error = %v, want wrapped %v", err, boom)
	}

	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "original" {
		t.Fatalf("failed rewrite clobbered the file: %q", got)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range entries {
		if e.Name() != "out.txt" {
			t.Fatalf("staging litter left behind: %s", e.Name())
		}
	}
}

// TestWriteFileCreatesWithConventionalMode checks published artifacts are
// world-readable like os.Create's would have been, not CreateTemp's 0600.
func TestWriteFileCreatesWithConventionalMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != 0o644 {
		t.Fatalf("mode = %v, want 0644", got)
	}
}

// TestWriteFileMissingDirectory pins the error path: a destination in a
// nonexistent directory fails up front and stages nothing.
func TestWriteFileMissingDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "out.txt")
	err := WriteFile(path, func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("WriteFile into a missing directory succeeded")
	}
}
