// Package trace records, replays, serializes and synthesizes availability
// traces.
//
// The paper's conclusion proposes challenging the Markov assumption with
// real availability traces (e.g. the Failure Trace Archive). Real FTA data
// is not redistributable here, so this package provides synthetic
// FTA-style generators — semi-Markov processes with Weibull, Pareto or
// log-normal sojourns, the distribution families the desktop-grid
// measurement literature reports — plus a plain-text serialization format so
// genuine traces can be dropped in later. The trace-driven experiments feed
// these through the exact same scheduler code paths as the Markov model.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"math"

	"repro/internal/avail"
	"repro/internal/rng"
)

// Set is a bundle of per-processor availability vectors of equal length.
type Set struct {
	// Vectors[q] is processor q's recorded availability.
	Vectors []avail.Vector
}

// Validate checks non-emptiness and equal lengths.
func (s *Set) Validate() error {
	if len(s.Vectors) == 0 {
		return fmt.Errorf("trace: empty set")
	}
	n := len(s.Vectors[0])
	if n == 0 {
		return fmt.Errorf("trace: zero-length vectors")
	}
	for q, v := range s.Vectors {
		if len(v) != n {
			return fmt.Errorf("trace: vector %d has length %d, want %d", q, len(v), n)
		}
	}
	return nil
}

// Len returns the common vector length.
func (s *Set) Len() int {
	if len(s.Vectors) == 0 {
		return 0
	}
	return len(s.Vectors[0])
}

// Processes returns replay processes for every vector.
func (s *Set) Processes() []avail.Process {
	out := make([]avail.Process, len(s.Vectors))
	for i, v := range s.Vectors {
		out[i] = avail.NewVectorProcess(v)
	}
	return out
}

// Record samples n slots from each given process into a Set.
func Record(procs []avail.Process, n int) *Set {
	out := &Set{Vectors: make([]avail.Vector, len(procs))}
	for i, p := range procs {
		out.Vectors[i] = avail.Record(p, n)
	}
	return out
}

// Write serializes the set as a line-oriented text format: a header line
// "volatrace <p> <n>" followed by one u/r/d string per processor.
func (s *Set) Write(w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "volatrace %d %d\n", len(s.Vectors), s.Len()); err != nil {
		return err
	}
	for _, v := range s.Vectors {
		if _, err := fmt.Fprintln(w, v.String()); err != nil {
			return err
		}
	}
	return nil
}

// Read parses the serialization produced by Write.
func Read(r io.Reader) (*Set, error) {
	br := bufio.NewReader(r)
	var p, n int
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if _, err := fmt.Sscanf(strings.TrimSpace(header), "volatrace %d %d", &p, &n); err != nil {
		return nil, fmt.Errorf("trace: bad header %q: %w", strings.TrimSpace(header), err)
	}
	if p <= 0 || n <= 0 {
		return nil, fmt.Errorf("trace: invalid dimensions %dx%d", p, n)
	}
	// Cap the pre-allocation: p comes from untrusted input, and a header
	// claiming billions of vectors must not reserve gigabytes before a
	// single line is read. Memory may only grow with actual input — append
	// extends the slice as genuine vectors arrive.
	preAlloc := p
	if preAlloc > 1024 {
		preAlloc = 1024
	}
	out := &Set{Vectors: make([]avail.Vector, 0, preAlloc)}
	for i := 0; i < p; i++ {
		line, err := br.ReadString('\n')
		if err != nil && !(err == io.EOF && len(line) > 0) {
			return nil, fmt.Errorf("trace: reading vector %d: %w", i, err)
		}
		v, err := avail.ParseVector(strings.TrimSpace(line))
		if err != nil {
			return nil, fmt.Errorf("trace: vector %d: %w", i, err)
		}
		if len(v) != n {
			return nil, fmt.Errorf("trace: vector %d has length %d, want %d", i, len(v), n)
		}
		out.Vectors = append(out.Vectors, v)
	}
	return out, out.Validate()
}

// FTAStyle names a synthetic sojourn-distribution family.
type FTAStyle int

// Supported synthetic families. The shape parameters follow the qualitative
// findings of the desktop-grid availability literature: heavy-tailed UP
// durations (Weibull shape < 1 / Pareto), shorter reclaim interruptions,
// and rarer long outages.
const (
	// Weibull: Weibull sojourns with shape 0.6 (heavy tail).
	Weibull FTAStyle = iota
	// Pareto: Pareto sojourns with tail index 2.5.
	Pareto
	// LogNormal: log-normal sojourns with sigma 1.2.
	LogNormal
)

// String names the style.
func (s FTAStyle) String() string {
	switch s {
	case Weibull:
		return "weibull"
	case Pareto:
		return "pareto"
	case LogNormal:
		return "lognormal"
	default:
		return "unknown"
	}
}

// SynthOptions parameterizes synthetic trace generation.
type SynthOptions struct {
	// Style selects the sojourn family.
	Style FTAStyle
	// MeanUp is the target mean UP sojourn in slots (default 40).
	MeanUp float64
	// MeanReclaimed is the target mean RECLAIMED sojourn (default 10).
	MeanReclaimed float64
	// MeanDown is the target mean DOWN sojourn (default 20).
	MeanDown float64
}

func (o SynthOptions) withDefaults() SynthOptions {
	if o.MeanUp == 0 {
		o.MeanUp = 40
	}
	if o.MeanReclaimed == 0 {
		o.MeanReclaimed = 10
	}
	if o.MeanDown == 0 {
		o.MeanDown = 20
	}
	return o
}

// NewSynthProcess builds one FTA-style semi-Markov availability process:
// after each UP sojourn the processor is reclaimed (70%) or crashes (30%);
// RECLAIMED and DOWN sojourns both return to UP.
func NewSynthProcess(r *rng.PCG, opt SynthOptions) (avail.Process, error) {
	opt = opt.withDefaults()
	sampler := func(mean float64) avail.SojournSampler {
		switch opt.Style {
		case Weibull:
			// Mean of Weibull(shape k, scale s) = s·Γ(1+1/k); for k=0.6,
			// Γ(1+1/0.6) ≈ 1.5046, so s = mean/1.5046.
			return avail.WeibullSojourn(0.6, mean/1.5046)
		case Pareto:
			// Mean of Pareto(xm, α) = α·xm/(α−1); α = 2.5 keeps the tail
			// heavy but the variance finite, so finite-window occupancy is
			// not dominated by a single extreme sojourn. xm = 0.6·mean.
			return avail.ParetoSojourn(0.6*mean, 2.5)
		case LogNormal:
			// Mean of LogNormal(mu, sigma) = exp(mu + sigma²/2); sigma=1.2.
			const sigma = 1.2
			mu := math.Log(mean) - sigma*sigma/2
			return avail.LogNormalSojourn(mu, sigma)
		default:
			return nil
		}
	}
	upS, reS, doS := sampler(opt.MeanUp), sampler(opt.MeanReclaimed), sampler(opt.MeanDown)
	if upS == nil {
		return nil, fmt.Errorf("trace: unknown style %v", opt.Style)
	}
	jump := [3][3]float64{
		{0, 0.7, 0.3}, // UP -> mostly reclaimed, sometimes crash
		{1, 0, 0},     // RECLAIMED -> UP
		{1, 0, 0},     // DOWN -> UP (reboot)
	}
	sm, err := avail.NewSemiMarkov(jump, [3]avail.SojournSampler{upS, reS, doS})
	if err != nil {
		return nil, err
	}
	return sm.NewProcess(r, avail.Up), nil
}

// FitMarkov3 estimates a 3-state Markov model from a recorded vector by
// counting transitions (with add-one smoothing so all transitions keep
// positive probability). This is the master's "belief" model handed to
// informed heuristics in trace-driven experiments.
func FitMarkov3(v avail.Vector) (*avail.Markov3, error) {
	if len(v) < 2 {
		return nil, fmt.Errorf("trace: vector too short to fit")
	}
	var counts [3][3]float64
	for i := 0; i+1 < len(v); i++ {
		counts[v[i]][v[i+1]]++
	}
	var p [3][3]float64
	for i := 0; i < 3; i++ {
		total := 3.0 // add-one smoothing mass
		for j := 0; j < 3; j++ {
			total += counts[i][j]
		}
		for j := 0; j < 3; j++ {
			p[i][j] = (counts[i][j] + 1) / total
		}
	}
	return avail.NewMarkov3(p)
}

// EmpiricalStationary returns the observed state frequencies of a vector.
func EmpiricalStationary(v avail.Vector) (piU, piR, piD float64) {
	var counts [3]float64
	for _, s := range v {
		counts[s]++
	}
	n := float64(len(v))
	if n == 0 {
		return 0, 0, 0
	}
	return counts[0] / n, counts[1] / n, counts[2] / n
}
