package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/avail"
	"repro/internal/rng"
)

func TestSetValidate(t *testing.T) {
	if err := (&Set{}).Validate(); err == nil {
		t.Fatal("empty set accepted")
	}
	v1, _ := avail.ParseVector("uud")
	v2, _ := avail.ParseVector("ur")
	if err := (&Set{Vectors: []avail.Vector{v1, v2}}).Validate(); err == nil {
		t.Fatal("ragged set accepted")
	}
	if err := (&Set{Vectors: []avail.Vector{v1, v1}}).Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	v1, _ := avail.ParseVector("uurdu")
	v2, _ := avail.ParseVector("ruddu")
	s := &Set{Vectors: []avail.Vector{v1, v2}}
	var b strings.Builder
	if err := s.Write(&b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vectors) != 2 ||
		got.Vectors[0].String() != "uurdu" ||
		got.Vectors[1].String() != "ruddu" {
		t.Fatalf("round trip gave %v", got.Vectors)
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	cases := []string{
		"",
		"volatrace\n",
		"volatrace 2 3\nuuu\n",        // missing vector
		"volatrace 1 3\nux!\n",        // bad letters
		"volatrace 1 5\nuuu\n",        // wrong length
		"volatrace -1 5\nuuuuu\n",     // bad dims
		"notatrace 1 3\nuuu\n",        // bad magic
		"volatrace 0 0\n",             // zero dims
		"volatrace 1 3\n" + "uu\n",    // short vector
		"volatrace 2 2\nuu\nuu\nuu\n", // extra lines are ignored harmlessly? no: only 2 read
	}
	for i, c := range cases[:9] {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
}

func TestRecordAndReplay(t *testing.T) {
	r := rng.New(71)
	m := avail.RandomMarkov3(r)
	procs := []avail.Process{
		m.NewProcess(r.Split(), avail.Up),
		m.NewProcess(r.Split(), avail.Up),
	}
	s := Record(procs, 100)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Replay must reproduce the recording exactly.
	replayed := Record(s.Processes(), 100)
	for q := range s.Vectors {
		if s.Vectors[q].String() != replayed.Vectors[q].String() {
			t.Fatalf("replay diverged on vector %d", q)
		}
	}
}

func TestSynthProcessesAllStyles(t *testing.T) {
	for _, style := range []FTAStyle{Weibull, Pareto, LogNormal} {
		r := rng.New(uint64(style) + 80)
		p, err := NewSynthProcess(r, SynthOptions{Style: style})
		if err != nil {
			t.Fatalf("%v: %v", style, err)
		}
		v := avail.Record(p, 20000)
		piU, piR, piD := EmpiricalStationary(v)
		// With means 40/10/20 and UP->(0.7 R | 0.3 D): expected cycle is
		// 40 + 0.7*10 + 0.3*20 = 53 slots, 40 of them UP. Heavy-tailed
		// samplers drift from the target mean after ceil(); accept broad
		// bands — the point is a plausible mix of all three states.
		if piU < 0.45 || piU > 0.95 {
			t.Fatalf("%v: piU = %v out of band", style, piU)
		}
		if piR <= 0 || piD <= 0 {
			t.Fatalf("%v: degenerate occupancy (piR=%v piD=%v)", style, piR, piD)
		}
		if math.Abs(piU+piR+piD-1) > 1e-9 {
			t.Fatalf("%v: occupancy does not sum to 1", style)
		}
	}
}

func TestSynthDeterministic(t *testing.T) {
	mk := func() avail.Vector {
		p, err := NewSynthProcess(rng.New(99), SynthOptions{Style: Pareto})
		if err != nil {
			t.Fatal(err)
		}
		return avail.Record(p, 500)
	}
	if mk().String() != mk().String() {
		t.Fatal("synthetic trace not reproducible")
	}
}

func TestFitMarkov3RecoverTransitions(t *testing.T) {
	// Fit on a long trajectory of a known chain: estimates must be close.
	truth := avail.MustMarkov3([3][3]float64{
		{0.92, 0.05, 0.03},
		{0.06, 0.90, 0.04},
		{0.08, 0.04, 0.88},
	})
	v := avail.Record(truth.NewProcess(rng.New(72), avail.Up), 300000)
	fit, err := FitMarkov3(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := avail.State(0); i < 3; i++ {
		for j := avail.State(0); j < 3; j++ {
			if diff := math.Abs(fit.P(i, j) - truth.P(i, j)); diff > 0.01 {
				t.Fatalf("P(%v,%v): fit %v vs truth %v", i, j, fit.P(i, j), truth.P(i, j))
			}
		}
	}
}

func TestFitMarkov3ShortVector(t *testing.T) {
	if _, err := FitMarkov3(avail.Vector{avail.Up}); err == nil {
		t.Fatal("single-slot vector accepted")
	}
	// Smoothing keeps unseen transitions positive and rows stochastic.
	v, _ := avail.ParseVector("uuuu")
	fit, err := FitMarkov3(v)
	if err != nil {
		t.Fatal(err)
	}
	if fit.P(avail.Down, avail.Up) <= 0 {
		t.Fatal("smoothed probability not positive")
	}
}

func TestEmpiricalStationary(t *testing.T) {
	v, _ := avail.ParseVector("uurd")
	piU, piR, piD := EmpiricalStationary(v)
	if piU != 0.5 || piR != 0.25 || piD != 0.25 {
		t.Fatalf("got (%v,%v,%v)", piU, piR, piD)
	}
	u0, r0, d0 := EmpiricalStationary(nil)
	if u0 != 0 || r0 != 0 || d0 != 0 {
		t.Fatal("empty vector not zero")
	}
}
