package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTraceRead is the ingestion robustness guard: Read confronts
// arbitrary (hostile) input and must either return a valid Set or an
// error — never panic, and never allocate proportionally to dimensions the
// header merely claims. Whatever parses must survive a Write→Read round
// trip unchanged, since TraceSweep's file path depends on that identity.
//
// The seed corpus covers the grammar's edges: a well-formed set, header
// corruption, dimension lies (including the billion-vector over-allocation
// probe), truncation, bad state letters, and length mismatches. CI runs
// these seeds on every `go test` (fuzz targets execute their corpus as
// unit tests unless -fuzz starts mutation).
func FuzzTraceRead(f *testing.F) {
	seeds := []string{
		"volatrace 2 3\nuud\nrdu\n",                // well-formed
		"volatrace 1 1\nu\n",                       // minimal
		"volatrace 1 5\nuurdu",                     // missing final newline
		"",                                         // empty input
		"volatrace\n",                              // header without dimensions
		"volatrace 2 3\nuud\n",                     // fewer vectors than claimed
		"volatrace 1 3\nuu\n",                      // vector shorter than claimed
		"volatrace 1 2\nuud\n",                     // vector longer than claimed
		"volatrace 1 3\nuxd\n",                     // invalid state letter
		"volatrace -1 3\nuud\n",                    // negative dimensions
		"volatrace 999999999 999999999\n",          // over-allocation probe
		"volatrace 2 1000000000\nu\nu\n",           // claimed length far beyond input
		"VOLATRACE 2 3\nuud\nrdu\n",                // wrong magic case
		"volatrace 2 3\r\nuud\r\nrdu\r\n",          // CRLF line endings
		"volatrace 1 4\n" + strings.Repeat("u", 4), // exact fit
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against header-claimed over-allocation: whatever the input
		// says, Read must not reserve memory beyond a constant factor of
		// the input's actual size (checked indirectly: the parse of a tiny
		// input either fails fast or yields a set no larger than the input).
		set, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics and over-allocation are not
		}
		if verr := set.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid set: %v", verr)
		}
		total := 0
		for _, v := range set.Vectors {
			total += len(v)
		}
		if total > len(data) {
			t.Fatalf("parsed %d states out of %d input bytes", total, len(data))
		}
		// Round trip: Write must re-serialize what Read understood, and
		// Read must accept its own serialization verbatim.
		var buf bytes.Buffer
		if err := set.Write(&buf); err != nil {
			t.Fatalf("Write failed on a set Read accepted: %v", err)
		}
		again, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Read rejected Write's own output %q: %v", buf.String(), err)
		}
		if len(again.Vectors) != len(set.Vectors) {
			t.Fatalf("round trip changed vector count: %d != %d", len(again.Vectors), len(set.Vectors))
		}
		for i := range set.Vectors {
			if set.Vectors[i].String() != again.Vectors[i].String() {
				t.Fatalf("round trip changed vector %d: %q != %q",
					i, set.Vectors[i].String(), again.Vectors[i].String())
			}
		}
	})
}

// TestReadOverAllocationGuard pins the fix FuzzTraceRead's probe seed
// targets: a header claiming a billion vectors must fail fast on the
// truncated input without reserving memory for the claim.
func TestReadOverAllocationGuard(t *testing.T) {
	_, err := Read(strings.NewReader("volatrace 999999999 3\nuud\n"))
	if err == nil {
		t.Fatal("truncated billion-vector set accepted")
	}
}
