package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/avail"
	"repro/internal/rng"
)

// reconstructRLE replays a vector through the run-length trajectory view
// (avail.VectorProcess.NextTransition, the representation event-driven
// simulation consumes) and rebuilds the per-slot states for n slots,
// checking the run grammar: first run starts at slot 0, runs start at
// strictly increasing slots, consecutive runs differ in state, and the
// final state holds Forever.
func reconstructRLE(t *testing.T, v avail.Vector, n int) avail.Vector {
	t.Helper()
	p := avail.NewVectorProcess(v)
	cur, at := p.NextTransition()
	if at != 0 {
		t.Fatalf("first run starts at slot %d, want 0", at)
	}
	out := make(avail.Vector, 0, n)
	for len(out) < n {
		ns, nat := p.NextTransition()
		if nat == avail.Forever {
			if ns != v[len(v)-1] {
				t.Fatalf("Forever run in state %v, vector ends in %v", ns, v[len(v)-1])
			}
			for len(out) < n {
				out = append(out, cur)
			}
			return out
		}
		if nat <= at || ns == cur {
			t.Fatalf("bad run (state %v, slot %d) after (state %v, slot %d)", ns, nat, cur, at)
		}
		for len(out) < nat {
			out = append(out, cur)
		}
		cur, at = ns, nat
	}
	return out
}

// TestSetRLERoundTrip round-trips every vector of synthetic trace sets
// through the RLE trajectory view and requires the reconstructed per-slot
// states to be identical — the equivalence that lets event-driven runs
// consume recorded traces without a per-slot replay.
func TestSetRLERoundTrip(t *testing.T) {
	r := rng.New(42)
	for _, style := range []FTAStyle{Weibull, Pareto, LogNormal} {
		set := &Set{Vectors: make([]avail.Vector, 4)}
		for i := range set.Vectors {
			proc, err := NewSynthProcess(r.Split(), SynthOptions{Style: style})
			if err != nil {
				t.Fatal(err)
			}
			set.Vectors[i] = avail.Record(proc, 500)
		}
		if err := set.Validate(); err != nil {
			t.Fatal(err)
		}
		for i, v := range set.Vectors {
			got := reconstructRLE(t, v, len(v))
			for s := range v {
				if got[s] != v[s] {
					t.Fatalf("style %v vector %d slot %d: RLE %v, original %v", style, i, s, got[s], v[s])
				}
			}
		}
	}
}

// TestSetRLERoundTripDegenerate covers the constant vectors the fuzz corpus
// seeds: all-UP and all-DOWN traces are a single run, so the trajectory
// view must emit exactly one transition and then hold Forever.
func TestSetRLERoundTripDegenerate(t *testing.T) {
	for _, spec := range []string{
		strings.Repeat("u", 64),
		strings.Repeat("d", 64),
		strings.Repeat("r", 64),
		"u",
		"d",
	} {
		v, err := avail.ParseVector(spec)
		if err != nil {
			t.Fatal(err)
		}
		p := avail.NewVectorProcess(v)
		s, at := p.NextTransition()
		if s != v[0] || at != 0 {
			t.Fatalf("%q: first run (%v, %d), want (%v, 0)", spec, s, at, v[0])
		}
		if s, at = p.NextTransition(); s != v[0] || at != avail.Forever {
			t.Fatalf("%q: second run (%v, %d), want (%v, Forever)", spec, s, at, v[0])
		}
		got := reconstructRLE(t, v, len(v)+10)
		for i := range got {
			if got[i] != v[0] {
				t.Fatalf("%q: reconstructed slot %d is %v", spec, i, got[i])
			}
		}
	}
}

// FuzzTraceRLE extends the ingestion fuzz wall to the RLE trajectory view:
// any vector that survives Read must reconstruct per-slot identical states
// through NextTransition. The corpus seeds the degenerate all-DOWN/all-UP
// sets alongside mixed ones.
func FuzzTraceRLE(f *testing.F) {
	seeds := []string{
		"volatrace 2 6\nuuuuuu\ndddddd\n", // degenerate all-UP / all-DOWN
		"volatrace 1 6\nrrrrrr\n",         // degenerate all-RECLAIMED
		"volatrace 2 3\nuud\nrdu\n",       // mixed
		"volatrace 1 1\nd\n",              // single-slot DOWN
		"volatrace 3 8\nuuuudddd\nduuuuuud\nrurururu\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, v := range set.Vectors {
			got := reconstructRLE(t, v, len(v))
			for s := range v {
				if got[s] != v[s] {
					t.Fatalf("vector %d slot %d: RLE %v, original %v", i, s, got[s], v[s])
				}
			}
		}
	})
}
