package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestWilcoxonValidation(t *testing.T) {
	if _, err := WilcoxonSignedRank([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// All-zero differences leave no informative pairs.
	same := []float64{1, 2, 3, 4, 5, 6}
	if _, err := WilcoxonSignedRank(same, same); err == nil {
		t.Fatal("all-tied pairs accepted")
	}
	// Too few pairs.
	if _, err := WilcoxonSignedRank([]float64{1, 2, 3}, []float64{2, 3, 4}); err == nil {
		t.Fatal("3 pairs accepted")
	}
}

func TestWilcoxonNullDistribution(t *testing.T) {
	// Symmetric noise: p-values should rarely be tiny.
	r := rng.New(91)
	significant := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, 40)
		y := make([]float64, 40)
		for i := range x {
			x[i] = r.Normal(0, 1)
			y[i] = r.Normal(0, 1)
		}
		res, err := WilcoxonSignedRank(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			significant++
		}
		if res.P < 0 || res.P > 1 {
			t.Fatalf("p out of range: %v", res.P)
		}
	}
	// Expect ~5% false positives; allow generous slack.
	if significant > trials/5 {
		t.Fatalf("%d/%d null cases significant at 0.05", significant, trials)
	}
}

func TestWilcoxonDetectsShift(t *testing.T) {
	// A clear location shift must produce a tiny p-value.
	r := rng.New(92)
	x := make([]float64, 60)
	y := make([]float64, 60)
	for i := range x {
		base := r.Normal(0, 1)
		x[i] = base
		y[i] = base + 1.0 + r.Normal(0, 0.2)
	}
	res, err := WilcoxonSignedRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("shift undetected: p=%v", res.P)
	}
	if res.WMinus < res.WPlus {
		t.Fatal("rank sums have wrong orientation for x < y")
	}
}

func TestWilcoxonRankSumsInvariant(t *testing.T) {
	// WPlus + WMinus must equal n(n+1)/2 regardless of data.
	r := rng.New(93)
	for trial := 0; trial < 50; trial++ {
		n := 10 + r.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Normal(0, 1)
			y[i] = r.Normal(0.3, 1)
		}
		res, err := WilcoxonSignedRank(x, y)
		if err != nil {
			continue
		}
		want := float64(res.N*(res.N+1)) / 2
		if math.Abs(res.WPlus+res.WMinus-want) > 1e-9 {
			t.Fatalf("rank sums %v+%v != %v", res.WPlus, res.WMinus, want)
		}
	}
}

func TestWilcoxonHandlesTies(t *testing.T) {
	// Heavily tied integer data must not crash and must stay sane.
	x := []float64{3, 3, 3, 4, 4, 5, 5, 5, 6, 6, 7, 7}
	y := []float64{2, 2, 3, 3, 3, 4, 4, 4, 5, 5, 5, 5}
	res, err := WilcoxonSignedRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.P <= 0 || res.P > 1 {
		t.Fatalf("p=%v", res.P)
	}
}

func TestPairedComparison(t *testing.T) {
	x := make([]float64, 30)
	y := make([]float64, 30)
	for i := range x {
		x[i] = float64(100 + i)
		y[i] = float64(110 + i) // y systematically 10 worse
	}
	s, err := PairedComparison("emct", "mct", x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "emct significantly better") {
		t.Fatalf("verdict: %s", s)
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{-1.96, 0.0249979},
		{1.96, 0.9750021},
		{-3, 0.0013499},
	}
	for _, c := range cases {
		if got := normalCDF(c.z); math.Abs(got-c.want) > 1e-5 {
			t.Fatalf("Phi(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}
