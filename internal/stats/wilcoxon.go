package stats

import (
	"fmt"
	"math"
	"sort"
)

// Wilcoxon implements the Wilcoxon signed-rank test for paired samples,
// used to decide whether one heuristic's per-instance makespans are
// systematically smaller than another's (the paper reports averages only;
// we add significance so EXPERIMENTS.md can state which gaps are real).
//
// The implementation uses the normal approximation with tie correction and
// a continuity correction, which is accurate for n ≳ 20 pairs — experiment
// sweeps always have far more.

// WilcoxonResult summarizes a paired signed-rank test.
type WilcoxonResult struct {
	// N is the number of non-zero-difference pairs actually used.
	N int
	// WPlus is the sum of ranks of positive differences (x > y).
	WPlus float64
	// WMinus is the sum of ranks of negative differences.
	WMinus float64
	// Z is the normal-approximation statistic.
	Z float64
	// P is the two-sided p-value.
	P float64
}

// WilcoxonSignedRank tests H0: the paired differences x[i]−y[i] are
// symmetric around zero. Zero differences are dropped (the standard
// practice). It errors when fewer than 5 informative pairs remain.
func WilcoxonSignedRank(x, y []float64) (*WilcoxonResult, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("stats: paired samples of different lengths %d and %d", len(x), len(y))
	}
	type pair struct {
		abs  float64
		sign int
	}
	var pairs []pair
	for i := range x {
		d := x[i] - y[i]
		if d == 0 {
			continue
		}
		s := 1
		if d < 0 {
			s = -1
		}
		pairs = append(pairs, pair{abs: math.Abs(d), sign: s})
	}
	n := len(pairs)
	if n < 5 {
		return nil, fmt.Errorf("stats: only %d informative pairs; need at least 5", n)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].abs < pairs[j].abs })

	// Average ranks over ties; accumulate the tie correction term.
	ranks := make([]float64, n)
	var tieCorrection float64
	for i := 0; i < n; {
		j := i
		for j < n && pairs[j].abs == pairs[i].abs {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}

	res := &WilcoxonResult{N: n}
	for i, p := range pairs {
		if p.sign > 0 {
			res.WPlus += ranks[i]
		} else {
			res.WMinus += ranks[i]
		}
	}
	w := math.Min(res.WPlus, res.WMinus)
	fn := float64(n)
	mean := fn * (fn + 1) / 4
	variance := fn*(fn+1)*(2*fn+1)/24 - tieCorrection/48
	if variance <= 0 {
		return nil, fmt.Errorf("stats: degenerate variance (all differences tied)")
	}
	// Continuity correction toward the mean.
	res.Z = (w - mean + 0.5) / math.Sqrt(variance)
	res.P = 2 * normalCDF(res.Z)
	if res.P > 1 {
		res.P = 1
	}
	return res, nil
}

// normalCDF is Phi(z) for the standard normal distribution.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// PairedComparison runs the signed-rank test on two heuristics' per-instance
// makespans and reports which wins. xs and ys must be index-aligned
// (same instance order).
func PairedComparison(nameX, nameY string, xs, ys []float64) (string, error) {
	res, err := WilcoxonSignedRank(xs, ys)
	if err != nil {
		return "", err
	}
	mx, my := Mean(xs), Mean(ys)
	verdict := "no significant difference"
	if res.P < 0.05 {
		if mx < my {
			verdict = nameX + " significantly better"
		} else {
			verdict = nameY + " significantly better"
		}
	}
	return fmt.Sprintf("%s mean %.1f vs %s mean %.1f: %s (p=%.2g, n=%d)",
		nameX, mx, nameY, my, verdict, res.P, res.N), nil
}
