package stats

// This file implements the sharded side of sweep aggregation.
//
// Floating-point addition is order-sensitive, so an aggregate built from
// instances processed by many workers is bit-identical to a sequential pass
// only if the per-instance contributions are replayed in the sequential
// order. A ShardAggregator buffers the instances of one deterministic slice
// of a sweep (one worker's current work chunk) in processing order; Merge
// then replays completed shards — in chunk order — into the destination
// Aggregators, reproducing the exact Add sequence a single-threaded pass
// would have performed. Shards recycle their InstanceResults across chunks,
// so steady-state sweep memory is bounded by the number of in-flight
// chunks, not by the total instance count.

// ShardAggregator buffers the InstanceResults of one contiguous slice of a
// sweep in processing order, ready for a deterministic Merge. It also pools
// retired InstanceResults (Acquire/Reset) so a long sweep reuses a bounded
// set of result objects. A ShardAggregator must not be used concurrently.
type ShardAggregator struct {
	irs      []*InstanceResult
	censored int
	free     []*InstanceResult
}

// NewShardAggregator returns an empty shard.
func NewShardAggregator() *ShardAggregator { return &ShardAggregator{} }

// Acquire returns an InstanceResult with empty maps, reusing one retired by
// a previous Reset when available. The caller fills it and hands it back via
// Add; results not Added are simply dropped.
func (s *ShardAggregator) Acquire() *InstanceResult {
	if n := len(s.free); n > 0 {
		ir := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		clear(ir.Makespans)
		clear(ir.Censored)
		return ir
	}
	return &InstanceResult{Makespans: make(map[string]int), Censored: make(map[string]bool)}
}

// Add appends one completed instance, with the number of censored runs it
// contained, preserving arrival order.
func (s *ShardAggregator) Add(ir *InstanceResult, censoredRuns int) {
	s.irs = append(s.irs, ir)
	s.censored += censoredRuns
}

// Discard retires an Acquired result that will not be Added — an instance
// whose run failed — returning it to the reuse pool so failure paths do not
// leak pooled results.
func (s *ShardAggregator) Discard(ir *InstanceResult) {
	s.free = append(s.free, ir)
}

// Instances reports the number of buffered instances.
func (s *ShardAggregator) Instances() int { return len(s.irs) }

// CensoredRuns reports the total censored-run count across buffered
// instances.
func (s *ShardAggregator) CensoredRuns() int { return s.censored }

// Reset retires every buffered instance into the reuse pool and clears the
// counters, preparing the shard for its next chunk.
func (s *ShardAggregator) Reset() {
	s.free = append(s.free, s.irs...)
	for i := range s.irs {
		s.irs[i] = nil
	}
	s.irs = s.irs[:0]
	s.censored = 0
}

// Merge replays every instance buffered in shard, in insertion order, into
// each destination aggregator. Because the replay performs the same Add
// calls in the same order a sequential pass would, merging shards in their
// deterministic chunk order yields destination aggregates that are
// bit-identical to single-threaded aggregation, independent of how many
// workers filled the shards.
func Merge(shard *ShardAggregator, dsts ...*Aggregator) {
	for _, ir := range shard.irs {
		for _, d := range dsts {
			d.Add(ir)
		}
	}
}
