package stats

import (
	"fmt"
	"reflect"
	"testing"
)

// mkInstances builds a deterministic pseudo-random stream of instances whose
// dfb values are "ragged" floats, so any change in summation order shows up
// in the mean's low bits.
func mkInstances(n int) []*InstanceResult {
	out := make([]*InstanceResult, n)
	state := uint64(0x9E3779B97F4A7C15)
	next := func() int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state >> 33)
	}
	for i := range out {
		ir := &InstanceResult{Makespans: map[string]int{}, Censored: map[string]bool{}}
		for _, h := range []string{"a", "b", "c"} {
			ir.Makespans[h] = 90 + next()%37
			if next()%11 == 0 {
				ir.Censored[h] = true
			}
		}
		out[i] = ir
	}
	return out
}

// TestMergeMatchesSequential is the core determinism property of the shard
// layer: chunking a stream of instances into shards of any size and merging
// the shards in order must be bit-identical (exact float equality) to adding
// every instance to the destinations directly.
func TestMergeMatchesSequential(t *testing.T) {
	instances := mkInstances(97)
	for _, chunk := range []int{1, 2, 7, 32, 97, 1000} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			seq := NewAggregator()
			for _, ir := range instances {
				seq.Add(ir)
			}

			sharded := NewAggregator()
			shard := NewShardAggregator()
			for lo := 0; lo < len(instances); lo += chunk {
				hi := min(lo+chunk, len(instances))
				shard.Reset()
				for _, src := range instances[lo:hi] {
					ir := shard.Acquire()
					for h, ms := range src.Makespans {
						ir.Makespans[h] = ms
					}
					for h, c := range src.Censored {
						ir.Censored[h] = c
					}
					shard.Add(ir, len(src.Censored))
				}
				Merge(shard, sharded)
			}

			if seq.Instances() != sharded.Instances() {
				t.Fatalf("instances: sequential %d, sharded %d", seq.Instances(), sharded.Instances())
			}
			if !reflect.DeepEqual(seq.Rows(), sharded.Rows()) {
				t.Fatalf("rows diverged:\nsequential %+v\nsharded    %+v", seq.Rows(), sharded.Rows())
			}
		})
	}
}

// TestMergeMultipleDestinations checks that one replay feeds every
// destination, mirroring how a sweep folds each chunk into the overall,
// per-wmin and per-cell aggregates at once.
func TestMergeMultipleDestinations(t *testing.T) {
	shard := NewShardAggregator()
	ir := shard.Acquire()
	ir.Makespans["a"], ir.Makespans["b"] = 100, 150
	shard.Add(ir, 0)

	overall, bucket := NewAggregator(), NewAggregator()
	Merge(shard, overall, bucket)
	for _, a := range []*Aggregator{overall, bucket} {
		if a.Instances() != 1 {
			t.Fatalf("destination saw %d instances, want 1", a.Instances())
		}
		if v, ok := a.AvgDFB("b"); !ok || v != 50 {
			t.Fatalf("AvgDFB(b) = %v/%v, want 50", v, ok)
		}
	}
}

// TestShardAggregatorRecycles pins the pooling contract: after Reset, the
// next Acquire hands back a previously retired InstanceResult with cleared
// maps, and the shard's counters restart from zero.
func TestShardAggregatorRecycles(t *testing.T) {
	shard := NewShardAggregator()
	first := shard.Acquire()
	first.Makespans["x"] = 7
	first.Censored["x"] = true
	shard.Add(first, 1)
	if shard.Instances() != 1 || shard.CensoredRuns() != 1 {
		t.Fatalf("shard counters = %d/%d, want 1/1", shard.Instances(), shard.CensoredRuns())
	}

	shard.Reset()
	if shard.Instances() != 0 || shard.CensoredRuns() != 0 {
		t.Fatalf("post-Reset counters = %d/%d", shard.Instances(), shard.CensoredRuns())
	}
	second := shard.Acquire()
	if second != first {
		t.Fatal("Reset did not recycle the retired InstanceResult")
	}
	if len(second.Makespans) != 0 || len(second.Censored) != 0 {
		t.Fatalf("recycled maps not cleared: %v / %v", second.Makespans, second.Censored)
	}
}

// TestMergeEmptyShard ensures an empty shard is a no-op.
func TestMergeEmptyShard(t *testing.T) {
	a := NewAggregator()
	Merge(NewShardAggregator(), a)
	if a.Instances() != 0 || len(a.Rows()) != 0 {
		t.Fatalf("empty merge mutated the destination: %+v", a.Rows())
	}
}
