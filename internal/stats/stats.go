// Package stats implements the evaluation metrics of Section 7: the
// degradation-from-best (dfb) of each heuristic on each problem instance,
// win counting, and the aggregation used by Table 2, Table 3 and Figure 2,
// plus small descriptive-statistics helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// DFB returns the degradation from best in percent: the relative distance of
// a makespan from the best makespan observed on the same instance.
// A value of 0 means the heuristic was (tied-)best.
func DFB(makespan, best int) float64 {
	if best <= 0 {
		return 0
	}
	return 100 * float64(makespan-best) / float64(best)
}

// InstanceResult is the makespan of every heuristic on one problem instance
// (one scenario × one trial).
type InstanceResult struct {
	// Makespans maps heuristic name to achieved makespan (slots).
	Makespans map[string]int
	// Censored marks heuristics whose run hit the slot cap.
	Censored map[string]bool
}

// Best returns the smallest uncensored makespan of the instance; ok is false
// when every heuristic was censored.
func (ir *InstanceResult) Best() (best int, ok bool) {
	for name, ms := range ir.Makespans {
		if ir.Censored[name] {
			continue
		}
		if !ok || ms < best {
			best, ok = ms, true
		}
	}
	return best, ok
}

// accum is the running per-heuristic aggregate: a left-to-right sum of dfb
// samples (in Add order, so results are bit-identical to summing a stored
// sample slice), their count, and the win count.
type accum struct {
	sum   float64
	count int
	wins  int
}

// Aggregator accumulates per-heuristic dfb values and win counts over many
// instances, as the paper's Table 2 does. It keeps running sums only, so its
// memory is O(heuristics) regardless of how many instances it has seen.
//
// Because floating-point addition is order-sensitive, two Aggregators are
// bit-identical only when they received the same instances in the same
// order; sharded sweeps therefore replay shards in a deterministic order
// (see ShardAggregator and Merge).
type Aggregator struct {
	acc map[string]*accum
	n   int
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{acc: make(map[string]*accum)}
}

// Add folds one instance into the aggregate. Censored heuristics receive the
// dfb of the slot cap (a large penalty) and never win. Instances where every
// heuristic is censored are dropped.
func (a *Aggregator) Add(ir *InstanceResult) {
	best, ok := ir.Best()
	if !ok {
		return
	}
	a.n++
	for name, ms := range ir.Makespans {
		ac := a.acc[name]
		if ac == nil {
			ac = &accum{}
			a.acc[name] = ac
		}
		ac.sum += DFB(ms, best)
		ac.count++
		if !ir.Censored[name] && ms == best {
			ac.wins++
		}
	}
}

// Instances reports the number of aggregated instances.
func (a *Aggregator) Instances() int { return a.n }

// AccumState is the serialized running aggregate of one heuristic: the
// left-to-right dfb sum carried as raw IEEE-754 bits (so a restored
// aggregator resumes the exact float, not a decimal approximation), the
// sample count and the win count.
type AccumState struct {
	// Name is the heuristic (or batch discipline) the row belongs to.
	Name string
	// SumBits is math.Float64bits of the running dfb sum.
	SumBits uint64
	// Count is the number of dfb samples folded into the sum.
	Count int
	// Wins counts the instances where the heuristic was (tied-)best.
	Wins int
}

// AggregatorState is a serializable snapshot of an Aggregator's running
// state, ordered deterministically (by name) so its encoding is stable.
type AggregatorState struct {
	// Instances is the number of aggregated instances.
	Instances int
	// Accums holds one entry per heuristic, sorted by Name.
	Accums []AccumState
}

// State snapshots the aggregator's running sums. The snapshot is a deep
// copy: later Adds do not disturb it. Restoring it with FromState and
// replaying the remaining instances in order yields an aggregator
// bit-identical to one that saw the full sequence (the sum is carried as
// raw float bits, so not even the last ulp is lost).
func (a *Aggregator) State() AggregatorState {
	st := AggregatorState{Instances: a.n, Accums: make([]AccumState, 0, len(a.acc))}
	for name, ac := range a.acc {
		st.Accums = append(st.Accums, AccumState{
			Name:    name,
			SumBits: math.Float64bits(ac.sum),
			Count:   ac.count,
			Wins:    ac.wins,
		})
	}
	sort.Slice(st.Accums, func(i, j int) bool { return st.Accums[i].Name < st.Accums[j].Name })
	return st
}

// FromState reconstructs an Aggregator from a State snapshot.
func FromState(st AggregatorState) *Aggregator {
	a := NewAggregator()
	a.n = st.Instances
	for _, ac := range st.Accums {
		a.acc[ac.Name] = &accum{sum: math.Float64frombits(ac.SumBits), count: ac.Count, wins: ac.Wins}
	}
	return a
}

// Row is one line of a Table 2-style report.
type Row struct {
	// Name is the heuristic.
	Name string
	// AvgDFB is the mean degradation from best, in percent.
	AvgDFB float64
	// Wins counts the instances where the heuristic was (tied-)best.
	Wins int
}

// Rows returns the aggregate sorted by increasing average dfb
// (best heuristic first), matching the layout of Table 2.
func (a *Aggregator) Rows() []Row {
	out := make([]Row, 0, len(a.acc))
	for name, ac := range a.acc {
		out = append(out, Row{Name: name, AvgDFB: ac.sum / float64(ac.count), Wins: ac.wins})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AvgDFB != out[j].AvgDFB {
			return out[i].AvgDFB < out[j].AvgDFB
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// AvgDFB returns the mean dfb of one heuristic; ok is false when the
// heuristic has no samples.
func (a *Aggregator) AvgDFB(name string) (float64, bool) {
	ac, ok := a.acc[name]
	if !ok || ac.count == 0 {
		return 0, false
	}
	return ac.sum / float64(ac.count), true
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// StdDev returns the sample standard deviation (0 for fewer than 2 samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary formats mean ± CI95 for display.
func Summary(xs []float64) string {
	return fmt.Sprintf("%.2f ± %.2f", Mean(xs), CI95(xs))
}
