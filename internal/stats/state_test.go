package stats

import (
	"math"
	"reflect"
	"testing"
)

// instanceSeq builds a deterministic stream of instances with awkward float
// content (sums that do not round-trip through short decimal forms).
func instanceSeq(n int) []*InstanceResult {
	out := make([]*InstanceResult, n)
	for i := 0; i < n; i++ {
		out[i] = &InstanceResult{
			Makespans: map[string]int{
				"a": 100 + (i*7)%13,
				"b": 100 + (i*11)%17,
				"c": 100,
			},
			Censored: map[string]bool{"c": i%5 == 0},
		}
	}
	return out
}

// TestAggregatorStateResumeBitIdentical is the checkpoint/resume core
// property at the stats layer: snapshot after a prefix, restore, replay the
// suffix — every row (float sum bits included) must equal an uninterrupted
// aggregation. Floating-point addition is order-sensitive, so this only
// holds because State carries the exact running sum bits.
func TestAggregatorStateResumeBitIdentical(t *testing.T) {
	seq := instanceSeq(57)
	for _, cut := range []int{0, 1, 23, 56, 57} {
		full := NewAggregator()
		for _, ir := range seq {
			full.Add(ir)
		}

		prefix := NewAggregator()
		for _, ir := range seq[:cut] {
			prefix.Add(ir)
		}
		resumed := FromState(prefix.State())
		for _, ir := range seq[cut:] {
			resumed.Add(ir)
		}

		if full.Instances() != resumed.Instances() {
			t.Fatalf("cut=%d: instances %d != %d", cut, resumed.Instances(), full.Instances())
		}
		fr, rr := full.Rows(), resumed.Rows()
		if !reflect.DeepEqual(fr, rr) {
			t.Fatalf("cut=%d: rows diverged\nfull:    %+v\nresumed: %+v", cut, fr, rr)
		}
		// Rows() divides; compare the raw sums too, at bit granularity.
		fs, rs := full.State(), resumed.State()
		if !reflect.DeepEqual(fs, rs) {
			t.Fatalf("cut=%d: states diverged\nfull:    %+v\nresumed: %+v", cut, fs, rs)
		}
	}
}

// TestAggregatorStateIsDeepCopy guards against a snapshot aliasing live
// accumulators: Adds after State must not change the snapshot.
func TestAggregatorStateIsDeepCopy(t *testing.T) {
	a := NewAggregator()
	seq := instanceSeq(5)
	for _, ir := range seq {
		a.Add(ir)
	}
	st := a.State()
	before := append([]AccumState(nil), st.Accums...)
	a.Add(seq[0])
	if !reflect.DeepEqual(st.Accums, before) {
		t.Fatal("State snapshot changed after a later Add")
	}
}

// TestAggregatorStateSorted pins the deterministic ordering the checkpoint
// encoding relies on.
func TestAggregatorStateSorted(t *testing.T) {
	a := NewAggregator()
	for _, ir := range instanceSeq(3) {
		a.Add(ir)
	}
	st := a.State()
	for i := 1; i < len(st.Accums); i++ {
		if st.Accums[i-1].Name >= st.Accums[i].Name {
			t.Fatalf("accums not strictly sorted by name: %+v", st.Accums)
		}
	}
}

// TestFromStateRoundTripsSumBits spot-checks that an irrational-ish sum
// survives the bits round trip exactly.
func TestFromStateRoundTripsSumBits(t *testing.T) {
	a := NewAggregator()
	a.Add(&InstanceResult{Makespans: map[string]int{"x": 103, "y": 100}, Censored: map[string]bool{}})
	a.Add(&InstanceResult{Makespans: map[string]int{"x": 107, "y": 100}, Censored: map[string]bool{}})
	st := a.State()
	b := FromState(st)
	av, _ := a.AvgDFB("x")
	bv, _ := b.AvgDFB("x")
	if math.Float64bits(av) != math.Float64bits(bv) {
		t.Fatalf("restored avg dfb drifted: %x != %x", math.Float64bits(av), math.Float64bits(bv))
	}
}

// TestShardDiscardRecyclesResult pins the failure-path pooling: a Discarded
// result is handed back by the next Acquire with cleared maps.
func TestShardDiscardRecyclesResult(t *testing.T) {
	s := NewShardAggregator()
	ir := s.Acquire()
	ir.Makespans["h"] = 42
	ir.Censored["h"] = true
	s.Discard(ir)
	got := s.Acquire()
	if got != ir {
		t.Fatal("Acquire after Discard did not reuse the discarded result")
	}
	if len(got.Makespans) != 0 || len(got.Censored) != 0 {
		t.Fatalf("recycled result not cleared: %+v", got)
	}
	if s.Instances() != 0 {
		t.Fatalf("Discard leaked into the buffered instances: %d", s.Instances())
	}
}
