package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDFB(t *testing.T) {
	if got := DFB(100, 100); got != 0 {
		t.Fatalf("DFB(best) = %v", got)
	}
	if got := DFB(150, 100); got != 50 {
		t.Fatalf("DFB = %v, want 50", got)
	}
	if got := DFB(5, 0); got != 0 {
		t.Fatalf("DFB with zero best = %v", got)
	}
}

func TestInstanceBest(t *testing.T) {
	ir := &InstanceResult{
		Makespans: map[string]int{"a": 120, "b": 100, "c": 90},
		Censored:  map[string]bool{"c": true},
	}
	best, ok := ir.Best()
	if !ok || best != 100 {
		t.Fatalf("Best = %d/%v, want 100/true", best, ok)
	}
	all := &InstanceResult{
		Makespans: map[string]int{"a": 1},
		Censored:  map[string]bool{"a": true},
	}
	if _, ok := all.Best(); ok {
		t.Fatal("all-censored instance has a best")
	}
}

func TestAggregatorTableSemantics(t *testing.T) {
	a := NewAggregator()
	// Instance 1: b best, a 50% worse.
	a.Add(&InstanceResult{Makespans: map[string]int{"a": 150, "b": 100}})
	// Instance 2: tie.
	a.Add(&InstanceResult{Makespans: map[string]int{"a": 200, "b": 200}})
	// All-censored instance is dropped.
	a.Add(&InstanceResult{
		Makespans: map[string]int{"a": 999, "b": 999},
		Censored:  map[string]bool{"a": true, "b": true},
	})
	if a.Instances() != 2 {
		t.Fatalf("Instances = %d, want 2", a.Instances())
	}
	rows := a.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Name != "b" || rows[0].AvgDFB != 0 || rows[0].Wins != 2 {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if rows[1].Name != "a" || rows[1].AvgDFB != 25 || rows[1].Wins != 1 {
		t.Fatalf("row 1 = %+v", rows[1])
	}
	if v, ok := a.AvgDFB("a"); !ok || v != 25 {
		t.Fatalf("AvgDFB(a) = %v/%v", v, ok)
	}
	if _, ok := a.AvgDFB("zzz"); ok {
		t.Fatal("AvgDFB of unknown heuristic reported ok")
	}
}

func TestCensoredNeverWins(t *testing.T) {
	a := NewAggregator()
	a.Add(&InstanceResult{
		Makespans: map[string]int{"a": 100, "b": 100},
		Censored:  map[string]bool{"a": true},
	})
	rows := a.Rows()
	for _, r := range rows {
		if r.Name == "a" && r.Wins != 0 {
			t.Fatal("censored heuristic won")
		}
		if r.Name == "b" && r.Wins != 1 {
			t.Fatal("uncensored best did not win")
		}
	}
}

func TestDescriptiveStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Fatalf("Median = %v", Median(xs))
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if got := StdDev(xs); math.Abs(got-1.2909944487) > 1e-9 {
		t.Fatalf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 || CI95(nil) != 0 {
		t.Fatal("empty-input stats not zero")
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample StdDev not zero")
	}
	if s := Summary(xs); s == "" {
		t.Fatal("empty summary")
	}
}

func TestQuickDFBNonNegativeForBestAtMost(t *testing.T) {
	f := func(a, b uint16) bool {
		best := int(b%1000) + 1
		ms := best + int(a%1000)
		return DFB(ms, best) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWinsSumAtLeastInstances(t *testing.T) {
	// Every instance has at least one winner, so total wins >= instances.
	f := func(seeds []uint8) bool {
		a := NewAggregator()
		for _, s := range seeds {
			m := map[string]int{"x": 100 + int(s)%7, "y": 100 + int(s/2)%7}
			a.Add(&InstanceResult{Makespans: m})
		}
		total := 0
		for _, r := range a.Rows() {
			total += r.Wins
		}
		return total >= a.Instances()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
