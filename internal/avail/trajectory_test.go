// Tests for the sojourn-trajectory view (Trajectory / NextTransition) and
// the SojournSampler edge cases. This file lives in package avail_test so
// it can pin sampler moments against internal/expect's analytics, which
// imports avail.
package avail_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/avail"
	"repro/internal/expect"
	"repro/internal/rng"
)

// recordTrajectory reconstructs the first n per-slot states of a trajectory
// from its (state, atSlot) runs, asserting the Trajectory contract on the
// way: first transition at slot 0, strictly increasing transition slots,
// and distinct states across consecutive runs.
func recordTrajectory(t *testing.T, tr avail.Trajectory, n int) avail.Vector {
	t.Helper()
	cur, at := tr.NextTransition()
	if at != 0 {
		t.Fatalf("first transition at slot %d, want 0", at)
	}
	v := make(avail.Vector, 0, n)
	for len(v) < n {
		ns, nat := tr.NextTransition()
		if nat == avail.Forever {
			if ns != cur {
				t.Fatalf("Forever reported with state %v, current run is %v", ns, cur)
			}
			for len(v) < n {
				v = append(v, cur)
			}
			return v
		}
		if nat <= at {
			t.Fatalf("transition slots not strictly increasing: %d after %d", nat, at)
		}
		if ns == cur {
			t.Fatalf("slot %d: consecutive runs share state %v", nat, ns)
		}
		for len(v) < nat && len(v) < n {
			v = append(v, cur)
		}
		cur, at = ns, nat
	}
	return v
}

// TestVectorTrajectoryRoundTrip drives random vectors through the RLE
// trajectory view and requires the reconstructed per-slot states to equal
// the original vector, with the past-the-end tail holding the final state
// forever — exactly Next's dead-stays-dead semantics.
func TestVectorTrajectoryRoundTrip(t *testing.T) {
	f := func(seed uint64, length uint8) bool {
		n := 1 + int(length)
		r := rng.New(seed)
		v := make(avail.Vector, n)
		for i := range v {
			v[i] = avail.State(r.Intn(3))
		}
		got := recordTrajectory(t, avail.NewVectorProcess(v), n+50)
		for i := 0; i < n; i++ {
			if got[i] != v[i] {
				t.Logf("slot %d: got %v want %v", i, got[i], v[i])
				return false
			}
		}
		for i := n; i < n+50; i++ {
			if got[i] != v[n-1] {
				t.Logf("tail slot %d: got %v want held %v", i, got[i], v[n-1])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestVectorTrajectoryForeverIsStable pins that once a vector trajectory
// reports Forever, every later call repeats the same answer.
func TestVectorTrajectoryForeverIsStable(t *testing.T) {
	v, err := avail.ParseVector("uurdd")
	if err != nil {
		t.Fatal(err)
	}
	p := avail.NewVectorProcess(v)
	for {
		s, at := p.NextTransition()
		if at == avail.Forever {
			if s != avail.Down {
				t.Fatalf("Forever state %v, want d", s)
			}
			break
		}
	}
	for i := 0; i < 3; i++ {
		if s, at := p.NextTransition(); s != avail.Down || at != avail.Forever {
			t.Fatalf("post-Forever call %d: (%v, %d)", i, s, at)
		}
	}
}

// TestSemiMarkovTrajectoryMatchesNext pins the semi-Markov trajectory view
// bit for bit against per-slot stepping: the two views consume the RNG in
// the same order (the constructor's initial sojourn, then alternating jump
// and sojourn draws), so two identically seeded processes must produce the
// exact same state sequence whichever way they are driven.
func TestSemiMarkovTrajectoryMatchesNext(t *testing.T) {
	jump := [3][3]float64{
		{0, 0.7, 0.3},
		{0.6, 0, 0.4},
		{0.5, 0.5, 0},
	}
	samplers := [3]avail.SojournSampler{
		avail.GeometricSojourn(0.6),
		func(*rng.PCG) int { return 3 },
		avail.WeibullSojourn(0.6, 5.0),
	}
	m, err := avail.NewSemiMarkov(jump, samplers)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 20; seed++ {
		slotwise := avail.Record(m.NewProcess(rng.New(seed), avail.Up), 5000)
		runwise := recordTrajectory(t, m.NewProcess(rng.New(seed), avail.Up), 5000)
		for i := range slotwise {
			if slotwise[i] != runwise[i] {
				t.Fatalf("seed %d slot %d: Next %v, NextTransition %v", seed, i, slotwise[i], runwise[i])
			}
		}
	}
}

// TestMarkov3TrajectoryOccupancy pins the geometric-sojourn trajectory of a
// Markov3 model distributionally: the per-slot occupancy reconstructed from
// sojourn runs must match the model's stationary distribution (via the
// interned expect analytics) and the occupancy of an independently seeded
// per-slot chain, within sampling tolerance.
func TestMarkov3TrajectoryOccupancy(t *testing.T) {
	m := avail.MustMarkov3([3][3]float64{
		{0.90, 0.06, 0.04},
		{0.08, 0.88, 0.04},
		{0.05, 0.05, 0.90},
	})
	a := expect.Of(m)
	const n = 300000
	occ := func(v avail.Vector) [3]float64 {
		var c [3]int
		for _, s := range v {
			c[s]++
		}
		return [3]float64{float64(c[0]) / n, float64(c[1]) / n, float64(c[2]) / n}
	}
	byRuns := occ(recordTrajectory(t, m.NewProcess(rng.New(5), avail.Up), n))
	bySlots := occ(avail.Record(m.NewProcess(rng.New(17), avail.Up), n))
	pi := [3]float64{a.PiU, a.PiR, a.PiD}
	const tol = 0.02
	for s := 0; s < 3; s++ {
		if math.Abs(byRuns[s]-pi[s]) > tol {
			t.Errorf("state %v: trajectory occupancy %.4f, stationary %.4f", avail.State(s), byRuns[s], pi[s])
		}
		if math.Abs(byRuns[s]-bySlots[s]) > tol {
			t.Errorf("state %v: trajectory occupancy %.4f, per-slot chain %.4f", avail.State(s), byRuns[s], bySlots[s])
		}
	}
}

// TestGeometricSojournMoments pins the closed-form geometric sampler's mean
// and variance against the analytic values 1/(1-stay) and stay/(1-stay)^2,
// for stay values spanning the paper rule's diagonal range — including a
// stay drawn from a Markov3 model so the sojourn sampler and the chain
// analytics (expect interning the same model class) stay coupled.
func TestGeometricSojournMoments(t *testing.T) {
	stays := []float64{0, 0.5, 0.9, 0.99}
	m := avail.RandomMarkov3(rng.New(3))
	stays = append(stays, m.P(avail.Up, avail.Up))
	r := rng.New(99)
	for _, stay := range stays {
		sample := avail.GeometricSojourn(stay)
		const n = 200000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			d := sample(r)
			if d < 1 {
				t.Fatalf("stay %v: sojourn %d < 1", stay, d)
			}
			x := float64(d)
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := 1 / (1 - stay)
		wantVar := stay / ((1 - stay) * (1 - stay))
		if math.Abs(mean-wantMean) > 0.04*wantMean {
			t.Errorf("stay %v: mean %.4f, want %.4f", stay, mean, wantMean)
		}
		if wantVar > 0 && math.Abs(variance-wantVar) > 0.08*wantVar {
			t.Errorf("stay %v: variance %.4f, want %.4f", stay, variance, wantVar)
		}
		if stay == 0 && variance != 0 {
			t.Errorf("stay 0: variance %v, want exactly 0", variance)
		}
	}
}

// TestSemiMarkovGeometricOccupancyMatchesMarkov3 is the satellite's
// stationary-analytics property: a semi-Markov process with geometric
// sojourns at each state's stay probability and the conditional jump matrix
// of a Markov3 model is that Markov chain, so its empirical occupancy must
// match the chain's stationary distribution from internal/expect.
func TestSemiMarkovGeometricOccupancyMatchesMarkov3(t *testing.T) {
	m := avail.RandomMarkov3(rng.New(12))
	var jump [3][3]float64
	var samplers [3]avail.SojournSampler
	for i := 0; i < 3; i++ {
		stay := m.P(avail.State(i), avail.State(i))
		samplers[i] = avail.GeometricSojourn(stay)
		for j := 0; j < 3; j++ {
			if i != j {
				jump[i][j] = m.P(avail.State(i), avail.State(j)) / (1 - stay)
			}
		}
	}
	sm, err := avail.NewSemiMarkov(jump, samplers)
	if err != nil {
		t.Fatal(err)
	}
	a := expect.Of(m)
	const n = 400000
	var c [3]int
	p := sm.NewProcess(rng.New(7), avail.Up)
	for i := 0; i < n; i++ {
		c[p.Next()]++
	}
	pi := [3]float64{a.PiU, a.PiR, a.PiD}
	for s := 0; s < 3; s++ {
		got := float64(c[s]) / n
		if math.Abs(got-pi[s]) > 0.03 {
			t.Errorf("state %v: semi-Markov occupancy %.4f, Markov3 stationary %.4f", avail.State(s), got, pi[s])
		}
	}
}

// TestGeometricSojournNearOne pins the p->1 edge case: stay values a hair
// below 1 must return (clamped, >= 1) draws in constant time instead of
// looping per slot.
func TestGeometricSojournNearOne(t *testing.T) {
	r := rng.New(1)
	for _, stay := range []float64{0.999999, 1 - 1e-12, math.Nextafter(1, 0)} {
		sample := avail.GeometricSojourn(stay)
		for i := 0; i < 100; i++ {
			if d := sample(r); d < 1 {
				t.Fatalf("stay %v: sojourn %d < 1", stay, d)
			}
		}
	}
	for _, bad := range []float64{-0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GeometricSojourn(%v) should panic", bad)
				}
			}()
			avail.GeometricSojourn(bad)
		}()
	}
}

// TestContinuousSojournEdgeCases pins the continuous samplers' floors and
// clamps: tiny-scale Weibull draws (sub-slot durations) must round up to 1,
// and heavy-tailed draws that overflow float-to-int conversion must clamp
// instead of producing undefined values.
func TestContinuousSojournEdgeCases(t *testing.T) {
	r := rng.New(2)
	samplers := map[string]avail.SojournSampler{
		"weibull-tiny":   avail.WeibullSojourn(0.6, 1e-300),
		"weibull-heavy":  avail.WeibullSojourn(0.05, 2.0),
		"pareto-heavy":   avail.ParetoSojourn(1e-9, 0.01),
		"lognorm-wide":   avail.LogNormalSojourn(0, 50),
		"lognorm-narrow": avail.LogNormalSojourn(-700, 0.1),
	}
	for name, sample := range samplers {
		for i := 0; i < 2000; i++ {
			d := sample(r)
			if d < 1 {
				t.Fatalf("%s draw %d: sojourn %d < 1", name, i, d)
			}
		}
	}
	tiny := avail.WeibullSojourn(0.6, 1e-300)
	for i := 0; i < 100; i++ {
		if d := tiny(r); d != 1 {
			t.Fatalf("tiny-scale Weibull draw %d: %d, want 1", i, d)
		}
	}
}
