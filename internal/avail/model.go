// Package avail models temporal processor availability.
//
// The paper's platform model (Section 3.2) describes each processor as being,
// at every discrete time slot, in one of three states: UP (available for
// computation and communication), RECLAIMED (temporarily preempted by its
// owner: work is suspended but preserved), or DOWN (crashed: program, data
// and partial results are lost). This package provides:
//
//   - the State type and availability vectors;
//   - the paper's 3-state Markov model (Section 5), including the random
//     instantiation rule of Section 7;
//   - trace-replay processes, used both for the off-line study (known
//     availability vectors) and for record/replay experiments;
//   - a semi-Markov process with general sojourn-time distributions, the
//     paper's "future work" model, used to challenge the Markov assumption.
package avail

import "fmt"

// State is the availability state of a processor during one time slot.
type State uint8

const (
	// Up means the processor is available for computation and communication.
	Up State = iota
	// Reclaimed means the owner has temporarily reclaimed the processor:
	// ongoing work is suspended and will resume intact when it returns Up.
	Reclaimed
	// Down means the processor has crashed: the application program, all
	// received data and partial results are lost.
	Down
	numStates = 3
)

// NumStates is the size of the availability state space.
const NumStates = int(numStates)

// String returns the single-letter encoding used by the paper: u, r, d.
func (s State) String() string {
	switch s {
	case Up:
		return "u"
	case Reclaimed:
		return "r"
	case Down:
		return "d"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Valid reports whether s is one of the three defined states.
func (s State) Valid() bool { return s < numStates }

// ParseState parses the paper's single-letter encoding.
func ParseState(c byte) (State, error) {
	switch c {
	case 'u', 'U':
		return Up, nil
	case 'r', 'R':
		return Reclaimed, nil
	case 'd', 'D':
		return Down, nil
	default:
		return 0, fmt.Errorf("avail: invalid state letter %q", string(c))
	}
}

// Vector is a processor's availability over consecutive time slots,
// the paper's S_q.
type Vector []State

// ParseVector parses a string such as "uurdu" into a Vector.
func ParseVector(s string) (Vector, error) {
	v := make(Vector, len(s))
	for i := 0; i < len(s); i++ {
		st, err := ParseState(s[i])
		if err != nil {
			return nil, fmt.Errorf("avail: position %d: %w", i, err)
		}
		v[i] = st
	}
	return v, nil
}

// String renders the vector in the paper's letter encoding.
func (v Vector) String() string {
	b := make([]byte, len(v))
	for i, s := range v {
		b[i] = v.letter(s)
	}
	return string(b)
}

func (Vector) letter(s State) byte {
	switch s {
	case Up:
		return 'u'
	case Reclaimed:
		return 'r'
	default:
		return 'd'
	}
}

// CountUp returns the number of Up slots in v[from:to] (clamped to bounds).
func (v Vector) CountUp(from, to int) int {
	if from < 0 {
		from = 0
	}
	if to > len(v) {
		to = len(v)
	}
	n := 0
	for i := from; i < to; i++ {
		if v[i] == Up {
			n++
		}
	}
	return n
}

// Process produces a processor's availability state slot by slot.
// Implementations are single-trajectory and not safe for concurrent use.
type Process interface {
	// Next returns the availability state for the next time slot.
	Next() State
}

// VectorProcess replays a fixed availability vector. Past the end of the
// vector it keeps returning the final state (a dead processor stays dead, an
// up processor stays up), which matches how the off-line instances of
// Section 4 are defined on a finite horizon.
type VectorProcess struct {
	v   Vector
	pos int
}

// NewVectorProcess returns a process replaying v. It panics if v is empty.
func NewVectorProcess(v Vector) *VectorProcess {
	if len(v) == 0 {
		panic("avail: empty vector")
	}
	return &VectorProcess{v: v}
}

// Reset re-points the process at v and rewinds it to slot 0, reusing the
// allocation. It panics if v is empty, matching NewVectorProcess.
func (p *VectorProcess) Reset(v Vector) {
	if len(v) == 0 {
		panic("avail: empty vector")
	}
	p.v, p.pos = v, 0
}

// Next implements Process.
func (p *VectorProcess) Next() State {
	if p.pos < len(p.v) {
		s := p.v[p.pos]
		p.pos++
		return s
	}
	return p.v[len(p.v)-1]
}

// Record runs process p for n slots and returns the resulting vector.
func Record(p Process, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = p.Next()
	}
	return v
}
