package avail

import (
	"math"

	"repro/internal/rng"
)

// Forever is the transition slot NextTransition returns when the current
// state holds for the rest of time (a recorded vector past its end, or a
// Markov state with stay probability 1).
const Forever = math.MaxInt

// maxSojourn bounds a single sampled sojourn so float-to-int conversions
// of huge or infinite draws stay defined. 1<<60 slots is far beyond any
// run horizon, so the clamp is observationally equivalent to Forever.
const maxSojourn = 1 << 60

// Trajectory is the sojourn-level view of an availability Process: instead
// of emitting one state per slot, it emits runs of constant state.
//
// The first NextTransition call returns the state of slot 0 together with
// atSlot 0. Each subsequent call returns the next distinct state and the
// absolute slot at which it begins; successive atSlot values are strictly
// increasing. When the current state holds forever, the call returns
// (state, Forever), and every later call repeats that answer.
//
// A process must be driven through exactly one of Next or NextTransition
// for its whole lifetime: the two views share the underlying RNG stream
// and position, so interleaving them produces neither trajectory.
type Trajectory interface {
	Process
	NextTransition() (State, int)
}

// geometricSojournSlots draws L >= 1 with P(L = k) = stay^(k-1) * (1-stay)
// by inversion: L = 1 + floor(ln(1-u)/ln(stay)). One uniform draw per
// sojourn, no rejection loop, so stay arbitrarily close to 1 stays O(1).
// stay >= 1 means the state is absorbing; the caller maps that to Forever.
func geometricSojournSlots(r *rng.PCG, stay float64) int {
	if stay <= 0 {
		return 1
	}
	return geometricSojournSlotsInv(r, 1/math.Log(stay))
}

// geometricSojournSlotsInv is geometricSojournSlots with 1/ln(stay)
// precomputed (negative for stay in (0,1)), so hot callers pay one log per
// draw instead of two.
func geometricSojournSlotsInv(r *rng.PCG, invLogStay float64) int {
	u := r.Float64() // [0,1), so 1-u is in (0,1] and the log is finite
	f := math.Log(1-u) * invLogStay
	if math.IsNaN(f) || f >= maxSojourn-1 {
		return maxSojourn
	}
	return 1 + int(f)
}

// clampAddSlot returns at+length saturating at Forever.
func clampAddSlot(at, length int) int {
	if at >= Forever-length {
		return Forever
	}
	return at + length
}

// NextTransition implements Trajectory by run-length scanning the vector.
// Past the end it reports the final state holding Forever, matching Next's
// dead-stays-dead semantics.
func (p *VectorProcess) NextTransition() (State, int) {
	if p.pos >= len(p.v) {
		return p.v[len(p.v)-1], Forever
	}
	at := p.pos
	s := p.v[at]
	for p.pos < len(p.v) && p.v[p.pos] == s {
		p.pos++
	}
	return s, at
}

// NextTransition implements Trajectory by sampling geometric sojourns in
// closed form and jumping with the conditional distribution
// P(s,j)/(1-P(s,s)) over j != s. The run-start slots are distributed
// exactly as the per-slot chain of Next, but the RNG is consumed per
// transition (one sojourn draw plus one jump draw) rather than per slot.
func (p *Markov3Process) NextTransition() (State, int) {
	if !p.started {
		p.started = true
		p.at = p.sojournEnd(0)
		return p.state, 0
	}
	at := p.at
	if at == Forever {
		return p.state, Forever
	}
	p.state = p.jumpConditional()
	p.at = p.sojournEnd(at)
	return p.state, at
}

// sojournEnd samples how long the current state holds starting at slot
// from and returns the absolute slot of the next transition.
func (p *Markov3Process) sojournEnd(from int) int {
	stay := p.model.p[p.state][p.state]
	if stay >= 1 {
		return Forever
	}
	if stay <= 0 {
		return clampAddSlot(from, 1)
	}
	return clampAddSlot(from, geometricSojournSlotsInv(p.r, p.model.invLogStay[p.state]))
}

// jumpConditional draws the next state given that it differs from the
// current one.
func (p *Markov3Process) jumpConditional() State {
	row := &p.model.p[p.state]
	x := p.r.Float64() * (1 - row[p.state])
	last := p.state
	for j := State(0); j < numStates; j++ {
		if j == p.state {
			continue
		}
		x -= row[j]
		if x < 0 {
			return j
		}
		last = j
	}
	// Rounding dribble: the off-diagonal row mass is 1-stay up to float
	// error, so fall back to the last non-self state.
	return last
}

// NextTransition implements Trajectory. The sojourn drawn at construction
// becomes the first run's length, so a trajectory-driven process consumes
// its RNG in the same order as a slot-driven one: sojourns and jumps
// alternate starting from the constructor's initial draw.
func (p *SemiMarkovProcess) NextTransition() (State, int) {
	if !p.trajStarted {
		p.trajStarted = true
		length := p.remaining
		if length < 1 {
			length = 1
		}
		p.trajAt = clampAddSlot(0, length)
		return p.state, 0
	}
	at := p.trajAt
	if at == Forever {
		return p.state, Forever
	}
	x := p.r.Float64()
	row := p.model.jump[p.state]
	next := State(2)
	for j := 0; j < 3; j++ {
		x -= row[j]
		if x < 0 {
			next = State(j)
			break
		}
	}
	p.state = next
	length := p.model.sojourn[next](p.r)
	if length < 1 {
		length = 1
	}
	p.trajAt = clampAddSlot(at, length)
	return p.state, at
}
