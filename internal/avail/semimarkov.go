package avail

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// SemiMarkov is a discretized semi-Markov availability process: the state
// sequence follows an embedded Markov chain over {Up, Reclaimed, Down}, but
// the time spent in each visit (the sojourn) is drawn from an arbitrary
// per-state duration distribution rather than being geometric.
//
// This is the model class the paper's conclusion points to ("non-memoryless
// semi-Markov processes", citing Ren et al.), and the documented empirical
// finding that desktop-grid availability intervals are not exponential. We
// use it to stress the Markov-based heuristics on availability they were not
// derived for.
type SemiMarkov struct {
	// Jump[i][j] is the probability that a completed sojourn in state i is
	// followed by state j. Jump[i][i] must be 0 (self-loops are expressed by
	// the sojourn duration instead).
	jump [3][3]float64
	// Sojourn[i] samples the number of slots spent in state i per visit
	// (at least 1).
	sojourn [3]SojournSampler
}

// SojournSampler draws a sojourn duration in slots (>= 1).
type SojournSampler func(r *rng.PCG) int

// NewSemiMarkov validates and builds a semi-Markov model. Each row of jump
// must sum to 1 with a zero diagonal; every state needs a sampler.
func NewSemiMarkov(jump [3][3]float64, sojourn [3]SojournSampler) (*SemiMarkov, error) {
	for i := 0; i < 3; i++ {
		if jump[i][i] != 0 {
			return nil, fmt.Errorf("avail: semi-Markov jump matrix has self-loop at state %d", i)
		}
		var sum float64
		for j := 0; j < 3; j++ {
			if jump[i][j] < 0 || jump[i][j] > 1 {
				return nil, fmt.Errorf("avail: jump[%d][%d]=%v out of [0,1]", i, j, jump[i][j])
			}
			sum += jump[i][j]
		}
		if diff := sum - 1; diff > 1e-9 || diff < -1e-9 {
			return nil, fmt.Errorf("avail: jump row %d sums to %v", i, sum)
		}
		if sojourn[i] == nil {
			return nil, fmt.Errorf("avail: missing sojourn sampler for state %d", i)
		}
	}
	return &SemiMarkov{jump: jump, sojourn: sojourn}, nil
}

// WeibullSojourn returns a sampler drawing Weibull(shape, scale) durations,
// rounded up to whole slots. Shape < 1 gives the heavy-tailed behaviour
// reported for production desktop grids.
func WeibullSojourn(shape, scale float64) SojournSampler {
	return func(r *rng.PCG) int {
		return ceilAtLeast1(r.Weibull(shape, scale))
	}
}

// ParetoSojourn returns a sampler drawing Pareto(xm, alpha) durations.
func ParetoSojourn(xm, alpha float64) SojournSampler {
	return func(r *rng.PCG) int {
		return ceilAtLeast1(r.Pareto(xm, alpha))
	}
}

// LogNormalSojourn returns a sampler drawing LogNormal(mu, sigma) durations.
func LogNormalSojourn(mu, sigma float64) SojournSampler {
	return func(r *rng.PCG) int {
		return ceilAtLeast1(r.LogNormal(mu, sigma))
	}
}

// GeometricSojourn returns a sampler with P(T = k) = stay^(k-1) * (1-stay):
// with this choice the semi-Markov process is an ordinary Markov chain,
// which tests exploit as a consistency check. The draw is a single
// closed-form inversion, so stay arbitrarily close to 1 costs one uniform
// (no rejection loop); stay = 0 always returns 1.
func GeometricSojourn(stay float64) SojournSampler {
	if stay < 0 || stay >= 1 {
		panic("avail: GeometricSojourn needs stay in [0,1)")
	}
	if stay == 0 {
		// Degenerate chain: every sojourn is exactly one slot, no RNG draw
		// (matching geometricSojournSlots' stay <= 0 path).
		return func(*rng.PCG) int { return 1 }
	}
	invLogStay := 1 / math.Log(stay)
	return func(r *rng.PCG) int {
		return geometricSojournSlotsInv(r, invLogStay)
	}
}

// ceilAtLeast1 rounds a sampled duration up to whole slots with a floor of
// one slot. NaN and sub-slot draws (tiny Weibull scales) map to 1;
// overflowing draws clamp to maxSojourn so the float-to-int conversion
// stays defined.
func ceilAtLeast1(x float64) int {
	if !(x > 1) { // NaN or x <= 1
		return 1
	}
	if x >= maxSojourn {
		return maxSojourn
	}
	n := int(x)
	if float64(n) < x {
		n++
	}
	return n
}

// NewProcess starts a trajectory in the given state with a fresh sojourn.
func (m *SemiMarkov) NewProcess(r *rng.PCG, initial State) *SemiMarkovProcess {
	if !initial.Valid() {
		panic("avail: invalid initial state")
	}
	p := &SemiMarkovProcess{model: m, state: initial, r: r}
	p.remaining = m.sojourn[initial](r)
	return p
}

// SemiMarkovProcess is one sampled trajectory of a SemiMarkov model.
type SemiMarkovProcess struct {
	model     *SemiMarkov
	state     State
	remaining int // slots left in the current sojourn, including none consumed
	// trajStarted/trajAt track the run-level position; maintained only when
	// the process is driven through NextTransition (see Trajectory).
	trajStarted bool
	trajAt      int
	r           *rng.PCG
}

// Next implements Process.
func (p *SemiMarkovProcess) Next() State {
	if p.remaining <= 0 {
		// Jump to the next state and draw its sojourn.
		x := p.r.Float64()
		row := p.model.jump[p.state]
		next := State(2)
		for j := 0; j < 3; j++ {
			x -= row[j]
			if x < 0 {
				next = State(j)
				break
			}
		}
		p.state = next
		p.remaining = p.model.sojourn[next](p.r)
	}
	p.remaining--
	return p.state
}
