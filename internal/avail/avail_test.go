package avail

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestStateString(t *testing.T) {
	if Up.String() != "u" || Reclaimed.String() != "r" || Down.String() != "d" {
		t.Fatal("state letters wrong")
	}
	if State(9).String() != "State(9)" {
		t.Fatalf("invalid state rendered %q", State(9).String())
	}
	if !Up.Valid() || !Down.Valid() || State(3).Valid() {
		t.Fatal("Valid() wrong")
	}
}

func TestParseVectorRoundTrip(t *testing.T) {
	v, err := ParseVector("uurdudr")
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "uurdudr" {
		t.Fatalf("round trip gave %q", v.String())
	}
	if _, err := ParseVector("uxd"); err == nil {
		t.Fatal("expected error on invalid letter")
	}
	if got := v.CountUp(0, len(v)); got != 3 {
		t.Fatalf("CountUp = %d, want 3", got)
	}
	if got := v.CountUp(-5, 100); got != 3 {
		t.Fatalf("CountUp with clamped range = %d, want 3", got)
	}
	if got := v.CountUp(2, 4); got != 0 {
		t.Fatalf("CountUp(2,4) = %d, want 0", got)
	}
}

func TestVectorProcessReplaysAndClamps(t *testing.T) {
	v, _ := ParseVector("urd")
	p := NewVectorProcess(v)
	want := []State{Up, Reclaimed, Down, Down, Down}
	for i, w := range want {
		if got := p.Next(); got != w {
			t.Fatalf("slot %d: got %v, want %v", i, got, w)
		}
	}
}

func TestVectorProcessEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty vector")
		}
	}()
	NewVectorProcess(nil)
}

func TestRecord(t *testing.T) {
	v, _ := ParseVector("ur")
	got := Record(NewVectorProcess(v), 4)
	if got.String() != "urrr" {
		t.Fatalf("Record = %q", got.String())
	}
}

func TestNewMarkov3Validation(t *testing.T) {
	bad := [3][3]float64{{0.5, 0.5, 0.5}, {0.3, 0.3, 0.4}, {0.3, 0.3, 0.4}}
	if _, err := NewMarkov3(bad); err == nil {
		t.Fatal("expected error for bad row sum")
	}
}

func TestMarkov3StationaryUniformSymmetric(t *testing.T) {
	// A symmetric chain has the uniform stationary distribution.
	p := [3][3]float64{
		{0.9, 0.05, 0.05},
		{0.05, 0.9, 0.05},
		{0.05, 0.05, 0.9},
	}
	m := MustMarkov3(p)
	u, r, d := m.Stationary()
	for _, v := range []float64{u, r, d} {
		if math.Abs(v-1.0/3) > 1e-9 {
			t.Fatalf("stationary = (%v,%v,%v), want uniform", u, r, d)
		}
	}
}

func TestRandomMarkov3RespectsPaperRule(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 200; trial++ {
		m := RandomMarkov3(r)
		p := m.Matrix()
		for i := 0; i < 3; i++ {
			if p[i][i] < 0.90 || p[i][i] >= 0.99 {
				t.Fatalf("diagonal P[%d][%d]=%v outside [0.90,0.99)", i, i, p[i][i])
			}
			rest := (1 - p[i][i]) / 2
			for j := 0; j < 3; j++ {
				if i == j {
					continue
				}
				if math.Abs(p[i][j]-rest) > 1e-12 {
					t.Fatalf("off-diagonal P[%d][%d]=%v, want %v", i, j, p[i][j], rest)
				}
			}
		}
	}
}

func TestMarkov3ProcessFirstSlotIsInitial(t *testing.T) {
	m := RandomMarkov3(rng.New(32))
	p := m.NewProcess(rng.New(33), Reclaimed)
	if got := p.Next(); got != Reclaimed {
		t.Fatalf("first slot = %v, want Reclaimed", got)
	}
}

func TestMarkov3ProcessEmpiricalOccupancy(t *testing.T) {
	// Long-run state frequencies must match the stationary distribution.
	m := MustMarkov3([3][3]float64{
		{0.95, 0.03, 0.02},
		{0.04, 0.90, 0.06},
		{0.05, 0.05, 0.90},
	})
	p := m.NewProcess(rng.New(34), Up)
	var counts [3]int
	const n = 400000
	for i := 0; i < n; i++ {
		counts[p.Next()]++
	}
	piU, piR, piD := m.Stationary()
	want := []float64{piU, piR, piD}
	for s, w := range want {
		got := float64(counts[s]) / n
		if math.Abs(got-w) > 0.01 {
			t.Fatalf("state %d frequency %v, want %v", s, got, w)
		}
	}
}

func TestMarkov3ProcessDeterministic(t *testing.T) {
	m := RandomMarkov3(rng.New(35))
	a := Record(m.NewProcess(rng.New(36), Up), 500)
	b := Record(m.NewProcess(rng.New(36), Up), 500)
	if a.String() != b.String() {
		t.Fatal("same seed produced different trajectories")
	}
}

func TestSampleStationaryFrequencies(t *testing.T) {
	m := MustMarkov3([3][3]float64{
		{0.95, 0.03, 0.02},
		{0.04, 0.90, 0.06},
		{0.05, 0.05, 0.90},
	})
	r := rng.New(37)
	var counts [3]int
	const n = 200000
	for i := 0; i < n; i++ {
		counts[m.SampleStationary(r)]++
	}
	piU, piR, piD := m.Stationary()
	for s, w := range []float64{piU, piR, piD} {
		got := float64(counts[s]) / n
		if math.Abs(got-w) > 0.01 {
			t.Fatalf("stationary sample state %d freq %v, want %v", s, got, w)
		}
	}
}

func TestSemiMarkovValidation(t *testing.T) {
	samp := GeometricSojourn(0.5)
	ok := [3][3]float64{{0, 0.5, 0.5}, {1, 0, 0}, {1, 0, 0}}
	if _, err := NewSemiMarkov(ok, [3]SojournSampler{samp, samp, samp}); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	selfLoop := [3][3]float64{{0.1, 0.4, 0.5}, {1, 0, 0}, {1, 0, 0}}
	if _, err := NewSemiMarkov(selfLoop, [3]SojournSampler{samp, samp, samp}); err == nil {
		t.Fatal("self-loop accepted")
	}
	badSum := [3][3]float64{{0, 0.5, 0.4}, {1, 0, 0}, {1, 0, 0}}
	if _, err := NewSemiMarkov(badSum, [3]SojournSampler{samp, samp, samp}); err == nil {
		t.Fatal("bad row sum accepted")
	}
	if _, err := NewSemiMarkov(ok, [3]SojournSampler{samp, nil, samp}); err == nil {
		t.Fatal("missing sampler accepted")
	}
}

func TestSemiMarkovGeometricMatchesMarkov(t *testing.T) {
	// With geometric sojourns a semi-Markov process is a Markov chain; the
	// empirical occupancy must then match the equivalent chain's stationary
	// distribution.
	stayU, stayR, stayD := 0.95, 0.90, 0.92
	jump := [3][3]float64{
		{0, 0.5, 0.5},
		{0.7, 0, 0.3},
		{0.6, 0.4, 0},
	}
	sm, err := NewSemiMarkov(jump, [3]SojournSampler{
		GeometricSojourn(stayU), GeometricSojourn(stayR), GeometricSojourn(stayD),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Equivalent Markov chain: P(i,i)=stay_i, P(i,j)=(1-stay_i)*jump[i][j].
	m := MustMarkov3([3][3]float64{
		{stayU, (1 - stayU) * 0.5, (1 - stayU) * 0.5},
		{(1 - stayR) * 0.7, stayR, (1 - stayR) * 0.3},
		{(1 - stayD) * 0.6, (1 - stayD) * 0.4, stayD},
	})
	p := sm.NewProcess(rng.New(38), Up)
	var counts [3]int
	const n = 600000
	for i := 0; i < n; i++ {
		counts[p.Next()]++
	}
	piU, piR, piD := m.Stationary()
	for s, w := range []float64{piU, piR, piD} {
		got := float64(counts[s]) / n
		if math.Abs(got-w) > 0.01 {
			t.Fatalf("state %d freq %v, want %v", s, got, w)
		}
	}
}

func TestSemiMarkovSojournLengths(t *testing.T) {
	// A deterministic sampler must produce runs of exactly that length.
	fixed := func(n int) SojournSampler { return func(*rng.PCG) int { return n } }
	jump := [3][3]float64{{0, 1, 0}, {1, 0, 0}, {1, 0, 0}}
	sm, err := NewSemiMarkov(jump, [3]SojournSampler{fixed(3), fixed(2), fixed(1)})
	if err != nil {
		t.Fatal(err)
	}
	p := sm.NewProcess(rng.New(39), Up)
	got := Record(p, 10)
	if got.String() != "uuurruuurr" {
		t.Fatalf("trajectory %q, want uuurruuurr", got.String())
	}
}

func TestWeibullSojournAtLeastOne(t *testing.T) {
	r := rng.New(40)
	s := WeibullSojourn(0.5, 0.1) // tiny scale: many sub-slot draws
	for i := 0; i < 10000; i++ {
		if d := s(r); d < 1 {
			t.Fatalf("sojourn %d < 1", d)
		}
	}
}

func TestQuickRandomModelsAreErgodic(t *testing.T) {
	// Property: every paper-rule random model has a strictly positive
	// stationary distribution (all states recurrent and reachable).
	f := func(seed uint64) bool {
		m := RandomMarkov3(rng.New(seed))
		u, rr, d := m.Stationary()
		return u > 0 && rr > 0 && d > 0 && math.Abs(u+rr+d-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarkov3Next(b *testing.B) {
	m := RandomMarkov3(rng.New(41))
	p := m.NewProcess(rng.New(42), Up)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Next()
	}
}

func TestMarkov3ProcessResetMatchesNew(t *testing.T) {
	m := MustMarkov3([3][3]float64{
		{0.9, 0.05, 0.05},
		{0.1, 0.85, 0.05},
		{0.2, 0.1, 0.7},
	})
	fresh := m.NewProcess(rng.New(5), Reclaimed)
	var pooled Markov3Process
	pooled.Reset(m, rng.New(5), Reclaimed)
	for i := 0; i < 200; i++ {
		if a, b := fresh.Next(), pooled.Next(); a != b {
			t.Fatalf("slot %d: fresh %v vs reset %v", i, a, b)
		}
	}
	// Reset after use rewinds to a brand-new trajectory.
	pooled.Reset(m, rng.New(5), Reclaimed)
	if got := pooled.Next(); got != Reclaimed {
		t.Fatalf("reset process started in %v, want initial Reclaimed", got)
	}
}

func TestVectorProcessReset(t *testing.T) {
	v1, _ := ParseVector("urd")
	v2, _ := ParseVector("du")
	p := NewVectorProcess(v1)
	p.Next()
	p.Reset(v2)
	if a, b := p.Next(), p.Next(); a != Down || b != Up {
		t.Fatalf("reset replay = %v,%v, want d,u", a, b)
	}
	// Past the end it holds the last state, as a fresh process would.
	if got := p.Next(); got != Up {
		t.Fatalf("post-end state %v, want u", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reset accepted an empty vector")
		}
	}()
	p.Reset(nil)
}
