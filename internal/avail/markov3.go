package avail

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/markov"
	"repro/internal/rng"
)

// Markov3 is the paper's 3-state Markov availability model (Section 5):
// a recurrent aperiodic chain over {Up, Reclaimed, Down} defined by the nine
// probabilities P(i,j). It carries its stationary distribution, which several
// heuristics (Random3, Random4, UD) consume.
type Markov3 struct {
	chain *markov.Chain
	pi    [3]float64
	// p mirrors the validated matrix for direct indexing; invLogStay[s] is
	// 1/ln(P(s,s)) (0 for absorbing or zero-stay states), precomputed so the
	// closed-form geometric sojourn draw of NextTransition costs a single
	// log per transition.
	p          [3][3]float64
	invLogStay [3]float64
	// memo interns derived per-model quantities (internal/expect.Analytics).
	// The model is immutable after construction, so the derived values are
	// too; keeping the slot opaque here preserves the expect -> avail
	// dependency direction.
	memo atomic.Pointer[any]
}

// Memo returns the interned derived-analytics value, or nil when none has
// been stored yet. The content is owned by internal/expect.
func (m *Markov3) Memo() any {
	if p := m.memo.Load(); p != nil {
		return *p
	}
	return nil
}

// SetMemo interns a derived-analytics value. Concurrent stores of equal
// values are harmless: the model is immutable, so every computed value is
// identical and the last store wins.
func (m *Markov3) SetMemo(v any) { m.memo.Store(&v) }

// NewMarkov3 validates the 3x3 transition matrix (indexed by State: Up=0,
// Reclaimed=1, Down=2) and precomputes the stationary distribution.
func NewMarkov3(p [3][3]float64) (*Markov3, error) {
	rows := [][]float64{
		{p[0][0], p[0][1], p[0][2]},
		{p[1][0], p[1][1], p[1][2]},
		{p[2][0], p[2][1], p[2][2]},
	}
	c, err := markov.NewChain(rows)
	if err != nil {
		return nil, fmt.Errorf("avail: %w", err)
	}
	pi, err := c.Stationary()
	if err != nil {
		return nil, fmt.Errorf("avail: %w", err)
	}
	m := &Markov3{chain: c, p: p}
	copy(m.pi[:], pi)
	for s := 0; s < 3; s++ {
		if stay := p[s][s]; stay > 0 && stay < 1 {
			m.invLogStay[s] = 1 / math.Log(stay)
		}
	}
	return m, nil
}

// MustMarkov3 is NewMarkov3 that panics on error; for tests and examples.
func MustMarkov3(p [3][3]float64) *Markov3 {
	m, err := NewMarkov3(p)
	if err != nil {
		panic(err)
	}
	return m
}

// RandomMarkov3 draws a model using the experimental rule of Section 7:
// each diagonal entry P(x,x) is uniform in [0.90, 0.99] and the two
// off-diagonal entries of the row split the remainder evenly,
// P(x,y) = (1 - P(x,x)) / 2.
func RandomMarkov3(r *rng.PCG) *Markov3 {
	var p [3][3]float64
	for i := 0; i < 3; i++ {
		stay := r.UniformRange(0.90, 0.99)
		rest := (1 - stay) / 2
		for j := 0; j < 3; j++ {
			if i == j {
				p[i][j] = stay
			} else {
				p[i][j] = rest
			}
		}
	}
	return MustMarkov3(p)
}

// P returns the one-step transition probability from state i to state j.
func (m *Markov3) P(i, j State) float64 { return m.p[i][j] }

// Stationary returns the limit distribution (piU, piR, piD).
func (m *Markov3) Stationary() (piU, piR, piD float64) {
	return m.pi[0], m.pi[1], m.pi[2]
}

// Chain exposes the underlying generic chain (for analytics and tests).
func (m *Markov3) Chain() *markov.Chain { return m.chain }

// Matrix returns the 3x3 transition matrix.
func (m *Markov3) Matrix() [3][3]float64 {
	var p [3][3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			p[i][j] = m.chain.P(i, j)
		}
	}
	return p
}

// NewProcess returns a trajectory of this model starting in the given state,
// driven by r. The first Next call returns initial itself (the state of
// slot 0); subsequent calls step the chain. This matches VectorProcess,
// whose first Next returns the first vector entry.
func (m *Markov3) NewProcess(r *rng.PCG, initial State) *Markov3Process {
	if !initial.Valid() {
		panic("avail: invalid initial state")
	}
	return &Markov3Process{model: m, state: initial, r: r}
}

// SampleStationary draws a state from the model's limit distribution.
func (m *Markov3) SampleStationary(r *rng.PCG) State {
	x := r.Float64()
	if x < m.pi[0] {
		return Up
	}
	if x < m.pi[0]+m.pi[1] {
		return Reclaimed
	}
	return Down
}

// Markov3Process is a single sampled trajectory of a Markov3 model.
type Markov3Process struct {
	model   *Markov3
	state   State
	started bool
	// at is the absolute slot of the next transition; maintained only when
	// the process is driven through NextTransition (see Trajectory).
	at int
	r  *rng.PCG
}

// Reset re-points the process at model, driven by r from the given initial
// state, reusing the allocation. It leaves the process exactly as
// model.NewProcess(r, initial) would construct it; pooled trial scratch
// (workload.TrialPool) resets recycled processes instead of allocating.
func (p *Markov3Process) Reset(model *Markov3, r *rng.PCG, initial State) {
	if !initial.Valid() {
		panic("avail: invalid initial state")
	}
	*p = Markov3Process{model: model, state: initial, r: r}
}

// Next implements Process: the first call yields the initial state (slot 0),
// each later call advances the chain by one transition.
func (p *Markov3Process) Next() State {
	if !p.started {
		p.started = true
		return p.state
	}
	p.state = State(p.model.chain.Step(int(p.state), p.r.Float64()))
	return p.state
}

// State returns the current state without advancing.
func (p *Markov3Process) State() State { return p.state }
