package markov

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewChainValidation(t *testing.T) {
	cases := []struct {
		name string
		p    [][]float64
		ok   bool
	}{
		{"empty", nil, false},
		{"non-square", [][]float64{{1, 0}}, false},
		{"row-sum", [][]float64{{0.5, 0.4}, {0.5, 0.5}}, false},
		{"negative", [][]float64{{-0.1, 1.1}, {0.5, 0.5}}, false},
		{"nan", [][]float64{{math.NaN(), 1}, {0.5, 0.5}}, false},
		{"valid", [][]float64{{0.9, 0.1}, {0.2, 0.8}}, true},
		{"identity", [][]float64{{1, 0}, {0, 1}}, true},
	}
	for _, tc := range cases {
		_, err := NewChain(tc.p)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestChainIsDeepCopied(t *testing.T) {
	p := [][]float64{{0.9, 0.1}, {0.2, 0.8}}
	c := MustChain(p)
	p[0][0] = 0
	if c.P(0, 0) != 0.9 {
		t.Fatal("chain aliased the caller's matrix")
	}
	m := c.Matrix()
	m[0][0] = 0
	if c.P(0, 0) != 0.9 {
		t.Fatal("Matrix() aliased internal state")
	}
}

func TestStationaryTwoState(t *testing.T) {
	// Birth-death 2-state chain: pi = (b/(a+b), a/(a+b)) for P01=a, P10=b.
	c := MustChain([][]float64{{0.7, 0.3}, {0.6, 0.4}})
	pi, err := c.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	want0 := 0.6 / 0.9
	if !almostEqual(pi[0], want0, 1e-12) || !almostEqual(pi[1], 1-want0, 1e-12) {
		t.Fatalf("pi = %v, want (%v, %v)", pi, want0, 1-want0)
	}
}

func TestStationaryMatchesPowerIteration(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 100; trial++ {
		c := randomChain(r, 2+r.Intn(5))
		pi, err := c.Stationary()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pp, err := c.StationaryPower(200000, 1e-13)
		if err != nil {
			t.Fatalf("trial %d: power: %v", trial, err)
		}
		for i := range pi {
			if !almostEqual(pi[i], pp[i], 1e-6) {
				t.Fatalf("trial %d: solver %v vs power %v", trial, pi, pp)
			}
		}
	}
}

func TestStationaryFixedPointProperty(t *testing.T) {
	// Property: pi P = pi and sum(pi) = 1 for random ergodic chains.
	r := rng.New(22)
	f := func(seedDelta uint32) bool {
		rr := rng.New(uint64(seedDelta) + r.Uint64()%1000)
		c := randomChain(rr, 2+rr.Intn(6))
		pi, err := c.Stationary()
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range pi {
			if v < 0 {
				return false
			}
			sum += v
		}
		if !almostEqual(sum, 1, 1e-9) {
			return false
		}
		for j := 0; j < c.N(); j++ {
			var dot float64
			for i := 0; i < c.N(); i++ {
				dot += pi[i] * c.P(i, j)
			}
			if !almostEqual(dot, pi[j], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStepDistribution(t *testing.T) {
	c := MustChain([][]float64{{0.5, 0.3, 0.2}, {0.1, 0.8, 0.1}, {0.25, 0.25, 0.5}})
	r := rng.New(23)
	const n = 300000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[c.Step(0, r.Float64())]++
	}
	want := []float64{0.5, 0.3, 0.2}
	for j, w := range want {
		got := float64(counts[j]) / n
		if math.Abs(got-w) > 0.005 {
			t.Fatalf("Step from 0 hit state %d with freq %v, want %v", j, got, w)
		}
	}
}

func TestStepEdgeUniforms(t *testing.T) {
	c := MustChain([][]float64{{1, 0}, {0, 1}})
	if c.Step(0, 0) != 0 || c.Step(0, 0.999999999) != 0 {
		t.Fatal("absorbing state 0 left")
	}
	if c.Step(1, 0) != 1 {
		t.Fatal("absorbing state 1 left")
	}
	// A row with zero first entry must never return state 0.
	c2 := MustChain([][]float64{{0, 1}, {0.5, 0.5}})
	if c2.Step(0, 0) != 1 {
		t.Fatal("Step returned zero-probability state")
	}
}

func TestMatrixPower(t *testing.T) {
	c := MustChain([][]float64{{0.9, 0.1}, {0.4, 0.6}})
	p0 := c.MatrixPower(0)
	if p0[0][0] != 1 || p0[0][1] != 0 || p0[1][0] != 0 || p0[1][1] != 1 {
		t.Fatalf("P^0 = %v, want identity", p0)
	}
	p1 := c.MatrixPower(1)
	if !almostEqual(p1[0][0], 0.9, 1e-15) {
		t.Fatalf("P^1 = %v", p1)
	}
	// P^2 by hand: [0.85 0.15; 0.6 0.4]
	p2 := c.MatrixPower(2)
	if !almostEqual(p2[0][0], 0.85, 1e-12) || !almostEqual(p2[1][0], 0.60, 1e-12) {
		t.Fatalf("P^2 = %v", p2)
	}
	// Large powers converge to the stationary distribution on every row.
	pi, _ := c.Stationary()
	pk := c.MatrixPower(200)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEqual(pk[i][j], pi[j], 1e-9) {
				t.Fatalf("P^200 row %d = %v, want %v", i, pk[i], pi)
			}
		}
	}
}

func TestMatrixPowerRowsRemainStochastic(t *testing.T) {
	r := rng.New(24)
	for trial := 0; trial < 50; trial++ {
		c := randomChain(r, 2+r.Intn(4))
		for _, k := range []int{1, 3, 7, 30} {
			pk := c.MatrixPower(k)
			for i, row := range pk {
				var sum float64
				for _, v := range row {
					if v < -1e-12 {
						t.Fatalf("negative entry in P^%d row %d: %v", k, i, row)
					}
					sum += v
				}
				if !almostEqual(sum, 1, 1e-9) {
					t.Fatalf("P^%d row %d sums to %v", k, i, sum)
				}
			}
		}
	}
}

func TestExpectedHittingTimeTwoState(t *testing.T) {
	// From state 0, P(hit 1 each step) = a. Expected time = 1/a.
	a := 0.25
	c := MustChain([][]float64{{1 - a, a}, {0, 1}})
	h, err := c.ExpectedHittingTime(map[int]bool{1: true})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(h[0], 1/a, 1e-9) || h[1] != 0 {
		t.Fatalf("h = %v, want (4, 0)", h)
	}
}

func TestExpectedHittingTimeUnreachable(t *testing.T) {
	// State 0 can never reach state 1.
	c := MustChain([][]float64{{1, 0}, {0.5, 0.5}})
	if _, err := c.ExpectedHittingTime(map[int]bool{1: true}); err == nil {
		t.Fatal("expected error for unreachable target")
	}
}

func TestExpectedHittingTimeMatchesSimulation(t *testing.T) {
	r := rng.New(25)
	c := randomChain(r, 4)
	h, err := c.ExpectedHittingTime(map[int]bool{3: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60000
	var sum float64
	for i := 0; i < n; i++ {
		state := 0
		steps := 0
		for state != 3 {
			state = c.Step(state, r.Float64())
			steps++
			if steps > 1_000_000 {
				t.Fatal("runaway walk")
			}
		}
		sum += float64(steps)
	}
	got := sum / n
	if math.Abs(got-h[0])/h[0] > 0.05 {
		t.Fatalf("simulated hitting time %v vs analytic %v", got, h[0])
	}
}

// randomChain builds a random ergodic chain: every entry gets positive mass.
func randomChain(r *rng.PCG, n int) *Chain {
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
		var sum float64
		for j := range p[i] {
			v := 0.05 + r.Float64()
			p[i][j] = v
			sum += v
		}
		for j := range p[i] {
			p[i][j] /= sum
		}
	}
	return MustChain(p)
}

func BenchmarkStationary3(b *testing.B) {
	c := MustChain([][]float64{
		{0.95, 0.025, 0.025},
		{0.03, 0.94, 0.03},
		{0.05, 0.05, 0.90},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Stationary(); err != nil {
			b.Fatal(err)
		}
	}
}
