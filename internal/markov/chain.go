// Package markov implements finite discrete-time Markov chains: transition
// matrices with validation, stationary distributions, sampling, and
// hitting-time utilities.
//
// The paper models each processor's availability as a 3-state recurrent
// aperiodic chain over {UP, RECLAIMED, DOWN}. This package is written for
// arbitrary finite state spaces so that the analytical machinery (stationary
// distributions, absorption probabilities, expected hitting times) can be
// validated against the paper's closed forms on the 3-state special case and
// reused for extensions.
package markov

import (
	"errors"
	"fmt"
	"math"
)

// probTolerance is the slack allowed when checking that probabilities are in
// [0,1] and that rows sum to one. Scenario generators build rows from
// float64 arithmetic, so exact equality is too strict.
const probTolerance = 1e-9

// Chain is a finite discrete-time Markov chain. P[i][j] is the probability
// of moving from state i to state j in one step.
type Chain struct {
	p [][]float64
}

// NewChain validates the transition matrix and returns a chain.
// The matrix must be square, non-empty, with entries in [0,1] and rows
// summing to 1 (within a small tolerance).
func NewChain(p [][]float64) (*Chain, error) {
	n := len(p)
	if n == 0 {
		return nil, errors.New("markov: empty transition matrix")
	}
	cp := make([][]float64, n)
	for i, row := range p {
		if len(row) != n {
			return nil, fmt.Errorf("markov: row %d has %d entries, want %d", i, len(row), n)
		}
		var sum float64
		cp[i] = make([]float64, n)
		for j, v := range row {
			if v < -probTolerance || v > 1+probTolerance || math.IsNaN(v) {
				return nil, fmt.Errorf("markov: P[%d][%d]=%v out of [0,1]", i, j, v)
			}
			cp[i][j] = math.Min(1, math.Max(0, v))
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return nil, fmt.Errorf("markov: row %d sums to %v, want 1", i, sum)
		}
	}
	return &Chain{p: cp}, nil
}

// MustChain is NewChain that panics on error; for literals in tests and
// examples.
func MustChain(p [][]float64) *Chain {
	c, err := NewChain(p)
	if err != nil {
		panic(err)
	}
	return c
}

// N reports the number of states.
func (c *Chain) N() int { return len(c.p) }

// P returns the one-step transition probability from state i to state j.
func (c *Chain) P(i, j int) float64 { return c.p[i][j] }

// Row returns a copy of the outgoing distribution of state i.
func (c *Chain) Row(i int) []float64 {
	out := make([]float64, len(c.p[i]))
	copy(out, c.p[i])
	return out
}

// Matrix returns a deep copy of the transition matrix.
func (c *Chain) Matrix() [][]float64 {
	out := make([][]float64, len(c.p))
	for i := range c.p {
		out[i] = append([]float64(nil), c.p[i]...)
	}
	return out
}

// Stationary computes the stationary distribution pi with pi P = pi and
// sum(pi)=1 by solving the linear system (P^T - I) pi = 0 augmented with the
// normalization constraint, using Gaussian elimination with partial pivoting.
// It returns an error when the system is singular beyond the normalization
// redundancy (e.g. multiple closed communicating classes give one valid
// solution chosen by the solver; truly degenerate inputs error out).
func (c *Chain) Stationary() ([]float64, error) {
	n := c.N()
	// Build A = P^T - I, then replace the last row with all-ones (sum = 1).
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = c.p[j][i]
		}
		a[i][i] -= 1
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	b[n-1] = 1

	pi, err := solveLinear(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: stationary: %w", err)
	}
	// Clamp tiny negatives from roundoff and renormalize.
	var sum float64
	for i, v := range pi {
		if v < 0 {
			if v < -1e-8 {
				return nil, fmt.Errorf("markov: stationary solution has negative mass %v at state %d", v, i)
			}
			pi[i] = 0
		}
		sum += pi[i]
	}
	if sum <= 0 {
		return nil, errors.New("markov: stationary solution has no mass")
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi, nil
}

// StationaryPower computes the stationary distribution by power iteration.
// It is used in tests to cross-validate Stationary. maxIter bounds the work;
// tol is the L1 convergence threshold.
func (c *Chain) StationaryPower(maxIter int, tol float64) ([]float64, error) {
	n := c.N()
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		for j := 0; j < n; j++ {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			if cur[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				next[j] += cur[i] * c.p[i][j]
			}
		}
		var diff float64
		for j := 0; j < n; j++ {
			diff += math.Abs(next[j] - cur[j])
		}
		cur, next = next, cur
		if diff < tol {
			return append([]float64(nil), cur...), nil
		}
	}
	return nil, fmt.Errorf("markov: power iteration did not converge in %d iterations", maxIter)
}

// Step samples the successor of state i using u, a uniform draw in [0,1).
// Factoring the uniform out keeps the chain usable with any RNG.
func (c *Chain) Step(i int, u float64) int {
	row := c.p[i]
	x := u
	for j, v := range row {
		x -= v
		if x < 0 {
			return j
		}
	}
	// Roundoff fell off the end: return the last state with positive mass.
	for j := len(row) - 1; j >= 0; j-- {
		if row[j] > 0 {
			return j
		}
	}
	return len(row) - 1
}

// MatrixPower returns P^k (k >= 0) by repeated squaring.
func (c *Chain) MatrixPower(k int) [][]float64 {
	n := c.N()
	result := identity(n)
	base := c.Matrix()
	for k > 0 {
		if k&1 == 1 {
			result = matMul(result, base)
		}
		base = matMul(base, base)
		k >>= 1
	}
	return result
}

// ExpectedHittingTime returns, for each start state, the expected number of
// steps to first reach any state in targets. Entries for target states are 0.
// It errors when some state cannot reach the target set (infinite
// expectation).
func (c *Chain) ExpectedHittingTime(targets map[int]bool) ([]float64, error) {
	n := c.N()
	// Unknowns: h_i for non-target states; h_i = 1 + sum_j P[i][j] h_j.
	idx := make([]int, 0, n)
	pos := make(map[int]int, n)
	for i := 0; i < n; i++ {
		if !targets[i] {
			pos[i] = len(idx)
			idx = append(idx, i)
		}
	}
	m := len(idx)
	if m == 0 {
		return make([]float64, n), nil
	}
	a := make([][]float64, m)
	b := make([]float64, m)
	for r, i := range idx {
		a[r] = make([]float64, m)
		a[r][r] = 1
		b[r] = 1
		for j := 0; j < n; j++ {
			if targets[j] {
				continue
			}
			a[r][pos[j]] -= c.p[i][j]
		}
	}
	h, err := solveLinear(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: hitting time: %w", err)
	}
	out := make([]float64, n)
	for r, i := range idx {
		if h[r] < 0 || math.IsInf(h[r], 0) || math.IsNaN(h[r]) {
			return nil, fmt.Errorf("markov: hitting time from state %d is not finite/positive (%v)", i, h[r])
		}
		out[i] = h[r]
	}
	return out, nil
}

// solveLinear solves a x = b by Gaussian elimination with partial pivoting.
// a and b are modified in place.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-13 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	// Back-substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for k := r + 1; k < n; k++ {
			v -= a[r][k] * x[k]
		}
		x[r] = v / a[r][r]
	}
	return x, nil
}

func identity(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	return m
}

func matMul(a, b [][]float64) [][]float64 {
	n := len(a)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			if a[i][k] == 0 {
				continue
			}
			aik := a[i][k]
			for j := 0; j < n; j++ {
				out[i][j] += aik * b[k][j]
			}
		}
	}
	return out
}
