package markov

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestAbsorbGamblersRuin(t *testing.T) {
	// Classic 5-state gambler's ruin with fair coin: states 0..4,
	// 0 and 4 absorbing. From state i, P(absorbed at 4) = i/4.
	p := [][]float64{
		{1, 0, 0, 0, 0},
		{0.5, 0, 0.5, 0, 0},
		{0, 0.5, 0, 0.5, 0},
		{0, 0, 0.5, 0, 0.5},
		{0, 0, 0, 0, 1},
	}
	c := MustChain(p)
	abs, err := c.Absorb(map[int]bool{0: true, 4: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(abs.Transient) != 3 || len(abs.Absorbing) != 2 {
		t.Fatalf("partition: %v / %v", abs.Transient, abs.Absorbing)
	}
	for r, from := range abs.Transient {
		wantWin := float64(from) / 4
		// Absorbing order: [0, 4]; column 1 is state 4.
		if got := abs.B[r][1]; math.Abs(got-wantWin) > 1e-9 {
			t.Fatalf("P(win | start %d) = %v, want %v", from, got, wantWin)
		}
	}
	// Expected duration from the middle of a fair ruin on {0..4} is
	// i(4-i) = 4 for i=2.
	steps, err := abs.ExpectedStepsToAbsorption(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(steps-4) > 1e-9 {
		t.Fatalf("expected steps from 2 = %v, want 4", steps)
	}
}

func TestAbsorbErrors(t *testing.T) {
	c := MustChain([][]float64{{1, 0}, {0.5, 0.5}})
	if _, err := c.Absorb(nil); err == nil {
		t.Fatal("empty absorbing set accepted")
	}
	// State 1 cannot be reached... actually state 0 absorbing works; make a
	// chain where a transient cannot reach absorption: 1 loops to itself.
	c2 := MustChain([][]float64{{1, 0}, {0, 1}})
	if _, err := c2.Absorb(map[int]bool{0: true}); err == nil {
		t.Fatal("unreachable absorption accepted")
	}
	if _, err := c.AbsorptionProbability(0, 0, map[int]bool{0: true}); err == nil {
		t.Fatal("absorbing start accepted")
	}
	if _, err := c.AbsorptionProbability(1, 1, map[int]bool{0: true}); err == nil {
		t.Fatal("non-absorbing target accepted")
	}
}

func TestAbsorptionProbabilityMatchesSimulation(t *testing.T) {
	r := rng.New(97)
	c := randomChain(r, 5)
	targets := map[int]bool{3: true, 4: true}
	want, err := c.AbsorptionProbability(0, 4, targets)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	const trials = 120000
	for i := 0; i < trials; i++ {
		state := 0
		for !targets[state] {
			state = c.Step(state, r.Float64())
		}
		if state == 4 {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-want) > 0.006 {
		t.Fatalf("absorption probability %v vs simulated %v", want, got)
	}
}

func TestFundamentalMatrixRowSumsMatchHittingTimes(t *testing.T) {
	// Row sums of N equal the expected hitting time of the absorbing set,
	// which ExpectedHittingTime computes by a different route.
	r := rng.New(98)
	for trial := 0; trial < 30; trial++ {
		c := randomChain(r, 4)
		targets := map[int]bool{3: true}
		abs, err := c.Absorb(targets)
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.ExpectedHittingTime(targets)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range abs.Transient {
			steps, err := abs.ExpectedStepsToAbsorption(s)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(steps-h[s]) > 1e-8 {
				t.Fatalf("trial %d state %d: N row sum %v vs hitting time %v",
					trial, s, steps, h[s])
			}
		}
	}
}
