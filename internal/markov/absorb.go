package markov

import (
	"fmt"
)

// Absorption analysis: treat a subset of states as absorbing and compute,
// for transient states, the probability of being absorbed in each target
// and the expected number of visits to each transient state (the
// fundamental matrix N = (I − Q)⁻¹).
//
// This provides an independent linear-algebra derivation of the paper's
// Section 5 quantities: P+ is the probability, starting from the UP state's
// successor distribution, of reaching UP before DOWN; E(W)'s per-step
// expectation follows from N's row sums. The expect package's closed forms
// are cross-validated against these in tests.

// Absorption holds the result of an absorption analysis.
type Absorption struct {
	// Transient lists the transient state indices, in order; rows of B and
	// N correspond to this order.
	Transient []int
	// Absorbing lists the absorbing state indices; columns of B correspond
	// to this order.
	Absorbing []int
	// B[i][j] is the probability that, starting from Transient[i], the
	// chain is absorbed in Absorbing[j].
	B [][]float64
	// N[i][k] is the expected number of visits to Transient[k] before
	// absorption when starting from Transient[i] (including the start).
	N [][]float64
}

// Absorb computes absorption probabilities and the fundamental matrix for
// the chain with the given absorbing set. Every state outside the set is
// treated as transient; it errors when some transient state cannot reach
// the absorbing set.
func (c *Chain) Absorb(absorbing map[int]bool) (*Absorption, error) {
	n := c.N()
	if len(absorbing) == 0 {
		return nil, fmt.Errorf("markov: empty absorbing set")
	}
	out := &Absorption{}
	pos := make(map[int]int)
	for i := 0; i < n; i++ {
		if absorbing[i] {
			out.Absorbing = append(out.Absorbing, i)
		} else {
			pos[i] = len(out.Transient)
			out.Transient = append(out.Transient, i)
		}
	}
	t := len(out.Transient)
	if t == 0 {
		return out, nil
	}
	// Solve (I − Q) N = I column by column, where Q is the transient block.
	buildIminusQ := func() [][]float64 {
		a := make([][]float64, t)
		for r, i := range out.Transient {
			a[r] = make([]float64, t)
			for k, j := range out.Transient {
				a[r][k] = -c.p[i][j]
			}
			a[r][r] += 1
		}
		return a
	}
	out.N = make([][]float64, t)
	for r := range out.N {
		out.N[r] = make([]float64, t)
	}
	for col := 0; col < t; col++ {
		b := make([]float64, t)
		b[col] = 1
		x, err := solveLinear(buildIminusQ(), b)
		if err != nil {
			return nil, fmt.Errorf("markov: absorption: %w", err)
		}
		for r := 0; r < t; r++ {
			out.N[r][col] = x[r]
		}
	}
	// B = N · R, with R the transient→absorbing block.
	out.B = make([][]float64, t)
	for r := range out.B {
		out.B[r] = make([]float64, len(out.Absorbing))
		for j, aState := range out.Absorbing {
			var sum float64
			for k, tState := range out.Transient {
				sum += out.N[r][k] * c.p[tState][aState]
			}
			out.B[r][j] = sum
		}
	}
	// Sanity: each B row must be a distribution (all transients reach the
	// absorbing set).
	for r, row := range out.B {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if diff := sum - 1; diff > 1e-6 || diff < -1e-6 {
			return nil, fmt.Errorf("markov: transient state %d reaches absorption with probability %v",
				out.Transient[r], sum)
		}
	}
	return out, nil
}

// AbsorptionProbability returns the probability that the chain, started in
// `from`, reaches state `target` before any other state of `targets`.
// `from` must not itself be in `targets`.
func (c *Chain) AbsorptionProbability(from, target int, targets map[int]bool) (float64, error) {
	if targets[from] {
		return 0, fmt.Errorf("markov: start state %d is absorbing", from)
	}
	if !targets[target] {
		return 0, fmt.Errorf("markov: target %d not in absorbing set", target)
	}
	abs, err := c.Absorb(targets)
	if err != nil {
		return 0, err
	}
	ri, ci := -1, -1
	for r, s := range abs.Transient {
		if s == from {
			ri = r
		}
	}
	for cc, s := range abs.Absorbing {
		if s == target {
			ci = cc
		}
	}
	if ri < 0 || ci < 0 {
		return 0, fmt.Errorf("markov: state lookup failed")
	}
	return abs.B[ri][ci], nil
}

// ExpectedStepsToAbsorption returns, for the given transient start state,
// the expected number of steps before absorption (the row sum of N).
func (a *Absorption) ExpectedStepsToAbsorption(from int) (float64, error) {
	for r, s := range a.Transient {
		if s == from {
			var sum float64
			for _, v := range a.N[r] {
				sum += v
			}
			return sum, nil
		}
	}
	return 0, fmt.Errorf("markov: state %d is not transient", from)
}
