package sweepreq

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestBuildMoldableRequest pins the moldable experiment's request plumbing:
// the policy spec feeds the digest (different specs never share a cache
// entry), the defaulted spec canonicalizes to the explicit one, and the
// built Run executes through the moldable pipeline.
func TestBuildMoldableRequest(t *testing.T) {
	base := Request{Exp: "moldable", Scenarios: 1, Trials: 1, Seed: 9}
	defaulted, err := Build(base)
	if err != nil {
		t.Fatalf("Build(defaulted) error: %v", err)
	}
	explicit := base
	explicit.Alloc = "maximum-iters"
	eb, err := Build(explicit)
	if err != nil {
		t.Fatalf("Build(explicit) error: %v", err)
	}
	if defaulted.Digest != eb.Digest {
		t.Fatalf("defaulted alloc digest %s != explicit maximum-iters %s", defaulted.Digest, eb.Digest)
	}
	seen := map[string]string{"maximum-iters": eb.Digest}
	for _, alloc := range []string{"fixed", "split-into:4", "reshape:1"} {
		r := base
		r.Alloc = alloc
		b, err := Build(r)
		if err != nil {
			t.Fatalf("Build(alloc=%s) error: %v", alloc, err)
		}
		for prev, d := range seen {
			if d == b.Digest {
				t.Fatalf("alloc %q and %q share digest %s", alloc, prev, d)
			}
		}
		seen[alloc] = b.Digest
	}

	res, err := eb.Run(RunOpts{})
	if err != nil {
		t.Fatalf("moldable Run error: %v", err)
	}
	if res.Instances != eb.Instances {
		t.Fatalf("moldable sweep aggregated %d instances, want %d", res.Instances, eb.Instances)
	}
}

// FuzzRequestJSON throws arbitrary JSON at the service's wire format. The
// contract under fuzz: decoding plus Build never panics, a Build error
// never comes with a Built (validation fails closed), and any accepted
// request is deterministic — rebuilding the decoded request reproduces the
// same digest, and the request survives a marshal/unmarshal round trip to
// the same Built. The seed corpus mirrors FuzzCheckpointDecode's style:
// valid submissions of increasing richness plus structural near-misses.
func FuzzRequestJSON(f *testing.F) {
	for _, r := range []Request{
		{Exp: "table2"},
		{Exp: "moldable", Alloc: "reshape:2", Scenarios: 2, Trials: 1, Seed: 7, Mode: "event"},
		{Exp: "tracesweep", TraceStyle: "pareto", TraceLen: 500, Retries: 1, ContinueOnError: true},
	} {
		b, err := json.Marshal(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"exp":"moldable","alloc":"split-into:0"}`))
	f.Add([]byte(`{"exp":"moldable","alloc":"zipf"}`))
	f.Add([]byte(`{"exp":"table2","alloc":"fixed"}`))
	f.Add([]byte(`{"exp":"table2","scenarios":-1}`))
	f.Add([]byte(`{"exp":"table2","seed":18446744073709551615}`))
	f.Add([]byte(`{"exp":"ablation"}`))
	f.Add([]byte(`{"exp":"table2","unknown_field":1}`))
	f.Add([]byte(`{"exp":1e999}`))
	f.Add([]byte(`{"exp"`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // malformed wire data is the decoder's problem, not Build's
		}
		built, err := Build(req)
		if err != nil {
			if built != nil {
				t.Fatalf("Build returned %+v alongside error %v", built, err)
			}
			return
		}
		if built.Digest == "" || built.Instances <= 0 || built.Run == nil {
			t.Fatalf("accepted request built incomplete %+v", built)
		}
		// Accepted requests are deterministic and survive a wire round trip.
		again, err := Build(req)
		if err != nil || again.Digest != built.Digest {
			t.Fatalf("rebuild of accepted request diverged: digest %s vs %s (err %v)",
				built.Digest, again.Digest, err)
		}
		wire, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not marshal: %v", err)
		}
		var rt Request
		if err := json.Unmarshal(wire, &rt); err != nil {
			t.Fatalf("accepted request does not round-trip: %v", err)
		}
		if rtb, err := Build(rt); err != nil || rtb.Digest != built.Digest {
			t.Fatalf("round-tripped request built differently: %v / %s vs %s", err, rtb.Digest, built.Digest)
		}
	})
}
