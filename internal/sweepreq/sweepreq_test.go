package sweepreq

import (
	"strings"
	"testing"
)

// TestValidateTable pins the request validation contract: the same inputs
// volabench rejects from flags are rejected here with the same
// flag-flavoured messages, since the service unmarshals this struct from
// JSON and replays the errors verbatim.
func TestValidateTable(t *testing.T) {
	ok := Request{Exp: "table2", Mode: "slot", Scenarios: 6, Trials: 4}
	cases := []struct {
		name    string
		mutate  func(r Request) Request
		wantErr string // substring; empty = valid
	}{
		{"baseline", func(r Request) Request { return r }, ""},
		{"event-mode", func(r Request) Request { r.Mode = "event"; return r }, ""},
		{"tracesweep", func(r Request) Request {
			r.Exp, r.TraceStyle, r.TraceLen = "tracesweep", "pareto", 500
			return r
		}, ""},
		{"trace-files", func(r Request) Request {
			r.Exp, r.TraceFiles = "tracesweep", []string{"a.trace"}
			return r
		}, ""},
		{"moldable", func(r Request) Request {
			r.Exp, r.Alloc = "moldable", "reshape:3"
			return r
		}, ""},
		{"moldable-default-alloc", func(r Request) Request {
			r.Exp = "moldable"
			return r
		}, ""},

		{"zero-scenarios", func(r Request) Request { r.Scenarios = 0; return r }, "-scenarios must be positive"},
		{"negative-trials", func(r Request) Request { r.Trials = -1; return r }, "-trials must be positive"},
		{"negative-workers", func(r Request) Request { r.Workers = -2; return r }, "-workers must be >= 0"},
		{"negative-procs", func(r Request) Request { r.Procs = -1; return r }, "-p must be >= 0"},
		{"negative-retries", func(r Request) Request { r.Retries = -1; return r }, "-retries must be >= 0"},
		{"bad-mode", func(r Request) Request { r.Mode = "warp"; return r }, `unknown mode "warp"`},
		{"bad-exp", func(r Request) Request { r.Exp = "table9"; return r }, `unknown experiment "table9"`},
		{"trace-files-elsewhere", func(r Request) Request {
			r.TraceFiles = []string{"a.trace"}
			return r
		}, "-trace-file applies only to -exp tracesweep"},
		{"alloc-elsewhere", func(r Request) Request {
			r.Alloc = "maximum-iters"
			return r
		}, "-alloc applies only to -exp moldable"},
		{"bad-alloc", func(r Request) Request {
			r.Exp, r.Alloc = "moldable", "zipf"
			return r
		}, "unknown alloc policy"},
		{"bad-alloc-arg", func(r Request) Request {
			r.Exp, r.Alloc = "moldable", "split-into:0"
			return r
		}, "must be a positive integer"},
		{"bad-trace-style", func(r Request) Request {
			r.Exp, r.TraceStyle = "tracesweep", "zipf"
			return r
		}, `unknown trace style "zipf"`},
		{"short-trace-len", func(r Request) Request {
			r.Exp, r.TraceLen = "tracesweep", 1
			return r
		}, "-trace-len must be >= 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.mutate(ok).Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want ok", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

// TestBuildRejectsNonSweepExperiments pins that the CLI-only compositions
// cannot be submitted to the service path.
func TestBuildRejectsNonSweepExperiments(t *testing.T) {
	for _, exp := range []string{"ablation", "emctgain", "emctgain-norepl"} {
		_, err := Build(Request{Exp: exp})
		if err == nil || !strings.Contains(err.Error(), "does not run through the sweep pipeline") {
			t.Fatalf("Build(%q) = %v, want sweep-pipeline rejection", exp, err)
		}
	}
}

// TestBuildAppliesDefaults pins canonicalization: a minimal request and one
// spelling out the flag defaults build to the same content digest, so cache
// hits do not depend on how explicitly the client filled in the JSON.
func TestBuildAppliesDefaults(t *testing.T) {
	minimal, err := Build(Request{Exp: "table3x5"})
	if err != nil {
		t.Fatalf("Build(minimal) error: %v", err)
	}
	explicit, err := Build(Request{
		Exp: "table3x5", Mode: "slot", Scenarios: 6, Trials: 4,
		TraceStyle: "weibull", TraceLen: 1000,
	})
	if err != nil {
		t.Fatalf("Build(explicit) error: %v", err)
	}
	if minimal.Digest != explicit.Digest {
		t.Fatalf("defaulted digest %s != explicit digest %s", minimal.Digest, explicit.Digest)
	}
	if minimal.Instances != explicit.Instances || minimal.Instances != 24 {
		t.Fatalf("Instances = %d/%d, want 24 (1 cell x 6 scenarios x 4 trials)",
			minimal.Instances, explicit.Instances)
	}
}

// TestBuildDigestSeparatesConfigs pins that anything result-affecting moves
// the digest while execution-only knobs do not.
func TestBuildDigestSeparatesConfigs(t *testing.T) {
	base := Request{Exp: "table3x5", Scenarios: 2, Trials: 1, Seed: 7}
	ref, err := Build(base)
	if err != nil {
		t.Fatalf("Build(base) error: %v", err)
	}
	differ := map[string]Request{
		"seed":      {Exp: "table3x5", Scenarios: 2, Trials: 1, Seed: 8},
		"trials":    {Exp: "table3x5", Scenarios: 2, Trials: 2, Seed: 7},
		"exp":       {Exp: "table3x10", Scenarios: 2, Trials: 1, Seed: 7},
		"mode":      {Exp: "table3x5", Mode: "event", Scenarios: 2, Trials: 1, Seed: 7},
		"processor": {Exp: "table3x5", Scenarios: 2, Trials: 1, Seed: 7, Procs: 8},
	}
	for name, r := range differ {
		b, err := Build(r)
		if err != nil {
			t.Fatalf("Build(%s) error: %v", name, err)
		}
		if b.Digest == ref.Digest {
			t.Fatalf("%s change did not move the digest (%s)", name, ref.Digest)
		}
	}
	same := map[string]Request{
		"workers": {Exp: "table3x5", Scenarios: 2, Trials: 1, Seed: 7, Workers: 3},
		"retries": {Exp: "table3x5", Scenarios: 2, Trials: 1, Seed: 7, Retries: 2, ContinueOnError: true},
	}
	for name, r := range same {
		b, err := Build(r)
		if err != nil {
			t.Fatalf("Build(%s) error: %v", name, err)
		}
		if b.Digest != ref.Digest {
			t.Fatalf("execution-only knob %s moved the digest: %s != %s", name, b.Digest, ref.Digest)
		}
	}
}

// TestBuildRunMatchesDigestContract runs the cheapest sweep twice and pins
// that equal config digests deliver bit-identical results.
func TestBuildRunMatchesDigestContract(t *testing.T) {
	req := Request{Exp: "table3x5", Scenarios: 2, Trials: 1, Seed: 3}
	a, err := Build(req)
	if err != nil {
		t.Fatalf("Build error: %v", err)
	}
	resA, err := a.Run(RunOpts{})
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
	b, err := Build(req)
	if err != nil {
		t.Fatalf("Build error: %v", err)
	}
	if b.Digest != a.Digest {
		t.Fatalf("config digest not stable: %s != %s", b.Digest, a.Digest)
	}
	resB, err := b.Run(RunOpts{Progress: func(done, total int) {}})
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
	if resA.Digest() != resB.Digest() {
		t.Fatalf("equal config digests, different results: %s != %s", resA.Digest(), resB.Digest())
	}
}

// TestSweepExperimentsAllBuild pins that every advertised sweep experiment
// actually builds (construction, heuristics resolution, digesting) from a
// minimal request.
func TestSweepExperimentsAllBuild(t *testing.T) {
	seen := map[string]bool{}
	for _, exp := range SweepExperiments() {
		b, err := Build(Request{Exp: exp, Scenarios: 1, Trials: 1})
		if err != nil {
			t.Fatalf("Build(%q) error: %v", exp, err)
		}
		if b.Digest == "" || b.Instances <= 0 || len(b.Heuristics) == 0 {
			t.Fatalf("Build(%q) = %+v, want digest/instances/heuristics populated", exp, b)
		}
		if seen[b.Digest] {
			t.Fatalf("experiment %q shares a digest with another experiment", exp)
		}
		seen[b.Digest] = true
	}
}
