// Package sweepreq is the shared CLI/service request layer for the sweep
// experiments: one Request struct describing any sweep-family submission
// with the same knobs (and the same validation messages) volabench exposes
// as flags, plus the construction of the matching volatile config and its
// canonical content digest. cmd/volabench parses flags into a Request;
// cmd/volaserved unmarshals the same shape from JSON — both then share
// validation, config construction and digesting, so a sweep submitted
// either way produces the same result under the same content address.
package sweepreq

import (
	"fmt"
	"strings"

	volatile "repro"
	"repro/internal/faultinject"
)

// experiments lists every -exp value the CLI dispatches on, in the order
// the usage text presents them. sweepExperiments is the subset that runs
// through the sharded sweep pipeline — the ones that support the durability
// flags and that the sweep service accepts. The other experiments
// (ablation, emctgain*) run several sweeps or none and exist only as CLI
// conveniences.
var experiments = []string{
	"table2", "figure2", "table3x5", "table3x10",
	"ablation", "emctgain", "emctgain-norepl", "tracesweep", "dfrs",
	"largep", "moldable",
}

var sweepExperiments = []string{
	"table2", "figure2", "table3x5", "table3x10", "tracesweep", "dfrs", "largep",
	"moldable",
}

// Experiments returns every valid experiment name, in usage order.
func Experiments() []string { return append([]string(nil), experiments...) }

// SweepExperiments returns the experiments that run through the sharded
// sweep pipeline (checkpointable, streamable, servable).
func SweepExperiments() []string { return append([]string(nil), sweepExperiments...) }

// IsSweep reports whether exp runs through the sharded sweep pipeline.
func IsSweep(exp string) bool {
	for _, e := range sweepExperiments {
		if exp == e {
			return true
		}
	}
	return false
}

// Request describes one sweep-family submission. Field names mirror the
// volabench flags; JSON tags are the service's wire format. The zero value
// of an optional field means "use the experiment default" (WithDefaults
// makes those defaults explicit — the same ones the volabench flags carry).
type Request struct {
	// Exp names the experiment (table2, figure2, table3x5, table3x10,
	// tracesweep, dfrs, largep; the CLI additionally runs ablation and
	// emctgain*, which Build rejects).
	Exp string `json:"exp"`
	// Mode is the engine time base: "slot" (default) or "event".
	Mode string `json:"mode,omitempty"`
	// Scenarios and Trials scale the sweep (defaults 6 and 4, the
	// volabench flag defaults; the paper uses 247 × 10).
	Scenarios int `json:"scenarios,omitempty"`
	Trials    int `json:"trials,omitempty"`
	// Procs overrides the platform size (0 = experiment default; largep
	// defaults to 1000).
	Procs int `json:"p,omitempty"`
	// Seed makes the sweep reproducible (default 0).
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds sweep parallelism (0 = all cores). Excluded from the
	// config digest: results are bit-identical for any worker count.
	Workers int `json:"workers,omitempty"`
	// TraceStyle, TraceLen and TraceFiles configure tracesweep (ignored by
	// the other experiments; TraceFiles is rejected outside tracesweep
	// because replacing the availability source silently would be a trap).
	TraceStyle string   `json:"trace_style,omitempty"`
	TraceLen   int      `json:"trace_len,omitempty"`
	TraceFiles []string `json:"trace_files,omitempty"`
	// Alloc is the allocation-policy spec for the moldable experiment
	// ("fixed", "maximum-iters", "split-into[:parts]", "reshape[:step]").
	// Rejected outside moldable because silently ignoring a requested
	// policy would be a trap; defaults to "maximum-iters" for moldable.
	Alloc string `json:"alloc,omitempty"`
	// Retries and ContinueOnError set the failure policy (excluded from
	// the digest: a recovered sweep is bit-identical to an undisturbed one).
	Retries         int  `json:"retries,omitempty"`
	ContinueOnError bool `json:"continue_on_error,omitempty"`
}

// WithDefaults returns the request with unset optional knobs replaced by
// the volabench flag defaults, so a minimal service submission and a
// flag-default CLI run canonicalize to the same digest.
func (r Request) WithDefaults() Request {
	if r.Mode == "" {
		r.Mode = "slot"
	}
	if r.Scenarios == 0 {
		r.Scenarios = 6
	}
	if r.Trials == 0 {
		r.Trials = 4
	}
	if r.TraceStyle == "" {
		r.TraceStyle = "weibull"
	}
	if r.TraceLen == 0 {
		r.TraceLen = 1000
	}
	if r.Exp == "moldable" && r.Alloc == "" {
		r.Alloc = "maximum-iters"
	}
	return r
}

// Validate rejects unusable requests up front with flag-flavoured messages
// (the service's JSON fields are named after the flags, so the messages
// read correctly on both surfaces). It does not apply defaults: a zero
// Scenarios is an error here, exactly as `-scenarios 0` is on the CLI.
func (r Request) Validate() error {
	if r.Scenarios <= 0 {
		return fmt.Errorf("-scenarios must be positive (got %d)", r.Scenarios)
	}
	if r.Trials <= 0 {
		return fmt.Errorf("-trials must be positive (got %d)", r.Trials)
	}
	if r.Workers < 0 {
		return fmt.Errorf("-workers must be >= 0, where 0 means all cores (got %d)", r.Workers)
	}
	if r.Procs < 0 {
		return fmt.Errorf("-p must be >= 0, where 0 means the experiment default (got %d)", r.Procs)
	}
	if r.Retries < 0 {
		return fmt.Errorf("-retries must be >= 0 (got %d)", r.Retries)
	}
	if _, err := volatile.ParseMode(r.Mode); err != nil {
		return fmt.Errorf("unknown mode %q (valid: %s)", r.Mode, strings.Join(volatile.ModeNames(), ", "))
	}
	known := false
	for _, e := range experiments {
		if r.Exp == e {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q (valid: %s)", r.Exp, strings.Join(experiments, ", "))
	}
	if len(r.TraceFiles) > 0 && r.Exp != "tracesweep" {
		return fmt.Errorf("-trace-file applies only to -exp tracesweep (got -exp %s)", r.Exp)
	}
	if r.Alloc != "" {
		if r.Exp != "moldable" {
			return fmt.Errorf("-alloc applies only to -exp moldable (got -exp %s)", r.Exp)
		}
		if _, err := volatile.ParseAllocPolicy(r.Alloc); err != nil {
			return fmt.Errorf("-alloc: %v (valid: %s)", err, strings.Join(volatile.AllocPolicySpecs(), ", "))
		}
	}
	if r.Exp == "tracesweep" {
		if _, err := ParseTraceStyle(r.TraceStyle); r.TraceStyle != "" && err != nil {
			return err
		}
		if r.TraceLen != 0 && r.TraceLen < 2 && len(r.TraceFiles) == 0 {
			return fmt.Errorf("-trace-len must be >= 2 to fit models (got %d)", r.TraceLen)
		}
	}
	return nil
}

// ParseTraceStyle resolves a sojourn-family name.
func ParseTraceStyle(name string) (volatile.TraceStyle, error) {
	switch name {
	case "weibull":
		return volatile.TraceWeibull, nil
	case "pareto":
		return volatile.TracePareto, nil
	case "lognormal":
		return volatile.TraceLogNormal, nil
	}
	return 0, fmt.Errorf("unknown trace style %q (weibull|pareto|lognormal)", name)
}

// RunOpts carries the per-execution knobs a caller wires into a built
// sweep: progress reporting, checkpoint placement, graceful stop and fault
// injection. None of them affect the result (or the digest).
type RunOpts struct {
	Progress   func(done, total int)
	Checkpoint *volatile.CheckpointConfig
	Stop       <-chan struct{}
	Faults     *faultinject.Plan
}

// Built is a validated, constructed sweep: its canonical content digest
// (the result-cache / checkpoint key), the resolved fractional heuristic
// list, the total instance count, and a Run closure executing it through
// the matching volatile entry point.
type Built struct {
	// Exp echoes the experiment name.
	Exp string
	// Digest is the canonical config digest (ConfigDigest of the built
	// config) — equal digests mean bit-identical results.
	Digest string
	// Heuristics is the resolved fractional heuristic list (what figure2
	// plots, what the tables rank; dfrs adds the batch disciplines on top).
	Heuristics []string
	// Instances is cells × scenarios × trials, the total the Progress
	// callback counts toward.
	Instances int
	// Run executes the sweep. It may be called at most once per checkpoint
	// lifecycle but is otherwise stateless: every call re-runs (or, with
	// Checkpoint.Resume, continues) the identical sweep.
	Run func(RunOpts) (*volatile.SweepResult, error)
}

// Build validates the request, applies defaults, constructs the matching
// sweep config and returns its digest and runner. Non-sweep experiments
// (ablation, emctgain*) are rejected: they are CLI compositions, not single
// checkpointable sweeps.
func Build(r Request) (*Built, error) {
	r = r.WithDefaults()
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if !IsSweep(r.Exp) {
		return nil, fmt.Errorf("experiment %q does not run through the sweep pipeline (sweep experiments: %s)",
			r.Exp, strings.Join(sweepExperiments, ", "))
	}
	mode, err := volatile.ParseMode(r.Mode)
	if err != nil {
		return nil, err
	}

	switch r.Exp {
	case "tracesweep":
		style, err := ParseTraceStyle(r.TraceStyle)
		if err != nil {
			return nil, err
		}
		cfg := volatile.TraceSweepConfig{
			Cells:      volatile.PaperGrid(),
			Scenarios:  r.Scenarios,
			Trials:     r.Trials,
			TraceLen:   r.TraceLen,
			Style:      style,
			TraceFiles: r.TraceFiles,
			Options:    volatile.ScenarioOptions{Processors: r.Procs},
			Mode:       mode,
			Seed:       r.Seed,
			Workers:    r.Workers,
		}
		cfg.MaxRetries, cfg.ContinueOnError = r.Retries, r.ContinueOnError
		digest, err := cfg.ConfigDigest()
		if err != nil {
			return nil, err
		}
		return &Built{
			Exp:        r.Exp,
			Digest:     digest,
			Heuristics: volatile.Heuristics(),
			Instances:  len(cfg.Cells) * r.Scenarios * r.Trials,
			Run: func(o RunOpts) (*volatile.SweepResult, error) {
				c := cfg
				c.Progress, c.Checkpoint, c.Stop, c.Faults = o.Progress, o.Checkpoint, o.Stop, o.Faults
				return volatile.TraceSweep(c)
			},
		}, nil

	case "dfrs":
		cfg := volatile.CompareConfig{
			Cells:     volatile.PaperGrid(),
			Scenarios: r.Scenarios,
			Trials:    r.Trials,
			Options:   volatile.ScenarioOptions{Processors: r.Procs},
			Mode:      mode,
			Seed:      r.Seed,
			Workers:   r.Workers,
		}
		cfg.MaxRetries, cfg.ContinueOnError = r.Retries, r.ContinueOnError
		digest, err := cfg.ConfigDigest()
		if err != nil {
			return nil, err
		}
		return &Built{
			Exp:        r.Exp,
			Digest:     digest,
			Heuristics: volatile.Heuristics(),
			Instances:  len(cfg.Cells) * r.Scenarios * r.Trials,
			Run: func(o RunOpts) (*volatile.SweepResult, error) {
				c := cfg
				c.Progress, c.Checkpoint, c.Stop, c.Faults = o.Progress, o.Checkpoint, o.Stop, o.Faults
				return volatile.CompareSweep(c)
			},
		}, nil

	case "moldable":
		cfg := volatile.MoldableSweepConfig(r.Alloc, r.Scenarios, r.Trials, r.Seed)
		cfg.Options.Processors = r.Procs
		cfg.Mode, cfg.Workers = mode, r.Workers
		cfg.MaxRetries, cfg.ContinueOnError = r.Retries, r.ContinueOnError
		digest, err := cfg.ConfigDigest()
		if err != nil {
			return nil, err
		}
		return &Built{
			Exp:        r.Exp,
			Digest:     digest,
			Heuristics: volatile.Heuristics(),
			Instances:  len(cfg.Cells) * r.Scenarios * r.Trials,
			Run: func(o RunOpts) (*volatile.SweepResult, error) {
				c := cfg
				c.Progress, c.Checkpoint, c.Stop, c.Faults = o.Progress, o.Checkpoint, o.Stop, o.Faults
				return volatile.MoldableSweep(c)
			},
		}, nil

	default:
		var cfg volatile.SweepConfig
		switch r.Exp {
		case "table2":
			cfg = volatile.Table2Config(r.Scenarios, r.Trials, r.Seed)
			cfg.Options.Processors = r.Procs
		case "figure2":
			cfg = volatile.Figure2Config(r.Scenarios, r.Trials, r.Seed)
			cfg.Options.Processors = r.Procs
		case "table3x5":
			cfg = volatile.Table3Config(5, r.Scenarios, r.Trials, r.Seed)
			cfg.Options.Processors = r.Procs
		case "table3x10":
			cfg = volatile.Table3Config(10, r.Scenarios, r.Trials, r.Seed)
			cfg.Options.Processors = r.Procs
		case "largep":
			p := r.Procs
			if p == 0 {
				p = 1000
			}
			cfg = volatile.LargePConfig(p, r.Scenarios, r.Trials, r.Seed)
		}
		cfg.Mode, cfg.Workers = mode, r.Workers
		cfg.MaxRetries, cfg.ContinueOnError = r.Retries, r.ContinueOnError
		digest, err := cfg.ConfigDigest()
		if err != nil {
			return nil, err
		}
		heur := cfg.Heuristics
		if len(heur) == 0 {
			heur = volatile.Heuristics()
		}
		return &Built{
			Exp:        r.Exp,
			Digest:     digest,
			Heuristics: heur,
			Instances:  len(cfg.Cells) * r.Scenarios * r.Trials,
			Run: func(o RunOpts) (*volatile.SweepResult, error) {
				c := cfg
				c.Progress, c.Checkpoint, c.Stop, c.Faults = o.Progress, o.Checkpoint, o.Stop, o.Faults
				return volatile.RunSweep(c)
			},
		}, nil
	}
}
