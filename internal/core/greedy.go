package core

import (
	"math"

	"repro/internal/sim"
)

// correctionMode selects how a greedy heuristic estimates communication.
type correctionMode int

const (
	// plainComm uses Equation 1: raw Tdata, contention ignored.
	plainComm correctionMode = iota
	// eq2Comm uses Equation 2 verbatim: Tdata scaled by ceil(nactive/ncom)
	// (the paper's * variants).
	eq2Comm
	// aggressiveComm additionally scales the communication remainders
	// inside Delay (program + in-flight data) by the same factor. This is
	// NOT in the paper; it is an extension explored by the ablation
	// benchmarks (registered under the "+" suffix).
	aggressiveComm
)

// greedySched implements the MCT/EMCT/LW/UD family: it scores every eligible
// processor for the task at hand and picks the best (lowest score; ties go
// to the lowest processor ID, which keeps runs deterministic).
type greedySched struct {
	name string
	mode correctionMode
	// score maps (processor view, estimated completion time) to a
	// lower-is-better score.
	score func(pv *sim.ProcView, ct float64) float64
}

// Name implements sim.Scheduler.
func (s *greedySched) Name() string { return s.name }

// Pick implements sim.Scheduler.
func (s *greedySched) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	best := eligible[0]
	bestScore := math.Inf(1)
	for _, q := range eligible {
		pv := &v.Procs[q]
		var ct float64
		switch s.mode {
		case plainComm:
			ct = float64(CT(pv, rs.NQ[q]+1, v.Params.Tdata))
		case eq2Comm:
			ct = float64(CT(pv, rs.NQ[q]+1, CorrectedTdata(v.Params, effectiveNActive(pv, rs))))
		case aggressiveComm:
			na := effectiveNActive(pv, rs)
			factor := (na + v.Params.Ncom - 1) / v.Params.Ncom
			ct = float64(CTCorrected(pv, rs.NQ[q]+1, v.Params, factor))
		}
		score := s.score(pv, ct)
		if score < bestScore || (score == bestScore && q < best) {
			best, bestScore = q, score
		}
	}
	return best
}

// scoreMCT minimizes the estimated completion time itself.
func scoreMCT(_ *sim.ProcView, ct float64) float64 { return ct }

// scoreEMCT minimizes E(CT), the expected number of slots needed to be UP
// during CT slots without going DOWN (Theorem 2). The per-model expectation
// machinery is precomputed in pv.Analytics, so scoring is pure arithmetic.
func scoreEMCT(pv *sim.ProcView, ct float64) float64 {
	return pv.Analytics.ExpectedSlots(ct)
}

// scoreLW maximizes (P+)^CT, computed in log space to survive large CT.
func scoreLW(pv *sim.ProcView, ct float64) float64 {
	a := pv.Analytics
	if a.PPlus <= 0 {
		return math.Inf(1)
	}
	// Maximize ct·ln(P+)  ⇔  minimize ct·(−ln(P+)).
	return ct * a.NegLogPPlus
}

// scoreUD maximizes the approximate P_UD(k) at k = E(CT), in log space:
// minimize −ln P_UD(k) = −ln(1−P(u,d)) − (k−2)·ln(perSlot), with the
// per-slot survival rate and both logarithms cached per model.
func scoreUD(pv *sim.ProcView, ct float64) float64 {
	a := pv.Analytics
	return a.UDScore(a.ExpectedSlots(ct))
}

func greedyScore(base string) func(*sim.ProcView, float64) float64 {
	switch base {
	case "mct":
		return scoreMCT
	case "emct":
		return scoreEMCT
	case "lw":
		return scoreLW
	case "ud":
		return scoreUD
	default:
		panic("core: unknown greedy base " + base)
	}
}

// NewGreedy builds a greedy heuristic from its base name ("mct", "emct",
// "lw", "ud") and correction mode suffix: "" = Equation 1, "*" = Equation 2,
// "+" = the aggressive extension (non-paper; see correctionMode).
func NewGreedy(base string, mode correctionMode) sim.Scheduler {
	suffix := ""
	switch mode {
	case eq2Comm:
		suffix = "*"
	case aggressiveComm:
		suffix = "+"
	}
	return &greedySched{name: base + suffix, mode: mode, score: greedyScore(base)}
}

// NewMCT returns the MCT heuristic (Section 6.3.1): minimize the estimated
// completion time CT(P_q, n_q+1) of Equation 1. corrected=true yields MCT*
// (Equation 2).
func NewMCT(corrected bool) sim.Scheduler { return NewGreedy("mct", modeOf(corrected)) }

// NewEMCT returns the EMCT heuristic; corrected=true yields EMCT*.
func NewEMCT(corrected bool) sim.Scheduler { return NewGreedy("emct", modeOf(corrected)) }

// NewLW returns the LW ("Likely to Work") heuristic (Section 6.3.2);
// corrected=true yields LW*.
func NewLW(corrected bool) sim.Scheduler { return NewGreedy("lw", modeOf(corrected)) }

// NewUD returns the UD ("Unlikely Down") heuristic (Section 6.3.3);
// corrected=true yields UD*.
func NewUD(corrected bool) sim.Scheduler { return NewGreedy("ud", modeOf(corrected)) }

func modeOf(corrected bool) correctionMode {
	if corrected {
		return eq2Comm
	}
	return plainComm
}

// NewRiskAverse returns an extension heuristic (not in the paper): it
// minimizes E(CT) + λ·σ(CT), penalizing processors whose conditioned
// completion times are *volatile*, not just long. σ comes from the
// closed-form variance of Theorem 2's walk (expect.StdDevSlots). λ = 0
// degenerates to EMCT.
func NewRiskAverse(lambda float64) sim.Scheduler {
	if lambda < 0 {
		lambda = 0
	}
	return &greedySched{
		name: "remct",
		mode: plainComm,
		score: func(pv *sim.ProcView, ct float64) float64 {
			a := pv.Analytics
			return a.ExpectedSlots(ct) + lambda*a.StdDevSlots(ct)
		},
	}
}
