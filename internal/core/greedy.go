package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// correctionMode selects how a greedy heuristic estimates communication.
type correctionMode int

const (
	// plainComm uses Equation 1: raw Tdata, contention ignored.
	plainComm correctionMode = iota
	// eq2Comm uses Equation 2 verbatim: Tdata scaled by ceil(nactive/ncom)
	// (the paper's * variants).
	eq2Comm
	// aggressiveComm additionally scales the communication remainders
	// inside Delay (program + in-flight data) by the same factor. This is
	// NOT in the paper; it is an extension explored by the ablation
	// benchmarks (registered under the "+" suffix).
	aggressiveComm
)

// greedySched implements the MCT/EMCT/LW/UD family: it scores every eligible
// processor for the task at hand and picks the best (lowest score; ties go
// to the lowest processor ID, which keeps runs deterministic; a NaN score
// can neither win nor shadow a real one — see scoreLess).
//
// On engine-built views (which carry change tracking, see sim.View.Epoch)
// scoring is incremental: scores live in a per-worker cache and only
// candidates whose inputs changed — their view snapshot, their NQ entry
// after a pick, or (corrected modes) the communication factor — are
// re-evaluated; the argmin pass compares cached values under the same
// scoreLess order as the reference scan. On untracked (hand-built) views,
// every Pick is the reference full scan. Both paths are bit-identical by
// construction and cross-checked by the slow-check oracle.
type greedySched struct {
	name string
	mode correctionMode
	// score maps (processor view, estimated completion time) to a
	// lower-is-better score.
	score func(pv *sim.ProcView, ct float64) float64
	// cache is the incremental scoring state, created on first tracked
	// Pick; noCache forces the reference path (the equivalence tests'
	// "plain" scheduler). argmin is the large-slate heap (argmin.go),
	// created the first time a slate reaches greedyHeapMinEligible.
	cache   *pickCache
	argmin  *scoreHeap
	noCache bool
	// mutSkip* deliberately break one cache-invalidation source each
	// (test-only): they exist so the mutation tests can prove the
	// slow-check oracle detects a rotted dirty-set contract.
	mutSkipEpoch, mutSkipNQ, mutSkipNA bool
}

// Name implements sim.Scheduler.
func (s *greedySched) Name() string { return s.name }

// PoolSafe implements sim.Poolable: all greedy state is keyed on the
// engine's process-wide unique change epochs, so reuse across runs (and
// even engines) cannot validate a stale score.
func (s *greedySched) PoolSafe() bool { return true }

// commFactor returns the communication slowdown factor ceil(n_active/n_com)
// used by the corrected modes, clamped so an all-busy round still pays the
// raw cost once (matching CorrectedTdata's n_active clamp and CTCorrected's
// factor clamp — for n_active >= 1 all three agree exactly).
func commFactor(na, ncom int) int {
	f := (na + ncom - 1) / ncom
	if f < 1 {
		f = 1
	}
	return f
}

// scoreWithFactor evaluates worker q's score given its precomputed
// communication factor (ignored in plain mode).
func (s *greedySched) scoreWithFactor(v *sim.View, rs *sim.RoundState, q, factor int) float64 {
	pv := &v.Procs[q]
	var ct float64
	switch s.mode {
	case plainComm:
		ct = float64(CT(pv, rs.NQ[q]+1, v.Params.Tdata))
	case eq2Comm:
		ct = float64(CT(pv, rs.NQ[q]+1, factor*v.Params.Tdata))
	case aggressiveComm:
		ct = float64(CTCorrected(pv, rs.NQ[q]+1, v.Params, factor))
	}
	return s.score(pv, ct)
}

// scoreOf evaluates worker q's score from scratch (the reference
// evaluation; the cache stores exactly these values).
func (s *greedySched) scoreOf(v *sim.View, rs *sim.RoundState, q int) float64 {
	factor := 0
	if s.mode != plainComm {
		factor = commFactor(effectiveNActive(&v.Procs[q], rs), v.Params.Ncom)
	}
	return s.scoreWithFactor(v, rs, q, factor)
}

// pickFlat is the reference argmin: a fresh evaluation of every eligible
// candidate, seeded from a real first evaluation (never a sentinel, so an
// all-+Inf slate still tie-breaks to the lowest ID and NaN cannot shadow a
// finite score).
func (s *greedySched) pickFlat(v *sim.View, eligible []int, rs *sim.RoundState) (int, float64) {
	best := eligible[0]
	bestScore := s.scoreOf(v, rs, best)
	for _, q := range eligible[1:] {
		score := s.scoreOf(v, rs, q)
		if scoreLess(score, q, bestScore, best) {
			best, bestScore = q, score
		}
	}
	return best, bestScore
}

// cachedIfValid returns worker q's cached score when its recorded inputs —
// the view snapshot, the NQ entry and (corrected modes) the communication
// factor it was computed from — all compare equal to the present ones. The
// factor is the caller's precomputed commFactor for q (ignored in plain
// mode).
func (s *greedySched) cachedIfValid(c *pickCache, v *sim.View, rs *sim.RoundState, q, factor int) (float64, bool) {
	sc, ep, nq, fa := c.get(q)
	if !s.mutSkipEpoch && ep != v.ProcEpochs[q] {
		return 0, false
	}
	if !s.mutSkipNQ && int(nq) != rs.NQ[q] {
		return 0, false
	}
	if s.mode != plainComm && !s.mutSkipNA && int(fa) != factor {
		return 0, false
	}
	return sc, true
}

// cachedScore returns worker q's score through the cache: the cached value
// when its inputs are current, a fresh evaluation (recorded back) otherwise.
func (s *greedySched) cachedScore(c *pickCache, v *sim.View, rs *sim.RoundState, q, factor int) float64 {
	if sc, ok := s.cachedIfValid(c, v, rs, q, factor); ok {
		return sc
	}
	sc := s.scoreWithFactor(v, rs, q, factor)
	c.put(q, sc, v.ProcEpochs[q], int32(rs.NQ[q]), int32(factor))
	return sc
}

// candidateFactor selects worker q's communication factor from the two
// hoisted values: the effective n_active is rs.NActive plus one iff picking
// q would newly activate it. Plain mode ignores factors; 0 keeps the cache
// key stable.
func (s *greedySched) candidateFactor(v *sim.View, rs *sim.RoundState, q, factorEngaged, factorFresh int) int {
	if s.mode == plainComm {
		return 0
	}
	if pv := &v.Procs[q]; rs.NQ[q] == 0 && !pv.Busy() {
		return factorFresh
	}
	return factorEngaged
}

// Pick implements sim.Scheduler.
func (s *greedySched) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	if s.noCache || v.Epoch == 0 || len(v.ProcEpochs) != len(v.Procs) {
		best, _ := s.pickFlat(v, eligible, rs)
		return best
	}
	c := s.cache
	if c == nil {
		c = &pickCache{}
		s.cache = c
	}
	c.ensure(len(v.Procs))

	// Both factor values a single Pick can need (corrected modes): per
	// candidate, the effective n_active is rs.NActive plus one iff picking
	// the candidate would newly activate it, so hoist both ceil-divisions.
	var factorEngaged, factorFresh int
	if s.mode != plainComm {
		factorEngaged = commFactor(rs.NActive, v.Params.Ncom)
		factorFresh = commFactor(rs.NActive+1, v.Params.Ncom)
	}

	var best int
	if len(eligible) >= greedyHeapMinEligible {
		best = s.pickHeap(c, v, eligible, rs, factorEngaged, factorFresh)
	} else {
		best = s.pickLinear(c, v, eligible, rs, factorEngaged, factorFresh)
	}
	if v.SlowChecks {
		s.verifyAgainstRescan(c, v, eligible, rs, best)
	}
	return best
}

// pickLinear is the small-slate argmin: one validated pass over the slate —
// per candidate, compare the cached score's recorded inputs against the
// current ones (a handful of integer compares) and re-evaluate only on
// mismatch, tracking the argmin in the same order and traversal as the
// reference scan. Equivalence to pickFlat is structural; the per-decision
// cost is O(changed evaluations + |eligible| compares).
func (s *greedySched) pickLinear(c *pickCache, v *sim.View, eligible []int, rs *sim.RoundState, factorEngaged, factorFresh int) int {
	best := -1
	var bestScore float64
	for _, q := range eligible {
		factor := s.candidateFactor(v, rs, q, factorEngaged, factorFresh)
		sc := s.cachedScore(c, v, rs, q, factor)
		if best < 0 || scoreLess(sc, q, bestScore, best) {
			best, bestScore = q, sc
		}
	}
	return best
}

// pickHeap is the large-slate argmin (see argmin.go): it continues the
// round's heap when only the recorded deltas happened since the previous
// Pick — same view epoch, same pick chain, same factor pair, and a slate
// that is either unchanged (originals phase; the last pick's NQ moved, so
// it is rescored) or exactly the last pick shorter (replica phase; the
// entry is deleted) — and rebuilds it otherwise at linear-pass cost. The
// heap minimum is returned; scoreLess being a strict total order makes it
// the unique linear argmin.
func (s *greedySched) pickHeap(c *pickCache, v *sim.View, eligible []int, rs *sim.RoundState, factorEngaged, factorFresh int) int {
	h := s.argmin
	if h == nil {
		h = &scoreHeap{}
		s.argmin = h
	}
	cont := h.valid && h.epoch == v.Epoch && rs.Picks == h.expectPicks &&
		h.factorEngaged == factorEngaged && h.factorFresh == factorFresh &&
		h.slatePtr == &eligible[0]
	if cont {
		k := h.indexOf(h.lastPick)
		switch {
		case k < 0 || h.pos[k] < 0:
			cont = false
		case len(eligible) == h.slateLen:
			// Originals phase: the slate is unchanged and only the picked
			// worker's NQ (and with it, possibly its factor choice) moved.
			factor := s.candidateFactor(v, rs, h.lastPick, factorEngaged, factorFresh)
			h.update(k, s.cachedScore(c, v, rs, h.lastPick, factor))
		case len(eligible) == h.slateLen-1 && h.pos[k] >= 0 && !slateContains(eligible, h.lastPick):
			// Replica phase: the engine compacted the picked worker out of
			// the slate (order-preserving, so ascending order holds).
			h.delete(k)
			h.slateLen--
		default:
			cont = false
		}
	}
	if !cont {
		h.rebuild(eligible, func(q int) float64 {
			return s.cachedScore(c, v, rs, q, s.candidateFactor(v, rs, q, factorEngaged, factorFresh))
		})
		h.epoch = v.Epoch
		h.factorEngaged, h.factorFresh = factorEngaged, factorFresh
	}
	best := h.minWorker()
	h.lastPick = best
	h.expectPicks = rs.Picks + 1
	return best
}

// slateContains reports whether worker q is on the (ascending) slate.
func slateContains(eligible []int, q int) bool {
	k := sort.SearchInts(eligible, q)
	return k < len(eligible) && eligible[k] == q
}

// verifyAgainstRescan is the full-rescore oracle: with slow checks armed,
// every cached decision is rederived from a fresh scan — the argmin (and
// its exact score bits) plus every valid cache entry on the slate. Any
// divergence means an invalidation site rotted; panic like the engine's
// own slow checks do.
func (s *greedySched) verifyAgainstRescan(c *pickCache, v *sim.View, eligible []int, rs *sim.RoundState, best int) {
	fb, fscore := s.pickFlat(v, eligible, rs)
	bestCached, _, _, _ := c.get(best)
	if fb != best || math.Float64bits(fscore) != math.Float64bits(bestCached) {
		panic(fmt.Sprintf("core: %s: slot %d: incremental argmin (worker %d, score %v) != full rescan (worker %d, score %v)",
			s.name, v.Slot, best, bestCached, fb, fscore))
	}
	for _, q := range eligible {
		factor := 0
		if s.mode != plainComm {
			factor = commFactor(effectiveNActive(&v.Procs[q], rs), v.Params.Ncom)
		}
		cached, ok := s.cachedIfValid(c, v, rs, q, factor)
		if !ok {
			continue
		}
		fresh := s.scoreOf(v, rs, q)
		if math.Float64bits(fresh) != math.Float64bits(cached) {
			panic(fmt.Sprintf("core: %s: slot %d: stale cached score for worker %d: cached %v, fresh %v",
				s.name, v.Slot, q, cached, fresh))
		}
	}
}

// scoreMCT minimizes the estimated completion time itself.
func scoreMCT(_ *sim.ProcView, ct float64) float64 { return ct }

// scoreEMCT minimizes E(CT), the expected number of slots needed to be UP
// during CT slots without going DOWN (Theorem 2). The per-model expectation
// machinery is precomputed in pv.Analytics, so scoring is pure arithmetic.
func scoreEMCT(pv *sim.ProcView, ct float64) float64 {
	return pv.Analytics.ExpectedSlots(ct)
}

// scoreLW maximizes (P+)^CT, computed in log space to survive large CT.
func scoreLW(pv *sim.ProcView, ct float64) float64 {
	a := pv.Analytics
	if a.PPlus <= 0 {
		return math.Inf(1)
	}
	// Maximize ct·ln(P+)  ⇔  minimize ct·(−ln(P+)).
	return ct * a.NegLogPPlus
}

// scoreUD maximizes the approximate P_UD(k) at k = E(CT), in log space:
// minimize −ln P_UD(k) = −ln(1−P(u,d)) − (k−2)·ln(perSlot), with the
// per-slot survival rate and both logarithms cached per model.
func scoreUD(pv *sim.ProcView, ct float64) float64 {
	a := pv.Analytics
	return a.UDScore(a.ExpectedSlots(ct))
}

func greedyScore(base string) func(*sim.ProcView, float64) float64 {
	switch base {
	case "mct":
		return scoreMCT
	case "emct":
		return scoreEMCT
	case "lw":
		return scoreLW
	case "ud":
		return scoreUD
	default:
		panic("core: unknown greedy base " + base)
	}
}

// NewGreedy builds a greedy heuristic from its base name ("mct", "emct",
// "lw", "ud") and correction mode suffix: "" = Equation 1, "*" = Equation 2,
// "+" = the aggressive extension (non-paper; see correctionMode).
func NewGreedy(base string, mode correctionMode) sim.Scheduler {
	suffix := ""
	switch mode {
	case eq2Comm:
		suffix = "*"
	case aggressiveComm:
		suffix = "+"
	}
	return &greedySched{name: base + suffix, mode: mode, score: greedyScore(base)}
}

// NewMCT returns the MCT heuristic (Section 6.3.1): minimize the estimated
// completion time CT(P_q, n_q+1) of Equation 1. corrected=true yields MCT*
// (Equation 2).
func NewMCT(corrected bool) sim.Scheduler { return NewGreedy("mct", modeOf(corrected)) }

// NewEMCT returns the EMCT heuristic; corrected=true yields EMCT*.
func NewEMCT(corrected bool) sim.Scheduler { return NewGreedy("emct", modeOf(corrected)) }

// NewLW returns the LW ("Likely to Work") heuristic (Section 6.3.2);
// corrected=true yields LW*.
func NewLW(corrected bool) sim.Scheduler { return NewGreedy("lw", modeOf(corrected)) }

// NewUD returns the UD ("Unlikely Down") heuristic (Section 6.3.3);
// corrected=true yields UD*.
func NewUD(corrected bool) sim.Scheduler { return NewGreedy("ud", modeOf(corrected)) }

func modeOf(corrected bool) correctionMode {
	if corrected {
		return eq2Comm
	}
	return plainComm
}

// NewRiskAverse returns an extension heuristic (not in the paper): it
// minimizes E(CT) + λ·σ(CT), penalizing processors whose conditioned
// completion times are *volatile*, not just long. σ comes from the
// closed-form variance of Theorem 2's walk (expect.StdDevSlots). λ = 0
// degenerates to EMCT.
func NewRiskAverse(lambda float64) sim.Scheduler {
	if lambda < 0 {
		lambda = 0
	}
	return &greedySched{
		name: "remct",
		mode: plainComm,
		score: func(pv *sim.ProcView, ct float64) float64 {
			a := pv.Analytics
			return a.ExpectedSlots(ct) + lambda*a.StdDevSlots(ct)
		},
	}
}
