package core

import (
	"repro/internal/avail"
	"repro/internal/sim"
)

// proactiveSched realizes the paper's third heuristic class (Section 6.1):
// a scheduler "allowing for the possibility of aggressively terminating
// ongoing tasks". The paper argues this mainly matters when the last tasks
// of an iteration sit on slow processors and m is small, and opts for
// replication instead; implementing the class lets the ablation benchmarks
// test that argument.
//
// Placement follows EMCT. Cancellation rule, evaluated every slot (see Cancel):
// a busy processor's pipeline is aborted when the expected time for it to
// finish its begun work exceeds `factor` times the expected time a currently
// idle UP processor would need to redo that work from scratch. The factor
// (> 1) provides hysteresis against cancellation thrash.
type proactiveSched struct {
	sim.Scheduler
	factor float64
}

// NewProactive wraps an inner heuristic with proactive cancellation.
// factor > 1 controls how much better the alternative must be; 1.5 is a
// reasonable default.
func NewProactive(inner sim.Scheduler, factor float64) sim.Scheduler {
	if factor < 1 {
		factor = 1
	}
	return &proactiveSched{Scheduler: inner, factor: factor}
}

// Name implements sim.Scheduler.
func (s *proactiveSched) Name() string { return "proactive-" + s.Scheduler.Name() }

// PoolSafe implements sim.Poolable: the wrapper itself is stateless, so
// reuse is safe exactly when the inner heuristic's reuse is. (Embedding
// does not promote Poolable — it is not part of the Scheduler interface —
// hence the explicit delegation.)
func (s *proactiveSched) PoolSafe() bool { return sim.PoolSafe(s.Scheduler) }

// Cancel implements sim.Canceller.
func (s *proactiveSched) Cancel(v *sim.View) []int {
	// Expected fresh-start completion on the best idle UP processor.
	bestAlt, haveAlt := 0.0, false
	for i := range v.Procs {
		pv := &v.Procs[i]
		if pv.State != avail.Up || pv.Busy() {
			continue
		}
		alt := pv.Analytics.ExpectedSlots(float64(CT(pv, 1, v.Params.Tdata)))
		if !haveAlt || alt < bestAlt {
			bestAlt, haveAlt = alt, true
		}
	}
	if !haveAlt {
		return nil
	}
	var cancels []int
	// One cancellation per slot keeps the rule conservative: the freed task
	// re-enters this round's assignment and claims the idle processor.
	worstIdx, worstRem := -1, 0.0
	for i := range v.Procs {
		pv := &v.Procs[i]
		if !pv.Busy() || pv.State == avail.Down {
			continue
		}
		rem := pv.Analytics.ExpectedSlots(float64(Delay(pv)))
		if pv.State == avail.Reclaimed {
			// Add the expected remainder of the current RECLAIMED sojourn.
			prr := pv.Model.P(avail.Reclaimed, avail.Reclaimed)
			if prr < 1 {
				rem += 1 / (1 - prr)
			}
		}
		if rem > s.factor*bestAlt && rem > worstRem {
			worstIdx, worstRem = i, rem
		}
	}
	if worstIdx >= 0 {
		cancels = append(cancels, worstIdx)
	}
	return cancels
}
