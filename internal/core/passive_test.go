package core

import (
	"testing"

	"repro/internal/avail"
	"repro/internal/sim"
)

// scriptedInner is a deterministic inner heuristic recording its calls.
type scriptedInner struct {
	picks []int
	calls int
}

func (s *scriptedInner) Name() string { return "scripted" }
func (s *scriptedInner) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	p := s.picks[s.calls%len(s.picks)]
	s.calls++
	return p
}

func passiveView(states ...avail.State) *sim.View {
	prm := params(5, 1, 1)
	v := &sim.View{Params: prm, Procs: make([]sim.ProcView, len(states))}
	for i, st := range states {
		v.Procs[i] = sim.ProcView{ID: i, W: 1, State: st, Model: reliableModel()}
	}
	v.FillAnalytics()
	return v
}

func TestPassiveKeepsCommitmentWhileUp(t *testing.T) {
	inner := &scriptedInner{picks: []int{1, 0}}
	s := NewPassive(inner)
	v := passiveView(avail.Up, avail.Up)
	rs := freshRound(2)
	ti := sim.TaskInfo{Task: 0}
	if got := s.Pick(v, []int{0, 1}, rs, ti); got != 1 {
		t.Fatalf("first pick %d, want inner's 1", got)
	}
	// Same task next slot: the commitment holds without consulting inner.
	before := inner.calls
	if got := s.Pick(v, []int{0, 1}, rs, ti); got != 1 {
		t.Fatal("commitment not kept")
	}
	if inner.calls != before {
		t.Fatal("inner consulted despite live commitment")
	}
}

func TestPassiveWaitsOutReclaimed(t *testing.T) {
	inner := &scriptedInner{picks: []int{1}}
	s := NewPassive(inner)
	ti := sim.TaskInfo{Task: 0}
	// Commit to processor 1 while it is UP.
	v := passiveView(avail.Up, avail.Up)
	if got := s.Pick(v, []int{0, 1}, freshRound(2), ti); got != 1 {
		t.Fatal("setup pick failed")
	}
	// Processor 1 reclaimed: passive declines rather than moving the task.
	v = passiveView(avail.Up, avail.Reclaimed)
	if got := s.Pick(v, []int{0}, freshRound(2), ti); got != sim.Decline {
		t.Fatalf("pick during reclaim = %d, want Decline", got)
	}
	// Back UP: the commitment resumes.
	v = passiveView(avail.Up, avail.Up)
	if got := s.Pick(v, []int{0, 1}, freshRound(2), ti); got != 1 {
		t.Fatal("commitment lost after reclaim")
	}
}

func TestPassiveRepicksAfterCrash(t *testing.T) {
	inner := &scriptedInner{picks: []int{1, 0}}
	s := NewPassive(inner)
	ti := sim.TaskInfo{Task: 0}
	v := passiveView(avail.Up, avail.Up)
	if got := s.Pick(v, []int{0, 1}, freshRound(2), ti); got != 1 {
		t.Fatal("setup pick failed")
	}
	// Processor 1 crashed: the commitment is void; inner picks 0.
	v = passiveView(avail.Up, avail.Down)
	if got := s.Pick(v, []int{0}, freshRound(2), ti); got != 0 {
		t.Fatalf("post-crash pick = %d, want 0", got)
	}
	// The new commitment sticks.
	v = passiveView(avail.Up, avail.Down)
	before := inner.calls
	if got := s.Pick(v, []int{0}, freshRound(2), ti); got != 0 || inner.calls != before {
		t.Fatal("new commitment not kept")
	}
}

func TestPassiveResetsAcrossIterations(t *testing.T) {
	inner := &scriptedInner{picks: []int{1, 0}}
	s := NewPassive(inner)
	ti := sim.TaskInfo{Task: 0}
	v := passiveView(avail.Up, avail.Up)
	v.Iteration = 0
	if got := s.Pick(v, []int{0, 1}, freshRound(2), ti); got != 1 {
		t.Fatal("iteration-0 pick failed")
	}
	// New iteration: task 0 is a different task; inner is consulted again.
	v2 := passiveView(avail.Up, avail.Up)
	v2.Iteration = 1
	if got := s.Pick(v2, []int{0, 1}, freshRound(2), ti); got != 0 {
		t.Fatalf("iteration-1 pick = %d, want fresh inner pick 0", got)
	}
}

func TestPassiveDelegatesReplicas(t *testing.T) {
	inner := &scriptedInner{picks: []int{0}}
	s := NewPassive(inner)
	v := passiveView(avail.Up, avail.Up)
	ti := sim.TaskInfo{Task: 3, Replica: true, Copies: 1}
	if got := s.Pick(v, []int{0, 1}, freshRound(2), ti); got != 0 {
		t.Fatal("replica pick not delegated")
	}
	// Replica picks must not create commitments for the original.
	tiOrig := sim.TaskInfo{Task: 3}
	inner.picks = []int{1}
	inner.calls = 0
	if got := s.Pick(v, []int{0, 1}, freshRound(2), tiOrig); got != 1 {
		t.Fatal("replica pick leaked into original commitment")
	}
}

func TestPassiveName(t *testing.T) {
	if got := NewPassive(NewMCT(false)).Name(); got != "passive-mct" {
		t.Fatalf("name = %q", got)
	}
}

// TestPassiveDropsCommitsAcrossRuns is the regression test for the pooled
// (or registry-shared) reuse leak: a scheduler instance serving a second
// run whose first view has the SAME iteration index as the previous run's
// last-seen one used to keep the stale commit map, silently replaying the
// previous trial's placements. Run boundaries are now detected through
// View.Run (unique per engine run), which the iteration check alone cannot
// see.
func TestPassiveDropsCommitsAcrossRuns(t *testing.T) {
	inner := &scriptedInner{picks: []int{1, 0}}
	s := NewPassive(inner)
	ti := sim.TaskInfo{Task: 0}

	// Run 1 (Run stamp 7), iteration 0: commit to processor 1.
	v := passiveView(avail.Up, avail.Up)
	v.Run, v.Iteration = 7, 0
	if got := s.Pick(v, []int{0, 1}, freshRound(2), ti); got != 1 {
		t.Fatal("run-1 pick failed")
	}

	// Run 2 (Run stamp 8) begins, also at iteration 0. The stale commitment
	// to processor 1 must be gone: the inner heuristic is consulted afresh
	// and its pick (0) wins.
	v2 := passiveView(avail.Up, avail.Up)
	v2.Run, v2.Iteration = 8, 0
	before := inner.calls
	if got := s.Pick(v2, []int{0, 1}, freshRound(2), ti); got != 0 {
		t.Fatalf("run-2 pick = %d, want fresh inner pick 0 (stale commit replayed)", got)
	}
	if inner.calls != before+1 {
		t.Fatal("inner not consulted at the run boundary")
	}
}

// TestPassiveDeclinesWhenCommitIneligible is the regression test for the
// protocol hole: an UP committed processor that is absent from the eligible
// slate (pipeline-full under an engine variant, or an external driver's
// restriction) used to be returned anyway, which the engine rejects as a
// run-aborting protocol violation. Passive must wait (Decline) instead,
// exactly as it does for RECLAIMED commitments.
func TestPassiveDeclinesWhenCommitIneligible(t *testing.T) {
	inner := &scriptedInner{picks: []int{1}}
	s := NewPassive(inner)
	ti := sim.TaskInfo{Task: 0}
	v := passiveView(avail.Up, avail.Up)
	if got := s.Pick(v, []int{0, 1}, freshRound(2), ti); got != 1 {
		t.Fatal("setup pick failed")
	}
	// Processor 1 is still UP but no longer offered.
	if got := s.Pick(v, []int{0}, freshRound(2), ti); got != sim.Decline {
		t.Fatalf("pick with ineligible UP commitment = %d, want Decline", got)
	}
	// Offered again: the commitment resumes without consulting inner.
	before := inner.calls
	if got := s.Pick(v, []int{0, 1}, freshRound(2), ti); got != 1 || inner.calls != before {
		t.Fatal("commitment lost after an ineligible slot")
	}
}

// TestPassivePoolSafety pins the reuse opt-in chain: passive (and
// proactive) report pool safety exactly when their inner heuristic does.
func TestPassivePoolSafety(t *testing.T) {
	if !sim.PoolSafe(NewPassive(NewMCT(false))) {
		t.Fatal("passive over a greedy inner must be pool-safe")
	}
	if !sim.PoolSafe(NewProactive(NewEMCT(false), 1.5)) {
		t.Fatal("proactive over a greedy inner must be pool-safe")
	}
	if sim.PoolSafe(NewPassive(&scriptedInner{picks: []int{0}})) {
		t.Fatal("passive over a non-poolable inner must not claim pool safety")
	}
}
