package core

import (
	"repro/internal/avail"
	"repro/internal/sim"
)

// passiveSched realizes the paper's "passive" heuristic class (Section 6.1):
// each task is assigned once, by an inner heuristic, and the choice is kept
// as long as the chosen processor has not gone DOWN — even while it sits
// RECLAIMED. Only a crash of the committed processor triggers a new choice.
//
// The paper argues this class "does not make sense" compared to the dynamic
// class; implementing it lets the ablation benchmarks quantify that claim.
// Replicas are delegated to the inner heuristic unchanged (replication
// already targets only idle UP processors).
type passiveSched struct {
	inner sim.Scheduler
	// commit[task] is the processor committed to in the current iteration.
	commit map[int]int
	// run/iteration track commit-map validity: task IDs reset each
	// iteration, and a pooled/registry-shared instance may be handed a
	// fresh run whose first iteration index equals the stale one, so the
	// run stamp (View.Run, unique per engine run) is checked first.
	run       int64
	iteration int
	started   bool
}

// NewPassive wraps an inner heuristic with passive (assign-once) semantics.
func NewPassive(inner sim.Scheduler) sim.Scheduler {
	return &passiveSched{inner: inner, commit: make(map[int]int)}
}

// Name implements sim.Scheduler.
func (s *passiveSched) Name() string { return "passive-" + s.inner.Name() }

// PoolSafe implements sim.Poolable: the commit map is dropped at every run
// boundary (View.Run), so reuse is safe exactly when the inner heuristic's
// reuse is.
func (s *passiveSched) PoolSafe() bool { return sim.PoolSafe(s.inner) }

// Pick implements sim.Scheduler.
func (s *passiveSched) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	if !s.started || v.Run != s.run || v.Iteration != s.iteration {
		clear(s.commit)
		s.run = v.Run
		s.iteration = v.Iteration
		s.started = true
	}
	if ti.Replica {
		return s.inner.Pick(v, eligible, rs, ti)
	}
	if q, ok := s.commit[ti.Task]; ok {
		switch v.Procs[q].State {
		case avail.Up:
			// Honor the commitment only if the engine actually offers the
			// processor this call: an UP processor can still be ineligible
			// (e.g. its pipeline is full during a replica-less engine
			// variant, or an external driver restricts the slate), and
			// returning it would be a protocol violation the engine rejects
			// as a run error. Wait instead, like the RECLAIMED case.
			for _, e := range eligible {
				if e == q {
					return q
				}
			}
			return sim.Decline
		case avail.Reclaimed:
			// Wait for the committed processor to come back.
			return sim.Decline
		default:
			// DOWN: the commitment is void; fall through to re-pick.
		}
	}
	q := s.inner.Pick(v, eligible, rs, ti)
	if q != sim.Decline {
		s.commit[ti.Task] = q
	}
	return q
}
