package core

import (
	"testing"

	"repro/internal/avail"
	"repro/internal/sim"
)

func TestProactiveCancelsSlowCommitment(t *testing.T) {
	s := NewProactive(NewEMCT(false), 1.5).(*proactiveSched)
	prm := params(5, 2, 1)
	// Worker 0: busy computing with 50 slots left on a flaky model.
	// Worker 1: idle UP, fast and with the program: fresh start ~ 1+1+... small.
	v := &sim.View{Params: prm, Procs: []sim.ProcView{
		{ID: 0, W: 50, State: avail.Up, Model: flakyModel(),
			HasComputing: true, ComputingRem: 50},
		{ID: 1, W: 2, State: avail.Up, Model: reliableModel(), RemProgram: 0},
	}}
	v.FillAnalytics()
	cancels := s.Cancel(v)
	if len(cancels) != 1 || cancels[0] != 0 {
		t.Fatalf("Cancel = %v, want [0]", cancels)
	}
}

func TestProactiveKeepsReasonableCommitments(t *testing.T) {
	s := NewProactive(NewEMCT(false), 1.5).(*proactiveSched)
	prm := params(5, 10, 2)
	// The busy worker is nearly done; the idle alternative must redo
	// program + data + compute — no cancellation.
	v := &sim.View{Params: prm, Procs: []sim.ProcView{
		{ID: 0, W: 5, State: avail.Up, Model: reliableModel(),
			HasComputing: true, ComputingRem: 2},
		{ID: 1, W: 5, State: avail.Up, Model: reliableModel(), RemProgram: 10},
	}}
	v.FillAnalytics()
	if cancels := s.Cancel(v); len(cancels) != 0 {
		t.Fatalf("Cancel = %v, want none", cancels)
	}
}

func TestProactiveNeedsIdleAlternative(t *testing.T) {
	s := NewProactive(NewEMCT(false), 1.5).(*proactiveSched)
	prm := params(5, 2, 1)
	// No idle UP processor: never cancel.
	v := &sim.View{Params: prm, Procs: []sim.ProcView{
		{ID: 0, W: 50, State: avail.Up, Model: flakyModel(),
			HasComputing: true, ComputingRem: 50},
		{ID: 1, W: 1, State: avail.Reclaimed, Model: reliableModel()},
	}}
	v.FillAnalytics()
	if cancels := s.Cancel(v); len(cancels) != 0 {
		t.Fatalf("Cancel without alternative = %v", cancels)
	}
}

func TestProactiveCancelsAtMostOnePerSlot(t *testing.T) {
	s := NewProactive(NewEMCT(false), 1.5).(*proactiveSched)
	prm := params(5, 2, 1)
	v := &sim.View{Params: prm, Procs: []sim.ProcView{
		{ID: 0, W: 80, State: avail.Up, Model: flakyModel(), HasComputing: true, ComputingRem: 80},
		{ID: 1, W: 60, State: avail.Up, Model: flakyModel(), HasComputing: true, ComputingRem: 60},
		{ID: 2, W: 2, State: avail.Up, Model: reliableModel()},
	}}
	v.FillAnalytics()
	cancels := s.Cancel(v)
	if len(cancels) != 1 {
		t.Fatalf("Cancel = %v, want exactly one", cancels)
	}
	if cancels[0] != 0 {
		t.Fatalf("should cancel the worst pipeline (0), got %v", cancels)
	}
}

func TestProactiveFactorClamp(t *testing.T) {
	s := NewProactive(NewEMCT(false), 0.2).(*proactiveSched)
	if s.factor != 1 {
		t.Fatalf("factor = %v, want clamped to 1", s.factor)
	}
	if s.Name() != "proactive-emct" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestProactiveRunsCompleteAndCancel(t *testing.T) {
	// Integration via registry happens in the root package tests; here just
	// assert the Canceller interface is actually implemented.
	var sched sim.Scheduler = NewProactive(NewEMCT(false), 1.5)
	if _, ok := sched.(sim.Canceller); !ok {
		t.Fatal("proactive scheduler does not implement sim.Canceller")
	}
}
