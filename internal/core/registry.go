package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Factory builds a fresh scheduler instance. Heuristics that randomize take
// their stream from r; deterministic heuristics ignore it. A new instance
// must be created per simulation run.
type Factory func(r *rng.PCG) sim.Scheduler

// regMu guards registry. The paper heuristics register at init time, but
// extensions and test doubles may register from arbitrary goroutines (e.g.
// per-sweep registration while another sweep validates names), so every map
// access takes the lock.
var regMu sync.RWMutex

// registry maps heuristic names to factories. Names follow the paper's
// Table 2 spelling in lower case: random, random1..random4 (+"w" variants),
// mct, mct*, emct, emct*, lw, lw*, ud, ud*.
var registry = map[string]Factory{
	"random": func(r *rng.PCG) sim.Scheduler { return NewRandom(r) },

	"mct":   func(*rng.PCG) sim.Scheduler { return NewMCT(false) },
	"mct*":  func(*rng.PCG) sim.Scheduler { return NewMCT(true) },
	"emct":  func(*rng.PCG) sim.Scheduler { return NewEMCT(false) },
	"emct*": func(*rng.PCG) sim.Scheduler { return NewEMCT(true) },
	"lw":    func(*rng.PCG) sim.Scheduler { return NewLW(false) },
	"lw*":   func(*rng.PCG) sim.Scheduler { return NewLW(true) },
	"ud":    func(*rng.PCG) sim.Scheduler { return NewUD(false) },
	"ud*":   func(*rng.PCG) sim.Scheduler { return NewUD(true) },

	// Extensions (not in the paper, excluded from Names()): the "+"
	// variants additionally apply the contention slowdown to the
	// communication remainders inside Delay. Used by ablation studies.
	"mct+":  func(*rng.PCG) sim.Scheduler { return NewGreedy("mct", aggressiveComm) },
	"emct+": func(*rng.PCG) sim.Scheduler { return NewGreedy("emct", aggressiveComm) },
	"lw+":   func(*rng.PCG) sim.Scheduler { return NewGreedy("lw", aggressiveComm) },
	"ud+":   func(*rng.PCG) sim.Scheduler { return NewGreedy("ud", aggressiveComm) },

	// The passive class of Section 6.1 (assign once, re-assign only on
	// crashes), for the ablation quantifying the paper's argument that
	// dynamic re-planning is necessary. Excluded from Names().
	"passive-mct":    func(*rng.PCG) sim.Scheduler { return NewPassive(NewMCT(false)) },
	"passive-emct":   func(*rng.PCG) sim.Scheduler { return NewPassive(NewEMCT(false)) },
	"passive-ud":     func(*rng.PCG) sim.Scheduler { return NewPassive(NewUD(false)) },
	"passive-random": func(r *rng.PCG) sim.Scheduler { return NewPassive(NewRandom(r)) },

	// The proactive class of Section 6.1 (aggressively terminate ongoing
	// work when a much better processor is idle), for the ablation testing
	// the paper's claim that replication subsumes it. Excluded from Names().
	"proactive-emct": func(*rng.PCG) sim.Scheduler { return NewProactive(NewEMCT(false), 1.5) },
	"proactive-mct":  func(*rng.PCG) sim.Scheduler { return NewProactive(NewMCT(false), 1.5) },

	// Risk-averse EMCT (extension): minimize E(CT) + σ(CT), using the
	// closed-form variance of the conditioned completion time.
	"remct": func(*rng.PCG) sim.Scheduler { return NewRiskAverse(1) },

	// Deadline-probability heuristic (extension): maximize the probability
	// of finishing the estimated workload within 1.5× the best candidate's
	// CT, using the full completion-time distribution.
	"deadline": func(*rng.PCG) sim.Scheduler { return NewDeadline(1.5) },
}

func init() {
	for idx := 1; idx <= 4; idx++ {
		for _, bySpeed := range []bool{false, true} {
			idx, bySpeed := idx, bySpeed
			name := fmt.Sprintf("random%d", idx)
			if bySpeed {
				name += "w"
			}
			registry[name] = func(r *rng.PCG) sim.Scheduler {
				s, err := NewWeightedRandom(idx, bySpeed, r)
				if err != nil {
					panic(err) // unreachable: idx is 1..4 by construction
				}
				return s
			}
		}
	}
}

// Register adds (or replaces) a heuristic factory under the given name,
// making it reachable through New and the sweep API. Paper heuristics are
// pre-registered; Register exists for extensions and test doubles. It is
// safe for concurrent use with Lookup, New, and the sweep API.
func Register(name string, f Factory) error {
	if name == "" || f == nil {
		return fmt.Errorf("core: Register needs a name and a factory")
	}
	regMu.Lock()
	registry[name] = f
	regMu.Unlock()
	return nil
}

// Lookup returns the factory registered under name without instantiating a
// scheduler. It is the cheap existence check sweep validation performs
// before committing to a run. Safe for concurrent use with Register.
func Lookup(name string) (Factory, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown heuristic %q (see core.Names)", name)
	}
	return f, nil
}

// New instantiates the named heuristic.
func New(name string, r *rng.PCG) (sim.Scheduler, error) {
	f, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return f(r), nil
}

// Names lists every registered heuristic in the paper's Table 2 order
// (greedy families first, then the random family).
func Names() []string {
	return []string{
		"emct", "emct*", "mct", "mct*", "ud*", "ud", "lw*", "lw",
		"random1w", "random2w", "random4w", "random3w",
		"random3", "random4", "random1", "random2", "random",
	}
}

// GreedyNames lists the greedy heuristics (the ones Figure 2 plots, plus
// their uncorrected counterparts).
func GreedyNames() []string {
	return []string{"mct", "mct*", "emct", "emct*", "lw", "lw*", "ud", "ud*"}
}

// AllNamesSorted lists every registered name alphabetically (for CLIs).
// Safe for concurrent use with Register.
func AllNamesSorted() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}
