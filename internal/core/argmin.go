package core

import "sort"

// This file is the large-slate argmin of the greedy family: an indexed
// binary min-heap under scoreLess. The linear argmin pass in Pick costs
// O(|eligible|) per decision, which is fine at paper scale (P = 20) but
// dominates a volunteer-grid round planning m tasks over thousands of UP
// workers — O(m·P) per slot. The heap makes the first decision of a round
// O(P) (one rebuild, same cost as a single linear pass) and each subsequent
// decision O(log P): between two Picks of the same round, the only score
// that can change is the last-picked worker's (its NQ moved, and in the
// corrected modes possibly the shared communication factors, which force a
// rebuild when they move).
//
// PR 5 profiled exactly this structure at P = 20 and dropped it: the heap
// bookkeeping cost ~10x the score evaluations it avoided. It therefore
// engages only when the slate reaches greedyHeapMinEligible; below that,
// Pick keeps the linear pass. scoreLess is a strict total order, so the
// heap minimum IS the linear argmin — pick-for-pick identical, which the
// equivalence property tests pin by forcing the threshold to 1.

// greedyHeapMinEligible is the slate size at which Pick switches from the
// linear argmin to the heap. Measured crossover (BenchmarkGreedyArgmin):
// the heap's rebuild is as cheap as one linear pass, but its win needs
// several same-round Picks over a slate large enough that O(log n)
// resifts beat O(n) rescans; 128 is comfortably past the crossover and far
// below volunteer-grid slates. A package variable so tests can force the
// heap path on small slates.
var greedyHeapMinEligible = 128

// scoreHeap is an indexed binary min-heap over a build-time copy of the
// eligible slate. Entries are slate indices (into the copy, which is
// stable for the heap's lifetime even though the engine compacts its own
// slate between replica picks); pos tracks each entry's heap position so
// rescoring or deleting one entry is O(log n).
//
// Continuation state: a heap built during one Pick remains valid for the
// next exactly when nothing outside the recorded deltas changed. The
// anchors are the view epoch (constant within a scheduling round, bumped
// by every buildView), the slate identity (backing-array pointer plus
// length: same length = originals phase, one shorter = the engine's
// order-preserving removal of the picked worker in the replica phase), the
// round's pick count (a missed or foreign pick breaks the chain), and the
// two hoisted communication factors (a factor move invalidates every
// engaged candidate at once, so the heap rebuilds).
type scoreHeap struct {
	slate []int     // ascending worker IDs, copied at rebuild
	score []float64 // score[k] of slate[k]
	heap  []int32   // heap of slate indices
	pos   []int32   // pos[k]: heap position of slate index k, -1 = deleted

	valid                      bool
	epoch                      int64
	slatePtr                   *int
	slateLen                   int
	expectPicks                int
	lastPick                   int
	factorEngaged, factorFresh int
}

func (h *scoreHeap) less(a, b int32) bool {
	return scoreLess(h.score[a], h.slate[a], h.score[b], h.slate[b])
}

func (h *scoreHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *scoreHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *scoreHeap) siftDown(i int) {
	n := len(h.heap)
	for {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < n && h.less(h.heap[left], h.heap[least]) {
			least = left
		}
		if right < n && h.less(h.heap[right], h.heap[least]) {
			least = right
		}
		if least == i {
			return
		}
		h.swap(i, least)
		i = least
	}
}

// rebuild reloads the heap from the current slate, scoring every candidate
// through score (the cache-validated evaluation, so unchanged workers cost
// a few integer compares). O(n) — the same as one linear Pick.
func (h *scoreHeap) rebuild(eligible []int, score func(q int) float64) {
	n := len(eligible)
	h.slate = append(h.slate[:0], eligible...)
	h.score = h.score[:0]
	h.heap = h.heap[:0]
	h.pos = h.pos[:0]
	for k, q := range eligible {
		h.score = append(h.score, score(q))
		h.heap = append(h.heap, int32(k))
		h.pos = append(h.pos, int32(k))
	}
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	h.slatePtr = &eligible[0]
	h.slateLen = n
	h.valid = true
}

// indexOf locates worker q in the build slate (ascending, so binary
// search), or -1.
func (h *scoreHeap) indexOf(q int) int {
	k := sort.SearchInts(h.slate, q)
	if k < len(h.slate) && h.slate[k] == q {
		return k
	}
	return -1
}

// update rescores slate index k and restores the heap order.
func (h *scoreHeap) update(k int, score float64) {
	h.score[k] = score
	i := int(h.pos[k])
	h.siftDown(i)
	h.siftUp(int(h.pos[k]))
}

// delete removes slate index k from the heap (the engine removed its worker
// from the slate).
func (h *scoreHeap) delete(k int) {
	i := int(h.pos[k])
	last := len(h.heap) - 1
	h.swap(i, last)
	h.heap = h.heap[:last]
	h.pos[k] = -1
	if i < last {
		// Fix position i for the swapped-in entry: at most one of the two
		// sifts moves (a descendant promoted by siftDown already satisfies
		// the upward order).
		h.siftDown(i)
		h.siftUp(int(h.pos[h.heap[i]]))
	}
}

// minWorker returns the worker holding the heap minimum — the unique
// scoreLess argmin over the live entries.
func (h *scoreHeap) minWorker() int { return h.slate[h.heap[0]] }
