package core

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/avail"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sim"
)

// randomPickScenario materializes one random small scenario deterministically
// from seed, with the given scheduler. Contention-prone parameters (small
// ncom relative to m) are drawn on purpose: evaporated plans are what make a
// worker's NQ entry change while its view snapshot does not, which is the
// subtle half of the cache-invalidation contract.
func randomPickScenario(t *testing.T, seed uint64, sched sim.Scheduler) sim.Config {
	t.Helper()
	r := rng.New(seed)
	p := 2 + r.Intn(8)
	wmin := 1 + r.Intn(4)
	pl := platform.RandomPlatform(r, p, wmin)
	prm := platform.Params{
		M:           1 + r.Intn(10),
		Iterations:  1 + r.Intn(3),
		Ncom:        1 + r.Intn(3),
		Tprog:       r.Intn(10),
		Tdata:       r.Intn(4),
		MaxReplicas: r.Intn(3),
		MaxSlots:    300000,
	}
	procs := make([]avail.Process, pl.P())
	for i, proc := range pl.Processors {
		procs[i] = proc.Avail.NewProcess(r.Split(), proc.Avail.SampleStationary(r))
	}
	return sim.Config{Platform: pl, Params: prm, Procs: procs, Scheduler: sched}
}

// pickRecorder wraps a scheduler and logs every (slot, task, replica, pick)
// decision, so two runs can be compared pick for pick rather than only
// through their event streams.
type pickRecorder struct {
	inner sim.Scheduler
	log   [][4]int
}

func (p *pickRecorder) Name() string { return p.inner.Name() }
func (p *pickRecorder) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	q := p.inner.Pick(v, eligible, rs, ti)
	rep := 0
	if ti.Replica {
		rep = 1
	}
	p.log = append(p.log, [4]int{v.Slot, ti.Task, rep, q})
	return q
}

// greedyVariants lists every greedy construction the incremental layer
// covers: the paper family in all three correction modes plus the
// risk-averse extension (which shares greedySched).
func greedyVariants() map[string]func() *greedySched {
	out := map[string]func() *greedySched{}
	for _, base := range []string{"mct", "emct", "lw", "ud"} {
		for _, mode := range []correctionMode{plainComm, eq2Comm, aggressiveComm} {
			base, mode := base, mode
			name := fmt.Sprintf("%s-mode%d", base, mode)
			out[name] = func() *greedySched {
				return NewGreedy(base, mode).(*greedySched)
			}
		}
	}
	out["remct"] = func() *greedySched { return NewRiskAverse(1).(*greedySched) }
	return out
}

// TestGreedyPickStreamMatchesFlat is the equivalence property test of the
// incremental scoring layer: for random scenarios, a cached greedy scheduler
// and the plain full-scan scheduler must make the identical pick at every
// single decision — compared pick for pick, event for event, and on the
// final result.
func TestGreedyPickStreamMatchesFlat(t *testing.T) {
	variants := greedyVariants()
	names := make([]string, 0, len(variants))
	for name := range variants {
		names = append(names, name)
	}

	runOnce := func(seed uint64, s *greedySched) (*sim.Result, []sim.Event, [][4]int) {
		rec := &pickRecorder{inner: s}
		cfg := randomPickScenario(t, seed, rec)
		var events []sim.Event
		cfg.OnEvent = func(ev sim.Event) { events = append(events, ev) }
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d %s: %v", seed, s.Name(), err)
		}
		return res, events, rec.log
	}

	f := func(seed uint64, pickV uint8) bool {
		name := names[int(pickV)%len(names)]
		cached := variants[name]()
		flat := variants[name]()
		flat.noCache = true
		resC, evC, picksC := runOnce(seed, cached)
		resF, evF, picksF := runOnce(seed, flat)
		if !reflect.DeepEqual(picksC, picksF) {
			t.Logf("seed %d %s: pick streams diverge (%d vs %d picks)",
				seed, name, len(picksC), len(picksF))
			for i := range picksC {
				if i < len(picksF) && picksC[i] != picksF[i] {
					t.Logf("  first divergence at decision %d: cached %v, flat %v",
						i, picksC[i], picksF[i])
					break
				}
			}
			return false
		}
		if !reflect.DeepEqual(resC, resF) || !reflect.DeepEqual(evC, evF) {
			t.Logf("seed %d %s: results or event streams diverge", seed, name)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyCacheSurvivesRunnerReuse pins pooled-scheduler semantics: ONE
// cached scheduler instance serving many runs back to back (different
// platforms, different shapes) must keep matching a fresh flat scheduler
// run for run. This is the reuse pattern volatile.Runner's scheduler pool
// creates, and it exercises the cross-run invalidation story (globally
// unique change epochs).
func TestGreedyCacheSurvivesRunnerReuse(t *testing.T) {
	cached := NewGreedy("emct", eq2Comm).(*greedySched)
	runner := sim.NewRunner()
	flatRunner := sim.NewRunner()
	for seed := uint64(500); seed < 540; seed++ {
		recC := &pickRecorder{inner: cached}
		cfgC := randomPickScenario(t, seed, recC)
		resC, err := runner.Run(cfgC)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		flat := NewGreedy("emct", eq2Comm).(*greedySched)
		flat.noCache = true
		recF := &pickRecorder{inner: flat}
		cfgF := randomPickScenario(t, seed, recF)
		resF, err := flatRunner.Run(cfgF)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(recC.log, recF.log) || !reflect.DeepEqual(resC, resF) {
			t.Fatalf("seed %d: reused cached scheduler diverges from fresh flat scheduler", seed)
		}
	}
}

// TestGreedySlowCheckOracleHolds arms the full-rescore oracle over random
// scenarios for every registered heuristic: each incremental decision is
// re-derived from a fresh scan inside Pick, and every engine structure is
// verified by the engine's own slow checks. Any rot in the invalidation
// contract panics the run.
func TestGreedySlowCheckOracleHolds(t *testing.T) {
	names := append(Names(),
		"mct+", "emct+", "lw+", "ud+", "remct", "deadline",
		"passive-emct", "passive-mct", "proactive-emct", "proactive-mct")
	runner := sim.NewRunner()
	runner.EnableSlowChecks()
	for i, name := range names {
		for seed := uint64(0); seed < 12; seed++ {
			sched, err := New(name, rng.New(seed+uint64(i)<<16))
			if err != nil {
				t.Fatal(err)
			}
			cfg := randomPickScenario(t, seed*31+uint64(i), sched)
			if _, err := runner.Run(cfg); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

// mutatedRunPanics runs one slow-checked scenario with a deliberately broken
// cache-invalidation source and reports whether the oracle caught it.
func mutatedRunPanics(t *testing.T, seed uint64, s *greedySched) (caught bool) {
	t.Helper()
	defer func() {
		if recover() != nil {
			caught = true
		}
	}()
	runner := sim.NewRunner()
	runner.EnableSlowChecks()
	cfg := randomPickScenario(t, seed, s)
	if _, err := runner.Run(cfg); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return caught
}

// TestOracleCatchesSkippedInvalidation mutation-tests the full-rescore
// oracle, mirroring the engine's fullcheck mutation tests: for each of the
// three cache-invalidation sources (view change epoch, per-round NQ entry,
// corrected-mode n_active), deliberately skipping it must make the oracle
// panic on at least one of a fixed batch of random scenarios. If a mutation
// is never caught, the oracle has a blind spot and the dirty-set contract
// can rot silently.
func TestOracleCatchesSkippedInvalidation(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*greedySched)
		build  func() *greedySched
	}{
		{"skip-epoch-invalidation",
			func(s *greedySched) { s.mutSkipEpoch = true },
			func() *greedySched { return NewGreedy("emct", plainComm).(*greedySched) }},
		{"skip-nq-invalidation",
			func(s *greedySched) { s.mutSkipNQ = true },
			func() *greedySched { return NewGreedy("mct", plainComm).(*greedySched) }},
		{"skip-nactive-invalidation",
			func(s *greedySched) { s.mutSkipNA = true },
			func() *greedySched { return NewGreedy("mct", eq2Comm).(*greedySched) }},
	}
	const seeds = 60
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			caught := 0
			for seed := uint64(0); seed < seeds; seed++ {
				s := m.build()
				m.mutate(s)
				if mutatedRunPanics(t, seed, s) {
					caught++
				}
			}
			if caught == 0 {
				t.Fatalf("oracle never caught %s over %d scenarios", m.name, seeds)
			}
			t.Logf("%s caught on %d/%d scenarios", m.name, caught, seeds)
		})
	}
}
