package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// forceHeapArgmin lowers the heap threshold so every cached Pick routes
// through the heap path, restoring it when the test ends.
func forceHeapArgmin(t *testing.T, n int) {
	t.Helper()
	old := greedyHeapMinEligible
	greedyHeapMinEligible = n
	t.Cleanup(func() { greedyHeapMinEligible = old })
}

// TestHeapArgminPickStreamMatchesFlat is the heap path's equivalence
// property test: with the threshold forced to 1, every single decision of
// every greedy variant must match the plain full-scan scheduler pick for
// pick, event for event, and on the final result — the same contract the
// linear cached path is held to, now exercising rebuilds, same-slate
// rescoring (originals) and slate-compaction deletes (replicas).
func TestHeapArgminPickStreamMatchesFlat(t *testing.T) {
	forceHeapArgmin(t, 1)
	variants := greedyVariants()
	names := make([]string, 0, len(variants))
	for name := range variants {
		names = append(names, name)
	}

	runOnce := func(seed uint64, s *greedySched) (*sim.Result, []sim.Event, [][4]int) {
		rec := &pickRecorder{inner: s}
		cfg := randomPickScenario(t, seed, rec)
		var events []sim.Event
		cfg.OnEvent = func(ev sim.Event) { events = append(events, ev) }
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d %s: %v", seed, s.Name(), err)
		}
		return res, events, rec.log
	}

	f := func(seed uint64, pickV uint8) bool {
		name := names[int(pickV)%len(names)]
		heap := variants[name]()
		flat := variants[name]()
		flat.noCache = true
		resH, evH, picksH := runOnce(seed, heap)
		resF, evF, picksF := runOnce(seed, flat)
		if !reflect.DeepEqual(picksH, picksF) {
			for i := range picksH {
				if i < len(picksF) && picksH[i] != picksF[i] {
					t.Logf("seed %d %s: first divergence at decision %d: heap %v, flat %v",
						seed, name, i, picksH[i], picksF[i])
					break
				}
			}
			return false
		}
		return reflect.DeepEqual(resH, resF) && reflect.DeepEqual(evH, evF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapArgminSlowCheckOracle runs the full-rescore oracle with the heap
// path forced on: every heap decision is re-derived from a fresh linear
// scan inside Pick, so a rotted continuation anchor panics.
func TestHeapArgminSlowCheckOracle(t *testing.T) {
	forceHeapArgmin(t, 1)
	runner := sim.NewRunner()
	runner.EnableSlowChecks()
	for name, build := range greedyVariants() {
		for seed := uint64(0); seed < 8; seed++ {
			cfg := randomPickScenario(t, seed*17+3, build())
			if _, err := runner.Run(cfg); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

// TestScoreHeapOrder drives the bare heap against a reference linear argmin
// over random score vectors that deliberately include exact ties (shared
// values drawn from a tiny set), +Inf and NaN — the cases scoreLess orders
// by ID, sentinel-last. After every mutation (rescore or delete) the heap
// minimum must equal the scan minimum over the live entries.
func TestScoreHeapOrder(t *testing.T) {
	scorePool := []float64{0, 1, 1, 2.5, 2.5, math.Inf(1), math.NaN()}
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		slate := make([]int, n)
		scores := make([]float64, n)
		id := 0
		for k := range slate {
			id += 1 + r.Intn(3) // ascending, gappy worker IDs
			slate[k] = id
			scores[k] = scorePool[r.Intn(len(scorePool))]
		}
		var h scoreHeap
		k := 0
		h.rebuild(slate, func(int) float64 { sc := scores[k]; k++; return sc })

		live := make(map[int]bool, n)
		for _, q := range slate {
			live[q] = true
		}
		refMin := func() int {
			best := -1
			var bestScore float64
			for k, q := range slate {
				if !live[q] {
					continue
				}
				if best < 0 || scoreLess(scores[k], q, bestScore, best) {
					best, bestScore = q, scores[k]
				}
			}
			return best
		}
		if got, want := h.minWorker(), refMin(); got != want {
			t.Fatalf("seed %d: initial min %d, reference %d", seed, got, want)
		}
		for op := 0; len(live) > 1 && op < 4*n; op++ {
			k := r.Intn(n)
			if !live[slate[k]] {
				continue
			}
			if r.Intn(3) == 0 {
				h.delete(k)
				delete(live, slate[k])
			} else {
				scores[k] = scorePool[r.Intn(len(scorePool))]
				h.update(k, scores[k])
			}
			if got, want := h.minWorker(), refMin(); got != want {
				t.Fatalf("seed %d op %d: heap min %d, reference %d", seed, op, got, want)
			}
		}
	}
}
