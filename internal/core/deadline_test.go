package core

import (
	"testing"

	"repro/internal/expect"
	"repro/internal/sim"
)

func TestDeadlinePrefersLikelyFinisher(t *testing.T) {
	prm := params(5, 0, 1)
	// Equal CT; the crash-prone model has a lower deadline probability.
	v := mkView(prm,
		sim.ProcView{W: 5, Model: flakyModel()},
		sim.ProcView{W: 5, Model: reliableModel()},
	)
	ct := CT(&v.Procs[0], 1, 1)
	d := int(1.5 * float64(ct))
	p0 := expect.DeadlineProbability(flakyModel(), ct, d)
	p1 := expect.DeadlineProbability(reliableModel(), ct, d)
	want := 0
	if p1 > p0 {
		want = 1
	}
	s := NewDeadline(1.5)
	if got := s.Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{}); got != want {
		t.Fatalf("deadline picked %d, want %d (p0=%v p1=%v)", got, want, p0, p1)
	}
}

func TestDeadlineSlackClamp(t *testing.T) {
	s := NewDeadline(0.1).(*deadlineSched)
	if s.slack != 1 {
		t.Fatalf("slack = %v, want clamped to 1", s.slack)
	}
	if s.Name() != "deadline" {
		t.Fatalf("name %q", s.Name())
	}
}

func TestDeadlinePicksEligibleOnly(t *testing.T) {
	prm := params(5, 2, 1)
	v := mkView(prm,
		sim.ProcView{W: 3, Model: reliableModel()},
		sim.ProcView{W: 3, Model: reliableModel()},
	)
	s := NewDeadline(1.5)
	for trial := 0; trial < 5; trial++ {
		if got := s.Pick(v, []int{1}, freshRound(2), sim.TaskInfo{}); got != 1 {
			t.Fatalf("picked %d outside eligible set", got)
		}
	}
}
