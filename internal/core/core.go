// Package core implements the scheduling heuristics of Section 6 of the
// paper — the primary contribution of the reproduced work.
//
// All heuristics are "dynamic" in the paper's taxonomy: begun work is never
// abandoned, and every not-yet-begun task is re-assigned from scratch each
// time slot. Two families are provided:
//
//   - Random heuristics (Section 6.2): Random picks uniformly among UP
//     processors; Random1..Random4 weight processors by reliability measures
//     (P(u,u), P+, πu, 1−πd), and the "w" variants divide each weight by the
//     processor speed w_q.
//
//   - Greedy heuristics (Section 6.3): MCT picks the smallest estimated
//     completion time CT(P_q, n_q+1) (Equation 1); EMCT the smallest
//     expected completion time E(CT) under the Markov model (Theorem 2);
//     LW the largest probability (P+)^CT of surviving the workload; UD the
//     largest probability of staying out of DOWN for E(CT) slots. The
//     starred variants (MCT*, EMCT*, LW*, UD*) replace Tdata with the
//     contention-correcting factor ceil(n_active/n_com)·Tdata (Equation 2).
//
// Use New (or the Registry) to instantiate heuristics by name.
package core

import (
	"repro/internal/platform"
	"repro/internal/sim"
)

// Delay returns Delay(q) of Section 6.3.1: the number of slots before
// processor q finishes all begun work and can start something new, assuming
// it stays UP and suffers no network contention.
//
// The estimate accounts for the sequential transfer chain (remaining program
// then remaining data of the incoming task), the computation still owed for
// the incoming task, and the remaining computation of the task currently
// computed, with communication/computation overlap.
func Delay(pv *sim.ProcView) int {
	if pv.HasIncoming {
		// The incoming task's data lands after the program remainder plus
		// the data remainder; its computation starts when both the data and
		// the current computation are finished.
		dataAt := pv.RemProgram + pv.IncomingRem
		start := dataAt
		if pv.ComputingRem > start {
			start = pv.ComputingRem
		}
		return start + pv.W
	}
	if pv.HasComputing {
		return pv.ComputingRem
	}
	// Idle processor: only the (possibly partial, possibly whole) program
	// transfer stands between it and new work.
	return pv.RemProgram
}

// CT returns CT(P_q, nq) — the estimated completion time of Equation 1 —
// with tdata as the per-task communication cost. Passing the raw Tdata gives
// Equation 1; passing the contention-corrected value gives Equation 2.
//
//	CT(P_q, n_q) = Delay(q) + tdata + max(n_q−1, 0)·max(tdata, w_q) + w_q
func CT(pv *sim.ProcView, nq int, tdata int) int {
	return ctWithDelay(Delay(pv), pv, nq, tdata)
}

// CTCorrected is CT with the contention slowdown applied to every
// communication quantity (Equation 2 generalized): the per-task data cost
// and the communication remainders inside Delay — the program and in-flight
// data a worker still has to receive also travel through the master's
// saturated card. commFactor is ceil(n_active / n_com).
func CTCorrected(pv *sim.ProcView, nq int, params *platform.Params, commFactor int) int {
	if commFactor < 1 {
		commFactor = 1
	}
	return ctWithDelay(DelayScaled(pv, commFactor), pv, nq, commFactor*params.Tdata)
}

func ctWithDelay(delay int, pv *sim.ProcView, nq int, tdata int) int {
	ct := delay + tdata + pv.W
	if nq > 1 {
		step := tdata
		if pv.W > step {
			step = pv.W
		}
		ct += (nq - 1) * step
	}
	return ct
}

// DelayScaled is Delay with communication remainders (program + in-flight
// data) multiplied by the contention slowdown factor; computation terms are
// unaffected.
func DelayScaled(pv *sim.ProcView, commFactor int) int {
	if pv.HasIncoming {
		dataAt := commFactor * (pv.RemProgram + pv.IncomingRem)
		start := dataAt
		if pv.ComputingRem > start {
			start = pv.ComputingRem
		}
		return start + pv.W
	}
	if pv.HasComputing {
		return pv.ComputingRem
	}
	return commFactor * pv.RemProgram
}

// CorrectedTdata returns the contention-correcting communication cost of
// Section 6.3.1: ceil(nactive/ncom) · Tdata, where nactive counts the
// processors put to work in the current scheduling round (including the
// candidate being scored). nactive is clamped to at least 1 so the first
// assignment of a round still pays Tdata.
func CorrectedTdata(params *platform.Params, nactive int) int {
	if nactive < 1 {
		nactive = 1
	}
	factor := (nactive + params.Ncom - 1) / params.Ncom
	return factor * params.Tdata
}

// effectiveNActive is the nactive value used to score candidate q: the
// round's counter, plus one if choosing q would newly activate it.
func effectiveNActive(pv *sim.ProcView, rs *sim.RoundState) int {
	na := rs.NActive
	if rs.NQ[pv.ID] == 0 && !pv.Busy() {
		na++
	}
	return na
}
