package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/avail"
	"repro/internal/expect"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sim"
)

// These are the regression tests for the two Pick-path sentinel bugs: the
// greedy scan used to start from best := eligible[0] with a +Inf sentinel
// score, so (a) a slate whose genuine scores are all +Inf (e.g. LW when
// every candidate has P+ = 0) tie-broke against an unscored default and
// returned eligible[0] instead of the lowest ID, and (b) a NaN score on
// eligible[0] could shadow real +Inf scores through the sentinel equality.
// The fixed scan seeds best from a real first evaluation and orders with
// scoreLess (NaN after everything, ties to the lowest ID).

// deadModel is a valid Markov3 with P+ = 0: from UP the processor never
// stays UP, and RECLAIMED can never return to UP, so LW scores every
// workload +Inf on it.
func deadModel() *avail.Markov3 {
	return avail.MustMarkov3([3][3]float64{
		{0, 0.5, 0.5},
		{0, 0.5, 0.5},
		{0.9, 0.05, 0.05},
	})
}

func TestLWAllPPlusZeroPicksLowestID(t *testing.T) {
	m := deadModel()
	if got := expect.PPlus(m); got != 0 {
		t.Fatalf("test model has P+ = %v, want 0", got)
	}
	prm := params(5, 2, 1)
	v := &sim.View{Params: prm, Procs: make([]sim.ProcView, 3)}
	for i := range v.Procs {
		v.Procs[i] = sim.ProcView{ID: i, W: 2, State: avail.Up, Model: m}
	}
	v.FillAnalytics()
	s := NewLW(false)
	// Every score is +Inf; the pick must be the lowest ID regardless of the
	// eligible slate's order. The old sentinel scan returned eligible[0].
	if got := s.Pick(v, []int{2, 0, 1}, freshRound(3), sim.TaskInfo{}); got != 0 {
		t.Fatalf("all-Inf slate picked %d, want lowest ID 0", got)
	}
	if got := s.Pick(v, []int{2, 1}, freshRound(3), sim.TaskInfo{}); got != 1 {
		t.Fatalf("all-Inf slate picked %d, want lowest eligible ID 1", got)
	}
}

// TestLWAllPPlusZeroPlatformRuns pins the fix end to end: a whole platform
// of P+ = 0 processors still produces a deterministic lowest-ID assignment
// stream under LW, identical between the incremental and the plain scan
// paths (the heap must order all-+Inf slates by ID exactly like the scan).
func TestLWAllPPlusZeroPlatformRuns(t *testing.T) {
	m := deadModel()
	const p = 4
	pl := &platform.Platform{Processors: make([]*platform.Processor, p)}
	for i := 0; i < p; i++ {
		pl.Processors[i] = &platform.Processor{ID: i, W: 1, Avail: m}
	}
	prm := platform.Params{M: 3, Iterations: 1, Ncom: 2, Tprog: 1, Tdata: 1, MaxSlots: 500}
	run := func(s *greedySched) ([][4]int, *sim.Result) {
		r := rng.New(7)
		procs := make([]avail.Process, p)
		for i := 0; i < p; i++ {
			procs[i] = m.NewProcess(r.Split(), avail.Up)
		}
		rec := &pickRecorder{inner: s}
		res, err := sim.Run(sim.Config{Platform: pl, Params: prm, Procs: procs, Scheduler: rec})
		if err != nil {
			t.Fatal(err)
		}
		return rec.log, res
	}
	cached := NewLW(false).(*greedySched)
	flat := NewLW(false).(*greedySched)
	flat.noCache = true
	picksC, resC := run(cached)
	picksF, resF := run(flat)
	if !reflect.DeepEqual(picksC, picksF) || !reflect.DeepEqual(resC, resF) {
		t.Fatal("cached and plain paths diverge on an all-P+=0 platform")
	}
	// All processors start UP, so every slot-0 original pick sees the full
	// slate of +Inf scores and must tie-break to worker 0.
	for _, pk := range picksC {
		if pk[0] == 0 && pk[2] == 0 && pk[3] != 0 {
			t.Fatalf("slot-0 original pick went to %d, want lowest ID 0", pk[3])
		}
	}
}

// nanScore builds a greedy scheduler whose score function is controlled per
// worker ID, for NaN-ordering regressions.
func nanScore(scores map[int]float64) *greedySched {
	return &greedySched{
		name: "nan-test",
		mode: plainComm,
		score: func(pv *sim.ProcView, _ float64) float64 {
			return scores[pv.ID]
		},
	}
}

func nanView(n int) *sim.View {
	prm := params(5, 1, 1)
	v := &sim.View{Params: prm, Procs: make([]sim.ProcView, n)}
	for i := range v.Procs {
		v.Procs[i] = sim.ProcView{ID: i, W: 1, State: avail.Up, Model: reliableModel()}
	}
	v.FillAnalytics()
	return v
}

func TestNaNScoreCannotWinOrShadow(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)

	// (b) The shadow bug: NaN on eligible[0] plus genuine +Inf candidates.
	// The old scan's +Inf sentinel tie-broke the real +Inf scores against
	// the unscored NaN default and returned worker 0.
	s := nanScore(map[int]float64{0: nan, 1: inf, 2: inf})
	if got := s.Pick(nanView(3), []int{0, 2, 1}, freshRound(3), sim.TaskInfo{}); got != 1 {
		t.Fatalf("NaN shadowed +Inf candidates: picked %d, want 1", got)
	}

	// NaN never beats a finite score, in any position.
	s = nanScore(map[int]float64{0: nan, 1: 5})
	if got := s.Pick(nanView(2), []int{0, 1}, freshRound(2), sim.TaskInfo{}); got != 1 {
		t.Fatalf("NaN beat a finite score: picked %d, want 1", got)
	}
	s = nanScore(map[int]float64{0: 5, 1: nan})
	if got := s.Pick(nanView(2), []int{1, 0}, freshRound(2), sim.TaskInfo{}); got != 0 {
		t.Fatalf("NaN beat a finite score: picked %d, want 0", got)
	}

	// An all-NaN slate still picks deterministically: the lowest ID.
	s = nanScore(map[int]float64{0: nan, 1: nan, 2: nan})
	if got := s.Pick(nanView(3), []int{2, 1}, freshRound(3), sim.TaskInfo{}); got != 1 {
		t.Fatalf("all-NaN slate picked %d, want lowest eligible ID 1", got)
	}
}

func TestScoreLessTotalOrder(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		s1   float64
		id1  int
		s2   float64
		id2  int
		want bool
	}{
		{1, 5, 2, 0, true}, // lower score wins regardless of ID
		{2, 0, 1, 5, false},
		{1, 0, 1, 1, true}, // tie -> lower ID
		{1, 1, 1, 0, false},
		{inf, 1, inf, 2, true}, // Inf ties -> lower ID
		{inf, 0, nan, 1, true}, // any non-NaN before NaN
		{nan, 0, inf, 1, false},
		{nan, 1, nan, 2, true}, // NaN ties -> lower ID
		{nan, 2, nan, 1, false},
	}
	for i, c := range cases {
		if got := scoreLess(c.s1, c.id1, c.s2, c.id2); got != c.want {
			t.Fatalf("case %d: scoreLess(%v,%d, %v,%d) = %v, want %v",
				i, c.s1, c.id1, c.s2, c.id2, got, c.want)
		}
	}
	// Antisymmetry over a representative set of distinct elements.
	elems := []struct {
		s  float64
		id int
	}{{1, 0}, {1, 1}, {2, 0}, {inf, 0}, {inf, 1}, {nan, 0}, {nan, 1}}
	for i, a := range elems {
		for j, b := range elems {
			if i == j {
				continue
			}
			ab := scoreLess(a.s, a.id, b.s, b.id)
			ba := scoreLess(b.s, b.id, a.s, a.id)
			if ab == ba {
				t.Fatalf("order not strict/total between (%v,%d) and (%v,%d)", a.s, a.id, b.s, b.id)
			}
		}
	}
}

func TestDeadlineBetterNaNRules(t *testing.T) {
	nan := math.NaN()
	// A real probability always beats NaN; NaN never beats a real one —
	// including p = 0, which the old -1.0 sentinel path also handled, but
	// only by accident of seeding.
	if !deadlineBetter(0.0, 9, nan, 3) {
		t.Fatal("real probability failed to beat NaN incumbent")
	}
	if deadlineBetter(nan, 1, 0.0, 9) {
		t.Fatal("NaN beat a real probability")
	}
	// NaN pairs tie-break on the smaller completion estimate.
	if !deadlineBetter(nan, 2, nan, 5) || deadlineBetter(nan, 5, nan, 2) {
		t.Fatal("NaN pair tie-break not by smaller ct")
	}
	// Finite semantics unchanged: higher p wins, window ties go to lower ct.
	if !deadlineBetter(0.8, 9, 0.5, 3) || deadlineBetter(0.5, 3, 0.8, 9) {
		t.Fatal("higher probability must win")
	}
	if !deadlineBetter(0.5, 3, 0.5, 9) || deadlineBetter(0.5, 9, 0.5, 3) {
		t.Fatal("probability tie must go to smaller ct")
	}
}
