package core

// This file holds the incremental scoring state of the greedy family: a
// per-worker score cache whose entries are re-used while their recorded
// inputs compare equal to the current ones, so a Pick re-evaluates only
// candidates whose inputs changed.
//
// A cached score for worker q is a pure function of three inputs:
//
//   - q's ProcView — tracked by the engine's per-worker change epoch
//     (View.ProcEpochs[q]; see the contract on sim.View);
//   - rs.NQ[q], the tasks piled on q this round (reset every round,
//     bumped when q is picked);
//   - for the contention-corrected modes, the communication slowdown
//     factor ceil(n_active/n_com) — the score depends on n_active only
//     through this factor, so invalidation is keyed on the factor and a
//     pick that moves n_active within the same ceil bucket invalidates
//     nothing.
//
// Staleness is impossible by construction (every input is compared on
// every use), and the slow-check oracle (View.SlowChecks) re-derives every
// decision from a fresh scan and panics on any divergence.
//
// The argmin itself is a linear pass over the eligible slate tracking the
// minimum under scoreLess. An earlier revision kept a lazy min-heap to
// make the argmin O(log P); profiling the Table 2 sweep showed the heap
// bookkeeping cost ~10x the score evaluations it avoided on paper-scale
// platforms (P = 20, scores are pure arithmetic on interned analytics), so
// the heap was dropped. scoreLess is a strict total order, so a heap (or
// bucket) argmin keyed on it can be reintroduced verbatim if platforms
// grow by orders of magnitude.

// scoreLess is the strict total order all argmin paths share: lower score
// first, NaN after every non-NaN ("a NaN score can neither win nor shadow
// a finite one"), ties broken by the lower worker ID. The first two
// comparisons settle the overwhelmingly common case (distinct non-NaN
// scores) and are correct in the presence of NaN: both are false when
// either side is NaN, falling through to the explicit ordering.
func scoreLess(s1 float64, id1 int, s2 float64, id2 int) bool {
	if s1 < s2 {
		return true
	}
	if s2 < s1 {
		return false
	}
	// Equal scores, or at least one NaN (x != x exactly for NaN).
	n1, n2 := s1 != s1, s2 != s2
	if n1 != n2 {
		return n2
	}
	return id1 < id2
}

// pickCache is the incremental state of one greedy scheduler instance. All
// slices are indexed by worker ID and sized to the largest platform seen;
// stale content from earlier runs is harmless because the engine's change
// epochs are process-wide unique (an old stamp never equals a new one).
type pickCache struct {
	// score[q] plus the recorded inputs it was computed from.
	score    []float64
	scoredEp []int64
	scoredNQ []int
	// scoredFactor[q] is the communication factor used (corrected modes
	// only; plain mode never reads it).
	scoredFactor []int
}

// ensure sizes the per-worker slices for a platform of p processors.
func (c *pickCache) ensure(p int) {
	if len(c.score) >= p {
		return
	}
	n := 2 * len(c.score)
	if n < p {
		n = p
	}
	score := make([]float64, n)
	copy(score, c.score)
	c.score = score
	ep := make([]int64, n)
	copy(ep, c.scoredEp)
	c.scoredEp = ep
	nq := make([]int, n)
	copy(nq, c.scoredNQ)
	c.scoredNQ = nq
	fa := make([]int, n)
	copy(fa, c.scoredFactor)
	c.scoredFactor = fa
}
