package core

// This file holds the incremental scoring state of the greedy family: a
// per-worker score cache whose entries are re-used while their recorded
// inputs compare equal to the current ones, so a Pick re-evaluates only
// candidates whose inputs changed.
//
// A cached score for worker q is a pure function of three inputs:
//
//   - q's ProcView — tracked by the engine's per-worker change epoch
//     (View.ProcEpochs[q]; see the contract on sim.View);
//   - rs.NQ[q], the tasks piled on q this round (reset every round,
//     bumped when q is picked);
//   - for the contention-corrected modes, the communication slowdown
//     factor ceil(n_active/n_com) — the score depends on n_active only
//     through this factor, so invalidation is keyed on the factor and a
//     pick that moves n_active within the same ceil bucket invalidates
//     nothing.
//
// Staleness is impossible by construction (every input is compared on
// every use), and the slow-check oracle (View.SlowChecks) re-derives every
// decision from a fresh scan and panics on any divergence.
//
// The argmin over the eligible slate is a linear pass under scoreLess on
// paper-scale platforms, and an indexed min-heap (argmin.go) once the slate
// crosses greedyHeapMinEligible — pick-for-pick identical because scoreLess
// is a strict total order.

// scoreLess is the strict total order all argmin paths share: lower score
// first, NaN after every non-NaN ("a NaN score can neither win nor shadow
// a finite one"), ties broken by the lower worker ID. The first two
// comparisons settle the overwhelmingly common case (distinct non-NaN
// scores) and are correct in the presence of NaN: both are false when
// either side is NaN, falling through to the explicit ordering.
func scoreLess(s1 float64, id1 int, s2 float64, id2 int) bool {
	if s1 < s2 {
		return true
	}
	if s2 < s1 {
		return false
	}
	// Equal scores, or at least one NaN (x != x exactly for NaN).
	n1, n2 := s1 != s1, s2 != s2
	if n1 != n2 {
		return n2
	}
	return id1 < id2
}

// Cache pages hold cachePageSize workers each; pages allocate lazily on
// first write, so a scheduler's resident cache is O(workers actually
// scored) — on a volunteer grid where most of a 100k-worker platform never
// comes UP, the cache never materializes pages for the permanently-DOWN
// span. cachePageShift is log2(cachePageSize).
const (
	cachePageShift = 9
	cachePageSize  = 1 << cachePageShift
)

// cachePage is one fixed-size block of cache entries. A zero page is all
// invalid: scoredEp 0 never equals a real change epoch (the engine's epoch
// counter starts at 1), so fresh pages need no initialization.
type cachePage struct {
	score    [cachePageSize]float64
	scoredEp [cachePageSize]int64
	scoredNQ [cachePageSize]int32
	// scoredFactor is the communication factor used (corrected modes only;
	// plain mode never compares it).
	scoredFactor [cachePageSize]int32
}

// pickCache is the incremental state of one greedy scheduler instance,
// indexed by worker ID. Stale content from earlier runs is harmless because
// the engine's change epochs are process-wide unique (an old stamp never
// equals a new one).
type pickCache struct {
	pages []*cachePage
}

// ensure sizes the page table for a platform of p processors (the pages
// themselves stay nil until written).
func (c *pickCache) ensure(p int) {
	np := (p + cachePageSize - 1) >> cachePageShift
	if len(c.pages) >= np {
		return
	}
	if cap(c.pages) >= np {
		c.pages = c.pages[:np]
		return
	}
	pages := make([]*cachePage, np)
	copy(pages, c.pages)
	c.pages = pages
}

// get returns worker q's cache entry (zero values when its page was never
// written — always invalid, since no real epoch is 0).
func (c *pickCache) get(q int) (score float64, ep int64, nq, factor int32) {
	pg := c.pages[q>>cachePageShift]
	if pg == nil {
		return 0, 0, 0, 0
	}
	off := q & (cachePageSize - 1)
	return pg.score[off], pg.scoredEp[off], pg.scoredNQ[off], pg.scoredFactor[off]
}

// put records worker q's score and the inputs it was computed from,
// materializing q's page on first touch.
func (c *pickCache) put(q int, score float64, ep int64, nq, factor int32) {
	pi := q >> cachePageShift
	pg := c.pages[pi]
	if pg == nil {
		pg = new(cachePage)
		c.pages[pi] = pg
	}
	off := q & (cachePageSize - 1)
	pg.score[off] = score
	pg.scoredEp[off] = ep
	pg.scoredNQ[off] = nq
	pg.scoredFactor[off] = factor
}
