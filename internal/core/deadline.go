package core

import (
	"math"

	"repro/internal/expect"
	"repro/internal/sim"
)

// deadlineSched is an extension heuristic (not in the paper) enabled by the
// completion-time distribution of internal/expect: instead of comparing
// expectations (EMCT) or crash-survival probabilities (LW/UD), it fixes a
// common soft deadline — slack × the best raw completion estimate among the
// candidates — and picks the processor with the highest probability of
// finishing its whole estimated workload by that deadline, crashes and
// reclaims included.
//
// This blends the EMCT and UD signals: a processor can lose either by being
// slow (like MCT penalizes), by being crash-prone (like UD penalizes), or
// by having high completion-time variance (which no paper heuristic sees).
type deadlineSched struct {
	slack float64
	// cts is Pick's scratch buffer (reused across calls).
	cts []int
	// The probability memo: DeadlineProbability(model, ct, deadline) is the
	// expensive part of a pick, and its inputs are fully determined by the
	// worker's view snapshot (tracked by the engine's change epoch), its
	// ct, and the round's common deadline. On engine-built views a worker's
	// probability is re-derived only when one of those moved.
	memoEp       []int64
	memoCt       []int
	memoDeadline []int
	memoP        []float64
}

// NewDeadline returns the deadline-probability heuristic. slack ≥ 1 widens
// the common deadline relative to the best candidate's CT; 1.5 works well.
func NewDeadline(slack float64) sim.Scheduler {
	if slack < 1 {
		slack = 1
	}
	return &deadlineSched{slack: slack}
}

// Name implements sim.Scheduler.
func (s *deadlineSched) Name() string { return "deadline" }

// PoolSafe implements sim.Poolable: the memo is keyed on the engine's
// process-wide unique change epochs, so reuse cannot validate stale state.
func (s *deadlineSched) PoolSafe() bool { return true }

// probability returns DeadlineProbability for worker q, via the memo when
// the view carries change tracking and none of the inputs moved.
func (s *deadlineSched) probability(v *sim.View, q, ct, deadline int) float64 {
	pv := &v.Procs[q]
	if v.Epoch == 0 || len(v.ProcEpochs) != len(v.Procs) {
		return expect.DeadlineProbability(pv.Model, ct, deadline)
	}
	if len(s.memoEp) < len(v.Procs) {
		s.memoEp = make([]int64, len(v.Procs))
		s.memoCt = make([]int, len(v.Procs))
		s.memoDeadline = make([]int, len(v.Procs))
		s.memoP = make([]float64, len(v.Procs))
	}
	if s.memoEp[q] == v.ProcEpochs[q] && s.memoCt[q] == ct && s.memoDeadline[q] == deadline {
		p := s.memoP[q]
		if v.SlowChecks {
			fresh := expect.DeadlineProbability(pv.Model, ct, deadline)
			if math.Float64bits(fresh) != math.Float64bits(p) {
				panic("core: deadline: stale memoized probability")
			}
		}
		return p
	}
	p := expect.DeadlineProbability(pv.Model, ct, deadline)
	s.memoEp[q] = v.ProcEpochs[q]
	s.memoCt[q] = ct
	s.memoDeadline[q] = deadline
	s.memoP[q] = p
	return p
}

// deadlineBetter reports whether a candidate with probability p and raw
// completion estimate ct beats the incumbent: higher probability first
// (beyond the 1e-12 float-noise window), ties broken by the smaller ct. A
// NaN probability can never beat a real one, a real one always beats NaN,
// and NaN pairs count as tied — so NaN can neither win nor shadow a scored
// candidate (the incumbent is always genuinely scored: Pick seeds it from a
// real first evaluation, never a sentinel).
func deadlineBetter(p float64, ct int, bestP float64, bestCT int) bool {
	switch {
	case math.IsNaN(p):
		return math.IsNaN(bestP) && ct < bestCT
	case math.IsNaN(bestP):
		return true
	default:
		return p > bestP+1e-12 || (math.Abs(p-bestP) <= 1e-12 && ct < bestCT)
	}
}

// Pick implements sim.Scheduler.
func (s *deadlineSched) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	// Common deadline from the best raw CT.
	bestCT := math.MaxInt
	if cap(s.cts) < len(eligible) {
		s.cts = make([]int, len(eligible))
	}
	cts := s.cts[:len(eligible)] // every entry is overwritten below
	for i, q := range eligible {
		ct := CT(&v.Procs[q], rs.NQ[q]+1, v.Params.Tdata)
		cts[i] = ct
		if ct < bestCT {
			bestCT = ct
		}
	}
	deadline := int(s.slack * float64(bestCT))
	if deadline < bestCT {
		deadline = bestCT
	}
	// Seed best from a real first evaluation — never a sentinel — so a NaN
	// probability can neither win against a scored candidate nor shadow one
	// through an unscored default.
	best := eligible[0]
	bestP := s.probability(v, best, cts[0], deadline)
	bestIdx := 0
	for i, q := range eligible {
		if i == 0 {
			continue
		}
		p := s.probability(v, q, cts[i], deadline)
		if deadlineBetter(p, cts[i], bestP, cts[bestIdx]) {
			best, bestP, bestIdx = q, p, i
		}
	}
	return best
}
