package core

import (
	"math"

	"repro/internal/expect"
	"repro/internal/sim"
)

// deadlineSched is an extension heuristic (not in the paper) enabled by the
// completion-time distribution of internal/expect: instead of comparing
// expectations (EMCT) or crash-survival probabilities (LW/UD), it fixes a
// common soft deadline — slack × the best raw completion estimate among the
// candidates — and picks the processor with the highest probability of
// finishing its whole estimated workload by that deadline, crashes and
// reclaims included.
//
// This blends the EMCT and UD signals: a processor can lose either by being
// slow (like MCT penalizes), by being crash-prone (like UD penalizes), or
// by having high completion-time variance (which no paper heuristic sees).
type deadlineSched struct {
	slack float64
	// cts is Pick's scratch buffer (reused across calls).
	cts []int
}

// NewDeadline returns the deadline-probability heuristic. slack ≥ 1 widens
// the common deadline relative to the best candidate's CT; 1.5 works well.
func NewDeadline(slack float64) sim.Scheduler {
	if slack < 1 {
		slack = 1
	}
	return &deadlineSched{slack: slack}
}

// Name implements sim.Scheduler.
func (s *deadlineSched) Name() string { return "deadline" }

// Pick implements sim.Scheduler.
func (s *deadlineSched) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	// Common deadline from the best raw CT.
	bestCT := math.MaxInt
	if cap(s.cts) < len(eligible) {
		s.cts = make([]int, len(eligible))
	}
	cts := s.cts[:len(eligible)] // every entry is overwritten below
	for i, q := range eligible {
		ct := CT(&v.Procs[q], rs.NQ[q]+1, v.Params.Tdata)
		cts[i] = ct
		if ct < bestCT {
			bestCT = ct
		}
	}
	deadline := int(s.slack * float64(bestCT))
	if deadline < bestCT {
		deadline = bestCT
	}
	best := eligible[0]
	bestP := -1.0
	for i, q := range eligible {
		pv := &v.Procs[q]
		p := expect.DeadlineProbability(pv.Model, cts[i], deadline)
		// Tie-break by smaller CT, then lower ID.
		if p > bestP+1e-12 ||
			(math.Abs(p-bestP) <= 1e-12 && cts[i] < cts[indexOf(eligible, best)]) {
			best, bestP = q, p
		}
	}
	return best
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return 0
}
