package core

import (
	"math"
	"testing"

	"repro/internal/avail"
	"repro/internal/expect"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sim"
)

func reliableModel() *avail.Markov3 {
	return avail.MustMarkov3([3][3]float64{
		{0.98, 0.01, 0.01},
		{0.02, 0.96, 0.02},
		{0.05, 0.05, 0.90},
	})
}

func flakyModel() *avail.Markov3 {
	return avail.MustMarkov3([3][3]float64{
		{0.90, 0.02, 0.08},
		{0.02, 0.90, 0.08},
		{0.05, 0.05, 0.90},
	})
}

func params(ncom, tprog, tdata int) *platform.Params {
	return &platform.Params{M: 10, Iterations: 10, Ncom: ncom, Tprog: tprog, Tdata: tdata}
}

func TestDelayIdleWorker(t *testing.T) {
	pv := &sim.ProcView{ID: 0, W: 4, RemProgram: 5}
	if got := Delay(pv); got != 5 {
		t.Fatalf("Delay = %d, want 5 (full program)", got)
	}
	pv.RemProgram = 0
	if got := Delay(pv); got != 0 {
		t.Fatalf("Delay = %d, want 0 (idle, program held)", got)
	}
}

func TestDelayComputingOnly(t *testing.T) {
	pv := &sim.ProcView{ID: 0, W: 4, HasComputing: true, ComputingRem: 3}
	if got := Delay(pv); got != 3 {
		t.Fatalf("Delay = %d, want 3", got)
	}
}

func TestDelayIncomingOverlapsComputing(t *testing.T) {
	// Computing has 6 slots left; incoming data lands after 2 slots.
	// The incoming task starts when the computation frees (6) and needs W=4:
	// Delay = 6 + 4 = 10.
	pv := &sim.ProcView{
		ID: 0, W: 4,
		HasComputing: true, ComputingRem: 6,
		HasIncoming: true, IncomingRem: 2,
	}
	if got := Delay(pv); got != 10 {
		t.Fatalf("Delay = %d, want 10", got)
	}
	// Now the data is the bottleneck: remaining program 4 + data 3 = 7 > 2.
	pv.ComputingRem = 2
	pv.RemProgram = 4
	pv.IncomingRem = 3
	if got := Delay(pv); got != 11 {
		t.Fatalf("Delay = %d, want 11 (7 data + 4 compute)", got)
	}
}

func TestDelayIncomingAwaitingPromotion(t *testing.T) {
	// Data complete (IncomingRem 0) behind a computation with 5 slots left:
	// Delay = 5 + W.
	pv := &sim.ProcView{
		ID: 0, W: 2,
		HasComputing: true, ComputingRem: 5,
		HasIncoming: true, IncomingRem: 0,
	}
	if got := Delay(pv); got != 7 {
		t.Fatalf("Delay = %d, want 7", got)
	}
}

func TestCTEquationOne(t *testing.T) {
	// CT(P_q, n_q) = Delay + Tdata + max(n_q-1,0)*max(Tdata, w) + w.
	pv := &sim.ProcView{ID: 0, W: 3, RemProgram: 5}
	// nq=1: 5 + 2 + 0 + 3 = 10.
	if got := CT(pv, 1, 2); got != 10 {
		t.Fatalf("CT(1) = %d, want 10", got)
	}
	// nq=3: 5 + 2 + 2*max(2,3) + 3 = 16.
	if got := CT(pv, 3, 2); got != 16 {
		t.Fatalf("CT(3) = %d, want 16", got)
	}
	// Communication-dominated: tdata=7 > w: nq=3: 5 + 7 + 2*7 + 3 = 29.
	if got := CT(pv, 3, 7); got != 29 {
		t.Fatalf("CT(3, tdata=7) = %d, want 29", got)
	}
}

func TestCorrectedTdata(t *testing.T) {
	prm := params(5, 10, 3)
	cases := []struct{ nactive, want int }{
		{0, 3},  // clamped to 1 active
		{1, 3},  // ceil(1/5)=1
		{5, 3},  // ceil(5/5)=1
		{6, 6},  // ceil(6/5)=2
		{10, 6}, // ceil(10/5)=2
		{11, 9}, // ceil(11/5)=3
	}
	for _, c := range cases {
		if got := CorrectedTdata(prm, c.nactive); got != c.want {
			t.Fatalf("CorrectedTdata(nactive=%d) = %d, want %d", c.nactive, got, c.want)
		}
	}
}

// mkView builds a two-processor view for heuristic selection tests.
func mkView(prm *platform.Params, a, b sim.ProcView) *sim.View {
	a.ID, b.ID = 0, 1
	a.State, b.State = avail.Up, avail.Up
	v := &sim.View{Params: prm, Procs: []sim.ProcView{a, b}, TasksRemaining: prm.M}
	v.FillAnalytics()
	return v
}

func freshRound(n int) *sim.RoundState { return &sim.RoundState{NQ: make([]int, n)} }

func TestMCTPrefersFasterCompletion(t *testing.T) {
	prm := params(5, 10, 2)
	// Worker 0: idle with program, slow (w=9) -> CT = 0+2+9 = 11.
	// Worker 1: no program, fast (w=2) -> CT = 10+2+2 = 14.
	v := mkView(prm,
		sim.ProcView{W: 9, RemProgram: 0, Model: reliableModel()},
		sim.ProcView{W: 2, RemProgram: 10, Model: reliableModel()},
	)
	s := NewMCT(false)
	if got := s.Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{}); got != 0 {
		t.Fatalf("MCT picked %d, want 0", got)
	}
	// With the program already present on worker 1, it wins: 2+2=4 < 11.
	v.Procs[1].RemProgram = 0
	if got := s.Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{}); got != 1 {
		t.Fatalf("MCT picked %d, want 1", got)
	}
}

func TestMCTAccountsForQueuedTasks(t *testing.T) {
	prm := params(5, 0, 1)
	v := mkView(prm,
		sim.ProcView{W: 2, Model: reliableModel()},
		sim.ProcView{W: 3, Model: reliableModel()},
	)
	s := NewMCT(false)
	rs := freshRound(2)
	// Repeatedly assigning tasks must alternate once the fast worker's queue
	// makes it slower than the idle one: CT0(n)=1+(n-1)*2+2, CT1(1)=1+3=4.
	picks := make([]int, 6)
	for i := range picks {
		q := s.Pick(v, []int{0, 1}, rs, sim.TaskInfo{Task: i})
		rs.NQ[q]++
		picks[i] = q
	}
	if picks[0] != 0 {
		t.Fatalf("first pick %d, want 0 (fast worker)", picks[0])
	}
	saw1 := false
	for _, q := range picks {
		if q == 1 {
			saw1 = true
		}
	}
	if !saw1 {
		t.Fatal("MCT never spilled to the second worker despite queue buildup")
	}
}

func TestEMCTPrefersLessReclaimedWhenCTEqual(t *testing.T) {
	// E(W) conditions on never reaching DOWN, so what it penalizes is time
	// expected to be lost to RECLAIMED interruptions (crash risk is the
	// domain of LW/UD). With equal raw CT, EMCT must prefer the processor
	// whose conditioned walks are least inflated; MCT is indifferent
	// (tie -> lowest ID).
	reclaimHeavy := avail.MustMarkov3([3][3]float64{
		{0.90, 0.08, 0.02},
		{0.05, 0.90, 0.05},
		{0.05, 0.05, 0.90},
	})
	reclaimLight := avail.MustMarkov3([3][3]float64{
		{0.97, 0.01, 0.02},
		{0.50, 0.30, 0.20},
		{0.05, 0.05, 0.90},
	})
	if expect.ExpectedUpStep(reclaimHeavy) <= expect.ExpectedUpStep(reclaimLight) {
		t.Fatal("test setup: reclaimHeavy should have larger E(up)")
	}
	prm := params(5, 10, 2)
	v := mkView(prm,
		sim.ProcView{W: 5, Model: reclaimHeavy},
		sim.ProcView{W: 5, Model: reclaimLight},
	)
	emct := NewEMCT(false)
	if got := emct.Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{}); got != 1 {
		t.Fatalf("EMCT picked %d, want reclaim-light worker 1", got)
	}
	mct := NewMCT(false)
	if got := mct.Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{}); got != 0 {
		t.Fatalf("MCT picked %d, want tie-broken worker 0", got)
	}
}

func TestEMCTMatchesExpectedSlotsOrdering(t *testing.T) {
	// EMCT's score must equal expect.ExpectedSlots at the CT horizon.
	prm := params(5, 4, 2)
	v := mkView(prm,
		sim.ProcView{W: 3, Model: flakyModel()},
		sim.ProcView{W: 4, Model: reliableModel()},
	)
	ct0 := float64(CT(&v.Procs[0], 1, prm.Tdata))
	ct1 := float64(CT(&v.Procs[1], 1, prm.Tdata))
	e0 := expect.ExpectedSlots(v.Procs[0].Model, ct0)
	e1 := expect.ExpectedSlots(v.Procs[1].Model, ct1)
	want := 0
	if e1 < e0 {
		want = 1
	}
	s := NewEMCT(false)
	if got := s.Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{}); got != want {
		t.Fatalf("EMCT picked %d, want %d (E0=%v E1=%v)", got, want, e0, e1)
	}
}

func TestLWPicksArgmaxSurvival(t *testing.T) {
	prm := params(5, 0, 1)
	v := mkView(prm,
		sim.ProcView{W: 2, Model: flakyModel()},    // fast but flaky
		sim.ProcView{W: 3, Model: reliableModel()}, // slower but reliable
	)
	// Compare (P+)^CT directly.
	p0 := math.Pow(expect.PPlus(v.Procs[0].Model), float64(CT(&v.Procs[0], 1, 1)))
	p1 := math.Pow(expect.PPlus(v.Procs[1].Model), float64(CT(&v.Procs[1], 1, 1)))
	want := 0
	if p1 > p0 {
		want = 1
	}
	s := NewLW(false)
	if got := s.Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{}); got != want {
		t.Fatalf("LW picked %d, want %d (p0=%v p1=%v)", got, want, p0, p1)
	}
}

func TestUDPicksArgmaxNoDownSurvival(t *testing.T) {
	prm := params(5, 0, 1)
	v := mkView(prm,
		sim.ProcView{W: 2, Model: flakyModel()},
		sim.ProcView{W: 3, Model: reliableModel()},
	)
	k0 := expect.ExpectedSlots(v.Procs[0].Model, float64(CT(&v.Procs[0], 1, 1)))
	k1 := expect.ExpectedSlots(v.Procs[1].Model, float64(CT(&v.Procs[1], 1, 1)))
	p0 := expect.SurvivalUDApprox(v.Procs[0].Model, k0)
	p1 := expect.SurvivalUDApprox(v.Procs[1].Model, k1)
	want := 0
	if p1 > p0 {
		want = 1
	}
	s := NewUD(false)
	if got := s.Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{}); got != want {
		t.Fatalf("UD picked %d, want %d (p0=%v p1=%v)", got, want, p0, p1)
	}
}

func TestStarVariantsUseCorrectedTdata(t *testing.T) {
	// With many processors already activated, the corrected variants see a
	// larger effective Tdata, which can flip a choice toward a processor
	// whose compute dominates.
	prm := params(1, 0, 4) // ncom=1: every active processor doubles the factor
	v := mkView(prm,
		sim.ProcView{W: 10, Model: reliableModel()}, // compute-heavy
		sim.ProcView{W: 1, Model: reliableModel()},  // data-heavy under contention
	)
	rs := freshRound(2)
	rs.NActive = 5 // five processors already put to work this round
	// Uncorrected MCT: CT0 = 4+10 = 14, CT1 = 4+1 = 5 -> picks 1.
	if got := NewMCT(false).Pick(v, []int{0, 1}, rs, sim.TaskInfo{}); got != 1 {
		t.Fatalf("MCT picked %d, want 1", got)
	}
	// Corrected: factor = nactive+1 = 6 (both idle; ncom=1), tdata=24:
	// CT0 = 24+10 = 34, CT1 = 24+1 = 25 -> still 1... use queue to flip:
	rs.NQ[1] = 3 // worker 1 already has 3 tasks this round
	// corrected: CT1 = 24 + 3*max(24,1) + 1 = 97; CT0 = 24 + 10 = 34 -> 0.
	if got := NewMCT(true).Pick(v, []int{0, 1}, rs, sim.TaskInfo{}); got != 0 {
		t.Fatalf("MCT* picked %d, want 0", got)
	}
	// Uncorrected with the same queue: CT1 = 4 + 3*4 + 1 = 17 > CT0 = 14 -> 0 too;
	// shrink the queue to separate them: NQ[1]=1:
	rs.NQ[1] = 1
	// MCT: CT1 = 4 + 4 + 1 = 9 < 14 -> 1. MCT*: CT1 = 24+24+1 = 49 > 34 -> 0.
	if got := NewMCT(false).Pick(v, []int{0, 1}, rs, sim.TaskInfo{}); got != 1 {
		t.Fatalf("MCT with queue picked %d, want 1", got)
	}
	if got := NewMCT(true).Pick(v, []int{0, 1}, rs, sim.TaskInfo{}); got != 0 {
		t.Fatalf("MCT* with queue picked %d, want 0", got)
	}
}

func TestRandomUniformCoversEligible(t *testing.T) {
	prm := params(5, 1, 1)
	v := &sim.View{Params: prm, Procs: make([]sim.ProcView, 4)}
	for i := range v.Procs {
		v.Procs[i] = sim.ProcView{ID: i, W: 1, State: avail.Up, Model: reliableModel()}
	}
	v.FillAnalytics()
	s := NewRandom(rng.New(1))
	counts := map[int]int{}
	eligible := []int{0, 2, 3}
	for i := 0; i < 3000; i++ {
		q := s.Pick(v, eligible, freshRound(4), sim.TaskInfo{})
		counts[q]++
	}
	if counts[1] != 0 {
		t.Fatal("random picked ineligible processor")
	}
	for _, q := range eligible {
		if counts[q] < 800 {
			t.Fatalf("processor %d picked only %d/3000 times", q, counts[q])
		}
	}
}

func TestWeightedRandomBiases(t *testing.T) {
	prm := params(5, 1, 1)
	v := &sim.View{Params: prm, Procs: []sim.ProcView{
		{ID: 0, W: 1, State: avail.Up, Model: flakyModel()},
		{ID: 1, W: 1, State: avail.Up, Model: reliableModel()},
	}}
	v.FillAnalytics()
	s, err := NewWeightedRandom(2, false, rng.New(2)) // weight = P+
	if err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	for i := 0; i < 20000; i++ {
		counts[s.Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{})]++
	}
	w0, w1 := expect.PPlus(flakyModel()), expect.PPlus(reliableModel())
	wantRatio := w1 / w0
	gotRatio := float64(counts[1]) / float64(counts[0])
	if math.Abs(gotRatio-wantRatio)/wantRatio > 0.1 {
		t.Fatalf("pick ratio %v, want ~%v", gotRatio, wantRatio)
	}
}

func TestWeightedRandomBySpeed(t *testing.T) {
	// Same model, speeds 1 vs 4: the "w" variant must favor the fast one 4:1.
	prm := params(5, 1, 1)
	v := &sim.View{Params: prm, Procs: []sim.ProcView{
		{ID: 0, W: 4, State: avail.Up, Model: reliableModel()},
		{ID: 1, W: 1, State: avail.Up, Model: reliableModel()},
	}}
	v.FillAnalytics()
	s, err := NewWeightedRandom(1, true, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	for i := 0; i < 20000; i++ {
		counts[s.Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{})]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if math.Abs(ratio-4) > 0.5 {
		t.Fatalf("speed-weighted ratio %v, want ~4", ratio)
	}
}

func TestWeightedRandomRejectsBadIndex(t *testing.T) {
	if _, err := NewWeightedRandom(0, false, rng.New(1)); err == nil {
		t.Fatal("index 0 accepted")
	}
	if _, err := NewWeightedRandom(5, true, rng.New(1)); err == nil {
		t.Fatal("index 5 accepted")
	}
}

func TestRegistryCompleteness(t *testing.T) {
	names := Names()
	if len(names) != 17 {
		t.Fatalf("Names() lists %d heuristics, want 17 (Table 2)", len(names))
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Fatalf("duplicate name %q", name)
		}
		seen[name] = true
		s, err := New(name, rng.New(1))
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("scheduler for %q reports name %q", name, s.Name())
		}
	}
	if _, err := New("nope", rng.New(1)); err == nil {
		t.Fatal("unknown name accepted")
	}
	// 17 paper heuristics + 4 "+" extensions + 4 passive + 2 proactive
	// + risk-averse remct + deadline.
	if len(AllNamesSorted()) != 29 {
		t.Fatalf("AllNamesSorted has %d entries", len(AllNamesSorted()))
	}
	for _, g := range GreedyNames() {
		if !seen[g] {
			t.Fatalf("greedy name %q missing from Names()", g)
		}
	}
	// The "+" extensions instantiate but stay out of the paper's Table 2 list.
	for _, plus := range []string{"mct+", "emct+", "lw+", "ud+"} {
		s, err := New(plus, nil)
		if err != nil {
			t.Fatalf("New(%q): %v", plus, err)
		}
		if s.Name() != plus {
			t.Fatalf("scheduler for %q reports %q", plus, s.Name())
		}
		if seen[plus] {
			t.Fatalf("extension %q leaked into Names()", plus)
		}
	}
}

func TestRiskAverseDegeneratesToEMCT(t *testing.T) {
	// With lambda = 0 the risk-averse score equals EMCT's; with a large
	// lambda it must prefer a zero-variance processor over a faster but
	// volatile one when expectations are close.
	prm := params(5, 0, 1)
	noDetour := avail.MustMarkov3([3][3]float64{ // Pur=0: zero step variance
		{0.9, 0.0, 0.1},
		{0.1, 0.8, 0.1},
		{0.3, 0.3, 0.4},
	})
	volatileM := avail.MustMarkov3([3][3]float64{
		{0.90, 0.08, 0.02},
		{0.05, 0.90, 0.05},
		{0.05, 0.05, 0.90},
	})
	v := mkView(prm,
		sim.ProcView{W: 9, Model: volatileM},
		sim.ProcView{W: 10, Model: noDetour},
	)
	lam0 := NewRiskAverse(0)
	emct := NewEMCT(false)
	g0 := lam0.Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{})
	ge := emct.Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{})
	if g0 != ge {
		t.Fatalf("lambda=0 pick %d != emct pick %d", g0, ge)
	}
	// Strong risk aversion prefers the deterministic processor.
	lam := NewRiskAverse(50)
	if got := lam.Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{}); got != 1 {
		t.Fatalf("risk-averse picked %d, want deterministic worker 1", got)
	}
	// Negative lambda clamps to 0.
	if NewRiskAverse(-3).Pick(v, []int{0, 1}, freshRound(2), sim.TaskInfo{}) != ge {
		t.Fatal("negative lambda not clamped")
	}
}

func TestAggressiveCorrectionDelays(t *testing.T) {
	// DelayScaled multiplies only communication remainders.
	pv := &sim.ProcView{ID: 0, W: 4, RemProgram: 5}
	if got := DelayScaled(pv, 3); got != 15 {
		t.Fatalf("DelayScaled idle = %d, want 15", got)
	}
	pv = &sim.ProcView{ID: 0, W: 4, HasComputing: true, ComputingRem: 6}
	if got := DelayScaled(pv, 3); got != 6 {
		t.Fatalf("DelayScaled computing = %d, want 6 (compute unscaled)", got)
	}
	pv = &sim.ProcView{
		ID: 0, W: 4, RemProgram: 2,
		HasIncoming: true, IncomingRem: 3,
		HasComputing: true, ComputingRem: 1,
	}
	// dataAt = 3*(2+3) = 15 > computingRem -> 15 + 4 = 19.
	if got := DelayScaled(pv, 3); got != 19 {
		t.Fatalf("DelayScaled pipelined = %d, want 19", got)
	}
	// Factor 1 must agree with the plain Delay.
	if DelayScaled(pv, 1) != Delay(pv) {
		t.Fatal("DelayScaled(1) != Delay")
	}
	// CTCorrected with factor 1 must agree with CT at raw Tdata.
	prm := params(5, 10, 3)
	if CTCorrected(pv, 2, prm, 1) != CT(pv, 2, prm.Tdata) {
		t.Fatal("CTCorrected(factor=1) != CT")
	}
	// Factor clamps below 1.
	if CTCorrected(pv, 2, prm, 0) != CT(pv, 2, prm.Tdata) {
		t.Fatal("CTCorrected(factor=0) not clamped")
	}
}

func BenchmarkEMCTPick(b *testing.B) {
	prm := params(10, 15, 3)
	v := &sim.View{Params: prm, Procs: make([]sim.ProcView, 20)}
	eligible := make([]int, 20)
	for i := range v.Procs {
		v.Procs[i] = sim.ProcView{ID: i, W: 1 + i%7, State: avail.Up, Model: reliableModel()}
		eligible[i] = i
	}
	v.FillAnalytics()
	s := NewEMCT(true)
	rs := freshRound(20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Pick(v, eligible, rs, sim.TaskInfo{})
	}
}

func TestLookupDoesNotInstantiate(t *testing.T) {
	// Lookup must resolve every registered name without constructing a
	// scheduler (sweep validation relies on this being cheap), and reject
	// unknown names with the same error New reports.
	for _, name := range Names() {
		if _, err := Lookup(name); err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
	}
	f, err := Lookup("emct")
	if err != nil {
		t.Fatal(err)
	}
	if s := f(nil); s.Name() != "emct" {
		t.Fatalf("factory built %q, want emct", s.Name())
	}
	if _, err := Lookup("definitely-not-registered"); err == nil {
		t.Fatal("unknown name resolved")
	}
}
