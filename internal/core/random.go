package core

import (
	"fmt"

	"repro/internal/avail"
	"repro/internal/rng"
	"repro/internal/sim"
)

// WeightFn computes a processor's selection weight for the weighted random
// heuristics of Section 6.2.
type WeightFn func(pv *sim.ProcView) float64

// Predefined reliability weights (Section 6.2), all reading the per-model
// cache in pv.Analytics rather than re-deriving Markov quantities per pick.
var (
	// WeightLongTimeUp is Random1: P(u,u), favoring processors that stay UP.
	WeightLongTimeUp WeightFn = func(pv *sim.ProcView) float64 {
		return pv.Model.P(avail.Up, avail.Up)
	}
	// WeightLikelyToWorkMore is Random2: P+, favoring processors likely to
	// be UP again before crashing.
	WeightLikelyToWorkMore WeightFn = func(pv *sim.ProcView) float64 {
		return pv.Analytics.PPlus
	}
	// WeightOftenUp is Random3: πu, favoring processors UP more often.
	WeightOftenUp WeightFn = func(pv *sim.ProcView) float64 {
		return pv.Analytics.PiU
	}
	// WeightRarelyDown is Random4: 1−πd, favoring processors DOWN less often.
	WeightRarelyDown WeightFn = func(pv *sim.ProcView) float64 {
		return 1 - pv.Analytics.PiD
	}
)

// randomSched implements the random family. A nil weight yields the plain
// uniform Random heuristic.
type randomSched struct {
	name    string
	weight  WeightFn
	bySpeed bool // divide the weight by w_q (the "w" variants)
	r       *rng.PCG
	// weights is Pick's scratch buffer, reused so the hot path stays
	// allocation-free after warm-up.
	weights []float64
	// wCache[q] memoizes the final (clamped, speed-scaled) weight of
	// worker q, keyed by its availability model pointer and speed — the
	// only inputs any reliability weight reads, and both constant for a
	// worker within a run. Models are immutable and interned, so a pointer
	// match guarantees an identical weight; a new run's platform brings new
	// pointers (or identical weights), either way preserving results.
	wCache []float64
	wKey   []*avail.Markov3
	wSpeed []int
}

// NewRandom returns the uniform Random heuristic.
func NewRandom(r *rng.PCG) sim.Scheduler {
	return &randomSched{name: "random", r: r}
}

// NewWeightedRandom returns a weighted random heuristic. idx selects the
// paper's weight (1..4); bySpeed divides weights by processor speed.
func NewWeightedRandom(idx int, bySpeed bool, r *rng.PCG) (sim.Scheduler, error) {
	var w WeightFn
	switch idx {
	case 1:
		w = WeightLongTimeUp
	case 2:
		w = WeightLikelyToWorkMore
	case 3:
		w = WeightOftenUp
	case 4:
		w = WeightRarelyDown
	default:
		return nil, fmt.Errorf("core: unknown random weight %d (want 1..4)", idx)
	}
	name := fmt.Sprintf("random%d", idx)
	if bySpeed {
		name += "w"
	}
	return &randomSched{name: name, weight: w, bySpeed: bySpeed, r: r}, nil
}

// Name implements sim.Scheduler.
func (s *randomSched) Name() string { return s.name }

// PoolSafe implements sim.Poolable: the only cross-run state is the RNG,
// which the pooling layer reseeds per run exactly as a fresh construction
// would (rng.PCG.Reseed / SplitInto).
func (s *randomSched) PoolSafe() bool { return true }

// Pick implements sim.Scheduler.
func (s *randomSched) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	if s.weight == nil {
		return eligible[s.r.Intn(len(eligible))]
	}
	if cap(s.weights) < len(eligible) {
		s.weights = make([]float64, len(eligible))
	}
	if len(s.wCache) < len(v.Procs) {
		s.wCache = make([]float64, len(v.Procs))
		s.wKey = make([]*avail.Markov3, len(v.Procs))
		s.wSpeed = make([]int, len(v.Procs))
	}
	weights := s.weights[:len(eligible)] // every entry is overwritten below
	var total float64
	for i, q := range eligible {
		pv := &v.Procs[q]
		w := s.wCache[q]
		if s.wKey[q] != pv.Model || s.wSpeed[q] != pv.W {
			w = s.weight(pv)
			if w < 0 {
				w = 0
			}
			if s.bySpeed {
				w /= float64(pv.W)
			}
			s.wCache[q] = w
			s.wKey[q] = pv.Model
			s.wSpeed[q] = pv.W
		}
		weights[i] = w
		total += w
	}
	if total <= 0 {
		// Degenerate weights (e.g. all-zero reliability): fall back to
		// uniform so the pick is still valid.
		return eligible[s.r.Intn(len(eligible))]
	}
	return eligible[s.r.Categorical(weights)]
}
