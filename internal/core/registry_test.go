package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// TestRegistryConcurrentRegisterLookup hammers Register from several
// goroutines while others run Lookup, New, and AllNamesSorted. It is the
// -race guard for the registry's RWMutex: pre-lock, concurrent registration
// vs. sweep-validation lookups was a data race on the registry map.
func TestRegistryConcurrentRegisterLookup(t *testing.T) {
	const (
		writers = 4
		readers = 4
		rounds  = 200
	)
	factory := func(*rng.PCG) sim.Scheduler { return NewMCT(false) }

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("conc-test-%d-%d", g, i)
				if err := Register(name, factory); err != nil {
					t.Errorf("Register(%q): %v", name, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := Lookup("emct"); err != nil {
					t.Errorf("Lookup(emct): %v", err)
					return
				}
				if _, err := New("mct", nil); err != nil {
					t.Errorf("New(mct): %v", err)
					return
				}
				if names := AllNamesSorted(); len(names) == 0 {
					t.Error("AllNamesSorted returned nothing")
					return
				}
			}
		}()
	}
	wg.Wait()

	// Every registration must be visible afterwards.
	for g := 0; g < writers; g++ {
		name := fmt.Sprintf("conc-test-%d-%d", g, rounds-1)
		if _, err := Lookup(name); err != nil {
			t.Fatalf("registered name lost: %v", err)
		}
	}
}

func TestRegisterRejectsEmpty(t *testing.T) {
	if err := Register("", func(*rng.PCG) sim.Scheduler { return NewMCT(false) }); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register("valid-name", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
}
