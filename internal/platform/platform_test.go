package platform

import (
	"testing"

	"repro/internal/avail"
	"repro/internal/rng"
)

func testModel() *avail.Markov3 {
	return avail.MustMarkov3([3][3]float64{
		{0.95, 0.03, 0.02},
		{0.04, 0.90, 0.06},
		{0.05, 0.05, 0.90},
	})
}

func TestProcessorValidate(t *testing.T) {
	ok := &Processor{ID: 0, W: 3, Avail: testModel()}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid processor rejected: %v", err)
	}
	if err := (&Processor{ID: 0, W: 0, Avail: testModel()}).Validate(); err == nil {
		t.Fatal("zero speed accepted")
	}
	if err := (&Processor{ID: 0, W: 1}).Validate(); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestPlatformValidate(t *testing.T) {
	if err := (&Platform{}).Validate(); err == nil {
		t.Fatal("empty platform accepted")
	}
	pl := Homogeneous(3, 2, testModel())
	if err := pl.Validate(); err != nil {
		t.Fatalf("homogeneous platform rejected: %v", err)
	}
	// Wrong ID ordering must be caught.
	pl.Processors[1].ID = 5
	if err := pl.Validate(); err == nil {
		t.Fatal("mis-indexed processor accepted")
	}
	pl.Processors[1] = nil
	if err := pl.Validate(); err == nil {
		t.Fatal("nil processor accepted")
	}
}

func TestParamsValidate(t *testing.T) {
	base := Params{M: 10, Iterations: 10, Ncom: 5, Tprog: 5, Tdata: 1, MaxReplicas: 2}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{M: 0, Iterations: 1, Ncom: 1},
		{M: 1, Iterations: 0, Ncom: 1},
		{M: 1, Iterations: 1, Ncom: 0},
		{M: 1, Iterations: 1, Ncom: 1, Tprog: -1},
		{M: 1, Iterations: 1, Ncom: 1, Tdata: -2},
		{M: 1, Iterations: 1, Ncom: 1, MaxReplicas: -1},
		{M: 1, Iterations: 1, Ncom: 1, MaxSlots: -7},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestEffectiveMaxSlots(t *testing.T) {
	p := Params{}
	if got := p.EffectiveMaxSlots(); got != DefaultMaxSlots {
		t.Fatalf("default MaxSlots = %d", got)
	}
	p.MaxSlots = 500
	if got := p.EffectiveMaxSlots(); got != 500 {
		t.Fatalf("explicit MaxSlots = %d", got)
	}
}

func TestRandomPlatformRespectsRanges(t *testing.T) {
	r := rng.New(51)
	for trial := 0; trial < 20; trial++ {
		wmin := 1 + r.Intn(10)
		pl := RandomPlatform(r, 20, wmin)
		if err := pl.Validate(); err != nil {
			t.Fatal(err)
		}
		if pl.P() != 20 {
			t.Fatalf("P() = %d", pl.P())
		}
		for _, proc := range pl.Processors {
			if proc.W < wmin || proc.W > 10*wmin {
				t.Fatalf("w=%d outside [%d, %d]", proc.W, wmin, 10*wmin)
			}
		}
		if pl.MinW() < wmin {
			t.Fatalf("MinW = %d < wmin = %d", pl.MinW(), wmin)
		}
	}
}

func TestRandomPlatformDeterministic(t *testing.T) {
	a := RandomPlatform(rng.New(52), 10, 3)
	b := RandomPlatform(rng.New(52), 10, 3)
	for i := range a.Processors {
		if a.Processors[i].W != b.Processors[i].W {
			t.Fatal("same seed produced different speeds")
		}
		if a.Processors[i].Avail.Matrix() != b.Processors[i].Avail.Matrix() {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestMinW(t *testing.T) {
	pl := &Platform{Processors: []*Processor{
		{ID: 0, W: 7, Avail: testModel()},
		{ID: 1, W: 3, Avail: testModel()},
		{ID: 2, W: 9, Avail: testModel()},
	}}
	if got := pl.MinW(); got != 3 {
		t.Fatalf("MinW = %d, want 3", got)
	}
}
