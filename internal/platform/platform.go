// Package platform describes the static part of the execution environment of
// Section 3: the volatile processors with their speeds and availability
// models, and the application/communication parameters (m, Tprog, Tdata,
// ncom) of the bounded multi-port model.
package platform

import (
	"fmt"

	"repro/internal/avail"
	"repro/internal/rng"
)

// Processor is the static description of one volatile worker.
type Processor struct {
	// ID indexes the processor within its platform (0-based; the paper's
	// P_{ID+1}).
	ID int
	// W is w_q: the number of UP slots needed to compute one task.
	W int
	// Avail is the 3-state Markov availability model the master believes
	// this processor follows. Informed heuristics (EMCT, LW, UD, weighted
	// randoms) read their probabilities from here. For trace-driven or
	// semi-Markov experiments this is the master's (possibly wrong) belief
	// while the actual trajectory comes from elsewhere.
	Avail *avail.Markov3
}

// Validate checks the processor description.
func (p *Processor) Validate() error {
	if p.W <= 0 {
		return fmt.Errorf("platform: processor %d has non-positive speed w=%d", p.ID, p.W)
	}
	if p.Avail == nil {
		return fmt.Errorf("platform: processor %d has no availability model", p.ID)
	}
	return nil
}

// Platform is a set of processors served by one master.
type Platform struct {
	Processors []*Processor
}

// Validate checks the platform description.
func (pl *Platform) Validate() error {
	if len(pl.Processors) == 0 {
		return fmt.Errorf("platform: no processors")
	}
	for i, p := range pl.Processors {
		if p == nil {
			return fmt.Errorf("platform: processor %d is nil", i)
		}
		if p.ID != i {
			return fmt.Errorf("platform: processor at index %d has ID %d", i, p.ID)
		}
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// P reports the number of processors.
func (pl *Platform) P() int { return len(pl.Processors) }

// MinW returns the smallest task cost across processors (the fastest
// processor's w).
func (pl *Platform) MinW() int {
	min := pl.Processors[0].W
	for _, p := range pl.Processors[1:] {
		if p.W < min {
			min = p.W
		}
	}
	return min
}

// Params carries the application and communication parameters of one run.
type Params struct {
	// M is the number of tasks per iteration.
	M int
	// Iterations is the number of iterations to complete (the paper's
	// experiments fix 10 and measure makespan).
	Iterations int
	// Ncom is the maximum number of simultaneous master transfers
	// (BW / bw in the bounded multi-port model). Use NoContention for ∞.
	Ncom int
	// Tprog is the number of slots needed to send the program to a worker.
	Tprog int
	// Tdata is the number of slots needed to send one task's input data.
	Tdata int
	// MaxReplicas caps the number of *additional* copies of a task
	// (the paper uses 2, i.e. at most 3 copies in flight).
	MaxReplicas int
	// MaxSlots aborts a simulation that exceeds this many slots; 0 means
	// DefaultMaxSlots. Runs that hit the cap are reported as censored.
	MaxSlots int
}

// NoContention encodes ncom = +∞ (Proposition 2's regime).
const NoContention = int(^uint(0) >> 1) // max int

// DefaultMaxSlots bounds runaway simulations (bad heuristics on hostile
// availability) while being far beyond any legitimate paper-scale makespan.
const DefaultMaxSlots = 1_000_000

// Validate checks parameter consistency.
func (pr *Params) Validate() error {
	switch {
	case pr.M <= 0:
		return fmt.Errorf("platform: M=%d, want > 0", pr.M)
	case pr.Iterations <= 0:
		return fmt.Errorf("platform: Iterations=%d, want > 0", pr.Iterations)
	case pr.Ncom <= 0:
		return fmt.Errorf("platform: Ncom=%d, want > 0 (use NoContention for unbounded)", pr.Ncom)
	case pr.Tprog < 0:
		return fmt.Errorf("platform: Tprog=%d, want >= 0", pr.Tprog)
	case pr.Tdata < 0:
		return fmt.Errorf("platform: Tdata=%d, want >= 0", pr.Tdata)
	case pr.MaxReplicas < 0:
		return fmt.Errorf("platform: MaxReplicas=%d, want >= 0", pr.MaxReplicas)
	case pr.MaxSlots < 0:
		return fmt.Errorf("platform: MaxSlots=%d, want >= 0", pr.MaxSlots)
	}
	return nil
}

// EffectiveMaxSlots resolves the MaxSlots default.
func (pr *Params) EffectiveMaxSlots() int {
	if pr.MaxSlots == 0 {
		return DefaultMaxSlots
	}
	return pr.MaxSlots
}

// RandomPlatform draws a platform with the rules of Section 7: p processors,
// each with w uniform in [wmin, 10·wmin] and an availability model drawn with
// the paper's transition rule.
func RandomPlatform(r *rng.PCG, p, wmin int) *Platform {
	if p <= 0 || wmin <= 0 {
		panic("platform: RandomPlatform needs p > 0 and wmin > 0")
	}
	procs := make([]*Processor, p)
	for i := range procs {
		procs[i] = &Processor{
			ID:    i,
			W:     r.IntRange(wmin, 10*wmin),
			Avail: avail.RandomMarkov3(r),
		}
	}
	return &Platform{Processors: procs}
}

// Homogeneous builds a platform of p identical processors with speed w and a
// shared availability model; handy for tests and for the off-line study
// (which assumes same-speed processors).
func Homogeneous(p, w int, m *avail.Markov3) *Platform {
	procs := make([]*Processor, p)
	for i := range procs {
		procs[i] = &Processor{ID: i, W: w, Avail: m}
	}
	return &Platform{Processors: procs}
}
