package batch_test

import (
	"testing"
	"testing/quick"

	"repro/internal/avail"
	"repro/internal/batch"
	"repro/internal/platform"
	"repro/internal/rng"
)

// invariantChecker verifies, slot by slot, the reservation contract of the
// batch engine:
//
//   - exclusivity: no two jobs ever share a worker, and a job ID, once
//     bound to a worker, stays on that worker for its whole life (kills
//     resubmit under a fresh ID, so any ID maps to exactly one worker);
//   - capacity: running jobs never exceed the worker count, active
//     transfers never exceed ncom (nor the number of transferring jobs);
//   - conservation: live jobs (running + queued) never exceed m, and job
//     IDs only ever increase (FIFO submission order).
type invariantChecker struct {
	t       *testing.T
	seed    uint64
	d       batch.Discipline
	prm     platform.Params
	p       int
	idOwner map[int]int // job ID -> worker it was bound to
	maxID   int
	failed  bool
}

func (c *invariantChecker) errorf(format string, args ...any) {
	c.failed = true
	c.t.Errorf("seed %d %v: %s", c.seed, c.d, c.t.Name())
	c.t.Errorf(format, args...)
}

func (c *invariantChecker) observe(r *batch.SlotReport) {
	if len(r.Running) > c.p {
		c.errorf("slot %d: %d running jobs on %d workers", r.Slot, len(r.Running), c.p)
	}
	seenWorker := make(map[int]int, len(r.Running))
	for _, j := range r.Running {
		if prev, dup := seenWorker[j.Worker]; dup {
			c.errorf("slot %d: worker %d holds jobs %d and %d", r.Slot, j.Worker, prev, j.ID)
		}
		seenWorker[j.Worker] = j.ID
		if owner, ok := c.idOwner[j.ID]; ok {
			if owner != j.Worker {
				c.errorf("slot %d: job %d migrated from worker %d to %d",
					r.Slot, j.ID, owner, j.Worker)
			}
		} else {
			c.idOwner[j.ID] = j.Worker
			if j.ID > c.maxID {
				c.maxID = j.ID
			}
		}
	}
	if r.ActiveTransfers > c.prm.Ncom {
		c.errorf("slot %d: %d active transfers exceed ncom=%d", r.Slot, r.ActiveTransfers, c.prm.Ncom)
	}
	// A job that received its last transfer unit this slot reports
	// Transferring=false yet used a channel, so bound by running jobs, not
	// by the still-transferring count.
	if r.ActiveTransfers > len(r.Running) {
		c.errorf("slot %d: %d active transfers but only %d running jobs",
			r.Slot, r.ActiveTransfers, len(r.Running))
	}
	if live := len(r.Running) + r.QueueLen; live > c.prm.M {
		c.errorf("slot %d: %d live jobs exceed m=%d", r.Slot, live, c.prm.M)
	}
}

// runChecked runs one random scenario under the invariant checker and
// verifies the end-of-run accounting identities.
func runChecked(t *testing.T, seed uint64, d batch.Discipline) bool {
	t.Helper()
	r := rng.New(seed)
	p := 2 + r.Intn(8)
	wmin := 1 + r.Intn(4)
	pl := platform.RandomPlatform(r, p, wmin)
	prm := platform.Params{
		M:          1 + r.Intn(8),
		Iterations: 1 + r.Intn(3),
		Ncom:       1 + r.Intn(p),
		Tprog:      r.Intn(12),
		Tdata:      r.Intn(4),
		MaxSlots:   300000,
	}
	procs := make([]avail.Process, pl.P())
	for i, proc := range pl.Processors {
		procs[i] = proc.Avail.NewProcess(r.Split(), proc.Avail.SampleStationary(r))
	}
	chk := &invariantChecker{t: t, seed: seed, d: d, prm: prm, p: p, idOwner: make(map[int]int)}
	res, err := batch.Run(batch.Config{
		Platform: pl, Params: prm, Procs: procs, Discipline: d, Observer: chk.observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats

	// A killed job is requeued exactly once per failure.
	if st.Kills != st.Requeues {
		chk.errorf("kills %d != requeues %d", st.Kills, st.Requeues)
	}
	// Every dispatch ends in a completion or a kill; censored runs may
	// leave jobs running at the cap.
	ends := st.TasksCompleted + st.Kills
	if res.Completed {
		if st.JobsDispatched != ends {
			chk.errorf("dispatches %d != completions %d + kills %d",
				st.JobsDispatched, st.TasksCompleted, st.Kills)
		}
		if st.TasksCompleted != prm.M*prm.Iterations {
			chk.errorf("completed run finished %d tasks, want %d",
				st.TasksCompleted, prm.M*prm.Iterations)
		}
		if len(res.IterationEnds) != prm.Iterations {
			chk.errorf("completed run recorded %d iteration ends, want %d",
				len(res.IterationEnds), prm.Iterations)
		}
	} else if st.JobsDispatched < ends || st.JobsDispatched > ends+p {
		chk.errorf("censored run: dispatches %d outside [%d, %d]", st.JobsDispatched, ends, ends+p)
	}
	if d == batch.FCFS && st.Backfills != 0 {
		chk.errorf("FCFS backfilled %d jobs", st.Backfills)
	}
	for i := 1; i < len(res.IterationEnds); i++ {
		if res.IterationEnds[i] <= res.IterationEnds[i-1] {
			chk.errorf("iteration ends not increasing: %v", res.IterationEnds)
		}
	}
	return !chk.failed
}

// TestInvariantsRandomScenarios sweeps random scenarios through both
// disciplines under the per-slot invariant checker, the batch engine's
// analogue of the fractional engine's TestIncrementalMatchesFullRebuild
// oracle runs.
func TestInvariantsRandomScenarios(t *testing.T) {
	for _, d := range []batch.Discipline{batch.FCFS, batch.EASY} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			f := func(seed uint64) bool { return runChecked(t, seed, d) }
			if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeterminism pins that identical configurations (fresh trajectory
// processes, same seeds) reproduce identical results — the property the
// sweep layer's worker-count determinism is built on.
func TestDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		for _, d := range []batch.Discipline{batch.FCFS, batch.EASY} {
			mk := func() *batch.Result {
				r := rng.New(seed)
				pl := platform.RandomPlatform(r, 4, 2)
				prm := platform.Params{M: 5, Iterations: 2, Ncom: 2, Tprog: 6, Tdata: 2, MaxSlots: 300000}
				procs := make([]avail.Process, pl.P())
				for i, proc := range pl.Processors {
					procs[i] = proc.Avail.NewProcess(r.Split(), proc.Avail.SampleStationary(r))
				}
				res, err := batch.Run(batch.Config{Platform: pl, Params: prm, Procs: procs, Discipline: d})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := mk(), mk()
			if a.Makespan != b.Makespan || a.Stats != b.Stats {
				t.Errorf("seed %d %v: reruns diverged: %+v vs %+v", seed, d, a, b)
			}
		}
	}
}
