package batch_test

import (
	"strings"
	"testing"

	"repro/internal/avail"
	"repro/internal/batch"
	"repro/internal/platform"
	"repro/internal/rng"
)

// alwaysUp returns a platform of the given speeds plus always-UP replay
// processes (the Markov models attached are irrelevant to the batch
// scheduler but required by platform validation).
func alwaysUp(t *testing.T, speeds ...int) (*platform.Platform, []avail.Process) {
	t.Helper()
	return replay(t, speeds, func(int) string { return "u" })
}

// replay builds a platform with the given speeds and per-worker replay
// vectors (a vector holds its last state past its end).
func replay(t *testing.T, speeds []int, vec func(worker int) string) (*platform.Platform, []avail.Process) {
	t.Helper()
	m := avail.RandomMarkov3(rng.New(1))
	procs := make([]*platform.Processor, len(speeds))
	ps := make([]avail.Process, len(speeds))
	for i, w := range speeds {
		procs[i] = &platform.Processor{ID: i, W: w, Avail: m}
		v, err := avail.ParseVector(vec(i))
		if err != nil {
			t.Fatal(err)
		}
		ps[i] = avail.NewVectorProcess(v)
	}
	return &platform.Platform{Processors: procs}, ps
}

func run(t *testing.T, pl *platform.Platform, procs []avail.Process, prm platform.Params, d batch.Discipline) *batch.Result {
	t.Helper()
	res, err := batch.Run(batch.Config{Platform: pl, Params: prm, Procs: procs, Discipline: d})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSingleJobSingleWorker pins the service model: program + data +
// compute, one slot each phase, no contention.
func TestSingleJobSingleWorker(t *testing.T) {
	pl, procs := alwaysUp(t, 3)
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 1, Tprog: 2, Tdata: 1}
	res := run(t, pl, procs, prm, batch.FCFS)
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	// Dispatch at slot 0; 2 program + 1 data slots, then 3 compute slots.
	if want := 6; res.Makespan != want {
		t.Errorf("makespan = %d, want %d", res.Makespan, want)
	}
	if res.Stats.ChannelSlots != 3 || res.Stats.ComputeSlots != 3 {
		t.Errorf("channel/compute slots = %d/%d, want 3/3",
			res.Stats.ChannelSlots, res.Stats.ComputeSlots)
	}
}

// TestProgramPersistsAcrossIterations pins that the program is sent once
// per worker (absent crashes) while data is re-sent per task.
func TestProgramPersistsAcrossIterations(t *testing.T) {
	pl, procs := alwaysUp(t, 2)
	prm := platform.Params{M: 1, Iterations: 3, Ncom: 1, Tprog: 4, Tdata: 1}
	res := run(t, pl, procs, prm, batch.FCFS)
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	// Iteration 1: 4 prog + 1 data + 2 compute = 7; iterations 2, 3: 1 data
	// + 2 compute = 3 each.
	if want := 13; res.Makespan != want {
		t.Errorf("makespan = %d, want %d", res.Makespan, want)
	}
	if want := int64(4 + 3*1); res.Stats.ChannelSlots != want {
		t.Errorf("channel slots = %d, want %d", res.Stats.ChannelSlots, want)
	}
}

// TestHeadOfLineBlockingVsBackfill is the canonical FCFS-vs-EASY split: a
// fast and a slow worker, many short jobs. FCFS's head always prefers
// waiting for the fast worker (smaller estimated completion), so the slow
// worker idles; EASY backfills it.
func TestHeadOfLineBlockingVsBackfill(t *testing.T) {
	prm := platform.Params{M: 10, Iterations: 1, Ncom: 2, Tprog: 0, Tdata: 0}
	plF, procsF := alwaysUp(t, 1, 3)
	fcfs := run(t, plF, procsF, prm, batch.FCFS)
	plE, procsE := alwaysUp(t, 1, 3)
	easy := run(t, plE, procsE, prm, batch.EASY)
	if !fcfs.Completed || !easy.Completed {
		t.Fatal("runs did not complete")
	}
	if fcfs.Stats.Backfills != 0 {
		t.Errorf("FCFS backfilled %d jobs", fcfs.Stats.Backfills)
	}
	if easy.Stats.Backfills == 0 {
		t.Error("EASY never backfilled")
	}
	if easy.Makespan >= fcfs.Makespan {
		t.Errorf("EASY makespan %d not better than FCFS %d", easy.Makespan, fcfs.Makespan)
	}
}

// TestKillAndRequeue pins the failure path: a crash mid-service kills the
// job, wipes the program, and resubmits the task, which then runs again
// from scratch.
func TestKillAndRequeue(t *testing.T) {
	speeds := []int{2}
	// UP for 3 slots (program 1 + data 1 + compute 1 of 2), DOWN 1 slot
	// (kill), then UP forever.
	pl, procs := replay(t, speeds, func(int) string { return "uuud" + strings.Repeat("u", 50) })
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 1, Tprog: 1, Tdata: 1}
	res := run(t, pl, procs, prm, batch.FCFS)
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if res.Stats.Kills != 1 || res.Stats.Requeues != 1 {
		t.Errorf("kills/requeues = %d/%d, want 1/1", res.Stats.Kills, res.Stats.Requeues)
	}
	if res.Stats.JobsDispatched != 2 {
		t.Errorf("dispatches = %d, want 2", res.Stats.JobsDispatched)
	}
	// Slot 3 is DOWN (kill); redispatch at slot 4: 1 prog + 1 data + 2
	// compute → completes at slot 7, makespan 8.
	if want := 8; res.Makespan != want {
		t.Errorf("makespan = %d, want %d", res.Makespan, want)
	}
}

// TestReclaimedSuspends pins that RECLAIMED pauses a job without killing
// it: the reservation holds, progress resumes when the worker returns UP.
func TestReclaimedSuspends(t *testing.T) {
	pl, procs := replay(t, []int{2}, func(int) string { return "urru" + strings.Repeat("u", 50) })
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 1, Tprog: 0, Tdata: 1}
	res := run(t, pl, procs, prm, batch.FCFS)
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if res.Stats.Kills != 0 {
		t.Errorf("kills = %d, want 0", res.Stats.Kills)
	}
	// Slot 0: data; slots 1-2 reclaimed (suspended); slots 3-4: compute.
	if want := 5; res.Makespan != want {
		t.Errorf("makespan = %d, want %d", res.Makespan, want)
	}
	if res.Stats.SuspendedSlots != 2 {
		t.Errorf("suspended slots = %d, want 2", res.Stats.SuspendedSlots)
	}
}

// TestNcomBoundsTransfers pins the master-link budget: with ncom=1, two
// concurrent transfers serialize.
func TestNcomBoundsTransfers(t *testing.T) {
	pl, procs := alwaysUp(t, 1, 1)
	prm := platform.Params{M: 2, Iterations: 1, Ncom: 1, Tprog: 0, Tdata: 2}
	res := run(t, pl, procs, prm, batch.FCFS)
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if res.Stats.PeakTransfers != 1 {
		t.Errorf("peak transfers = %d, want 1", res.Stats.PeakTransfers)
	}
	// Job 0 transfers slots 0-1 and computes slot 2; job 1 (equal speeds,
	// dispatched to the idle worker at slot 0) transfers slots 2-3 and
	// computes slot 4.
	if want := 5; res.Makespan != want {
		t.Errorf("makespan = %d, want %d", res.Makespan, want)
	}
}

// TestCensoredRun pins the slot cap.
func TestCensoredRun(t *testing.T) {
	pl, procs := replay(t, []int{1}, func(int) string { return "d" })
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 1, Tprog: 0, Tdata: 0, MaxSlots: 40}
	res := run(t, pl, procs, prm, batch.FCFS)
	if res.Completed {
		t.Fatal("run on a dead worker completed")
	}
	if res.Makespan != 40 {
		t.Errorf("censored makespan = %d, want 40", res.Makespan)
	}
}

// TestRunnerMatchesRun pins that the pooled Runner reproduces one-shot
// results bit for bit across back-to-back runs of different shapes.
func TestRunnerMatchesRun(t *testing.T) {
	rn := batch.NewRunner()
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		r := rng.New(seed)
		pl := platform.RandomPlatform(r, 2+r.Intn(6), 1+r.Intn(3))
		prm := platform.Params{
			M: 1 + r.Intn(6), Iterations: 1 + r.Intn(3),
			Ncom: 1 + r.Intn(4), Tprog: r.Intn(8), Tdata: r.Intn(4),
			MaxSlots: 200000,
		}
		for _, d := range []batch.Discipline{batch.FCFS, batch.EASY} {
			mk := func() []avail.Process {
				rr := rng.New(seed ^ 0xBEEF)
				procs := make([]avail.Process, pl.P())
				for i, proc := range pl.Processors {
					procs[i] = proc.Avail.NewProcess(rr.Split(), proc.Avail.SampleStationary(rr))
				}
				return procs
			}
			oneShot, err := batch.Run(batch.Config{Platform: pl, Params: prm, Procs: mk(), Discipline: d})
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := rn.Run(batch.Config{Platform: pl, Params: prm, Procs: mk(), Discipline: d})
			if err != nil {
				t.Fatal(err)
			}
			if oneShot.Makespan != pooled.Makespan || oneShot.Completed != pooled.Completed ||
				oneShot.Stats != pooled.Stats {
				t.Errorf("seed %d %v: pooled run diverged: %+v vs %+v", seed, d, oneShot, pooled)
			}
		}
	}
}

// TestConfigValidation exercises the error paths.
func TestConfigValidation(t *testing.T) {
	pl, procs := alwaysUp(t, 1)
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 1}
	cases := []struct {
		name string
		cfg  batch.Config
	}{
		{"nil platform", batch.Config{Params: prm, Procs: procs}},
		{"proc count mismatch", batch.Config{Platform: pl, Params: prm, Procs: nil}},
		{"nil proc", batch.Config{Platform: pl, Params: prm, Procs: []avail.Process{nil}}},
		{"bad params", batch.Config{Platform: pl, Params: platform.Params{}, Procs: procs}},
		{"bad discipline", batch.Config{Platform: pl, Params: prm, Procs: procs, Discipline: 99}},
	}
	for _, c := range cases {
		if _, err := batch.Run(c.cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}
