// Package batch implements a batch-scheduling baseline for the iterative
// application, the comparison point of "Dynamic Fractional Resource
// Scheduling vs. Batch Scheduling" (Casanova, Stillwell, Vivien): every
// task of the current iteration is submitted as a rigid single-node job
// that holds an exclusive whole-worker reservation for its lifetime. The
// scheduler is availability-aware only in the crudest way a production
// batch system is — it will not dispatch onto a node it can see is
// offline, and it kills and resubmits jobs whose node crashes — but it
// never migrates, never replicates, never preempts, and plans with
// optimistic runtime estimates that ignore volatility and master-link
// contention. Running it on the exact availability trajectories the
// fractional heuristics face quantifies what the paper's fine-grained
// scheduling buys over conventional batch allocation.
//
// Two dispatch disciplines are provided:
//
//   - FCFS: jobs start strictly in queue order. The head job is placed on
//     the worker with the smallest estimated completion time (estimated
//     free time + estimated service time); if that worker is busy the head
//     waits for it — and, FCFS being FCFS, every job behind the head waits
//     too, even while slower workers sit idle.
//   - EASY: identical head placement, but while the head waits for its
//     reserved worker, jobs behind it backfill onto idle UP workers. A
//     backfilled single-node job never touches the head's reservation, so
//     under the scheduler's own optimistic estimates backfilling never
//     delays the queue head (as in classic EASY, volatility can break the
//     guarantee after the fact: if the reserved worker crashes, a worker
//     that backfilling occupied might have served the head sooner).
//
// The engine shares the paper's machine model (discrete slots, UP /
// RECLAIMED / DOWN workers, program + per-task data transfers bounded by
// the master's ncom budget) so batch and fractional runs are comparable
// slot for slot.
package batch

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/avail"
	"repro/internal/platform"
)

// Discipline selects the dispatch rule.
type Discipline int

const (
	// FCFS starts jobs strictly in queue order (head-of-line blocking).
	FCFS Discipline = iota
	// EASY is FCFS plus EASY backfilling around a blocked queue head.
	EASY
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FCFS:
		return "fcfs"
	case EASY:
		return "easy"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Config assembles everything one batch run needs.
type Config struct {
	// Platform is the static processor description (speeds are used for
	// service-time estimates and compute progress; the per-processor Markov
	// models are ignored — batch schedulers do not model volatility).
	Platform *platform.Platform
	// Params are the application/communication parameters. MaxReplicas is
	// ignored: batch jobs are never replicated.
	Params platform.Params
	// Procs supplies the actual availability trajectory of each processor,
	// in platform order — pass the same trajectories a fractional run saw
	// to compare the two on identical worlds.
	Procs []avail.Process
	// Discipline selects FCFS or EASY dispatch.
	Discipline Discipline
	// Observer, when non-nil, is invoked after every slot with a reused
	// report (valid only during the callback). Tests use it to check
	// reservation invariants.
	Observer func(*SlotReport)
}

func (c *Config) validate() error {
	if c.Platform == nil {
		return fmt.Errorf("batch: nil platform")
	}
	if err := c.Platform.Validate(); err != nil {
		return err
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if len(c.Procs) != c.Platform.P() {
		return fmt.Errorf("batch: %d availability processes for %d processors",
			len(c.Procs), c.Platform.P())
	}
	for i, p := range c.Procs {
		if p == nil {
			return fmt.Errorf("batch: nil availability process %d", i)
		}
	}
	switch c.Discipline {
	case FCFS, EASY:
	default:
		return fmt.Errorf("batch: unknown discipline %d", int(c.Discipline))
	}
	return nil
}

// Stats carries the resource counters of a batch run.
type Stats struct {
	// Kills counts jobs killed because their worker went DOWN.
	Kills int
	// Requeues counts killed jobs put back on the queue (always equal to
	// Kills: every failure requeues exactly once).
	Requeues int
	// JobsDispatched counts job starts (first dispatch + re-dispatches).
	JobsDispatched int
	// Backfills is the subset of JobsDispatched that started via EASY
	// backfilling while the queue head was waiting (always 0 under FCFS).
	Backfills int
	// TasksCompleted counts task completions (m per iteration).
	TasksCompleted int
	// ChannelSlots is the total number of channel-slots spent transferring
	// (program + data, including work later wasted by kills).
	ChannelSlots int64
	// ComputeSlots is the total number of UP slots spent computing.
	ComputeSlots int64
	// SuspendedSlots counts slots a dispatched job sat on a non-UP worker,
	// holding its exclusive reservation without progressing.
	SuspendedSlots int64
	// PeakTransfers is the maximum number of simultaneous transfers in any
	// slot (never exceeds ncom).
	PeakTransfers int
}

// Result is the outcome of one batch run.
type Result struct {
	// Completed reports whether all iterations finished within the slot cap.
	Completed bool
	// Makespan is the number of slots consumed. When Completed is false it
	// equals the cap and the run is censored.
	Makespan int
	// IterationEnds[i] is the slot count at which iteration i completed.
	IterationEnds []int
	// Stats carries the resource counters.
	Stats Stats
}

// JobView is one running job in a SlotReport.
type JobView struct {
	// Task is the job's task index within the current iteration.
	Task int
	// Worker is the exclusively reserved worker.
	Worker int
	// ID is the job's submission sequence number (FIFO order; requeued
	// jobs get a fresh, larger ID).
	ID int
	// Transferring reports whether the job still needs channel slots.
	Transferring bool
}

// SlotReport is the per-slot observer payload. The struct and its slices
// are reused between slots.
type SlotReport struct {
	// Slot is the 0-based slot just simulated.
	Slot int
	// Iteration is the current iteration (0-based).
	Iteration int
	// Running lists the dispatched jobs, in worker order.
	Running []JobView
	// QueueLen is the number of jobs still waiting.
	QueueLen int
	// ActiveTransfers is the number of channel slots used this slot.
	ActiveTransfers int
	// Kills is the number of jobs killed this slot.
	Kills int
}

// queuedJob is one waiting job.
type queuedJob struct {
	task int
	id   int
}

// workerState is the per-worker engine state.
type workerState struct {
	state      avail.State
	hasProgram bool
	busy       bool
	// Job fields, meaningful while busy.
	task     int
	jobID    int
	progLeft int
	dataLeft int
	workLeft int
}

// transferring reports whether the worker's job still needs the master.
func (w *workerState) transferring() bool {
	return w.busy && w.progLeft+w.dataLeft > 0
}

// estRemaining is the scheduler's optimistic estimate of the slots the
// worker's current job still needs (ignores volatility and contention).
func (w *workerState) estRemaining() int {
	return w.progLeft + w.dataLeft + w.workLeft
}

// engine is the mutable run state. Its buffers survive between runs via
// Runner, so steady-state slots allocate nothing.
type engine struct {
	cfg     Config
	params  *platform.Params
	workers []workerState
	queue   []queuedJob
	// qHead indexes the logical queue front inside queue (amortized O(1)
	// pops without resliced-away reuse; compacted when drained).
	qHead     int
	nextJobID int
	tasksDone int
	iter      int
	slot      int
	stats     Stats
	ends      []int
	// xfer is the per-slot channel-allocation scratch (worker indices,
	// sorted by job ID).
	xfer []int
	// report is the reused observer payload.
	report SlotReport
}

// Run executes one batch run with a throwaway engine.
func Run(cfg Config) (*Result, error) {
	var e engine
	return e.run(cfg)
}

// Runner wraps a reusable engine for tight loops (sweeps, benchmarks):
// worker tables, the job queue and scratch buffers are recycled across
// runs. Results are identical to Run's. A Runner must not be shared
// between goroutines.
type Runner struct {
	e engine
}

// NewRunner returns a reusable Runner; its first run sizes the buffers.
func NewRunner() *Runner { return &Runner{} }

// Run executes one batch run, reusing the Runner's buffers.
func (r *Runner) Run(cfg Config) (*Result, error) {
	return r.e.run(cfg)
}

func (e *engine) run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e.reset(cfg)
	maxSlots := e.params.EffectiveMaxSlots()
	for e.slot = 0; e.slot < maxSlots; e.slot++ {
		e.sample()
		kills := e.killAndRequeue()
		e.dispatch()
		// Compute before transferring: progress reads the pre-transfer
		// counters, so a slot spent receiving the last program/data unit is
		// never also a compute slot (a worker communicates or computes in a
		// slot, not both — matching the fractional engine's model).
		e.progress()
		transfers := e.allocateChannels()
		if e.cfg.Observer != nil {
			e.observe(transfers, kills)
		}
		if e.barrier() {
			return e.result(true), nil
		}
	}
	e.slot = maxSlots
	return e.result(false), nil
}

// reset prepares the engine for a fresh run on cfg, reusing buffers.
func (e *engine) reset(cfg Config) {
	e.cfg = cfg
	e.params = &e.cfg.Params
	p := cfg.Platform.P()
	if cap(e.workers) < p {
		e.workers = make([]workerState, p)
	}
	e.workers = e.workers[:p]
	for i := range e.workers {
		e.workers[i] = workerState{}
	}
	e.queue = e.queue[:0]
	e.qHead = 0
	e.nextJobID = 0
	e.tasksDone = 0
	e.iter = 0
	e.slot = 0
	e.stats = Stats{}
	e.ends = e.ends[:0]
	e.enqueueIteration()
}

// enqueueIteration submits the m tasks of the next iteration in task order.
func (e *engine) enqueueIteration() {
	for t := 0; t < e.params.M; t++ {
		e.enqueue(t)
	}
}

// enqueue appends one job for task t with a fresh submission ID.
func (e *engine) enqueue(t int) {
	e.queue = append(e.queue, queuedJob{task: t, id: e.nextJobID})
	e.nextJobID++
}

// queueLen reports the number of waiting jobs.
func (e *engine) queueLen() int { return len(e.queue) - e.qHead }

// popHead removes the queue head (callers ensure the queue is non-empty).
func (e *engine) popHead() {
	e.qHead++
	if e.qHead == len(e.queue) {
		e.queue = e.queue[:0]
		e.qHead = 0
	}
}

// sample advances every worker's availability trajectory by one slot.
func (e *engine) sample() {
	for i := range e.workers {
		e.workers[i].state = e.cfg.Procs[i].Next()
	}
}

// killAndRequeue kills the job of every DOWN worker and resubmits its task
// at the queue tail (a batch resubmission: new arrival, new ID). DOWN also
// wipes the worker's program copy. Returns the number of kills this slot.
func (e *engine) killAndRequeue() int {
	kills := 0
	for i := range e.workers {
		w := &e.workers[i]
		if w.state != avail.Down {
			continue
		}
		w.hasProgram = false
		if !w.busy {
			continue
		}
		task := w.task
		w.busy = false
		e.stats.Kills++
		e.stats.Requeues++
		e.enqueue(task)
		kills++
	}
	return kills
}

// estService is the scheduler's optimistic service-time estimate for a job
// on worker q: program (if q lacks it) + data + compute at full
// availability, ignoring master-link contention.
func (e *engine) estService(q int) int {
	est := e.params.Tdata + e.cfg.Platform.Processors[q].W
	if !e.workers[q].hasProgram {
		est += e.params.Tprog
	}
	return est
}

// placeHead finds the worker minimizing the head job's estimated
// completion time: estimated free time (0 for an idle UP worker, the
// optimistic remaining service for a busy worker, never for an idle
// offline worker) plus estimated service. Ties break toward the lowest
// worker ID. ok is false when no worker is usable at all.
func (e *engine) placeHead() (best int, bestFree int, ok bool) {
	bestCompletion := math.MaxInt
	for q := range e.workers {
		w := &e.workers[q]
		var free int
		switch {
		case w.busy:
			free = w.estRemaining()
		case w.state == avail.Up:
			free = 0
		default:
			continue // idle offline worker: unschedulable until it returns
		}
		var est int
		if w.busy {
			// A busy worker will hold the program once its current job's
			// transfer completes — unless it crashes, which the optimistic
			// estimate ignores — so the next job pays no Tprog.
			est = e.params.Tdata + e.cfg.Platform.Processors[q].W
		} else {
			est = e.estService(q)
		}
		if c := free + est; c < bestCompletion {
			bestCompletion, best, bestFree, ok = c, q, free, true
		}
	}
	return best, bestFree, ok
}

// start dispatches the given queued job onto worker q (idle and UP).
func (e *engine) start(j queuedJob, q int, backfill bool) {
	w := &e.workers[q]
	w.busy = true
	w.task = j.task
	w.jobID = j.id
	w.progLeft = 0
	if !w.hasProgram {
		w.progLeft = e.params.Tprog
	}
	w.dataLeft = e.params.Tdata
	w.workLeft = e.cfg.Platform.Processors[q].W
	e.stats.JobsDispatched++
	if backfill {
		e.stats.Backfills++
	}
}

// dispatch assigns queued jobs to workers under the configured discipline.
//
// Both disciplines place the queue head on the worker with the smallest
// estimated completion time; when that worker is busy the head waits for
// it (holding a reservation). Under FCFS everything behind the head waits
// too; under EASY the jobs behind it backfill, in queue order, onto idle
// UP workers — none of which is the head's reserved worker (that one is
// busy), so backfilling cannot delay the head's estimated start (see the
// package comment for the crash caveat).
func (e *engine) dispatch() {
	for e.queueLen() > 0 {
		head := e.queue[e.qHead]
		q, free, ok := e.placeHead()
		if !ok {
			return // every worker idle and offline: nothing to do
		}
		if free > 0 {
			// Head reserves busy worker q and waits for it.
			if e.cfg.Discipline == EASY {
				e.backfill()
			}
			return
		}
		e.start(head, q, false)
		e.popHead()
	}
}

// backfill starts jobs behind the blocked head on idle UP workers, in
// queue order, each on the idle worker with its smallest estimated
// service. The head's reserved worker is busy, so it is never a candidate.
func (e *engine) backfill() {
	for i := e.qHead + 1; i < len(e.queue); i++ {
		best, bestEst := -1, math.MaxInt
		for q := range e.workers {
			w := &e.workers[q]
			if w.busy || w.state != avail.Up {
				continue
			}
			if est := e.estService(q); est < bestEst {
				best, bestEst = q, est
			}
		}
		if best < 0 {
			return // no idle UP worker left
		}
		e.start(e.queue[i], best, true)
		copy(e.queue[i:], e.queue[i+1:])
		e.queue = e.queue[:len(e.queue)-1]
		i--
	}
}

// allocateChannels grants up to ncom channel slots to transferring jobs on
// UP workers, in job-submission order (FIFO priority on the master link),
// and advances their transfers. Returns the number of channels used.
func (e *engine) allocateChannels() int {
	e.xfer = e.xfer[:0]
	for q := range e.workers {
		w := &e.workers[q]
		if w.transferring() && w.state == avail.Up {
			e.xfer = append(e.xfer, q)
		}
	}
	sort.Slice(e.xfer, func(a, b int) bool {
		return e.workers[e.xfer[a]].jobID < e.workers[e.xfer[b]].jobID
	})
	n := len(e.xfer)
	if n > e.params.Ncom {
		n = e.params.Ncom
	}
	for _, q := range e.xfer[:n] {
		w := &e.workers[q]
		if w.progLeft > 0 {
			w.progLeft--
			if w.progLeft == 0 {
				w.hasProgram = true
			}
		} else {
			w.dataLeft--
		}
		e.stats.ChannelSlots++
	}
	if n > e.stats.PeakTransfers {
		e.stats.PeakTransfers = n
	}
	return n
}

// progress advances computation on UP workers whose transfer is complete
// and completes finished tasks; non-UP busy workers accrue suspended time.
func (e *engine) progress() {
	for q := range e.workers {
		w := &e.workers[q]
		if !w.busy {
			continue
		}
		if w.state != avail.Up {
			e.stats.SuspendedSlots++
			continue
		}
		if w.progLeft+w.dataLeft > 0 {
			continue // still transferring (or waiting for a channel)
		}
		w.workLeft--
		e.stats.ComputeSlots++
		if w.workLeft == 0 {
			w.busy = false
			e.tasksDone++
			e.stats.TasksCompleted++
		}
	}
}

// barrier checks the iteration barrier; it reports whether the whole run
// is complete.
func (e *engine) barrier() bool {
	if e.tasksDone < e.params.M {
		return false
	}
	e.tasksDone = 0
	e.ends = append(e.ends, e.slot+1)
	e.iter++
	if e.iter == e.params.Iterations {
		return true
	}
	e.enqueueIteration()
	return false
}

// observe fills and delivers the reused SlotReport.
func (e *engine) observe(transfers, kills int) {
	r := &e.report
	r.Slot = e.slot
	r.Iteration = e.iter
	r.Running = r.Running[:0]
	for q := range e.workers {
		w := &e.workers[q]
		if !w.busy {
			continue
		}
		r.Running = append(r.Running, JobView{
			Task: w.task, Worker: q, ID: w.jobID, Transferring: w.transferring(),
		})
	}
	r.QueueLen = e.queueLen()
	r.ActiveTransfers = transfers
	r.Kills = kills
	e.cfg.Observer(r)
}

// result builds the Result (IterationEnds is copied so the engine can be
// reused).
func (e *engine) result(completed bool) *Result {
	res := &Result{
		Completed:     completed,
		Makespan:      e.slot,
		IterationEnds: append([]int(nil), e.ends...),
		Stats:         e.stats,
	}
	if completed {
		res.Makespan = e.ends[len(e.ends)-1]
	}
	return res
}
