package rng

import "math"

// This file implements the continuous distributions used to synthesize
// non-Markovian availability traces (the paper's future-work direction, and
// our stand-in for Failure Trace Archive data). All samplers are inverse-CDF
// or Box-Muller based so that they consume a bounded, deterministic number of
// uniforms per draw, keeping replays exactly reproducible.

// Exponential returns a sample from Exp(rate); mean 1/rate.
// It panics if rate <= 0.
func (p *PCG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	// Inverse CDF; 1-U avoids log(0).
	return -math.Log(1-p.Float64()) / rate
}

// Weibull returns a sample from Weibull(shape, scale).
// Shape < 1 yields heavy-tailed sojourns typical of desktop-grid
// availability intervals. It panics if shape or scale is non-positive.
func (p *PCG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	return scale * math.Pow(-math.Log(1-p.Float64()), 1/shape)
}

// Pareto returns a sample from a Pareto distribution with minimum xm and
// tail index alpha. It panics if xm or alpha is non-positive.
func (p *PCG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	return xm / math.Pow(1-p.Float64(), 1/alpha)
}

// Normal returns a sample from N(mu, sigma^2) via Box-Muller.
// It panics if sigma < 0.
func (p *PCG) Normal(mu, sigma float64) float64 {
	if sigma < 0 {
		panic("rng: Normal with negative sigma")
	}
	// Box-Muller; use (0,1] for the radial uniform to avoid log(0).
	u := 1 - p.Float64()
	v := p.Float64()
	return mu + sigma*math.Sqrt(-2*math.Log(u))*math.Cos(2*math.Pi*v)
}

// LogNormal returns a sample whose logarithm is N(mu, sigma^2).
func (p *PCG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(p.Normal(mu, sigma))
}

// Bernoulli returns true with probability prob (clamped to [0,1]).
func (p *PCG) Bernoulli(prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return p.Float64() < prob
}

// Categorical returns an index sampled according to the given non-negative
// weights. It panics if weights is empty or sums to zero.
func (p *PCG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: Categorical with negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("rng: Categorical with no mass")
	}
	x := p.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating-point slack: return the last index with positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}
