package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("sibling splits produced %d identical outputs out of 100", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	mk := func() (*PCG, *PCG) {
		p := New(99)
		return p.Split(), p.Split()
	}
	a1, a2 := mk()
	b1, b2 := mk()
	for i := 0; i < 200; i++ {
		if a1.Uint64() != b1.Uint64() || a2.Uint64() != b2.Uint64() {
			t.Fatalf("split streams not reproducible at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	p := New(3)
	for i := 0; i < 10000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	p := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	p := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := p.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(%d)=%d occurred %d times; badly non-uniform", 7, v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	p := New(6)
	for i := 0; i < 1000; i++ {
		v := p.IntRange(3, 9)
		if v < 3 || v > 9 {
			t.Fatalf("IntRange out of [3,9]: %d", v)
		}
	}
	if v := p.IntRange(5, 5); v != 5 {
		t.Fatalf("degenerate IntRange = %d, want 5", v)
	}
}

func TestUniformRange(t *testing.T) {
	p := New(8)
	for i := 0; i < 1000; i++ {
		v := p.UniformRange(0.90, 0.99)
		if v < 0.90 || v >= 0.99 {
			t.Fatalf("UniformRange out of [0.90,0.99): %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(9)
	for trial := 0; trial < 50; trial++ {
		n := 1 + p.Intn(40)
		perm := p.Perm(n)
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("invalid permutation %v", perm)
			}
			seen[v] = true
		}
	}
}

func TestExponentialMean(t *testing.T) {
	p := New(10)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.Exponential(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exponential(2) mean %v, want ~0.5", mean)
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	// Weibull(shape=1, scale=s) is Exp(1/s).
	p := New(11)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.Weibull(1, 3)
	}
	mean := sum / n
	if math.Abs(mean-3) > 0.06 {
		t.Fatalf("Weibull(1,3) mean %v, want ~3", mean)
	}
}

func TestParetoMinimum(t *testing.T) {
	p := New(12)
	for i := 0; i < 10000; i++ {
		if v := p.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto sample %v below xm=2", v)
		}
	}
}

func TestParetoMean(t *testing.T) {
	// Mean of Pareto(xm, alpha) is alpha*xm/(alpha-1) for alpha > 1.
	p := New(13)
	const n = 400000
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.Pareto(1, 3)
	}
	mean := sum / n
	if math.Abs(mean-1.5) > 0.02 {
		t.Fatalf("Pareto(1,3) mean %v, want ~1.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	p := New(14)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := p.Normal(5, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-5) > 0.03 {
		t.Fatalf("Normal mean %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Fatalf("Normal variance %v, want ~4", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	p := New(15)
	for i := 0; i < 10000; i++ {
		if v := p.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal sample %v not positive", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	p := New(16)
	for i := 0; i < 100; i++ {
		if p.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !p.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	p := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if p.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %v", rate)
	}
}

func TestCategoricalRespectWeights(t *testing.T) {
	p := New(18)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[p.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {-1, 2}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%v) did not panic", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestQuickUint64Bits(t *testing.T) {
	// Property: output bits are roughly balanced for any seed.
	f := func(seed uint64) bool {
		p := New(seed)
		ones := 0
		const draws = 64
		for i := 0; i < draws; i++ {
			v := p.Uint64()
			for v != 0 {
				ones += int(v & 1)
				v >>= 1
			}
		}
		// 64*64/2 = 2048 expected; allow wide slack.
		return ones > 1600 && ones < 2500
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		p := New(seed)
		for i := 0; i < 20; i++ {
			v := p.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the splitmix64 reference code.
	s := SplitMix64(0)
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	p := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	p := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Float64()
	}
}

// TestReseedMatchesNew pins the pooled-reseed contract: a reused generator
// reseeded in place must replay the exact stream a freshly allocated one
// produces, for every seed.
func TestReseedMatchesNew(t *testing.T) {
	var pooled PCG
	for seed := uint64(0); seed < 50; seed++ {
		fresh := New(seed)
		pooled.Reseed(seed)
		for i := 0; i < 16; i++ {
			if f, p := fresh.Uint64(), pooled.Uint64(); f != p {
				t.Fatalf("seed %d draw %d: New %d vs Reseed %d", seed, i, f, p)
			}
		}
	}
}

// TestSplitIntoMatchesSplit pins the pooled-split contract: SplitInto must
// leave both parent and child in exactly the states Split would have.
func TestSplitIntoMatchesSplit(t *testing.T) {
	a, b := New(99), New(99)
	var child PCG
	for i := 0; i < 20; i++ {
		ca := a.Split()
		b.SplitInto(&child)
		for j := 0; j < 8; j++ {
			if x, y := ca.Uint64(), child.Uint64(); x != y {
				t.Fatalf("split %d draw %d: %d vs %d", i, j, x, y)
			}
		}
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("parents diverged after split %d: %d vs %d", i, x, y)
		}
	}
}
