// Package rng provides deterministic, splittable pseudo-random number
// generation and the distribution samplers used throughout the simulator.
//
// All experiments in this repository must be exactly reproducible from a
// single integer seed, across machines and Go releases. The standard
// library's math/rand does not guarantee a stable stream across Go versions
// for every constructor, so we carry our own implementation of the PCG-XSL-RR
// 128/64 generator (the same family Go 1.22+ adopted) together with a
// SplitMix64 seed expander for deriving independent sub-streams.
package rng

import "math/bits"

// PCG is a PCG-XSL-RR 128/64 pseudo-random generator. The zero value is not
// ready for use; construct instances with New or NewFromState.
//
// PCG is not safe for concurrent use; derive one generator per goroutine with
// Split.
type PCG struct {
	hi, lo uint64
}

// pcg multiplier (128-bit), from the PCG reference implementation.
const (
	mulHi = 2549297995355413924
	mulLo = 4865540595714422341
	incHi = 6364136223846793005
	incLo = 1442695040888963407
)

// New returns a generator seeded from the given 64-bit seed. Two generators
// built from the same seed produce identical streams.
func New(seed uint64) *PCG {
	p := &PCG{}
	p.Reseed(seed)
	return p
}

// Reseed resets p in place to the exact state New(seed) would construct,
// without allocating. Tight loops that need one fresh generator per
// iteration (per-trial streams in sweeps) reseed a pooled PCG instead of
// allocating a new one.
func (p *PCG) Reseed(seed uint64) {
	sm := SplitMix64(seed)
	p.hi, p.lo = sm.Next(), sm.Next()
	// Advance once so that nearby seeds diverge immediately.
	p.Uint64()
}

// NewFromState returns a generator with the exact 128-bit internal state.
// It is intended for tests and for restoring saved generators.
func NewFromState(hi, lo uint64) *PCG {
	return &PCG{hi: hi, lo: lo}
}

// State reports the current 128-bit internal state.
func (p *PCG) State() (hi, lo uint64) { return p.hi, p.lo }

// Uint64 returns a uniformly distributed 64-bit value and advances the state.
func (p *PCG) Uint64() uint64 {
	// state = state * mul + inc (128-bit arithmetic)
	carryLo, carry := bits.Add64(mulLo*p.lo, incLo, 0)
	hi := mulHi*p.lo + mulLo*p.hi + mulHiLoUpper(p.lo)
	hi, _ = bits.Add64(hi, incHi, carry)
	p.lo, p.hi = carryLo, hi

	// XSL-RR output function.
	return bits.RotateLeft64(p.hi^p.lo, -int(p.hi>>58))
}

// mulHiLoUpper returns the upper 64 bits of mulLo * lo.
func mulHiLoUpper(lo uint64) uint64 {
	hi, _ := bits.Mul64(mulLo, lo)
	return hi
}

// Split derives an independent generator from the current one. The parent
// stream advances; the child is seeded from fresh parent output, so repeated
// Split calls yield distinct, reproducible children.
func (p *PCG) Split() *PCG {
	child := &PCG{}
	p.SplitInto(child)
	return child
}

// SplitInto is Split into caller-owned storage: child receives the exact
// state a Split call would have produced (the parent advances identically),
// but no allocation occurs. p and child must not alias.
func (p *PCG) SplitInto(child *PCG) {
	child.hi = p.Uint64()
	child.lo = p.Uint64() | 1
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(p.boundedUint64(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (p *PCG) Int63() int64 {
	return int64(p.Uint64() >> 1)
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// multiply-shift rejection method (unbiased).
func (p *PCG) boundedUint64(bound uint64) uint64 {
	hi, lo := bits.Mul64(p.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(p.Uint64(), bound)
		}
	}
	return hi
}

// UniformRange returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (p *PCG) UniformRange(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: UniformRange with hi < lo")
	}
	return lo + (hi-lo)*p.Float64()
}

// IntRange returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (p *PCG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + p.Intn(hi-lo+1)
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (p *PCG) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// SplitMix64 is a tiny seed-expansion generator (Vigna). It is used to turn
// one user-facing seed into the wider state PCG needs, and in tests.
type SplitMix64 uint64

// Next advances the SplitMix64 state and returns the next value.
func (s *SplitMix64) Next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
