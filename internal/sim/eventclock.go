package sim

import (
	"fmt"

	"repro/internal/avail"
)

// This file is the event-driven time base (Config.Mode == ModeEvent). Two
// mechanisms replace the slot loop's flat per-slot costs:
//
//   - availability is sampled at sojourn granularity: each processor's
//     trajectory (avail.Trajectory) yields (state, startSlot) runs, queued
//     on a (slot, worker) min-heap, so advancing states costs O(changes)
//     per slot instead of O(P) RNG draws;
//
//   - quiet spans are skipped: when a finished slot mutated no
//     scheduler-visible state and no scheduler decision could bind work on
//     the frozen platform, every slot before the next queued availability
//     transition would replay identically, so the clock jumps straight to
//     that transition (nextSlot).
//
// All per-slot mutation sites (crash handling, tracker updates, dirty
// marks, metrics) are shared with slot mode — event mode only changes when
// they run, never what they do.

// transitionHeap is a binary min-heap of pending availability transitions
// ordered by (slot, worker). Same-slot entries pop in ascending worker
// order, matching advanceStates' ascending-worker loop, so simultaneous
// transitions apply in the identical order and crash event streams stay
// bit-identical across modes.
type transitionHeap struct {
	slot   []int
	worker []int
}

func (h *transitionHeap) reset() {
	h.slot = h.slot[:0]
	h.worker = h.worker[:0]
}

func (h *transitionHeap) len() int { return len(h.slot) }

func (h *transitionHeap) less(a, b int) bool {
	return h.slot[a] < h.slot[b] ||
		(h.slot[a] == h.slot[b] && h.worker[a] < h.worker[b])
}

func (h *transitionHeap) swap(a, b int) {
	h.slot[a], h.slot[b] = h.slot[b], h.slot[a]
	h.worker[a], h.worker[b] = h.worker[b], h.worker[a]
}

func (h *transitionHeap) push(slot, worker int) {
	h.slot = append(h.slot, slot)
	h.worker = append(h.worker, worker)
	for i := len(h.slot) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// min returns the earliest queued transition slot.
func (h *transitionHeap) min() (slot int, ok bool) {
	if len(h.slot) == 0 {
		return 0, false
	}
	return h.slot[0], true
}

// pop removes and returns the root entry.
func (h *transitionHeap) pop() (slot, worker int) {
	slot, worker = h.slot[0], h.worker[0]
	last := len(h.slot) - 1
	h.swap(0, last)
	h.slot = h.slot[:last]
	h.worker = h.worker[:last]
	for i := 0; ; {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < last && h.less(left, least) {
			least = left
		}
		if right < last && h.less(right, least) {
			least = right
		}
		if least == i {
			break
		}
		h.swap(i, least)
		i = least
	}
	return slot, worker
}

// initEventClock sizes and fills the event clock after reset: one
// trajectory per worker, its slot-0 state applied directly and its first
// real transition queued. Applying slot 0 here — in ascending worker order,
// the same order the queue would drain a slot-0 tie — keeps the heap free
// of the initial P-way tie, and workers whose slot-0 state holds Forever
// (a permanently-down volunteer, a recorded vector past its end) never
// enter the queue at all. That makes priming O(P) with per-worker O(1)
// instead of the O(P log P) push-pop churn a 100k-worker platform paid on
// its first slot. Config.validate has already checked every process
// implements avail.Trajectory.
func (e *engine) initEventClock() error {
	p := len(e.workers)
	if cap(e.trajs) < p {
		e.trajs = make([]avail.Trajectory, 0, p)
	}
	if cap(e.pendState) < p {
		e.pendState = make([]avail.State, p)
	}
	e.pendState = e.pendState[:p]
	for i, proc := range e.cfg.Procs {
		tr := proc.(avail.Trajectory)
		e.trajs = append(e.trajs, tr)
		s, at := tr.NextTransition()
		if at != 0 {
			return fmt.Errorf("sim: availability trajectory %d: first transition at slot %d, want 0", i, at)
		}
		if s != e.states[i] {
			e.applyState(i, s)
		}
		ns, nat := tr.NextTransition()
		if nat == avail.Forever {
			continue // the worker's slot-0 state holds for the whole run
		}
		if nat <= 0 {
			return fmt.Errorf("sim: availability trajectory %d: transition slot %d not after 0", i, nat)
		}
		e.pendState[i] = ns
		e.evq.push(nat, i)
	}
	_, canceller := e.cfg.Scheduler.(Canceller)
	e.skipQuiet = !canceller
	return nil
}

// advanceStatesEvent applies the availability transitions due at the
// current slot and refills the queue from the trajectories. Between queued
// transitions a worker's state is constant, so slots with no due entry
// leave every state untouched — exactly what advanceStates computes one
// Next call at a time, at O(changes) instead of O(P) cost.
func (e *engine) advanceStatesEvent() error {
	for {
		at, ok := e.evq.min()
		if !ok || at > e.slot {
			return nil
		}
		_, i := e.evq.pop()
		next := e.pendState[i]
		if next != e.states[i] {
			e.applyState(i, next)
		}
		ns, nat := e.trajs[i].NextTransition()
		if nat == avail.Forever {
			continue // the worker's state holds for the rest of the run
		}
		if nat <= at {
			return fmt.Errorf("sim: availability trajectory %d: transition slot %d not after %d", i, nat, at)
		}
		e.pendState[i] = ns
		e.evq.push(nat, i)
	}
}

// nextSlot returns the slot the run executes after the current one. Slot
// mode always advances by one. Event mode jumps over quiet spans: between
// queued availability transitions the platform is frozen except for
// computations grinding toward known completion slots, so when no chain on
// an UP worker can advance, no computation is about to emit its start
// event or finish, and canMaterialize rules out any new binding, every
// skipped slot would replay identically — same views, same scheduler
// picks, same evaporating plans — with each computing worker advancing by
// exactly one compute slot. The clock jumps to the earliest of the next
// transition, the earliest compute completion, and the horizon, bulk-
// applying the skipped compute progress. Observer reports for the span are
// replayed verbatim (reportQuietSpan).
func (e *engine) nextSlot(maxSlots int) int {
	if e.cfg.Mode != ModeEvent || !e.skipQuiet {
		return e.slot + 1
	}
	target := maxSlots
	if at, ok := e.evq.min(); ok && at < maxSlots {
		target = at
	}
	if target <= e.slot+1 {
		return e.slot + 1
	}
	// Scan the frozen platform. A chain still needing channel slots on an
	// UP worker advances every slot, and a computation that has not started
	// yet emits EvComputeStart next slot — both force slot-by-slot
	// execution. Running computations instead bound the jump by their
	// completion slot: the slot a copy finishes must execute normally.
	// Only UP workers matter here (a RECLAIMED chain neither advances nor
	// computes), so the walk covers the UP index — O(nUp), independent of
	// the platform size once most of a volunteer grid is DOWN.
	tprog := e.params.Tprog
	computing := 0
	for i := e.upSet.min(); i != noWorker; i = e.upSet.next(i) {
		w := &e.workers[i]
		if w.needsTransfer(tprog) {
			return e.slot + 1
		}
		if w.computing == nil || !w.hasProgram(tprog) {
			continue
		}
		if w.computing.computeDone == 0 {
			return e.slot + 1
		}
		computing++
		if end := e.slot + w.proc.W - w.computing.computeDone; end < target {
			target = end
		}
	}
	if target <= e.slot+1 || e.canMaterialize() {
		return e.slot + 1
	}
	if e.slowChecks {
		e.verifySkip(target)
	}
	// Bulk-replay the skipped slots' compute progress: each one advances
	// every computing worker by one UP compute slot without completing
	// (target stops at the earliest completion). The workers carry this
	// slot's dirty marks, so their views rebuild at target exactly as
	// slot-by-slot execution would leave them.
	if computing > 0 {
		delta := target - e.slot - 1
		for i := e.upSet.min(); i != noWorker; i = e.upSet.next(i) {
			w := &e.workers[i]
			if w.computing != nil && w.hasProgram(tprog) {
				w.computing.computeDone += delta
				e.markDirty(i)
			}
		}
		e.stats.ComputeSlots += int64(computing) * int64(delta)
	}
	if e.cfg.Observer != nil {
		e.reportQuietSpan(e.slot+1, target, computing)
	}
	return target
}

// canMaterialize conservatively decides whether any scheduler decision
// could bind a new copy while worker states stay frozen. It may answer
// true when the actual scheduler would bind nothing (costing an unskipped
// slot), but answers false only when no pick could materialize:
//
//   - a pending original binds only on an UP worker with a free incoming
//     slot, and any idle worker is also free, so with no free UP worker
//     neither originals nor replicas can bind;
//   - with no pending originals, replicas need the engine's gate (more UP
//     workers than remaining tasks, replication enabled), an idle UP
//     worker, and a live task below the copy cap (leastCovered, exact
//     outside rounds since schedule undoes the planning overlay).
//
// Channel capacity never blocks a quiet slot's binding: a chain on an UP
// worker would have advanced and dirtied the slot, so all Ncom >= 1
// channels are free.
//
// Every input is an incrementally maintained counter (reindexAvail) or an
// O(copyCap) bucket probe, so the check is O(1) in both P and m — it used
// to rescan all P workers on every quiet-skip attempt, which made skipping
// itself an O(P) per-slot cost (the verifySkip slow check still recounts
// the counters against raw state).
func (e *engine) canMaterialize() bool {
	if !e.trk.pendEmpty() {
		return e.nFreeUp > 0
	}
	if e.params.MaxReplicas == 0 || e.nIdleUp == 0 || e.nUp <= e.trk.remaining {
		return false
	}
	t, _ := e.trk.leastCovered(1 + e.params.MaxReplicas)
	return t != noTask
}

// reportQuietSpan replays the Observer reports for the skipped slots
// [from, to). A quiet slot's report is fully determined by state the skip
// preconditions freeze — no transfers, a constant set of computing
// workers, a constant UP count and cumulative completion count — so the
// replayed reports are identical to what slot-by-slot execution would
// emit.
func (e *engine) reportQuietSpan(from, to, computing int) {
	rep := SlotReport{
		Iteration:        e.iter,
		UpWorkers:        e.nUp,
		ComputingWorkers: computing,
		TasksCompleted:   e.stats.TasksCompleted,
	}
	for s := from; s < to; s++ {
		rep.Slot = s
		e.cfg.Observer(&rep)
	}
}
