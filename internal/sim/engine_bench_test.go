package sim_test

import (
	"testing"

	"repro/internal/avail"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Micro-benchmarks for the incremental slot loop. Each isolates one of the
// costs the tracker removed: the per-pick least-covered scan (replication-
// heavy cell), and the per-slot full view rebuild (quiet platform where most
// workers are DOWN and clean).

// benchReplicationHeavy runs many UP processors against few tasks, so the
// replication loop fires almost every slot. Pre-tracker, every pick
// re-scanned all m tasks.
func benchReplicationHeavy(b *testing.B, mode sim.Mode) {
	scen := rng.New(7)
	pl := platform.RandomPlatform(scen, 40, 3)
	prm := platform.Params{M: 6, Iterations: 8, Ncom: 8, Tprog: 10, Tdata: 2, MaxReplicas: 2}
	runner := sim.NewRunner()
	b.ReportAllocs()
	totalSlots := 0
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(i))
		procs := make([]avail.Process, pl.P())
		for j, p := range pl.Processors {
			procs[j] = p.Avail.NewProcess(r.Split(), avail.Up)
		}
		sched, _ := core.New("emct*", nil)
		res, err := runner.Run(sim.Config{Platform: pl, Params: prm, Procs: procs, Scheduler: sched, Mode: mode})
		if err != nil {
			b.Fatal(err)
		}
		totalSlots += res.Makespan
	}
	b.ReportMetric(float64(totalSlots)/float64(b.N), "slots/run")
}

func BenchmarkEngineReplicationHeavy(b *testing.B) { benchReplicationHeavy(b, sim.ModeSlot) }

// BenchmarkEngineReplicationHeavyEvent is the busy-platform worst case for
// the event clock: transitions are frequent and workers rarely idle, so
// quiet-slot skipping almost never fires and the heap bookkeeping is pure
// overhead. The pair bounds the event engine's regression on busy cells.
func BenchmarkEngineReplicationHeavyEvent(b *testing.B) { benchReplicationHeavy(b, sim.ModeEvent) }

// benchQuietPlatform keeps most of a large platform DOWN, so the dirty set
// leaves the bulk of the ProcViews untouched each slot. Pre-tracker,
// buildView rebuilt all P snapshots every slot regardless.
func benchQuietPlatform(b *testing.B, mode sim.Mode) {
	// Mostly-down model: long DOWN sojourns, short UP bursts.
	quiet := avail.MustMarkov3([3][3]float64{
		{0.60, 0.10, 0.30},
		{0.10, 0.60, 0.30},
		{0.02, 0.02, 0.96},
	})
	pl := platform.Homogeneous(40, 3, quiet)
	prm := platform.Params{
		M: 10, Iterations: 3, Ncom: 8, Tprog: 10, Tdata: 2,
		MaxReplicas: 2, MaxSlots: 20000,
	}
	runner := sim.NewRunner()
	b.ReportAllocs()
	totalSlots := 0
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(i))
		procs := make([]avail.Process, pl.P())
		for j, p := range pl.Processors {
			procs[j] = p.Avail.NewProcess(r.Split(), avail.Down)
		}
		sched, _ := core.New("emct*", nil)
		res, err := runner.Run(sim.Config{Platform: pl, Params: prm, Procs: procs, Scheduler: sched, Mode: mode})
		if err != nil {
			b.Fatal(err)
		}
		totalSlots += res.Makespan
	}
	b.ReportMetric(float64(totalSlots)/float64(b.N), "slots/run")
}

func BenchmarkEngineQuietPlatform(b *testing.B) { benchQuietPlatform(b, sim.ModeSlot) }

// BenchmarkEngineQuietPlatformEvent is the event clock's home turf: with
// long DOWN sojourns the simulation should jump across quiet spans instead
// of stepping 20000 slots, so this pair measures the skip machinery's
// actual payoff against the same platform in slot mode.
func BenchmarkEngineQuietPlatformEvent(b *testing.B) { benchQuietPlatform(b, sim.ModeEvent) }
