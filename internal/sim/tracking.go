package sim

// This file holds the engine's incremental task indexes. The scheduler round
// used to recount and re-scan the whole task table every slot — O(m) for the
// remaining-task count, O(m) for the originals loop, and O(m) *per pick* in
// the replication loop. taskTracker shifts that cost to the mutation sites
// (bind, completion, crash, cancellation, barrier), so a slot pays in
// proportion to what actually changed.

// noTask marks an absent task (empty index, unbucketed).
const noTask = -1

// taskTracker indexes the task table for the scheduler round:
//
//   - remaining is the number of incomplete tasks (View.TasksRemaining),
//     decremented at completion instead of recounted per slot. It also makes
//     the iteration-barrier check O(1).
//   - pending holds the unbegun originals — incomplete tasks with no live
//     copy — which is exactly the set the originals loop plans for, iterated
//     in ascending task order.
//   - The replication buckets hold the incomplete tasks with >= 1 live copy
//     (plus, during a round, this round's planned copies), bucketed by copy
//     count. The least-covered pick is the minimum of the first non-empty
//     bucket: O(copyCap) bucket probes, with the reference scan's (fewest
//     copies, lowest ID) order preserved exactly.
//
// Every index is a hierarchical bitset (idSet), so membership updates are
// O(1) and ascending iteration is O(members) — an earlier revision used
// intrusive sorted linked lists, whose insertions walked to their positions
// and degraded toward O(m) per mutation at volunteer-grid scale (pinned by
// BenchmarkTrackerPendingChurn and the order-equivalence property tests in
// tracking_test.go). Steady-state maintenance allocates nothing.
type taskTracker struct {
	remaining int

	pending idSet

	// bucketOf[t] is t's current bucket (its copy count, live + any round
	// overlay), or noTask when it is in none.
	bucketOf []int
	buckets  []idSet
}

// reset re-indexes a fresh iteration: all m tasks incomplete and pending, no
// bucket occupied. Buffers are grown once and reused afterwards.
func (k *taskTracker) reset(m, copyCap int) {
	if cap(k.bucketOf) < m {
		k.bucketOf = make([]int, m)
	}
	k.bucketOf = k.bucketOf[:m]
	// Buckets 1..copyCap are used (a gain or overlay can re-key a task up to
	// the cap); index 0 stays empty.
	if len(k.buckets) < copyCap+1 {
		k.buckets = append(k.buckets, make([]idSet, copyCap+1-len(k.buckets))...)
	}
	for c := 1; c <= copyCap; c++ {
		k.buckets[c].reset(m)
	}
	k.pending.fill(m)
	k.remaining = m
	for t := 0; t < m; t++ {
		k.bucketOf[t] = noTask
	}
}

// pendFirst returns the lowest pending task ID, or noTask.
func (k *taskTracker) pendFirst() int { return k.pending.min() }

// pendAfter returns the lowest pending task ID greater than t, or noTask.
func (k *taskTracker) pendAfter(t int) int { return k.pending.next(t) }

// pendEmpty reports whether no original is pending.
func (k *taskTracker) pendEmpty() bool { return k.pending.empty() }

// pendRemove removes t from the pending index.
func (k *taskTracker) pendRemove(t int) { k.pending.remove(t) }

// pendInsert returns t to the pending index (a task whose last copy crashed
// or was cancelled becomes an unbegun original again).
func (k *taskTracker) pendInsert(t int) { k.pending.add(t) }

// bucketAdd inserts t into bucket c.
func (k *taskTracker) bucketAdd(t, c int) {
	k.buckets[c].add(t)
	k.bucketOf[t] = c
}

// bucketRemove removes t from its current bucket.
func (k *taskTracker) bucketRemove(t int) {
	k.buckets[k.bucketOf[t]].remove(t)
	k.bucketOf[t] = noTask
}

// bucketMove re-keys t to bucket c.
func (k *taskTracker) bucketMove(t, c int) {
	k.bucketRemove(t)
	k.bucketAdd(t, c)
}

// leastCovered returns the lowest-ID task in the lowest non-empty bucket
// below copyCap — the replication loop's "fewest copies first, lowest task
// ID on ties" pick — or (noTask, copyCap) when no task is replicable.
func (k *taskTracker) leastCovered(copyCap int) (task, copies int) {
	for c := 1; c < copyCap; c++ {
		if t := k.buckets[c].min(); t != noTask {
			return t, c
		}
	}
	return noTask, copyCap
}
