package sim

// This file holds the engine's incremental task indexes. The scheduler round
// used to recount and re-scan the whole task table every slot — O(m) for the
// remaining-task count, O(m) for the originals loop, and O(m) *per pick* in
// the replication loop. taskTracker shifts that cost to the mutation sites
// (bind, completion, crash, cancellation, barrier), so a slot pays in
// proportion to what actually changed.

// noTask marks an absent link / empty list head.
const noTask = -1

// taskTracker indexes the task table for the scheduler round:
//
//   - remaining is the number of incomplete tasks (View.TasksRemaining),
//     decremented at completion instead of recounted per slot. It also makes
//     the iteration-barrier check O(1).
//   - The pending list is a doubly-linked list, sorted by ascending task ID,
//     of the unbegun originals — incomplete tasks with no live copy — which
//     is exactly the set the originals loop plans for.
//   - The replication buckets hold the incomplete tasks with >= 1 live copy
//     (plus, during a round, this round's planned copies), bucketed by copy
//     count; each bucket is a sorted doubly-linked list. The least-covered
//     pick is the head of the first non-empty bucket: O(copyCap) instead of
//     an O(m) scan per pick, with the reference scan's (fewest copies,
//     lowest ID) order preserved exactly.
//
// All links are intrusive arrays indexed by task ID, so steady-state
// maintenance allocates nothing. Insertions walk to their sorted position;
// buckets and the mid-iteration pending list stay small (bounded by the live
// copies, not by m), so the walks are short in practice.
type taskTracker struct {
	remaining int

	pendHead int
	pendNext []int
	pendPrev []int

	// bucketOf[t] is t's current bucket (its copy count, live + any round
	// overlay), or noTask when it is in none.
	bucketOf   []int
	bucketHead []int
	bktNext    []int
	bktPrev    []int
}

// reset re-indexes a fresh iteration: all m tasks incomplete and pending, no
// bucket occupied. Buffers are grown once and reused afterwards.
func (k *taskTracker) reset(m, copyCap int) {
	if cap(k.pendNext) < m {
		k.pendNext = make([]int, m)
		k.pendPrev = make([]int, m)
		k.bucketOf = make([]int, m)
		k.bktNext = make([]int, m)
		k.bktPrev = make([]int, m)
	}
	k.pendNext = k.pendNext[:m]
	k.pendPrev = k.pendPrev[:m]
	k.bucketOf = k.bucketOf[:m]
	k.bktNext = k.bktNext[:m]
	k.bktPrev = k.bktPrev[:m]
	if cap(k.bucketHead) < copyCap+1 {
		k.bucketHead = make([]int, copyCap+1)
	}
	k.bucketHead = k.bucketHead[:copyCap+1]
	for c := range k.bucketHead {
		k.bucketHead[c] = noTask
	}
	k.remaining = m
	for t := 0; t < m; t++ {
		k.pendNext[t] = t + 1
		k.pendPrev[t] = t - 1
		k.bucketOf[t] = noTask
	}
	k.pendNext[m-1] = noTask
	k.pendHead = 0
}

// listInsertSorted links id into the sorted intrusive doubly-linked list
// described by (head, next, prev), walking from the head to its ascending
// position. Shared by the pending list, the replication buckets, and the
// engine's bound-chain list.
func listInsertSorted(head *int, next, prev []int, id int) {
	p, n := noTask, *head
	for n != noTask && n < id {
		p, n = n, next[n]
	}
	next[id], prev[id] = n, p
	if p == noTask {
		*head = id
	} else {
		next[p] = id
	}
	if n != noTask {
		prev[n] = id
	}
}

// listRemove unlinks id from the list described by (head, next, prev).
func listRemove(head *int, next, prev []int, id int) {
	p, n := prev[id], next[id]
	if p == noTask {
		*head = n
	} else {
		next[p] = n
	}
	if n != noTask {
		prev[n] = p
	}
}

// pendRemove unlinks t from the pending list.
func (k *taskTracker) pendRemove(t int) {
	listRemove(&k.pendHead, k.pendNext, k.pendPrev, t)
}

// pendInsert links t back into the pending list at its sorted position
// (a task whose last copy crashed or was cancelled becomes an unbegun
// original again).
func (k *taskTracker) pendInsert(t int) {
	listInsertSorted(&k.pendHead, k.pendNext, k.pendPrev, t)
}

// bucketAdd inserts t into bucket c at its sorted position.
func (k *taskTracker) bucketAdd(t, c int) {
	listInsertSorted(&k.bucketHead[c], k.bktNext, k.bktPrev, t)
	k.bucketOf[t] = c
}

// bucketRemove unlinks t from its current bucket.
func (k *taskTracker) bucketRemove(t int) {
	listRemove(&k.bucketHead[k.bucketOf[t]], k.bktNext, k.bktPrev, t)
	k.bucketOf[t] = noTask
}

// bucketMove re-keys t to bucket c.
func (k *taskTracker) bucketMove(t, c int) {
	k.bucketRemove(t)
	k.bucketAdd(t, c)
}

// leastCovered returns the lowest-ID task in the lowest non-empty bucket
// below copyCap — the replication loop's "fewest copies first, lowest task
// ID on ties" pick — or (noTask, copyCap) when no task is replicable.
func (k *taskTracker) leastCovered(copyCap int) (task, copies int) {
	for c := 1; c < copyCap; c++ {
		if h := k.bucketHead[c]; h != noTask {
			return h, c
		}
	}
	return noTask, copyCap
}
