package sim_test

import (
	"fmt"
	"testing"

	"repro/internal/avail"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sim"
)

// largePActive is the size of the cycling worker pool in the large-platform
// benchmark. It stays fixed while P grows, so the number of availability
// transitions per run — the "changes" the engine is supposed to scale with —
// is the same at P = 1k and P = 100k. It is also comfortably past the
// greedy family's heap-argmin threshold, so the volunteer-grid pick path is
// the one being measured.
const largePActive = 256

// BenchmarkLargePlatform pins the volunteer-grid scaling contract: per-slot
// cost tracks the number of availability changes, not the platform size P.
// A fixed pool of largePActive cycling workers does all the computing while
// the remaining P-largePActive workers are permanently DOWN — a one-entry
// vector trajectory whose first transition holds Forever, so the event
// queue primes them once at slot 0 and never revisits them. Growing P from
// 1k to 100k therefore adds only per-run setup (trajectory priming,
// pooled-buffer zeroing), amortized across the run's slots: event-mode
// ns/slot must stay in the same band across P, which is the measured
// acceptance criterion for the O(changes) engine work (quiet-skip checks,
// dirty-set view rebuilds, holder-list cancels). The slot-mode rows
// document the contrast: slot stepping draws one availability sample per
// worker per slot by definition, so its ns/slot grows linearly with P.
//
// CI's bench-smoke job records the P=1k pair as the regression smoke point;
// the full matrix is an EXPERIMENTS.md run.
func BenchmarkLargePlatform(b *testing.B) {
	for _, p := range []int{1_000, 10_000, 100_000} {
		for _, mode := range []sim.Mode{sim.ModeSlot, sim.ModeEvent} {
			b.Run(fmt.Sprintf("p=%dk/%s", p/1000, mode), func(b *testing.B) {
				benchLargePlatform(b, p, mode)
			})
		}
	}
}

func benchLargePlatform(b *testing.B, p int, mode sim.Mode) {
	// The active pool cycles with ~10-slot UP sojourns, so transitions and
	// recoveries keep arriving for the whole run.
	active := avail.MustMarkov3([3][3]float64{
		{0.90, 0.05, 0.05},
		{0.30, 0.60, 0.10},
		{0.30, 0.10, 0.60},
	})
	pl := platform.Homogeneous(p, 3, active)
	prm := platform.Params{
		M: 32, Iterations: 4, Ncom: 16, Tprog: 10, Tdata: 2,
		MaxReplicas: 2, MaxSlots: 20_000,
	}
	dead := avail.Vector{avail.Down}
	procs := make([]avail.Process, p)
	actives := make([]*avail.Markov3Process, largePActive)
	for i := range procs {
		if i < largePActive {
			actives[i] = active.NewProcess(rng.New(uint64(i)), avail.Up)
			procs[i] = actives[i]
		} else {
			procs[i] = avail.NewVectorProcess(dead)
		}
	}
	runner := sim.NewRunner()
	b.ReportAllocs()
	totalSlots := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rewinding the trajectory pool is benchmark scaffolding (a real
		// sweep draws fresh processes per trial), so it runs off the clock.
		b.StopTimer()
		r := rng.New(uint64(i))
		for _, ap := range actives {
			ap.Reset(active, r.Split(), avail.Up)
		}
		for j := largePActive; j < p; j++ {
			procs[j].(*avail.VectorProcess).Reset(dead)
		}
		sched, _ := core.New("emct*", nil)
		b.StartTimer()
		res, err := runner.Run(sim.Config{Platform: pl, Params: prm, Procs: procs, Scheduler: sched, Mode: mode})
		if err != nil {
			b.Fatal(err)
		}
		totalSlots += res.Makespan
	}
	b.StopTimer()
	if totalSlots > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalSlots), "ns/slot")
		b.ReportMetric(float64(totalSlots)/float64(b.N), "slots/run")
	}
}
