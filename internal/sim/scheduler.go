// Package sim implements the discrete-time (time-slot) simulator for
// master-worker iterative applications on volatile processors, following the
// model of Section 3 of the paper:
//
//   - an iteration consists of m equal tasks, synchronized at the end;
//   - every processor is, per slot, UP, RECLAIMED or DOWN;
//   - a newly enrolled worker first downloads the program (Tprog slots),
//     then per-task input data (Tdata slots); a worker may prefetch the data
//     of at most one task beyond the one it is computing;
//   - the master sustains at most ncom simultaneous transfers (bounded
//     multi-port model);
//   - RECLAIMED suspends a worker's transfers and computation (resumed
//     intact); DOWN loses program, data and partial computation;
//   - tasks may be replicated (bounded number of extra copies) when UP
//     processors outnumber the remaining tasks; completing any copy cancels
//     the others.
//
// Scheduling decisions are delegated to a Scheduler (the heuristics of
// Section 6 live in internal/core). The engine consults the scheduler every
// slot and materializes as many of its decisions as bandwidth and pipeline
// capacity allow, which realizes the paper's "dynamic" heuristic class:
// begun work is never abandoned, everything else is re-planned from scratch
// each slot.
package sim

import (
	"repro/internal/avail"
	"repro/internal/expect"
	"repro/internal/platform"
)

// ProcView is the scheduler-visible snapshot of one processor at the start
// of a slot, carrying everything the heuristics of Section 6 consume.
type ProcView struct {
	// ID is the processor index.
	ID int
	// W is w_q, the UP slots needed per task.
	W int
	// Model is the availability model the master believes the processor
	// follows (used by the informed heuristics).
	Model *avail.Markov3
	// Analytics caches the per-model Markov quantities (P+, E(up), the
	// stationary distribution, UD's survival rate) so heuristics score
	// candidates without re-deriving them every Pick. It is interned per
	// model and always non-nil inside Pick/Cancel.
	Analytics *expect.Analytics
	// State is the availability state in the current slot.
	State avail.State
	// RemProgram is the number of program slots still to be received
	// (Tprog if the worker holds nothing, 0 if it holds the full program).
	RemProgram int
	// HasComputing reports whether a task is currently being computed.
	HasComputing bool
	// ComputingRem is the remaining UP compute slots of that task.
	ComputingRem int
	// HasIncoming reports whether a task's data is bound to this worker
	// (transferring, or waiting to resume).
	HasIncoming bool
	// IncomingRem is the remaining data slots of the incoming task.
	IncomingRem int
}

// Busy reports whether the worker has any begun, unfinished work.
func (pv *ProcView) Busy() bool { return pv.HasComputing || pv.HasIncoming }

// View is the scheduler's per-slot snapshot of the whole platform.
type View struct {
	// Slot is the current time slot (0-based).
	Slot int
	// Iteration is the current iteration index (0-based). Task indices are
	// only meaningful within one iteration.
	Iteration int
	// Params are the run parameters (m, ncom, Tprog, Tdata, ...).
	Params *platform.Params
	// Procs has one entry per processor, indexed by processor ID.
	Procs []ProcView
	// TasksRemaining is the number of tasks of the current iteration not yet
	// completed.
	TasksRemaining int
	// IterTasks is the total number of tasks of the current iteration. It
	// equals Params.M under the fixed model; a configured AllocationPolicy
	// varies it per iteration (and reads it as "the size I last chose" when
	// consulted at a boundary, where it still reflects the iteration that
	// just completed).
	IterTasks int
	// UpWorkers, FreeWorkers and IdleWorkers are the engine's incrementally
	// maintained availability counts: workers currently UP, UP with a free
	// incoming slot (able to accept a new copy), and UP with no begun work
	// at all. Allocation policies size iterations from them; hand-built
	// views may leave them zero.
	UpWorkers, FreeWorkers, IdleWorkers int

	// Run identifies the simulation run this view belongs to. Engine-built
	// views carry a process-wide unique, strictly increasing run ID, so a
	// scheduler instance reused across runs (pooling) can detect the
	// boundary and drop cross-run state (commitments, caches). Hand-built
	// views leave it 0.
	Run int64
	// Epoch identifies this view revision. The engine draws epochs from a
	// process-wide strictly increasing counter and bumps the view's Epoch on
	// every refresh (at least once per scheduling round), so no two distinct
	// view revisions — across rounds, runs, or engines — ever share an
	// Epoch. 0 means change tracking is absent (hand-built views);
	// schedulers must then score from scratch every Pick.
	Epoch int64
	// ProcEpochs[q], when non-nil, is the Epoch at which processor q's
	// snapshot was last refreshed. The engine's contract: between two views
	// with ProcEpochs[q] equal, Procs[q] is unchanged. (The converse is not
	// promised: a refresh may rewrite identical values.) Schedulers use this
	// to re-score only candidates whose inputs changed; the slow-check
	// oracle (Runner.EnableSlowChecks) verifies the contract every slot.
	ProcEpochs []int64
	// SlowChecks is set when the run's full-rebuild oracle is armed
	// (Runner.EnableSlowChecks). Schedulers keeping incremental state should
	// then cross-check every cached decision against a from-scratch
	// evaluation and panic on divergence.
	SlowChecks bool
}

// FillAnalytics interns the per-model analytics of every processor that has
// a model but no cache yet. The engine populates views itself; this helper
// is for hand-built views (tests, external tooling driving schedulers
// directly).
func (v *View) FillAnalytics() {
	for i := range v.Procs {
		pv := &v.Procs[i]
		if pv.Analytics == nil && pv.Model != nil {
			pv.Analytics = expect.Of(pv.Model)
		}
	}
}

// RoundState accumulates the decisions already taken during one scheduling
// round (one slot). The greedy heuristics need n_q — how many of the tasks
// being distributed have already been piled on each processor — and the
// contention-corrected variants need n_active, the number of processors
// newly put to work this round (Section 6.3.1).
type RoundState struct {
	// NQ[q] is the number of tasks assigned to processor q in this round.
	NQ []int
	// NActive counts the processors competing for the master's bandwidth:
	// those already engaged in begun work at the start of the round, plus
	// each processor newly put to work by an assignment of this round.
	NActive int
	// Picks counts the assignments recorded this round — every accepted
	// pick, including ones a wrapper committed without consulting an inner
	// heuristic — so it equals the number of NQ increments since the round
	// started. The greedy score cache revalidates per worker (NQ entries
	// are compared directly on every use) and does not need it; it exists
	// for schedulers that track cross-call deltas instead, and the
	// change-tracking contract test pins it.
	Picks int
}

// TaskInfo describes the task for which the scheduler must pick a processor.
type TaskInfo struct {
	// Task is the task index within the current iteration, in [0, m).
	Task int
	// Replica is true when the pick is for an extra copy of an
	// already-running task rather than for the original.
	Replica bool
	// Copies is the number of live copies the task already has.
	Copies int
}

// Decline is the Pick return value meaning "leave this task unassigned for
// this slot". The dynamic heuristics never decline; the passive class
// (Section 6.1) declines while it waits for a RECLAIMED processor it has
// committed to.
const Decline = -1

// Scheduler selects processors for tasks. Implementations may keep internal
// randomness but must be deterministic given their construction seed.
type Scheduler interface {
	// Name identifies the heuristic (e.g. "emct*").
	Name() string
	// Pick returns the ID of the processor (from eligible, which is never
	// empty) that should receive the given task, or Decline to leave the
	// task unassigned this slot. The engine invokes Pick once per task per
	// slot, originals first, then replicas; rs reflects all picks already
	// made this round.
	Pick(v *View, eligible []int, rs *RoundState, ti TaskInfo) int
}

// Poolable is the optional interface of schedulers whose instances may be
// reused across simulation runs: they either keep no cross-run state, or
// detect run boundaries (View.Run, the globally unique View.Epoch /
// View.ProcEpochs stamps) and invalidate accordingly. Run pools only reuse
// schedulers that report PoolSafe() == true; wrappers should delegate to
// their inner heuristic.
type Poolable interface {
	// PoolSafe reports whether this instance may serve multiple runs.
	PoolSafe() bool
}

// PoolSafe reports whether s has opted into cross-run reuse.
func PoolSafe(s Scheduler) bool {
	p, ok := s.(Poolable)
	return ok && p.PoolSafe()
}

// Canceller is the optional interface of the paper's "proactive" heuristic
// class (Section 6.1): a scheduler that may aggressively terminate begun
// work. The engine consults Cancel at the start of every scheduling round;
// each returned processor has its pipeline (computing task and/or incoming
// transfer) aborted, the affected tasks returning to the unassigned pool.
// Partial work and received data are lost, exactly as if the scheduler had
// un-enrolled the processor (Section 3.3).
type Canceller interface {
	// Cancel returns the IDs of processors whose begun work to abort this
	// slot. IDs without begun work are ignored.
	Cancel(v *View) []int
}
