package sim

// Stats aggregates resource-usage counters over a run. They feed the
// utilization and waste analyses of the experiment reports, and several
// engine invariants are asserted against them in tests.
type Stats struct {
	// ChannelSlots is the total number of channel-slots the master spent
	// transferring (program + data, including work later wasted).
	ChannelSlots int64
	// ProgramSlots is the subset of ChannelSlots spent on program transfers.
	ProgramSlots int64
	// ComputeSlots is the total number of UP slots workers spent computing.
	ComputeSlots int64
	// WastedComputeSlots counts compute slots of copies that were later
	// crashed, cancelled, or discarded at an iteration barrier.
	WastedComputeSlots int64
	// WastedDataSlots counts data-transfer slots of copies that never
	// completed (crashes, cancellations, barriers).
	WastedDataSlots int64
	// WastedProgramSlots counts program slots lost to crashes.
	WastedProgramSlots int64
	// Crashes counts transitions into DOWN observed on workers.
	Crashes int
	// CopiesStarted counts task copies whose transfer chain began.
	CopiesStarted int
	// ReplicasStarted is the subset of CopiesStarted with replica index > 0.
	ReplicasStarted int
	// TasksCompleted counts distinct task completions (m per iteration).
	TasksCompleted int
	// PeakTransfers is the maximum number of simultaneous transfers in any
	// slot (must never exceed ncom).
	PeakTransfers int
}

// Result is the outcome of one simulation run.
type Result struct {
	// Completed reports whether all iterations finished within the slot cap.
	Completed bool
	// Makespan is the number of slots consumed. When Completed is false it
	// equals the cap and the run is censored.
	Makespan int
	// IterationEnds[i] is the slot count at which iteration i completed.
	IterationEnds []int
	// IterationTasks[i] is the number of tasks iteration i ran (including,
	// for a censored run, the in-progress iteration). Only moldable runs —
	// a Config with an AllocationPolicy — record it; under the fixed model
	// it is nil and every iteration runs Params.M tasks.
	IterationTasks []int
	// Stats carries the resource counters.
	Stats Stats
}

// EventKind labels engine events for tracing and tests.
type EventKind int

// Event kinds emitted by the engine.
const (
	// EvProgramStart: a worker began receiving the program.
	EvProgramStart EventKind = iota
	// EvDataStart: a worker began receiving a task's data.
	EvDataStart
	// EvComputeStart: a worker began computing a task copy.
	EvComputeStart
	// EvTaskComplete: a task copy finished and the task is done.
	EvTaskComplete
	// EvCopyCancelled: a live copy was cancelled (another copy finished, or
	// an iteration barrier discarded it).
	EvCopyCancelled
	// EvCrash: a worker transitioned into DOWN, losing its state.
	EvCrash
	// EvIterationDone: all m tasks of an iteration completed.
	EvIterationDone
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvProgramStart:
		return "program-start"
	case EvDataStart:
		return "data-start"
	case EvComputeStart:
		return "compute-start"
	case EvTaskComplete:
		return "task-complete"
	case EvCopyCancelled:
		return "copy-cancelled"
	case EvCrash:
		return "crash"
	case EvIterationDone:
		return "iteration-done"
	default:
		return "unknown"
	}
}

// Event is a single engine occurrence, for verbose timelines and tests.
type Event struct {
	// Slot is the time slot of the event.
	Slot int
	// Kind labels the occurrence.
	Kind EventKind
	// Worker is the processor ID (-1 when not applicable).
	Worker int
	// Task is the task index (-1 when not applicable).
	Task int
	// Replica is the copy number (0 original; -1 when not applicable).
	Replica int
	// Iteration is the iteration number at the time of the event.
	Iteration int
}

// SlotReport is handed to the per-slot observer for invariant checking and
// progress displays.
type SlotReport struct {
	// Slot is the slot that just executed.
	Slot int
	// Iteration is the current iteration index (0-based).
	Iteration int
	// TransfersUsed is the number of channels active this slot.
	TransfersUsed int
	// UpWorkers is the number of workers UP this slot.
	UpWorkers int
	// ComputingWorkers is the number of workers that advanced a computation.
	ComputingWorkers int
	// TasksCompleted is the cumulative number of completed tasks.
	TasksCompleted int
}
