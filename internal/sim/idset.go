package sim

import "math/bits"

// idSet is a two-level hierarchical bitset over the IDs [0, n): level 0 is
// one bit per ID, level 1 summarizes which level-0 words are non-empty. It
// replaces the engine's intrusive sorted linked lists (pending originals,
// replication buckets, bound chains) and backs the UP-worker index:
//
//   - add / remove / contains are O(1);
//   - min and next (ascending successor) are O(1) word scans plus a summary
//     hop, so full ascending iteration costs O(members + n/4096) — never a
//     positional walk like listInsertSorted's, which degraded toward O(n)
//     per mutation at volunteer-grid scale;
//   - iteration order is exactly ascending ID, preserving the (fewest
//     copies, lowest ID) and ascending-worker contracts the golden digests
//     pin.
//
// The zero value is an empty set over an empty universe; reset sizes it.
// All storage is reused across resets, so steady-state maintenance
// allocates nothing.
type idSet struct {
	words []uint64 // level 0: bit i%64 of words[i/64] <=> i is a member
	sum   []uint64 // level 1: bit w%64 of sum[w/64] <=> words[w] != 0
	n     int      // universe size
	count int
}

// reset clears the set and sizes it for the IDs [0, n).
func (s *idSet) reset(n int) {
	nw := (n + 63) >> 6
	ns := (nw + 63) >> 6
	if cap(s.words) < nw {
		s.words = make([]uint64, nw)
		s.sum = make([]uint64, ns)
	}
	s.words = s.words[:nw]
	s.sum = s.sum[:ns]
	for i := range s.words {
		s.words[i] = 0
	}
	for i := range s.sum {
		s.sum[i] = 0
	}
	s.n = n
	s.count = 0
}

// fill resets the set to hold every ID in [0, n).
func (s *idSet) fill(n int) {
	s.reset(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if r := uint(n & 63); r != 0 {
		s.words[len(s.words)-1] = (uint64(1) << r) - 1
	}
	for w := range s.words {
		s.sum[w>>6] |= 1 << uint(w&63)
	}
	s.count = n
}

// add inserts id; inserting a member is a no-op.
func (s *idSet) add(id int) {
	w, b := id>>6, uint64(1)<<uint(id&63)
	if s.words[w]&b != 0 {
		return
	}
	if s.words[w] == 0 {
		s.sum[w>>6] |= 1 << uint(w&63)
	}
	s.words[w] |= b
	s.count++
}

// remove deletes id; deleting a non-member is a no-op.
func (s *idSet) remove(id int) {
	w, b := id>>6, uint64(1)<<uint(id&63)
	if s.words[w]&b == 0 {
		return
	}
	s.words[w] &^= b
	if s.words[w] == 0 {
		s.sum[w>>6] &^= 1 << uint(w&63)
	}
	s.count--
}

// contains reports membership.
func (s *idSet) contains(id int) bool {
	return s.words[id>>6]&(1<<uint(id&63)) != 0
}

// empty reports whether the set has no members.
func (s *idSet) empty() bool { return s.count == 0 }

// size returns the number of members.
func (s *idSet) size() int { return s.count }

// min returns the smallest member, or -1 (noTask / noWorker) when empty.
func (s *idSet) min() int {
	if s.count == 0 {
		return -1
	}
	return s.from(0)
}

// next returns the smallest member strictly greater than id, or -1.
func (s *idSet) next(id int) int {
	id++
	if id >= s.n {
		return -1
	}
	w := id >> 6
	if rest := s.words[w] >> uint(id&63); rest != 0 {
		return id + bits.TrailingZeros64(rest)
	}
	return s.fromWord(w + 1)
}

// from returns the smallest member >= id, or -1.
func (s *idSet) from(id int) int {
	if id >= s.n {
		return -1
	}
	w := id >> 6
	if rest := s.words[w] >> uint(id&63); rest != 0 {
		return id + bits.TrailingZeros64(rest)
	}
	return s.fromWord(w + 1)
}

// fromWord returns the smallest member in words[w:], located through the
// summary level, or -1.
func (s *idSet) fromWord(w int) int {
	if w >= len(s.words) {
		return -1
	}
	sw := w >> 6
	if rest := s.sum[sw] >> uint(w&63); rest != 0 {
		w += bits.TrailingZeros64(rest)
		return w<<6 + bits.TrailingZeros64(s.words[w])
	}
	for sw++; sw < len(s.sum); sw++ {
		if s.sum[sw] != 0 {
			w = sw<<6 + bits.TrailingZeros64(s.sum[sw])
			return w<<6 + bits.TrailingZeros64(s.words[w])
		}
	}
	return -1
}

// appendTo appends the members in ascending order to dst and returns it.
func (s *idSet) appendTo(dst []int) []int {
	for sw, sword := range s.sum {
		for sword != 0 {
			w := sw<<6 + bits.TrailingZeros64(sword)
			sword &= sword - 1
			word := s.words[w]
			base := w << 6
			for word != 0 {
				dst = append(dst, base+bits.TrailingZeros64(word))
				word &= word - 1
			}
		}
	}
	return dst
}
