package sim_test

import (
	"testing"

	"repro/internal/avail"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sim"
)

// steadyModel is an arbitrary valid Markov model for workers whose actual
// trajectory is supplied by vectors (the model only informs heuristics).
func steadyModel() *avail.Markov3 {
	return avail.MustMarkov3([3][3]float64{
		{0.95, 0.03, 0.02},
		{0.04, 0.90, 0.06},
		{0.05, 0.05, 0.90},
	})
}

// firstUp is a minimal deterministic scheduler: it picks the first eligible
// processor. It exercises the engine without heuristic behavior.
type firstUp struct{}

func (firstUp) Name() string { return "first-up" }
func (firstUp) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	return eligible[0]
}

// alwaysUp builds n processes that stay UP forever.
func alwaysUp(n int) []avail.Process {
	ps := make([]avail.Process, n)
	for i := range ps {
		ps[i] = avail.NewVectorProcess(avail.Vector{avail.Up})
	}
	return ps
}

// vectors builds processes from the paper's letter strings.
func vectors(t *testing.T, specs ...string) []avail.Process {
	t.Helper()
	ps := make([]avail.Process, len(specs))
	for i, s := range specs {
		v, err := avail.ParseVector(s)
		if err != nil {
			t.Fatal(err)
		}
		ps[i] = avail.NewVectorProcess(v)
	}
	return ps
}

func baseParams() platform.Params {
	return platform.Params{
		M: 1, Iterations: 1, Ncom: 1, Tprog: 2, Tdata: 1, MaxReplicas: 2,
	}
}

func TestSingleTaskTimeline(t *testing.T) {
	// One always-UP worker, w=2, Tprog=2, Tdata=1:
	// slots 0-1 program, slot 2 data, slots 3-4 compute -> makespan 5.
	pl := platform.Homogeneous(1, 2, steadyModel())
	res, err := sim.Run(sim.Config{
		Platform:  pl,
		Params:    baseParams(),
		Procs:     alwaysUp(1),
		Scheduler: firstUp{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if res.Makespan != 5 {
		t.Fatalf("makespan = %d, want 5 (=Tprog+Tdata+w)", res.Makespan)
	}
	if res.Stats.TasksCompleted != 1 {
		t.Fatalf("TasksCompleted = %d", res.Stats.TasksCompleted)
	}
	if res.Stats.ProgramSlots != 2 || res.Stats.ChannelSlots != 3 {
		t.Fatalf("transfer accounting: prog=%d chan=%d, want 2/3",
			res.Stats.ProgramSlots, res.Stats.ChannelSlots)
	}
}

func TestProgramReusedAcrossIterations(t *testing.T) {
	// Two iterations: the program is downloaded once, data twice.
	pl := platform.Homogeneous(1, 2, steadyModel())
	prm := baseParams()
	prm.Iterations = 2
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm, Procs: alwaysUp(1), Scheduler: firstUp{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Iter 1: 5 slots; iter 2: data (1) + compute (2) = 3 slots. Total 8.
	if res.Makespan != 8 {
		t.Fatalf("makespan = %d, want 8", res.Makespan)
	}
	if res.Stats.ProgramSlots != 2 {
		t.Fatalf("program downloaded twice? ProgramSlots=%d", res.Stats.ProgramSlots)
	}
	if len(res.IterationEnds) != 2 || res.IterationEnds[0] != 5 || res.IterationEnds[1] != 8 {
		t.Fatalf("IterationEnds = %v", res.IterationEnds)
	}
}

func TestPipelinePrefetchOverlap(t *testing.T) {
	// m=2, one worker, w=3, Tdata=1, Tprog=0:
	// slot 0: data task0; slots 1-3 compute task0, data task1 at slot 1;
	// slots 4-6 compute task1 -> makespan 7.
	pl := platform.Homogeneous(1, 3, steadyModel())
	prm := platform.Params{M: 2, Iterations: 1, Ncom: 1, Tprog: 0, Tdata: 1}
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm, Procs: alwaysUp(1), Scheduler: firstUp{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 7 {
		t.Fatalf("makespan = %d, want 7 (pipelined)", res.Makespan)
	}
}

func TestReclaimedSuspendsAndResumes(t *testing.T) {
	// Worker reclaimed during compute: slots extend but work is kept.
	// Tprog=0, Tdata=1, w=2. Vector: u r r u u -> data slot 0, compute
	// suspended at 1,2, compute 3,4 -> makespan 5.
	pl := platform.Homogeneous(1, 2, steadyModel())
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 1, Tprog: 0, Tdata: 1}
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm,
		Procs:     vectors(t, "urruu"),
		Scheduler: firstUp{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Makespan != 5 {
		t.Fatalf("makespan = %d (completed=%v), want 5", res.Makespan, res.Completed)
	}
	if res.Stats.WastedComputeSlots != 0 {
		t.Fatalf("reclaimed must not waste work; wasted=%d", res.Stats.WastedComputeSlots)
	}
}

func TestDownLosesProgramAndWork(t *testing.T) {
	// Worker crashes mid-compute; after reboot everything restarts.
	// Tprog=1, Tdata=1, w=2. Vector: u u u d u u u u u ...
	// slots: 0 prog, 1 data, 2 compute(1), 3 DOWN (lose all),
	// 4 prog, 5 data, 6-7 compute -> makespan 8.
	pl := platform.Homogeneous(1, 2, steadyModel())
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 1, Tprog: 1, Tdata: 1}
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm,
		Procs:     vectors(t, "uuuduuuuu"),
		Scheduler: firstUp{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Makespan != 8 {
		t.Fatalf("makespan = %d (completed=%v), want 8", res.Makespan, res.Completed)
	}
	if res.Stats.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Stats.Crashes)
	}
	if res.Stats.WastedComputeSlots != 1 {
		t.Fatalf("wasted compute = %d, want 1", res.Stats.WastedComputeSlots)
	}
	if res.Stats.WastedDataSlots != 1 {
		t.Fatalf("wasted data = %d, want 1", res.Stats.WastedDataSlots)
	}
	if res.Stats.WastedProgramSlots != 1 {
		t.Fatalf("wasted program = %d, want 1", res.Stats.WastedProgramSlots)
	}
}

func TestNcomLimitsParallelTransfers(t *testing.T) {
	// 4 workers, 4 tasks, ncom=2: peak simultaneous transfers must be 2.
	pl := platform.Homogeneous(4, 2, steadyModel())
	prm := platform.Params{M: 4, Iterations: 1, Ncom: 2, Tprog: 2, Tdata: 2}
	maxSeen := 0
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm, Procs: alwaysUp(4), Scheduler: firstUp{},
		Observer: func(r *sim.SlotReport) {
			if r.TransfersUsed > maxSeen {
				maxSeen = r.TransfersUsed
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if maxSeen > 2 {
		t.Fatalf("observed %d simultaneous transfers with ncom=2", maxSeen)
	}
	if res.Stats.PeakTransfers != maxSeen {
		t.Fatalf("PeakTransfers=%d, observer saw %d", res.Stats.PeakTransfers, maxSeen)
	}
}

func TestNoContentionUsesAllWorkers(t *testing.T) {
	// ncom unbounded: 3 identical workers and 3 tasks run fully in parallel.
	pl := platform.Homogeneous(3, 2, steadyModel())
	prm := platform.Params{M: 3, Iterations: 1, Ncom: platform.NoContention, Tprog: 1, Tdata: 1}
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm, Procs: alwaysUp(3), Scheduler: roundRobin{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each worker: prog 0, data 1, compute 2-3 -> makespan 4.
	if res.Makespan != 4 {
		t.Fatalf("makespan = %d, want 4", res.Makespan)
	}
}

// roundRobin spreads tasks across eligible workers.
type roundRobin struct{}

func (roundRobin) Name() string { return "round-robin" }
func (roundRobin) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	best := eligible[0]
	for _, q := range eligible {
		if rs.NQ[q] < rs.NQ[best] {
			best = q
		}
	}
	return best
}

func TestReplicationCancelsLosers(t *testing.T) {
	// Two workers, one task, second worker much faster. firstUp assigns the
	// original to worker 0 (w=10); replication puts a copy on worker 1
	// (w=1), which wins; worker 0's copy must be cancelled.
	m := steadyModel()
	pl := &platform.Platform{Processors: []*platform.Processor{
		{ID: 0, W: 10, Avail: m},
		{ID: 1, W: 1, Avail: m},
	}}
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 2, Tprog: 1, Tdata: 1, MaxReplicas: 2}
	var cancelled, completed int
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm, Procs: alwaysUp(2), Scheduler: firstUp{},
		OnEvent: func(ev sim.Event) {
			switch ev.Kind {
			case sim.EvCopyCancelled:
				cancelled++
			case sim.EvTaskComplete:
				completed++
				if ev.Worker != 1 {
					t.Errorf("task completed on worker %d, want 1", ev.Worker)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Worker1: prog 0, data 1, compute 2 -> makespan 3.
	if res.Makespan != 3 {
		t.Fatalf("makespan = %d, want 3", res.Makespan)
	}
	if res.Stats.ReplicasStarted != 1 {
		t.Fatalf("ReplicasStarted = %d, want 1", res.Stats.ReplicasStarted)
	}
	if cancelled != 1 || completed != 1 {
		t.Fatalf("cancelled=%d completed=%d, want 1/1", cancelled, completed)
	}
}

func TestReplicaCapRespected(t *testing.T) {
	// 5 workers, 1 task, MaxReplicas=2: at most 3 copies ever live.
	pl := platform.Homogeneous(5, 50, steadyModel())
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 5, Tprog: 1, Tdata: 1, MaxReplicas: 2}
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm, Procs: alwaysUp(5), Scheduler: firstUp{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CopiesStarted != 3 {
		t.Fatalf("CopiesStarted = %d, want 3 (1 original + 2 replicas)", res.Stats.CopiesStarted)
	}
}

func TestNoReplicationWhenDisabled(t *testing.T) {
	pl := platform.Homogeneous(5, 10, steadyModel())
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 5, Tprog: 1, Tdata: 1, MaxReplicas: 0}
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm, Procs: alwaysUp(5), Scheduler: firstUp{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CopiesStarted != 1 || res.Stats.ReplicasStarted != 0 {
		t.Fatalf("copies=%d replicas=%d, want 1/0",
			res.Stats.CopiesStarted, res.Stats.ReplicasStarted)
	}
}

func TestAllWorkersDeadCensors(t *testing.T) {
	pl := platform.Homogeneous(2, 1, steadyModel())
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 1, Tprog: 1, Tdata: 1, MaxSlots: 200}
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm,
		Procs:     vectors(t, "d", "d"),
		Scheduler: firstUp{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("completed with all workers down")
	}
	if res.Makespan != 200 {
		t.Fatalf("censored makespan = %d, want cap 200", res.Makespan)
	}
}

func TestFlappingWorkerEventuallyFinishes(t *testing.T) {
	// Alternating u/r: transfers and compute stretch but complete.
	// Tprog=1, Tdata=1, w=2 and pattern ururu...:
	// up slots land at 0,2,4,6: prog@0, data@2, compute@4,6 -> makespan 7.
	pl := platform.Homogeneous(1, 2, steadyModel())
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 1, Tprog: 1, Tdata: 1}
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm,
		Procs:     vectors(t, "ururururur"),
		Scheduler: firstUp{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Makespan != 7 {
		t.Fatalf("makespan = %d (completed=%v), want 7", res.Makespan, res.Completed)
	}
}

func TestMassCrashMidIterationRecovers(t *testing.T) {
	// Both workers crash at slot 3, then return; the iteration completes.
	pl := platform.Homogeneous(2, 2, steadyModel())
	prm := platform.Params{M: 2, Iterations: 1, Ncom: 2, Tprog: 1, Tdata: 1}
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm,
		Procs:     vectors(t, "uuuduuuuuuuu", "uuuduuuuuuuu"),
		Scheduler: roundRobin{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not recover from mass crash")
	}
	if res.Stats.Crashes != 2 {
		t.Fatalf("crashes = %d, want 2", res.Stats.Crashes)
	}
}

func TestSchedulerProtocolViolationIsError(t *testing.T) {
	pl := platform.Homogeneous(2, 2, steadyModel())
	_, err := sim.Run(sim.Config{
		Platform: pl, Params: baseParams(), Procs: alwaysUp(2),
		Scheduler: badScheduler{},
	})
	if err == nil {
		t.Fatal("ineligible pick not rejected")
	}
}

type badScheduler struct{}

func (badScheduler) Name() string { return "bad" }
func (badScheduler) Pick(*sim.View, []int, *sim.RoundState, sim.TaskInfo) int {
	return 99
}

func TestConfigValidation(t *testing.T) {
	pl := platform.Homogeneous(1, 1, steadyModel())
	good := sim.Config{Platform: pl, Params: baseParams(), Procs: alwaysUp(1), Scheduler: firstUp{}}

	c := good
	c.Platform = nil
	if _, err := sim.Run(c); err == nil {
		t.Fatal("nil platform accepted")
	}
	c = good
	c.Procs = alwaysUp(2)
	if _, err := sim.Run(c); err == nil {
		t.Fatal("mismatched process count accepted")
	}
	c = good
	c.Procs = []avail.Process{nil}
	if _, err := sim.Run(c); err == nil {
		t.Fatal("nil process accepted")
	}
	c = good
	c.Scheduler = nil
	if _, err := sim.Run(c); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	c = good
	c.Params.M = 0
	if _, err := sim.Run(c); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	// Identical seeds produce identical makespans for every heuristic.
	for _, name := range core.Names() {
		run := func() int {
			scen := rng.New(777)
			pl := platform.RandomPlatform(scen, 10, 2)
			procs := make([]avail.Process, pl.P())
			procRng := rng.New(888)
			for i, p := range pl.Processors {
				procs[i] = p.Avail.NewProcess(procRng.Split(), avail.Up)
			}
			s, err := core.New(name, rng.New(999))
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(sim.Config{
				Platform: pl,
				Params: platform.Params{
					M: 10, Iterations: 3, Ncom: 3, Tprog: 10, Tdata: 2, MaxReplicas: 2,
				},
				Procs:     procs,
				Scheduler: s,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.Makespan
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("%s: makespans %d != %d for identical seeds", name, a, b)
		}
	}
}

func TestInvariantsAcrossHeuristicsAndScenarios(t *testing.T) {
	// Broad integration sweep: every heuristic on several random scenarios,
	// checking engine invariants via the observer and final accounting.
	seeds := []uint64{1, 2, 3}
	for _, name := range core.Names() {
		for _, seed := range seeds {
			scen := rng.New(seed)
			pl := platform.RandomPlatform(scen, 8, 3)
			procs := make([]avail.Process, pl.P())
			for i, p := range pl.Processors {
				procs[i] = p.Avail.NewProcess(scen.Split(), p.Avail.SampleStationary(scen))
			}
			s, err := core.New(name, scen.Split())
			if err != nil {
				t.Fatal(err)
			}
			prm := platform.Params{
				M: 5, Iterations: 2, Ncom: 2, Tprog: 15, Tdata: 3,
				MaxReplicas: 2, MaxSlots: 100000,
			}
			res, err := sim.Run(sim.Config{
				Platform: pl, Params: prm, Procs: procs, Scheduler: s,
				Observer: func(r *sim.SlotReport) {
					if r.TransfersUsed > prm.Ncom {
						t.Fatalf("%s/seed %d: %d transfers > ncom=%d",
							name, seed, r.TransfersUsed, prm.Ncom)
					}
				},
			})
			if err != nil {
				t.Fatalf("%s/seed %d: %v", name, seed, err)
			}
			if !res.Completed {
				t.Fatalf("%s/seed %d: censored at %d slots", name, seed, res.Makespan)
			}
			if res.Stats.TasksCompleted != prm.M*prm.Iterations {
				t.Fatalf("%s/seed %d: %d tasks completed, want %d",
					name, seed, res.Stats.TasksCompleted, prm.M*prm.Iterations)
			}
			if res.Stats.PeakTransfers > prm.Ncom {
				t.Fatalf("%s/seed %d: peak transfers %d > ncom", name, seed, res.Stats.PeakTransfers)
			}
			if len(res.IterationEnds) != prm.Iterations {
				t.Fatalf("%s/seed %d: iteration ends %v", name, seed, res.IterationEnds)
			}
			for i := 1; i < len(res.IterationEnds); i++ {
				if res.IterationEnds[i] <= res.IterationEnds[i-1] {
					t.Fatalf("%s/seed %d: non-increasing iteration ends %v",
						name, seed, res.IterationEnds)
				}
			}
		}
	}
}

func TestEventStreamConsistency(t *testing.T) {
	// The event stream must show one task-complete per task per iteration
	// and never a compute-start before a program/data start on that worker.
	scen := rng.New(42)
	pl := platform.RandomPlatform(scen, 6, 2)
	procs := make([]avail.Process, pl.P())
	for i, p := range pl.Processors {
		procs[i] = p.Avail.NewProcess(scen.Split(), avail.Up)
	}
	prm := platform.Params{M: 4, Iterations: 2, Ncom: 2, Tprog: 5, Tdata: 1, MaxReplicas: 2}
	completes := map[[2]int]int{} // (iteration, task) -> count
	sched, _ := core.New("emct", nil)
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm, Procs: procs, Scheduler: sched,
		OnEvent: func(ev sim.Event) {
			if ev.Kind == sim.EvTaskComplete {
				completes[[2]int{ev.Iteration, ev.Task}]++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("censored")
	}
	for key, n := range completes {
		if n != 1 {
			t.Fatalf("task %v completed %d times", key, n)
		}
	}
	if len(completes) != prm.M*prm.Iterations {
		t.Fatalf("%d distinct completions, want %d", len(completes), prm.M*prm.Iterations)
	}
}

func BenchmarkEngine20Procs(b *testing.B) {
	scen := rng.New(7)
	pl := platform.RandomPlatform(scen, 20, 3)
	prm := platform.Params{M: 20, Iterations: 10, Ncom: 10, Tprog: 15, Tdata: 3, MaxReplicas: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(i))
		procs := make([]avail.Process, pl.P())
		for j, p := range pl.Processors {
			procs[j] = p.Avail.NewProcess(r.Split(), avail.Up)
		}
		sched, _ := core.New("emct*", nil)
		if _, err := sim.Run(sim.Config{Platform: pl, Params: prm, Procs: procs, Scheduler: sched}); err != nil {
			b.Fatal(err)
		}
	}
}
