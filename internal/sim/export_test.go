package sim

// MutateSkipDirty suppresses the engine's markDirty for the given worker —
// a deliberately broken invalidation site, used to prove the slow-check
// oracle actually detects missed dirty marks (stale views / stale
// ProcEpochs). The mutation survives Runner reuse; pass -1 to restore
// correct behavior. Test-only.
func (r *Runner) MutateSkipDirty(worker int) { r.e.mutateSkipDirty = worker + 1 }
