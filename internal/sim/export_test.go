package sim

// EnableSlowChecks arms the full-rebuild equivalence oracle on the runner's
// engine: every buildView is verified against buildViewFull, the originals
// loop against a fresh scan of the task table, and every replication pick
// against the reference least-covered scan (see fullcheck.go). Mismatches
// panic. The flag survives Runner reuse across runs. Test-only.
func (r *Runner) EnableSlowChecks() { r.e.slowChecks = true }
