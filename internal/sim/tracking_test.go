package sim

import (
	"math/rand"
	"testing"
)

// trackerModel is the reference the property tests compare against: the raw
// per-task copy counts and completion flags, queried by full scans exactly
// like the pre-incremental scheduler round did.
type trackerModel struct {
	copies    []int
	completed []bool
	copyCap   int
}

func newTrackerModel(m, copyCap int) *trackerModel {
	return &trackerModel{copies: make([]int, m), completed: make([]bool, m), copyCap: copyCap}
}

// pendingScan returns the ascending incomplete zero-copy tasks.
func (md *trackerModel) pendingScan() []int {
	var out []int
	for t := range md.copies {
		if !md.completed[t] && md.copies[t] == 0 {
			out = append(out, t)
		}
	}
	return out
}

// leastCoveredScan is the reference (fewest copies, lowest ID) pick over
// tasks with at least one copy and below the cap.
func (md *trackerModel) leastCoveredScan() (task, copies int) {
	best, bestCopies := noTask, md.copyCap
	for t := range md.copies {
		if md.completed[t] {
			continue
		}
		if c := md.copies[t]; c >= 1 && c < bestCopies {
			best, bestCopies = t, c
		}
	}
	return best, bestCopies
}

// verifyTracker checks the tracker's pending iteration order and its
// least-covered pick against the reference scans.
func verifyTracker(t *testing.T, trk *taskTracker, md *trackerModel) {
	t.Helper()
	want := md.pendingScan()
	got = got[:0]
	for x := trk.pendFirst(); x != noTask; x = trk.pendAfter(x) {
		got = append(got, x)
	}
	if len(got) != len(want) {
		t.Fatalf("pending iteration: got %d tasks, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pending iteration[%d]: got task %d, want %d", i, got[i], want[i])
		}
	}
	wt, wc := md.leastCoveredScan()
	gt, gc := trk.leastCovered(md.copyCap)
	if gt != wt || gc != wc {
		t.Fatalf("leastCovered: got (%d, %d), want (%d, %d)", gt, gc, wt, wc)
	}
}

// got is verifyTracker's reusable scratch (kept package-level so the large-m
// property test does not reallocate it on every verification pass).
var got []int

// gain mirrors engine.taskGainedCopy against the model.
func gain(trk *taskTracker, md *trackerModel, t int) {
	if md.copies[t] == 0 {
		trk.pendRemove(t)
	} else {
		trk.bucketRemove(t)
	}
	md.copies[t]++
	trk.bucketAdd(t, md.copies[t])
}

// lose mirrors engine.taskLostCopy against the model.
func lose(trk *taskTracker, md *trackerModel, t int) {
	md.copies[t]--
	if md.completed[t] {
		return
	}
	trk.bucketRemove(t)
	if md.copies[t] == 0 {
		trk.pendInsert(t)
	} else {
		trk.bucketAdd(t, md.copies[t])
	}
}

// complete mirrors finishSlot's completion bookkeeping: the finishing copy is
// consumed, the task leaves every index, and the sibling copies are dropped
// without tracker calls (the task is already out of every scheduler index).
func complete(trk *taskTracker, md *trackerModel, t int) {
	md.copies[t]--
	md.completed[t] = true
	trk.remaining--
	trk.bucketRemove(t)
	md.copies[t] = 0
}

// runTrackerProperty drives random legal mutation sequences (the exact call
// patterns of taskGainedCopy / taskLostCopy / completion, plus the
// replication round's planned-copy overlay) and checks the tracker against
// the reference scans every checkEvery ops. This is the order-equivalence
// property test for the (fewest copies, lowest ID) contract, and — at
// m = 10k — the scale the intrusive sorted lists' positional walks degraded
// on before they were replaced.
func runTrackerProperty(t *testing.T, m, copyCap, ops, checkEvery int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	var trk taskTracker
	trk.reset(m, copyCap)
	md := newTrackerModel(m, copyCap)

	withCopies := func(below int) int { // random incomplete task with 1 <= copies < below
		start := r.Intn(m)
		for i := 0; i < m; i++ {
			t := (start + i) % m
			if !md.completed[t] && md.copies[t] >= 1 && md.copies[t] < below {
				return t
			}
		}
		return noTask
	}
	for op := 0; op < ops; op++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3: // bind an original
			if p := trk.pendFirst(); p != noTask {
				// Binding follows pick order: usually the head, sometimes a
				// later pending task (schedulers are free to pick any).
				steps := r.Intn(3)
				for steps > 0 && trk.pendAfter(p) != noTask {
					p = trk.pendAfter(p)
					steps--
				}
				gain(&trk, md, p)
			}
		case 4, 5: // bind a replica on the least-covered task
			if t, _ := trk.leastCovered(copyCap); t != noTask {
				gain(&trk, md, t)
			}
		case 6, 7: // crash/cancel one copy
			if t := withCopies(copyCap + 1); t != noTask {
				lose(&trk, md, t)
			}
		case 8: // complete a task
			if t := withCopies(copyCap + 1); t != noTask {
				complete(&trk, md, t)
			}
		case 9: // a replication round's overlay: plan, re-key, undo
			if p := trk.pendFirst(); p != noTask {
				trk.bucketAdd(p, 1) // planned original: 0 live + 1 planned
				if t, c := trk.leastCovered(copyCap); t != noTask && c+1 < copyCap+1 {
					trk.bucketMove(t, c+1) // planned replica
					trk.bucketMove(t, c)   // round over: undo
				}
				trk.bucketRemove(p) // round over: undo the overlay
			}
		}
		if trk.remaining == 0 {
			trk.reset(m, copyCap)
			md = newTrackerModel(m, copyCap)
		}
		if op%checkEvery == 0 {
			verifyTracker(t, &trk, md)
		}
	}
	verifyTracker(t, &trk, md)
}

// TestTrackerMatchesReferenceScan is the paper-scale property test: every
// pending-iteration order and least-covered pick matches the full scans.
func TestTrackerMatchesReferenceScan(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		runTrackerProperty(t, 40, 3, 4000, 1, seed)
	}
	runTrackerProperty(t, 1, 2, 200, 1, 99)  // single task
	runTrackerProperty(t, 7, 1, 500, 1, 100) // copyCap 1: replication disabled
}

// TestTrackerMatchesReferenceScanLarge is the volunteer-grid-scale stress
// test (satellite of the large-P PR): m = 10k tasks through the same
// property, which is where positional list walks degraded toward O(m) per
// mutation before the tracker moved to hierarchical bitsets.
func TestTrackerMatchesReferenceScanLarge(t *testing.T) {
	runTrackerProperty(t, 10_000, 3, 3000, 250, 7)
}

// BenchmarkTrackerPendingChurn measures one bind+lose round trip through the
// pending index at m = 10k: the lose path re-inserts the task at its sorted
// position, which is the walk that degraded toward O(m) with the intrusive
// sorted list. The engine's bound-chain index shares the same structure and
// the same fix.
func BenchmarkTrackerPendingChurn(b *testing.B) {
	const m = 10_000
	var trk taskTracker
	trk.reset(m, 3)
	md := newTrackerModel(m, 3)
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := r.Intn(m)
		gain(&trk, md, t) // leaves pending, enters bucket 1
		lose(&trk, md, t) // re-enters pending at its sorted position
	}
}

// BenchmarkTrackerBucketChurn measures bucket re-keying with every task
// sharing one bucket — the worst case for the sorted-list walk.
func BenchmarkTrackerBucketChurn(b *testing.B) {
	const m = 10_000
	var trk taskTracker
	trk.reset(m, 4)
	md := newTrackerModel(m, 4)
	for t := 0; t < m; t++ {
		gain(&trk, md, t) // all tasks in bucket 1
	}
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := r.Intn(m)
		trk.bucketMove(t, 2)
		trk.bucketMove(t, 1)
	}
}
