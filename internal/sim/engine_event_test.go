package sim_test

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/avail"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sim"
)

// vectorScenarioConfig builds one random vector-driven scenario
// deterministically from seed, so the same (seed, heuristic) pair can be
// materialized once per mode with independent but identical availability
// processes and schedulers. With sojourn1, every vector changes state at
// every slot until the vector ends, so event mode queues a transition for
// every worker at every slot and can never skip; MaxSlots stays below the
// vector length so runs never reach the hold-forever tail. Without
// sojourn1, the vectors carry multi-slot runs and the quiet-skip machinery
// gets exercised.
func vectorScenarioConfig(t *testing.T, seed uint64, heuristic string, sojourn1 bool) sim.Config {
	t.Helper()
	r := rng.New(seed)
	p := 2 + r.Intn(8)
	wmin := 1 + r.Intn(4)
	pl := platform.RandomPlatform(r, p, wmin)
	prm := platform.Params{
		M:           1 + r.Intn(8),
		Iterations:  1 + r.Intn(3),
		Ncom:        1 + r.Intn(p),
		Tprog:       r.Intn(12),
		Tdata:       r.Intn(4),
		MaxReplicas: r.Intn(3),
		MaxSlots:    600,
	}
	const vecLen = 900
	procs := make([]avail.Process, pl.P())
	for i := 0; i < pl.P(); i++ {
		v := make(avail.Vector, vecLen)
		if sojourn1 {
			v[0] = avail.State(r.Intn(3))
			for s := 1; s < vecLen; s++ {
				// Any state other than the previous one: every slot is a
				// transition for every worker.
				v[s] = (v[s-1] + 1 + avail.State(r.Intn(2))) % 3
			}
		} else {
			st := avail.State(r.Intn(3))
			for s := 0; s < vecLen; {
				run := 1 + r.Intn(40)
				for k := 0; k < run && s < vecLen; k++ {
					v[s] = st
					s++
				}
				st = (st + 1 + avail.State(r.Intn(2))) % 3
			}
		}
		procs[i] = avail.NewVectorProcess(v)
	}
	sched, err := core.New(heuristic, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{Platform: pl, Params: prm, Procs: procs, Scheduler: sched}
}

// runBothModes executes the same (seed, heuristic) scenario in slot mode on
// a plain runner and in event mode on a slow-checked runner (arming the
// full-rebuild oracles plus the quiet-skip reference check), returning
// results, event streams and per-slot observer reports for comparison.
type modeRun struct {
	res     *sim.Result
	events  []sim.Event
	reports []sim.SlotReport
}

func runMode(t *testing.T, runner *sim.Runner, cfg sim.Config, mode sim.Mode) modeRun {
	t.Helper()
	var out modeRun
	cfg.Mode = mode
	cfg.OnEvent = func(ev sim.Event) { out.events = append(out.events, ev) }
	cfg.Observer = func(rep *sim.SlotReport) { out.reports = append(out.reports, *rep) }
	res, err := runner.Run(cfg)
	if err != nil {
		t.Fatalf("mode %v: %v", mode, err)
	}
	out.res = res
	return out
}

func compareModes(t *testing.T, seed uint64, h string, slot, event modeRun) bool {
	t.Helper()
	if !reflect.DeepEqual(slot.res, event.res) {
		t.Logf("seed %d %s: slot result %+v, event result %+v", seed, h, slot.res, event.res)
		return false
	}
	if !reflect.DeepEqual(slot.events, event.events) {
		t.Logf("seed %d %s: event streams differ (%d vs %d events)", seed, h, len(slot.events), len(event.events))
		return false
	}
	if !reflect.DeepEqual(slot.reports, event.reports) {
		t.Logf("seed %d %s: observer reports differ (%d vs %d reports)", seed, h, len(slot.reports), len(event.reports))
		return false
	}
	return true
}

// TestEventModeBitIdenticalSojourn1 pins the strongest cross-mode contract:
// on availability vectors whose state changes at every slot, event mode
// degenerates to slot-by-slot execution (no skips, identical per-slot
// transitions), so every heuristic — including the RNG-consuming random
// family — must reproduce slot mode bit for bit: same result, same event
// stream, same observer reports.
func TestEventModeBitIdenticalSojourn1(t *testing.T) {
	names := append(core.Names(),
		"passive-emct", "passive-mct", "proactive-emct", "proactive-mct",
		"remct", "deadline")
	slotRunner := sim.NewRunner()
	eventRunner := sim.NewRunner()
	eventRunner.EnableSlowChecks()

	f := func(seed uint64, pickH uint8) bool {
		h := names[int(pickH)%len(names)]
		slot := runMode(t, slotRunner, vectorScenarioConfig(t, seed, h, true), sim.ModeSlot)
		event := runMode(t, eventRunner, vectorScenarioConfig(t, seed, h, true), sim.ModeEvent)
		return compareModes(t, seed, h, slot, event)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEventModeBitIdenticalDeterministic exercises the quiet-skip machinery:
// on vectors with multi-slot runs, event mode skips quiet spans, which is
// invisible to any scheduler that consumes no RNG in Pick — the greedy
// family, the incremental/deadline variants, the committing passive
// wrappers, and the proactive wrappers (for which skipping is disabled
// entirely because Cancel may fire anywhere). All must match slot mode bit
// for bit while the event engine runs with the slow-check oracles armed
// (including the quiet-skip reference check).
func TestEventModeBitIdenticalDeterministic(t *testing.T) {
	names := append(core.GreedyNames(),
		"remct", "deadline",
		"passive-emct", "passive-mct", "passive-ud",
		"proactive-emct", "proactive-mct")
	slotRunner := sim.NewRunner()
	eventRunner := sim.NewRunner()
	eventRunner.EnableSlowChecks()

	f := func(seed uint64, pickH uint8) bool {
		h := names[int(pickH)%len(names)]
		slot := runMode(t, slotRunner, vectorScenarioConfig(t, seed, h, false), sim.ModeSlot)
		event := runMode(t, eventRunner, vectorScenarioConfig(t, seed, h, false), sim.ModeEvent)
		return compareModes(t, seed, h, slot, event)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEventModeMarkovSelfConsistent runs Markov-driven scenarios (the
// sojourn-sampled trajectory path) through event mode twice — once with the
// slow-check oracles armed, once plain — and requires identical results and
// event streams. This pins the trajectory-driven clock against the
// full-rebuild references on the availability class the sweeps actually
// use, where slot mode is only distribution-equivalent, not bit-identical.
func TestEventModeMarkovSelfConsistent(t *testing.T) {
	names := append(core.Names(),
		"passive-emct", "proactive-emct", "remct", "deadline")
	checked := sim.NewRunner()
	checked.EnableSlowChecks()
	plain := sim.NewRunner()

	f := func(seed uint64, pickH uint8) bool {
		h := names[int(pickH)%len(names)]
		a := runMode(t, checked, randomScenarioConfig(t, seed, h), sim.ModeEvent)
		b := runMode(t, plain, randomScenarioConfig(t, seed, h), sim.ModeEvent)
		return compareModes(t, seed, h, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// slotOnlyProc is an availability process without a trajectory view.
type slotOnlyProc struct{}

func (slotOnlyProc) Next() avail.State { return avail.Up }

// TestEventModeRequiresTrajectory pins the validation error: event mode
// must reject processes that cannot report sojourn transitions.
func TestEventModeRequiresTrajectory(t *testing.T) {
	cfg := randomScenarioConfig(t, 7, "emct")
	cfg.Procs[0] = slotOnlyProc{}
	cfg.Mode = sim.ModeEvent
	if _, err := sim.Run(cfg); err == nil || !strings.Contains(err.Error(), "avail.Trajectory") {
		t.Fatalf("want trajectory validation error, got %v", err)
	}
	cfg.Mode = sim.ModeSlot
	if _, err := sim.Run(cfg); err != nil {
		t.Fatalf("slot mode should accept slot-only processes: %v", err)
	}
}

// TestParseMode pins the mode name surface: round-trips, the fail-fast
// error listing valid names, and rejection of undefined Config modes.
func TestParseMode(t *testing.T) {
	for _, want := range []sim.Mode{sim.ModeSlot, sim.ModeEvent} {
		got, err := sim.ParseMode(want.String())
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", want.String(), got, err, want)
		}
	}
	if names := sim.ModeNames(); !reflect.DeepEqual(names, []string{"slot", "event"}) {
		t.Fatalf("ModeNames() = %v", names)
	}
	_, err := sim.ParseMode("bogus")
	if err == nil || !strings.Contains(err.Error(), "slot") || !strings.Contains(err.Error(), "event") {
		t.Fatalf("ParseMode(bogus) error should list valid names, got %v", err)
	}
	cfg := randomScenarioConfig(t, 11, "emct")
	cfg.Mode = sim.Mode(9)
	if _, err := sim.Run(cfg); err == nil || !strings.Contains(err.Error(), "invalid mode") {
		t.Fatalf("want invalid-mode error, got %v", err)
	}
}
