package sim_test

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/avail"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sim"
)

// randomScenarioConfig builds one random small scenario deterministically
// from seed, so the same (seed, heuristic) pair can be materialized twice —
// once for the slow-checked engine and once for the plain one — with
// independent but identical schedulers and availability processes.
func randomScenarioConfig(t *testing.T, seed uint64, heuristic string) sim.Config {
	t.Helper()
	r := rng.New(seed)
	p := 2 + r.Intn(8)
	wmin := 1 + r.Intn(4)
	pl := platform.RandomPlatform(r, p, wmin)
	prm := platform.Params{
		M:           1 + r.Intn(8),
		Iterations:  1 + r.Intn(3),
		Ncom:        1 + r.Intn(p),
		Tprog:       r.Intn(12),
		Tdata:       r.Intn(4),
		MaxReplicas: r.Intn(3),
		MaxSlots:    300000,
	}
	procs := make([]avail.Process, pl.P())
	for i, proc := range pl.Processors {
		procs[i] = proc.Avail.NewProcess(r.Split(), proc.Avail.SampleStationary(r))
	}
	sched, err := core.New(heuristic, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{Platform: pl, Params: prm, Procs: procs, Scheduler: sched}
}

// TestIncrementalMatchesFullRebuild is the equivalence property test of the
// incremental scheduling work: random small scenarios run through a runner
// with the full-rebuild oracle armed (every slot's view, pending list, and
// replication pick is checked against a from-scratch recount — mismatches
// panic) and through a plain runner; the two must produce identical results
// and identical event streams. The heuristic pool deliberately includes the
// cancelling (proactive) and declining (passive) classes, which exercise the
// mid-round rebuild and the Decline paths of the scheduler round.
func TestIncrementalMatchesFullRebuild(t *testing.T) {
	names := append(core.Names(),
		"passive-emct", "passive-mct", "proactive-emct", "proactive-mct",
		"remct", "deadline")
	checked := sim.NewRunner()
	checked.EnableSlowChecks()
	plain := sim.NewRunner()

	runOn := func(runner *sim.Runner, seed uint64, h string) (*sim.Result, []sim.Event) {
		cfg := randomScenarioConfig(t, seed, h)
		var events []sim.Event
		cfg.OnEvent = func(ev sim.Event) { events = append(events, ev) }
		res, err := runner.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d %s: %v", seed, h, err)
		}
		return res, events
	}

	f := func(seed uint64, pickH uint8) bool {
		h := names[int(pickH)%len(names)]
		resChecked, evChecked := runOn(checked, seed, h)
		resPlain, evPlain := runOn(plain, seed, h)
		if !reflect.DeepEqual(resChecked, resPlain) {
			t.Logf("seed %d %s: checked result %+v, plain result %+v", seed, h, resChecked, resPlain)
			return false
		}
		if !reflect.DeepEqual(evChecked, evPlain) {
			t.Logf("seed %d %s: event streams diverge (%d vs %d events)",
				seed, h, len(evChecked), len(evPlain))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalRunnerReuseStaysChecked pins that the oracle keeps passing
// when one runner is reused across runs of different shapes (different m, p,
// copy caps) — the reset path must re-index every incremental structure.
func TestIncrementalRunnerReuseStaysChecked(t *testing.T) {
	runner := sim.NewRunner()
	runner.EnableSlowChecks()
	for seed := uint64(100); seed < 130; seed++ {
		cfg := randomScenarioConfig(t, seed, "emct*")
		if _, err := runner.Run(cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
