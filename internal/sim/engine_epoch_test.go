package sim_test

import (
	"testing"

	"repro/internal/sim"
)

// epochProbe is a scheduler that verifies the change-tracking contract the
// engine promises to incremental scorers, on every single Pick of a real
// run:
//
//   - View.Epoch is strictly increasing across view revisions and shared by
//     all Picks of one round;
//   - View.Run is constant within a run;
//   - rs.Picks equals the assignments accepted since the round started;
//   - and the core promise: a processor whose ProcEpochs stamp did not move
//     has a bit-identical ProcView.
type epochProbe struct {
	t *testing.T

	run        int64
	lastEpoch  int64
	prevProcs  []sim.ProcView
	prevEpochs []int64
	seen       bool

	roundEpoch int64
	roundPicks int

	picks  int
	rounds int
}

func (p *epochProbe) Name() string { return "epoch-probe" }

func (p *epochProbe) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	t := p.t
	if v.Epoch == 0 || len(v.ProcEpochs) != len(v.Procs) {
		t.Errorf("slot %d: engine view without change tracking (epoch %d, %d stamps for %d procs)",
			v.Slot, v.Epoch, len(v.ProcEpochs), len(v.Procs))
		return eligible[0]
	}
	if p.seen && v.Run == p.run {
		if v.Epoch < p.lastEpoch {
			t.Errorf("slot %d: epoch went backwards (%d after %d)", v.Slot, v.Epoch, p.lastEpoch)
		}
		for q := range v.Procs {
			if v.ProcEpochs[q] == p.prevEpochs[q] && v.Procs[q] != p.prevProcs[q] {
				t.Errorf("slot %d: processor %d changed without an epoch bump: %+v -> %+v",
					v.Slot, q, p.prevProcs[q], v.Procs[q])
			}
		}
	}
	if !p.seen || v.Run != p.run {
		p.run = v.Run
		p.seen = true
		p.roundEpoch = 0
	}
	if v.Epoch != p.roundEpoch {
		p.roundEpoch = v.Epoch
		p.roundPicks = 0
		p.rounds++
	}
	if rs.Picks != p.roundPicks {
		t.Errorf("slot %d: rs.Picks = %d, want %d (accepted assignments this round)",
			v.Slot, rs.Picks, p.roundPicks)
	}
	p.lastEpoch = v.Epoch
	if cap(p.prevProcs) < len(v.Procs) {
		p.prevProcs = make([]sim.ProcView, len(v.Procs))
		p.prevEpochs = make([]int64, len(v.Procs))
	}
	p.prevProcs = p.prevProcs[:len(v.Procs)]
	p.prevEpochs = p.prevEpochs[:len(v.Procs)]
	copy(p.prevProcs, v.Procs)
	copy(p.prevEpochs, v.ProcEpochs)

	p.roundPicks++ // the engine accepts this pick (eligible[0] is valid)
	p.picks++
	return eligible[0]
}

// TestViewChangeTrackingContract runs the probe over random scenarios and a
// reused Runner: every Pick of every run checks the epoch / run-stamp /
// Picks-counter promises incremental scorers build on.
func TestViewChangeTrackingContract(t *testing.T) {
	runner := sim.NewRunner()
	probe := &epochProbe{t: t}
	var runs []int64
	for seed := uint64(0); seed < 25; seed++ {
		cfg := randomScenarioConfig(t, seed, "emct")
		cfg.Scheduler = probe
		if _, err := runner.Run(cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		runs = append(runs, probe.run)
	}
	if probe.picks == 0 || probe.rounds == 0 {
		t.Fatal("probe never consulted; scenarios too degenerate")
	}
	for i := 1; i < len(runs); i++ {
		if runs[i] <= runs[i-1] {
			t.Fatalf("run stamps not strictly increasing across runs: %v", runs)
		}
	}
}

// TestSlowCheckOracleCatchesMissedDirtyMark mutation-tests the view oracle:
// with one markDirty site deliberately suppressed for one worker, the
// slow-check comparison against the full rebuild must panic — otherwise a
// rotted dirty-set contract (stale ProcViews, stale ProcEpochs) would ship
// silently.
func TestSlowCheckOracleCatchesMissedDirtyMark(t *testing.T) {
	caughtOne := false
	for seed := uint64(0); seed < 20 && !caughtOne; seed++ {
		caughtOne = func() (caught bool) {
			defer func() {
				if recover() != nil {
					caught = true
				}
			}()
			runner := sim.NewRunner()
			runner.EnableSlowChecks()
			runner.MutateSkipDirty(1)
			cfg := randomScenarioConfig(t, seed, "emct")
			if _, err := runner.Run(cfg); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return caught
		}()
	}
	if !caughtOne {
		t.Fatal("oracle never caught the suppressed dirty mark")
	}
}
