package sim_test

import (
	"testing"
	"testing/quick"

	"repro/internal/avail"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sim"
)

// runRandomScenario builds and runs one random small scenario; it returns
// the result and the parameters used.
func runRandomScenario(t *testing.T, seed uint64, heuristic string) (*sim.Result, platform.Params) {
	t.Helper()
	r := rng.New(seed)
	p := 2 + r.Intn(8)
	wmin := 1 + r.Intn(4)
	pl := platform.RandomPlatform(r, p, wmin)
	prm := platform.Params{
		M:           1 + r.Intn(8),
		Iterations:  1 + r.Intn(3),
		Ncom:        1 + r.Intn(p),
		Tprog:       r.Intn(12),
		Tdata:       r.Intn(4),
		MaxReplicas: r.Intn(3),
		MaxSlots:    300000,
	}
	procs := make([]avail.Process, pl.P())
	for i, proc := range pl.Processors {
		procs[i] = proc.Avail.NewProcess(r.Split(), proc.Avail.SampleStationary(r))
	}
	sched, err := core.New(heuristic, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Platform: pl, Params: prm, Procs: procs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	return res, prm
}

func TestQuickDataAccountingIdentity(t *testing.T) {
	// For completed runs, every data slot the master transmitted is either
	// part of a completed task image (exactly Tdata per completion) or
	// accounted as waste. This ties the bandwidth allocator, the completion
	// logic, the replica cancellation and the crash handling together.
	f := func(seed uint64, pickH uint8) bool {
		names := core.Names()
		h := names[int(pickH)%len(names)]
		res, prm := runRandomScenario(t, seed, h)
		if !res.Completed {
			return true // censored runs keep in-flight copies; identity not closed
		}
		dataDelivered := res.Stats.ChannelSlots - res.Stats.ProgramSlots
		expected := int64(res.Stats.TasksCompleted)*int64(prm.Tdata) + res.Stats.WastedDataSlots
		if dataDelivered != expected {
			t.Logf("seed %d %s: delivered %d, expected %d (tasks %d × Tdata %d + wasted %d)",
				seed, h, dataDelivered, expected,
				res.Stats.TasksCompleted, prm.Tdata, res.Stats.WastedDataSlots)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTaskConservation(t *testing.T) {
	f := func(seed uint64) bool {
		res, prm := runRandomScenario(t, seed, "emct*")
		if !res.Completed {
			return len(res.IterationEnds) < prm.Iterations
		}
		return res.Stats.TasksCompleted == prm.M*prm.Iterations &&
			len(res.IterationEnds) == prm.Iterations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReplicaAccounting(t *testing.T) {
	// Copies started = completions' originals + replicas + copies that died;
	// at minimum, replicas never exceed MaxReplicas per completed task and
	// CopiesStarted >= TasksCompleted.
	f := func(seed uint64) bool {
		res, prm := runRandomScenario(t, seed, "mct")
		if res.Stats.CopiesStarted < int(res.Stats.TasksCompleted) {
			return false
		}
		_ = prm
		return res.Stats.ReplicasStarted <= res.Stats.CopiesStarted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCommunicationCosts(t *testing.T) {
	// Tprog=0 and Tdata=0: tasks flow with no transfers at all.
	pl := platform.Homogeneous(2, 3, steadyModel())
	prm := platform.Params{M: 4, Iterations: 2, Ncom: 1, Tprog: 0, Tdata: 0}
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm, Procs: alwaysUp(2), Scheduler: roundRobin{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("censored")
	}
	if res.Stats.ChannelSlots != 0 {
		t.Fatalf("zero-cost run used %d channel slots", res.Stats.ChannelSlots)
	}
	// 4 tasks on 2 workers, w=3, no comm: 2 tasks each, sequential: 2*3=6
	// slots per iteration, but the first compute slot starts at slot 1
	// (binding at slot 0, promote, compute from slot 1): 7 per iteration...
	// just assert both iterations completed and makespan is sane.
	if res.Makespan > 20 {
		t.Fatalf("makespan %d too large for zero-cost run", res.Makespan)
	}
}

func TestSingleProcessorSingleTask(t *testing.T) {
	pl := platform.Homogeneous(1, 1, steadyModel())
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 1, Tprog: 1, Tdata: 1}
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm, Procs: alwaysUp(1), Scheduler: firstUp{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// prog@0, data@1, compute@2 -> makespan 3.
	if res.Makespan != 3 {
		t.Fatalf("makespan = %d, want 3", res.Makespan)
	}
}

func TestPrefetchDroppedAtBarrier(t *testing.T) {
	// One worker, m=1, two iterations: while computing iteration 0's task
	// the worker prefetches... nothing (m=1 means no second task), so the
	// barrier drop path is exercised with a second worker that is mid-
	// transfer on a replica when the original completes the iteration.
	m := steadyModel()
	pl := &platform.Platform{Processors: []*platform.Processor{
		{ID: 0, W: 1, Avail: m},
		{ID: 1, W: 30, Avail: m},
	}}
	prm := platform.Params{M: 1, Iterations: 2, Ncom: 2, Tprog: 3, Tdata: 3, MaxReplicas: 2}
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm, Procs: alwaysUp(2), Scheduler: firstUp{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("censored")
	}
	if res.Stats.WastedDataSlots == 0 && res.Stats.ReplicasStarted > 0 {
		t.Log("replica transfers finished in time; waste accounting not exercised")
	}
}

func TestHostileAvailabilityNeverDeadlocks(t *testing.T) {
	// Adversarial patterns must terminate (possibly censored) without error.
	patterns := []string{
		"r",                  // never up
		"ud",                 // crash every other slot
		"urd",                // cycle through everything
		"uuuuuuuuud",         // long runs then crash
		"duuuuuuuuuuuuuuuuu", // down first
	}
	for _, pat := range patterns {
		pl := platform.Homogeneous(3, 2, steadyModel())
		prm := platform.Params{
			M: 3, Iterations: 2, Ncom: 2, Tprog: 4, Tdata: 2,
			MaxReplicas: 2, MaxSlots: 3000,
		}
		procs := make([]avail.Process, 3)
		for i := range procs {
			v, err := avail.ParseVector(pat)
			if err != nil {
				t.Fatal(err)
			}
			// Cycle the pattern to fill a long horizon.
			full := make(avail.Vector, 0, 3000)
			for len(full) < 3000 {
				full = append(full, v...)
			}
			procs[i] = avail.NewVectorProcess(full[:3000])
		}
		if _, err := sim.Run(sim.Config{
			Platform: pl, Params: prm, Procs: procs, Scheduler: roundRobin{},
		}); err != nil {
			t.Fatalf("pattern %q: %v", pat, err)
		}
	}
}

func TestDecliningSchedulerMakesNoProgress(t *testing.T) {
	// A scheduler that always declines must censor cleanly, not error.
	pl := platform.Homogeneous(2, 1, steadyModel())
	prm := platform.Params{M: 1, Iterations: 1, Ncom: 1, Tprog: 1, Tdata: 1, MaxSlots: 50}
	res, err := sim.Run(sim.Config{
		Platform: pl, Params: prm, Procs: alwaysUp(2), Scheduler: decliner{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Stats.CopiesStarted != 0 {
		t.Fatalf("declining scheduler made progress: %+v", res.Stats)
	}
}

type decliner struct{}

func (decliner) Name() string { return "decline-all" }
func (decliner) Pick(*sim.View, []int, *sim.RoundState, sim.TaskInfo) int {
	return sim.Decline
}
