package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// This file defines the moldable-application extension of the engine: an
// AllocationPolicy decides, at every iteration boundary, how many tasks the
// next iteration runs. The paper fixes the application shape at m tasks per
// iteration forever; the related work shows the interesting regime is
// moldable — ReSHAPE resizes homogeneous iterative applications between
// iterations, and QCG-PilotJob's iteration resource schedulers
// (maximum-iters, split-into) choose each iteration's parallelism from the
// resources currently available. The engine already maintains the UP/idle
// worker counts incrementally, so these policies read them for free.

// IterationInfo summarizes one completed iteration for the allocation
// policy. For the run's very first decision (nothing has completed yet)
// Iteration is -1 and the other fields are zero; stateful policies use that
// sentinel to detect the run boundary and reset themselves, which is what
// makes instances safely reusable across pooled runs.
type IterationInfo struct {
	// Iteration is the index of the completed iteration, or -1 before the
	// first iteration starts.
	Iteration int
	// Tasks is the number of tasks that iteration ran.
	Tasks int
	// Slots is the number of slots the iteration took (barrier to barrier).
	Slots int
}

// AllocationPolicy decides the tasks-per-iteration count of a moldable
// application. It sits alongside Scheduler in the engine's configuration and
// sees the same View: TasksFor is consulted once per iteration, at the
// boundary (before the iteration's first scheduling round, and — in event
// mode — before the quiet-span check can read the pending set), with v
// reflecting the worker states at decision time and prev the iteration that
// just completed. The returned count is clamped to [1, MaxIterTasks].
//
// Policies must be deterministic: the same sequence of views and iteration
// summaries must yield the same counts, or the golden digests and
// worker-count determinism break.
type AllocationPolicy interface {
	// Name returns the policy's canonical spec string (parseable by
	// ParseAllocPolicy), e.g. "fixed" or "split-into:4".
	Name() string
	// TasksFor returns the task count for iteration v.Iteration.
	TasksFor(v *View, prev IterationInfo) int
}

// MaxIterTasks caps a policy's per-iteration task count, bounding a runaway
// policy before it can exhaust memory growing the task tables.
const MaxIterTasks = 1 << 20

// clampIterTasks applies the engine's policy-output contract.
func clampIterTasks(n int) int {
	if n < 1 {
		return 1
	}
	if n > MaxIterTasks {
		return MaxIterTasks
	}
	return n
}

// fixedAlloc reproduces the paper's rigid model: every iteration runs
// Params.M tasks. With this policy the engine's behaviour is identical to
// running with no policy at all (the equivalence tests pin it), which makes
// it the bridge between the fixed-n goldens and the moldable family.
type fixedAlloc struct{}

func (fixedAlloc) Name() string                          { return "fixed" }
func (fixedAlloc) TasksFor(v *View, _ IterationInfo) int { return v.Params.M }

// maximumItersAlloc is QCG-PilotJob's maximum-iters resource scheduler: each
// iteration claims everything currently available — one task per UP worker.
// Under replication the engine may still replicate (UP workers can exceed
// the remaining count mid-iteration as workers recover).
type maximumItersAlloc struct{}

func (maximumItersAlloc) Name() string { return "maximum-iters" }
func (maximumItersAlloc) TasksFor(v *View, _ IterationInfo) int {
	return clampIterTasks(v.UpWorkers)
}

// splitIntoAlloc is QCG-PilotJob's split-into resource scheduler: the
// available resources are divided into parts equal shares and one share is
// claimed per iteration — ceil(UP/parts) tasks.
type splitIntoAlloc struct{ parts int }

func (a splitIntoAlloc) Name() string { return fmt.Sprintf("split-into:%d", a.parts) }
func (a splitIntoAlloc) TasksFor(v *View, _ IterationInfo) int {
	return clampIterTasks((v.UpWorkers + a.parts - 1) / a.parts)
}

// reshapeAlloc adapts the iteration size ReSHAPE-style: starting from
// Params.M, it moves by a bounded step between iterations, keeping direction
// while the observed per-task iteration time improves and reversing when it
// regresses. State resets whenever a run's first decision comes in
// (prev.Iteration < 0), so one instance serves many pooled runs.
type reshapeAlloc struct {
	step int
	// run state
	n       int
	dir     int
	prevPer float64
	havePer bool
}

func (a *reshapeAlloc) Name() string { return fmt.Sprintf("reshape:%d", a.step) }

func (a *reshapeAlloc) TasksFor(v *View, prev IterationInfo) int {
	if prev.Iteration < 0 {
		a.n = v.Params.M
		a.dir = 1
		a.havePer = false
		return clampIterTasks(a.n)
	}
	per := float64(prev.Slots) / float64(prev.Tasks)
	if a.havePer && per > a.prevPer {
		a.dir = -a.dir // regressed: probe the other direction
	}
	a.prevPer, a.havePer = per, true
	a.n += a.dir * a.step
	// Keep the size within a bounded band around the application's natural
	// shape so one noisy availability stretch cannot walk the count away.
	lo, hi := 1, 4*v.Params.M
	if a.n < lo {
		a.n, a.dir = lo, 1
	}
	if a.n > hi {
		a.n, a.dir = hi, -1
	}
	return clampIterTasks(a.n)
}

// Default tuning constants for the parameterized policy specs.
const (
	defaultSplitParts  = 2
	defaultReshapeStep = 2
)

// AllocPolicySpecs lists the accepted policy spec forms, for usage text.
func AllocPolicySpecs() []string {
	return []string{"fixed", "maximum-iters", "split-into[:parts]", "reshape[:step]"}
}

// ParseAllocPolicy builds an allocation policy from its spec string:
//
//	fixed              Params.M tasks every iteration (the paper's model)
//	maximum-iters      one task per currently-UP worker
//	split-into[:k]     ceil(UP/k) tasks (default k=2)
//	reshape[:s]        ReSHAPE-style bounded step s around Params.M (default 2)
//
// Each call returns a fresh instance (reshape is stateful), safe to use on
// one goroutine at a time.
func ParseAllocPolicy(spec string) (AllocationPolicy, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	argVal := func(what string, dflt int) (int, error) {
		if !hasArg {
			return dflt, nil
		}
		v, err := strconv.Atoi(arg)
		if err != nil || v < 1 {
			return 0, fmt.Errorf("sim: alloc policy %q: %s must be a positive integer", spec, what)
		}
		return v, nil
	}
	switch name {
	case "fixed":
		if hasArg {
			return nil, fmt.Errorf("sim: alloc policy %q takes no argument", spec)
		}
		return fixedAlloc{}, nil
	case "maximum-iters":
		if hasArg {
			return nil, fmt.Errorf("sim: alloc policy %q takes no argument", spec)
		}
		return maximumItersAlloc{}, nil
	case "split-into":
		parts, err := argVal("parts", defaultSplitParts)
		if err != nil {
			return nil, err
		}
		return splitIntoAlloc{parts: parts}, nil
	case "reshape":
		step, err := argVal("step", defaultReshapeStep)
		if err != nil {
			return nil, err
		}
		return &reshapeAlloc{step: step}, nil
	default:
		return nil, fmt.Errorf("sim: unknown alloc policy %q (want one of %s)",
			spec, strings.Join(AllocPolicySpecs(), ", "))
	}
}
