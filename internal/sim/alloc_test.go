package sim_test

import (
	"testing"

	"repro/internal/avail"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sim"
)

// leastLoaded is a deterministic stand-in heuristic that exercises the full
// round state (queues, replicas) without any allocation of its own.
type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }
func (leastLoaded) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	best := eligible[0]
	for _, q := range eligible {
		if rs.NQ[q] < rs.NQ[best] {
			best = q
		}
	}
	return best
}

// TestSteadyStateSlotAllocationCeiling is the alloc regression guard of the
// zero-alloc engine work: a steady-state slot must not allocate. The only
// heap traffic allowed per run is run-level (trial processes, the result,
// first-touch buffer growth), so total allocations divided by simulated
// slots must stay far below one. The pre-rework engine allocated several
// objects per slot (round state, planned-copy map, continuation sort,
// copy states), i.e. a per-slot ratio well above 3.
func TestSteadyStateSlotAllocationCeiling(t *testing.T) {
	pl := platform.RandomPlatform(rng.New(7), 8, 2)
	prm := platform.Params{M: 6, Iterations: 5, Ncom: 4, Tprog: 10, Tdata: 2, MaxReplicas: 2}

	runner := sim.NewRunner()
	seed := uint64(0)
	slots := 0
	run := func() {
		seed++
		r := rng.New(seed)
		procs := make([]avail.Process, pl.P())
		for i, p := range pl.Processors {
			stream := r.Split()
			procs[i] = p.Avail.NewProcess(stream, p.Avail.SampleStationary(stream))
		}
		res, err := runner.Run(sim.Config{Platform: pl, Params: prm, Procs: procs, Scheduler: leastLoaded{}})
		if err != nil {
			t.Fatal(err)
		}
		slots += res.Makespan
	}
	run() // warm-up: sizes every reusable buffer and the copy pool

	slots = 0
	const rounds = 20
	allocs := testing.AllocsPerRun(rounds, run)
	if slots == 0 {
		t.Fatal("no slots simulated")
	}
	perSlot := allocs * (rounds + 1) / float64(slots) // AllocsPerRun averages over rounds+1 invocations
	t.Logf("%.1f allocs/run over %d slots -> %.4f allocs/slot", allocs, slots/(rounds+1), perSlot)
	// Budget: run-level allocations only (one trial = ~3 allocs per processor
	// plus the result); the steady-state slot itself must contribute zero.
	const ceiling = 0.5
	if perSlot > ceiling {
		t.Fatalf("allocations per simulated slot = %.4f, want <= %.2f (slot hot path must not allocate)", perSlot, ceiling)
	}
}

// TestLargePWarmRunAllocationCeiling is the volunteer-grid extension of the
// ceiling above, aimed at the pooled reset paths instead of the slot loop:
// once a warm Runner has sized its buffers for P workers, a whole run must
// allocate only a small constant — independent of P. The trial processes
// are built once and rewound in place (a real sweep owns that allocation,
// not the engine), so any O(P) or O(M) growth here is a reset path that
// forgot to reuse its storage. Pre-rework, per-run traffic included the
// event queue's rebuilt entry slice and per-task holder lists.
func TestLargePWarmRunAllocationCeiling(t *testing.T) {
	const (
		p      = 5000
		active = 64
	)
	cycling := avail.MustMarkov3([3][3]float64{
		{0.90, 0.05, 0.05},
		{0.30, 0.60, 0.10},
		{0.30, 0.10, 0.60},
	})
	pl := platform.Homogeneous(p, 3, cycling)
	prm := platform.Params{M: 16, Iterations: 3, Ncom: 8, Tprog: 10, Tdata: 2,
		MaxReplicas: 2, MaxSlots: 20_000}

	dead := avail.Vector{avail.Down}
	procs := make([]avail.Process, p)
	actives := make([]*avail.Markov3Process, active)
	streams := make([]*rng.PCG, active)
	for i := range procs {
		if i < active {
			streams[i] = rng.New(uint64(i))
			actives[i] = cycling.NewProcess(streams[i], avail.Up)
			procs[i] = actives[i]
		} else {
			procs[i] = avail.NewVectorProcess(dead)
		}
	}

	for _, mode := range []sim.Mode{sim.ModeSlot, sim.ModeEvent} {
		runner := sim.NewRunner()
		seed := uint64(0)
		run := func() {
			seed++
			for j, ap := range actives {
				streams[j].Reseed(seed*uint64(active) + uint64(j))
				ap.Reset(cycling, streams[j], avail.Up)
			}
			for j := active; j < p; j++ {
				procs[j].(*avail.VectorProcess).Reset(dead)
			}
			res, err := runner.Run(sim.Config{Platform: pl, Params: prm, Procs: procs, Scheduler: leastLoaded{}, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan == 0 {
				t.Fatal("no slots simulated")
			}
		}
		run() // warm-up: sizes every P-wide buffer and the copy pool

		allocs := testing.AllocsPerRun(10, run)
		t.Logf("mode %v: %.1f allocs per warm run at P=%d", mode, allocs, p)
		// Tight constant budget: the result plus a handful of growth-path
		// stragglers — nothing proportional to P (which would show up as
		// thousands).
		const ceiling = 16
		if allocs > ceiling {
			t.Fatalf("mode %v: %.1f allocations per warm run at P=%d, want <= %d (reset paths must reuse storage)",
				mode, allocs, p, ceiling)
		}
	}
}
