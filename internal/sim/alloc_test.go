package sim_test

import (
	"testing"

	"repro/internal/avail"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sim"
)

// leastLoaded is a deterministic stand-in heuristic that exercises the full
// round state (queues, replicas) without any allocation of its own.
type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }
func (leastLoaded) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	best := eligible[0]
	for _, q := range eligible {
		if rs.NQ[q] < rs.NQ[best] {
			best = q
		}
	}
	return best
}

// TestSteadyStateSlotAllocationCeiling is the alloc regression guard of the
// zero-alloc engine work: a steady-state slot must not allocate. The only
// heap traffic allowed per run is run-level (trial processes, the result,
// first-touch buffer growth), so total allocations divided by simulated
// slots must stay far below one. The pre-rework engine allocated several
// objects per slot (round state, planned-copy map, continuation sort,
// copy states), i.e. a per-slot ratio well above 3.
func TestSteadyStateSlotAllocationCeiling(t *testing.T) {
	pl := platform.RandomPlatform(rng.New(7), 8, 2)
	prm := platform.Params{M: 6, Iterations: 5, Ncom: 4, Tprog: 10, Tdata: 2, MaxReplicas: 2}

	runner := sim.NewRunner()
	seed := uint64(0)
	slots := 0
	run := func() {
		seed++
		r := rng.New(seed)
		procs := make([]avail.Process, pl.P())
		for i, p := range pl.Processors {
			stream := r.Split()
			procs[i] = p.Avail.NewProcess(stream, p.Avail.SampleStationary(stream))
		}
		res, err := runner.Run(sim.Config{Platform: pl, Params: prm, Procs: procs, Scheduler: leastLoaded{}})
		if err != nil {
			t.Fatal(err)
		}
		slots += res.Makespan
	}
	run() // warm-up: sizes every reusable buffer and the copy pool

	slots = 0
	const rounds = 20
	allocs := testing.AllocsPerRun(rounds, run)
	if slots == 0 {
		t.Fatal("no slots simulated")
	}
	perSlot := allocs * (rounds + 1) / float64(slots) // AllocsPerRun averages over rounds+1 invocations
	t.Logf("%.1f allocs/run over %d slots -> %.4f allocs/slot", allocs, slots/(rounds+1), perSlot)
	// Budget: run-level allocations only (one trial = ~3 allocs per processor
	// plus the result); the steady-state slot itself must contribute zero.
	const ceiling = 0.5
	if perSlot > ceiling {
		t.Fatalf("allocations per simulated slot = %.4f, want <= %.2f (slot hot path must not allocate)", perSlot, ceiling)
	}
}
