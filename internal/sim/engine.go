package sim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/avail"
	"repro/internal/expect"
	"repro/internal/platform"
)

// runCounter and epochCounter feed View.Run and View.Epoch/ProcEpochs with
// process-wide unique, strictly increasing stamps. Global (rather than
// per-engine) counters make the stamps collision-free even when a scheduler
// instance migrates between engines, so equality of stamps always means
// "same revision". The values themselves never influence scheduling — they
// are only ever compared for equality — so results stay deterministic.
var (
	runCounter   atomic.Int64
	epochCounter atomic.Int64
)

// Config assembles everything one simulation run needs.
type Config struct {
	// Platform is the static processor description.
	Platform *platform.Platform
	// Params are the application/communication parameters.
	Params platform.Params
	// Procs supplies the actual availability trajectory of each processor
	// (same order as Platform.Processors). The trajectories may follow the
	// processors' declared Markov models, or deliberately deviate from them
	// (trace-driven and semi-Markov experiments).
	Procs []avail.Process
	// Scheduler is the heuristic under test.
	Scheduler Scheduler
	// Alloc, when non-nil, makes the application moldable: the policy is
	// consulted at every iteration boundary to decide how many tasks the
	// next iteration runs (see AllocationPolicy). Nil keeps the paper's
	// fixed model — every iteration runs exactly Params.M tasks — on the
	// engine's original code path, byte for byte.
	Alloc AllocationPolicy
	// Mode selects the engine's time base: ModeSlot (the default) ticks
	// every slot; ModeEvent samples availability at sojourn granularity and
	// skips quiet spans (requires Procs that implement avail.Trajectory).
	Mode Mode
	// Observer, when non-nil, is invoked after every slot.
	Observer func(*SlotReport)
	// OnEvent, when non-nil, receives engine events (verbose timelines).
	OnEvent func(Event)
}

// validate checks the configuration.
func (c *Config) validate() error {
	if c.Platform == nil {
		return fmt.Errorf("sim: nil platform")
	}
	if err := c.Platform.Validate(); err != nil {
		return err
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if len(c.Procs) != c.Platform.P() {
		return fmt.Errorf("sim: %d availability processes for %d processors",
			len(c.Procs), c.Platform.P())
	}
	for i, p := range c.Procs {
		if p == nil {
			return fmt.Errorf("sim: nil availability process %d", i)
		}
	}
	if !c.Mode.valid() {
		return fmt.Errorf("sim: invalid mode %d", c.Mode)
	}
	if c.Mode == ModeEvent {
		for i, p := range c.Procs {
			if _, ok := p.(avail.Trajectory); !ok {
				return fmt.Errorf("sim: event mode requires availability processes implementing avail.Trajectory; process %d (%T) does not", i, p)
			}
		}
	}
	if c.Scheduler == nil {
		return fmt.Errorf("sim: nil scheduler")
	}
	return nil
}

// taskState tracks one task of the current iteration.
type taskState struct {
	completed bool
	copies    int // live copies currently bound to workers
}

// plannedAssignment is one scheduler decision awaiting materialization.
type plannedAssignment struct {
	task    int
	worker  int
	replica int // 0 = original
}

// contRec is one in-flight transfer chain awaiting channel slots.
type contRec struct{ worker, replica, task int }

// engine is the mutable run state. All of its buffers survive between slots
// and — through Runner — between runs, so a steady-state slot performs no
// heap allocation.
type engine struct {
	cfg     Config
	params  *platform.Params
	workers []workerState
	// states is the struct-of-arrays availability state (one byte per
	// worker, the companion of workers[i]): the hot scans — slate building,
	// the event clock's frozen-platform walk, the slow-check recounts — read
	// only this field, and the dense packing keeps them cache-resident at
	// volunteer-grid platform sizes. applyState is its only mutation site
	// after reset.
	states []avail.State
	tasks  []taskState
	slot   int
	iter   int
	stats  Stats
	ends   []int
	// nextReplica numbers replica copies per task within an iteration.
	nextReplica []int
	// scratch buffers reused across slots.
	view     View
	eligible []int
	plans    []plannedAssignment
	rs       RoundState
	// plannedCopies[t] counts copies of task t planned in the current round
	// (the per-slot replacement for a per-round map).
	plannedCopies []int
	conts         []contRec
	idle          []int
	dropBuf       []*copyState
	// freeCopies pools retired copyState objects for reuse by bindCopy.
	freeCopies []*copyState
	// trk indexes the task table incrementally (remaining count, pending
	// originals, replication buckets) so the scheduler round does work
	// proportional to what changed, not to m.
	trk taskTracker
	// procDirty/dirtyProcs implement buildView's dirty set: a worker's
	// ProcView is refreshed only when its availability state, pipeline
	// occupancy, or progress changed since the last refresh. Every site that
	// mutates scheduler-visible worker state calls markDirty.
	procDirty  []bool
	dirtyProcs []int
	// overlaid records that the current round moved planned copies into the
	// replication buckets; schedule undoes the overlay after the round.
	overlaid bool
	// finishers lists the workers whose computation reached W this slot
	// (filled by compute, consumed by finishSlot), so the completion pass
	// visits candidates instead of scanning every worker.
	finishers []int
	// chainSet indexes the workers holding a bound, incomplete transfer
	// chain (ascending-worker iteration), replacing allocateChannels' full
	// per-slot scans; syncChain is its single reconciliation site.
	chainSet idSet
	// upSet indexes the UP workers; with the nUp/nFreeUp/nIdleUp counters
	// it replaces every O(P) availability scan outside the slow-check
	// oracles: the originals slate, compute's walk, the event clock's
	// frozen-platform scan, canMaterialize and the per-slot Observer count.
	// reindexAvail maintains set and counters at every mutation site.
	upSet idSet
	// nUp counts UP workers; nFreeUp the UP workers with a free incoming
	// slot (able to accept a new copy); nIdleUp the UP workers with no begun
	// work at all (replica hosts).
	nUp, nFreeUp, nIdleUp int
	// holders[t] lists the workers currently holding a live copy of task t
	// (at most 1+MaxReplicas entries, unordered), so completion cancels
	// sibling copies by visiting exactly the holders instead of scanning all
	// P workers. holderScratch is the completion pass's sorted snapshot.
	holders       [][]int32
	holderScratch []int32
	// eligStamp/eligEpoch validate replica-phase picks in O(1): a worker is
	// eligible iff its stamp equals the epoch. Originals-phase picks are
	// validated directly against the availability state (the originals
	// slate is exactly the UP set), so that phase needs no stamping pass;
	// replicaPick selects which rule notePick applies.
	eligStamp   []int
	eligEpoch   int
	replicaPick bool
	// nBusy counts the workers with begun work (computing or incoming),
	// maintained at the pipeline mutation sites so the scheduling round
	// reads its n_active base in O(1) instead of recounting all P workers.
	nBusy int
	// trajs/pendState/evq implement the event-mode clock (eventclock.go):
	// trajs are the trajectory views of cfg.Procs, pendState[i] is the
	// state worker i enters at its queued transition slot, and evq is the
	// (slot, worker) min-heap of pending transitions.
	trajs     []avail.Trajectory
	pendState []avail.State
	evq       transitionHeap
	// skipQuiet permits quiet-span skipping: event mode with a scheduler
	// that does not implement Canceller (a Canceller may act on slots where
	// no engine state changed, so its slots cannot be skipped).
	skipQuiet bool
	// allocPending defers the allocation policy's first decision to the
	// start of slot 0, after the slot's availability states are applied, so
	// iteration 0 is sized from real worker states like every later one.
	allocPending bool
	// iterStart is the slot the current iteration started at, feeding the
	// per-iteration duration the reshape-style policies observe.
	iterStart int
	// iterTasks records each iteration's task count (moldable runs only;
	// the fixed path leaves it empty and Result.IterationTasks nil).
	iterTasks []int
	// runID stamps View.Run; drawn from runCounter at reset.
	runID int64
	// mutateSkipDirty suppresses markDirty for worker mutateSkipDirty-1
	// (mutation hook for the oracle tests; 0 — the zero value — disables
	// the mutation). It survives reset, like slowChecks.
	mutateSkipDirty int
	// slowChecks arms the full-rebuild equivalence oracle (test-only): every
	// incremental structure is verified against a from-scratch recount.
	slowChecks bool
	// checkView is the slow-check scratch view for buildViewFull.
	checkView View
	// prevProcs/prevEpochs retain the previous slot's snapshots for the
	// change-tracking contract check (slow checks only): a ProcView may only
	// differ from its previous value if its ProcEpochs entry moved.
	prevProcs  []ProcView
	prevEpochs []int64
	prevValid  bool
}

// Runner owns a reusable engine. A Runner amortizes every engine allocation
// (worker states, task tables, scheduler view, scratch buffers, the copy
// pool) across the runs it executes, which is what tight sweep loops want.
// A Runner must not be used concurrently; use one per goroutine.
type Runner struct {
	e engine
}

// NewRunner returns an empty Runner; its first Run sizes the buffers.
func NewRunner() *Runner { return &Runner{} }

// EnableSlowChecks arms the full-rebuild equivalence oracle on the runner's
// engine: every buildView is verified against buildViewFull (including the
// change-tracking contract on View.ProcEpochs), the originals loop against
// a fresh scan of the task table, every replication pick against the
// reference least-covered scan (see fullcheck.go), and — via View.SlowChecks
// — every incremental scheduler decision against a from-scratch rescan.
// Mismatches panic. The flag survives Runner reuse across runs. Intended
// for tests and debugging: it makes every slot pay the full pre-incremental
// cost again, several times over.
func (r *Runner) EnableSlowChecks() { r.e.slowChecks = true }

// Run executes one simulation and returns its result. The error reports
// configuration problems or scheduler protocol violations; volatile-platform
// conditions (even pathological ones) are not errors.
func Run(cfg Config) (*Result, error) {
	return NewRunner().Run(cfg)
}

// Run executes one simulation on the reused engine. Results are identical to
// the package-level Run: reuse only recycles memory, never state.
func (r *Runner) Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &r.e
	e.reset(cfg)
	if cfg.Mode == ModeEvent {
		if err := e.initEventClock(); err != nil {
			return nil, err
		}
	}

	maxSlots := cfg.Params.EffectiveMaxSlots()
	for e.slot = 0; e.slot < maxSlots; {
		if err := e.step(); err != nil {
			return nil, err
		}
		if e.iter >= e.params.Iterations {
			return &Result{
				Completed:      true,
				Makespan:       e.slot + 1,
				IterationEnds:  append([]int(nil), e.ends...),
				IterationTasks: e.iterTasksCopy(),
				Stats:          e.stats,
			}, nil
		}
		e.slot = e.nextSlot(maxSlots)
	}
	return &Result{
		Completed:      false,
		Makespan:       maxSlots,
		IterationEnds:  append([]int(nil), e.ends...),
		IterationTasks: e.iterTasksCopy(),
		Stats:          e.stats,
	}, nil
}

// iterTasksCopy snapshots the per-iteration task counts for the Result.
// Fixed-model runs (no allocation policy) record none and return nil, so
// the original path allocates nothing extra.
func (e *engine) iterTasksCopy() []int {
	if len(e.iterTasks) == 0 {
		return nil
	}
	return append([]int(nil), e.iterTasks...)
}

// reset (re)initializes the engine for a run, growing buffers as needed and
// recycling any state left from a previous (possibly censored) run.
func (e *engine) reset(cfg Config) {
	e.cfg = cfg
	e.params = &e.cfg.Params
	p := cfg.Platform.P()
	m := cfg.Params.M

	if cap(e.workers) < p {
		e.workers = make([]workerState, p)
		e.states = make([]avail.State, p)
	}
	e.workers = e.workers[:p]
	e.states = e.states[:p]
	for i := range e.workers {
		w := &e.workers[i]
		// Retire copies a previous run left in flight.
		if w.computing != nil {
			e.releaseCopy(w.computing)
		}
		if w.incoming != nil {
			e.releaseCopy(w.incoming)
		}
		proc := cfg.Platform.Processors[i]
		*w = workerState{proc: proc, analytics: expect.Of(proc.Avail)}
		e.states[i] = avail.Down
	}
	e.upSet.reset(p)
	e.nUp, e.nFreeUp, e.nIdleUp = 0, 0, 0

	e.resizeTasks(m)

	if cap(e.rs.NQ) < p {
		e.rs.NQ = make([]int, p)
		e.view.Procs = make([]ProcView, p)
		e.view.ProcEpochs = make([]int64, p)
	}
	e.rs.NQ = e.rs.NQ[:p]
	for i := range e.rs.NQ {
		e.rs.NQ[i] = 0 // rounds keep NQ all-zero between them (see schedule)
	}
	e.runID = runCounter.Add(1)
	e.view = View{Params: e.params, Procs: e.view.Procs[:p],
		ProcEpochs: e.view.ProcEpochs[:p], Run: e.runID}
	e.prevValid = false
	e.nBusy = 0
	e.replicaPick = false

	e.trk.reset(m, 1+cfg.Params.MaxReplicas)
	if cap(e.procDirty) < p {
		e.procDirty = make([]bool, p)
		e.eligStamp = make([]int, p)
	}
	e.procDirty = e.procDirty[:p]
	e.eligStamp = e.eligStamp[:p]
	e.dirtyProcs = e.dirtyProcs[:0]
	for i := 0; i < p; i++ {
		e.procDirty[i] = true
		e.dirtyProcs = append(e.dirtyProcs, i)
		e.eligStamp[i] = 0
	}
	e.chainSet.reset(p)
	e.eligEpoch = 0
	e.overlaid = false
	e.finishers = e.finishers[:0]

	e.trajs = e.trajs[:0]
	e.evq.reset()
	e.skipQuiet = false

	e.allocPending = cfg.Alloc != nil
	e.iterStart = 0
	e.iterTasks = e.iterTasks[:0]

	e.slot, e.iter = 0, 0
	e.stats = Stats{}
	e.ends = e.ends[:0]
	e.eligible = e.eligible[:0]
	e.plans = e.plans[:0]
	e.conts = e.conts[:0]
	e.idle = e.idle[:0]
	e.dropBuf = e.dropBuf[:0]
}

// resizeTasks (re)sizes the per-task tables — the task states, replica
// counters, round overlay and holder lists — to m tasks, growing capacity as
// needed and zeroing every entry. Shared by reset and the moldable
// iteration boundary; growing within capacity re-exposes stale entries from
// an earlier, larger iteration, so the wipe is unconditional. Holder lists
// keep their underlying arrays for reuse.
func (e *engine) resizeTasks(m int) {
	if cap(e.tasks) < m {
		e.tasks = make([]taskState, m)
		e.nextReplica = make([]int, m)
		e.plannedCopies = make([]int, m)
	}
	e.tasks = e.tasks[:m]
	e.nextReplica = e.nextReplica[:m]
	e.plannedCopies = e.plannedCopies[:m]
	for t := range e.tasks {
		e.tasks[t] = taskState{}
		e.nextReplica[t] = 0
		e.plannedCopies[t] = 0
	}
	if cap(e.holders) < m {
		holders := make([][]int32, m)
		copy(holders, e.holders)
		e.holders = holders
	}
	e.holders = e.holders[:m]
	for t := range e.holders {
		e.holders[t] = e.holders[t][:0]
	}
}

// decideAlloc consults the allocation policy for the iteration about to
// start (Alloc is non-nil) and returns the clamped task count. The view is
// refreshed first so the policy reads current worker states; the extra
// buildView only spends an epoch stamp, which is behaviour-invisible
// (epochs are only ever compared for equality).
func (e *engine) decideAlloc(prev IterationInfo) int {
	e.buildView()
	n := clampIterTasks(e.cfg.Alloc.TasksFor(&e.view, prev))
	e.iterTasks = append(e.iterTasks, n)
	return n
}

// newCopy takes a copyState from the pool (or allocates the pool's first
// instances) and initializes it.
func (e *engine) newCopy(task, replica int) *copyState {
	if n := len(e.freeCopies); n > 0 {
		c := e.freeCopies[n-1]
		e.freeCopies = e.freeCopies[:n-1]
		*c = copyState{task: task, replica: replica}
		return c
	}
	return &copyState{task: task, replica: replica}
}

// releaseCopy returns a retired copy to the pool. Callers must be done with
// the copy's fields (waste accounting, events) before releasing it.
func (e *engine) releaseCopy(c *copyState) {
	e.freeCopies = append(e.freeCopies, c)
}

// step executes one time slot.
func (e *engine) step() error {
	if e.cfg.Mode == ModeEvent {
		if err := e.advanceStatesEvent(); err != nil {
			return err
		}
	} else {
		e.advanceStates()
	}
	if e.allocPending {
		// Moldable runs size iteration 0 here — after the slot's
		// availability states are applied, before the first scheduling
		// round — so the policy sees the same decision inputs in both time
		// bases. Iteration 0's completed-iteration summary is the -1
		// sentinel (nothing ran yet); stateful policies reset on it.
		e.allocPending = false
		before := len(e.tasks) // reset sized the tables (and tracker) to Params.M
		if n := e.decideAlloc(IterationInfo{Iteration: -1}); n != before {
			e.resizeTasks(n)
			e.trk.reset(n, 1+e.params.MaxReplicas)
		}
		if e.slowChecks {
			e.verifyTaskTables()
		}
	}
	if err := e.schedule(); err != nil {
		return err
	}
	transfers := e.allocateChannels()
	computing := e.compute()
	e.finishSlot()

	if e.cfg.Observer != nil {
		e.cfg.Observer(&SlotReport{
			Slot:             e.slot,
			Iteration:        e.iter,
			TransfersUsed:    transfers,
			UpWorkers:        e.nUp,
			ComputingWorkers: computing,
			TasksCompleted:   e.stats.TasksCompleted,
		})
	}
	return nil
}

// advanceStates samples this slot's availability states and applies crash
// consequences.
func (e *engine) advanceStates() {
	for i := range e.workers {
		next := e.cfg.Procs[i].Next()
		if next != e.states[i] {
			e.applyState(i, next)
		}
	}
}

// availKey encodes worker i's membership in the availability-derived
// indexes as a bitmask: bit 0 = UP, bit 1 = UP with a free incoming slot,
// bit 2 = UP and idle (no begun work). reindexAvail applies the delta
// between two keys to upSet and the nUp/nFreeUp/nIdleUp counters; every
// mutation of a worker's state or pipeline occupancy captures the key
// before and reindexes after, so the counters are exact at all times
// (recounted by verifyCounters under slow checks).
func (e *engine) availKey(i int) uint8 {
	if e.states[i] != avail.Up {
		return 0
	}
	w := &e.workers[i]
	k := uint8(1)
	if w.incoming == nil {
		k |= 2
		if w.computing == nil {
			k |= 4
		}
	}
	return k
}

// reindexAvail reconciles worker i's availability indexes after a mutation,
// given its pre-mutation key.
func (e *engine) reindexAvail(i int, was uint8) {
	now := e.availKey(i)
	if now == was {
		return
	}
	if d := int(now&1) - int(was&1); d != 0 {
		e.nUp += d
		if d > 0 {
			e.upSet.add(i)
		} else {
			e.upSet.remove(i)
		}
	}
	e.nFreeUp += int(now>>1&1) - int(was>>1&1)
	e.nIdleUp += int(now>>2&1) - int(was>>2&1)
}

// applyState transitions worker i to next — which callers guarantee differs
// from its current state — applying crash consequences. It is the single
// mutation site shared by the slot-mode per-slot scan and the event-mode
// transition queue, so the two time bases cannot drift on crash semantics.
func (e *engine) applyState(i int, next avail.State) {
	w := &e.workers[i]
	was := e.availKey(i)
	e.markDirty(i)
	if next == avail.Down {
		e.stats.Crashes++
		e.stats.WastedProgramSlots += int64(w.progRecv)
		e.emit(Event{Slot: e.slot, Kind: EvCrash, Worker: i, Task: -1, Replica: -1, Iteration: e.iter})
		if w.busy() {
			e.nBusy--
		}
		e.dropBuf = w.crash(e.dropBuf[:0])
		for _, c := range e.dropBuf {
			e.taskLostCopy(c.task, i)
			e.wasteCopy(c)
			e.releaseCopy(c)
		}
		e.syncChain(i)
	}
	e.states[i] = next
	e.reindexAvail(i, was)
}

// wasteCopy accounts a killed/cancelled copy's sunk work.
func (e *engine) wasteCopy(c *copyState) {
	e.stats.WastedComputeSlots += int64(c.computeDone)
	e.stats.WastedDataSlots += int64(c.dataRecv)
}

// noWorker marks an absent link in the worker chain list.
const noWorker = -1

// markDirty queues worker i's ProcView for refresh at the next buildView.
func (e *engine) markDirty(i int) {
	if e.mutateSkipDirty == i+1 {
		return // test-only mutation: deliberately miss this invalidation
	}
	if !e.procDirty[i] {
		e.procDirty[i] = true
		e.dirtyProcs = append(e.dirtyProcs, i)
	}
}

// syncChain reconciles worker i's membership in the bound-chain list (the
// workers whose incoming copy still needs program or data slots) with its
// current pipeline state. It is idempotent; every site that binds, advances,
// or drops an incoming copy calls it.
func (e *engine) syncChain(i int) {
	if e.workers[i].needsTransfer(e.params.Tprog) {
		e.chainSet.add(i)
	} else {
		e.chainSet.remove(i)
	}
}

// holdersAdd records that worker w holds a live copy of task t.
func (e *engine) holdersAdd(t, w int) {
	e.holders[t] = append(e.holders[t], int32(w))
}

// holdersRemove drops one record of worker w holding a copy of task t
// (order within a holder list is irrelevant; the completion pass sorts its
// snapshot). A missing record is a no-op, keeping the call sites robust to
// copies dropped through several paths.
func (e *engine) holdersRemove(t, w int) {
	hs := e.holders[t]
	for i, h := range hs {
		if int(h) == w {
			hs[i] = hs[len(hs)-1]
			e.holders[t] = hs[:len(hs)-1]
			return
		}
	}
}

// taskGainedCopy records a new live copy of task t on worker w (bind time):
// the task leaves the pending-originals index (first copy) or moves up one
// replication bucket (a replica joined).
func (e *engine) taskGainedCopy(t, w int) {
	ts := &e.tasks[t]
	if ts.copies == 0 {
		e.trk.pendRemove(t)
	} else {
		e.trk.bucketRemove(t)
	}
	ts.copies++
	e.trk.bucketAdd(t, ts.copies)
	e.holdersAdd(t, w)
}

// taskLostCopy records the death of one live copy of task t on worker w
// (crash or cancellation). Completed tasks are already out of every index;
// incomplete ones move down a bucket, or back into the pending list when
// their last copy died.
func (e *engine) taskLostCopy(t, w int) {
	ts := &e.tasks[t]
	ts.copies--
	e.holdersRemove(t, w)
	if ts.completed {
		return
	}
	e.trk.bucketRemove(t)
	if ts.copies == 0 {
		e.trk.pendInsert(t)
	} else {
		e.trk.bucketAdd(t, ts.copies)
	}
}

// schedule runs one scheduler round (scheduleRound), then clears the
// round's planned-copy overlay and its NQ entries: plannedCopies and the
// round queues are zeroed, and any task the round moved through the
// replication buckets is re-keyed to its live copy count. Iterating e.plans
// touches exactly the tasks and workers the round planned (every notePick
// is followed by a plan append), so the cleanup is O(plans), not O(m) or
// O(P) — and rs.NQ is all-zero again when the next round starts.
func (e *engine) schedule() error {
	e.plans = e.plans[:0]
	err := e.scheduleRound()
	for i := range e.plans {
		t := e.plans[i].task
		e.rs.NQ[e.plans[i].worker] = 0
		if e.plannedCopies[t] == 0 {
			continue // already restored (task planned more than once)
		}
		if e.overlaid {
			if e.tasks[t].copies == 0 {
				e.trk.bucketRemove(t)
			} else {
				e.trk.bucketMove(t, e.tasks[t].copies)
			}
		}
		e.plannedCopies[t] = 0
	}
	e.overlaid = false
	return err
}

// scheduleRound runs one scheduler round: it applies proactive cancellations
// (when the scheduler requests them), then plans processors for all unbegun
// original tasks, then for replicas when UP processors outnumber the
// remaining tasks (Section 6.1).
func (e *engine) scheduleRound() error {
	e.buildView()

	if canceller, ok := e.cfg.Scheduler.(Canceller); ok {
		if cancels := canceller.Cancel(&e.view); len(cancels) > 0 {
			for _, q := range cancels {
				if q < 0 || q >= len(e.workers) {
					return fmt.Errorf("sim: scheduler %q cancelled invalid processor %d",
						e.cfg.Scheduler.Name(), q)
				}
				w := &e.workers[q]
				was := e.availKey(q)
				if w.busy() {
					e.nBusy--
				}
				e.dropBuf = w.dropAllCopies(e.dropBuf[:0])
				for _, dropped := range e.dropBuf {
					e.taskLostCopy(dropped.task, q)
					e.wasteCopy(dropped)
					e.emit(Event{Slot: e.slot, Kind: EvCopyCancelled, Worker: q,
						Task: dropped.task, Replica: dropped.replica, Iteration: e.iter})
					e.releaseCopy(dropped)
					e.markDirty(q)
				}
				e.syncChain(q)
				e.reindexAvail(q, was)
			}
			e.buildView() // cancellations changed pipeline state
		}
	}

	remaining := e.view.TasksRemaining
	if remaining == 0 {
		return nil
	}

	// One setup pass: collect the UP processors (the originals slate; picks
	// are validated against the availability state directly, so no
	// stamping). The round queues are already zero — schedule restores them
	// in O(plans) — and n_active's base is the incrementally maintained
	// busy count (Section 6.3.1: the processors already engaged in begun
	// work, plus — via notePick — each processor newly put to work during
	// this round).
	if e.slowChecks {
		e.verifyRoundSetup()
	}
	rs := &e.rs
	rs.NActive = e.nBusy
	rs.Picks = 0
	e.replicaPick = false
	// The UP index yields the slate in ascending worker order — identical to
	// the full scan it replaced — in O(nUp), not O(P).
	up := e.upSet.appendTo(e.eligible[:0])
	e.eligible = up
	if len(up) == 0 {
		return nil
	}

	// Originals: every incomplete task with no live copy — exactly the
	// pending list, walked in ascending task order. Planned copies are
	// tracked so same-round replication (below) respects the cap; schedule
	// zeroes them again after the round.
	if e.slowChecks {
		e.verifyPending()
	}
	plannedCopies := e.plannedCopies
	for t := e.trk.pendFirst(); t != noTask; t = e.trk.pendAfter(t) {
		ti := TaskInfo{Task: t, Replica: false, Copies: 0}
		pick := e.cfg.Scheduler.Pick(&e.view, up, rs, ti)
		if pick == Decline {
			continue
		}
		if err := e.notePick(rs, pick); err != nil {
			return err
		}
		e.plans = append(e.plans, plannedAssignment{task: t, worker: pick, replica: 0})
		plannedCopies[t]++
	}

	// Replication (paper rule): replicate only when strictly more UP
	// processors than remaining tasks; each task carries at most
	// 1 + MaxReplicas copies. Idle processors (no begun work, nothing
	// planned this round) host the replicas; tasks with the fewest copies
	// are served first.
	if len(up) <= remaining || e.params.MaxReplicas == 0 {
		return nil
	}
	idle := e.idle[:0]
	e.eligEpoch++
	e.replicaPick = true
	for _, q := range up {
		if !e.workers[q].busy() && rs.NQ[q] == 0 {
			idle = append(idle, q)
			e.eligStamp[q] = e.eligEpoch
		}
	}
	e.idle = idle
	if len(idle) == 0 {
		return nil
	}
	// A task is replicable once it has at least one live or planned copy
	// (so replicas may launch in the same round as the original) and is
	// below the copy cap. Replicas go to the least-covered tasks first,
	// until idle processors or replication capacity run out. The buckets
	// track live copies; overlay this round's planned originals (each has
	// zero live copies, one planned copy) so they are replicable too.
	// schedule undoes the overlay after the round.
	copyCap := 1 + e.params.MaxReplicas
	e.overlaid = true
	for i := range e.plans {
		e.trk.bucketAdd(e.plans[i].task, 1)
	}
	for len(idle) > 0 {
		best, bestCopies := e.trk.leastCovered(copyCap)
		if e.slowChecks {
			e.verifyLeastCovered(best, bestCopies, copyCap)
		}
		if best == noTask {
			break
		}
		ti := TaskInfo{Task: best, Replica: true, Copies: bestCopies}
		pick := e.cfg.Scheduler.Pick(&e.view, idle, rs, ti)
		if pick == Decline {
			break // a scheduler that declines replicas declines them all
		}
		if err := e.notePick(rs, pick); err != nil {
			return err
		}
		e.plans = append(e.plans, plannedAssignment{task: best, worker: pick, replica: -1})
		plannedCopies[best]++
		e.trk.bucketMove(best, bestCopies+1)
		// The chosen processor is no longer idle.
		e.eligStamp[pick] = 0
		for i, q := range idle {
			if q == pick {
				idle = append(idle[:i], idle[i+1:]...)
				break
			}
		}
	}
	e.idle = idle
	return nil
}

// notePick validates a scheduler pick in O(1) — equivalent to membership in
// the eligible slice handed to Pick: the originals slate is exactly the UP
// set (states are fixed within a slot), and the replica slate carries
// eligibility stamps — and updates the round state.
func (e *engine) notePick(rs *RoundState, pick int) error {
	if pick < 0 || pick >= len(e.workers) ||
		(e.replicaPick && e.eligStamp[pick] != e.eligEpoch) ||
		(!e.replicaPick && e.states[pick] != avail.Up) {
		return fmt.Errorf("sim: scheduler %q picked ineligible processor %d",
			e.cfg.Scheduler.Name(), pick)
	}
	if rs.NQ[pick] == 0 && !e.workers[pick].busy() {
		rs.NActive++
	}
	rs.NQ[pick]++
	rs.Picks++
	return nil
}

// buildView refreshes the scheduler snapshot incrementally: only workers in
// the dirty set — those whose availability state, pipeline occupancy, or
// progress changed since the last refresh — get their ProcView recomputed.
// The remaining-task count is maintained by the completion/barrier sites.
// Every call stamps a fresh (process-wide unique) View.Epoch; refreshed
// workers get that stamp in ProcEpochs, which is the change-tracking
// contract incremental scorers rely on.
func (e *engine) buildView() {
	e.view.Slot = e.slot
	e.view.Iteration = e.iter
	e.view.TasksRemaining = e.trk.remaining
	e.view.IterTasks = len(e.tasks)
	e.view.UpWorkers = e.nUp
	e.view.FreeWorkers = e.nFreeUp
	e.view.IdleWorkers = e.nIdleUp
	e.view.Epoch = epochCounter.Add(1)
	e.view.SlowChecks = e.slowChecks
	for _, i := range e.dirtyProcs {
		e.fillProcView(i, &e.view.Procs[i])
		e.view.ProcEpochs[i] = e.view.Epoch
		e.procDirty[i] = false
	}
	e.dirtyProcs = e.dirtyProcs[:0]
	if e.slowChecks {
		e.verifyView()
	}
}

// fillProcView computes worker i's scheduler snapshot from its live state,
// writing it in place. It is the single source of truth for both buildView's
// dirty refresh and the full-rebuild reference (buildViewFull), so the two
// can only diverge through missed dirty marks — which the slow checks and
// the golden tests pin down.
func (e *engine) fillProcView(i int, pv *ProcView) {
	w := &e.workers[i]
	pv.ID = i
	pv.W = w.proc.W
	pv.Model = w.proc.Avail
	pv.Analytics = w.analytics
	pv.State = e.states[i]
	pv.RemProgram = w.remProgram(e.params.Tprog)
	pv.HasComputing = w.computing != nil
	pv.HasIncoming = w.incoming != nil
	if w.computing != nil {
		pv.ComputingRem = w.proc.W - w.computing.computeDone
	} else {
		pv.ComputingRem = 0
	}
	if w.incoming != nil {
		pv.IncomingRem = e.params.Tdata - w.incoming.dataRecv
	} else {
		pv.IncomingRem = 0
	}
}

// allocateChannels grants the ncom channels: first to in-flight transfer
// chains (originals before replicas), then to new planned assignments in
// scheduler order. It returns the number of channels used.
func (e *engine) allocateChannels() int {
	channels := e.params.Ncom
	used := 0
	tprog, tdata := e.params.Tprog, e.params.Tdata

	// Continuations: bound chains on UP workers needing slots, originals
	// (ascending worker) before replicas (ascending worker). The chain index
	// holds exactly the workers with incomplete bound chains, iterated in
	// ascending order, so two passes over it build that order directly — no
	// sort, no full worker scan, each worker holds at most one chain.
	if e.slowChecks {
		e.verifyChains()
	}
	conts := e.conts[:0]
	for i := e.chainSet.min(); i != noWorker; i = e.chainSet.next(i) {
		w := &e.workers[i]
		if e.states[i] == avail.Up && w.incoming.replica == 0 {
			conts = append(conts, contRec{worker: i, replica: 0, task: w.incoming.task})
		}
	}
	for i := e.chainSet.min(); i != noWorker; i = e.chainSet.next(i) {
		w := &e.workers[i]
		if e.states[i] == avail.Up && w.incoming.replica != 0 {
			conts = append(conts, contRec{worker: i, replica: w.incoming.replica, task: w.incoming.task})
		}
	}
	e.conts = conts
	for _, ct := range conts {
		if used >= channels {
			break
		}
		w := &e.workers[ct.worker]
		progSlot := !w.hasProgram(tprog)
		w.advanceTransfer(tprog, tdata)
		e.markDirty(ct.worker)
		e.syncChain(ct.worker)
		used++
		e.stats.ChannelSlots++
		if progSlot {
			e.stats.ProgramSlots++
		}
	}

	// New materializations, in plan order (originals were planned first).
	for _, pl := range e.plans {
		w := &e.workers[pl.worker]
		if e.states[pl.worker] != avail.Up || w.incoming != nil {
			continue // pipeline occupied (an earlier plan took the slot)
		}
		if w.computing != nil && pl.replica == 0 && w.computing.task == pl.task {
			continue // already running here (defensive; cannot happen for unbegun tasks)
		}
		needProg := !w.hasProgram(tprog)
		needData := tdata > 0
		if !needProg && !needData {
			// Zero-cost image: bind and complete instantly, no channel, no
			// chain entry (the transfer is already done).
			e.bindCopy(w, pl)
			w.incoming.dataDone = true
			continue
		}
		if used >= channels {
			continue // plan evaporates; re-planned next slot
		}
		e.bindCopy(w, pl)
		progSlot := needProg
		w.advanceTransfer(tprog, tdata)
		e.syncChain(pl.worker)
		used++
		e.stats.ChannelSlots++
		if progSlot {
			e.stats.ProgramSlots++
		}
	}

	if used > e.stats.PeakTransfers {
		e.stats.PeakTransfers = used
	}
	return used
}

// bindCopy attaches a planned copy to a worker and updates bookkeeping.
func (e *engine) bindCopy(w *workerState, pl plannedAssignment) {
	was := e.availKey(pl.worker)
	if w.computing == nil { // incoming is nil (caller-checked): idle -> busy
		e.nBusy++
	}
	replica := pl.replica
	if replica != 0 {
		e.nextReplica[pl.task]++
		replica = e.nextReplica[pl.task]
	}
	w.incoming = e.newCopy(pl.task, replica)
	e.taskGainedCopy(pl.task, pl.worker)
	e.reindexAvail(pl.worker, was)
	e.markDirty(pl.worker)
	e.stats.CopiesStarted++
	kind := EvDataStart
	if !w.hasProgram(e.params.Tprog) {
		kind = EvProgramStart
	}
	if replica != 0 {
		e.stats.ReplicasStarted++
	}
	e.emit(Event{Slot: e.slot, Kind: kind, Worker: w.proc.ID, Task: pl.task, Replica: replica, Iteration: e.iter})
}

// compute advances every eligible computation by one slot and returns the
// number of workers that computed. Workers whose computation reached W are
// recorded as this slot's completion candidates for finishSlot.
func (e *engine) compute() int {
	computing := 0
	e.finishers = e.finishers[:0]
	// Only UP workers can compute: walk the UP index (ascending, like the
	// full scan) instead of all P workers.
	for i := e.upSet.min(); i != noWorker; i = e.upSet.next(i) {
		w := &e.workers[i]
		if w.computing == nil || !w.hasProgram(e.params.Tprog) {
			continue
		}
		if w.computing.computeDone == 0 {
			e.emit(Event{Slot: e.slot, Kind: EvComputeStart, Worker: w.proc.ID,
				Task: w.computing.task, Replica: w.computing.replica, Iteration: e.iter})
		}
		w.computing.computeDone++
		if w.computing.computeDone >= w.proc.W {
			e.finishers = append(e.finishers, i)
		}
		e.markDirty(i)
		e.stats.ComputeSlots++
		computing++
	}
	return computing
}

// finishSlot records completions, cancels surviving copies of completed
// tasks, promotes data-complete prefetches, and handles iteration barriers.
func (e *engine) finishSlot() {
	// Completions: only a worker whose computation advanced to W this slot
	// can complete, so the candidates are exactly compute's finishers
	// (ascending worker order, like the full scan). A finisher's copy may
	// have been cancelled by an earlier finisher of the same task.
	for _, i := range e.finishers {
		w := &e.workers[i]
		c := w.computing
		if c == nil || c.computeDone < w.proc.W {
			continue
		}
		was := e.availKey(i)
		w.computing = nil
		if w.incoming == nil {
			e.nBusy--
		}
		e.reindexAvail(i, was)
		e.markDirty(i)
		ts := &e.tasks[c.task]
		ts.copies--
		e.holdersRemove(c.task, i)
		if ts.completed {
			// A sibling copy finished earlier in this same loop; this work
			// is redundant.
			e.wasteCopy(c)
			e.releaseCopy(c)
			continue
		}
		ts.completed = true
		e.trk.remaining--
		e.trk.bucketRemove(c.task)
		e.stats.TasksCompleted++
		e.emit(Event{Slot: e.slot, Kind: EvTaskComplete, Worker: w.proc.ID,
			Task: c.task, Replica: c.replica, Iteration: e.iter})
		// Cancel all other live copies of this task — exactly the recorded
		// holders (at most copyCap workers), not a scan of all P. The task is
		// completed, so the drops only adjust the raw copy count — it is
		// already out of every scheduler index. Snapshot and sort the holders
		// ascending so the cancellation events keep the full scan's worker
		// order (insertion sort: the list has at most MaxReplicas entries).
		hs := e.holderScratch[:0]
		for _, h := range e.holders[c.task] {
			if int(h) != i {
				hs = append(hs, h)
			}
		}
		for a := 1; a < len(hs); a++ {
			for b := a; b > 0 && hs[b] < hs[b-1]; b-- {
				hs[b], hs[b-1] = hs[b-1], hs[b]
			}
		}
		e.holderScratch = hs
		for _, h := range hs {
			j := int(h)
			other := &e.workers[j]
			wasKey := e.availKey(j)
			wasBusy := other.busy()
			e.dropBuf = other.dropCopiesOf(c.task, e.dropBuf[:0])
			if wasBusy && !other.busy() {
				e.nBusy--
			}
			for _, dropped := range e.dropBuf {
				ts.copies--
				e.holdersRemove(c.task, j)
				e.markDirty(j)
				e.wasteCopy(dropped)
				e.emit(Event{Slot: e.slot, Kind: EvCopyCancelled, Worker: other.proc.ID,
					Task: dropped.task, Replica: dropped.replica, Iteration: e.iter})
				e.releaseCopy(dropped)
				e.syncChain(j)
			}
			e.reindexAvail(j, wasKey)
		}
		e.releaseCopy(c)
	}

	// Promotions: a data-complete prefetch starts computing next slot. A
	// worker can newly qualify only through a change made after this slot's
	// buildView (its transfer completed, or its computing slot emptied), so
	// the current dirty set contains every candidate; promote itself is a
	// no-op on the rest. Promotions change no scheduler-visible state the
	// mark sites haven't already flagged, and the dirty set is only
	// consumed at the next buildView.
	for _, i := range e.dirtyProcs {
		was := e.availKey(i)
		if e.workers[i].promote() {
			e.reindexAvail(i, was)
		}
	}
	if e.slowChecks {
		e.verifyPipelines()
	}

	// Iteration barrier: the incremental remaining count makes this O(1).
	if e.trk.remaining != 0 {
		return
	}
	e.emit(Event{Slot: e.slot, Kind: EvIterationDone, Worker: -1, Task: -1, Replica: -1, Iteration: e.iter})
	e.ends = append(e.ends, e.slot+1)
	e.iter++
	if e.iter >= e.params.Iterations {
		return
	}
	// Moldable runs decide the next iteration's size here, before the task
	// table is touched: at this instant every task is completed, so the
	// slow-check view recount agrees with the zeroed remaining counter. The
	// resize itself waits until after the defensive drop scan below (it
	// indexes the holder lists by the old iteration's task IDs); both happen
	// before the tracker reset, so the event clock's quiet-span check —
	// which reads the pending set and remaining count right after this
	// returns — already sees the decided iteration.
	n := len(e.tasks)
	if e.cfg.Alloc != nil {
		n = e.decideAlloc(IterationInfo{
			Iteration: e.iter - 1,
			Tasks:     len(e.tasks),
			Slots:     e.slot + 1 - e.iterStart,
		})
	}
	// Reset tasks for the next iteration. Task data is iteration-specific:
	// every pipeline entry is discarded; programs are kept.
	for t := range e.tasks {
		e.tasks[t] = taskState{}
		e.nextReplica[t] = 0
	}
	// Every completion already cancelled its sibling copies, so by the time
	// the last task completes no worker holds any copy and nBusy is zero:
	// the barrier drop scan below has nothing to do and is skipped — the
	// barrier costs O(1), not O(P). The scan is kept as a defensive path
	// (and exercised as dead code by the slow checks, which recount nBusy).
	if e.nBusy > 0 {
		for i := range e.workers {
			w := &e.workers[i]
			was := e.availKey(i)
			e.dropBuf = w.dropAllCopies(e.dropBuf[:0])
			if len(e.dropBuf) == 0 {
				continue
			}
			e.nBusy-- // held at least one copy, now holds none
			for _, dropped := range e.dropBuf {
				e.holdersRemove(dropped.task, i)
				e.markDirty(i)
				e.wasteCopy(dropped)
				e.emit(Event{Slot: e.slot, Kind: EvCopyCancelled, Worker: w.proc.ID,
					Task: dropped.task, Replica: dropped.replica, Iteration: e.iter})
				e.releaseCopy(dropped)
			}
			e.syncChain(i)
			e.reindexAvail(i, was)
		}
	}
	if n != len(e.tasks) {
		e.resizeTasks(n)
	}
	e.iterStart = e.slot + 1
	e.trk.reset(n, 1+e.params.MaxReplicas)
	if e.slowChecks {
		e.verifyTaskTables()
	}
}

// emit forwards an event to the configured sink.
func (e *engine) emit(ev Event) {
	if e.cfg.OnEvent != nil {
		e.cfg.OnEvent(ev)
	}
}
