package sim

import (
	"fmt"

	"repro/internal/avail"
	"repro/internal/expect"
	"repro/internal/platform"
)

// Config assembles everything one simulation run needs.
type Config struct {
	// Platform is the static processor description.
	Platform *platform.Platform
	// Params are the application/communication parameters.
	Params platform.Params
	// Procs supplies the actual availability trajectory of each processor
	// (same order as Platform.Processors). The trajectories may follow the
	// processors' declared Markov models, or deliberately deviate from them
	// (trace-driven and semi-Markov experiments).
	Procs []avail.Process
	// Scheduler is the heuristic under test.
	Scheduler Scheduler
	// Observer, when non-nil, is invoked after every slot.
	Observer func(*SlotReport)
	// OnEvent, when non-nil, receives engine events (verbose timelines).
	OnEvent func(Event)
}

// validate checks the configuration.
func (c *Config) validate() error {
	if c.Platform == nil {
		return fmt.Errorf("sim: nil platform")
	}
	if err := c.Platform.Validate(); err != nil {
		return err
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if len(c.Procs) != c.Platform.P() {
		return fmt.Errorf("sim: %d availability processes for %d processors",
			len(c.Procs), c.Platform.P())
	}
	for i, p := range c.Procs {
		if p == nil {
			return fmt.Errorf("sim: nil availability process %d", i)
		}
	}
	if c.Scheduler == nil {
		return fmt.Errorf("sim: nil scheduler")
	}
	return nil
}

// taskState tracks one task of the current iteration.
type taskState struct {
	completed bool
	copies    int // live copies currently bound to workers
}

// plannedAssignment is one scheduler decision awaiting materialization.
type plannedAssignment struct {
	task    int
	worker  int
	replica int // 0 = original
}

// contRec is one in-flight transfer chain awaiting channel slots.
type contRec struct{ worker, replica, task int }

// engine is the mutable run state. All of its buffers survive between slots
// and — through Runner — between runs, so a steady-state slot performs no
// heap allocation.
type engine struct {
	cfg     Config
	params  *platform.Params
	workers []workerState
	tasks   []taskState
	slot    int
	iter    int
	stats   Stats
	ends    []int
	// nextReplica numbers replica copies per task within an iteration.
	nextReplica []int
	// scratch buffers reused across slots.
	view     View
	eligible []int
	plans    []plannedAssignment
	rs       RoundState
	// plannedCopies[t] counts copies of task t planned in the current round
	// (the per-slot replacement for a per-round map).
	plannedCopies []int
	conts         []contRec
	idle          []int
	dropBuf       []*copyState
	// freeCopies pools retired copyState objects for reuse by bindCopy.
	freeCopies []*copyState
}

// Runner owns a reusable engine. A Runner amortizes every engine allocation
// (worker states, task tables, scheduler view, scratch buffers, the copy
// pool) across the runs it executes, which is what tight sweep loops want.
// A Runner must not be used concurrently; use one per goroutine.
type Runner struct {
	e engine
}

// NewRunner returns an empty Runner; its first Run sizes the buffers.
func NewRunner() *Runner { return &Runner{} }

// Run executes one simulation and returns its result. The error reports
// configuration problems or scheduler protocol violations; volatile-platform
// conditions (even pathological ones) are not errors.
func Run(cfg Config) (*Result, error) {
	return NewRunner().Run(cfg)
}

// Run executes one simulation on the reused engine. Results are identical to
// the package-level Run: reuse only recycles memory, never state.
func (r *Runner) Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &r.e
	e.reset(cfg)

	maxSlots := cfg.Params.EffectiveMaxSlots()
	for e.slot = 0; e.slot < maxSlots; e.slot++ {
		if err := e.step(); err != nil {
			return nil, err
		}
		if e.iter >= e.params.Iterations {
			return &Result{
				Completed:     true,
				Makespan:      e.slot + 1,
				IterationEnds: append([]int(nil), e.ends...),
				Stats:         e.stats,
			}, nil
		}
	}
	return &Result{
		Completed:     false,
		Makespan:      maxSlots,
		IterationEnds: append([]int(nil), e.ends...),
		Stats:         e.stats,
	}, nil
}

// reset (re)initializes the engine for a run, growing buffers as needed and
// recycling any state left from a previous (possibly censored) run.
func (e *engine) reset(cfg Config) {
	e.cfg = cfg
	e.params = &e.cfg.Params
	p := cfg.Platform.P()
	m := cfg.Params.M

	if cap(e.workers) < p {
		e.workers = make([]workerState, p)
	}
	e.workers = e.workers[:p]
	for i := range e.workers {
		w := &e.workers[i]
		// Retire copies a previous run left in flight.
		if w.computing != nil {
			e.releaseCopy(w.computing)
		}
		if w.incoming != nil {
			e.releaseCopy(w.incoming)
		}
		proc := cfg.Platform.Processors[i]
		*w = workerState{proc: proc, state: avail.Down, analytics: expect.Of(proc.Avail)}
	}

	if cap(e.tasks) < m {
		e.tasks = make([]taskState, m)
		e.nextReplica = make([]int, m)
		e.plannedCopies = make([]int, m)
	}
	e.tasks = e.tasks[:m]
	e.nextReplica = e.nextReplica[:m]
	e.plannedCopies = e.plannedCopies[:m]
	for t := range e.tasks {
		e.tasks[t] = taskState{}
		e.nextReplica[t] = 0
		e.plannedCopies[t] = 0
	}

	if cap(e.rs.NQ) < p {
		e.rs.NQ = make([]int, p)
		e.view.Procs = make([]ProcView, p)
	}
	e.rs.NQ = e.rs.NQ[:p]
	e.view = View{Params: e.params, Procs: e.view.Procs[:p]}

	e.slot, e.iter = 0, 0
	e.stats = Stats{}
	e.ends = e.ends[:0]
	e.eligible = e.eligible[:0]
	e.plans = e.plans[:0]
	e.conts = e.conts[:0]
	e.idle = e.idle[:0]
	e.dropBuf = e.dropBuf[:0]
}

// newCopy takes a copyState from the pool (or allocates the pool's first
// instances) and initializes it.
func (e *engine) newCopy(task, replica int) *copyState {
	if n := len(e.freeCopies); n > 0 {
		c := e.freeCopies[n-1]
		e.freeCopies = e.freeCopies[:n-1]
		*c = copyState{task: task, replica: replica}
		return c
	}
	return &copyState{task: task, replica: replica}
}

// releaseCopy returns a retired copy to the pool. Callers must be done with
// the copy's fields (waste accounting, events) before releasing it.
func (e *engine) releaseCopy(c *copyState) {
	e.freeCopies = append(e.freeCopies, c)
}

// step executes one time slot.
func (e *engine) step() error {
	e.advanceStates()
	if err := e.schedule(); err != nil {
		return err
	}
	transfers := e.allocateChannels()
	computing := e.compute()
	e.finishSlot()

	if e.cfg.Observer != nil {
		up := 0
		for i := range e.workers {
			if e.workers[i].state == avail.Up {
				up++
			}
		}
		e.cfg.Observer(&SlotReport{
			Slot:             e.slot,
			Iteration:        e.iter,
			TransfersUsed:    transfers,
			UpWorkers:        up,
			ComputingWorkers: computing,
			TasksCompleted:   e.stats.TasksCompleted,
		})
	}
	return nil
}

// advanceStates samples this slot's availability states and applies crash
// consequences.
func (e *engine) advanceStates() {
	for i := range e.workers {
		w := &e.workers[i]
		next := e.cfg.Procs[i].Next()
		if next == avail.Down && w.state != avail.Down {
			e.stats.Crashes++
			e.stats.WastedProgramSlots += int64(w.progRecv)
			e.emit(Event{Slot: e.slot, Kind: EvCrash, Worker: i, Task: -1, Replica: -1, Iteration: e.iter})
			e.dropBuf = w.crash(e.dropBuf[:0])
			for _, c := range e.dropBuf {
				e.tasks[c.task].copies--
				e.wasteCopy(c)
				e.releaseCopy(c)
			}
		}
		w.state = next
	}
}

// wasteCopy accounts a killed/cancelled copy's sunk work.
func (e *engine) wasteCopy(c *copyState) {
	e.stats.WastedComputeSlots += int64(c.computeDone)
	e.stats.WastedDataSlots += int64(c.dataRecv)
}

// schedule runs one scheduler round: it applies proactive cancellations
// (when the scheduler requests them), then plans processors for all unbegun
// original tasks, then for replicas when UP processors outnumber the
// remaining tasks (Section 6.1).
func (e *engine) schedule() error {
	e.plans = e.plans[:0]
	e.buildView()

	if canceller, ok := e.cfg.Scheduler.(Canceller); ok {
		if cancels := canceller.Cancel(&e.view); len(cancels) > 0 {
			for _, q := range cancels {
				if q < 0 || q >= len(e.workers) {
					return fmt.Errorf("sim: scheduler %q cancelled invalid processor %d",
						e.cfg.Scheduler.Name(), q)
				}
				w := &e.workers[q]
				e.dropBuf = w.dropAllCopies(e.dropBuf[:0])
				for _, dropped := range e.dropBuf {
					e.tasks[dropped.task].copies--
					e.wasteCopy(dropped)
					e.emit(Event{Slot: e.slot, Kind: EvCopyCancelled, Worker: q,
						Task: dropped.task, Replica: dropped.replica, Iteration: e.iter})
					e.releaseCopy(dropped)
				}
			}
			e.buildView() // cancellations changed pipeline state
		}
	}

	remaining := e.view.TasksRemaining
	if remaining == 0 {
		return nil
	}

	// Eligible processors for originals: every UP processor.
	up := e.eligible[:0]
	for i := range e.workers {
		if e.workers[i].state == avail.Up {
			up = append(up, i)
		}
	}
	e.eligible = up
	if len(up) == 0 {
		return nil
	}

	rs := &e.rs
	for q := range rs.NQ {
		rs.NQ[q] = 0
	}
	rs.NActive = 0
	// n_active measures how many workers compete for the master's card
	// (Section 6.3.1: "the average slowdown encountered by a worker when
	// communicating with the master"): the processors already engaged in
	// begun work, plus — via notePick — each processor newly put to work
	// during this round.
	for i := range e.workers {
		if e.workers[i].busy() {
			rs.NActive++
		}
	}

	// Originals: every incomplete task with no live copy. Planned copies
	// are tracked so same-round replication (below) respects the cap.
	plannedCopies := e.plannedCopies
	for t := range plannedCopies {
		plannedCopies[t] = 0
	}
	for t := range e.tasks {
		if e.tasks[t].completed || e.tasks[t].copies > 0 {
			continue
		}
		ti := TaskInfo{Task: t, Replica: false, Copies: 0}
		pick := e.cfg.Scheduler.Pick(&e.view, up, rs, ti)
		if pick == Decline {
			continue
		}
		if err := e.notePick(rs, pick, up); err != nil {
			return err
		}
		e.plans = append(e.plans, plannedAssignment{task: t, worker: pick, replica: 0})
		plannedCopies[t]++
	}

	// Replication (paper rule): replicate only when strictly more UP
	// processors than remaining tasks; each task carries at most
	// 1 + MaxReplicas copies. Idle processors (no begun work, nothing
	// planned this round) host the replicas; tasks with the fewest copies
	// are served first.
	if len(up) <= remaining || e.params.MaxReplicas == 0 {
		return nil
	}
	idle := e.idle[:0]
	for _, q := range up {
		if !e.workers[q].busy() && rs.NQ[q] == 0 {
			idle = append(idle, q)
		}
	}
	e.idle = idle
	if len(idle) == 0 {
		return nil
	}
	// A task is replicable once it has at least one live or planned copy
	// (so replicas may launch in the same round as the original) and is
	// below the copy cap. Replicas go to the least-covered tasks first,
	// until idle processors or replication capacity run out.
	copyCap := 1 + e.params.MaxReplicas
	for len(idle) > 0 {
		best, bestCopies := -1, copyCap
		for t := range e.tasks {
			if e.tasks[t].completed {
				continue
			}
			total := e.tasks[t].copies + plannedCopies[t]
			if total >= 1 && total < bestCopies {
				best, bestCopies = t, total
			}
		}
		if best < 0 {
			break
		}
		ti := TaskInfo{Task: best, Replica: true, Copies: bestCopies}
		pick := e.cfg.Scheduler.Pick(&e.view, idle, rs, ti)
		if pick == Decline {
			break // a scheduler that declines replicas declines them all
		}
		if err := e.notePick(rs, pick, idle); err != nil {
			return err
		}
		e.plans = append(e.plans, plannedAssignment{task: best, worker: pick, replica: -1})
		plannedCopies[best]++
		// The chosen processor is no longer idle.
		for i, q := range idle {
			if q == pick {
				idle = append(idle[:i], idle[i+1:]...)
				break
			}
		}
	}
	e.idle = idle
	return nil
}

// notePick validates a scheduler pick and updates the round state.
func (e *engine) notePick(rs *RoundState, pick int, eligible []int) error {
	ok := false
	for _, q := range eligible {
		if q == pick {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("sim: scheduler %q picked ineligible processor %d",
			e.cfg.Scheduler.Name(), pick)
	}
	if rs.NQ[pick] == 0 && !e.workers[pick].busy() {
		rs.NActive++
	}
	rs.NQ[pick]++
	return nil
}

// buildView refreshes the scheduler snapshot.
func (e *engine) buildView() {
	e.view.Slot = e.slot
	e.view.Iteration = e.iter
	remaining := 0
	for t := range e.tasks {
		if !e.tasks[t].completed {
			remaining++
		}
	}
	e.view.TasksRemaining = remaining
	tprog := e.params.Tprog
	for i := range e.workers {
		w := &e.workers[i]
		pv := &e.view.Procs[i]
		pv.ID = i
		pv.W = w.proc.W
		pv.Model = w.proc.Avail
		pv.Analytics = w.analytics
		pv.State = w.state
		pv.RemProgram = w.remProgram(tprog)
		pv.HasComputing = w.computing != nil
		pv.HasIncoming = w.incoming != nil
		if w.computing != nil {
			pv.ComputingRem = w.proc.W - w.computing.computeDone
		} else {
			pv.ComputingRem = 0
		}
		if w.incoming != nil {
			pv.IncomingRem = e.params.Tdata - w.incoming.dataRecv
		} else {
			pv.IncomingRem = 0
		}
	}
}

// allocateChannels grants the ncom channels: first to in-flight transfer
// chains (originals before replicas), then to new planned assignments in
// scheduler order. It returns the number of channels used.
func (e *engine) allocateChannels() int {
	channels := e.params.Ncom
	used := 0
	tprog, tdata := e.params.Tprog, e.params.Tdata

	// Continuations: bound chains on UP workers needing slots, originals
	// (ascending worker) before replicas (ascending worker). Two ascending
	// passes build that order directly — no sort needed, each worker holds
	// at most one chain.
	conts := e.conts[:0]
	for i := range e.workers {
		w := &e.workers[i]
		if w.state == avail.Up && w.needsTransfer(tprog) && w.incoming.replica == 0 {
			conts = append(conts, contRec{worker: i, replica: 0, task: w.incoming.task})
		}
	}
	for i := range e.workers {
		w := &e.workers[i]
		if w.state == avail.Up && w.needsTransfer(tprog) && w.incoming.replica != 0 {
			conts = append(conts, contRec{worker: i, replica: w.incoming.replica, task: w.incoming.task})
		}
	}
	e.conts = conts
	for _, ct := range conts {
		if used >= channels {
			break
		}
		w := &e.workers[ct.worker]
		progSlot := !w.hasProgram(tprog)
		w.advanceTransfer(tprog, tdata)
		used++
		e.stats.ChannelSlots++
		if progSlot {
			e.stats.ProgramSlots++
		}
	}

	// New materializations, in plan order (originals were planned first).
	for _, pl := range e.plans {
		w := &e.workers[pl.worker]
		if w.state != avail.Up || w.incoming != nil {
			continue // pipeline occupied (an earlier plan took the slot)
		}
		if w.computing != nil && pl.replica == 0 && w.computing.task == pl.task {
			continue // already running here (defensive; cannot happen for unbegun tasks)
		}
		needProg := !w.hasProgram(tprog)
		needData := tdata > 0
		if !needProg && !needData {
			// Zero-cost image: bind and complete instantly, no channel.
			e.bindCopy(w, pl)
			w.incoming.dataDone = true
			continue
		}
		if used >= channels {
			continue // plan evaporates; re-planned next slot
		}
		e.bindCopy(w, pl)
		progSlot := needProg
		w.advanceTransfer(tprog, tdata)
		used++
		e.stats.ChannelSlots++
		if progSlot {
			e.stats.ProgramSlots++
		}
	}

	if used > e.stats.PeakTransfers {
		e.stats.PeakTransfers = used
	}
	return used
}

// bindCopy attaches a planned copy to a worker and updates bookkeeping.
func (e *engine) bindCopy(w *workerState, pl plannedAssignment) {
	replica := pl.replica
	if replica != 0 {
		e.nextReplica[pl.task]++
		replica = e.nextReplica[pl.task]
	}
	w.incoming = e.newCopy(pl.task, replica)
	e.tasks[pl.task].copies++
	e.stats.CopiesStarted++
	kind := EvDataStart
	if !w.hasProgram(e.params.Tprog) {
		kind = EvProgramStart
	}
	if replica != 0 {
		e.stats.ReplicasStarted++
	}
	e.emit(Event{Slot: e.slot, Kind: kind, Worker: w.proc.ID, Task: pl.task, Replica: replica, Iteration: e.iter})
}

// compute advances every eligible computation by one slot and returns the
// number of workers that computed.
func (e *engine) compute() int {
	computing := 0
	for i := range e.workers {
		w := &e.workers[i]
		if w.state != avail.Up || w.computing == nil || !w.hasProgram(e.params.Tprog) {
			continue
		}
		if w.computing.computeDone == 0 {
			e.emit(Event{Slot: e.slot, Kind: EvComputeStart, Worker: w.proc.ID,
				Task: w.computing.task, Replica: w.computing.replica, Iteration: e.iter})
		}
		w.computing.computeDone++
		e.stats.ComputeSlots++
		computing++
	}
	return computing
}

// finishSlot records completions, cancels surviving copies of completed
// tasks, promotes data-complete prefetches, and handles iteration barriers.
func (e *engine) finishSlot() {
	// Completions.
	for i := range e.workers {
		w := &e.workers[i]
		c := w.computing
		if c == nil || c.computeDone < w.proc.W {
			continue
		}
		w.computing = nil
		e.tasks[c.task].copies--
		if e.tasks[c.task].completed {
			// A sibling copy finished earlier in this same loop; this work
			// is redundant.
			e.wasteCopy(c)
			e.releaseCopy(c)
			continue
		}
		e.tasks[c.task].completed = true
		e.stats.TasksCompleted++
		e.emit(Event{Slot: e.slot, Kind: EvTaskComplete, Worker: w.proc.ID,
			Task: c.task, Replica: c.replica, Iteration: e.iter})
		// Cancel all other live copies of this task.
		for j := range e.workers {
			if j == i {
				continue
			}
			other := &e.workers[j]
			e.dropBuf = other.dropCopiesOf(c.task, e.dropBuf[:0])
			for _, dropped := range e.dropBuf {
				e.tasks[c.task].copies--
				e.wasteCopy(dropped)
				e.emit(Event{Slot: e.slot, Kind: EvCopyCancelled, Worker: other.proc.ID,
					Task: dropped.task, Replica: dropped.replica, Iteration: e.iter})
				e.releaseCopy(dropped)
			}
		}
		e.releaseCopy(c)
	}

	// Promotions: a data-complete prefetch starts computing next slot.
	for i := range e.workers {
		e.workers[i].promote()
	}

	// Iteration barrier.
	done := true
	for t := range e.tasks {
		if !e.tasks[t].completed {
			done = false
			break
		}
	}
	if !done {
		return
	}
	e.emit(Event{Slot: e.slot, Kind: EvIterationDone, Worker: -1, Task: -1, Replica: -1, Iteration: e.iter})
	e.ends = append(e.ends, e.slot+1)
	e.iter++
	if e.iter >= e.params.Iterations {
		return
	}
	// Reset tasks for the next iteration. Task data is iteration-specific:
	// every pipeline entry is discarded; programs are kept.
	for t := range e.tasks {
		e.tasks[t] = taskState{}
		e.nextReplica[t] = 0
	}
	for i := range e.workers {
		w := &e.workers[i]
		e.dropBuf = w.dropAllCopies(e.dropBuf[:0])
		for _, dropped := range e.dropBuf {
			e.wasteCopy(dropped)
			e.emit(Event{Slot: e.slot, Kind: EvCopyCancelled, Worker: w.proc.ID,
				Task: dropped.task, Replica: dropped.replica, Iteration: e.iter})
			e.releaseCopy(dropped)
		}
	}
}

// emit forwards an event to the configured sink.
func (e *engine) emit(ev Event) {
	if e.cfg.OnEvent != nil {
		e.cfg.OnEvent(ev)
	}
}
