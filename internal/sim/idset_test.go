package sim

import (
	"math/rand"
	"testing"
)

// verifyIdSet checks every query of s against the reference membership map.
func verifyIdSet(t *testing.T, s *idSet, ref map[int]bool, n int) {
	t.Helper()
	want := make([]int, 0, len(ref))
	for id := 0; id < n; id++ {
		if ref[id] {
			want = append(want, id)
		}
	}
	if s.size() != len(want) {
		t.Fatalf("size: got %d, want %d", s.size(), len(want))
	}
	if s.empty() != (len(want) == 0) {
		t.Fatalf("empty: got %v with %d members", s.empty(), len(want))
	}
	got := s.appendTo(nil)
	if len(got) != len(want) {
		t.Fatalf("appendTo: got %d members, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("appendTo[%d]: got %d, want %d", i, got[i], want[i])
		}
	}
	// min/next agree with the sorted member list.
	wantMin := -1
	if len(want) > 0 {
		wantMin = want[0]
	}
	if m := s.min(); m != wantMin {
		t.Fatalf("min: got %d, want %d", m, wantMin)
	}
	iter := make([]int, 0, len(want))
	for id := s.min(); id != -1; id = s.next(id) {
		iter = append(iter, id)
		if len(iter) > len(want) {
			t.Fatalf("min/next iteration exceeded %d members", len(want))
		}
	}
	for i := range iter {
		if iter[i] != want[i] {
			t.Fatalf("min/next[%d]: got %d, want %d", i, iter[i], want[i])
		}
	}
	if len(iter) != len(want) {
		t.Fatalf("min/next yielded %d members, want %d", len(iter), len(want))
	}
}

// TestIdSetMatchesReference drives random add/remove sequences over several
// universe sizes (including word and summary boundaries and a 10k universe)
// and verifies membership, count, ascending iteration and min/next against a
// map+sort reference.
func TestIdSetMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 127, 128, 129, 4095, 4096, 4097, 10_000} {
		r := rand.New(rand.NewSource(int64(n)))
		var s idSet
		s.reset(n)
		ref := make(map[int]bool)
		ops := 2000
		if n > 1000 {
			ops = 300 // verification is O(n); keep the big universes affordable
		}
		for op := 0; op < ops; op++ {
			id := r.Intn(n)
			switch r.Intn(4) {
			case 0, 1:
				s.add(id)
				ref[id] = true
			case 2:
				s.remove(id)
				delete(ref, id)
			case 3: // idempotence: double add / double remove
				s.add(id)
				s.add(id)
				ref[id] = true
			}
			if want := ref[id]; s.contains(id) != want {
				t.Fatalf("n=%d: contains(%d) = %v, want %v", n, id, s.contains(id), want)
			}
			if op%97 == 0 || op == ops-1 {
				verifyIdSet(t, &s, ref, n)
			}
		}
		// fill then drain.
		s.fill(n)
		for id := 0; id < n; id++ {
			ref[id] = true
		}
		verifyIdSet(t, &s, ref, n)
		for id := 0; id < n; id += 2 {
			s.remove(id)
			delete(ref, id)
		}
		verifyIdSet(t, &s, ref, n)
		// reset reuses storage and clears.
		s.reset(n)
		verifyIdSet(t, &s, map[int]bool{}, n)
	}
}

// TestIdSetSparseLargeUniverse pins the volunteer-grid access pattern: a few
// members spread across a 100k universe, iterated often. Ascending iteration
// must visit exactly the members, and next must hop empty summary blocks.
func TestIdSetSparseLargeUniverse(t *testing.T) {
	const n = 100_000
	var s idSet
	s.reset(n)
	members := []int{0, 1, 63, 64, 4095, 4096, 50_000, 99_998, 99_999}
	for _, id := range members {
		s.add(id)
	}
	got := s.appendTo(nil)
	if len(got) != len(members) {
		t.Fatalf("got %d members, want %d", len(got), len(members))
	}
	for i, id := range got {
		if id != members[i] {
			t.Fatalf("member[%d] = %d, want %d", i, id, members[i])
		}
	}
	i := 0
	for id := s.min(); id != -1; id = s.next(id) {
		if id != members[i] {
			t.Fatalf("iteration[%d] = %d, want %d", i, id, members[i])
		}
		i++
	}
	if i != len(members) {
		t.Fatalf("iterated %d members, want %d", i, len(members))
	}
	if got := s.from(65); got != 4095 {
		t.Fatalf("from(65) = %d, want 4095", got)
	}
	if got := s.next(50_000); got != 99_998 {
		t.Fatalf("next(50000) = %d, want 99998", got)
	}
	if got := s.next(99_999); got != -1 {
		t.Fatalf("next(99999) = %d, want -1", got)
	}
}
