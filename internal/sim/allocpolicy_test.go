package sim_test

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
)

// TestParseAllocPolicy pins the spec grammar: canonical names round-trip,
// defaults are applied, and malformed specs are rejected.
func TestParseAllocPolicy(t *testing.T) {
	good := map[string]string{
		"fixed":         "fixed",
		"maximum-iters": "maximum-iters",
		"split-into":    "split-into:2",
		"split-into:4":  "split-into:4",
		"reshape":       "reshape:2",
		"reshape:5":     "reshape:5",
	}
	for spec, want := range good {
		pol, err := sim.ParseAllocPolicy(spec)
		if err != nil {
			t.Fatalf("ParseAllocPolicy(%q): %v", spec, err)
		}
		if pol.Name() != want {
			t.Errorf("ParseAllocPolicy(%q).Name() = %q, want %q", spec, pol.Name(), want)
		}
		// Canonical names must re-parse to themselves.
		again, err := sim.ParseAllocPolicy(pol.Name())
		if err != nil || again.Name() != want {
			t.Errorf("canonical %q does not round-trip: %v", pol.Name(), err)
		}
	}
	bad := []string{"", "qcg", "fixed:3", "maximum-iters:1", "split-into:0",
		"split-into:x", "reshape:-1", "reshape:0", "split-into:"}
	for _, spec := range bad {
		if _, err := sim.ParseAllocPolicy(spec); err == nil {
			t.Errorf("ParseAllocPolicy(%q) accepted, want error", spec)
		}
	}
}

// TestAllocFixedMatchesNilPolicy is the refactor's behaviour-preservation
// proof at engine level: a run with the fixed policy must be bit-identical —
// result, event stream, observer reports — to the same run with no policy
// at all, in both time bases, with the slow-check oracles armed on the
// policy side. The only permitted difference is the moldable bookkeeping
// itself: IterationTasks is recorded (every entry Params.M) instead of nil.
func TestAllocFixedMatchesNilPolicy(t *testing.T) {
	names := append(core.Names(),
		"passive-emct", "proactive-emct", "remct", "deadline")
	plain := sim.NewRunner()
	moldable := sim.NewRunner()
	moldable.EnableSlowChecks()

	f := func(seed uint64, pickH uint8, event bool) bool {
		h := names[int(pickH)%len(names)]
		cfg := vectorScenarioConfig(t, seed, h, true)
		mode := sim.ModeSlot
		if event {
			mode = sim.ModeEvent
		}
		ref := runMode(t, plain, vectorScenarioConfig(t, seed, h, true), mode)

		fixed, err := sim.ParseAllocPolicy("fixed")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Alloc = fixed
		got := runMode(t, moldable, cfg, mode)

		iters := len(got.res.IterationEnds)
		if !got.res.Completed {
			iters++ // the censored in-progress iteration was sized too
		}
		if len(got.res.IterationTasks) != iters {
			t.Logf("seed %d %s: %d IterationTasks entries for %d iterations",
				seed, h, len(got.res.IterationTasks), iters)
			return false
		}
		for _, n := range got.res.IterationTasks {
			if n != cfg.Params.M {
				t.Logf("seed %d %s: fixed policy sized an iteration at %d, want M=%d",
					seed, h, n, cfg.Params.M)
				return false
			}
		}
		got.res.IterationTasks = nil
		return compareModes(t, seed, h, ref, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// spyAlloc wraps a policy and records each decision's inputs and output, so
// tests can check the engine consulted it at the right times with the right
// view.
type spyAlloc struct {
	inner sim.AllocationPolicy
	calls []spyCall
}

type spyCall struct {
	iteration, up, free, idle, iterTasks, chose int
	prev                                        sim.IterationInfo
}

func (s *spyAlloc) Name() string { return s.inner.Name() }
func (s *spyAlloc) TasksFor(v *sim.View, prev sim.IterationInfo) int {
	n := s.inner.TasksFor(v, prev)
	s.calls = append(s.calls, spyCall{
		iteration: v.Iteration, up: v.UpWorkers, free: v.FreeWorkers,
		idle: v.IdleWorkers, iterTasks: v.IterTasks, chose: n, prev: prev,
	})
	return n
}

// TestAllocDecisionProtocol pins the engine/policy contract on the QCG-style
// policies: one decision per iteration, iteration indices in order, the -1
// run-boundary sentinel first, previous-iteration summaries consistent with
// the result, and the recorded counts equal to what the policy chose from
// the UP counts it was shown.
func TestAllocDecisionProtocol(t *testing.T) {
	for _, spec := range []string{"maximum-iters", "split-into:3"} {
		for _, mode := range []sim.Mode{sim.ModeSlot, sim.ModeEvent} {
			inner, err := sim.ParseAllocPolicy(spec)
			if err != nil {
				t.Fatal(err)
			}
			spy := &spyAlloc{inner: inner}
			cfg := vectorScenarioConfig(t, 42, "emct", false)
			cfg.Params.Iterations = 4
			cfg.Alloc = spy
			cfg.Mode = mode
			runner := sim.NewRunner()
			runner.EnableSlowChecks()
			res, err := runner.Run(cfg)
			if err != nil {
				t.Fatalf("%s %v: %v", spec, mode, err)
			}

			if len(spy.calls) != len(res.IterationTasks) {
				t.Fatalf("%s %v: %d decisions for %d recorded iteration sizes",
					spec, mode, len(spy.calls), len(res.IterationTasks))
			}
			for i, c := range spy.calls {
				if c.iteration != i {
					t.Fatalf("%s %v: decision %d carried View.Iteration %d", spec, mode, i, c.iteration)
				}
				if c.chose != res.IterationTasks[i] {
					t.Fatalf("%s %v: decision %d chose %d, result records %d",
						spec, mode, i, c.chose, res.IterationTasks[i])
				}
				if i == 0 {
					if c.prev.Iteration != -1 {
						t.Fatalf("%s %v: first decision got prev.Iteration %d, want -1", spec, mode, c.prev.Iteration)
					}
					continue
				}
				if c.prev.Iteration != i-1 || c.prev.Tasks != res.IterationTasks[i-1] {
					t.Fatalf("%s %v: decision %d got prev %+v, want iteration %d with %d tasks",
						spec, mode, i, c.prev, i-1, res.IterationTasks[i-1])
				}
				wantSlots := res.IterationEnds[i-1]
				if i >= 2 {
					wantSlots -= res.IterationEnds[i-2]
				}
				if c.prev.Slots != wantSlots {
					t.Fatalf("%s %v: decision %d got prev.Slots %d, want %d",
						spec, mode, i, c.prev.Slots, wantSlots)
				}
				// The decision view still describes the completed iteration's
				// table (the resize happens after the policy returns).
				if c.iterTasks != res.IterationTasks[i-1] {
					t.Fatalf("%s %v: decision %d saw IterTasks %d, want previous size %d",
						spec, mode, i, c.iterTasks, res.IterationTasks[i-1])
				}
				// QCG sizing: the choice is a pure function of the UP count the
				// engine exposed.
				want := c.up
				if spec == "split-into:3" {
					want = (c.up + 2) / 3
				}
				if want < 1 {
					want = 1
				}
				if c.chose != want {
					t.Fatalf("%s %v: decision %d chose %d from up=%d, want %d",
						spec, mode, i, c.chose, c.up, want)
				}
			}
		}
	}
}

// cyclingAlloc drives the resize machinery through a fixed size sequence —
// growth, shrink, and size-1 extremes — as a pure function of the iteration
// index, so both time bases decide identically.
type cyclingAlloc struct{ sizes []int }

func (c cyclingAlloc) Name() string { return "cycling" }
func (c cyclingAlloc) TasksFor(v *sim.View, _ sim.IterationInfo) int {
	return c.sizes[v.Iteration%len(c.sizes)]
}

// TestAllocEngineResizeCrossMode exercises per-iteration grow/shrink of the
// task tables — including growth past the initial Params.M capacity and
// shrink to a single task — under the full slow-check oracle set in both
// time bases, and requires the two modes to agree bit for bit on
// deterministic vector availability.
func TestAllocEngineResizeCrossMode(t *testing.T) {
	sizes := []int{1, 7, 3, 19, 2, 11}
	slotRunner := sim.NewRunner()
	slotRunner.EnableSlowChecks()
	eventRunner := sim.NewRunner()
	eventRunner.EnableSlowChecks()

	f := func(seed uint64) bool {
		mk := func() sim.Config {
			cfg := vectorScenarioConfig(t, seed, "emct", false)
			cfg.Params.Iterations = 6
			cfg.Alloc = cyclingAlloc{sizes: sizes}
			return cfg
		}
		slot := runMode(t, slotRunner, mk(), sim.ModeSlot)
		event := runMode(t, eventRunner, mk(), sim.ModeEvent)
		if !compareModes(t, seed, "emct+cycling", slot, event) {
			return false
		}
		for i, n := range slot.res.IterationTasks {
			if n != sizes[i%len(sizes)] {
				t.Logf("seed %d: iteration %d ran %d tasks, want %d", seed, i, n, sizes[i%len(sizes)])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocReshapePooledRunsIdentical pins the pooling contract for the one
// stateful policy: a reshape instance reused across runs must reset itself
// on the run-boundary sentinel, so repeating the same run on the same
// runner and policy instance yields identical results.
func TestAllocReshapePooledRunsIdentical(t *testing.T) {
	pol, err := sim.ParseAllocPolicy("reshape:2")
	if err != nil {
		t.Fatal(err)
	}
	runner := sim.NewRunner()
	runner.EnableSlowChecks()
	run := func() *sim.Result {
		cfg := vectorScenarioConfig(t, 7, "emct", false)
		cfg.Params.Iterations = 5
		cfg.Alloc = pol
		res, err := runner.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	for i := 0; i < 3; i++ {
		if again := run(); !reflect.DeepEqual(first, again) {
			t.Fatalf("pooled reshape run %d diverged: %+v vs %+v", i+2, first, again)
		}
	}
}

// TestAllocReshapeSteps pins the reshape policy's arithmetic directly: grow
// while per-task time improves, reverse on regression, stay within the
// [1, 4M] band.
func TestAllocReshapeSteps(t *testing.T) {
	pol, err := sim.ParseAllocPolicy("reshape:2")
	if err != nil {
		t.Fatal(err)
	}
	v := &sim.View{Params: &platform.Params{M: 8}}
	decide := func(prev sim.IterationInfo) int { return pol.TasksFor(v, prev) }

	if n := decide(sim.IterationInfo{Iteration: -1}); n != 8 {
		t.Fatalf("first decision = %d, want M=8", n)
	}
	// No baseline yet: keep growing.
	if n := decide(sim.IterationInfo{Iteration: 0, Tasks: 8, Slots: 80}); n != 10 {
		t.Fatalf("second decision = %d, want 10", n)
	}
	// Improved (8.0 per task): keep direction.
	if n := decide(sim.IterationInfo{Iteration: 1, Tasks: 10, Slots: 80}); n != 12 {
		t.Fatalf("after improvement = %d, want 12", n)
	}
	// Regressed (10.0 per task): reverse.
	if n := decide(sim.IterationInfo{Iteration: 2, Tasks: 12, Slots: 120}); n != 10 {
		t.Fatalf("after regression = %d, want 10", n)
	}
	// Walk it down with continued improvement, never below 1.
	n := 10
	for i := 3; i < 40; i++ {
		n = decide(sim.IterationInfo{Iteration: i, Tasks: n, Slots: n}) // 1.0 per task, always improving
		if n < 1 || n > 32 {
			t.Fatalf("iteration %d: size %d escaped the [1, 4M] band", i, n)
		}
	}
}

// TestAllocCensoredRunRecordsInProgressIteration pins the IterationTasks
// contract for censored runs: the in-progress iteration's size is recorded
// even though it never completed.
func TestAllocCensoredRunRecordsInProgressIteration(t *testing.T) {
	pol, err := sim.ParseAllocPolicy("fixed")
	if err != nil {
		t.Fatal(err)
	}
	cfg := vectorScenarioConfig(t, 3, "emct", false)
	cfg.Params.MaxSlots = 2 // censor long before the first barrier
	cfg.Params.Tprog = 10
	cfg.Alloc = pol
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("run unexpectedly completed in 2 slots")
	}
	if len(res.IterationTasks) != 1 || res.IterationTasks[0] != cfg.Params.M {
		t.Fatalf("censored run recorded IterationTasks %v, want [%d]", res.IterationTasks, cfg.Params.M)
	}
}
