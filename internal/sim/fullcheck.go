package sim

import (
	"fmt"

	"repro/internal/avail"
)

// This file retains the pre-incremental full-rebuild implementations as an
// equivalence oracle. With slowChecks armed (test-only; see export_test.go)
// the engine verifies, every slot, that the incremental structures — the
// dirty-set view, the remaining-task count, the pending-originals list and
// the replication bucket queue — agree exactly with a from-scratch recount
// of the task table and worker states. Any divergence panics with the slot
// and the two values, which the property tests surface as failures.

// buildViewFull is the retained full-rebuild reference for buildView: it
// recomputes every processor snapshot and recounts the remaining tasks from
// the raw engine state, exactly as the pre-incremental engine did per slot.
func (e *engine) buildViewFull(dst *View) {
	dst.Slot = e.slot
	dst.Iteration = e.iter
	dst.Params = e.params
	if cap(dst.Procs) < len(e.workers) {
		dst.Procs = make([]ProcView, len(e.workers))
	}
	dst.Procs = dst.Procs[:len(e.workers)]
	remaining := 0
	for t := range e.tasks {
		if !e.tasks[t].completed {
			remaining++
		}
	}
	dst.TasksRemaining = remaining
	dst.IterTasks = len(e.tasks)
	dst.UpWorkers, dst.FreeWorkers, dst.IdleWorkers = 0, 0, 0
	for i := range e.workers {
		e.fillProcView(i, &dst.Procs[i])
		if e.states[i] == avail.Up {
			dst.UpWorkers++
			w := &e.workers[i]
			if w.incoming == nil {
				dst.FreeWorkers++
				if w.computing == nil {
					dst.IdleWorkers++
				}
			}
		}
	}
}

// verifyView checks the incrementally maintained view against buildViewFull,
// and the change-tracking contract against the previous revision: a
// processor snapshot may only differ from its previous value if its
// ProcEpochs stamp moved (schedulers cache scores on exactly this promise).
func (e *engine) verifyView() {
	e.buildViewFull(&e.checkView)
	if e.view.TasksRemaining != e.checkView.TasksRemaining {
		panic(fmt.Sprintf("sim: slot %d: incremental TasksRemaining %d, full rebuild %d",
			e.slot, e.view.TasksRemaining, e.checkView.TasksRemaining))
	}
	if e.view.IterTasks != e.checkView.IterTasks {
		panic(fmt.Sprintf("sim: slot %d: view IterTasks %d, task table holds %d",
			e.slot, e.view.IterTasks, e.checkView.IterTasks))
	}
	if e.view.UpWorkers != e.checkView.UpWorkers ||
		e.view.FreeWorkers != e.checkView.FreeWorkers ||
		e.view.IdleWorkers != e.checkView.IdleWorkers {
		panic(fmt.Sprintf("sim: slot %d: view counts up=%d free=%d idle=%d, full recount up=%d free=%d idle=%d",
			e.slot, e.view.UpWorkers, e.view.FreeWorkers, e.view.IdleWorkers,
			e.checkView.UpWorkers, e.checkView.FreeWorkers, e.checkView.IdleWorkers))
	}
	for i := range e.view.Procs {
		if e.view.Procs[i] != e.checkView.Procs[i] {
			panic(fmt.Sprintf("sim: slot %d: stale view for processor %d: incremental %+v, full rebuild %+v",
				e.slot, i, e.view.Procs[i], e.checkView.Procs[i]))
		}
	}
	if cap(e.prevProcs) < len(e.view.Procs) {
		e.prevProcs = make([]ProcView, len(e.view.Procs))
		e.prevEpochs = make([]int64, len(e.view.Procs))
	}
	e.prevProcs = e.prevProcs[:len(e.view.Procs)]
	e.prevEpochs = e.prevEpochs[:len(e.view.Procs)]
	if e.prevValid {
		for i := range e.view.Procs {
			if e.view.ProcEpochs[i] == e.prevEpochs[i] && e.view.Procs[i] != e.prevProcs[i] {
				panic(fmt.Sprintf("sim: slot %d: processor %d changed without an epoch bump: %+v -> %+v (epoch %d)",
					e.slot, i, e.prevProcs[i], e.view.Procs[i], e.view.ProcEpochs[i]))
			}
		}
	}
	copy(e.prevProcs, e.view.Procs)
	copy(e.prevEpochs, e.view.ProcEpochs)
	e.prevValid = true
}

// verifyPending checks that the pending-originals index holds exactly the
// incomplete zero-copy tasks, in ascending order — the set and order the
// pre-incremental originals loop produced by scanning the whole task table.
func (e *engine) verifyPending() {
	got := e.trk.pendFirst()
	for want := range e.tasks {
		if e.tasks[want].completed || e.tasks[want].copies > 0 {
			continue
		}
		if got != want {
			panic(fmt.Sprintf("sim: slot %d: pending index yields task %d, full scan expects %d",
				e.slot, got, want))
		}
		got = e.trk.pendAfter(got)
	}
	if got != noTask {
		panic(fmt.Sprintf("sim: slot %d: pending index has extra task %d past the full scan",
			e.slot, got))
	}
}

// verifyChains checks the bound-chain index against a full worker scan: it
// must hold exactly the workers whose incoming copy still needs transfer
// slots, iterated in ascending worker order.
func (e *engine) verifyChains() {
	got := e.chainSet.min()
	for want := range e.workers {
		if !e.workers[want].needsTransfer(e.params.Tprog) {
			if e.chainSet.contains(want) {
				panic(fmt.Sprintf("sim: slot %d: worker %d in chain index without an incomplete chain",
					e.slot, want))
			}
			continue
		}
		if got != want {
			panic(fmt.Sprintf("sim: slot %d: chain index yields worker %d, full scan expects %d",
				e.slot, got, want))
		}
		got = e.chainSet.next(got)
	}
	if got != noWorker {
		panic(fmt.Sprintf("sim: slot %d: chain index has extra worker %d past the full scan",
			e.slot, got))
	}
}

// verifyCounters recounts every availability-derived index against the raw
// engine tables: the UP set and the nUp/nFreeUp/nIdleUp counters
// (reindexAvail's bookkeeping, consumed by the slate build, canMaterialize,
// reportQuietSpan and the per-slot Observer), and the per-task holder lists
// (the completion pass's sibling index). Any drift means a mutation site
// skipped its availKey/reindexAvail wrap or a holder update.
func (e *engine) verifyCounters() {
	up, freeUp, idleUp := 0, 0, 0
	for i := range e.workers {
		w := &e.workers[i]
		isUp := e.states[i] == avail.Up
		if e.upSet.contains(i) != isUp {
			panic(fmt.Sprintf("sim: slot %d: upSet.contains(%d) = %v, state %v",
				e.slot, i, e.upSet.contains(i), e.states[i]))
		}
		if !isUp {
			continue
		}
		up++
		if w.incoming == nil {
			freeUp++
			if w.computing == nil {
				idleUp++
			}
		}
	}
	if up != e.nUp || freeUp != e.nFreeUp || idleUp != e.nIdleUp {
		panic(fmt.Sprintf("sim: slot %d: incremental counters up=%d free=%d idle=%d, full recount up=%d free=%d idle=%d",
			e.slot, e.nUp, e.nFreeUp, e.nIdleUp, up, freeUp, idleUp))
	}
	for t := range e.tasks {
		hs := e.holders[t]
		if len(hs) != e.tasks[t].copies {
			panic(fmt.Sprintf("sim: slot %d: task %d has %d holders recorded, %d live copies",
				e.slot, t, len(hs), e.tasks[t].copies))
		}
		for _, h := range hs {
			w := &e.workers[int(h)]
			holds := (w.computing != nil && w.computing.task == t) ||
				(w.incoming != nil && w.incoming.task == t)
			if !holds {
				panic(fmt.Sprintf("sim: slot %d: worker %d recorded as holder of task %d but holds no copy of it",
					e.slot, h, t))
			}
		}
	}
}

// verifyPipelines runs after finishSlot's completion and promotion passes:
// no worker may still hold a finished computation (a completion the
// finishers list missed) or a promotable prefetch (a promotion the dirty
// set missed).
func (e *engine) verifyPipelines() {
	for i := range e.workers {
		w := &e.workers[i]
		if w.computing != nil && w.computing.computeDone >= w.proc.W {
			panic(fmt.Sprintf("sim: slot %d: worker %d holds a finished computation the completion pass missed",
				e.slot, i))
		}
		if w.computing == nil && w.incoming != nil && w.incoming.dataDone {
			panic(fmt.Sprintf("sim: slot %d: worker %d holds a promotable prefetch the promotion pass missed",
				e.slot, i))
		}
	}
}

// verifyRoundSetup checks the two O(1)/O(plans) round-start invariants
// against their reference recounts: the incrementally maintained busy count
// (n_active's base) and the all-zero NQ queues schedule restores in
// O(plans) instead of a per-round O(P) wipe.
func (e *engine) verifyRoundSetup() {
	e.verifyCounters()
	busy := 0
	for i := range e.workers {
		if e.workers[i].busy() {
			busy++
		}
	}
	if busy != e.nBusy {
		panic(fmt.Sprintf("sim: slot %d: incremental busy count %d, full recount %d",
			e.slot, e.nBusy, busy))
	}
	for i := range e.rs.NQ {
		if e.rs.NQ[i] != 0 {
			panic(fmt.Sprintf("sim: slot %d: NQ[%d] = %d at round start, want 0 (stale round queue)",
				e.slot, i, e.rs.NQ[i]))
		}
	}
}

// verifyTaskTables checks the per-iteration sizing invariant at an
// iteration start: every per-task table — states, replica counters, round
// overlay, holder lists — and the tracker's pending/remaining indexes must
// agree on the iteration's task count, with every entry in its
// start-of-iteration state. A moldable resize that missed a table would
// surface here as a length or stale-entry mismatch.
func (e *engine) verifyTaskTables() {
	m := len(e.tasks)
	if len(e.nextReplica) != m || len(e.plannedCopies) != m || len(e.holders) != m {
		panic(fmt.Sprintf("sim: slot %d: task tables disagree on iteration size: tasks=%d nextReplica=%d plannedCopies=%d holders=%d",
			e.slot, m, len(e.nextReplica), len(e.plannedCopies), len(e.holders)))
	}
	if e.trk.remaining != m || e.trk.pending.size() != m {
		panic(fmt.Sprintf("sim: slot %d: tracker sized for %d remaining / %d pending tasks, table holds %d",
			e.slot, e.trk.remaining, e.trk.pending.size(), m))
	}
	for t := 0; t < m; t++ {
		if e.tasks[t] != (taskState{}) || e.nextReplica[t] != 0 ||
			e.plannedCopies[t] != 0 || len(e.holders[t]) != 0 {
			panic(fmt.Sprintf("sim: slot %d: task %d not in start-of-iteration state after resize",
				e.slot, t))
		}
	}
}

// verifyLeastCovered checks one bucket-queue replication pick against the
// reference O(m) least-covered scan.
func (e *engine) verifyLeastCovered(got, gotCopies, copyCap int) {
	best, bestCopies := noTask, copyCap
	for t := range e.tasks {
		if e.tasks[t].completed {
			continue
		}
		total := e.tasks[t].copies + e.plannedCopies[t]
		if total >= 1 && total < bestCopies {
			best, bestCopies = t, total
		}
	}
	if best != got || bestCopies != gotCopies {
		panic(fmt.Sprintf("sim: slot %d: bucket queue picked task %d (%d copies), full scan picks %d (%d copies)",
			e.slot, got, gotCopies, best, bestCopies))
	}
}

// verifySkip re-derives the quiet-skip preconditions from the raw tables
// before nextSlot jumps over [slot+1, target): the dirty set must be
// empty, no UP worker may hold an advanceable transfer chain (it would
// have dirtied the slot), the reference materialization test recomputed
// from the task table must agree nothing can bind, and every queued
// availability transition must lie at or beyond the jump target.
func (e *engine) verifySkip(target int) {
	e.verifyCounters()
	copyCap := 1 + e.params.MaxReplicas
	pending, replicable, remaining := false, false, 0
	for t := range e.tasks {
		ts := &e.tasks[t]
		if ts.completed {
			continue
		}
		remaining++
		if ts.copies == 0 {
			pending = true
		} else if ts.copies < copyCap {
			replicable = true
		}
	}
	up, idle, freeUp := 0, 0, false
	for i := range e.workers {
		w := &e.workers[i]
		if e.states[i] != avail.Up {
			continue
		}
		up++
		if w.incoming == nil {
			freeUp = true
		}
		if !w.busy() {
			idle++
		}
		if w.needsTransfer(e.params.Tprog) {
			panic(fmt.Sprintf("sim: slot %d: quiet skip with an advanceable chain on UP worker %d",
				e.slot, i))
		}
		// A running computation must have started (its start event already
		// emitted) and must not complete strictly inside the span: the
		// completion slot executes normally, so target may at most reach it.
		if w.computing != nil && w.hasProgram(e.params.Tprog) {
			if w.computing.computeDone <= 0 {
				panic(fmt.Sprintf("sim: slot %d: quiet skip over an unstarted computation on worker %d",
					e.slot, i))
			}
			if end := e.slot + w.proc.W - w.computing.computeDone; end < target {
				panic(fmt.Sprintf("sim: slot %d: quiet skip to %d over worker %d's completion at %d",
					e.slot, target, i, end))
			}
		}
	}
	materializable := false
	if pending {
		materializable = freeUp
	} else if e.params.MaxReplicas > 0 && replicable && idle > 0 && up > remaining {
		materializable = true
	}
	if materializable {
		panic(fmt.Sprintf("sim: slot %d: quiet skip to %d but the reference test says a copy could bind",
			e.slot, target))
	}
	for k := 0; k < e.evq.len(); k++ {
		if e.evq.slot[k] < target {
			panic(fmt.Sprintf("sim: slot %d: quiet skip to %d over a transition queued at %d",
				e.slot, target, e.evq.slot[k]))
		}
	}
}
