package sim

import (
	"testing"

	"repro/internal/avail"
	"repro/internal/platform"
)

func testWorker(w int) *workerState {
	m := avail.MustMarkov3([3][3]float64{
		{0.95, 0.03, 0.02},
		{0.04, 0.90, 0.06},
		{0.05, 0.05, 0.90},
	})
	return &workerState{
		proc: &platform.Processor{ID: 0, W: w, Avail: m},
	}
}

func TestWorkerProgramThenData(t *testing.T) {
	w := testWorker(2)
	w.incoming = &copyState{task: 0}
	const tprog, tdata = 2, 3

	if !w.needsTransfer(tprog) {
		t.Fatal("fresh worker with bound task must need transfer")
	}
	// Two slots of program.
	w.advanceTransfer(tprog, tdata)
	if w.hasProgram(tprog) || w.progRecv != 1 {
		t.Fatalf("after 1 slot: progRecv=%d", w.progRecv)
	}
	w.advanceTransfer(tprog, tdata)
	if !w.hasProgram(tprog) {
		t.Fatal("program should be complete after Tprog slots")
	}
	if w.incoming.dataRecv != 0 {
		t.Fatal("data must not advance while program transfers")
	}
	// Three slots of data.
	for i := 0; i < 3; i++ {
		if w.incoming.dataDone {
			t.Fatalf("dataDone early at %d", i)
		}
		w.advanceTransfer(tprog, tdata)
	}
	if !w.incoming.dataDone {
		t.Fatal("data should be done after Tdata slots")
	}
	if !w.needsTransfer(tprog) == false && w.needsTransfer(tprog) {
		t.Fatal("no further transfer needed")
	}
}

func TestWorkerZeroTdata(t *testing.T) {
	w := testWorker(1)
	w.incoming = &copyState{task: 0}
	const tprog, tdata = 1, 0
	w.advanceTransfer(tprog, tdata)
	if !w.hasProgram(tprog) || !w.incoming.dataDone {
		t.Fatal("with Tdata=0 data completes with the last program slot")
	}
}

func TestWorkerPromote(t *testing.T) {
	w := testWorker(2)
	w.incoming = &copyState{task: 3, dataDone: true}
	if !w.promote() {
		t.Fatal("promotion should happen")
	}
	if w.computing == nil || w.computing.task != 3 || w.incoming != nil {
		t.Fatal("promotion wrong")
	}
	// No promotion when computing busy.
	w.incoming = &copyState{task: 4, dataDone: true}
	if w.promote() {
		t.Fatal("promotion with busy computing slot")
	}
	// No promotion when data incomplete.
	w.computing = nil
	w.incoming.dataDone = false
	if w.promote() {
		t.Fatal("promotion with incomplete data")
	}
}

func TestWorkerCrashLosesEverything(t *testing.T) {
	w := testWorker(2)
	w.progRecv = 2
	w.computing = &copyState{task: 1, dataDone: true, computeDone: 1}
	w.incoming = &copyState{task: 2, dataRecv: 1}
	killed := w.crash(nil)
	if len(killed) != 2 {
		t.Fatalf("crash killed %d copies, want 2", len(killed))
	}
	if w.progRecv != 0 || w.computing != nil || w.incoming != nil {
		t.Fatal("crash must clear program and pipeline")
	}
}

func TestWorkerDropCopiesOfKeepsProgram(t *testing.T) {
	w := testWorker(2)
	w.progRecv = 2
	w.computing = &copyState{task: 1, dataDone: true}
	w.incoming = &copyState{task: 1, replica: 1}
	dropped := w.dropCopiesOf(1, nil)
	if len(dropped) != 2 {
		t.Fatalf("dropped %d, want 2", len(dropped))
	}
	if w.progRecv != 2 {
		t.Fatal("cancelling copies must keep the program")
	}
	// Other tasks untouched.
	w.computing = &copyState{task: 5, dataDone: true}
	if n := len(w.dropCopiesOf(1, nil)); n != 0 {
		t.Fatalf("dropped %d copies of absent task", n)
	}
	if w.computing == nil {
		t.Fatal("unrelated copy dropped")
	}
}

func TestWorkerDropAllCopies(t *testing.T) {
	w := testWorker(2)
	w.computing = &copyState{task: 0, dataDone: true}
	w.incoming = &copyState{task: 1}
	if n := len(w.dropAllCopies(nil)); n != 2 {
		t.Fatalf("dropAllCopies returned %d", n)
	}
	if w.busy() {
		t.Fatal("worker still busy after dropAllCopies")
	}
}

func TestWorkerBusy(t *testing.T) {
	w := testWorker(1)
	if w.busy() {
		t.Fatal("fresh worker busy")
	}
	w.incoming = &copyState{}
	if !w.busy() {
		t.Fatal("worker with incoming not busy")
	}
}
