package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// heapEntry mirrors one queued transition for the sort reference.
type heapEntry struct{ slot, worker int }

// drainHeap pops every entry, verifying the heap invariant never yields an
// out-of-order pair, and returns the pop sequence.
func drainHeap(t *testing.T, h *transitionHeap) []heapEntry {
	t.Helper()
	var got []heapEntry
	for h.len() > 0 {
		if at, ok := h.min(); !ok || at != h.slot[0] {
			t.Fatalf("min() = (%d, %v), root slot %d", at, ok, h.slot[0])
		}
		s, w := h.pop()
		got = append(got, heapEntry{s, w})
	}
	if _, ok := h.min(); ok {
		t.Fatalf("min() reports an entry on an empty heap")
	}
	return got
}

// TestTransitionHeapPopOrder drives random push/pop interleavings and checks
// the pop sequence against a stable sort reference on (slot, worker) —
// including batches where many workers share the same transition slot, the
// case whose worker-order tie-break keeps event mode's crash stream aligned
// with slot mode's ascending-worker scan.
func TestTransitionHeapPopOrder(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		var h transitionHeap
		h.reset()
		// A few slot values only, so same-slot ties are dense.
		n := 5 + r.Intn(300)
		want := make([]heapEntry, 0, n)
		for k := 0; k < n; k++ {
			e := heapEntry{slot: r.Intn(8), worker: r.Intn(50)}
			h.push(e.slot, e.worker)
			want = append(want, e)
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].slot != want[b].slot {
				return want[a].slot < want[b].slot
			}
			return want[a].worker < want[b].worker
		})
		got := drainHeap(t, &h)
		if len(got) != len(want) {
			t.Fatalf("seed %d: popped %d entries, pushed %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: pop[%d] = %+v, sorted reference %+v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestTransitionHeapInterleaved alternates pushes and pops (the event
// clock's real access pattern: pop a due transition, push the worker's next
// one) and checks every pop is the minimum of the live set.
func TestTransitionHeapInterleaved(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		var h transitionHeap
		h.reset()
		live := map[heapEntry]int{} // multiset: duplicates are legal
		for op := 0; op < 2000; op++ {
			if h.len() == 0 || r.Intn(3) != 0 {
				e := heapEntry{slot: r.Intn(40), worker: r.Intn(64)}
				h.push(e.slot, e.worker)
				live[e]++
				continue
			}
			s, w := h.pop()
			got := heapEntry{s, w}
			for e := range live {
				if e.slot < s || (e.slot == s && e.worker < w) {
					t.Fatalf("seed %d op %d: popped %+v with smaller live entry %+v", seed, op, got, e)
				}
			}
			if live[got] == 0 {
				t.Fatalf("seed %d op %d: popped %+v which is not live", seed, op, got)
			}
			live[got]--
			if live[got] == 0 {
				delete(live, got)
			}
		}
	}
}
