package sim

import (
	"repro/internal/expect"
	"repro/internal/platform"
)

// copyState is one live copy (original or replica) of a task on a worker.
type copyState struct {
	// task is the task index within the current iteration.
	task int
	// replica is the copy number: 0 for the original, 1.. for replicas.
	replica int
	// dataRecv counts the data slots already received.
	dataRecv int
	// dataDone is set once the full Tdata slots have been received.
	dataDone bool
	// computeDone counts the UP compute slots already spent.
	computeDone int
}

// workerState is the dynamic state of one worker processor. The
// availability state itself lives in the engine's struct-of-arrays
// e.states (one byte per worker): the hot loops — slate building, the
// event clock's frozen-platform scan, the slow-check recounts — read
// only the state, and packing those into a dense array keeps the scans
// cache-resident at volunteer-grid platform sizes.
type workerState struct {
	proc *platform.Processor
	// analytics is the interned per-model cache the scheduler view exposes.
	analytics *expect.Analytics
	// progRecv counts program slots held; == Tprog means the full program.
	progRecv int
	// computing is the copy being computed (data complete), if any.
	computing *copyState
	// incoming is the copy whose data is bound to this worker (receiving or
	// suspended), if any. Its transfer chain is: remaining program first,
	// then the task data.
	incoming *copyState
}

// hasProgram reports whether the full program is held.
func (w *workerState) hasProgram(tprog int) bool { return w.progRecv >= tprog }

// remProgram is the number of program slots still needed.
func (w *workerState) remProgram(tprog int) int { return tprog - w.progRecv }

// busy reports whether any begun work is attached to the worker.
func (w *workerState) busy() bool { return w.computing != nil || w.incoming != nil }

// crash applies a transition into DOWN: the program, all task data and all
// partial computation are lost (Section 3.2). It appends the killed copies
// to buf (a caller-owned scratch buffer, so the steady-state hot path stays
// allocation-free) and returns the extended buffer.
func (w *workerState) crash(buf []*copyState) []*copyState {
	if w.computing != nil {
		buf = append(buf, w.computing)
		w.computing = nil
	}
	if w.incoming != nil {
		buf = append(buf, w.incoming)
		w.incoming = nil
	}
	w.progRecv = 0
	return buf
}

// dropCopiesOf removes any copy of the given task from the worker (used when
// another copy completed, and at iteration barriers), appending the dropped
// copies to buf for waste accounting. The program is kept: only DOWN loses it.
func (w *workerState) dropCopiesOf(task int, buf []*copyState) []*copyState {
	if w.computing != nil && w.computing.task == task {
		buf = append(buf, w.computing)
		w.computing = nil
	}
	if w.incoming != nil && w.incoming.task == task {
		buf = append(buf, w.incoming)
		w.incoming = nil
	}
	return buf
}

// dropAllCopies clears the whole pipeline (iteration barrier), appending the
// dropped copies to buf.
func (w *workerState) dropAllCopies(buf []*copyState) []*copyState {
	if w.computing != nil {
		buf = append(buf, w.computing)
		w.computing = nil
	}
	if w.incoming != nil {
		buf = append(buf, w.incoming)
		w.incoming = nil
	}
	return buf
}

// needsTransfer reports whether the worker's bound chain still needs channel
// slots (program remainder or incoming data).
func (w *workerState) needsTransfer(tprog int) bool {
	return w.incoming != nil && (!w.hasProgram(tprog) || !w.incoming.dataDone)
}

// advanceTransfer consumes one granted channel slot: program first, then the
// incoming task's data. It must only be called when needsTransfer is true
// and the worker is UP.
func (w *workerState) advanceTransfer(tprog, tdata int) {
	if !w.hasProgram(tprog) {
		w.progRecv++
	} else {
		w.incoming.dataRecv++
	}
	if w.hasProgram(tprog) && w.incoming.dataRecv >= tdata {
		w.incoming.dataDone = true
	}
}

// promote moves a data-complete incoming copy into the (free) computing
// slot. It returns true when a promotion happened.
func (w *workerState) promote() bool {
	if w.computing == nil && w.incoming != nil && w.incoming.dataDone {
		w.computing = w.incoming
		w.incoming = nil
		return true
	}
	return false
}
