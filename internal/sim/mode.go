package sim

import (
	"fmt"
	"strings"
)

// Mode selects the engine's time base.
type Mode uint8

const (
	// ModeSlot ticks the simulation one slot at a time, sampling every
	// processor's availability each slot — the paper's literal model and
	// the reference semantics. The zero value, so configurations that never
	// mention a mode keep their exact historical behaviour.
	ModeSlot Mode = iota
	// ModeEvent samples availability at sojourn granularity (one draw per
	// state run instead of one per slot) and skips quiet spans — runs of
	// slots in which no scheduler-visible state changes and no scheduler
	// decision could bind work. Results are distribution-identical to slot
	// mode but not bit-identical for Markov platforms, because the RNG is
	// consumed per transition rather than per slot; on recorded vectors
	// with deterministic schedulers the two modes match exactly.
	ModeEvent
)

// modeNames lists the valid mode names, indexed by Mode.
var modeNames = []string{"slot", "event"}

// ModeNames returns the valid mode names in declaration order.
func ModeNames() []string { return append([]string(nil), modeNames...) }

// String renders the mode's canonical name.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// valid reports whether m is a defined mode.
func (m Mode) valid() bool { return int(m) < len(modeNames) }

// ParseMode parses a mode name, failing fast with the list of valid names —
// the same contract CLI flag validation uses for experiment names.
func ParseMode(s string) (Mode, error) {
	for i, name := range modeNames {
		if s == name {
			return Mode(i), nil
		}
	}
	return 0, fmt.Errorf("sim: unknown mode %q (valid modes: %s)",
		s, strings.Join(modeNames, ", "))
}
