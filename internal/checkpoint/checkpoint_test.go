package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		ConfigDigest: strings.Repeat("ab", 32),
		Chunks:       240,
		NextChunk:    17,
		Censored:     3,
		Failed:       1,
		Overall: stats.AggregatorState{
			Instances: 34,
			Accums: []stats.AccumState{
				{Name: "emct", SumBits: 0x40091eb851eb851f, Count: 34, Wins: 20},
				{Name: "emct*", SumBits: 0x3ff0000000000000, Count: 34, Wins: 25},
				{Name: "mct", SumBits: 0x4030a3d70a3d70a4, Count: 34, Wins: 4},
			},
		},
		Keyed: map[string]stats.AggregatorState{
			"wmin 3": {
				Instances: 10,
				Accums:    []stats.AccumState{{Name: "emct", SumBits: 0x7ff8000000000000, Count: 10, Wins: 3}},
			},
			"cell 20 5 10": {
				Instances: 4,
				Accums:    []stats.AccumState{{Name: "emct", SumBits: 0, Count: 4, Wins: 4}},
			},
		},
	}
}

// TestEncodeDecodeRoundTrip pins the durable format: a snapshot survives
// the encode/decode cycle exactly, NaN/zero sum bits included.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	var b bytes.Buffer
	if err := Encode(&b, want); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v\nfile:\n%s", err, b.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestEncodeDeterministic pins that two encodings of the same snapshot are
// byte-identical (map iteration must not leak into the format).
func TestEncodeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Encode(&a, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same snapshot differ")
	}
}

// TestDecodeRejectsDamage feeds structurally damaged files and requires a
// clean error for each — never a panic, never a partial snapshot.
func TestDecodeRejectsDamage(t *testing.T) {
	var b bytes.Buffer
	if err := Encode(&b, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	valid := b.Bytes()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"no-newline", []byte("volatile-checkpoint v1")},
		{"truncated-half", valid[:len(valid)/2]},
		{"truncated-checksum", valid[:len(valid)-10]},
		{"missing-checksum-line", append(bytes.TrimSuffix(append([]byte(nil), valid...), []byte("\n")), '\n')[:bytes.LastIndex(valid, []byte("sum "))]},
		{"flipped-byte", flip(valid, len(valid)/3)},
		{"flipped-sum-byte", flip(valid, len(valid)-3)},
		{"wrong-version", reline(valid, 0, "volatile-checkpoint v99")},
		{"bad-digest", reline(valid, 1, "config nothex")},
		{"watermark-past-chunks", reline(valid, 3, "next 9999")},
		{"negative-censored", reline(valid, 4, "censored -1")},
		{"garbage", []byte("u\nr\nd\n")},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			snap, err := Decode(c.data)
			if err == nil {
				t.Fatalf("damaged file decoded: %+v", snap)
			}
			if snap != nil {
				t.Fatalf("non-nil snapshot alongside error %v", err)
			}
		})
	}
}

// flip returns a copy of data with one byte XOR-flipped at i.
func flip(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0x01
	return out
}

// reline replaces line n (0-based) and rewrites a valid checksum, so the
// field validation — not the checksum — is what must reject the file.
func reline(data []byte, n int, repl string) []byte {
	lines := strings.Split(string(data), "\n")
	lines[n] = repl
	payload := strings.Join(lines[:len(lines)-2], "\n") + "\n"
	sum := sha256.Sum256([]byte(payload))
	return []byte(payload + "sum " + hex.EncodeToString(sum[:]) + "\n")
}

// TestSaveLoad pins the file round trip plus the atomic-rewrite property:
// a Save over an existing checkpoint either fully replaces it or (on error)
// leaves it untouched.
func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	want := sampleSnapshot()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Load diverged:\n got %+v\nwant %+v", got, want)
	}

	// Overwrite with a later watermark; the file must be fully replaced.
	want.NextChunk = 42
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextChunk != 42 {
		t.Fatalf("overwrite lost the new watermark: %d", got.NextChunk)
	}
}

// TestLoadMissingFile pins the resume-without-checkpoint error path.
func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.ckpt"))
	if err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

// TestLoadTornFileRejected simulates the pre-atomic-write failure mode: a
// file torn mid-write (as a crashing direct os.Create writer would leave)
// must be rejected by the checksum, not half-resumed.
func TestLoadTornFileRejected(t *testing.T) {
	var b bytes.Buffer
	if err := Encode(&b, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	if err := os.WriteFile(path, b.Bytes()[:b.Len()*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("torn checkpoint accepted")
	}
}
