package checkpoint

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

// FuzzCheckpointDecode throws arbitrary bytes at Decode. The contract under
// fuzz: never panic, never return a snapshot alongside an error, and any
// accepted input must re-encode/re-decode to the same snapshot (so a resume
// can never start from state the file does not actually pin). Corrupt,
// truncated and digest-mismatched inputs from the seed corpus are the
// "interesting" starting points.
func FuzzCheckpointDecode(f *testing.F) {
	// Valid files of increasing richness.
	for _, s := range []*Snapshot{
		{
			ConfigDigest: strings.Repeat("0", 64),
			Chunks:       0, NextChunk: 0,
			Overall: stats.AggregatorState{},
			Keyed:   map[string]stats.AggregatorState{},
		},
		sampleSnapshot(),
	} {
		var b bytes.Buffer
		if err := Encode(&b, s); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
		// Truncations and single-byte corruptions of valid files.
		f.Add(b.Bytes()[:b.Len()/2])
		f.Add(b.Bytes()[:b.Len()-1])
		f.Add(flip(b.Bytes(), b.Len()/4))
	}
	// Structural near-misses.
	f.Add([]byte("volatile-checkpoint v1\n"))
	f.Add([]byte("volatile-checkpoint v2\nconfig " + strings.Repeat("0", 64) + "\n"))
	f.Add([]byte("sum 0000\n"))
	f.Add([]byte("agg \"overall\" 1 1\nh \"emct\" zzzz 1 1\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			if snap != nil {
				t.Fatalf("Decode returned snapshot %+v alongside error %v", snap, err)
			}
			return
		}
		// Accepted input: the snapshot must survive a re-encode round trip,
		// i.e. Decode accepted only states Encode can actually pin.
		var b bytes.Buffer
		if err := Encode(&b, snap); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		again, err := Decode(b.Bytes())
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v\nfile:\n%s", err, b.String())
		}
		if !reflect.DeepEqual(snap, again) {
			t.Fatalf("accepted snapshot not stable under re-encode:\nfirst:  %+v\nsecond: %+v", snap, again)
		}
	})
}
