// Package checkpoint persists the running state of a sharded sweep so a
// killed process can resume instead of restarting from zero.
//
// A Snapshot captures everything the sweep committer owns at a chunk
// boundary: the canonical config digest (so a checkpoint can never be
// resumed into a different sweep), the committed-chunk watermark, and the
// exact running state of every destination aggregator — float sums as raw
// IEEE-754 bits, so a resumed sweep reproduces an uninterrupted run
// bit for bit.
//
// The on-disk format is a line-oriented text document ending in a SHA-256
// checksum over everything before it. Save writes it atomically
// (write-temp-then-rename via internal/atomicio); Decode rejects any file
// whose checksum does not match — a truncated, torn or hand-edited
// checkpoint fails loudly instead of resuming a half-state.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/atomicio"
	"repro/internal/stats"
)

// magic is the format header; bump the version when the layout changes so
// old readers reject new files (and vice versa) instead of misparsing them.
const magic = "volatile-checkpoint v1"

// maxAccumPrealloc caps slice preallocation from header-declared counts, so
// a corrupt count cannot force a huge allocation before parsing fails.
const maxAccumPrealloc = 4096

// Snapshot is the durable state of a sweep at a committed-chunk boundary.
type Snapshot struct {
	// ConfigDigest is the canonical SHA-256 (hex) of the sweep config that
	// produced this state. Resume must refuse a mismatched digest.
	ConfigDigest string
	// Chunks is the sweep's total chunk count (cells × scenarios).
	Chunks int
	// NextChunk is the watermark: chunks [0, NextChunk) are merged into the
	// aggregates below; resume re-runs chunks [NextChunk, Chunks).
	NextChunk int
	// Censored is the committed censored-run count.
	Censored int
	// Failed is the committed count of instances dropped after their retry
	// budget was exhausted (record-and-continue failure policy).
	Failed int
	// Overall is the running state of the sweep-wide aggregator.
	Overall stats.AggregatorState
	// Keyed holds the per-wmin and per-cell aggregators under opaque string
	// keys chosen by the sweep layer (e.g. "wmin 3", "cell 20 5 10").
	Keyed map[string]stats.AggregatorState
}

// Encode writes the snapshot in the durable format, checksum line included.
func Encode(w io.Writer, s *Snapshot) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n", magic)
	fmt.Fprintf(&b, "config %s\n", s.ConfigDigest)
	fmt.Fprintf(&b, "chunks %d\n", s.Chunks)
	fmt.Fprintf(&b, "next %d\n", s.NextChunk)
	fmt.Fprintf(&b, "censored %d\n", s.Censored)
	fmt.Fprintf(&b, "failed %d\n", s.Failed)
	writeAgg(&b, "overall", s.Overall)
	keys := make([]string, 0, len(s.Keyed))
	for k := range s.Keyed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeAgg(&b, k, s.Keyed[k])
	}
	sum := sha256.Sum256(b.Bytes())
	fmt.Fprintf(&b, "sum %s\n", hex.EncodeToString(sum[:]))
	_, err := w.Write(b.Bytes())
	return err
}

func writeAgg(b *bytes.Buffer, key string, st stats.AggregatorState) {
	fmt.Fprintf(b, "agg %q %d %d\n", key, st.Instances, len(st.Accums))
	for _, a := range st.Accums {
		fmt.Fprintf(b, "h %q %016x %d %d\n", a.Name, a.SumBits, a.Count, a.Wins)
	}
}

// Decode parses and validates a snapshot. Any structural damage — missing
// or mismatched checksum, unknown version, out-of-range counters, duplicate
// keys, short aggregate blocks — is an error; Decode never returns a
// partially filled snapshot alongside a nil error.
func Decode(data []byte) (*Snapshot, error) {
	payload, err := verifyChecksum(data)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSuffix(string(payload), "\n"), "\n")
	p := &parser{lines: lines}

	if line, err := p.next(); err != nil {
		return nil, err
	} else if line != magic {
		return nil, fmt.Errorf("checkpoint: unsupported header %q (want %q)", line, magic)
	}
	s := &Snapshot{Keyed: make(map[string]stats.AggregatorState)}
	if s.ConfigDigest, err = p.stringField("config"); err != nil {
		return nil, err
	}
	if !isHexDigest(s.ConfigDigest) {
		return nil, fmt.Errorf("checkpoint: config digest %q is not a sha256 hex digest", s.ConfigDigest)
	}
	if s.Chunks, err = p.intField("chunks"); err != nil {
		return nil, err
	}
	if s.NextChunk, err = p.intField("next"); err != nil {
		return nil, err
	}
	if s.Censored, err = p.intField("censored"); err != nil {
		return nil, err
	}
	if s.Failed, err = p.intField("failed"); err != nil {
		return nil, err
	}
	if s.Chunks < 0 || s.NextChunk < 0 || s.NextChunk > s.Chunks {
		return nil, fmt.Errorf("checkpoint: watermark %d out of range for %d chunks", s.NextChunk, s.Chunks)
	}
	if s.Censored < 0 || s.Failed < 0 {
		return nil, fmt.Errorf("checkpoint: negative counters (censored %d, failed %d)", s.Censored, s.Failed)
	}

	sawOverall := false
	for !p.done() {
		key, st, err := p.aggBlock()
		if err != nil {
			return nil, err
		}
		if key == "overall" {
			if sawOverall {
				return nil, fmt.Errorf("checkpoint: duplicate overall aggregate")
			}
			sawOverall = true
			s.Overall = st
			continue
		}
		if _, dup := s.Keyed[key]; dup {
			return nil, fmt.Errorf("checkpoint: duplicate aggregate key %q", key)
		}
		s.Keyed[key] = st
	}
	if !sawOverall {
		return nil, fmt.Errorf("checkpoint: missing overall aggregate")
	}
	return s, nil
}

// verifyChecksum splits off the trailing "sum <hex>" line and checks it
// against the SHA-256 of everything before it, returning the payload.
func verifyChecksum(data []byte) ([]byte, error) {
	if len(data) == 0 || data[len(data)-1] != '\n' {
		return nil, fmt.Errorf("checkpoint: truncated file (no trailing newline)")
	}
	idx := bytes.LastIndexByte(data[:len(data)-1], '\n')
	last := string(data[idx+1 : len(data)-1]) // idx is -1 for a one-line file; slice still works
	want, ok := strings.CutPrefix(last, "sum ")
	if !ok {
		return nil, fmt.Errorf("checkpoint: truncated file (missing checksum line)")
	}
	payload := data[:idx+1]
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (file corrupt or torn)")
	}
	return payload, nil
}

func isHexDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// parser walks the payload lines with one-token-lookahead error reporting.
type parser struct {
	lines []string
	pos   int
}

func (p *parser) done() bool { return p.pos >= len(p.lines) }

func (p *parser) next() (string, error) {
	if p.done() {
		return "", fmt.Errorf("checkpoint: unexpected end of file at line %d", p.pos+1)
	}
	line := p.lines[p.pos]
	p.pos++
	return line, nil
}

// stringField parses "<key> <value>" where value extends to end of line.
func (p *parser) stringField(key string) (string, error) {
	line, err := p.next()
	if err != nil {
		return "", err
	}
	v, ok := strings.CutPrefix(line, key+" ")
	if !ok {
		return "", fmt.Errorf("checkpoint: line %d: want %q field, got %q", p.pos, key, line)
	}
	return v, nil
}

func (p *parser) intField(key string) (int, error) {
	v, err := p.stringField(key)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: line %d: bad %s count %q", p.pos, key, v)
	}
	return n, nil
}

// aggBlock parses one `agg "<key>" <instances> <naccums>` header and its
// accumulator lines.
func (p *parser) aggBlock() (string, stats.AggregatorState, error) {
	var st stats.AggregatorState
	line, err := p.next()
	if err != nil {
		return "", st, err
	}
	rest, ok := strings.CutPrefix(line, "agg ")
	if !ok {
		return "", st, fmt.Errorf("checkpoint: line %d: want aggregate block, got %q", p.pos, line)
	}
	key, rest, err := cutQuoted(rest)
	if err != nil {
		return "", st, fmt.Errorf("checkpoint: line %d: %v", p.pos, err)
	}
	var n int
	if _, err := fmt.Sscanf(rest, "%d %d", &st.Instances, &n); err != nil {
		return "", st, fmt.Errorf("checkpoint: line %d: bad aggregate header %q", p.pos, line)
	}
	if st.Instances < 0 || n < 0 {
		return "", st, fmt.Errorf("checkpoint: line %d: negative aggregate counts", p.pos)
	}
	st.Accums = make([]stats.AccumState, 0, min(n, maxAccumPrealloc))
	var prev string
	for i := 0; i < n; i++ {
		line, err := p.next()
		if err != nil {
			return "", st, err
		}
		rest, ok := strings.CutPrefix(line, "h ")
		if !ok {
			return "", st, fmt.Errorf("checkpoint: line %d: want accumulator line, got %q", p.pos, line)
		}
		name, rest, err := cutQuoted(rest)
		if err != nil {
			return "", st, fmt.Errorf("checkpoint: line %d: %v", p.pos, err)
		}
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return "", st, fmt.Errorf("checkpoint: line %d: bad accumulator line %q", p.pos, line)
		}
		bits, err := strconv.ParseUint(fields[0], 16, 64)
		if err != nil {
			return "", st, fmt.Errorf("checkpoint: line %d: bad sum bits %q", p.pos, fields[0])
		}
		count, err := strconv.Atoi(fields[1])
		if err != nil || count < 0 {
			return "", st, fmt.Errorf("checkpoint: line %d: bad sample count %q", p.pos, fields[1])
		}
		wins, err := strconv.Atoi(fields[2])
		if err != nil || wins < 0 {
			return "", st, fmt.Errorf("checkpoint: line %d: bad win count %q", p.pos, fields[2])
		}
		if i > 0 && name <= prev {
			return "", st, fmt.Errorf("checkpoint: line %d: accumulators not strictly sorted (%q after %q)", p.pos, name, prev)
		}
		prev = name
		st.Accums = append(st.Accums, stats.AccumState{Name: name, SumBits: bits, Count: count, Wins: wins})
	}
	return key, st, nil
}

// cutQuoted splits a Go-quoted string off the front of s, returning the
// unquoted value and the remainder (leading space trimmed).
func cutQuoted(s string) (string, string, error) {
	q, err := strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", fmt.Errorf("bad quoted name in %q", s)
	}
	v, err := strconv.Unquote(q)
	if err != nil {
		return "", "", fmt.Errorf("bad quoted name in %q", s)
	}
	return v, strings.TrimPrefix(s[len(q):], " "), nil
}

// Save writes the snapshot to path atomically: a crash during Save leaves
// either the previous checkpoint or the new one, never a torn file.
func Save(path string, s *Snapshot) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return Encode(w, s)
	})
}

// Load reads and validates the snapshot at path.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Decode(data)
}
