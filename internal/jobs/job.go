package jobs

import (
	"sync"
	"time"

	"repro/internal/sweepreq"
)

// Job is one admitted sweep: the config digest is its identity, the event
// log is its history. A Job outlives its execution — done/failed/stopped
// jobs stay in the table so late subscribers replay the full stream.
type Job struct {
	// Digest is the sweep's config digest and the job ID.
	Digest string
	// Exp names the experiment.
	Exp string

	built *sweepreq.Built

	mu           sync.Mutex
	cond         *sync.Cond
	state        State
	events       []Event
	stop         chan struct{}
	stopped      bool // requestStop is idempotent
	subs         int  // live Subscribe pumps; results-TTL eviction skips jobs with any
	done, total  int
	result       *CachedResult
	errText      string
	resultDigest string
	submittedAt  time.Time
}

func newJob(exp string, built *sweepreq.Built) *Job {
	j := &Job{
		Digest:      built.Digest,
		Exp:         exp,
		built:       built,
		state:       StateQueued,
		stop:        make(chan struct{}),
		total:       built.Instances,
		submittedAt: time.Now().UTC(),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// State returns the current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status snapshots the job for the list/get endpoints.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:           j.Digest,
		Exp:          j.Exp,
		State:        j.state,
		Done:         j.done,
		Total:        j.total,
		ResultDigest: j.resultDigest,
		Error:        j.errText,
		SubmittedAt:  j.submittedAt,
	}
}

// Result returns the in-memory cached result, if the job is done.
func (j *Job) Result() (*CachedResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.result != nil
}

// stopChan returns the current stop channel (a restart replaces it).
func (j *Job) stopChan() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stop
}

// requestStop closes the stop channel once; the sweep commits a final
// checkpoint at its next chunk boundary and returns *InterruptedError.
func (j *Job) requestStop() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.stopped && !j.state.terminal() {
		j.stopped = true
		close(j.stop)
	}
}

// appendEvent stamps a sequence number, appends and wakes subscribers.
func (j *Job) appendEvent(ev Event) {
	j.mu.Lock()
	j.appendEventLocked(ev)
	j.mu.Unlock()
}

func (j *Job) appendEventLocked(ev Event) {
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	j.cond.Broadcast()
}

// setState transitions the state and logs the transition event.
func (j *Job) setState(st State, ev Event) {
	j.mu.Lock()
	j.setStateLocked(st, ev)
	j.mu.Unlock()
}

func (j *Job) setStateLocked(st State, ev Event) {
	j.state = st
	if st == StateQueued {
		// restart: the previous terminal outcome no longer applies
		j.stopped = false
		j.errText = ""
	}
	j.appendEventLocked(ev)
}

// progress records instance progress (throttled by the caller).
func (j *Job) progress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.appendEventLocked(Event{Type: "progress", Done: done, Total: total})
	j.mu.Unlock()
}

// finish records a terminal state; the event closes subscriber streams.
func (j *Job) finish(st State, ev Event) {
	j.mu.Lock()
	if ev.Error != "" {
		j.errText = ev.Error
	}
	if ev.ResultDigest != "" {
		j.resultDigest = ev.ResultDigest
	}
	j.setStateLocked(st, ev)
	j.mu.Unlock()
}

// setResult installs the completed result before the done event fires.
func (j *Job) setResult(c *CachedResult) {
	j.mu.Lock()
	j.result = c
	j.resultDigest = c.ResultDigest
	j.mu.Unlock()
}

// completeFromCache short-circuits a job whose result is already cached:
// it is born done, with a replayable queued→done history.
func (j *Job) completeFromCache(c *CachedResult) {
	j.mu.Lock()
	j.result = c
	j.resultDigest = c.ResultDigest
	j.done, j.total = c.Instances, c.Instances
	j.appendEventLocked(Event{Type: "queued"})
	j.state = StateDone
	j.appendEventLocked(Event{
		Type: "done", Done: c.Instances, Total: c.Instances,
		Instances: c.Instances, ResultDigest: c.ResultDigest,
	})
	j.mu.Unlock()
}

// hasSubscribers reports whether any Subscribe pump is still attached.
func (j *Job) hasSubscribers() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.subs > 0
}

// Subscribe replays the job's event log from the start and then follows it
// live; the channel closes after the terminal event (or on cancel). Safe to
// call at any point in the job's life, including after completion. While a
// subscriber is attached the job is pinned against results-TTL eviction.
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 16)
	cancelCh := make(chan struct{})
	var cancelOnce sync.Once
	cancel := func() {
		cancelOnce.Do(func() {
			close(cancelCh)
			// Wake the pump if it is parked in cond.Wait.
			j.mu.Lock()
			j.cond.Broadcast()
			j.mu.Unlock()
		})
	}
	j.mu.Lock()
	j.subs++
	j.mu.Unlock()
	go func() {
		// Deferred LIFO: the subscriber count drops before the channel
		// closes, so a drained-to-close stream implies the pin is released.
		defer close(ch)
		defer func() {
			j.mu.Lock()
			j.subs--
			j.mu.Unlock()
		}()
		next := 0
		for {
			j.mu.Lock()
			for next >= len(j.events) && !j.state.terminal() && !isClosed(cancelCh) {
				j.cond.Wait()
			}
			batch := append([]Event(nil), j.events[next:]...)
			next += len(batch)
			terminal := j.state.terminal() && next == len(j.events)
			j.mu.Unlock()
			for _, ev := range batch {
				select {
				case ch <- ev:
				case <-cancelCh:
					return
				}
			}
			if terminal || isClosed(cancelCh) {
				return
			}
		}
	}()
	return ch, cancel
}

func isClosed(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}
