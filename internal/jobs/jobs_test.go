package jobs

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/sweepreq"
)

// fastReq is the cheapest real sweep (1 cell × 1 scenario × 1 trial).
func fastReq() sweepreq.Request {
	return sweepreq.Request{Exp: "table3x5", Scenarios: 1, Trials: 1, Seed: 11}
}

// slowReq has enough chunk boundaries (10) to stop mid-flight reliably.
func slowReq() sweepreq.Request {
	return sweepreq.Request{Exp: "table3x5", Scenarios: 10, Trials: 4, Seed: 11}
}

func newTestScheduler(t *testing.T, dir string, partial time.Duration) *Scheduler {
	t.Helper()
	s, err := New(Options{DataDir: dir, CheckpointEvery: 1, PartialInterval: partial})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// drain reads events until the stream closes, returning them all.
func drain(t *testing.T, j *Job) []Event {
	t.Helper()
	ch, cancel := j.Subscribe()
	defer cancel()
	var evs []Event
	deadline := time.After(2 * time.Minute)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return evs
			}
			evs = append(evs, ev)
		case <-deadline:
			t.Fatalf("job %s did not reach a terminal state (events so far: %+v)", j.Digest, evs)
		}
	}
}

func lastType(evs []Event) string {
	if len(evs) == 0 {
		return ""
	}
	return evs[len(evs)-1].Type
}

// TestSubmitRunsToDoneAndCaches pins the basic lifecycle: queued → running
// → progress → done, a result cached on disk under the config digest, and
// the checkpoint cleaned up after success.
func TestSubmitRunsToDoneAndCaches(t *testing.T) {
	dir := t.TempDir()
	s := newTestScheduler(t, dir, -1)
	defer s.Stop()

	j, started, err := s.Submit(fastReq())
	if err != nil {
		t.Fatal(err)
	}
	if !started {
		t.Fatal("first submission did not start a sweep")
	}
	evs := drain(t, j)
	if lastType(evs) != "done" {
		t.Fatalf("terminal event %q, want done (events: %+v)", lastType(evs), evs)
	}
	if j.State() != StateDone {
		t.Fatalf("state %s, want done", j.State())
	}
	types := map[string]bool{}
	for _, ev := range evs {
		types[ev.Type] = true
	}
	for _, want := range []string{"queued", "running", "progress", "done"} {
		if !types[want] {
			t.Fatalf("event log missing %q: %+v", want, evs)
		}
	}

	res, err := s.Result(j.Digest)
	if err != nil {
		t.Fatalf("no cached result after done: %v", err)
	}
	if res.ConfigDigest != j.Digest || res.ResultDigest == "" || res.Format == "" {
		t.Fatalf("cached result incomplete: %+v", res)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoints", j.Digest+".ckpt")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survived a successful sweep (err=%v)", err)
	}
}

// TestCacheHitDoesNoSweepWork pins the content-addressed cache: the second
// identical submission joins as done without launching anything, in the
// same process and — via a fresh scheduler over the same data dir — across
// a restart.
func TestCacheHitDoesNoSweepWork(t *testing.T) {
	dir := t.TempDir()
	s := newTestScheduler(t, dir, -1)
	j1, _, err := s.Submit(fastReq())
	if err != nil {
		t.Fatal(err)
	}
	drain(t, j1)
	if n := s.SweepsStarted(); n != 1 {
		t.Fatalf("SweepsStarted = %d after first run, want 1", n)
	}

	j2, started, err := s.Submit(fastReq())
	if err != nil {
		t.Fatal(err)
	}
	if started || j2 != j1 {
		t.Fatalf("second submission started=%v sameJob=%v, want false/true", started, j2 == j1)
	}
	if n := s.SweepsStarted(); n != 1 {
		t.Fatalf("SweepsStarted = %d after cache hit, want 1", n)
	}
	s.Stop()

	// A fresh scheduler over the same data dir serves it from disk.
	s2 := newTestScheduler(t, dir, -1)
	defer s2.Stop()
	j3, started, err := s2.Submit(fastReq())
	if err != nil {
		t.Fatal(err)
	}
	if started || j3.State() != StateDone {
		t.Fatalf("restarted scheduler: started=%v state=%s, want cache hit", started, j3.State())
	}
	evs := drain(t, j3)
	if lastType(evs) != "done" {
		t.Fatalf("cache-hit job stream ends with %q, want done", lastType(evs))
	}
	if n := s2.SweepsStarted(); n != 0 {
		t.Fatalf("restarted scheduler ran %d sweeps for a cached result", n)
	}
}

// TestStopResumeBitIdentical is the acceptance property at scheduler level:
// a job stopped mid-flight, with its scheduler shut down, resumes on a
// fresh scheduler over the same data dir and lands on the digest of an
// uninterrupted run.
func TestStopResumeBitIdentical(t *testing.T) {
	// Uninterrupted reference, no scheduler involved.
	built, err := sweepreq.Build(slowReq())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := built.Run(sweepreq.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Digest()

	dir := t.TempDir()
	s := newTestScheduler(t, dir, -1)
	j, _, err := s.Submit(slowReq())
	if err != nil {
		t.Fatal(err)
	}
	// Stop at the first progress event; the committer notices at the next
	// chunk boundary and persists the committed prefix.
	ch, cancel := j.Subscribe()
	for ev := range ch {
		if ev.Type == "progress" {
			s.StopJob(j.Digest)
			break
		}
	}
	cancel()
	evs := drain(t, j)
	if lastType(evs) != "stopped" {
		t.Fatalf("terminal event %q, want stopped (events: %+v)", lastType(evs), evs)
	}
	stopEv := evs[len(evs)-1]
	if stopEv.CommittedChunks <= 0 || stopEv.CommittedChunks >= stopEv.Chunks {
		t.Fatalf("stopped event committed %d/%d, want a strict prefix", stopEv.CommittedChunks, stopEv.Chunks)
	}
	s.Stop()

	s2 := newTestScheduler(t, dir, -1)
	defer s2.Stop()
	j2, started, err := s2.Submit(slowReq())
	if err != nil {
		t.Fatal(err)
	}
	if !started {
		t.Fatal("resubmission after stop did not restart the sweep")
	}
	if lastType(drain(t, j2)) != "done" {
		t.Fatalf("resumed job ended %q, want done", j2.State())
	}
	res, err := s2.Result(j2.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultDigest != want {
		t.Fatalf("resumed result digest %s != uninterrupted %s", res.ResultDigest, want)
	}
}

// TestBootResumeInterruptedBitIdentical is the server-restart acceptance
// property: a job interrupted by scheduler shutdown is picked back up at
// the next boot by ResumeInterrupted alone — no client resubmits anything —
// and completes to the digest of an uninterrupted run.
func TestBootResumeInterruptedBitIdentical(t *testing.T) {
	built, err := sweepreq.Build(slowReq())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := built.Run(sweepreq.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Digest()

	dir := t.TempDir()
	s := newTestScheduler(t, dir, -1)
	j, _, err := s.Submit(slowReq())
	if err != nil {
		t.Fatal(err)
	}
	// Kill the server once the sweep is mid-flight: Stop interrupts the job
	// at its next chunk boundary, exactly as SIGTERM does in volaserved.
	ch, cancel := j.Subscribe()
	for ev := range ch {
		if ev.Type == "progress" {
			break
		}
	}
	cancel()
	s.Stop()
	if st := j.State(); st != StateStopped {
		t.Fatalf("job state after shutdown %s, want stopped", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "requests", j.Digest+".json")); err != nil {
		t.Fatalf("interrupted job left no persisted request: %v", err)
	}

	// Reboot: the boot scan alone must resubmit and finish the job.
	s2 := newTestScheduler(t, dir, -1)
	defer s2.Stop()
	n, err := s2.ResumeInterrupted()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ResumeInterrupted resubmitted %d jobs, want 1", n)
	}
	j2, ok := s2.Get(j.Digest)
	if !ok {
		t.Fatal("resumed job not in the table")
	}
	if lastType(drain(t, j2)) != "done" {
		t.Fatalf("boot-resumed job ended %q, want done", j2.State())
	}
	res, err := s2.Result(j.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultDigest != want {
		t.Fatalf("boot-resumed digest %s != uninterrupted %s", res.ResultDigest, want)
	}
	// Success consumed the stub: the next boot has nothing to resume.
	if _, err := os.Stat(filepath.Join(dir, "requests", j.Digest+".json")); !os.IsNotExist(err) {
		t.Fatalf("request stub survived a completed job (err=%v)", err)
	}
	s2.Stop()
	s3 := newTestScheduler(t, dir, -1)
	defer s3.Stop()
	if n, err := s3.ResumeInterrupted(); err != nil || n != 0 {
		t.Fatalf("clean boot resumed %d jobs (err=%v), want 0", n, err)
	}
}

// TestResultsTTLEviction drives the eviction policy with a fake clock:
// fresh results stay, a live subscriber pins an expired one, and once the
// last stream detaches both the cache file and the terminal job-table
// entry go — after which a resubmission really re-runs the sweep.
func TestResultsTTLEviction(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	s, err := New(Options{
		DataDir: dir, CheckpointEvery: 1, PartialInterval: -1,
		ResultsTTL: time.Hour, Now: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	j, _, err := s.Submit(fastReq())
	if err != nil {
		t.Fatal(err)
	}
	drain(t, j)
	if n := s.evictExpired(); n != 0 {
		t.Fatalf("fresh result evicted (%d)", n)
	}

	// Age the result past the TTL. CompletedAt is wall-clock, so move the
	// fake clock relative to the real completion time.
	mu.Lock()
	now = time.Now().Add(2 * time.Hour)
	mu.Unlock()

	ch, _ := j.Subscribe()
	if n := s.evictExpired(); n != 0 {
		t.Fatalf("evicted %d results out from under a live subscriber", n)
	}
	if _, ok := s.Get(j.Digest); !ok {
		t.Fatal("subscribed job vanished from the table")
	}
	for range ch {
		// Drain to close: the stream ends only after the subscriber pin is
		// released (deferred LIFO in Subscribe).
	}
	if n := s.evictExpired(); n != 1 {
		t.Fatalf("evicted %d results, want 1", n)
	}
	if _, ok := s.Get(j.Digest); ok {
		t.Fatal("evicted job still in the table")
	}
	if _, err := os.Stat(filepath.Join(dir, "results", j.Digest+".json")); !os.IsNotExist(err) {
		t.Fatalf("evicted result file still on disk (err=%v)", err)
	}
	j2, started, err := s.Submit(fastReq())
	if err != nil {
		t.Fatal(err)
	}
	if !started {
		t.Fatal("post-eviction submission was served from a cache that no longer exists")
	}
	if lastType(drain(t, j2)) != "done" {
		t.Fatalf("post-eviction rerun ended %q, want done", j2.State())
	}
}

// TestResultsTTLEvictsAtBoot pins the construction-time GC: a scheduler
// booted over a data dir holding only expired results clears them before
// serving, so the first submission re-runs rather than serving stale data
// past its retention.
func TestResultsTTLEvictsAtBoot(t *testing.T) {
	dir := t.TempDir()
	s := newTestScheduler(t, dir, -1)
	j, _, err := s.Submit(fastReq())
	if err != nil {
		t.Fatal(err)
	}
	drain(t, j)
	s.Stop()

	s2, err := New(Options{
		DataDir: dir, CheckpointEvery: 1, PartialInterval: -1,
		ResultsTTL: time.Hour,
		Now:        func() time.Time { return time.Now().Add(48 * time.Hour) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	if _, err := os.Stat(filepath.Join(dir, "results", j.Digest+".json")); !os.IsNotExist(err) {
		t.Fatalf("boot GC left the expired result behind (err=%v)", err)
	}
	if _, started, err := s2.Submit(fastReq()); err != nil || !started {
		t.Fatalf("submission after boot GC: started=%v err=%v, want a fresh run", started, err)
	}
}

// TestPartialEventsStreamCommittedAggregates pins the partial stream: with
// a fast re-read interval, a running job emits partial events whose chunk
// watermark advances and whose Top rows carry real aggregates.
func TestPartialEventsStreamCommittedAggregates(t *testing.T) {
	s := newTestScheduler(t, t.TempDir(), 20*time.Millisecond)
	defer s.Stop()
	j, _, err := s.Submit(slowReq())
	if err != nil {
		t.Fatal(err)
	}
	evs := drain(t, j)
	if lastType(evs) != "done" {
		t.Fatalf("terminal event %q, want done", lastType(evs))
	}
	var partials []Event
	for _, ev := range evs {
		if ev.Type == "partial" {
			partials = append(partials, ev)
		}
	}
	if len(partials) == 0 {
		t.Fatalf("no partial events at a 20ms interval (events: %+v)", evs)
	}
	last := 0
	for _, p := range partials {
		if p.CommittedChunks <= last-1 || p.Chunks == 0 || p.Instances == 0 || len(p.Top) == 0 {
			t.Fatalf("malformed partial event: %+v", p)
		}
		if p.CommittedChunks < last {
			t.Fatalf("partial watermark went backwards: %+v", partials)
		}
		last = p.CommittedChunks
	}
}

// TestSubmitRejectsInvalidAndNonSweep pins that validation errors surface
// at submission, not as failed jobs.
func TestSubmitRejectsInvalidAndNonSweep(t *testing.T) {
	s := newTestScheduler(t, t.TempDir(), -1)
	defer s.Stop()
	if _, _, err := s.Submit(sweepreq.Request{Exp: "ablation"}); err == nil {
		t.Fatal("non-sweep experiment was admitted")
	}
	if _, _, err := s.Submit(sweepreq.Request{Exp: "table2", Scenarios: -1}); err == nil {
		t.Fatal("invalid request was admitted")
	}
	if n := s.SweepsStarted(); n != 0 {
		t.Fatalf("rejected submissions started %d sweeps", n)
	}
}

// TestSchedulerStopInterruptsQueuedAndRunning pins shutdown: Stop drains
// every job into a terminal state and later submissions are refused.
func TestSchedulerStopInterruptsQueuedAndRunning(t *testing.T) {
	s := newTestScheduler(t, t.TempDir(), -1)
	// MaxConcurrent is 1, so the second job is queued behind the first.
	j1, _, err := s.Submit(slowReq())
	if err != nil {
		t.Fatal(err)
	}
	req2 := slowReq()
	req2.Seed = 99
	j2, _, err := s.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	// Let the first job make some progress before shutdown.
	ch, cancel := j1.Subscribe()
	for ev := range ch {
		if ev.Type == "progress" {
			break
		}
	}
	cancel()
	s.Stop()
	for _, j := range []*Job{j1, j2} {
		if st := j.State(); !st.terminal() {
			t.Fatalf("job %s left in state %s after Stop", j.Digest, st)
		}
	}
	if _, _, err := s.Submit(fastReq()); err != ErrShuttingDown {
		t.Fatalf("post-Stop submission returned %v, want ErrShuttingDown", err)
	}
}
