// Package jobs is the sweep-as-a-service scheduler behind cmd/volaserved: a
// bounded-concurrency job table keyed by config digest, with a
// content-addressed result cache, per-job event streams, and crash-safe
// resume. A job IS its sweep's content address — submitting the same
// request twice joins the running job or returns the cached result, and a
// server restarted mid-job picks the sweep up from its checkpoint when the
// request is resubmitted, landing on a bit-identical digest.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	volatile "repro"
	"repro/internal/atomicio"
	"repro/internal/sweepreq"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: admitted, waiting for a concurrency slot.
	StateQueued State = "queued"
	// StateRunning: the sweep is executing.
	StateRunning State = "running"
	// StateDone: completed; the result is cached under the config digest.
	StateDone State = "done"
	// StateFailed: the sweep returned an error. Resubmitting restarts it
	// (resuming from its checkpoint if one was written).
	StateFailed State = "failed"
	// StateStopped: interrupted by a stop request or server shutdown; the
	// checkpoint holds the committed prefix. Resubmitting resumes it.
	StateStopped State = "stopped"
)

// terminal reports whether the state ends the event stream.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateStopped
}

// Event is one entry of a job's append-only event log. Type is one of
// queued, running, progress, partial, done, failed, stopped; the other
// fields are populated per type.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`
	// Done/Total count sweep instances (progress events and later).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// CommittedChunks/Chunks and Top come from the persisted checkpoint
	// (partial events): the aggregates committed so far, bit-exactly.
	CommittedChunks int                 `json:"committed_chunks,omitempty"`
	Chunks          int                 `json:"chunks,omitempty"`
	Instances       int                 `json:"instances,omitempty"`
	Top             []volatile.TableRow `json:"top,omitempty"`
	// ResultDigest is set on done events.
	ResultDigest string `json:"result_digest,omitempty"`
	// Error is set on failed events.
	Error string `json:"error,omitempty"`
}

// CachedResult is the durable, JSON-serialized outcome of a completed job —
// what GET /jobs/{id}/result returns and what DataDir/results/<digest>.json
// stores. Format is the canonical full-precision rendering whose SHA-256 is
// ResultDigest, so a client can re-verify the digest offline.
type CachedResult struct {
	ConfigDigest    string              `json:"config_digest"`
	ResultDigest    string              `json:"result_digest"`
	Exp             string              `json:"exp"`
	Instances       int                 `json:"instances"`
	Censored        int                 `json:"censored"`
	FailedInstances int                 `json:"failed_instances"`
	Overall         []volatile.TableRow `json:"overall"`
	Format          string              `json:"format"`
	Warnings        []string            `json:"warnings,omitempty"`
	CompletedAt     time.Time           `json:"completed_at"`
}

// Status is the JSON view of a job for list/get endpoints.
type Status struct {
	ID           string    `json:"id"` // the config digest
	Exp          string    `json:"exp"`
	State        State     `json:"state"`
	Done         int       `json:"done"`
	Total        int       `json:"total"`
	ResultDigest string    `json:"result_digest,omitempty"`
	Error        string    `json:"error,omitempty"`
	SubmittedAt  time.Time `json:"submitted_at"`
}

// Options configures a Scheduler.
type Options struct {
	// DataDir holds checkpoints/ and results/. Required.
	DataDir string
	// MaxConcurrent bounds simultaneously running sweeps (default 1: sweeps
	// are already internally parallel across workers).
	MaxConcurrent int
	// CheckpointEvery is the chunk cadence passed to the sweep (0 = library
	// default).
	CheckpointEvery int
	// PartialInterval is how often a running job's checkpoint is re-read to
	// emit partial-aggregate events (default 2s; <0 disables).
	PartialInterval time.Duration
	// ResultsTTL evicts cached results (and their terminal job-table
	// entries) older than this, measured from CachedResult.CompletedAt.
	// 0 keeps results forever. Eviction runs at construction and on a
	// timer, and never touches a job with a live subscriber — a stream
	// replaying a done job keeps its result serveable until it detaches.
	ResultsTTL time.Duration
	// Now injects the eviction clock; nil means time.Now. Tests drive
	// eviction with a fake clock through this.
	Now func() time.Time
}

// ErrShuttingDown rejects submissions after Stop has begun.
var ErrShuttingDown = errors.New("jobs: scheduler is shutting down")

// Scheduler owns the job table. All methods are safe for concurrent use.
type Scheduler struct {
	opts Options

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool

	sem chan struct{}
	wg  sync.WaitGroup

	// gcStop ends the results-TTL eviction loop; gcWG waits for it.
	gcStop chan struct{}
	gcWG   sync.WaitGroup

	sweepsStarted atomic.Int64
}

// New creates a Scheduler and its on-disk layout.
func New(opts Options) (*Scheduler, error) {
	if opts.DataDir == "" {
		return nil, errors.New("jobs: Options.DataDir is required")
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 1
	}
	if opts.PartialInterval == 0 {
		opts.PartialInterval = 2 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	for _, d := range []string{opts.DataDir, filepath.Join(opts.DataDir, "checkpoints"), filepath.Join(opts.DataDir, "results"), filepath.Join(opts.DataDir, "requests")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: %w", err)
		}
	}
	s := &Scheduler{
		opts:   opts,
		jobs:   make(map[string]*Job),
		sem:    make(chan struct{}, opts.MaxConcurrent),
		gcStop: make(chan struct{}),
	}
	if opts.ResultsTTL > 0 {
		s.evictExpired()
		s.gcWG.Add(1)
		go s.gcLoop()
	}
	return s, nil
}

// gcLoop re-runs results-TTL eviction on a timer until Stop.
func (s *Scheduler) gcLoop() {
	defer s.gcWG.Done()
	interval := s.opts.ResultsTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.gcStop:
			return
		case <-t.C:
			s.evictExpired()
		}
	}
}

// evictExpired removes cached results older than ResultsTTL from the
// results dir, along with their terminal job-table entries, and returns
// how many it evicted. A job with a live subscriber is skipped entirely —
// eviction never yanks a result out from under an attached stream — as is
// any non-terminal job (its stale cache file from a previous life will be
// rewritten on completion anyway).
func (s *Scheduler) evictExpired() int {
	ttl := s.opts.ResultsTTL
	if ttl <= 0 {
		return 0
	}
	entries, err := os.ReadDir(filepath.Join(s.opts.DataDir, "results"))
	if err != nil {
		return 0
	}
	now := s.opts.Now()
	evicted := 0
	for _, e := range entries {
		digest, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok {
			continue
		}
		c, err := s.loadResult(digest)
		if err != nil {
			continue // corrupt cache files are surfaced at load, not GC'd blind
		}
		if now.Sub(c.CompletedAt) <= ttl {
			continue
		}
		s.mu.Lock()
		if j, live := s.jobs[digest]; live {
			if !j.State().terminal() || j.hasSubscribers() {
				s.mu.Unlock()
				continue
			}
			delete(s.jobs, digest)
		}
		s.mu.Unlock()
		os.Remove(s.resultPath(digest))
		evicted++
	}
	return evicted
}

// SweepsStarted reports how many sweep executions this scheduler actually
// launched — the observable cache hits avoid.
func (s *Scheduler) SweepsStarted() int64 { return s.sweepsStarted.Load() }

func (s *Scheduler) checkpointPath(digest string) string {
	return filepath.Join(s.opts.DataDir, "checkpoints", digest+".ckpt")
}

func (s *Scheduler) resultPath(digest string) string {
	return filepath.Join(s.opts.DataDir, "results", digest+".json")
}

func (s *Scheduler) requestPath(digest string) string {
	return filepath.Join(s.opts.DataDir, "requests", digest+".json")
}

// persistRequest durably records an admitted request under its digest so a
// restarted server can resubmit it (ResumeInterrupted). Best-effort: a
// failed write degrades boot auto-resume, never the sweep itself.
func (s *Scheduler) persistRequest(digest string, req sweepreq.Request) {
	_ = atomicio.WriteFile(s.requestPath(digest), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(req)
	})
}

// ResumeInterrupted rescans the data dir for jobs a previous process left
// unfinished — a persisted request with no cached result — and resubmits
// each one. Checkpoints make the resubmission a resume, so a server killed
// mid-sweep picks its jobs back up at boot with no client involvement and
// still lands on bit-identical result digests. Requests whose results are
// already cached are stale stubs and are swept away. It returns the number
// of jobs resubmitted.
func (s *Scheduler) ResumeInterrupted() (int, error) {
	entries, err := os.ReadDir(filepath.Join(s.opts.DataDir, "requests"))
	if err != nil {
		return 0, fmt.Errorf("jobs: %w", err)
	}
	resumed := 0
	for _, e := range entries {
		digest, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok {
			continue
		}
		if _, err := s.loadResult(digest); err == nil {
			// Completed between the result write and the stub cleanup (a
			// crash in that window): the cache already serves it.
			os.Remove(s.requestPath(digest))
			continue
		}
		data, err := os.ReadFile(s.requestPath(digest))
		if err != nil {
			continue
		}
		var req sweepreq.Request
		if err := json.Unmarshal(data, &req); err != nil {
			continue // a corrupt stub must never block boot
		}
		_, started, err := s.Submit(req)
		if err != nil {
			continue // e.g. a stub from an older request schema
		}
		if started {
			resumed++
		}
	}
	return resumed, nil
}

// Submit admits a request. The returned bool reports whether a sweep
// execution was (re)started: false means the submission joined a live job
// or was served entirely from the result cache.
func (s *Scheduler) Submit(req sweepreq.Request) (*Job, bool, error) {
	built, err := sweepreq.Build(req)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrShuttingDown
	}
	if j, ok := s.jobs[built.Digest]; ok {
		j.mu.Lock()
		st := j.state
		if !st.terminal() || st == StateDone {
			j.mu.Unlock()
			return j, false, nil
		}
		// Failed or stopped: restart with a fresh stop channel and event
		// epoch; the checkpoint (if any) makes the restart a resume.
		j.stop = make(chan struct{})
		j.setStateLocked(StateQueued, Event{Type: "queued"})
		j.mu.Unlock()
		s.persistRequest(built.Digest, req)
		s.launch(j)
		return j, true, nil
	}

	j := newJob(built.Exp, built)
	s.jobs[built.Digest] = j
	if cached, err := s.loadResult(built.Digest); err == nil && cached.ConfigDigest == built.Digest {
		j.completeFromCache(cached)
		return j, false, nil
	}
	j.appendEvent(Event{Type: "queued"})
	s.persistRequest(built.Digest, req)
	s.launch(j)
	return j, true, nil
}

// Get returns the job for a config digest.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List snapshots every job's status, newest submission first.
func (s *Scheduler) List() []Status {
	s.mu.Lock()
	js := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = j.Status()
	}
	for i := 0; i < len(out); i++ {
		for k := i + 1; k < len(out); k++ {
			if out[k].SubmittedAt.After(out[i].SubmittedAt) {
				out[i], out[k] = out[k], out[i]
			}
		}
	}
	return out
}

// Result loads the cached result of a done job.
func (s *Scheduler) Result(id string) (*CachedResult, error) {
	return s.loadResult(id)
}

// StopJob requests a graceful stop of a queued or running job.
func (s *Scheduler) StopJob(id string) bool {
	j, ok := s.Get(id)
	if !ok {
		return false
	}
	j.requestStop()
	return true
}

// Stop begins shutdown: no new submissions, every live job is asked to
// stop at its next chunk boundary (committing a final checkpoint), and
// Stop returns when all job goroutines have drained.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	for _, j := range s.jobs {
		j.requestStop()
	}
	s.mu.Unlock()
	if !alreadyClosed {
		close(s.gcStop)
	}
	s.gcWG.Wait()
	s.wg.Wait()
}

// launch starts the job goroutine; the caller holds s.mu.
func (s *Scheduler) launch(j *Job) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-j.stopChan():
			j.finish(StateStopped, Event{Type: "stopped"})
			return
		}
		s.run(j)
	}()
}

// run executes the sweep with checkpointed resume and streams events.
func (s *Scheduler) run(j *Job) {
	s.sweepsStarted.Add(1)
	j.setState(StateRunning, Event{Type: "running", Total: j.built.Instances})

	ckPath := s.checkpointPath(j.Digest)
	stopPartial := make(chan struct{})
	var partialWG sync.WaitGroup
	if s.opts.PartialInterval > 0 {
		partialWG.Add(1)
		go func() {
			defer partialWG.Done()
			s.pumpPartials(j, ckPath, stopPartial)
		}()
	}

	// Progress throttle: at most ~200 events per sweep plus the final one.
	step := j.built.Instances / 200
	if step < 1 {
		step = 1
	}
	res, err := j.built.Run(sweepreq.RunOpts{
		Progress: func(done, total int) {
			if done%step == 0 || done == total {
				j.progress(done, total)
			}
		},
		Checkpoint: &volatile.CheckpointConfig{
			Path:   ckPath,
			Every:  s.opts.CheckpointEvery,
			Resume: true, // resubmit-after-restart IS the resume path
		},
		Stop: j.stopChan(),
	})
	close(stopPartial)
	partialWG.Wait()

	var ie *volatile.InterruptedError
	switch {
	case errors.As(err, &ie):
		j.finish(StateStopped, Event{Type: "stopped", CommittedChunks: ie.Committed, Chunks: ie.Chunks})
	case err != nil:
		j.finish(StateFailed, Event{Type: "failed", Error: err.Error()})
	default:
		cached := &CachedResult{
			ConfigDigest:    j.Digest,
			ResultDigest:    res.Digest(),
			Exp:             j.Exp,
			Instances:       res.Instances,
			Censored:        res.Censored,
			FailedInstances: res.FailedInstances,
			Overall:         res.Overall,
			Format:          res.Format(),
			Warnings:        res.Warnings,
			CompletedAt:     time.Now().UTC(),
		}
		if werr := s.storeResult(cached); werr != nil {
			j.finish(StateFailed, Event{Type: "failed", Error: werr.Error()})
			return
		}
		// The checkpoint and request stub are subsumed by the cached
		// result; keep the data dir from accumulating one of each per
		// completed sweep.
		os.Remove(ckPath)
		os.Remove(s.requestPath(j.Digest))
		j.setResult(cached)
		j.finish(StateDone, Event{
			Type: "done", Done: res.Instances, Total: j.built.Instances,
			Instances: res.Instances, ResultDigest: cached.ResultDigest,
		})
	}
}

// pumpPartials re-reads the job's checkpoint while it runs and emits a
// partial event whenever the committed watermark advances.
func (s *Scheduler) pumpPartials(j *Job, ckPath string, stop <-chan struct{}) {
	t := time.NewTicker(s.opts.PartialInterval)
	defer t.Stop()
	last := -1
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		st, err := volatile.ReadCheckpoint(ckPath)
		if err != nil || st.CommittedChunks <= last {
			continue // no checkpoint yet, or no progress since the last tick
		}
		last = st.CommittedChunks
		top := st.Partial.Overall
		if len(top) > 5 {
			top = top[:5]
		}
		j.appendEvent(Event{
			Type:            "partial",
			CommittedChunks: st.CommittedChunks,
			Chunks:          st.Chunks,
			Instances:       st.Partial.Instances,
			Top:             top,
		})
	}
}

func (s *Scheduler) storeResult(c *CachedResult) error {
	return atomicio.WriteFile(s.resultPath(c.ConfigDigest), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(c)
	})
}

func (s *Scheduler) loadResult(digest string) (*CachedResult, error) {
	data, err := os.ReadFile(s.resultPath(digest))
	if err != nil {
		return nil, err
	}
	var c CachedResult
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("jobs: corrupt cached result %s: %w", digest, err)
	}
	return &c, nil
}
