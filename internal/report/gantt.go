package report

import (
	"fmt"
	"io"
	"strings"
)

// GanttRow is one labelled timeline of single-character cells.
type GanttRow struct {
	// Label names the row (e.g. "P3 w=7").
	Label string
	// Cells holds one character per slot.
	Cells []byte
}

// Gantt renders per-worker timelines in fixed-width chunks with a slot
// ruler, wrapping long runs across multiple bands. legend is printed once at
// the end (pass a short explanation of the cell characters).
func Gantt(w io.Writer, rows []GanttRow, width int, legend string) error {
	if len(rows) == 0 {
		return fmt.Errorf("report: no gantt rows")
	}
	if width <= 0 {
		width = 100
	}
	n := 0
	labelW := 0
	for _, r := range rows {
		if len(r.Cells) > n {
			n = len(r.Cells)
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if n == 0 {
		return fmt.Errorf("report: empty gantt rows")
	}
	for start := 0; start < n; start += width {
		end := start + width
		if end > n {
			end = n
		}
		// Ruler: mark every 10th slot.
		var ruler strings.Builder
		for s := start; s < end; s++ {
			switch {
			case s%50 == 0:
				ruler.WriteByte('|')
			case s%10 == 0:
				ruler.WriteByte('+')
			default:
				ruler.WriteByte(' ')
			}
		}
		if _, err := fmt.Fprintf(w, "%*s  %s slot %d\n", labelW, "", ruler.String(), start); err != nil {
			return err
		}
		for _, r := range rows {
			var cells string
			if start < len(r.Cells) {
				e := end
				if e > len(r.Cells) {
					e = len(r.Cells)
				}
				cells = string(r.Cells[start:e])
			}
			if _, err := fmt.Fprintf(w, "%*s  %s\n", labelW, r.Label, cells); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if legend != "" {
		if _, err := fmt.Fprintf(w, "legend: %s\n", legend); err != nil {
			return err
		}
	}
	return nil
}
