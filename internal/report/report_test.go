package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Algorithm", "Average dfb", "#wins")
	tb.AddRow("emct", "4.77", "80320")
	tb.AddRow("random", "47.87", "45")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Algorithm") {
		t.Fatalf("header line %q", lines[0])
	}
	if !strings.Contains(lines[2], "emct") || !strings.Contains(lines[2], "80320") {
		t.Fatalf("row line %q", lines[2])
	}
	// Columns must align: "Average dfb" column starts at the same offset.
	idx := strings.Index(lines[0], "Average")
	if !strings.HasPrefix(lines[2][idx:], "4.77") {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "dropped")
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Fatal("extra cell not dropped")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b,
		[]string{"name", "value"},
		[][]string{{"plain", "1"}, {"with,comma", `has "quote"`}})
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "name,value\nplain,1\n\"with,comma\",\"has \"\"quote\"\"\"\n"
	if got != want {
		t.Fatalf("CSV output:\n%q\nwant:\n%q", got, want)
	}
}

func TestAsciiPlot(t *testing.T) {
	var b strings.Builder
	err := AsciiPlot(&b, "dfb vs wmin",
		[]string{"1", "2", "3"},
		[]Series{
			{Name: "mct", Y: []float64{1, 5, 9}},
			{Name: "emct", Y: []float64{2, 3, math.NaN()}},
		}, 6)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "dfb vs wmin") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "legend:") || !strings.Contains(out, "mct") {
		t.Fatalf("missing legend:\n%s", out)
	}
	grid := out[:strings.Index(out, "legend:")]
	if strings.Count(grid, "*") != 3 {
		t.Fatalf("series 1 should plot 3 markers:\n%s", out)
	}
	if n := strings.Count(grid, "o"); n < 1 || n > 2 {
		t.Fatalf("series 2 should plot up to 2 markers (NaN skipped), got %d:\n%s", n, out)
	}
}

func TestAsciiPlotNoData(t *testing.T) {
	var b strings.Builder
	err := AsciiPlot(&b, "empty", []string{"1"}, []Series{{Name: "x", Y: []float64{math.NaN()}}}, 5)
	if err == nil {
		t.Fatal("plotting no data did not error")
	}
}

func TestAsciiPlotFlatLine(t *testing.T) {
	var b strings.Builder
	err := AsciiPlot(&b, "flat", []string{"1", "2"}, []Series{{Name: "x", Y: []float64{3, 3}}}, 5)
	if err != nil {
		t.Fatal(err)
	}
}
