// Package report renders experiment results as text tables, CSV files and
// ASCII line plots (for regenerating the paper's figure without external
// plotting dependencies).
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.headers)); err != nil {
		return err
	}
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV emits headers and rows as RFC-4180-ish CSV (quotes only when
// needed).
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	emit := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := emit(headers); err != nil {
		return err
	}
	for _, row := range rows {
		if err := emit(row); err != nil {
			return err
		}
	}
	return nil
}

// Series is one named line of an ASCII plot.
type Series struct {
	// Name labels the line in the legend.
	Name string
	// Y holds one value per X position (NaN = missing).
	Y []float64
}

// AsciiPlot renders series against shared x labels as a crude line chart:
// one character column per x position, height rows, a legend of marker
// characters. It is deliberately dependency-free; CSV output accompanies it
// for real plotting.
func AsciiPlot(w io.Writer, title string, xLabels []string, series []Series, height int) error {
	if height < 4 {
		height = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("report: no data to plot")
	}
	if hi == lo {
		hi = lo + 1
	}
	markers := []byte("*o+x#@%&")
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(xLabels)*4))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for xi, y := range s.Y {
			if math.IsNaN(y) || xi >= len(xLabels) {
				continue
			}
			row := int(math.Round((hi - y) / (hi - lo) * float64(height-1)))
			grid[row][xi*4+1] = mk
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	for r, rowBytes := range grid {
		yVal := hi - (hi-lo)*float64(r)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%8.2f |%s\n", yVal, strings.TrimRight(string(rowBytes), " ")); err != nil {
			return err
		}
	}
	var xAxis strings.Builder
	for _, lbl := range xLabels {
		xAxis.WriteString(fmt.Sprintf("%-4s", lbl))
	}
	if _, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", len(xLabels)*4)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%9s%s\n", "", xAxis.String()); err != nil {
		return err
	}
	// Legend sorted by series order.
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	sort.Strings(legend)
	_, err := fmt.Fprintf(w, "legend: %s\n", strings.Join(legend, " "))
	return err
}
