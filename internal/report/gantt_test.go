package report

import (
	"strings"
	"testing"
)

func TestGanttRendersBandsAndLegend(t *testing.T) {
	rows := []GanttRow{
		{Label: "P0", Cells: []byte(strings.Repeat("CP.", 50))}, // 150 cells
		{Label: "P1", Cells: []byte(strings.Repeat("X", 30))},   // shorter row
	}
	var b strings.Builder
	if err := Gantt(&b, rows, 100, "test legend"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "slot 0") || !strings.Contains(out, "slot 100") {
		t.Fatalf("missing band headers:\n%s", out)
	}
	if !strings.Contains(out, "legend: test legend") {
		t.Fatal("missing legend")
	}
	if strings.Count(out, "P0") != 2 || strings.Count(out, "P1") != 2 {
		t.Fatalf("rows should appear once per band:\n%s", out)
	}
}

func TestGanttErrors(t *testing.T) {
	var b strings.Builder
	if err := Gantt(&b, nil, 80, ""); err == nil {
		t.Fatal("empty rows accepted")
	}
	if err := Gantt(&b, []GanttRow{{Label: "x"}}, 80, ""); err == nil {
		t.Fatal("zero-length rows accepted")
	}
}

func TestGanttDefaultWidth(t *testing.T) {
	rows := []GanttRow{{Label: "a", Cells: []byte("....")}}
	var b strings.Builder
	if err := Gantt(&b, rows, 0, ""); err != nil {
		t.Fatal(err)
	}
}
