// Package expect implements the availability analytics of Section 5 of the
// paper: closed-form expressions, under the 3-state Markov model, for
//
//   - P+ (Lemma 1): the probability that a processor currently UP will be UP
//     again at some later slot without passing through DOWN;
//   - E(W) (Theorem 2): the expected number of slots a processor currently UP
//     needs to accumulate W slots of UP time, conditioned on not going DOWN
//     before finishing;
//   - P_UD(k): the probability that a processor currently UP stays out of
//     DOWN for k slots — both the exact matrix-power form and the paper's
//     "forget the state after the first transition" approximation
//     (Section 6.3.3).
//
// These quantities are what the informed heuristics (EMCT, EMCT*, LW, LW*,
// UD, UD*) consume. Monte-Carlo estimators for each quantity live in
// montecarlo.go and back the correctness tests.
package expect

import (
	"math"

	"repro/internal/avail"
)

// PPlus returns P+ for the given availability model (Lemma 1):
//
//	P+ = P(u,u) + P(u,r)·P(r,u) / (1 − P(r,r)).
//
// This is the probability that a processor UP now is UP again at a later
// slot before ever entering DOWN, accounting for an arbitrary number of
// intermediate RECLAIMED slots.
func PPlus(m *avail.Markov3) float64 {
	puu := m.P(avail.Up, avail.Up)
	pur := m.P(avail.Up, avail.Reclaimed)
	pru := m.P(avail.Reclaimed, avail.Up)
	prr := m.P(avail.Reclaimed, avail.Reclaimed)
	if prr >= 1 {
		// RECLAIMED is absorbing: the processor can only return by staying UP.
		return puu
	}
	return puu + pur*pru/(1-prr)
}

// ExpectedUpStep returns E(up): the expected number of slots separating an
// UP slot from the next UP slot, conditioned on not entering DOWN in
// between. E(up) = 1 + z / ((1 − P(r,r))(1 + z)) with
// z = P(u,r)·P(r,u) / (P(u,u)·(1 − P(r,r))).
func ExpectedUpStep(m *avail.Markov3) float64 {
	puu := m.P(avail.Up, avail.Up)
	pur := m.P(avail.Up, avail.Reclaimed)
	pru := m.P(avail.Reclaimed, avail.Up)
	prr := m.P(avail.Reclaimed, avail.Reclaimed)
	if prr >= 1 || puu == 0 {
		// Degenerate chains: if the processor cannot return through
		// RECLAIMED, conditioned on success each step takes exactly one slot.
		if puu > 0 {
			return 1
		}
		if pur*pru == 0 || prr >= 1 {
			return 1 // success impossible; conditional expectation vacuous
		}
		// Pure u->r...r->u cycles: geometric number of r slots plus the u slot.
		return 1 + 1/(1-prr)
	}
	z := pur * pru / (puu * (1 - prr))
	return 1 + z/((1-prr)*(1+z))
}

// ExpectedSlots returns E(W) (Theorem 2): the expected total number of slots
// (starting from, and including, the current UP slot) needed to accumulate W
// UP slots, conditioned on the processor never entering DOWN meanwhile:
//
//	E(W) = W + (W−1) · [P(u,r)·P(r,u)/(1 − P(r,r))] ·
//	       1 / [P(u,u)·(1 − P(r,r)) + P(u,r)·P(r,u)].
//
// Implemented as E(W) = 1 + (W−1)·E(up), the form the theorem's proof
// derives, which stays finite for all valid chains. W may be fractional
// because callers feed in expected workloads; W ≤ 1 returns W unchanged.
func ExpectedSlots(m *avail.Markov3, w float64) float64 {
	if w <= 1 {
		return w
	}
	return 1 + (w-1)*ExpectedUpStep(m)
}

// SurvivalUD returns the exact probability that a processor UP now avoids
// DOWN for k consecutive slots (including the current one):
//
//	P_UD(k) = [1 1] · M^(k−1) · [1 0]^T,
//
// where M is the 2x2 sub-matrix of the transition matrix restricted to
// {UP, RECLAIMED} (Section 6.3.3). k ≤ 1 returns 1 (it is already UP).
func SurvivalUD(m *avail.Markov3, k int) float64 {
	if k <= 1 {
		return 1
	}
	// M restricted to {u, r}, row-stochastic orientation M[i][j] = P(i->j).
	// Survival from UP over k-1 transitions is e_u^T · M^(k-1) · 1: iterate
	// the all-ones column vector y <- M·y (k-1 times) and read the UP entry.
	// (The paper writes [1 1]·M^(k-1)·[1 0]^T with M column-stochastic;
	// both expressions denote the same number.)
	a := m.P(avail.Up, avail.Up)
	b := m.P(avail.Up, avail.Reclaimed)
	c := m.P(avail.Reclaimed, avail.Up)
	d := m.P(avail.Reclaimed, avail.Reclaimed)
	yu, yr := 1.0, 1.0
	for j := 0; j < k-1; j++ {
		yu, yr = a*yu+b*yr, c*yu+d*yr
	}
	return yu
}

// SurvivalUDFrac evaluates SurvivalUD at a fractional horizon by geometric
// interpolation between the neighbouring integers: heuristics feed expected
// (real-valued) workloads into the survival probability.
func SurvivalUDFrac(m *avail.Markov3, k float64) float64 {
	if k <= 1 {
		return 1
	}
	lo := int(math.Floor(k))
	hi := lo + 1
	pLo := SurvivalUD(m, lo)
	if float64(lo) == k {
		return pLo
	}
	pHi := SurvivalUD(m, hi)
	if pLo <= 0 {
		return 0
	}
	frac := k - float64(lo)
	// Geometric interpolation preserves the exponential decay shape.
	return pLo * math.Pow(pHi/pLo, frac)
}

// SurvivalUDApprox is the paper's closed-form approximation of P_UD(k),
// obtained by forgetting the exact state after the first transition and
// using stationary weights for the per-slot death probability:
//
//	P_UD(k) ≈ (1 − P(u,d)) · (1 − (P(u,d)·πu + P(r,d)·πr)/(πu + πr))^(k−2).
//
// Accepts fractional k (the heuristics plug in E(W)); k ≤ 1 returns 1.
func SurvivalUDApprox(m *avail.Markov3, k float64) float64 {
	if k <= 1 {
		return 1
	}
	pud := m.P(avail.Up, avail.Down)
	prd := m.P(avail.Reclaimed, avail.Down)
	piU, piR, _ := m.Stationary()
	if piU+piR == 0 {
		return 0
	}
	perSlot := 1 - (pud*piU+prd*piR)/(piU+piR)
	if perSlot < 0 {
		perSlot = 0
	}
	return (1 - pud) * math.Pow(perSlot, k-2)
}
