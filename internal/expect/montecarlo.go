package expect

import (
	"repro/internal/avail"
	"repro/internal/rng"
)

// This file provides Monte-Carlo estimators for every closed form in
// formulas.go. They exist to validate the analytics (the paper's Lemma 1 and
// Theorem 2 carry proofs, but our transcription of them must be checked) and
// to extend the same quantities to availability models with no closed form
// (semi-Markov, traces).

// maxWalk bounds a single conditioned walk; trajectories longer than this
// are abandoned as failures. With the paper's parameter ranges the
// probability of a legitimate walk reaching this bound is negligible.
const maxWalk = 10_000_000

// EstimatePPlus estimates P+ by simulating `trials` walks that start UP and
// end at the first UP (success) or DOWN (failure) slot.
func EstimatePPlus(m *avail.Markov3, r *rng.PCG, trials int) float64 {
	success := 0
	for i := 0; i < trials; i++ {
		p := m.NewProcess(r, avail.Up)
		p.Next() // consume slot 0 (the conditioning UP slot)
	walk:
		for steps := 0; steps < maxWalk; steps++ {
			switch p.Next() {
			case avail.Up:
				success++
				break walk
			case avail.Down:
				break walk
			}
		}
	}
	return float64(success) / float64(trials)
}

// EstimateExpectedSlots estimates E(W) by simulating conditioned walks: each
// walk starts in an UP slot (which counts toward the workload) and runs until
// W UP slots have been accumulated; walks that hit DOWN are discarded
// (the expectation is conditioned on completion). It returns the mean number
// of slots of successful walks and the number of successes.
func EstimateExpectedSlots(m *avail.Markov3, w int, r *rng.PCG, trials int) (mean float64, successes int) {
	if w < 1 {
		return 0, trials
	}
	var total float64
	for i := 0; i < trials; i++ {
		p := m.NewProcess(r, avail.Up)
		p.Next() // slot 0: UP, counts as 1 unit of workload
		up := 1
		slots := 1
		ok := true
		for up < w {
			if slots >= maxWalk {
				ok = false
				break
			}
			slots++
			switch p.Next() {
			case avail.Up:
				up++
			case avail.Down:
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			total += float64(slots)
			successes++
		}
	}
	if successes == 0 {
		return 0, 0
	}
	return total / float64(successes), successes
}

// EstimateSurvivalUD estimates P_UD(k): the probability that a processor UP
// now stays out of DOWN for k consecutive slots (including the current one).
func EstimateSurvivalUD(m *avail.Markov3, k int, r *rng.PCG, trials int) float64 {
	if k <= 1 {
		return 1
	}
	alive := 0
	for i := 0; i < trials; i++ {
		p := m.NewProcess(r, avail.Up)
		p.Next() // slot 0
		ok := true
		for s := 1; s < k; s++ {
			if p.Next() == avail.Down {
				ok = false
				break
			}
		}
		if ok {
			alive++
		}
	}
	return float64(alive) / float64(trials)
}
