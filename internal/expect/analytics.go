package expect

import (
	"math"

	"repro/internal/avail"
)

// Analytics caches every per-model quantity the informed heuristics of
// Section 6 consume, so the per-decision hot path (one Pick evaluation per
// slot × task × eligible processor) reduces to pure arithmetic on constants.
// All fields are derived from an immutable Markov3, computed exactly as the
// corresponding free functions of this package compute them — scorers built
// on an Analytics are bit-identical to scorers calling the functions.
type Analytics struct {
	// PPlus is Lemma 1's P+ (see PPlus).
	PPlus float64
	// NegLogPPlus is −ln(P+), the LW score's per-slot cost; +Inf when
	// P+ = 0 (LW treats such processors as unusable).
	NegLogPPlus float64
	// UpStep is E(up) of Theorem 2 (see ExpectedUpStep).
	UpStep float64
	// VarUpStep is Var(step) of the conditioned up-step (see VarianceUpStep).
	VarUpStep float64
	// PiU, PiR, PiD are the stationary probabilities.
	PiU, PiR, PiD float64

	// UD's approximate survival score (Section 6.3.3) decomposes as
	// −ln P_UD(k) = NegLog1mPud − (k−2)·LogPerSlot. udScorable is false when
	// the original formula degenerates (π_u+π_r ≤ 0, P(u,d) ≥ 1 or a
	// non-positive per-slot survival), in which case the score is +Inf.
	udScorable  bool
	NegLog1mPud float64
	LogPerSlot  float64
}

// NewAnalytics derives the cached quantities from a model. Prefer Of, which
// interns the result on the model itself.
func NewAnalytics(m *avail.Markov3) *Analytics {
	a := &Analytics{
		PPlus:     PPlus(m),
		UpStep:    ExpectedUpStep(m),
		VarUpStep: VarianceUpStep(m),
	}
	a.PiU, a.PiR, a.PiD = m.Stationary()
	if a.PPlus > 0 {
		a.NegLogPPlus = -math.Log(a.PPlus)
	} else {
		a.NegLogPPlus = math.Inf(1)
	}
	pud := m.P(avail.Up, avail.Down)
	prd := m.P(avail.Reclaimed, avail.Down)
	if a.PiU+a.PiR > 0 && pud < 1 {
		perSlot := 1 - (pud*a.PiU+prd*a.PiR)/(a.PiU+a.PiR)
		if perSlot > 0 {
			a.udScorable = true
			a.NegLog1mPud = -math.Log(1 - pud)
			a.LogPerSlot = math.Log(perSlot)
		}
	}
	return a
}

// Of returns the model's interned Analytics, computing and storing it on
// first use. Safe for concurrent callers: a race computes the same value
// twice and interns one of the two identical results.
func Of(m *avail.Markov3) *Analytics {
	if v := m.Memo(); v != nil {
		if a, ok := v.(*Analytics); ok {
			return a
		}
	}
	a := NewAnalytics(m)
	m.SetMemo(a)
	return a
}

// ExpectedSlots is Theorem 2's E(W) on the cached up-step (see the free
// function ExpectedSlots).
func (a *Analytics) ExpectedSlots(w float64) float64 {
	if w <= 1 {
		return w
	}
	return 1 + (w-1)*a.UpStep
}

// StdDevSlots is the conditioned completion-time standard deviation on the
// cached up-step variance (see the free function StdDevSlots).
func (a *Analytics) StdDevSlots(w float64) float64 {
	if w <= 1 {
		return 0
	}
	return math.Sqrt((w - 1) * a.VarUpStep)
}

// UDScore is −ln P_UD(k) with the paper's Section 6.3.3 approximation, for a
// conditioned horizon k (typically E(CT)); +Inf when the model degenerates.
func (a *Analytics) UDScore(k float64) float64 {
	if k <= 1 {
		return 0 // P_UD = 1
	}
	if !a.udScorable {
		return math.Inf(1)
	}
	return a.NegLog1mPud - (k-2)*a.LogPerSlot
}
