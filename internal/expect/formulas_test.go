package expect

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/avail"
	"repro/internal/rng"
)

// paperModel builds a representative chain drawn with the paper's rule.
func paperModel(seed uint64) *avail.Markov3 {
	return avail.RandomMarkov3(rng.New(seed))
}

func TestPPlusHandComputed(t *testing.T) {
	// P+ = Puu + Pur*Pru/(1-Prr) with Puu=0.9, Pur=0.06, Pru=0.05, Prr=0.9.
	m := avail.MustMarkov3([3][3]float64{
		{0.90, 0.06, 0.04},
		{0.05, 0.90, 0.05},
		{0.10, 0.10, 0.80},
	})
	want := 0.90 + 0.06*0.05/(1-0.90)
	if got := PPlus(m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PPlus = %v, want %v", got, want)
	}
}

func TestPPlusNoReclaimedPath(t *testing.T) {
	// If the processor can never leave RECLAIMED to UP, P+ = Puu.
	m := avail.MustMarkov3([3][3]float64{
		{0.8, 0.1, 0.1},
		{0.0, 0.7, 0.3},
		{0.2, 0.2, 0.6},
	})
	if got := PPlus(m); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("PPlus = %v, want 0.8", got)
	}
}

func TestPPlusInUnitInterval(t *testing.T) {
	f := func(seed uint64) bool {
		p := PPlus(paperModel(seed))
		return p > 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPPlusMatchesMonteCarlo(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		m := paperModel(seed)
		analytic := PPlus(m)
		estimated := EstimatePPlus(m, rng.New(seed+100), 200000)
		if math.Abs(analytic-estimated) > 0.005 {
			t.Fatalf("seed %d: PPlus analytic %v vs MC %v", seed, analytic, estimated)
		}
	}
}

func TestExpectedSlotsBaseCases(t *testing.T) {
	m := paperModel(1)
	if got := ExpectedSlots(m, 1); got != 1 {
		t.Fatalf("E(1) = %v, want 1", got)
	}
	if got := ExpectedSlots(m, 0); got != 0 {
		t.Fatalf("E(0) = %v, want 0", got)
	}
	if got := ExpectedSlots(m, 0.5); got != 0.5 {
		t.Fatalf("E(0.5) = %v, want 0.5", got)
	}
}

func TestExpectedSlotsClosedFormMatchesTheoremExpression(t *testing.T) {
	// The implementation uses E(W) = 1 + (W-1)E(up); Theorem 2 states
	// E(W) = W + (W-1) * (Pur*Pru/(1-Prr)) / (Puu(1-Prr)+Pur*Pru).
	// Both must agree.
	for seed := uint64(1); seed <= 50; seed++ {
		m := paperModel(seed)
		puu := m.P(avail.Up, avail.Up)
		pur := m.P(avail.Up, avail.Reclaimed)
		pru := m.P(avail.Reclaimed, avail.Up)
		prr := m.P(avail.Reclaimed, avail.Reclaimed)
		for _, w := range []float64{2, 3, 10, 57.5} {
			direct := w + (w-1)*(pur*pru/(1-prr))/(puu*(1-prr)+pur*pru)
			if got := ExpectedSlots(m, w); math.Abs(got-direct) > 1e-9 {
				t.Fatalf("seed %d W=%v: impl %v vs theorem %v", seed, w, got, direct)
			}
		}
	}
}

func TestExpectedSlotsAtLeastW(t *testing.T) {
	f := func(seed uint64, wRaw uint16) bool {
		w := float64(wRaw%500) + 1
		m := paperModel(seed)
		e := ExpectedSlots(m, w)
		return e >= w-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedSlotsMonotoneInW(t *testing.T) {
	f := func(seed uint64, wRaw uint16) bool {
		w := float64(wRaw%500) + 1
		m := paperModel(seed)
		return ExpectedSlots(m, w+1) >= ExpectedSlots(m, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedSlotsLinearInW(t *testing.T) {
	// E(W) = 1 + (W-1)E(up) is affine in W: second differences vanish.
	m := paperModel(3)
	d1 := ExpectedSlots(m, 3) - ExpectedSlots(m, 2)
	d2 := ExpectedSlots(m, 11) - ExpectedSlots(m, 10)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("E(W) not affine: slopes %v vs %v", d1, d2)
	}
}

func TestExpectedSlotsMatchesMonteCarlo(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		m := paperModel(seed)
		for _, w := range []int{2, 5, 20} {
			analytic := ExpectedSlots(m, float64(w))
			mc, successes := EstimateExpectedSlots(m, w, rng.New(seed*13+7), 60000)
			if successes < 1000 {
				t.Fatalf("seed %d W=%d: too few successful walks (%d)", seed, w, successes)
			}
			if math.Abs(analytic-mc)/analytic > 0.03 {
				t.Fatalf("seed %d W=%d: analytic %v vs MC %v", seed, w, analytic, mc)
			}
		}
	}
}

func TestExpectedUpStepNoReclaimed(t *testing.T) {
	// Without a RECLAIMED detour every conditioned step is one slot.
	m := avail.MustMarkov3([3][3]float64{
		{0.9, 0.0, 0.1},
		{0.1, 0.8, 0.1},
		{0.3, 0.3, 0.4},
	})
	if got := ExpectedUpStep(m); math.Abs(got-1) > 1e-12 {
		t.Fatalf("E(up) = %v, want 1", got)
	}
}

func TestSurvivalUDExactSmallCases(t *testing.T) {
	m := avail.MustMarkov3([3][3]float64{
		{0.90, 0.06, 0.04},
		{0.05, 0.90, 0.05},
		{0.10, 0.10, 0.80},
	})
	if got := SurvivalUD(m, 1); got != 1 {
		t.Fatalf("P_UD(1) = %v, want 1", got)
	}
	// k=2: survive one transition from u: 1 - Pud = 0.96.
	if got := SurvivalUD(m, 2); math.Abs(got-0.96) > 1e-12 {
		t.Fatalf("P_UD(2) = %v, want 0.96", got)
	}
	// k=3 by hand: survive two transitions from u within {u,r}:
	// y1 = (Puu+Pur, Pru+Prr) = (0.96, 0.95);
	// y2_u = 0.90*0.96 + 0.06*0.95 = 0.921.
	if got := SurvivalUD(m, 3); math.Abs(got-0.921) > 1e-12 {
		t.Fatalf("P_UD(3) = %v, want 0.921", got)
	}
}

func TestSurvivalUDMatchesMonteCarlo(t *testing.T) {
	m := paperModel(5)
	for _, k := range []int{2, 5, 15, 40} {
		analytic := SurvivalUD(m, k)
		mc := EstimateSurvivalUD(m, k, rng.New(uint64(k)*3+1), 150000)
		if math.Abs(analytic-mc) > 0.006 {
			t.Fatalf("k=%d: exact %v vs MC %v", k, analytic, mc)
		}
	}
}

func TestSurvivalUDMonotoneDecreasing(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%60) + 1
		m := paperModel(seed)
		return SurvivalUD(m, k+1) <= SurvivalUD(m, k)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSurvivalUDFracInterpolates(t *testing.T) {
	m := paperModel(6)
	for _, k := range []int{2, 7, 30} {
		exact := SurvivalUD(m, k)
		frac := SurvivalUDFrac(m, float64(k))
		if math.Abs(exact-frac) > 1e-12 {
			t.Fatalf("k=%d: frac at integer %v vs exact %v", k, frac, exact)
		}
		mid := SurvivalUDFrac(m, float64(k)+0.5)
		lo, hi := SurvivalUD(m, k+1), SurvivalUD(m, k)
		if mid < lo-1e-12 || mid > hi+1e-12 {
			t.Fatalf("k=%v: interpolated %v outside [%v, %v]", float64(k)+0.5, mid, lo, hi)
		}
	}
	if got := SurvivalUDFrac(m, 0.3); got != 1 {
		t.Fatalf("SurvivalUDFrac(0.3) = %v, want 1", got)
	}
}

func TestSurvivalUDApproxCloseToExact(t *testing.T) {
	// The paper's approximation replaces the conditioned occupancy of
	// {UP, RECLAIMED} with stationary weights, which drifts from the exact
	// value when the per-state death rates differ (it is a deliberate
	// simplification, Section 6.3.3). We check it stays in the right
	// ballpark and is exact at k=2.
	for seed := uint64(1); seed <= 20; seed++ {
		m := paperModel(seed)
		exact2 := SurvivalUD(m, 2)
		approx2 := SurvivalUDApprox(m, 2)
		if math.Abs(exact2-approx2) > 1e-12 {
			t.Fatalf("seed %d: k=2 approx %v differs from exact %v", seed, approx2, exact2)
		}
		for _, k := range []int{5, 10, 25} {
			exact := SurvivalUD(m, k)
			approx := SurvivalUDApprox(m, float64(k))
			if math.Abs(exact-approx) > 0.25 {
				t.Fatalf("seed %d k=%d: exact %v vs approx %v", seed, k, exact, approx)
			}
			if approx <= 0 || approx > 1 {
				t.Fatalf("seed %d k=%d: approx %v out of (0,1]", seed, k, approx)
			}
		}
	}
}

func TestSurvivalUDApproxInUnitInterval(t *testing.T) {
	f := func(seed uint64, kRaw uint16) bool {
		k := float64(kRaw%1000) + 1
		p := SurvivalUDApprox(paperModel(seed), k)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExpectedSlots(b *testing.B) {
	m := paperModel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ExpectedSlots(m, 37)
	}
}

func BenchmarkSurvivalUD(b *testing.B) {
	m := paperModel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SurvivalUD(m, 40)
	}
}
