package expect

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/avail"
	"repro/internal/rng"
)

func TestCompletionCDFTrivialWorkload(t *testing.T) {
	m := paperModel(1)
	f := CompletionCDF(m, 1, 5)
	if f[0] != 0 {
		t.Fatal("F[0] must be 0")
	}
	for tt := 1; tt <= 5; tt++ {
		if f[tt] != 1 {
			t.Fatalf("w=1: F[%d] = %v, want 1", tt, f[tt])
		}
	}
	if got := CompletionCDF(m, 3, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("horizon 0: %v", got)
	}
}

func TestCompletionCDFMonotone(t *testing.T) {
	f := func(seed uint64, wRaw uint8) bool {
		w := int(wRaw%20) + 2
		m := avail.RandomMarkov3(rng.New(seed))
		cdf := CompletionCDF(m, w, 300)
		for t := 1; t < len(cdf); t++ {
			if cdf[t] < cdf[t-1]-1e-12 || cdf[t] > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionCDFLimitIsSuccessProbability(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		m := paperModel(seed)
		for _, w := range []int{2, 5, 10} {
			cdf := CompletionCDF(m, w, 5000)
			limit := cdf[len(cdf)-1]
			want := SuccessProbability(m, w)
			if math.Abs(limit-want) > 1e-6 {
				t.Fatalf("seed %d w=%d: CDF limit %v vs (P+)^(w-1) = %v",
					seed, w, limit, want)
			}
		}
	}
}

func TestCompletionCDFMeanMatchesTheorem2(t *testing.T) {
	// The conditional mean of the CDF's distribution must equal E(W):
	// E[T | success] = sum t * dF(t) / F(inf).
	for seed := uint64(1); seed <= 10; seed++ {
		m := paperModel(seed)
		for _, w := range []int{2, 7, 15} {
			const horizon = 8000
			cdf := CompletionCDF(m, w, horizon)
			fInf := SuccessProbability(m, w)
			var mean float64
			for t := 1; t <= horizon; t++ {
				mean += float64(t) * (cdf[t] - cdf[t-1])
			}
			mean /= fInf
			want := ExpectedSlots(m, float64(w))
			if math.Abs(mean-want)/want > 1e-3 {
				t.Fatalf("seed %d w=%d: CDF mean %v vs E(W) %v", seed, w, mean, want)
			}
		}
	}
}

func TestCompletionCDFMatchesMonteCarlo(t *testing.T) {
	m := paperModel(3)
	const w = 6
	cdf := CompletionCDF(m, w, 60)
	r := rng.New(303)
	const trials = 150000
	counts := make([]int, 61)
	for i := 0; i < trials; i++ {
		p := m.NewProcess(r, avail.Up)
		p.Next()
		up, slots, ok := 1, 1, true
		for up < w && slots <= 60 {
			slots++
			switch p.Next() {
			case avail.Up:
				up++
			case avail.Down:
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok && up == w && slots <= 60 {
			counts[slots]++
		}
	}
	cum := 0
	for tt := 1; tt <= 60; tt++ {
		cum += counts[tt]
		emp := float64(cum) / trials
		if math.Abs(emp-cdf[tt]) > 0.005 {
			t.Fatalf("t=%d: empirical %v vs analytic %v", tt, emp, cdf[tt])
		}
	}
}

func TestDeadlineProbability(t *testing.T) {
	m := paperModel(4)
	if DeadlineProbability(m, 5, 0) != 0 {
		t.Fatal("deadline 0 must be impossible")
	}
	// The workload needs at least w slots.
	if got := DeadlineProbability(m, 5, 4); got != 0 {
		t.Fatalf("deadline below w: %v, want 0", got)
	}
	// Monotone in the deadline and bounded by the success probability.
	prev := 0.0
	for d := 5; d <= 100; d += 5 {
		p := DeadlineProbability(m, 5, d)
		if p < prev {
			t.Fatalf("deadline prob decreased at %d", d)
		}
		prev = p
	}
	if prev > SuccessProbability(m, 5)+1e-9 {
		t.Fatalf("deadline prob %v exceeds success probability", prev)
	}
}

func BenchmarkCompletionCDF(b *testing.B) {
	m := paperModel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = CompletionCDF(m, 20, 1000)
	}
}
