package expect

import (
	"math"

	"repro/internal/avail"
)

// This file extends Section 5's analysis with second moments. The paper
// derives only the expectation E(W); the variance is obtained the same way,
// from the distribution of a single conditioned "up step" (the number of
// slots separating consecutive UP slots, conditioned on not passing through
// DOWN):
//
//	P(step = 1)      = P(u,u) / P+
//	P(step = k), k≥2 = P(u,r)·P(r,r)^(k−2)·P(r,u) / P+
//
// E(W) sums W−1 independent such steps, so Var(W) = (W−1)·Var(step).
// The risk-averse heuristic extension (core.NewRiskAverse) consumes these.

// VarianceUpStep returns Var(step) for the conditioned up-step distribution.
func VarianceUpStep(m *avail.Markov3) float64 {
	puu := m.P(avail.Up, avail.Up)
	pur := m.P(avail.Up, avail.Reclaimed)
	pru := m.P(avail.Reclaimed, avail.Up)
	prr := m.P(avail.Reclaimed, avail.Reclaimed)
	pp := PPlus(m)
	if pp <= 0 || prr >= 1 {
		return 0
	}
	// E[X^2] = (Puu + Pur*Pru*S) / P+ with S = sum_{k>=2} k^2 * Prr^(k-2):
	// S = sum_{j>=0} (j+2)^2 x^j = x(1+x)/(1-x)^3 + 4x/(1-x)^2 + 4/(1-x).
	x := prr
	om := 1 - x
	s := x*(1+x)/(om*om*om) + 4*x/(om*om) + 4/om
	ex2 := (puu + pur*pru*s) / pp
	ex := ExpectedUpStep(m)
	v := ex2 - ex*ex
	if v < 0 {
		return 0 // numerical guard
	}
	return v
}

// VarianceSlots returns Var of the total slots needed to accumulate a
// workload of W UP slots, conditioned on never entering DOWN:
// (W−1)·Var(step). W ≤ 1 has zero variance.
func VarianceSlots(m *avail.Markov3, w float64) float64 {
	if w <= 1 {
		return 0
	}
	return (w - 1) * VarianceUpStep(m)
}

// StdDevSlots is the square root of VarianceSlots.
func StdDevSlots(m *avail.Markov3, w float64) float64 {
	return math.Sqrt(VarianceSlots(m, w))
}
