package expect

import (
	"math"
	"testing"

	"repro/internal/avail"
	"repro/internal/markov"
	"repro/internal/rng"
)

// TestPPlusViaAbsorption derives Lemma 1 by pure linear algebra and checks
// it against the closed form: build a 4-state chain {u-start, r, D, U-hit}
// where the original UP state is split into a transient start copy and an
// absorbing "returned UP" copy; P+ is then the absorption probability of
// U-hit against D.
func TestPPlusViaAbsorption(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		m := avail.RandomMarkov3(rng.New(seed))
		puu := m.P(avail.Up, avail.Up)
		pur := m.P(avail.Up, avail.Reclaimed)
		pud := m.P(avail.Up, avail.Down)
		pru := m.P(avail.Reclaimed, avail.Up)
		prr := m.P(avail.Reclaimed, avail.Reclaimed)
		prd := m.P(avail.Reclaimed, avail.Down)
		// States: 0 = start (just left an UP slot), 1 = RECLAIMED,
		// 2 = DOWN (absorbing), 3 = UP again (absorbing).
		aux := markov.MustChain([][]float64{
			{0, pur, pud, puu},
			{0, prr, prd, pru},
			{0, 0, 1, 0},
			{0, 0, 0, 1},
		})
		got, err := aux.AbsorptionProbability(0, 3, map[int]bool{2: true, 3: true})
		if err != nil {
			t.Fatal(err)
		}
		want := PPlus(m)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d: absorption P+ %v vs Lemma 1 %v", seed, got, want)
		}
	}
}

// TestExpectedUpStepViaFundamentalMatrix derives E(up) from the fundamental
// matrix of the conditioned chain. Conditioning on "UP before DOWN" (Doob
// h-transform with h(s) = P(reach UP before DOWN | s)) turns the auxiliary
// chain into one whose absorption time from the start state is exactly
// E(up) of Theorem 2's proof.
func TestExpectedUpStepViaFundamentalMatrix(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		m := avail.RandomMarkov3(rng.New(seed))
		puu := m.P(avail.Up, avail.Up)
		pur := m.P(avail.Up, avail.Reclaimed)
		pru := m.P(avail.Reclaimed, avail.Up)
		prr := m.P(avail.Reclaimed, avail.Reclaimed)
		// h(start) = P+, h(r) = P(reach U before D | r) = Pru/(1-Prr),
		// h(U) = 1. Conditioned transitions: p~(s,s') = p(s,s') h(s')/h(s).
		hStart := PPlus(m)
		hr := 0.0
		if prr < 1 {
			hr = pru / (1 - prr)
		}
		if hStart <= 0 || hr <= 0 {
			continue // conditioning undefined; paper-rule chains never hit this
		}
		// States: 0 = start, 1 = r, 2 = U (absorbing).
		aux := markov.MustChain([][]float64{
			{0, pur * hr / hStart, puu * 1 / hStart},
			{0, prr, pru / hr * 1}, // p~(r,r)=prr·hr/hr=prr; p~(r,U)=pru/hr
			{0, 0, 1},
		})
		abs, err := aux.Absorb(map[int]bool{2: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		steps, err := abs.ExpectedStepsToAbsorption(0)
		if err != nil {
			t.Fatal(err)
		}
		want := ExpectedUpStep(m)
		if math.Abs(steps-want) > 1e-9 {
			t.Fatalf("seed %d: fundamental-matrix E(up) %v vs closed form %v",
				seed, steps, want)
		}
	}
}
