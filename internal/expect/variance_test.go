package expect

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/avail"
	"repro/internal/rng"
)

func TestVarianceUpStepNoReclaimPath(t *testing.T) {
	// Without u->r->u detours every step is exactly one slot: variance 0.
	m := avail.MustMarkov3([3][3]float64{
		{0.9, 0.0, 0.1},
		{0.1, 0.8, 0.1},
		{0.3, 0.3, 0.4},
	})
	if v := VarianceUpStep(m); v != 0 {
		t.Fatalf("variance = %v, want 0", v)
	}
	if v := VarianceSlots(m, 50); v != 0 {
		t.Fatalf("VarianceSlots = %v, want 0", v)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(seed uint64, wRaw uint16) bool {
		m := avail.RandomMarkov3(rng.New(seed))
		w := float64(wRaw%200) + 1
		return VarianceUpStep(m) >= 0 && VarianceSlots(m, w) >= 0 &&
			StdDevSlots(m, w) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceSlotsBaseCases(t *testing.T) {
	m := avail.RandomMarkov3(rng.New(7))
	if VarianceSlots(m, 1) != 0 || VarianceSlots(m, 0.5) != 0 {
		t.Fatal("W <= 1 must have zero variance")
	}
	// Linearity in W-1.
	v2 := VarianceSlots(m, 2)
	v11 := VarianceSlots(m, 11)
	if math.Abs(v11-10*v2) > 1e-9 {
		t.Fatalf("variance not linear: Var(2)=%v Var(11)=%v", v2, v11)
	}
}

func TestVarianceMatchesMonteCarlo(t *testing.T) {
	// Simulate conditioned walks and compare the empirical variance of the
	// completion time with the closed form.
	for seed := uint64(1); seed <= 3; seed++ {
		m := avail.RandomMarkov3(rng.New(seed))
		const w = 15
		analyticVar := VarianceSlots(m, w)
		r := rng.New(seed + 500)
		var sum, sq float64
		successes := 0
		for trial := 0; trial < 80000; trial++ {
			p := m.NewProcess(r, avail.Up)
			p.Next()
			up, slots, ok := 1, 1, true
			for up < w {
				slots++
				switch p.Next() {
				case avail.Up:
					up++
				case avail.Down:
					ok = false
				}
				if !ok {
					break
				}
			}
			if ok {
				sum += float64(slots)
				sq += float64(slots) * float64(slots)
				successes++
			}
		}
		if successes < 5000 {
			t.Fatalf("seed %d: too few successful walks", seed)
		}
		mean := sum / float64(successes)
		empVar := sq/float64(successes) - mean*mean
		// Variances need loose tolerances; compare with 15% relative slack
		// plus an absolute floor for tiny variances.
		if diff := math.Abs(empVar - analyticVar); diff > 0.15*analyticVar+0.05 {
			t.Fatalf("seed %d: empirical var %v vs analytic %v", seed, empVar, analyticVar)
		}
	}
}

func TestStdDevSlotsIsSqrt(t *testing.T) {
	m := avail.RandomMarkov3(rng.New(11))
	v := VarianceSlots(m, 30)
	if math.Abs(StdDevSlots(m, 30)-math.Sqrt(v)) > 1e-12 {
		t.Fatal("StdDevSlots != sqrt(VarianceSlots)")
	}
}
