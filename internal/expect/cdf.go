package expect

import (
	"repro/internal/avail"
)

// CompletionCDF computes the full distribution of the Section 5 walk, going
// beyond the paper's expectation: starting from an UP slot (which counts as
// the first of w required UP slots), it returns F where F[t] is the
// probability that the workload has accumulated its w UP slots within the
// first t slots without the processor ever entering DOWN. F[0] = 0 and
// F has length horizon+1.
//
// The limit F[horizon→∞] is the success probability (P+)^(w−1) of Theorem
// 2's proof, and the conditional mean Σ t·ΔF / F∞ equals E(w) — both are
// enforced by tests. The CDF enables deadline-aware scheduling policies
// (what is the probability this worker makes the barrier?) that the paper's
// expectation-only machinery cannot express.
func CompletionCDF(m *avail.Markov3, w int, horizon int) []float64 {
	f := make([]float64, horizon+1)
	if horizon < 1 {
		return f
	}
	if w <= 1 {
		// Completed within the very first slot.
		for t := 1; t <= horizon; t++ {
			f[t] = 1
		}
		return f
	}
	puu := m.P(avail.Up, avail.Up)
	pur := m.P(avail.Up, avail.Reclaimed)
	pru := m.P(avail.Reclaimed, avail.Up)
	prr := m.P(avail.Reclaimed, avail.Reclaimed)

	// probUp[k] / probRe[k]: probability of being alive at the current slot
	// in state UP/RECLAIMED with k UP slots accumulated (k < w).
	probUp := make([]float64, w)
	probRe := make([]float64, w)
	nextUp := make([]float64, w)
	nextRe := make([]float64, w)
	probUp[1] = 1 // slot 1: UP, one unit accumulated
	var done float64
	for t := 2; t <= horizon; t++ {
		for k := range nextUp {
			nextUp[k], nextRe[k] = 0, 0
		}
		var completedNow float64
		for k := 1; k < w; k++ {
			pu, pr := probUp[k], probRe[k]
			if pu == 0 && pr == 0 {
				continue
			}
			gain := pu*puu + pr*pru // moves to UP: accumulates one unit
			if k+1 == w {
				completedNow += gain
			} else {
				nextUp[k+1] += gain
			}
			nextRe[k] += pu*pur + pr*prr
			// Transitions to DOWN leave the system (failure).
		}
		done += completedNow
		probUp, nextUp = nextUp, probUp
		probRe, nextRe = nextRe, probRe
		f[t] = done
	}
	return f
}

// SuccessProbability returns (P+)^(w−1): the probability that a processor
// starting UP accumulates w UP slots before ever entering DOWN (the
// normalizing constant of Theorem 2's conditional expectation).
func SuccessProbability(m *avail.Markov3, w int) float64 {
	if w <= 1 {
		return 1
	}
	pp := PPlus(m)
	out := 1.0
	for i := 1; i < w; i++ {
		out *= pp
	}
	return out
}

// DeadlineProbability returns the probability that a workload of w UP slots,
// started in an UP slot, completes within d slots without a crash — the
// quantity a deadline-aware scheduler compares across processors.
func DeadlineProbability(m *avail.Markov3, w, d int) float64 {
	if d < 1 {
		return 0
	}
	cdf := CompletionCDF(m, w, d)
	return cdf[d]
}
