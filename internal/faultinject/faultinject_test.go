package faultinject

import (
	"errors"
	"testing"
	"time"
)

// TestNilPlanInjectsNothing pins the hot-path contract: a nil plan (the
// production default) injects no faults and uses the real sleeper.
func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if err := p.InstanceFault(3, 1, 0); err != nil {
		t.Fatalf("nil plan injected instance fault: %v", err)
	}
	if err := p.CheckpointFault(0); err != nil {
		t.Fatalf("nil plan injected checkpoint fault: %v", err)
	}
	if p.SleepFn() == nil {
		t.Fatal("nil plan returned nil sleeper")
	}
}

// TestTransientFaultsDeterministic pins that the fault verdict for an
// instance depends only on (seed, chunk, trial) — same answer on every
// call, in any order, which is what makes fault plans worker-count safe.
func TestTransientFaultsDeterministic(t *testing.T) {
	a := TransientInstanceFaults(42, 0.5, 2)
	b := TransientInstanceFaults(42, 0.5, 2)
	for chunk := 0; chunk < 20; chunk++ {
		for trial := 0; trial < 3; trial++ {
			for attempt := 0; attempt < 4; attempt++ {
				ea := a(chunk, trial, attempt)
				eb := b(chunk, trial, attempt)
				if (ea == nil) != (eb == nil) {
					t.Fatalf("verdict not deterministic at (%d,%d,%d): %v vs %v", chunk, trial, attempt, ea, eb)
				}
			}
		}
	}
}

// TestTransientFaultsClearAfterBudget pins the transient shape: an instance
// that fails attempt 0 must succeed from attempt `failures` on, so a retry
// budget >= failures always recovers it.
func TestTransientFaultsClearAfterBudget(t *testing.T) {
	const failures = 2
	hook := TransientInstanceFaults(7, 0.9, failures)
	faulted := 0
	for chunk := 0; chunk < 50; chunk++ {
		if hook(chunk, 0, 0) == nil {
			continue
		}
		faulted++
		for attempt := 0; attempt < failures; attempt++ {
			if hook(chunk, 0, attempt) == nil {
				t.Fatalf("chunk %d recovered early at attempt %d", chunk, attempt)
			}
		}
		if err := hook(chunk, 0, failures); err != nil {
			t.Fatalf("chunk %d still failing past its budget: %v", chunk, err)
		}
	}
	if faulted == 0 {
		t.Fatal("rate 0.9 over 50 chunks injected zero faults")
	}
}

// TestTransientFaultsRateZeroAndOne pins the rate extremes.
func TestTransientFaultsRateZeroAndOne(t *testing.T) {
	never := TransientInstanceFaults(1, 0, 1)
	always := TransientInstanceFaults(1, 1.0, 1)
	for chunk := 0; chunk < 20; chunk++ {
		if err := never(chunk, 0, 0); err != nil {
			t.Fatalf("rate 0 injected a fault: %v", err)
		}
		if always(chunk, 0, 0) == nil {
			t.Fatalf("rate 1 skipped chunk %d", chunk)
		}
	}
}

// TestPersistentInstanceFault pins that exactly the chosen instance fails,
// at every attempt.
func TestPersistentInstanceFault(t *testing.T) {
	hook := PersistentInstanceFault(3, 1)
	for attempt := 0; attempt < 5; attempt++ {
		if hook(3, 1, attempt) == nil {
			t.Fatalf("target instance recovered at attempt %d", attempt)
		}
	}
	if err := hook(3, 0, 0); err != nil {
		t.Fatalf("non-target trial faulted: %v", err)
	}
	if err := hook(2, 1, 0); err != nil {
		t.Fatalf("non-target chunk faulted: %v", err)
	}
}

// TestCheckpointFailures pins the sequence-selective checkpoint fault hook.
func TestCheckpointFailures(t *testing.T) {
	hook := CheckpointFailures(0, 2)
	for seq, wantFail := range map[int]bool{0: true, 1: false, 2: true, 3: false} {
		if got := hook(seq) != nil; got != wantFail {
			t.Fatalf("seq %d: fail=%v, want %v", seq, got, wantFail)
		}
	}
}

// TestPlanHooks pins the nil-tolerant accessor plumbing on a populated plan.
func TestPlanHooks(t *testing.T) {
	slept := time.Duration(0)
	p := &Plan{
		CrashAfterChunks: 3,
		Instance:         PersistentInstanceFault(1, 0),
		Checkpoint:       CheckpointFailures(1),
		Sleep:            func(d time.Duration) { slept += d },
	}
	if p.InstanceFault(1, 0, 0) == nil {
		t.Fatal("instance hook not consulted")
	}
	if p.CheckpointFault(1) == nil {
		t.Fatal("checkpoint hook not consulted")
	}
	p.SleepFn()(5 * time.Millisecond)
	if slept != 5*time.Millisecond {
		t.Fatalf("sleep override not used: slept %v", slept)
	}
	if !errors.Is(ErrCommitterCrash, ErrCommitterCrash) {
		t.Fatal("sentinel lost identity")
	}
}
