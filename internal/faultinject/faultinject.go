// Package faultinject provides deterministic fault injection for sweep
// crash-safety tests. Every injected fault is a pure function of where the
// work sits in the sweep (chunk, trial, attempt) — never of wall time, RNG
// state shared with the simulation, or worker identity — so a fault plan
// produces the same failures for any worker count and on every rerun. That
// determinism is what lets the resume property tests assert bit-identical
// output: the injected faults are part of the reproducible schedule, not
// noise on top of it.
package faultinject

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/rng"
)

// ErrCommitterCrash marks a sweep abort injected at a chunk-commit boundary
// by Plan.CrashAfterChunks. Tests (and the volabench -crash-after flag)
// match it with errors.Is to distinguish a simulated process death from a
// real failure.
var ErrCommitterCrash = errors.New("faultinject: committer crash injected")

// Plan describes the faults to inject into one sweep run. The zero value
// (and a nil *Plan) injects nothing.
type Plan struct {
	// CrashAfterChunks, when > 0, kills the sweep committer immediately
	// after it has committed exactly that many chunks — after the commit is
	// merged but before any checkpoint of it is written, mimicking a
	// process dying at the worst point of a commit boundary. The sweep
	// returns an error wrapping ErrCommitterCrash.
	CrashAfterChunks int

	// Instance, when non-nil, is consulted before every instance-run
	// attempt. Returning a non-nil error makes that attempt fail with it
	// instead of running the simulation. attempt counts from 0 and
	// increments across retries of the same (chunk, trial).
	Instance func(chunk, trial, attempt int) error

	// Checkpoint, when non-nil, is consulted before each checkpoint write.
	// seq counts the sweep's checkpoint attempts from 0. Returning a
	// non-nil error makes that write fail with it, exercising the
	// degraded continue-without-checkpoint path.
	Checkpoint func(seq int) error

	// Sleep, when non-nil, replaces time.Sleep for retry backoff so tests
	// can observe or collapse the waits.
	Sleep func(d time.Duration)
}

// InstanceFault returns the injected error for one attempt, tolerating a
// nil plan or nil hook.
func (p *Plan) InstanceFault(chunk, trial, attempt int) error {
	if p == nil || p.Instance == nil {
		return nil
	}
	return p.Instance(chunk, trial, attempt)
}

// CheckpointFault returns the injected error for one checkpoint write,
// tolerating a nil plan or nil hook.
func (p *Plan) CheckpointFault(seq int) error {
	if p == nil || p.Checkpoint == nil {
		return nil
	}
	return p.Checkpoint(seq)
}

// SleepFn returns the sleep function to use for retry backoff.
func (p *Plan) SleepFn() func(time.Duration) {
	if p == nil || p.Sleep == nil {
		return time.Sleep
	}
	return p.Sleep
}

// hash maps (seed, chunk, trial) to a uniform uint64 via splitmix64 seed
// expansion — stateless, so the verdict for a given instance is independent
// of evaluation order.
func hash(seed uint64, chunk, trial int) uint64 {
	s := rng.SplitMix64(seed ^ uint64(chunk)*0x9E3779B97F4A7C15 ^ uint64(trial)*0xBF58476D1CE4E5B9)
	return s.Next()
}

// TransientInstanceFaults returns an Instance hook that fails the first
// `failures` attempts of a deterministic `rate` fraction of instances, then
// lets retries succeed. With MaxRetries >= failures the sweep output is
// bit-identical to a fault-free run.
func TransientInstanceFaults(seed uint64, rate float64, failures int) func(chunk, trial, attempt int) error {
	return func(chunk, trial, attempt int) error {
		if attempt >= failures {
			return nil
		}
		if float64(hash(seed, chunk, trial))/float64(1<<63)/2 >= rate {
			return nil
		}
		return fmt.Errorf("faultinject: transient fault (chunk %d, trial %d, attempt %d)", chunk, trial, attempt)
	}
}

// PersistentInstanceFault returns an Instance hook that fails every attempt
// of exactly one (chunk, trial) instance, for exercising the
// retry-exhausted record-and-continue path.
func PersistentInstanceFault(chunk, trial int) func(chunk, trial, attempt int) error {
	return func(c, t, _ int) error {
		if c == chunk && t == trial {
			return fmt.Errorf("faultinject: persistent fault (chunk %d, trial %d)", c, t)
		}
		return nil
	}
}

// PersistentInstanceFaultUntil returns an Instance hook that fails the
// first `failures` attempts of exactly one (chunk, trial) instance, then
// lets it succeed — for pinning retry/backoff behaviour on a single
// predictable victim.
func PersistentInstanceFaultUntil(chunk, trial, failures int) func(chunk, trial, attempt int) error {
	return func(c, t, attempt int) error {
		if c == chunk && t == trial && attempt < failures {
			return fmt.Errorf("faultinject: fault %d/%d (chunk %d, trial %d)", attempt+1, failures, c, t)
		}
		return nil
	}
}

// CheckpointFailures returns a Checkpoint hook that fails every write whose
// sequence number is in seqs, for exercising the degraded
// continue-without-checkpoint path.
func CheckpointFailures(seqs ...int) func(seq int) error {
	bad := make(map[int]bool, len(seqs))
	for _, s := range seqs {
		bad[s] = true
	}
	return func(seq int) error {
		if bad[seq] {
			return fmt.Errorf("faultinject: checkpoint write %d failed", seq)
		}
		return nil
	}
}
