package workload

import (
	"testing"

	"repro/internal/avail"
	"repro/internal/rng"
)

func TestPaperGridShape(t *testing.T) {
	grid := PaperGrid()
	if len(grid) != 120 {
		t.Fatalf("grid has %d cells, want 120 (4x3x10)", len(grid))
	}
	seen := map[Cell]bool{}
	for _, c := range grid {
		if seen[c] {
			t.Fatalf("duplicate cell %v", c)
		}
		seen[c] = true
		switch c.N {
		case 5, 10, 20, 40:
		default:
			t.Fatalf("bad n %d", c.N)
		}
		switch c.Ncom {
		case 5, 10, 20:
		default:
			t.Fatalf("bad ncom %d", c.Ncom)
		}
		if c.Wmin < 1 || c.Wmin > 10 {
			t.Fatalf("bad wmin %d", c.Wmin)
		}
	}
}

func TestWminSlice(t *testing.T) {
	s := WminSlice(7)
	if len(s) != 12 {
		t.Fatalf("wmin slice has %d cells, want 12 (4x3)", len(s))
	}
	for _, c := range s {
		if c.Wmin != 7 {
			t.Fatalf("cell %v leaked into slice", c)
		}
	}
}

func TestGenerateFollowsPaperRules(t *testing.T) {
	r := rng.New(81)
	cell := Cell{N: 20, Ncom: 10, Wmin: 3}
	scn := Generate(r, cell, Options{})
	if err := scn.Platform.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := scn.Params.Validate(); err != nil {
		t.Fatal(err)
	}
	if scn.Platform.P() != 20 {
		t.Fatalf("P = %d, want 20", scn.Platform.P())
	}
	if scn.Params.M != 20 || scn.Params.Ncom != 10 {
		t.Fatalf("params %+v", scn.Params)
	}
	if scn.Params.Tdata != 3 || scn.Params.Tprog != 15 {
		t.Fatalf("Tdata=%d Tprog=%d, want 3/15", scn.Params.Tdata, scn.Params.Tprog)
	}
	if scn.Params.Iterations != 10 || scn.Params.MaxReplicas != 2 {
		t.Fatalf("defaults wrong: %+v", scn.Params)
	}
	for _, p := range scn.Platform.Processors {
		if p.W < 3 || p.W > 30 {
			t.Fatalf("speed %d outside [wmin, 10*wmin]", p.W)
		}
	}
}

func TestGenerateContentionScale(t *testing.T) {
	r := rng.New(82)
	scn := Generate(r, ContentionCell(), Options{CommScale: 5})
	if scn.Params.Tdata != 5 || scn.Params.Tprog != 25 {
		t.Fatalf("contention x5: Tdata=%d Tprog=%d", scn.Params.Tdata, scn.Params.Tprog)
	}
	scn10 := Generate(r, ContentionCell(), Options{CommScale: 10})
	if scn10.Params.Tdata != 10 || scn10.Params.Tprog != 50 {
		t.Fatalf("contention x10: Tdata=%d Tprog=%d", scn10.Params.Tdata, scn10.Params.Tprog)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cell := Cell{N: 5, Ncom: 5, Wmin: 2}
	a := Generate(rng.New(83), cell, Options{})
	b := Generate(rng.New(83), cell, Options{})
	for i := range a.Platform.Processors {
		if a.Platform.Processors[i].W != b.Platform.Processors[i].W {
			t.Fatal("same seed produced different platforms")
		}
	}
}

func TestTrialReproducibleAndIndependent(t *testing.T) {
	scn := Generate(rng.New(84), Cell{N: 5, Ncom: 5, Wmin: 1}, Options{P: 4})
	rec := func(seed uint64) []string {
		procs := scn.Trial(rng.New(seed))
		out := make([]string, len(procs))
		for i, p := range procs {
			out[i] = avail.Record(p, 200).String()
		}
		return out
	}
	a1, a2, b := rec(1), rec(1), rec(2)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same trial seed produced different trajectories")
		}
	}
	same := 0
	for i := range a1 {
		if a1[i] == b[i] {
			same++
		}
	}
	if same == len(a1) {
		t.Fatal("different trial seeds produced identical trajectories")
	}
}

// TestTrialPoolMatchesTrial pins the pooling contract: a pooled trial must
// replay the exact trajectories the allocating Trial produces, across
// repeated reuse and across scenarios of different platform sizes.
func TestTrialPoolMatchesTrial(t *testing.T) {
	small := Generate(rng.New(90), Cell{N: 5, Ncom: 5, Wmin: 1}, Options{P: 3})
	large := Generate(rng.New(91), Cell{N: 10, Ncom: 5, Wmin: 2}, Options{P: 9})
	var pool TrialPool
	for trial, scn := range []*Scenario{small, large, small, large, large} {
		seed := uint64(100 + trial)
		want := scn.Trial(rng.New(seed))
		got := pool.Trial(scn, rng.New(seed))
		if len(got) != scn.Platform.P() {
			t.Fatalf("trial %d: %d procs for %d processors", trial, len(got), scn.Platform.P())
		}
		for i := range want {
			w := avail.Record(want[i], 300).String()
			g := avail.Record(got[i], 300).String()
			if w != g {
				t.Fatalf("trial %d processor %d: pooled trajectory diverged\nwant %s\ngot  %s", trial, i, w, g)
			}
		}
	}
}
