// Package workload generates the experimental scenarios of Section 7 of the
// paper and their contention-prone variants (Table 3).
//
// A scenario fixes a platform (20 processors with random speeds and random
// Markov availability) and the communication parameters derived from wmin:
// Tdata = wmin (the fastest processor has a compute/communication ratio of
// 1) and Tprog = 5·wmin. A grid cell is one (n, ncom, wmin) combination of
// Table 1; the full paper grid crosses 4 × 3 × 10 cells with 247 scenarios
// and 10 trials each.
package workload

import (
	"fmt"

	"repro/internal/avail"
	"repro/internal/platform"
	"repro/internal/rng"
)

// Cell is one parameter combination of Table 1.
type Cell struct {
	// N is the number of tasks per iteration (the paper's n).
	N int
	// Ncom is the master's concurrent-transfer budget.
	Ncom int
	// Wmin scales task durations: w_q ∈ U[wmin, 10·wmin].
	Wmin int
}

// String renders the cell compactly.
func (c Cell) String() string {
	return fmt.Sprintf("n=%d ncom=%d wmin=%d", c.N, c.Ncom, c.Wmin)
}

// PaperGrid returns the 120 cells of Table 1:
// n ∈ {5,10,20,40} × ncom ∈ {5,10,20} × wmin ∈ 1..10.
func PaperGrid() []Cell {
	var out []Cell
	for _, n := range []int{5, 10, 20, 40} {
		for _, ncom := range []int{5, 10, 20} {
			for wmin := 1; wmin <= 10; wmin++ {
				out = append(out, Cell{N: n, Ncom: ncom, Wmin: wmin})
			}
		}
	}
	return out
}

// WminSlice returns the cells of the grid with the given wmin (the x-axis
// grouping of Figure 2).
func WminSlice(wmin int) []Cell {
	var out []Cell
	for _, c := range PaperGrid() {
		if c.Wmin == wmin {
			out = append(out, c)
		}
	}
	return out
}

// Scenario is one concrete experimental setting: a platform plus run
// parameters. Trials of a scenario share the platform and differ only in the
// availability trajectories (the paper varies the transition seed).
type Scenario struct {
	// Name labels the scenario for reports.
	Name string
	// Platform is the drawn platform (speeds + availability models).
	Platform *platform.Platform
	// Params are the run parameters (m, ncom, Tprog, Tdata, iterations...).
	Params platform.Params
}

// Options tunes scenario generation away from the paper's defaults.
type Options struct {
	// P is the platform size (default 20, the paper's value).
	P int
	// Iterations is the number of iterations per run (default 10).
	Iterations int
	// CommScale multiplies Tdata and Tprog (1 = paper base; 5 and 10 give
	// the contention-prone scenarios of Table 3).
	CommScale int
	// MaxReplicas caps extra copies per task (default 2).
	MaxReplicas int
	// MaxSlots caps run length (default platform.DefaultMaxSlots).
	MaxSlots int
}

// DefaultProcessors is the paper's platform size, the default for
// Options.P. Exported so callers that must anticipate the generated
// platform size (e.g. trace-file validation) cannot drift from it.
const DefaultProcessors = 20

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.P == 0 {
		o.P = DefaultProcessors
	}
	if o.Iterations == 0 {
		o.Iterations = 10
	}
	if o.CommScale == 0 {
		o.CommScale = 1
	}
	if o.MaxReplicas == 0 {
		o.MaxReplicas = 2
	}
	return o
}

// Generate draws one scenario for a grid cell using the rules of Section 7:
// p processors with w_q ∈ U[wmin, 10·wmin] and paper-rule Markov models,
// Tdata = wmin·CommScale, Tprog = 5·wmin·CommScale.
func Generate(r *rng.PCG, cell Cell, opt Options) *Scenario {
	opt = opt.withDefaults()
	pl := platform.RandomPlatform(r, opt.P, cell.Wmin)
	return &Scenario{
		Name:     cell.String(),
		Platform: pl,
		Params: platform.Params{
			M:           cell.N,
			Iterations:  opt.Iterations,
			Ncom:        cell.Ncom,
			Tprog:       5 * cell.Wmin * opt.CommScale,
			Tdata:       cell.Wmin * opt.CommScale,
			MaxReplicas: opt.MaxReplicas,
			MaxSlots:    opt.MaxSlots,
		},
	}
}

// Trial materializes the availability trajectories for one trial of a
// scenario: one Markov process per processor, each seeded from an
// independent split of r, started from the model's stationary distribution.
func (s *Scenario) Trial(r *rng.PCG) []avail.Process {
	procs := make([]avail.Process, s.Platform.P())
	for i, p := range s.Platform.Processors {
		stream := r.Split()
		procs[i] = p.Avail.NewProcess(stream, p.Avail.SampleStationary(stream))
	}
	return procs
}

// TrialPool owns reusable trial scratch: the availability processes of one
// trial, their per-processor RNG streams, and the Process slice handed to
// the engine. Tight loops that materialize many trials on one goroutine
// (sweep workers) reuse one pool so the per-trial steady state allocates
// nothing; the trajectories produced are bit-identical to Scenario.Trial's.
// A TrialPool must not be shared between goroutines, and the slice returned
// by Trial is only valid until the pool's next Trial call.
type TrialPool struct {
	procs   []avail.Process
	streams []rng.PCG
	states  []avail.Markov3Process
}

// Trial is Scenario.Trial on pooled storage: it consumes r exactly as
// Scenario.Trial would (one Split per processor, one stationary draw per
// stream), so the resulting trajectories are identical draw for draw.
func (tp *TrialPool) Trial(s *Scenario, r *rng.PCG) []avail.Process {
	p := s.Platform.P()
	if cap(tp.procs) < p {
		tp.procs = make([]avail.Process, p)
		tp.streams = make([]rng.PCG, p)
		tp.states = make([]avail.Markov3Process, p)
	}
	tp.procs = tp.procs[:p]
	tp.streams = tp.streams[:p]
	tp.states = tp.states[:p]
	for i, proc := range s.Platform.Processors {
		stream := &tp.streams[i]
		r.SplitInto(stream)
		tp.states[i].Reset(proc.Avail, stream, proc.Avail.SampleStationary(stream))
		tp.procs[i] = &tp.states[i]
	}
	return tp.procs
}

// ContentionCell is the Table 3 setting: n=20, ncom=5, wmin=1.
func ContentionCell() Cell { return Cell{N: 20, Ncom: 5, Wmin: 1} }
