// Package volatile is the public API of this reproduction of
// "Scheduling Parallel Iterative Applications on Volatile Resources"
// (Casanova, Dufossé, Robert, Vivien — IPDPS 2011 / LIP RR-2010-31).
//
// It simulates master-worker iterative applications on processors that
// alternate between UP, RECLAIMED and DOWN states, under a bounded
// multi-port communication model (the master sustains at most ncom
// simultaneous transfers), and implements the paper's seventeen scheduling
// heuristics: the random family (uniform + four reliability weights, each
// optionally speed-scaled) and the greedy family (MCT, EMCT, LW, UD and
// their contention-corrected * variants).
//
// Typical use:
//
//	scn := volatile.NewScenario(42, volatile.Cell{Tasks: 20, Ncom: 10, Wmin: 3},
//	    volatile.ScenarioOptions{})
//	res, err := scn.Run("emct*", 1)
//	// res.Makespan is the number of slots needed for 10 iterations.
//
// The sweep API (RunSweep, Table2Config, Figure2Config, Table3Config)
// regenerates the paper's Table 2, Figure 2 and Table 3.
package volatile

import (
	"fmt"
	"strings"

	"repro/internal/avail"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Cell is one experimental parameter combination of the paper's Table 1.
type Cell struct {
	// Tasks is the number of tasks per iteration (the paper's n).
	Tasks int
	// Ncom is the master's concurrent-transfer budget.
	Ncom int
	// Wmin scales task durations: processor speeds are drawn uniformly from
	// [Wmin, 10·Wmin]; Tdata = Wmin and Tprog = 5·Wmin (times CommScale).
	Wmin int
}

// String renders the cell compactly.
func (c Cell) String() string {
	return fmt.Sprintf("n=%d ncom=%d wmin=%d", c.Tasks, c.Ncom, c.Wmin)
}

// PaperGrid returns the 120 cells of the paper's Table 1.
func PaperGrid() []Cell {
	cells := workload.PaperGrid()
	out := make([]Cell, len(cells))
	for i, c := range cells {
		out[i] = Cell{Tasks: c.N, Ncom: c.Ncom, Wmin: c.Wmin}
	}
	return out
}

// ContentionCell returns the Table 3 setting (n=20, ncom=5, wmin=1), to be
// combined with ScenarioOptions.CommScale 5 or 10.
func ContentionCell() Cell { return Cell{Tasks: 20, Ncom: 5, Wmin: 1} }

// ScenarioOptions tunes scenario generation. The zero value reproduces the
// paper's settings: 20 processors, 10 iterations, communication scale 1,
// up to 2 extra replicas per task.
type ScenarioOptions struct {
	// Processors is the platform size (default 20).
	Processors int
	// Iterations is the number of iterations per run (default 10).
	Iterations int
	// CommScale multiplies Tdata and Tprog (default 1; Table 3 uses 5, 10).
	CommScale int
	// MaxReplicas caps extra task copies: 0 means the paper default of 2;
	// negative disables replication entirely.
	MaxReplicas int
	// MaxSlots caps run length (0 = a generous default); capped runs are
	// reported as censored.
	MaxSlots int
}

// Validate rejects option values scenario generation cannot honor. The
// zero value (the paper's defaults) is always valid; a negative MaxReplicas
// is the documented replication-disable switch, so it is valid too. Sweeps
// validate their Options up front; NewScenario has no error path, so
// callers overriding Processors (the volunteer-grid regime, P = 1k-100k)
// should Validate first.
func (o ScenarioOptions) Validate() error {
	if o.Processors < 0 {
		return fmt.Errorf("volatile: Processors %d: must be >= 0 (0 = paper default of 20)", o.Processors)
	}
	if o.Iterations < 0 {
		return fmt.Errorf("volatile: Iterations %d: must be >= 0 (0 = paper default of 10)", o.Iterations)
	}
	if o.CommScale < 0 {
		return fmt.Errorf("volatile: CommScale %d: must be >= 0 (0 = paper default of 1)", o.CommScale)
	}
	if o.MaxSlots < 0 {
		return fmt.Errorf("volatile: MaxSlots %d: must be >= 0 (0 = default cap)", o.MaxSlots)
	}
	return nil
}

func (o ScenarioOptions) toWorkload() workload.Options {
	return workload.Options{
		P:           o.Processors,
		Iterations:  o.Iterations,
		CommScale:   o.CommScale,
		MaxReplicas: o.MaxReplicas,
		MaxSlots:    o.MaxSlots,
	}
}

// Heuristics lists every implemented heuristic name in the paper's Table 2
// order: emct, emct*, mct, mct*, ud*, ud, lw*, lw, random1w..random3w,
// random3..random2, random.
func Heuristics() []string { return core.Names() }

// GreedyHeuristics lists the greedy family (the curves of Figure 2 plus
// their uncorrected counterparts).
func GreedyHeuristics() []string { return core.GreedyNames() }

// Mode selects the engine's time base: ModeSlot ticks every slot (the
// reference semantics and the default), ModeEvent samples availability at
// sojourn granularity and skips quiet spans. See the sim package for the
// equivalence contract between the two.
type Mode = sim.Mode

// Engine time bases re-exported for mode selection.
const (
	ModeSlot  = sim.ModeSlot
	ModeEvent = sim.ModeEvent
)

// ParseMode parses a mode name ("slot" or "event"), failing with the list
// of valid names.
func ParseMode(s string) (Mode, error) { return sim.ParseMode(s) }

// ModeNames returns the valid mode names.
func ModeNames() []string { return sim.ModeNames() }

// Event kinds re-exported for event-stream consumers.
const (
	EvProgramStart  = sim.EvProgramStart
	EvDataStart     = sim.EvDataStart
	EvComputeStart  = sim.EvComputeStart
	EvTaskComplete  = sim.EvTaskComplete
	EvCopyCancelled = sim.EvCopyCancelled
	EvCrash         = sim.EvCrash
	EvIterationDone = sim.EvIterationDone
)

// Aliased result types (defined in the simulation engine).
type (
	// RunResult is the outcome of one simulation run.
	RunResult = sim.Result
	// RunStats carries the resource counters of a run.
	RunStats = sim.Stats
	// Event is an engine occurrence (for verbose timelines).
	Event = sim.Event
	// SlotReport is the per-slot observer payload.
	SlotReport = sim.SlotReport
	// AllocationPolicy decides a moldable application's tasks-per-iteration
	// count at every iteration boundary (see RunAlloc and MoldableSweep).
	AllocationPolicy = sim.AllocationPolicy
)

// ParseAllocPolicy builds an allocation policy from its spec string
// ("fixed", "maximum-iters", "split-into[:parts]", "reshape[:step]"). Each
// call returns a fresh instance; stateful policies (reshape) reset at every
// run boundary, so one instance may serve many sequential runs but must not
// be shared between goroutines.
func ParseAllocPolicy(spec string) (AllocationPolicy, error) {
	return sim.ParseAllocPolicy(spec)
}

// AllocPolicySpecs lists the accepted allocation-policy spec forms.
func AllocPolicySpecs() []string { return sim.AllocPolicySpecs() }

// Scenario is a concrete experimental setting: a randomly drawn platform
// plus run parameters. Runs on the same Scenario with the same trial seed
// see identical availability trajectories, so heuristics can be compared
// instance by instance (the paper's dfb metric).
type Scenario struct {
	inner *workload.Scenario
	// traces interns parsed vectors and fitted models for trace-driven runs
	// (see trace.go); it is safe for concurrent use by sweep workers.
	traces traceCache
}

// NewScenario draws a scenario from the given seed using the generation
// rules of the paper's Section 7.
func NewScenario(seed uint64, cell Cell, opt ScenarioOptions) *Scenario {
	wo := opt.toWorkload()
	disableReplicas := wo.MaxReplicas < 0
	if disableReplicas {
		wo.MaxReplicas = 2 // placeholder; zeroed after generation
	}
	scn := workload.Generate(rng.New(seed), workload.Cell{N: cell.Tasks, Ncom: cell.Ncom, Wmin: cell.Wmin}, wo)
	if disableReplicas {
		scn.Params.MaxReplicas = 0
	}
	return &Scenario{inner: scn}
}

// Describe returns a human-readable summary of the scenario.
func (s *Scenario) Describe() string {
	var b strings.Builder
	p := s.inner.Params
	fmt.Fprintf(&b, "scenario %s: %d processors, %d iterations of %d tasks\n",
		s.inner.Name, s.inner.Platform.P(), p.Iterations, p.M)
	fmt.Fprintf(&b, "  Tprog=%d Tdata=%d ncom=%d max extra replicas=%d\n",
		p.Tprog, p.Tdata, p.Ncom, p.MaxReplicas)
	for _, proc := range s.inner.Platform.Processors {
		piU, piR, piD := proc.Avail.Stationary()
		fmt.Fprintf(&b, "  P%-2d w=%-3d piU=%.3f piR=%.3f piD=%.3f\n",
			proc.ID, proc.W, piU, piR, piD)
	}
	return b.String()
}

// Params returns the run parameters (m, ncom, Tprog, Tdata, iterations...).
func (s *Scenario) Params() platform.Params { return s.inner.Params }

// Processors returns the number of processors in the platform.
func (s *Scenario) Processors() int { return s.inner.Platform.P() }

// ProcessorSpeed returns w_i, the UP slots processor i needs per task.
func (s *Scenario) ProcessorSpeed(i int) int {
	return s.inner.Platform.Processors[i].W
}

// ProcessorModel returns the 3-state Markov availability model of
// processor i (the model informed heuristics consult, and the generator of
// its trajectories in model-driven runs).
func (s *Scenario) ProcessorModel(i int) *avail.Markov3 {
	return s.inner.Platform.Processors[i].Avail
}

// Runner wraps a reusable simulation engine plus per-trial scratch. Tight
// loops (sweeps, benchmarks) that execute many runs on one goroutine should
// create one Runner and pass it to RunWith: every engine-internal buffer
// (worker states, task tables, scheduler view, scratch, the copy pool) and
// every trial resource (availability processes, their RNG streams, trace
// replay processes) is then recycled across runs instead of reallocated.
// Results are identical to Run's. A Runner must not be shared between
// goroutines.
type Runner struct {
	r sim.Runner
	// mode is the engine time base every run on this Runner uses.
	mode Mode
	// trialRng is the pooled per-trial generator, reseeded per run.
	trialRng rng.PCG
	// trials pools the Markov availability processes of model-driven runs.
	trials workload.TrialPool
	// vprocs/vps pool the replay processes of trace-driven runs.
	vprocs []avail.VectorProcess
	vps    []avail.Process
	// scheds pools one scheduler per heuristic name. Schedulers that opt
	// into cross-run reuse (sim.PoolSafe: the whole core registry) are
	// constructed once and reused, which amortizes their internal state —
	// notably the greedy family's incremental score caches — across every
	// run this Runner executes; their RNG is reseeded per run exactly as a
	// fresh construction would seed it, so results are bit-identical.
	// Schedulers that do not opt in are rebuilt per run, as before.
	scheds map[string]*pooledSched
}

// pooledSched is one slot of the Runner's scheduler pool. pcg is the
// scheduler's stream for the current run: it is owned by the pool so it can
// be reseeded in place (the scheduler holds a pointer to it).
type pooledSched struct {
	pcg   rng.PCG
	sched sim.Scheduler // non-nil once a pool-safe instance exists
}

// pooled returns (creating if needed) the pool slot for name.
func (r *Runner) pooled(name string) *pooledSched {
	if r.scheds == nil {
		r.scheds = make(map[string]*pooledSched)
	}
	ps := r.scheds[name]
	if ps == nil {
		ps = &pooledSched{}
		r.scheds[name] = ps
	}
	return ps
}

// instance returns the slot's scheduler, constructing one on first use and
// retaining it only when it declares cross-run reuse safe. The caller must
// seed ps.pcg for the run before the scheduler's first Pick (construction
// itself never draws).
func (ps *pooledSched) instance(name string) (sim.Scheduler, error) {
	if ps.sched != nil {
		return ps.sched, nil
	}
	s, err := core.New(name, &ps.pcg)
	if err != nil {
		return nil, err
	}
	if sim.PoolSafe(s) {
		ps.sched = s
	}
	return s, nil
}

// NewRunner returns a reusable Runner; its first run sizes the buffers.
func NewRunner() *Runner { return &Runner{} }

// SetMode selects the engine time base for every subsequent run on this
// Runner (default ModeSlot). The trial RNG discipline is identical in both
// modes — the same trial seed draws the same platform trajectories — but
// event mode consumes the per-processor streams at sojourn rather than
// slot granularity, so Markov-driven results are distribution-equivalent,
// not bit-identical, across modes.
func (r *Runner) SetMode(m Mode) { r.mode = m }

// Run executes the named heuristic on one trial of the scenario. The trial
// seed determines the availability trajectories and any heuristic
// randomness; the same (scenario, trialSeed) pair confronts every heuristic
// with the same world.
func (s *Scenario) Run(heuristic string, trialSeed uint64) (*RunResult, error) {
	return s.run(nil, heuristic, trialSeed, ModeSlot, nil, nil, nil)
}

// RunMode is Run under an explicit engine time base.
func (s *Scenario) RunMode(heuristic string, trialSeed uint64, mode Mode) (*RunResult, error) {
	return s.run(nil, heuristic, trialSeed, mode, nil, nil, nil)
}

// RunWith is Run on a reusable Runner (nil falls back to a one-shot
// engine). The run uses the Runner's mode (SetMode).
func (s *Scenario) RunWith(r *Runner, heuristic string, trialSeed uint64) (*RunResult, error) {
	mode := ModeSlot
	if r != nil {
		mode = r.mode
	}
	return s.run(r, heuristic, trialSeed, mode, nil, nil, nil)
}

// RunAlloc runs the moldable variant of the application: the allocation
// policy named by spec decides each iteration's task count (the scenario's
// Tasks value seeds the policy as the application's natural shape). With
// spec "fixed" the result is bit-identical to Run. The result's
// IterationTasks records the per-iteration counts.
func (s *Scenario) RunAlloc(heuristic, spec string, trialSeed uint64) (*RunResult, error) {
	pol, err := ParseAllocPolicy(spec)
	if err != nil {
		return nil, err
	}
	return s.run(nil, heuristic, trialSeed, ModeSlot, nil, nil, pol)
}

// RunAllocWith is RunAlloc on a reusable Runner under the Runner's mode,
// with a caller-held policy instance (stateful policies reset at every run
// boundary, so one instance may serve many sequential runs on one
// goroutine).
func (s *Scenario) RunAllocWith(r *Runner, heuristic string, alloc AllocationPolicy,
	trialSeed uint64) (*RunResult, error) {
	mode := ModeSlot
	if r != nil {
		mode = r.mode
	}
	return s.run(r, heuristic, trialSeed, mode, nil, nil, alloc)
}

// RunWithHooks is Run with optional per-slot observer and event callbacks.
func (s *Scenario) RunWithHooks(heuristic string, trialSeed uint64,
	observer func(*SlotReport), onEvent func(Event)) (*RunResult, error) {
	return s.run(nil, heuristic, trialSeed, ModeSlot, observer, onEvent, nil)
}

// RunModeWithHooks is RunWithHooks under an explicit engine time base.
func (s *Scenario) RunModeWithHooks(heuristic string, trialSeed uint64, mode Mode,
	observer func(*SlotReport), onEvent func(Event)) (*RunResult, error) {
	return s.run(nil, heuristic, trialSeed, mode, observer, onEvent, nil)
}

func (s *Scenario) run(r *Runner, heuristic string, trialSeed uint64, mode Mode,
	observer func(*SlotReport), onEvent func(Event), alloc AllocationPolicy) (*RunResult, error) {
	// The pooled path consumes the RNG exactly as the allocating path does
	// (Reseed mirrors New, TrialPool.Trial mirrors Trial), so both produce
	// identical trajectories for the same trial seed.
	var trialRng *rng.PCG
	var procs []avail.Process
	var sched sim.Scheduler
	var err error
	if r != nil {
		r.trialRng.Reseed(trialSeed)
		trialRng = &r.trialRng
		procs = r.trials.Trial(s.inner, trialRng)
		// Pooled scheduler: SplitInto consumes trialRng exactly as Split
		// does, and reseeds the pooled instance's stream in place.
		ps := r.pooled(heuristic)
		trialRng.SplitInto(&ps.pcg)
		sched, err = ps.instance(heuristic)
	} else {
		trialRng = rng.New(trialSeed)
		procs = s.inner.Trial(trialRng)
		sched, err = core.New(heuristic, trialRng.Split())
	}
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{
		Platform:  s.inner.Platform,
		Params:    s.inner.Params,
		Procs:     procs,
		Scheduler: sched,
		Mode:      mode,
		Observer:  observer,
		OnEvent:   onEvent,
		Alloc:     alloc,
	}
	if r == nil {
		return sim.Run(cfg)
	}
	return r.r.Run(cfg)
}
