package volatile

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
)

// failingSched behaves on its first instantiation (sweep validation no
// longer runs probe instances, so that one is a real sweep run) and then
// violates the scheduler protocol on every later run, so every worker hits
// the error path.
type failingSched struct{ ok bool }

func (s *failingSched) Name() string { return "test-failing" }
func (s *failingSched) Pick(v *sim.View, eligible []int, rs *sim.RoundState, ti sim.TaskInfo) int {
	if s.ok {
		return eligible[0]
	}
	return -99 // ineligible: the engine reports a scheduler protocol error
}

// TestRunSweepErrorReturnsInsteadOfDeadlocking is the regression test for
// the sweep error path: when all workers abort, the unbuffered job feed must
// be released (it used to block forever once no worker was left receiving)
// and the first error must surface.
func TestRunSweepErrorReturnsInsteadOfDeadlocking(t *testing.T) {
	var instances atomic.Int64
	if err := core.Register("test-failing", func(*rng.PCG) sim.Scheduler {
		return &failingSched{ok: instances.Add(1) == 1}
	}); err != nil {
		t.Fatal(err)
	}

	cfg := SweepConfig{
		Cells:      []Cell{{Tasks: 2, Ncom: 2, Wmin: 1}},
		Heuristics: []string{"test-failing"},
		Scenarios:  4,
		Trials:     2,
		Seed:       7,
		Workers:    2, // fewer workers than jobs: the feeder must outlive their abort
	}
	type outcome struct {
		res *SweepResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := RunSweep(cfg)
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		if out.err == nil {
			t.Fatalf("RunSweep = %+v, want a scheduler error", out.res)
		}
		if !strings.Contains(out.err.Error(), "test-failing") {
			t.Fatalf("error %q does not name the failing heuristic", out.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunSweep deadlocked on the all-workers-error path")
	}
}
