package volatile

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/avail"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// writeTraceFile records one synthetic trace set of p vectors × n slots,
// writes it through trace.Set.Write, and returns the path plus the vector
// specs (for the in-memory comparison path).
func writeTraceFile(t *testing.T, dir string, seed uint64, p, n int) (string, []string) {
	t.Helper()
	gen := rng.New(seed)
	set := &trace.Set{Vectors: make([]avail.Vector, p)}
	specs := make([]string, p)
	for i := 0; i < p; i++ {
		proc, err := trace.NewSynthProcess(gen.Split(), trace.SynthOptions{Style: trace.Pareto})
		if err != nil {
			t.Fatal(err)
		}
		set.Vectors[i] = avail.Record(proc, n)
		specs[i] = set.Vectors[i].String()
	}
	path := filepath.Join(dir, "trace.volatrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, specs
}

// TestTraceSweepFileRoundTrip is the ingestion round-trip guard:
// trace.Record → Set.Write to disk → TraceSweep{TraceFiles} must
// reproduce, bit for bit, the digest of the in-memory path (RunTrace on
// the same vectors, aggregated in the sweep's sequential order). Any
// divergence means serialization, parsing, model fitting or the sharded
// pipeline changed what the scheduler sees.
func TestTraceSweepFileRoundTrip(t *testing.T) {
	const (
		procs     = 5
		traceLen  = 120
		scenarios = 2
		trials    = 3
		seed      = uint64(4242)
	)
	cells := []Cell{{Tasks: 4, Ncom: 3, Wmin: 1}, {Tasks: 6, Ncom: 2, Wmin: 2}}
	heuristics := []string{"emct", "mct*", "random1w"}
	opt := ScenarioOptions{Processors: procs, Iterations: 2}

	dirA, dirB := t.TempDir(), t.TempDir()
	fileA, specsA := writeTraceFile(t, dirA, 7, procs, traceLen)
	fileB, specsB := writeTraceFile(t, dirB, 8, procs, traceLen)
	files := []string{fileA, fileB}
	specs := [][]string{specsA, specsB}

	// On-disk path: the sweep reads the files back and replays them.
	res, err := TraceSweep(TraceSweepConfig{
		Cells:      cells,
		Heuristics: heuristics,
		Scenarios:  scenarios,
		Trials:     trials,
		Options:    opt,
		Seed:       seed,
		TraceFiles: files,
	})
	if err != nil {
		t.Fatal(err)
	}

	// In-memory path: the same instances, sequentially, through RunTrace on
	// the original (never-serialized) vectors, aggregated in the exact
	// chunk/trial order runSharded commits in.
	overall := stats.NewAggregator()
	byWmin := make(map[int]*stats.Aggregator)
	byCell := make(map[Cell]*stats.Aggregator)
	censored := 0
	rn := NewRunner()
	for c, cell := range cells {
		for s := 0; s < scenarios; s++ {
			scn := NewScenario(deriveSeed(seed, uint64(c), uint64(s), 0xA11CE), cell, opt)
			for tr := 0; tr < trials; tr++ {
				trialSeed := deriveSeed(seed, uint64(c), uint64(s), uint64(tr))
				ir := &stats.InstanceResult{
					Makespans: make(map[string]int),
					Censored:  make(map[string]bool),
				}
				for _, h := range heuristics {
					r, err := scn.RunTraceWith(rn, h, trialSeed, specs[tr%len(specs)])
					if err != nil {
						t.Fatal(err)
					}
					ir.Makespans[h] = r.Makespan
					if !r.Completed {
						ir.Censored[h] = true
						censored++
					}
				}
				overall.Add(ir)
				bw := byWmin[cell.Wmin]
				if bw == nil {
					bw = stats.NewAggregator()
					byWmin[cell.Wmin] = bw
				}
				bw.Add(ir)
				bc := byCell[cell]
				if bc == nil {
					bc = stats.NewAggregator()
					byCell[cell] = bc
				}
				bc.Add(ir)
			}
		}
	}
	want := &SweepResult{
		Instances: overall.Instances(),
		Overall:   overall.Rows(),
		ByWmin:    make(map[int][]TableRow, len(byWmin)),
		ByCell:    make(map[Cell][]TableRow, len(byCell)),
		Censored:  censored,
	}
	for wmin, agg := range byWmin {
		want.ByWmin[wmin] = agg.Rows()
	}
	for cell, agg := range byCell {
		want.ByCell[cell] = agg.Rows()
	}

	if got, expect := formatSweep(res), formatSweep(want); got != expect {
		t.Errorf("file-ingestion sweep diverged from the in-memory RunTrace path:\nfile path:\n%s\nin-memory path:\n%s",
			got, expect)
	}
	if res.Instances != len(cells)*scenarios*trials {
		t.Errorf("aggregated %d instances, want %d", res.Instances, len(cells)*scenarios*trials)
	}
}

// TestTraceSweepFileWorkerCountDeterminism extends the worker-count
// property to file-driven sweeps: reading recorded sets from disk and
// interning their models per scenario must stay independent of the worker
// count.
func TestTraceSweepFileWorkerCountDeterminism(t *testing.T) {
	dir := t.TempDir()
	file, _ := writeTraceFile(t, dir, 11, 6, 100)
	mk := func(workers int) string {
		res, err := TraceSweep(TraceSweepConfig{
			Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}, {Tasks: 10, Ncom: 5, Wmin: 2}},
			Heuristics: []string{"emct", "mct*", "random2w"},
			Scenarios:  2,
			Trials:     2,
			Options:    ScenarioOptions{Processors: 6, Iterations: 2},
			Seed:       2027,
			Workers:    workers,
			TraceFiles: []string{file},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Instances == 0 {
			t.Fatal("file-driven trace sweep aggregated no instances")
		}
		return formatSweep(res)
	}
	ref := mk(1)
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		if got := mk(workers); got != ref {
			t.Errorf("file-driven trace sweep with %d workers diverged:\nworkers=1:\n%s\nworkers=%d:\n%s",
				workers, ref, workers, got)
		}
	}
}

// TestTraceSweepFileValidation exercises the fail-fast ingestion paths.
func TestTraceSweepFileValidation(t *testing.T) {
	dir := t.TempDir()
	base := TraceSweepConfig{
		Cells:      []Cell{{Tasks: 4, Ncom: 3, Wmin: 1}},
		Heuristics: []string{"mct"},
		Scenarios:  1,
		Trials:     1,
		Options:    ScenarioOptions{Processors: 4, Iterations: 1},
		Seed:       1,
	}

	cfg := base
	cfg.TraceFiles = []string{filepath.Join(dir, "missing.volatrace")}
	if _, err := TraceSweep(cfg); err == nil {
		t.Error("missing trace file accepted")
	}

	bad := filepath.Join(dir, "corrupt.volatrace")
	if err := os.WriteFile(bad, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg = base
	cfg.TraceFiles = []string{bad}
	if _, err := TraceSweep(cfg); err == nil {
		t.Error("corrupt trace file accepted")
	}

	// Vector-count mismatch: 6 vectors for a 4-processor sweep.
	mismatch, _ := writeTraceFile(t, t.TempDir(), 3, 6, 50)
	cfg = base
	cfg.TraceFiles = []string{mismatch}
	if _, err := TraceSweep(cfg); err == nil {
		t.Error("processor-count mismatch accepted")
	}

	// Too short to fit models.
	short := filepath.Join(dir, "short.volatrace")
	if err := os.WriteFile(short, []byte("volatrace 4 1\nu\nu\nu\nu\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg = base
	cfg.TraceFiles = []string{short}
	if _, err := TraceSweep(cfg); err == nil {
		t.Error("too-short trace vectors accepted")
	}
}
