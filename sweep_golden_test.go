package volatile

import (
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"testing"
)

// goldenSweepDigest is the SHA-256 of the formatted output of goldenSweep's
// fixed-seed sweep, captured on the unoptimized engine (pre analytics
// memoization / zero-alloc rework). Hot-path changes must keep RunSweep
// bit-identical: any digest drift means a behavioural change, not a speedup.
const goldenSweepDigest = "8de096277aed7afc08505d91809b2d82434bb75476b7c4afaadebc8a99b3f51f"

func goldenSweepConfig() SweepConfig {
	return SweepConfig{
		Cells: []Cell{
			{Tasks: 5, Ncom: 5, Wmin: 1},
			{Tasks: 10, Ncom: 10, Wmin: 3},
			{Tasks: 20, Ncom: 5, Wmin: 10},
			{Tasks: 40, Ncom: 20, Wmin: 5},
		},
		Scenarios: 2,
		Trials:    2,
		Seed:      42,
	}
}

// formatSweep is SweepResult.Format, which renders every numeric field
// deterministically and at full float precision; the shim keeps the many
// golden tests that predate the method unchanged. TestFormatMatchesDigest in
// sweep_resume_test.go pins that Format and the golden digests agree.
func formatSweep(res *SweepResult) string { return res.Format() }

// TestRunSweepGolden locks the exact numeric output of a fixed-seed sweep
// across all 17 heuristics and a spread of grid cells (light, heavy,
// contention-prone). It is the regression guard for the engine and heuristic
// hot paths: optimizations must not move a single bit.
func TestRunSweepGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is a few seconds long")
	}
	res, err := RunSweep(goldenSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	text := formatSweep(res)
	sum := sha256.Sum256([]byte(text))
	if got := hex.EncodeToString(sum[:]); got != goldenSweepDigest {
		t.Errorf("sweep digest drifted:\n got  %s\n want %s\noutput:\n%s", got, goldenSweepDigest, text)
	}
}

// TestRunSweepWorkerCountDeterminism is the sharded-merge property test:
// the full SweepResult (Overall/ByWmin/ByCell rows, Instances, Censored)
// must be bit-identical for Workers ∈ {1, 2, GOMAXPROCS}, and every worker
// count must reproduce the golden digest captured on the seed's sequential
// aggregation. Shards merge in chunk order, replaying the sequential Add
// sequence exactly, so even the floating-point summation order is invariant.
func TestRunSweepWorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("worker-count property sweep is a few seconds long")
	}
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, workers := range counts {
		cfg := goldenSweepConfig()
		cfg.Workers = workers
		res, err := RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		text := formatSweep(res)
		sum := sha256.Sum256([]byte(text))
		if got := hex.EncodeToString(sum[:]); got != goldenSweepDigest {
			t.Errorf("workers=%d drifted from the sequential golden digest:\n got  %s\n want %s\noutput:\n%s",
				workers, got, goldenSweepDigest, text)
		}
	}
}

// TestTraceSweepWorkerCountDeterminism extends the property to the
// trace-driven pipeline: synthetic trace generation, the per-scenario
// trace-model cache and the sharded merge must all be independent of the
// worker count.
func TestTraceSweepWorkerCountDeterminism(t *testing.T) {
	mk := func(workers int) string {
		res, err := TraceSweep(TraceSweepConfig{
			Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}, {Tasks: 10, Ncom: 5, Wmin: 2}},
			Heuristics: []string{"emct", "mct*", "random2w"},
			Scenarios:  2,
			Trials:     2,
			TraceLen:   150,
			Style:      TraceWeibull,
			Options:    ScenarioOptions{Processors: 6, Iterations: 2},
			Seed:       2026,
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Instances == 0 {
			t.Fatal("trace sweep aggregated no instances")
		}
		return formatSweep(res)
	}
	ref := mk(1)
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		if got := mk(workers); got != ref {
			t.Errorf("trace sweep with %d workers diverged:\nworkers=1:\n%s\nworkers=%d:\n%s",
				workers, ref, workers, got)
		}
	}
}
