package main

import (
	"fmt"
	"os"

	volatile "repro"
	"repro/internal/avail"
	"repro/internal/report"
	"repro/internal/rng"
)

// ganttRun executes one trial with recorded availability and renders a
// per-worker timeline: what every processor was doing in every slot.
//
// Cell characters:
//
//	.  UP, idle            :  RECLAIMED, idle       X  DOWN
//	P  receiving program   D  receiving task data   C  computing
//	B  computing while prefetching the next task's data
//	p/d/c  the same activities suspended by a RECLAIMED interruption
func ganttRun(scn *volatile.Scenario, heuristic string, trialSeed uint64, horizon int) error {
	// Record the availability realization so it can be both replayed and
	// displayed.
	p := scn.Processors()
	vecRng := rng.New(trialSeed)
	vectors := make([]avail.Vector, p)
	specs := make([]string, p)
	for i := 0; i < p; i++ {
		vectors[i] = avail.Record(scn.ProcessorModel(i).NewProcess(vecRng.Split(), avail.Up), horizon)
		specs[i] = vectors[i].String()
	}

	// Phase tracking per worker, reconstructed from the event stream.
	type phase struct{ prog, data, compute bool }
	phases := make([]phase, p)
	grid := make([][]byte, p)
	for i := range grid {
		grid[i] = make([]byte, 0, 256)
	}
	slotDone := -1
	fill := func(upTo int) {
		// Renders slots (slotDone, upTo] using current phases; events of
		// slot s are applied before rendering slot s, which is why the
		// engine's in-slot event order matters.
		for s := slotDone + 1; s <= upTo; s++ {
			for q := 0; q < p; q++ {
				st := vectors[q][min(s, len(vectors[q])-1)]
				var ch byte
				ph := phases[q]
				switch {
				case st == avail.Down:
					ch = 'X'
				case ph.compute && ph.data:
					ch = 'B'
				case ph.compute:
					ch = 'C'
				case ph.data:
					ch = 'D'
				case ph.prog:
					ch = 'P'
				case st == avail.Reclaimed:
					ch = ':'
				default:
					ch = '.'
				}
				if st == avail.Reclaimed && ch >= 'A' && ch <= 'Z' {
					ch += 'a' - 'A' // suspended activity
				}
				grid[q] = append(grid[q], ch)
			}
		}
		if upTo > slotDone {
			slotDone = upTo
		}
	}

	events := make([]volatile.Event, 0, 1024)
	res2, err := scn.RunTraceWithEvents(heuristic, trialSeed, specs, func(ev volatile.Event) {
		events = append(events, ev)
	})
	if err != nil {
		return err
	}
	for _, ev := range events {
		fill(ev.Slot - 1)
		q := ev.Worker
		if q < 0 || q >= p {
			continue
		}
		switch ev.Kind {
		case volatile.EvProgramStart:
			phases[q].prog = true
		case volatile.EvDataStart:
			phases[q].prog = false
			phases[q].data = true
		case volatile.EvComputeStart:
			phases[q].compute = true
			phases[q].data = false
		case volatile.EvTaskComplete:
			phases[q].compute = false
		case volatile.EvCopyCancelled, volatile.EvCrash:
			phases[q] = phase{}
		}
	}
	fill(res2.Makespan - 1)

	rows := make([]report.GanttRow, p)
	for q := 0; q < p; q++ {
		rows[q] = report.GanttRow{
			Label: fmt.Sprintf("P%-2d w=%-3d", q, scn.ProcessorSpeed(q)),
			Cells: grid[q][:res2.Makespan],
		}
	}
	fmt.Printf("%s: makespan %d slots (completed=%v)\n\n", heuristic, res2.Makespan, res2.Completed)
	return report.Gantt(os.Stdout, rows, 100,
		"P/D/C=program/data/compute, B=compute+prefetch, lowercase=suspended, .=idle up, :=reclaimed, X=down")
}
