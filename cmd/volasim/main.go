// Command volasim runs a single simulation of an iterative master-worker
// application on a volatile platform and reports the makespan and resource
// statistics. With -verbose it prints the full event timeline.
//
// Examples:
//
//	volasim -n 20 -ncom 10 -wmin 3 -heuristic 'emct*'
//	volasim -n 5 -ncom 5 -wmin 8 -heuristic ud -trials 5
//	volasim -n 5 -ncom 5 -wmin 1 -heuristic mct -verbose
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	volatile "repro"
)

func main() {
	var (
		n         = flag.Int("n", 20, "tasks per iteration")
		ncom      = flag.Int("ncom", 10, "max simultaneous master transfers")
		wmin      = flag.Int("wmin", 3, "minimum task duration (speeds in [wmin, 10*wmin])")
		heuristic = flag.String("heuristic", "emct*", "scheduling heuristic (see -list)")
		seed      = flag.Uint64("seed", 42, "scenario seed")
		trialSeed = flag.Uint64("trial", 1, "first trial seed")
		trials    = flag.Int("trials", 1, "number of trials to run")
		iters     = flag.Int("iterations", 10, "iterations per run")
		procs     = flag.Int("p", 20, "number of processors")
		commScale = flag.Int("commscale", 1, "communication scale (5/10 = contention-prone)")
		verbose   = flag.Bool("verbose", false, "print the event timeline")
		gantt     = flag.Bool("gantt", false, "render a per-worker activity timeline")
		horizon   = flag.Int("horizon", 50000, "recorded availability horizon for -gantt")
		describe  = flag.Bool("describe", false, "print the scenario before running")
		list      = flag.Bool("list", false, "list available heuristics and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(volatile.Heuristics(), "\n"))
		return
	}

	scn := volatile.NewScenario(*seed,
		volatile.Cell{Tasks: *n, Ncom: *ncom, Wmin: *wmin},
		volatile.ScenarioOptions{Processors: *procs, Iterations: *iters, CommScale: *commScale})
	if *describe {
		fmt.Print(scn.Describe())
	}

	if *gantt {
		if err := ganttRun(scn, *heuristic, *trialSeed, *horizon); err != nil {
			fmt.Fprintln(os.Stderr, "volasim:", err)
			os.Exit(1)
		}
		return
	}

	for tr := 0; tr < *trials; tr++ {
		ts := *trialSeed + uint64(tr)
		var onEvent func(volatile.Event)
		if *verbose {
			onEvent = func(ev volatile.Event) {
				fmt.Printf("slot %6d iter %2d %-15s", ev.Slot, ev.Iteration, ev.Kind)
				if ev.Worker >= 0 {
					fmt.Printf(" worker=%d", ev.Worker)
				}
				if ev.Task >= 0 {
					fmt.Printf(" task=%d copy=%d", ev.Task, ev.Replica)
				}
				fmt.Println()
			}
		}
		res, err := scn.RunWithHooks(*heuristic, ts, nil, onEvent)
		if err != nil {
			fmt.Fprintln(os.Stderr, "volasim:", err)
			os.Exit(1)
		}
		status := "completed"
		if !res.Completed {
			status = "CENSORED"
		}
		fmt.Printf("trial %d (%s): %s in %d slots\n", tr, *heuristic, status, res.Makespan)
		fmt.Printf("  iteration ends: %v\n", res.IterationEnds)
		s := res.Stats
		fmt.Printf("  transfers: %d slot-units (%d program), peak %d parallel\n",
			s.ChannelSlots, s.ProgramSlots, s.PeakTransfers)
		fmt.Printf("  compute: %d slots (%d wasted), crashes: %d, replicas: %d\n",
			s.ComputeSlots, s.WastedComputeSlots, s.Crashes, s.ReplicasStarted)
	}
}
