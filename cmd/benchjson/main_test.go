package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable2 	       1	12754733817 ns/op	         4.384 emct_dfb	 2784696 B/op	   56295 allocs/op
--- BENCH: BenchmarkTable2
    bench_test.go:59: Table 2 (reduced: 120 instances)
PASS
ok  	repro	12.758s
`

func parseSample(t *testing.T, in string) *document {
	t.Helper()
	doc, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseBenchOutput(t *testing.T) {
	doc := parseSample(t, sampleBench)
	if len(doc.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkTable2" || b.Iterations != 1 {
		t.Fatalf("benchmark %+v", b)
	}
	if b.Metrics["ns/op"] != 12754733817 || b.Metrics["emct_dfb"] != 4.384 {
		t.Fatalf("metrics %+v", b.Metrics)
	}
	if doc.CPU == "" || doc.Goos != "linux" {
		t.Fatalf("header not carried through: %+v", doc)
	}
}

func TestMissingRequired(t *testing.T) {
	doc := parseSample(t, sampleBench)
	if m := missingRequired(doc, []string{"BenchmarkTable2"}); len(m) != 0 {
		t.Fatalf("present benchmark reported missing: %v", m)
	}
	// The -GOMAXPROCS suffix must satisfy a suffix-less requirement.
	suffixed := strings.Replace(sampleBench, "BenchmarkTable2 ", "BenchmarkTable2-8 ", 1)
	if m := missingRequired(parseSample(t, suffixed), []string{"BenchmarkTable2"}); len(m) != 0 {
		t.Fatalf("suffixed benchmark reported missing: %v", m)
	}
	// A renamed or absent benchmark must be flagged, not silently skipped.
	if m := missingRequired(doc, []string{"BenchmarkTable3"}); len(m) != 1 || m[0] != "BenchmarkTable3" {
		t.Fatalf("absent benchmark not flagged: %v", m)
	}
	// Prefix matching is on the -GOMAXPROCS boundary only: a requirement
	// must not be satisfied by a longer, different benchmark name.
	other := strings.Replace(sampleBench, "BenchmarkTable2 ", "BenchmarkTable2Extra ", 1)
	if m := missingRequired(parseSample(t, other), []string{"BenchmarkTable2"}); len(m) != 1 {
		t.Fatalf("unrelated benchmark satisfied the requirement: %v", m)
	}
}

func TestParseRejectsNothing(t *testing.T) {
	// Output with no benchmark lines parses to an empty document; main
	// turns that into a hard failure so bench artifacts cannot record gaps.
	doc := parseSample(t, "goos: linux\nPASS\nok repro 1.0s\n")
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("phantom benchmarks parsed: %+v", doc.Benchmarks)
	}
}
