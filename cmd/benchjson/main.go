// Command benchjson converts `go test -bench` output into a small JSON
// document, so benchmark results can be recorded as machine-readable
// artifacts (the CI bench-smoke job writes BENCH_table2.json this way):
//
//	go test -run '^$' -bench 'BenchmarkTable2$' -benchtime 1x -benchmem . \
//	    | go run ./cmd/benchjson -o BENCH_table2.json
//
// Each benchmark line ("BenchmarkX <N> <value> <unit> ...") becomes an entry
// with its iteration count and a metrics map keyed by unit — ns/op, B/op,
// allocs/op, and any custom b.ReportMetric units. The goos/goarch/pkg/cpu
// header lines are carried through when present. Log blocks ("--- BENCH:")
// and the trailing ok/FAIL line are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/atomicio"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	var require requireFlag
	flag.Var(&require, "require", "fail unless this benchmark was parsed (repeatable; matches with or without the -GOMAXPROCS suffix)")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if missing := missingRequired(doc, require); len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: required benchmark(s) missing from input: %s\n",
			strings.Join(missing, ", "))
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	err = atomicio.WriteFile(*out, func(w io.Writer) error {
		_, werr := w.Write(enc)
		return werr
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// requireFlag collects the repeatable -require values.
type requireFlag []string

func (r *requireFlag) String() string { return strings.Join(*r, ",") }
func (r *requireFlag) Set(v string) error {
	*r = append(*r, v)
	return nil
}

// missingRequired returns the -require names absent from the parsed
// document. A requirement matches a benchmark verbatim or with go test's
// -GOMAXPROCS suffix ("BenchmarkTable2" matches "BenchmarkTable2-8"), so a
// pinned CI requirement keeps holding on multi-core runners. The caller
// fails on a non-empty result: a bench job whose output lost its benchmark
// (build failure mid-pipe, renamed benchmark, panicking run) must fail
// loudly instead of recording a gap in the artifact history.
func missingRequired(doc *document, require []string) []string {
	var missing []string
	for _, req := range require {
		found := false
		for _, b := range doc.Benchmarks {
			if b.Name == req || strings.HasPrefix(b.Name, req+"-") {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, req)
		}
	}
	return missing
}

func parse(sc *bufio.Scanner) (*document, error) {
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	doc := &document{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses "BenchmarkX-8  <N>  <value> <unit> ...". Lines that
// merely start with "Benchmark" but lack the result shape (e.g. inside a
// "--- BENCH:" log block) are skipped, not errors.
func parseBenchLine(line string) (benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false, nil
	}
	b := benchmark{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false, fmt.Errorf("bad value %q in %q: %v", fields[i], line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true, nil
}
