// Command volaoffline demonstrates the off-line results of Section 4:
//
//	volaoffline -demo figure1        the 3SAT reduction on the paper's example
//	volaoffline -demo counterexample the MCT non-optimality example
//	volaoffline -random-sat 5        random 3SAT reductions vs the exact solver
//	volaoffline -maxsat 6            Proposition 1: max completable tasks vs
//	                                 MAX-3SAT optimum on random reductions
//	volaoffline -mct-check 20        MCT vs exhaustive optimum on random
//	                                 contention-free instances (Proposition 2)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/avail"
	"repro/internal/offline"
	"repro/internal/rng"
)

func main() {
	var (
		demo      = flag.String("demo", "", "figure1 | counterexample")
		randomSAT = flag.Int("random-sat", 0, "verify N random 3SAT reductions against the exact solver")
		maxSAT    = flag.Int("maxsat", 0, "verify max-tasks = max-satisfiable-clauses on N random reductions")
		mctCheck  = flag.Int("mct-check", 0, "verify MCT optimality (ncom=inf) on N random instances")
		cnfPath   = flag.String("cnf", "", "reduce a DIMACS CNF file to an Off-Line instance and schedule it")
		seed      = flag.Uint64("seed", 7, "random seed")
	)
	flag.Parse()

	switch {
	case *demo == "figure1":
		demoFigure1()
	case *demo == "counterexample":
		demoCounterexample()
	case *randomSAT > 0:
		checkRandomSAT(*randomSAT, *seed)
	case *maxSAT > 0:
		checkMaxSAT(*maxSAT, *seed)
	case *mctCheck > 0:
		checkMCT(*mctCheck, *seed)
	case *cnfPath != "":
		reduceFile(*cnfPath)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// reduceFile runs the Theorem 1 pipeline on a user-supplied DIMACS formula:
// parse, reduce, solve with DPLL, and (when satisfiable) build and verify
// the constructive schedule.
func reduceFile(path string) {
	f, err := os.Open(path)
	fatal(err)
	defer f.Close()
	cnf, err := offline.ParseDIMACS(f)
	fatal(err)
	in, err := offline.FromCNF(cnf)
	fatal(err)
	fmt.Printf("%s: %d variables, %d clauses\n", path, cnf.NumVars, len(cnf.Clauses))
	fmt.Printf("reduction: p=%d processors, m=%d tasks, Tprog=%d, N=%d\n",
		in.P(), in.M, in.Tprog, in.N())
	assignment, sat := cnf.Solve()
	if !sat {
		fmt.Println("DPLL: UNSAT — by Theorem 1 no schedule completes within N")
		return
	}
	fmt.Print("DPLL assignment:")
	for v := 1; v <= cnf.NumVars; v++ {
		fmt.Printf(" x%d=%v", v, assignment[v])
	}
	fmt.Println()
	sched, err := offline.ScheduleFromAssignment(cnf, in, assignment)
	fatal(err)
	done, makespan, err := in.Replay(sched)
	fatal(err)
	fmt.Printf("constructive schedule: %d/%d tasks, makespan %d ≤ N=%d\n",
		done, in.M, makespan, in.N())
}

// figure1CNF is the formula of the paper's Figure 1.
func figure1CNF() *offline.CNF {
	return &offline.CNF{NumVars: 4, Clauses: []offline.Clause{
		{-1, 3, 4}, {1, -2, -3}, {2, 3, -4}, {1, 2, 4}, {-1, -2, -4}, {-2, 3, 4},
	}}
}

func demoFigure1() {
	f := figure1CNF()
	fmt.Println("Figure 1 — 3SAT → Off-Line reduction on the paper's example formula:")
	fmt.Println("  (¬x1∨x3∨x4)(x1∨¬x2∨¬x3)(x2∨x3∨¬x4)(x1∨x2∨x4)(¬x1∨¬x2∨¬x4)(¬x2∨x3∨x4)")
	in, err := offline.FromCNF(f)
	fatal(err)
	fmt.Printf("\ninstance: p=%d processors, m=%d tasks, Tprog=%d, Tdata=%d, ncom=%d, N=%d\n\n",
		in.P(), in.M, in.Tprog, in.Tdata, in.Ncom, in.N())
	labels := []string{"x1", "¬x1", "x2", "¬x2", "x3", "¬x3", "x4", "¬x4"}
	for q, v := range in.Vectors {
		fmt.Printf("  %-4s %s\n", labels[q], v.String())
	}
	assignment, ok := f.Solve()
	if !ok {
		fmt.Println("\nformula is UNSAT")
		return
	}
	fmt.Printf("\nDPLL assignment: ")
	for v := 1; v <= f.NumVars; v++ {
		fmt.Printf("x%d=%v ", v, assignment[v])
	}
	fmt.Println()
	sched, err := offline.ScheduleFromAssignment(f, in, assignment)
	fatal(err)
	done, makespan, err := in.Replay(sched)
	fatal(err)
	fmt.Printf("constructed schedule: %d/%d tasks completed, makespan %d ≤ N=%d\n",
		done, in.M, makespan, in.N())
}

func demoCounterexample() {
	fmt.Println("Section 4 — MCT is not optimal when ncom is bounded:")
	fmt.Println("  Tprog=Tdata=2, m=2, w=2, ncom=1, S1=uuuuuurrr, S2=ruuuuuuuu")
	v1, _ := avail.ParseVector("uuuuuurrr")
	v2, _ := avail.ParseVector("ruuuuuuuu")
	in := &offline.Instance{
		Vectors: []avail.Vector{v1, v2},
		W:       []int{2, 2}, Tprog: 2, Tdata: 2, Ncom: 1, M: 2,
	}
	opt, err := offline.ExactSearch(in)
	fatal(err)
	fmt.Printf("\nexact optimal makespan: %d (send everything to P2 after waiting one slot)\n", opt)
	greedy := &offline.Schedule{
		Comm: [][]int{0: {0}, 1: {0}, 2: {0}, 3: {0}, 4: {1}, 5: {1}, 6: {1}, 7: {1}},
	}
	done, _, err := in.Replay(greedy)
	fatal(err)
	fmt.Printf("MCT-style schedule (serve P1 first): completes only %d/2 tasks within N=9\n", done)
}

func checkRandomSAT(n int, seed uint64) {
	r := rng.New(seed)
	agree := 0
	for i := 0; i < n; i++ {
		f := offline.Random3SAT(r, 3, 2+r.Intn(4))
		in, err := offline.FromCNF(f)
		fatal(err)
		_, sat := f.Solve()
		makespan, err := offline.ExactSearchLimit(in, 400_000)
		fatal(err)
		schedulable := makespan > 0
		status := "AGREE"
		if sat == schedulable {
			agree++
		} else {
			status = "MISMATCH"
		}
		fmt.Printf("formula %2d: vars=3 clauses=%d  SAT=%-5v  schedulable=%-5v  %s\n",
			i, len(f.Clauses), sat, schedulable, status)
	}
	fmt.Printf("\n%d/%d reductions agree with DPLL (Theorem 1)\n", agree, n)
	if agree != n {
		os.Exit(1)
	}
}

// checkMaxSAT exercises the optimization version behind Proposition 1: on
// reduction instances, the maximum number of completable tasks must equal
// the maximum number of simultaneously satisfiable clauses, so any
// 8/7−ε approximation of the scheduling problem would contradict Håstad's
// MAX-3SAT bound.
func checkMaxSAT(n int, seed uint64) {
	r := rng.New(seed)
	agree := 0
	for i := 0; i < n; i++ {
		f := offline.Random3SAT(r, 3, 2+r.Intn(3))
		in, err := offline.FromCNF(f)
		fatal(err)
		maxTasks, err := offline.MaxTasksWithin(in, 600_000)
		fatal(err)
		maxSat, err := offline.MaxSatisfiableClauses(f)
		fatal(err)
		status := "AGREE"
		if maxTasks == maxSat {
			agree++
		} else {
			status = "MISMATCH"
		}
		fmt.Printf("formula %2d: clauses=%d  max-tasks=%d  max-sat=%d  %s\n",
			i, len(f.Clauses), maxTasks, maxSat, status)
	}
	fmt.Printf("\n%d/%d reductions preserve the optimization objective (Proposition 1)\n", agree, n)
	if agree != n {
		os.Exit(1)
	}
}

func checkMCT(n int, seed uint64) {
	r := rng.New(seed)
	agree := 0
	for i := 0; i < n; i++ {
		in := randomInstance(r)
		_, mct, err := offline.MCTNoContention(in)
		fatal(err)
		opt, err := offline.OptimalNoContention(in)
		fatal(err)
		status := "AGREE"
		if mct == opt {
			agree++
		} else {
			status = "MISMATCH"
		}
		fmt.Printf("instance %2d: p=%d m=%d  MCT=%3d  optimal=%3d  %s\n",
			i, in.P(), in.M, mct, opt, status)
	}
	fmt.Printf("\n%d/%d instances: MCT = optimal with ncom=∞ (Proposition 2)\n", agree, n)
	if agree != n {
		os.Exit(1)
	}
}

func randomInstance(r *rng.PCG) *offline.Instance {
	p := 2 + r.Intn(3)
	in := &offline.Instance{
		Tprog: 1 + r.Intn(3),
		Tdata: r.Intn(3),
		Ncom:  offline.NoContention,
		M:     1 + r.Intn(4),
		W:     make([]int, p),
	}
	for q := 0; q < p; q++ {
		in.W[q] = 1 + r.Intn(3)
		v := make(avail.Vector, 25)
		for t := range v {
			if r.Bernoulli(0.7) {
				v[t] = avail.Up
			} else {
				v[t] = avail.Reclaimed
			}
		}
		in.Vectors = append(in.Vectors, v)
	}
	return in
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "volaoffline:", err)
		os.Exit(1)
	}
}
