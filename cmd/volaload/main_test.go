package main

import "testing"

// TestPercentile pins the nearest-rank percentile the report uses.
func TestPercentile(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
		p      float64
		want   float64
	}{
		{"empty", nil, 50, 0},
		{"single", []float64{7}, 99, 7},
		{"median-odd", []float64{3, 1, 2}, 50, 2},
		{"p95-of-100", seq(100), 95, 95},
		{"p99-of-100", seq(100), 99, 99},
		{"p50-of-100", seq(100), 50, 50},
		{"unsorted-input", []float64{9, 1, 5}, 100, 9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := percentile(c.values, c.p); got != c.want {
				t.Fatalf("percentile(%v, %v) = %v, want %v", c.values, c.p, got, c.want)
			}
		})
	}
}

// TestPercentileDoesNotMutateInput pins that the report can reuse the
// sample slice after computing several percentiles.
func TestPercentileDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("percentile sorted its input in place: %v", in)
	}
}

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}
