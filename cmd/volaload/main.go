// Command volaload is a small load driver for volaserved: it warms one
// sweep to completion, then hammers the server with identical submissions
// and result fetches — every request after the first is a cache hit, so
// the numbers measure the service layer (routing, job table, cached-result
// serving), not the simulator. Output is a JSON report in the same spirit
// as cmd/benchjson's BENCH_table2.json.
//
// Usage:
//
//	volaserved -addr :8080 -data ./servedata &
//	volaload -addr http://localhost:8080 -duration 5s -o BENCH_served.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/atomicio"
	"repro/internal/sweepreq"
)

// report is the JSON the driver emits.
type report struct {
	Exp            string  `json:"exp"`
	JobID          string  `json:"job_id"`
	ResultDigest   string  `json:"result_digest"`
	WarmupSeconds  float64 `json:"warmup_seconds"`
	Concurrency    int     `json:"concurrency"`
	DurationSecs   float64 `json:"duration_seconds"`
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	SubmitP50Ms    float64 `json:"submit_p50_ms"`
	SubmitP95Ms    float64 `json:"submit_p95_ms"`
	SubmitP99Ms    float64 `json:"submit_p99_ms"`
	ResultP50Ms    float64 `json:"result_p50_ms"`
	ResultP95Ms    float64 `json:"result_p95_ms"`
	ResultP99Ms    float64 `json:"result_p99_ms"`
	GoVersion      string  `json:"go_version"`
	Timestamp      string  `json:"timestamp"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "volaserved base URL")
	exp := flag.String("exp", "table3x5", "sweep experiment to submit")
	scenarios := flag.Int("scenarios", 1, "scenarios per cell")
	trials := flag.Int("trials", 1, "trials per scenario")
	seed := flag.Uint64("seed", 42, "sweep seed")
	duration := flag.Duration("duration", 5*time.Second, "measurement window")
	concurrency := flag.Int("concurrency", 4, "concurrent client loops")
	out := flag.String("o", "", "write the JSON report here (default stdout)")
	flag.Parse()

	req := sweepreq.Request{Exp: *exp, Scenarios: *scenarios, Trials: *trials, Seed: *seed}
	body, err := json.Marshal(req)
	fatalIf(err)

	// Warm-up: submit once and poll until the job is done, so the measured
	// window contains only cache hits.
	warmStart := time.Now()
	id, err := submitOnce(*addr, body)
	fatalIf(err)
	digest, err := awaitDone(*addr, id, 10*time.Minute)
	fatalIf(err)
	warmup := time.Since(warmStart)

	type sample struct{ submit, result time.Duration }
	var mu sync.Mutex
	var samples []sample
	errs := 0

	var wg sync.WaitGroup
	stopAt := time.Now().Add(*duration)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for time.Now().Before(stopAt) {
				var s sample
				t0 := time.Now()
				_, serr := submitWith(client, *addr, body)
				s.submit = time.Since(t0)
				t1 := time.Now()
				rerr := fetchResult(client, *addr, id)
				s.result = time.Since(t1)
				mu.Lock()
				if serr != nil || rerr != nil {
					errs++
				} else {
					samples = append(samples, s)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	submits := make([]float64, len(samples))
	results := make([]float64, len(samples))
	for i, s := range samples {
		submits[i] = float64(s.submit) / float64(time.Millisecond)
		results[i] = float64(s.result) / float64(time.Millisecond)
	}
	rep := report{
		Exp:            *exp,
		JobID:          id,
		ResultDigest:   digest,
		WarmupSeconds:  warmup.Seconds(),
		Concurrency:    *concurrency,
		DurationSecs:   duration.Seconds(),
		Requests:       2 * len(samples), // one submit + one result fetch per sample
		Errors:         errs,
		RequestsPerSec: float64(2*len(samples)) / duration.Seconds(),
		SubmitP50Ms:    percentile(submits, 50),
		SubmitP95Ms:    percentile(submits, 95),
		SubmitP99Ms:    percentile(submits, 99),
		ResultP50Ms:    percentile(results, 50),
		ResultP95Ms:    percentile(results, 95),
		ResultP99Ms:    percentile(results, 99),
		GoVersion:      runtime.Version(),
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
	}
	if *out == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(rep))
		return
	}
	fatalIf(atomicio.WriteFile(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}))
	fmt.Printf("volaload: %d requests (%.0f req/s, %d errors) -> %s\n",
		rep.Requests, rep.RequestsPerSec, rep.Errors, *out)
}

// percentile returns the p-th percentile (nearest-rank) of values in ms.
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	rank := int(float64(len(sorted))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func submitOnce(addr string, body []byte) (string, error) {
	return submitWith(http.DefaultClient, addr, body)
}

func submitWith(client *http.Client, addr string, body []byte) (string, error) {
	resp, err := client.Post(addr+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("submit: status %d: %s", resp.StatusCode, b)
	}
	var sr struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return "", err
	}
	return sr.ID, nil
}

// awaitDone polls the job status until it is done, returning the result
// digest.
func awaitDone(addr, id string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(addr + "/jobs/" + id)
		if err != nil {
			return "", err
		}
		var st struct {
			State        string `json:"state"`
			ResultDigest string `json:"result_digest"`
			Error        string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch st.State {
		case "done":
			return st.ResultDigest, nil
		case "failed", "stopped":
			return "", fmt.Errorf("warm-up job ended %s: %s", st.State, st.Error)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return "", fmt.Errorf("warm-up job %s did not finish within %v", id, timeout)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "volaload:", err)
		os.Exit(1)
	}
}

func fetchResult(client *http.Client, addr, id string) error {
	resp, err := client.Get(addr + "/jobs/" + id + "/result")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("result: status %d", resp.StatusCode)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}
