package main

import (
	"repro/internal/sweepreq"
)

// experiments lists every -exp value main dispatches on, in the order the
// usage text presents them. The canonical list lives in internal/sweepreq,
// shared with cmd/volaserved; the CLI table test pins that the dispatch
// switch and this list agree.
var experiments = sweepreq.Experiments()

// validateArgs rejects unusable sweep parameters up front: a non-positive
// -scenarios or -trials would silently produce an empty sweep (or a
// divide-by-zero summary), a negative -workers would be passed to the
// pipeline as a nonsense concurrency, and an unknown -exp should name the
// valid experiments instead of leaving the user to read the source.
// An unknown -mode is rejected the same way, naming the valid time bases.
// A negative -p (platform-size override) is rejected here too; the library
// validates again (ScenarioOptions.Validate), but failing pre-profile keeps
// the CLI contract uniform. It is a flag-shaped wrapper over
// sweepreq.Request.Validate — the exact validation cmd/volaserved applies
// to JSON submissions — so both surfaces reject the same inputs with the
// same messages.
func validateArgs(exp, mode string, scenarios, trials, workers, procs int) error {
	return sweepreq.Request{
		Exp:       exp,
		Mode:      mode,
		Scenarios: scenarios,
		Trials:    trials,
		Workers:   workers,
		Procs:     procs,
	}.Validate()
}
