package main

import (
	"fmt"
	"strings"

	volatile "repro"
)

// experiments lists every -exp value main dispatches on, in the order the
// usage text presents them. validateArgs and the dispatch switch must agree;
// the CLI table test pins both directions.
var experiments = []string{
	"table2", "figure2", "table3x5", "table3x10",
	"ablation", "emctgain", "emctgain-norepl", "tracesweep", "dfrs",
	"largep",
}

// validateArgs rejects unusable sweep parameters up front: a non-positive
// -scenarios or -trials would silently produce an empty sweep (or a
// divide-by-zero summary), a negative -workers would be passed to the
// pipeline as a nonsense concurrency, and an unknown -exp should name the
// valid experiments instead of leaving the user to read the source.
// An unknown -mode is rejected the same way, naming the valid time bases.
// A negative -p (platform-size override) is rejected here too; the library
// validates again (ScenarioOptions.Validate), but failing pre-profile keeps
// the CLI contract uniform.
func validateArgs(exp, mode string, scenarios, trials, workers, procs int) error {
	if scenarios <= 0 {
		return fmt.Errorf("-scenarios must be positive (got %d)", scenarios)
	}
	if trials <= 0 {
		return fmt.Errorf("-trials must be positive (got %d)", trials)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0, where 0 means all cores (got %d)", workers)
	}
	if procs < 0 {
		return fmt.Errorf("-p must be >= 0, where 0 means the experiment default (got %d)", procs)
	}
	if _, err := volatile.ParseMode(mode); err != nil {
		return fmt.Errorf("unknown mode %q (valid: %s)", mode, strings.Join(volatile.ModeNames(), ", "))
	}
	for _, e := range experiments {
		if exp == e {
			return nil
		}
	}
	return fmt.Errorf("unknown experiment %q (valid: %s)", exp, strings.Join(experiments, ", "))
}
