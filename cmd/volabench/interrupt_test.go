package main

import (
	"strings"
	"testing"

	volatile "repro"
)

// TestValidateDurabilityTable pins the durability-flag contract: the flags
// apply only to sweep experiments, -resume and -crash-after require
// -checkpoint, and the counters must be sane.
func TestValidateDurabilityTable(t *testing.T) {
	ck := func(d durabilityArgs) durabilityArgs {
		if d.every == 0 {
			d.every = volatile.DefaultCheckpointEvery
		}
		return d
	}
	cases := []struct {
		name    string
		exp     string
		dur     durabilityArgs
		wantErr string // substring; empty = valid
	}{
		{"no-flags", "table2", durabilityArgs{}, ""},
		{"no-flags-ablation", "ablation", durabilityArgs{}, ""},
		{"checkpoint", "table2", ck(durabilityArgs{checkpoint: "x.ckpt"}), ""},
		{"checkpoint-resume", "tracesweep", ck(durabilityArgs{checkpoint: "x.ckpt", resume: true}), ""},
		{"crash-after", "table3x5", ck(durabilityArgs{checkpoint: "x.ckpt", crashAfter: 3}), ""},
		{"digest-only", "largep", ck(durabilityArgs{digest: true}), ""},
		{"retries", "dfrs", ck(durabilityArgs{retries: 2, continueOnError: true}), ""},
		{"every-sweep-exp", "figure2", ck(durabilityArgs{checkpoint: "x.ckpt"}), ""},

		{"resume-without-checkpoint", "table2", ck(durabilityArgs{resume: true}), "-resume needs -checkpoint"},
		{"crash-without-checkpoint", "table2", ck(durabilityArgs{crashAfter: 2}), "-crash-after without -checkpoint"},
		{"negative-retries", "table2", ck(durabilityArgs{retries: -1}), "-retries must be >= 0"},
		{"negative-crash", "table2", ck(durabilityArgs{checkpoint: "x.ckpt", crashAfter: -1}), "-crash-after must be >= 0"},
		{"zero-every", "table2", durabilityArgs{checkpoint: "x.ckpt"}, "-checkpoint-every must be positive"},
		{"checkpoint-ablation", "ablation", ck(durabilityArgs{checkpoint: "x.ckpt"}), "apply only to sweep experiments"},
		{"digest-emctgain", "emctgain", ck(durabilityArgs{digest: true}), "apply only to sweep experiments"},
		{"retries-emctgain-norepl", "emctgain-norepl", ck(durabilityArgs{retries: 1}), "apply only to sweep experiments"},

		// A negative -checkpoint-every is rejected even when it is the only
		// durability flag: before PR 9 it silently fell through to the
		// library, which substituted the default cadence.
		{"negative-every-alone", "table2", durabilityArgs{every: -8}, "-checkpoint-every must be positive"},
		{"negative-every-with-checkpoint", "table2", durabilityArgs{checkpoint: "x.ckpt", every: -1}, "-checkpoint-every must be positive"},
		{"negative-every-non-sweep", "ablation", durabilityArgs{every: -1}, "-checkpoint-every must be positive"},
		// A non-default cadence with no checkpoint file would be ignored
		// silently; require -checkpoint to give it something to pace.
		{"every-without-checkpoint", "table2", durabilityArgs{every: 5}, "-checkpoint-every needs -checkpoint"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateDurability(c.exp, c.dur)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validateDurability(%q, %+v) = %v, want ok", c.exp, c.dur, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("validateDurability(%q, %+v) = %v, want error containing %q", c.exp, c.dur, err, c.wantErr)
			}
		})
	}
}

// TestDurabilityRejectedForEveryNonSweepExperiment cross-checks the two
// experiment lists: every advertised experiment either supports the
// durability flags or rejects them with the sweep-experiment message.
func TestDurabilityRejectedForEveryNonSweepExperiment(t *testing.T) {
	sweep := make(map[string]bool, len(sweepExperiments))
	for _, e := range sweepExperiments {
		if err := validateArgs(e, "slot", 1, 1, 0, 0); err != nil {
			t.Fatalf("sweepExperiments lists %q, which validateArgs rejects: %v", e, err)
		}
		sweep[e] = true
	}
	d := durabilityArgs{checkpoint: "x.ckpt", every: 1}
	for _, e := range experiments {
		err := validateDurability(e, d)
		if sweep[e] != (err == nil) {
			t.Fatalf("experiment %q: durability flags accepted=%v, want %v (err %v)", e, err == nil, sweep[e], err)
		}
	}
}

// TestResumeCommandTable pins the printed resume command: -crash-after is
// stripped (in both flag spellings), -resume is appended exactly once.
func TestResumeCommandTable(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want string
	}{
		{
			"append-resume",
			[]string{"volabench", "-exp", "table2", "-checkpoint", "x.ckpt"},
			"volabench -exp table2 -checkpoint x.ckpt -resume",
		},
		{
			"strip-crash-after-pair",
			[]string{"volabench", "-exp", "table2", "-checkpoint", "x.ckpt", "-crash-after", "3"},
			"volabench -exp table2 -checkpoint x.ckpt -resume",
		},
		{
			"strip-crash-after-eq",
			[]string{"volabench", "-crash-after=3", "-checkpoint", "x.ckpt"},
			"volabench -checkpoint x.ckpt -resume",
		},
		{
			"strip-double-dash-form",
			[]string{"volabench", "--crash-after", "3", "--checkpoint", "x.ckpt"},
			"volabench --checkpoint x.ckpt -resume",
		},
		{
			"resume-already-present",
			[]string{"volabench", "-checkpoint", "x.ckpt", "-resume"},
			"volabench -checkpoint x.ckpt -resume",
		},
		{
			"keeps-other-flags",
			[]string{"volabench", "-exp", "tracesweep", "-mode", "event", "-seed", "7", "-checkpoint", "x.ckpt"},
			"volabench -exp tracesweep -mode event -seed 7 -checkpoint x.ckpt -resume",
		},
		// Shell quoting: a path with a space must survive a copy-paste back
		// into a POSIX shell, in both the pair and the = flag spellings.
		{
			"quotes-space-in-pair-value",
			[]string{"volabench", "-exp", "table2", "-checkpoint", "my run.ckpt"},
			"volabench -exp table2 -checkpoint 'my run.ckpt' -resume",
		},
		{
			"quotes-space-in-eq-form",
			[]string{"volabench", "-checkpoint=my run.ckpt"},
			"volabench '-checkpoint=my run.ckpt' -resume",
		},
		{
			"quotes-embedded-single-quote",
			[]string{"volabench", "-checkpoint", "it's.ckpt"},
			`volabench -checkpoint 'it'\''s.ckpt' -resume`,
		},
		{
			"quotes-argv0-with-space",
			[]string{"/tmp/my tools/volabench", "-checkpoint", "x.ckpt"},
			"'/tmp/my tools/volabench' -checkpoint x.ckpt -resume",
		},
		{
			"quotes-shell-metacharacters",
			[]string{"volabench", "-checkpoint", "runs/$(date).ckpt", "-trace-file", "a;b.trace"},
			"volabench -checkpoint 'runs/$(date).ckpt' -trace-file 'a;b.trace' -resume",
		},
		{
			"quotes-empty-value",
			[]string{"volabench", "-checkpoint", ""},
			"volabench -checkpoint '' -resume",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := resumeCommand(c.argv); got != c.want {
				t.Fatalf("resumeCommand(%v)\n got  %q\n want %q", c.argv, got, c.want)
			}
		})
	}
}

// TestInterruptOutcome pins the graceful-interrupt exit contract: code 130
// and a message naming the progress, the checkpoint and the resume command.
func TestInterruptOutcome(t *testing.T) {
	ie := &volatile.InterruptedError{Path: "x.ckpt", Committed: 7, Chunks: 40}
	code, msg := interruptOutcome(ie, "volabench -exp table2 -checkpoint x.ckpt -resume")
	if code != 130 {
		t.Fatalf("exit code %d, want 130", code)
	}
	for _, want := range []string{"7/40", "x.ckpt", "resume with: volabench -exp table2 -checkpoint x.ckpt -resume"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("interrupt message %q missing %q", msg, want)
		}
	}
}
