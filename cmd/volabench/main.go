// Command volabench regenerates the paper's experimental artifacts:
//
//	volabench -exp table2              Table 2 (dfb + wins, all 17 heuristics)
//	volabench -exp figure2             Figure 2 (dfb vs wmin, ASCII plot + CSV)
//	volabench -exp table3x5            Table 3 left (communication ×5)
//	volabench -exp table3x10           Table 3 right (communication ×10)
//	volabench -exp ablation            replication & correction ablations
//	volabench -exp emctgain            EMCT-vs-MCT makespan ratio + Wilcoxon
//	volabench -exp emctgain-norepl     the same with replication disabled
//	volabench -exp tracesweep          Table 2 layout on synthetic FTA-style
//	                                   traces (-trace-style, -trace-len), or on
//	                                   recorded trace files (-trace-file, repeatable)
//	volabench -exp dfrs                batch-vs-fractional comparison (DFRS-style):
//	                                   FCFS + EASY batch baselines head-to-head
//	                                   with the paper's heuristics, per-cell columns
//	volabench -exp largep              volunteer-grid regime (-p sets the platform
//	                                   size, default 1000): full-width rounds over
//	                                   the informed greedy pairs; pair with
//	                                   -mode event at P >= 10k
//	volabench -exp moldable            moldable iterations: -alloc picks the
//	                                   per-iteration allocation policy (fixed|
//	                                   maximum-iters|split-into[:k]|reshape[:s],
//	                                   default maximum-iters) deciding each
//	                                   iteration's task count at the barrier
//	volabench -print-grid              the Table 1 parameter grid
//
// -scenarios and -trials scale the sweep; the paper uses 247 scenarios ×
// 10 trials per cell for Table 2 / Figure 2 and 100 × 10 for Table 3.
//
// -p overrides the platform size (processors) for the sweep experiments
// (table2, figure2, table3*, largep); 0 keeps each experiment's default.
//
// -mode selects the engine time base: slot (per-slot stepping, the default)
// or event (sojourn-sampled availability with quiet-slot skipping — same
// statistics, faster on quiet platforms).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	volatile "repro"
	"repro/internal/atomicio"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/sweepreq"
)

func main() {
	var (
		exp        = flag.String("exp", "table2", "experiment: table2|figure2|table3x5|table3x10|ablation|emctgain|emctgain-norepl|tracesweep|dfrs|largep|moldable")
		mode       = flag.String("mode", "slot", "engine time base: slot|event (event advances to the next availability transition and skips quiet slots)")
		scenarios  = flag.Int("scenarios", 6, "scenarios per grid cell")
		trials     = flag.Int("trials", 4, "trials per scenario")
		procs      = flag.Int("p", 0, "platform size override for sweep experiments (0 = experiment default; largep defaults to 1000)")
		seed       = flag.Uint64("seed", 42, "sweep seed")
		workers    = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		csvPath    = flag.String("csv", "", "also write results to this CSV file")
		grid       = flag.Bool("print-grid", false, "print the Table 1 grid and exit")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		traceStyle = flag.String("trace-style", "weibull", "tracesweep sojourn family: weibull|pareto|lognormal")
		traceLen   = flag.Int("trace-len", 1000, "tracesweep vector length in slots")
		alloc      = flag.String("alloc", "", "moldable: allocation policy spec ("+strings.Join(volatile.AllocPolicySpecs(), "|")+"; default maximum-iters)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		ckPath     = flag.String("checkpoint", "", "persist sweep progress to this file at chunk boundaries (crash-safe; enables SIGINT/SIGTERM graceful stop)")
		ckEvery    = flag.Int("checkpoint-every", volatile.DefaultCheckpointEvery, "chunks between checkpoint writes")
		resume     = flag.Bool("resume", false, "resume the sweep from -checkpoint (missing file starts from scratch)")
		crashAfter = flag.Int("crash-after", 0, "fault injection: kill the sweep committer after this many committed chunks (0 = off; requires -checkpoint)")
		digest     = flag.Bool("digest", false, "print the result digest (sha256 of the full-precision output) after the sweep")
		retries    = flag.Int("retries", 0, "per-instance retry budget for failed runs")
		contOnErr  = flag.Bool("continue-on-error", false, "drop instances that exhaust their retries instead of aborting the sweep")
	)
	var traceFiles multiFlag
	flag.Var(&traceFiles, "trace-file", "tracesweep: replay this recorded trace file (repeatable; format of trace.Set.Write / cmd/volatrace)")
	flag.Parse()

	if *grid {
		printGrid()
		return
	}

	// Validate everything before any profile starts, so a typo exits
	// cleanly instead of leaving a truncated profile file behind. The
	// request is the same shape cmd/volaserved accepts over JSON; the two
	// surfaces share validation, construction and the config digest.
	req := sweepreq.Request{
		Exp: *exp, Mode: *mode, Scenarios: *scenarios, Trials: *trials,
		Procs: *procs, Seed: *seed, Workers: *workers,
		TraceStyle: *traceStyle, TraceLen: *traceLen, TraceFiles: traceFiles,
		Alloc: *alloc, Retries: *retries, ContinueOnError: *contOnErr,
	}
	if err := req.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "volabench:", err)
		os.Exit(2)
	}
	dur := durabilityArgs{
		checkpoint: *ckPath, every: *ckEvery, resume: *resume,
		crashAfter: *crashAfter, digest: *digest,
		retries: *retries, continueOnError: *contOnErr,
	}
	if err := validateDurability(*exp, dur); err != nil {
		fmt.Fprintln(os.Stderr, "volabench:", err)
		os.Exit(2)
	}
	simMode, err := volatile.ParseMode(*mode)
	fatalIf(err)

	// With a checkpoint configured, SIGINT/SIGTERM stop the sweep
	// gracefully: in-flight chunks commit, a final checkpoint is written,
	// and the exit message names the resume command. A second signal kills
	// immediately (default disposition is restored after the first).
	var stopCh chan struct{}
	if dur.checkpoint != "" {
		stopCh = make(chan struct{})
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigCh
			signal.Reset(os.Interrupt, syscall.SIGTERM)
			fmt.Fprintln(os.Stderr, "\nvolabench: interrupted — committing in-flight chunks and checkpointing (signal again to kill)")
			close(stopCh)
		}()
	}
	dur.stop = stopCh

	// Profiles cover the experiment itself (not flag parsing or the grid
	// printer). On error exits the CPU profile is not flushed; profile
	// healthy runs.
	var cpuProfF *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fatalIf(err)
		fatalIf(pprof.StartCPUProfile(f))
		cpuProfF = f
	}

	progress := func(done, total int) {
		if *quiet {
			return
		}
		if done%50 == 0 || done == total {
			fmt.Fprintf(os.Stderr, "\r%d/%d instances", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	start := time.Now()
	switch *exp {
	case "table2", "figure2", "table3x5", "table3x10", "tracesweep", "dfrs", "largep", "moldable":
		// Every sweep-family experiment goes through the shared request
		// layer: Build validates, constructs the config and resolves its
		// content digest exactly as the sweep service does.
		built, err := sweepreq.Build(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "volabench:", err)
			os.Exit(2)
		}
		res, err := built.Run(sweepreq.RunOpts{
			Progress:   progress,
			Checkpoint: dur.checkpointConfig(),
			Stop:       dur.stop,
			Faults:     dur.faultPlan(),
		})
		handleSweepError(err)
		elapsed := time.Since(start).Round(time.Second)
		switch *exp {
		case "table2":
			fmt.Printf("Table 2 — results over all problem instances (%d instances, %d censored runs, %v)\n\n",
				res.Instances, res.Censored, elapsed)
			printRows(res.Overall, *csvPath)
		case "figure2":
			fmt.Printf("Figure 2 — averaged dfb vs wmin (%d instances, %v)\n\n",
				res.Instances, elapsed)
			printFigure2(res, built.Heuristics, *csvPath)
		case "table3x5", "table3x10":
			scale := 5
			if *exp == "table3x10" {
				scale = 10
			}
			fmt.Printf("Table 3 — contention-prone, communication times ×%d (%d instances, %v)\n\n",
				scale, res.Instances, elapsed)
			printRows(res.Overall, *csvPath)
		case "tracesweep":
			if len(traceFiles) > 0 {
				fmt.Printf("Trace-driven Table 2 — %d recorded trace file(s) (%d instances, %d censored runs, %v)\n\n",
					len(traceFiles), res.Instances, res.Censored, elapsed)
			} else {
				fmt.Printf("Trace-driven Table 2 — synthetic %s traces, %d slots each (%d instances, %d censored runs, %v)\n\n",
					*traceStyle, *traceLen, res.Instances, res.Censored, elapsed)
			}
			printRows(res.Overall, *csvPath)
		case "dfrs":
			fmt.Printf("DFRS comparison — batch baselines vs fractional heuristics (%d instances, %d censored runs, %v)\n\n",
				res.Instances, res.Censored, elapsed)
			printRows(res.Overall, *csvPath)
			fmt.Println()
			printCompareCells(res)
		case "largep":
			p := *procs
			if p == 0 {
				p = 1000
			}
			fmt.Printf("Volunteer grid — P = %d processors, n = P tasks (%d instances, %d censored runs, %v)\n\n",
				p, res.Instances, res.Censored, elapsed)
			printRows(res.Overall, *csvPath)
		case "moldable":
			spec := *alloc
			if spec == "" {
				spec = "maximum-iters"
			}
			fmt.Printf("Moldable iterations — allocation policy %s sizes each iteration at the barrier (%d instances, %d censored runs, %v)\n\n",
				spec, res.Instances, res.Censored, elapsed)
			printRows(res.Overall, *csvPath)
		}
		reportSweepHealth(res, dur)

	case "ablation":
		runAblation(simMode, *scenarios, *trials, *seed, *workers, progress)

	case "emctgain":
		runEMCTGain(simMode, *scenarios, *trials, *seed, false)

	case "emctgain-norepl":
		runEMCTGain(simMode, *scenarios, *trials, *seed, true)

	default:
		fmt.Fprintf(os.Stderr, "volabench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if cpuProfF != nil {
		pprof.StopCPUProfile()
		fatalIf(cpuProfF.Close())
		fmt.Fprintf(os.Stderr, "wrote %s\n", *cpuprofile)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		fatalIf(err)
		runtime.GC() // materialize the live-heap picture
		fatalIf(pprof.WriteHeapProfile(f))
		fatalIf(f.Close())
		fmt.Fprintf(os.Stderr, "wrote %s\n", *memprofile)
	}
}

func mustSweep(cfg volatile.SweepConfig) *volatile.SweepResult {
	res, err := volatile.RunSweep(cfg)
	handleSweepError(err)
	return res
}

// handleSweepError exits on a sweep error. A graceful interrupt
// (*volatile.InterruptedError) gets the conventional 130 and the exact
// command that resumes the sweep; everything else is a plain failure.
func handleSweepError(err error) {
	if err == nil {
		return
	}
	var ie *volatile.InterruptedError
	if errors.As(err, &ie) {
		code, msg := interruptOutcome(ie, resumeCommand(os.Args))
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(code)
	}
	fmt.Fprintln(os.Stderr, "volabench:", err)
	os.Exit(1)
}

// reportSweepHealth surfaces the robustness bookkeeping — dropped
// instances, failed checkpoint writes — and the result digest when asked.
func reportSweepHealth(res *volatile.SweepResult, dur durabilityArgs) {
	if res.FailedInstances > 0 {
		fmt.Fprintf(os.Stderr, "volabench: %d instance(s) dropped after retry exhaustion:\n", res.FailedInstances)
		for _, e := range res.InstanceErrors {
			fmt.Fprintf(os.Stderr, "  %s\n", e)
		}
	}
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "volabench: warning: %s\n", w)
	}
	if dur.digest {
		fmt.Printf("digest %s\n", res.Digest())
	}
}

func printGrid() {
	tb := report.NewTable("parameter", "values")
	tb.AddRow("p", "20")
	tb.AddRow("n", "5, 10, 20, 40")
	tb.AddRow("ncom", "5, 10, 20")
	tb.AddRow("wmin", "1..10")
	fmt.Println("Table 1 — parameter values for the Markov experiments")
	fmt.Print(tb.String())
	fmt.Printf("\n%d grid cells total\n", len(volatile.PaperGrid()))
}

func printRows(rows []volatile.TableRow, csvPath string) {
	tb := report.NewTable("Algorithm", "Average dfb", "#wins")
	var csv [][]string
	for _, r := range rows {
		tb.AddRow(r.Name, fmt.Sprintf("%.2f", r.AvgDFB), fmt.Sprintf("%d", r.Wins))
		csv = append(csv, []string{r.Name, fmt.Sprintf("%.4f", r.AvgDFB), fmt.Sprintf("%d", r.Wins)})
	}
	fmt.Print(tb.String())
	if csvPath != "" {
		writeCSV(csvPath, []string{"algorithm", "avg_dfb", "wins"}, csv)
	}
}

func printFigure2(res *volatile.SweepResult, heuristics []string, csvPath string) {
	wmins, series := volatile.Figure2Series(res, heuristics)
	labels := make([]string, len(wmins))
	for i, w := range wmins {
		labels[i] = fmt.Sprintf("%d", w)
	}
	// Figure2Series omits heuristics with no data at all; plot only the rest.
	names := make([]string, 0, len(heuristics))
	for _, h := range heuristics {
		if _, ok := series[h]; ok {
			names = append(names, h)
		}
	}
	sort.Strings(names)
	var plotSeries []report.Series
	for _, h := range names {
		plotSeries = append(plotSeries, report.Series{Name: h, Y: series[h]})
	}
	if err := report.AsciiPlot(os.Stdout, "average dfb vs wmin", labels, plotSeries, 18); err != nil {
		fmt.Fprintln(os.Stderr, "volabench:", err)
		os.Exit(1)
	}
	// Numeric table below the plot.
	headers := append([]string{"wmin"}, names...)
	tb := report.NewTable(headers...)
	var csv [][]string
	for i, w := range wmins {
		row := []string{fmt.Sprintf("%d", w)}
		for _, h := range names {
			row = append(row, fmt.Sprintf("%.2f", series[h][i]))
		}
		tb.AddRow(row...)
		csv = append(csv, row)
	}
	fmt.Println()
	fmt.Print(tb.String())
	if csvPath != "" {
		writeCSV(csvPath, headers, csv)
	}
}

// runAblation quantifies two design choices the paper calls out: task
// replication (Section 6.1) and the contention-correcting factor
// (Section 6.3.1), by re-running a mid-grid cell with each toggled.
func runAblation(mode volatile.Mode, scenarios, trials int, seed uint64, workers int, progress func(int, int)) {
	cell := volatile.Cell{Tasks: 5, Ncom: 5, Wmin: 5} // few tasks: replication matters
	fmt.Println("Ablation A — replication on/off (n=5, ncom=5, wmin=5, emct)")
	for _, repl := range []bool{true, false} {
		opt := volatile.ScenarioOptions{}
		if !repl {
			opt.MaxReplicas = -1
		}
		res := mustSweep(volatile.SweepConfig{
			Cells: []volatile.Cell{cell}, Heuristics: []string{"emct", "mct"},
			Scenarios: scenarios * 4, Trials: trials, Seed: seed, Mode: mode,
			Options: opt, Workers: workers, Progress: progress,
		})
		mean := meanMakespanProxy(res)
		fmt.Printf("  replication=%-5v avg dfb spread %.2f (emct vs mct over %d instances)\n",
			repl, mean, res.Instances)
		printRows(res.Overall, "")
		fmt.Println()
	}

	fmt.Println("Ablation B — contention correction under communication ×10 (table3 cell)")
	res := mustSweep(volatile.SweepConfig{
		Cells:      []volatile.Cell{volatile.ContentionCell()},
		Heuristics: []string{"emct", "emct*", "mct", "mct*", "ud", "ud*", "lw", "lw*"},
		Scenarios:  scenarios * 4, Trials: trials, Seed: seed, Mode: mode,
		Options: volatile.ScenarioOptions{CommScale: 10},
		Workers: workers, Progress: progress,
	})
	printRows(res.Overall, "")
}

// runEMCTGain reproduces the paper's headline "EMCT makespans are 10%
// smaller than MCT's": it runs both heuristics on identical instances across
// the grid, reports the mean makespan ratio, and tests significance with the
// Wilcoxon signed-rank test.
func runEMCTGain(mode volatile.Mode, scenarios, trials int, seed uint64, noReplication bool) {
	var emct, mct []float64
	cells := volatile.PaperGrid()
	opt := volatile.ScenarioOptions{}
	if noReplication {
		opt.MaxReplicas = -1
	}
	for ci, cell := range cells {
		for s := 0; s < scenarios; s++ {
			scn := volatile.NewScenario(seed+uint64(ci*1000+s), cell, opt)
			for tr := 0; tr < trials; tr++ {
				a, err := scn.RunMode("emct", uint64(tr), mode)
				fatalIf(err)
				b, err := scn.RunMode("mct", uint64(tr), mode)
				fatalIf(err)
				if a.Completed && b.Completed {
					emct = append(emct, float64(a.Makespan))
					mct = append(mct, float64(b.Makespan))
				}
			}
		}
	}
	var ratioSum float64
	for i := range emct {
		ratioSum += mct[i] / emct[i]
	}
	fmt.Printf("EMCT vs MCT over %d paired instances (full grid, replication disabled=%v):\n",
		len(emct), noReplication)
	fmt.Printf("  mean makespan ratio mct/emct = %.3f (paper reports ~1.10)\n",
		ratioSum/float64(len(emct)))
	verdict, err := stats.PairedComparison("emct", "mct", emct, mct)
	fatalIf(err)
	fmt.Println(" ", verdict)
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// printCompareCells renders the per-cell batch-vs-fractional columns: each
// family's best average dfb (against the per-instance best over both
// families) and the gap batch concedes.
func printCompareCells(res *volatile.SweepResult) {
	rows := volatile.CompareCells(res)
	tb := report.NewTable("cell", "best fractional", "dfb", "best batch", "dfb", "batch gap")
	for _, r := range rows {
		tb.AddRow(r.Cell.String(),
			r.BestFractional, fmt.Sprintf("%.2f", r.FractionalDFB),
			r.BestBatch, fmt.Sprintf("%.2f", r.BatchDFB),
			fmt.Sprintf("%+.2f", r.Gap))
	}
	fmt.Println("Per-cell degradation-from-best, batch vs fractional:")
	fmt.Print(tb.String())
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "volabench:", err)
		os.Exit(1)
	}
}

// meanMakespanProxy summarizes a two-heuristic sweep as the dfb gap.
func meanMakespanProxy(res *volatile.SweepResult) float64 {
	if len(res.Overall) < 2 {
		return 0
	}
	return res.Overall[len(res.Overall)-1].AvgDFB - res.Overall[0].AvgDFB
}

func writeCSV(path string, headers []string, rows [][]string) {
	// Atomic write: an interrupted run leaves either the previous CSV or
	// the complete new one, never a torn file.
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		return report.WriteCSV(w, headers, rows)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "volabench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
