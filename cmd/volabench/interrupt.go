package main

// Durability plumbing for the sweep experiments: the -checkpoint/-resume/
// -retries flag bundle, its validation, and the graceful-interrupt outcome
// (exit code + resume command). Everything here is a pure function of its
// inputs so the table tests in interrupt_test.go can pin the CLI contract
// without running sweeps or delivering signals.

import (
	"fmt"
	"strings"

	volatile "repro"
	"repro/internal/faultinject"
	"repro/internal/sweepreq"
)

// sweepExperiments lists the -exp values that run through the sharded sweep
// pipeline and therefore support the durability flags. The other
// experiments (ablation, emctgain*) run several sweeps or none; a
// checkpoint file would be silently overwritten mid-way, so the flags are
// rejected there. The canonical list lives in internal/sweepreq, shared
// with cmd/volaserved.
var sweepExperiments = sweepreq.SweepExperiments()

// durabilityArgs bundles the durability flags after parsing.
type durabilityArgs struct {
	checkpoint      string
	every           int
	resume          bool
	crashAfter      int
	digest          bool
	retries         int
	continueOnError bool
	stop            chan struct{}
}

// set reports whether any durability flag differs from its default. A
// non-default -checkpoint-every counts: it is meaningless without
// -checkpoint and must not be ignored silently.
func (d durabilityArgs) set() bool {
	return d.checkpoint != "" || d.resume || d.crashAfter != 0 || d.digest ||
		d.retries != 0 || d.continueOnError ||
		(d.every != 0 && d.every != volatile.DefaultCheckpointEvery)
}

// validateDurability rejects inconsistent durability flags before any sweep
// work starts.
func validateDurability(exp string, d durabilityArgs) error {
	// A negative interval is always a typo, whatever the other flags say:
	// the library would otherwise have to choose between erroring late and
	// silently substituting the default cadence.
	if d.every < 0 {
		return fmt.Errorf("-checkpoint-every must be positive (got %d)", d.every)
	}
	if !d.set() {
		return nil
	}
	sweep := false
	for _, e := range sweepExperiments {
		if exp == e {
			sweep = true
			break
		}
	}
	if !sweep {
		return fmt.Errorf("-checkpoint/-resume/-crash-after/-digest/-retries/-continue-on-error apply only to sweep experiments (%s), not %q",
			strings.Join(sweepExperiments, ", "), exp)
	}
	if d.every <= 0 {
		return fmt.Errorf("-checkpoint-every must be positive (got %d)", d.every)
	}
	if d.retries < 0 {
		return fmt.Errorf("-retries must be >= 0 (got %d)", d.retries)
	}
	if d.crashAfter < 0 {
		return fmt.Errorf("-crash-after must be >= 0, where 0 disables the injected crash (got %d)", d.crashAfter)
	}
	if d.resume && d.checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint to name the file to resume from")
	}
	if d.crashAfter > 0 && d.checkpoint == "" {
		return fmt.Errorf("-crash-after without -checkpoint would lose the progress it simulates losing; add -checkpoint")
	}
	if d.every != volatile.DefaultCheckpointEvery && d.checkpoint == "" {
		return fmt.Errorf("-checkpoint-every needs -checkpoint to name the file it paces")
	}
	return nil
}

// checkpointConfig builds the library checkpoint config ("" path → nil).
func (d durabilityArgs) checkpointConfig() *volatile.CheckpointConfig {
	if d.checkpoint == "" {
		return nil
	}
	return &volatile.CheckpointConfig{Path: d.checkpoint, Every: d.every, Resume: d.resume}
}

// faultPlan builds the injection plan (-crash-after only; nil when off).
func (d durabilityArgs) faultPlan() *faultinject.Plan {
	if d.crashAfter == 0 {
		return nil
	}
	return &faultinject.Plan{CrashAfterChunks: d.crashAfter}
}

// interruptOutcome maps a graceful interrupt to its exit code (130, the
// shell convention for SIGINT) and the message naming the committed
// progress and the resume command.
func interruptOutcome(ie *volatile.InterruptedError, resumeCmd string) (code int, msg string) {
	return 130, fmt.Sprintf("volabench: %v\nvolabench: resume with: %s", ie, resumeCmd)
}

// resumeCommand rebuilds the invocation that continues an interrupted
// sweep: the original argv with any -crash-after injection stripped (a
// resume should not re-crash) and -resume appended if absent. Each printed
// token is shell-quoted as needed, so a -checkpoint or -trace-file path
// containing spaces (or any other shell metacharacter) yields a command
// that can be copied back into a POSIX shell verbatim.
func resumeCommand(argv []string) string {
	out := make([]string, 0, len(argv)+1)
	hasResume := false
	skipValue := false
	for i, a := range argv {
		if i == 0 {
			out = append(out, shellQuote(a))
			continue
		}
		if skipValue {
			skipValue = false
			continue
		}
		name, hasEq := a, strings.Contains(a, "=")
		if hasEq {
			name = a[:strings.Index(a, "=")]
		}
		switch strings.TrimLeft(name, "-") {
		case "crash-after":
			skipValue = !hasEq // "-crash-after 3" carries its value in the next arg
			continue
		case "resume":
			hasResume = true
		}
		out = append(out, shellQuote(a))
	}
	if !hasResume {
		out = append(out, "-resume")
	}
	return strings.Join(out, " ")
}

// shellQuote returns s single-quoted for a POSIX shell when it contains
// anything outside the conservative always-safe set; plain tokens (flag
// names, numbers, simple paths, -flag=value pairs) pass through unchanged.
// An embedded single quote closes the quoting, emits a backslash-escaped
// quote, and reopens it (the standard POSIX splice).
func shellQuote(s string) string {
	if s == "" {
		return "''"
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		safe := ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9') ||
			c == '-' || c == '_' || c == '.' || c == '/' || c == '=' ||
			c == ',' || c == ':' || c == '+' || c == '@' || c == '%'
		if !safe {
			return "'" + strings.ReplaceAll(s, "'", `'\''`) + "'"
		}
	}
	return s
}
