package main

import (
	"strings"
	"testing"
)

// TestValidateArgsTable pins the CLI's input validation: every experiment
// name the usage text advertises is accepted with the default knobs, and
// unusable knobs fail fast with an actionable message.
func TestValidateArgsTable(t *testing.T) {
	cases := []struct {
		name      string
		exp       string
		scenarios int
		trials    int
		workers   int
		wantErr   string // substring; empty = valid
	}{
		// Every advertised experiment with the flag defaults.
		{"table2-defaults", "table2", 6, 4, 0, ""},
		{"figure2", "figure2", 6, 4, 0, ""},
		{"table3x5", "table3x5", 6, 4, 0, ""},
		{"table3x10", "table3x10", 6, 4, 0, ""},
		{"ablation", "ablation", 6, 4, 0, ""},
		{"emctgain", "emctgain", 6, 4, 0, ""},
		{"emctgain-norepl", "emctgain-norepl", 6, 4, 0, ""},
		{"tracesweep", "tracesweep", 6, 4, 0, ""},
		{"dfrs", "dfrs", 6, 4, 0, ""},
		// Explicit worker counts stay valid; 0 means all cores.
		{"explicit-workers", "table2", 1, 1, 8, ""},

		{"zero-scenarios", "table2", 0, 4, 0, "-scenarios must be positive"},
		{"negative-scenarios", "table2", -3, 4, 0, "-scenarios must be positive"},
		{"zero-trials", "table2", 6, 0, 0, "-trials must be positive"},
		{"negative-trials", "table2", 6, -1, 0, "-trials must be positive"},
		{"negative-workers", "table2", 6, 4, -2, "-workers must be >= 0"},
		{"unknown-exp", "tabel2", 6, 4, 0, `unknown experiment "tabel2"`},
		{"empty-exp", "", 6, 4, 0, "unknown experiment"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateArgs(c.exp, c.scenarios, c.trials, c.workers)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validateArgs(%q,%d,%d,%d) = %v, want ok",
						c.exp, c.scenarios, c.trials, c.workers, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("validateArgs(%q,%d,%d,%d) = %v, want error containing %q",
					c.exp, c.scenarios, c.trials, c.workers, err, c.wantErr)
			}
		})
	}
}

// TestUnknownExperimentListsAllNames pins that a typo'd -exp names every
// valid experiment, so the error is self-serve.
func TestUnknownExperimentListsAllNames(t *testing.T) {
	err := validateArgs("nope", 1, 1, 0)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, e := range experiments {
		if !strings.Contains(err.Error(), e) {
			t.Fatalf("error %q does not list experiment %q", err, e)
		}
	}
}
