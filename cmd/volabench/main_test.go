package main

import (
	"strings"
	"testing"
)

// TestValidateArgsTable pins the CLI's input validation: every experiment
// name the usage text advertises is accepted with the default knobs, and
// unusable knobs fail fast with an actionable message.
func TestValidateArgsTable(t *testing.T) {
	cases := []struct {
		name      string
		exp       string
		mode      string
		scenarios int
		trials    int
		workers   int
		procs     int
		wantErr   string // substring; empty = valid
	}{
		// Every advertised experiment with the flag defaults.
		{"table2-defaults", "table2", "slot", 6, 4, 0, 0, ""},
		{"figure2", "figure2", "slot", 6, 4, 0, 0, ""},
		{"table3x5", "table3x5", "slot", 6, 4, 0, 0, ""},
		{"table3x10", "table3x10", "slot", 6, 4, 0, 0, ""},
		{"ablation", "ablation", "slot", 6, 4, 0, 0, ""},
		{"emctgain", "emctgain", "slot", 6, 4, 0, 0, ""},
		{"emctgain-norepl", "emctgain-norepl", "slot", 6, 4, 0, 0, ""},
		{"tracesweep", "tracesweep", "slot", 6, 4, 0, 0, ""},
		{"dfrs", "dfrs", "slot", 6, 4, 0, 0, ""},
		{"largep", "largep", "slot", 6, 4, 0, 0, ""},
		// Explicit worker counts stay valid; 0 means all cores.
		{"explicit-workers", "table2", "slot", 1, 1, 8, 0, ""},
		// Platform-size overrides: 0 means the experiment default.
		{"largep-10k", "largep", "event", 1, 1, 0, 10_000, ""},
		{"table2-p1000", "table2", "slot", 6, 4, 0, 1000, ""},
		// Every experiment accepts the event time base too.
		{"table2-event", "table2", "event", 6, 4, 0, 0, ""},
		{"tracesweep-event", "tracesweep", "event", 6, 4, 0, 0, ""},
		{"dfrs-event", "dfrs", "event", 6, 4, 0, 0, ""},
		{"emctgain-event", "emctgain", "event", 6, 4, 0, 0, ""},
		{"largep-event", "largep", "event", 6, 4, 0, 0, ""},

		{"zero-scenarios", "table2", "slot", 0, 4, 0, 0, "-scenarios must be positive"},
		{"negative-scenarios", "table2", "slot", -3, 4, 0, 0, "-scenarios must be positive"},
		{"zero-trials", "table2", "slot", 6, 0, 0, 0, "-trials must be positive"},
		{"negative-trials", "table2", "slot", 6, -1, 0, 0, "-trials must be positive"},
		{"negative-workers", "table2", "slot", 6, 4, -2, 0, "-workers must be >= 0"},
		{"negative-procs", "largep", "slot", 6, 4, 0, -100, "-p must be >= 0"},
		{"unknown-exp", "tabel2", "slot", 6, 4, 0, 0, `unknown experiment "tabel2"`},
		{"empty-exp", "", "slot", 6, 4, 0, 0, "unknown experiment"},
		{"unknown-mode", "table2", "evnt", 6, 4, 0, 0, `unknown mode "evnt"`},
		{"empty-mode", "table2", "", 6, 4, 0, 0, "unknown mode"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateArgs(c.exp, c.mode, c.scenarios, c.trials, c.workers, c.procs)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validateArgs(%q,%q,%d,%d,%d,%d) = %v, want ok",
						c.exp, c.mode, c.scenarios, c.trials, c.workers, c.procs, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("validateArgs(%q,%q,%d,%d,%d,%d) = %v, want error containing %q",
					c.exp, c.mode, c.scenarios, c.trials, c.workers, c.procs, err, c.wantErr)
			}
		})
	}
}

// TestUnknownExperimentListsAllNames pins that a typo'd -exp names every
// valid experiment, so the error is self-serve.
func TestUnknownExperimentListsAllNames(t *testing.T) {
	err := validateArgs("nope", "slot", 1, 1, 0, 0)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, e := range experiments {
		if !strings.Contains(err.Error(), e) {
			t.Fatalf("error %q does not list experiment %q", err, e)
		}
	}
}

// TestUnknownModeListsAllNames pins the -mode fail-fast path the same way:
// a typo'd time base names every valid mode.
func TestUnknownModeListsAllNames(t *testing.T) {
	err := validateArgs("table2", "sloot", 1, 1, 0, 0)
	if err == nil {
		t.Fatal("unknown mode accepted")
	}
	for _, m := range []string{"slot", "event"} {
		if !strings.Contains(err.Error(), m) {
			t.Fatalf("error %q does not list mode %q", err, m)
		}
	}
}
