package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/sweepreq"
)

func newTestServer(t *testing.T, dir string) (*httptest.Server, *jobs.Scheduler) {
	t.Helper()
	sched, err := jobs.New(jobs.Options{
		DataDir:         dir,
		CheckpointEvery: 1,
		PartialInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(sched))
	t.Cleanup(func() {
		ts.Close()
		sched.Stop()
	})
	return ts, sched
}

func submit(t *testing.T, ts *httptest.Server, req sweepreq.Request) (submitResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return sr, resp.StatusCode
}

// followEvents streams /jobs/{id}/events (NDJSON) until the stream closes,
// returning every event.
func followEvents(t *testing.T, ts *httptest.Server, id string) []jobs.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type %q, want application/x-ndjson", ct)
	}
	var evs []jobs.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	return evs
}

func getResult(t *testing.T, ts *httptest.Server, id string) (*jobs.CachedResult, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var cr jobs.CachedResult
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return &cr, resp.StatusCode
}

func fastReq() sweepreq.Request {
	return sweepreq.Request{Exp: "table3x5", Scenarios: 1, Trials: 1, Seed: 21}
}

// TestSubmitStreamResult is the basic end-to-end session: submit, follow
// the event stream to completion, fetch the result, cross-check the digest
// against a direct library run.
func TestSubmitStreamResult(t *testing.T) {
	ts, _ := newTestServer(t, t.TempDir())

	sr, code := submit(t, ts, fastReq())
	if code != http.StatusCreated || !sr.Started {
		t.Fatalf("submit: code=%d started=%v, want 201/true", code, sr.Started)
	}
	if sr.ID == "" || sr.Exp != "table3x5" {
		t.Fatalf("submit response %+v", sr)
	}

	evs := followEvents(t, ts, sr.ID)
	if len(evs) == 0 || evs[len(evs)-1].Type != "done" {
		t.Fatalf("event stream did not end in done: %+v", evs)
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d (stream must replay from 0 gaplessly)", i, ev.Seq)
		}
	}

	res, code := getResult(t, ts, sr.ID)
	if code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	built, err := sweepreq.Build(fastReq())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := built.Run(sweepreq.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultDigest != direct.Digest() {
		t.Fatalf("served digest %s != direct run %s", res.ResultDigest, direct.Digest())
	}
	if res.ConfigDigest != sr.ID || res.Format == "" || len(res.Overall) == 0 {
		t.Fatalf("cached result incomplete: %+v", res)
	}

	// Status and list views agree.
	resp, err := http.Get(ts.URL + "/jobs/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != jobs.StateDone || st.ID != sr.ID {
		t.Fatalf("status %+v, want done/%s", st, sr.ID)
	}
	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != sr.ID {
		t.Fatalf("job list %+v, want exactly the submitted job", list)
	}
}

// TestEventStreamSSE pins the SSE wire format on a replayed (already done)
// job: event:/data: frames, one per log entry.
func TestEventStreamSSE(t *testing.T) {
	ts, _ := newTestServer(t, t.TempDir())
	sr, _ := submit(t, ts, fastReq())
	followEvents(t, ts, sr.ID) // run to completion

	req, err := http.NewRequest("GET", ts.URL+"/jobs/"+sr.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{"event: queued\n", "event: running\n", "event: done\n", "data: {"} {
		if !strings.Contains(body, want) {
			t.Fatalf("SSE body missing %q:\n%s", want, body)
		}
	}
}

// TestCacheHitSecondSubmission pins the service-level cache contract: the
// second identical POST answers 200/started=false and the scheduler never
// launches a second sweep.
func TestCacheHitSecondSubmission(t *testing.T) {
	ts, sched := newTestServer(t, t.TempDir())
	sr1, code := submit(t, ts, fastReq())
	if code != http.StatusCreated {
		t.Fatalf("first submit status %d", code)
	}
	followEvents(t, ts, sr1.ID)

	sr2, code := submit(t, ts, fastReq())
	if code != http.StatusOK || sr2.Started || sr2.ID != sr1.ID {
		t.Fatalf("second submit: code=%d started=%v id=%s, want 200/false/%s", code, sr2.Started, sr2.ID, sr1.ID)
	}
	if n := sched.SweepsStarted(); n != 1 {
		t.Fatalf("cache hit ran a sweep (SweepsStarted=%d)", n)
	}
	res1, _ := getResult(t, ts, sr1.ID)
	res2, _ := getResult(t, ts, sr2.ID)
	if res1.ResultDigest != res2.ResultDigest {
		t.Fatalf("cache hit served a different digest: %s != %s", res2.ResultDigest, res1.ResultDigest)
	}
}

// TestStopRestartResume is the acceptance criterion at the HTTP level: a
// job stopped mid-run via the API, its server torn down, resumes on a
// fresh server over the same data dir and serves the digest of an
// uninterrupted run.
func TestStopRestartResume(t *testing.T) {
	req := sweepreq.Request{Exp: "table3x5", Scenarios: 10, Trials: 4, Seed: 21}
	built, err := sweepreq.Build(req)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := built.Run(sweepreq.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Digest()

	dir := t.TempDir()
	sched1, err := jobs.New(jobs.Options{DataDir: dir, CheckpointEvery: 1, PartialInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(newServer(sched1))
	sr, code := submit(t, ts1, req)
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}
	// Follow the stream until first progress, then stop via the API.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	evReq, err := http.NewRequestWithContext(ctx, "GET", ts1.URL+"/jobs/"+sr.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(evReq)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	stopSent := false
	sawStopped := false
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == "progress" && !stopSent {
			stopSent = true
			stopResp, err := http.Post(ts1.URL+"/jobs/"+sr.ID+"/stop", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			stopResp.Body.Close()
			if stopResp.StatusCode != http.StatusAccepted {
				t.Fatalf("stop status %d", stopResp.StatusCode)
			}
		}
		if ev.Type == "stopped" {
			sawStopped = true
			if ev.CommittedChunks <= 0 || ev.CommittedChunks >= ev.Chunks {
				t.Fatalf("stopped with %d/%d chunks, want a strict prefix", ev.CommittedChunks, ev.Chunks)
			}
		}
		if ev.Type == "done" {
			t.Fatal("job completed before the stop landed; raise the job size")
		}
	}
	resp.Body.Close()
	if !stopSent || !sawStopped {
		t.Fatalf("stop path not exercised (stopSent=%v sawStopped=%v)", stopSent, sawStopped)
	}
	// A stopped job has no result yet.
	if _, code := getResult(t, ts1, sr.ID); code != http.StatusConflict {
		t.Fatalf("result of a stopped job answered %d, want 409", code)
	}
	ts1.Close()
	sched1.Stop() // server restart

	sched2, err := jobs.New(jobs.Options{DataDir: dir, CheckpointEvery: 1, PartialInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(newServer(sched2))
	defer func() {
		ts2.Close()
		sched2.Stop()
	}()
	sr2, code := submit(t, ts2, req)
	if code != http.StatusCreated || !sr2.Started || sr2.ID != sr.ID {
		t.Fatalf("resubmit: code=%d started=%v id=%s, want 201/true/%s", code, sr2.Started, sr2.ID, sr.ID)
	}
	evs := followEvents(t, ts2, sr2.ID)
	if len(evs) == 0 || evs[len(evs)-1].Type != "done" {
		t.Fatalf("resumed job did not finish: %+v", evs)
	}
	res, _ := getResult(t, ts2, sr2.ID)
	if res.ResultDigest != want {
		t.Fatalf("kill-and-restart digest %s != uninterrupted %s", res.ResultDigest, want)
	}
}

// TestBadRequestsAndNotFound pins the error surface.
func TestBadRequestsAndNotFound(t *testing.T) {
	ts, _ := newTestServer(t, t.TempDir())
	cases := []struct {
		name string
		body string
		want string
	}{
		{"invalid-json", "{", "bad request body"},
		{"unknown-field", `{"exp":"table2","nope":1}`, "unknown field"},
		{"unknown-exp", `{"exp":"table9"}`, "unknown experiment"},
		{"non-sweep-exp", `{"exp":"ablation"}`, "does not run through the sweep pipeline"},
		{"bad-scenarios", `{"exp":"table2","scenarios":-1}`, "-scenarios must be positive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var er errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(er.Error, c.want) {
				t.Fatalf("error %q missing %q", er.Error, c.want)
			}
		})
	}
	for _, path := range []string{"/jobs/deadbeef", "/jobs/deadbeef/events", "/jobs/deadbeef/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s status %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/jobs/deadbeef/stop", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stop of unknown job status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestEverySweepFamilyEndToEnd runs each of the eight sweep families
// (moldable included) through submit → stream → result at the smallest
// real size. The paper grids make table2/figure2/dfrs/tracesweep/moldable
// genuinely expensive even at 1×1, so this is the slow test of the
// package (~60s).
func TestEverySweepFamilyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-family pass sweeps four 120-cell paper grids")
	}
	ts, sched := newTestServer(t, t.TempDir())
	seen := map[string]bool{}
	for _, exp := range sweepreq.SweepExperiments() {
		req := sweepreq.Request{Exp: exp, Scenarios: 1, Trials: 1, Seed: 5}
		if exp == "tracesweep" {
			req.TraceLen = 300
		}
		sr, code := submit(t, ts, req)
		if code != http.StatusCreated {
			t.Fatalf("%s: submit status %d", exp, code)
		}
		if seen[sr.ID] {
			t.Fatalf("%s: config digest collides with another family", exp)
		}
		seen[sr.ID] = true
		evs := followEvents(t, ts, sr.ID)
		if len(evs) == 0 || evs[len(evs)-1].Type != "done" {
			t.Fatalf("%s: stream did not end in done: %+v", exp, evs)
		}
		res, code := getResult(t, ts, sr.ID)
		if code != http.StatusOK {
			t.Fatalf("%s: result status %d", exp, code)
		}
		if res.ResultDigest == "" || res.Instances == 0 || len(res.Overall) == 0 {
			t.Fatalf("%s: empty result %+v", exp, res)
		}
		if !strings.Contains(res.Format, "emct") {
			t.Fatalf("%s: formatted table does not rank the paper heuristics:\n%s", exp, res.Format)
		}
	}
	if n := sched.SweepsStarted(); n != int64(len(seen)) {
		t.Fatalf("SweepsStarted = %d, want %d", n, len(seen))
	}
}
