package main

// HTTP surface of the sweep service. The handler is a plain http.Handler
// over a jobs.Scheduler so the endpoint tests run it under httptest without
// a process boundary.
//
//	POST /jobs              submit a sweep (JSON sweepreq.Request)
//	GET  /jobs              list jobs
//	GET  /jobs/{id}         one job's status
//	GET  /jobs/{id}/events  event stream (SSE or NDJSON)
//	GET  /jobs/{id}/result  cached result of a done job
//	POST /jobs/{id}/stop    graceful stop (checkpoint + resumable)
//	GET  /healthz           liveness

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/jobs"
	"repro/internal/sweepreq"
)

// submitResponse answers POST /jobs: the job ID is the config digest, and
// started reports whether this submission actually launched sweep work
// (false = joined a live job or hit the result cache).
type submitResponse struct {
	ID      string     `json:"id"`
	Exp     string     `json:"exp"`
	State   jobs.State `json:"state"`
	Started bool       `json:"started"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func newServer(sched *jobs.Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req sweepreq.Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		job, started, err := sched.Submit(req)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, jobs.ErrShuttingDown) {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, err)
			return
		}
		code := http.StatusOK // joined or cache hit
		if started {
			code = http.StatusCreated
		}
		writeJSON(w, code, submitResponse{
			ID: job.Digest, Exp: job.Exp, State: job.State(), Started: started,
		})
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sched.List())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := sched.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})

	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		job, ok := sched.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
			return
		}
		streamEvents(w, r, job)
	})

	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		job, ok := sched.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
			return
		}
		if st := job.State(); st != jobs.StateDone {
			writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", job.Digest, st))
			return
		}
		if res, ok := job.Result(); ok {
			writeJSON(w, http.StatusOK, res)
			return
		}
		res, err := sched.Result(job.Digest)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("POST /jobs/{id}/stop", func(w http.ResponseWriter, r *http.Request) {
		if !sched.StopJob(r.PathValue("id")) {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": r.PathValue("id"), "stop": "requested"})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	return mux
}

// streamEvents replays and follows a job's event log until the terminal
// event or client disconnect. With `Accept: text/event-stream` the wire
// format is SSE (`event:`/`data:` frames); otherwise newline-delimited
// JSON, one Event per line — tail-able with curl alone.
func streamEvents(w http.ResponseWriter, r *http.Request, job *jobs.Job) {
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ch, cancel := job.Subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if sse {
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			} else {
				fmt.Fprintf(w, "%s\n", data)
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
