// Command volaserved serves the sweep experiments over HTTP: submit any
// sweep-family experiment as JSON, follow its progress and partial
// aggregates as an event stream, and fetch the finished table with its
// digest. Results are content-addressed by config digest, so identical
// submissions are served from cache, and running jobs checkpoint to disk —
// a restarted server resumes a resubmitted sweep from where it left off and
// still lands on a bit-identical result digest.
//
// Usage:
//
//	volaserved -addr :8080 -data ./volaserved-data
//
// See EXPERIMENTS.md ("Sweep as a service") for the endpoint walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "volaserved-data", "directory for checkpoints and cached results")
	maxJobs := flag.Int("max-jobs", 1, "sweeps running concurrently (each sweep is itself parallel)")
	every := flag.Int("checkpoint-every", 0, "checkpoint cadence in chunks (0 = library default)")
	partial := flag.Duration("partial-interval", 2*time.Second, "how often running jobs re-read their checkpoint to stream partial aggregates")
	resultsTTL := flag.Duration("results-ttl", 0, "evict cached results older than this (0 = keep forever; eviction never touches a job with an attached stream)")
	shutdownTimeout := flag.Duration("shutdown-timeout", time.Minute, "grace period for in-flight requests on SIGINT/SIGTERM")
	flag.Parse()

	if *every < 0 {
		fmt.Fprintf(os.Stderr, "volaserved: -checkpoint-every must be >= 0 (got %d)\n", *every)
		os.Exit(2)
	}
	if *resultsTTL < 0 {
		fmt.Fprintf(os.Stderr, "volaserved: -results-ttl must be >= 0 (got %v)\n", *resultsTTL)
		os.Exit(2)
	}
	sched, err := jobs.New(jobs.Options{
		DataDir:         *dataDir,
		MaxConcurrent:   *maxJobs,
		CheckpointEvery: *every,
		PartialInterval: *partial,
		ResultsTTL:      *resultsTTL,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "volaserved:", err)
		os.Exit(1)
	}

	// Boot auto-resume: jobs a previous process left unfinished (persisted
	// request, no cached result) restart from their checkpoints without
	// waiting for any client to resubmit them.
	if n, err := sched.ResumeInterrupted(); err != nil {
		fmt.Fprintln(os.Stderr, "volaserved: resume scan:", err)
	} else if n > 0 {
		fmt.Printf("volaserved: resumed %d interrupted job(s) from checkpoints\n", n)
	}

	srv := &http.Server{Addr: *addr, Handler: newServer(sched)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("volaserved: listening on %s (data: %s)\n", *addr, *dataDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "volaserved:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("volaserved: %v — checkpointing running jobs and draining\n", s)
	}

	// Stop sweeps first so their final checkpoints are committed, then
	// drain HTTP: event streams end with the jobs, so Shutdown converges.
	sched.Stop()
	ctx, cancelCtx := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancelCtx()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "volaserved: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("volaserved: stopped; interrupted jobs resume automatically at the next boot")
}
