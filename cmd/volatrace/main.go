// Command volatrace synthesizes, inspects and converts availability traces.
//
//	volatrace -gen -style weibull -p 20 -slots 10000 -out traces.vt
//	volatrace -stats traces.vt
//	volatrace -fit traces.vt
//
// Synthetic traces follow Failure-Trace-Archive-style semi-Markov processes
// (heavy-tailed sojourns); -fit estimates the 3-state Markov model a master
// would learn from each trace, reporting how far the memoryless assumption
// is from the truth.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicio"
	"repro/internal/avail"
	"repro/internal/expect"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	var (
		gen    = flag.Bool("gen", false, "generate synthetic traces")
		style  = flag.String("style", "weibull", "sojourn family: weibull|pareto|lognormal")
		p      = flag.Int("p", 20, "processors to generate")
		slots  = flag.Int("slots", 10000, "slots per trace")
		seed   = flag.Uint64("seed", 1, "generation seed")
		out    = flag.String("out", "", "output file for -gen (default stdout)")
		stats  = flag.String("stats", "", "print occupancy statistics of a trace file")
		fit    = flag.String("fit", "", "fit Markov models to a trace file")
		meanUp = flag.Float64("mean-up", 40, "target mean UP sojourn (slots)")
	)
	flag.Parse()

	switch {
	case *gen:
		generate(*style, *p, *slots, *seed, *out, *meanUp)
	case *stats != "":
		statsCmd(*stats)
	case *fit != "":
		fitCmd(*fit)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseStyle(s string) (trace.FTAStyle, error) {
	switch s {
	case "weibull":
		return trace.Weibull, nil
	case "pareto":
		return trace.Pareto, nil
	case "lognormal":
		return trace.LogNormal, nil
	default:
		return 0, fmt.Errorf("unknown style %q", s)
	}
}

func generate(styleName string, p, slots int, seed uint64, out string, meanUp float64) {
	style, err := parseStyle(styleName)
	fatal(err)
	r := rng.New(seed)
	set := &trace.Set{}
	for q := 0; q < p; q++ {
		proc, err := trace.NewSynthProcess(r.Split(), trace.SynthOptions{Style: style, MeanUp: meanUp})
		fatal(err)
		set.Vectors = append(set.Vectors, avail.Record(proc, slots))
	}
	if out == "" {
		fatal(set.Write(os.Stdout))
		return
	}
	fatal(atomicio.WriteFile(out, func(w io.Writer) error { return set.Write(w) }))
	fmt.Fprintf(os.Stderr, "wrote %d traces of %d slots (%s) to %s\n", p, slots, styleName, out)
}

func load(path string) *trace.Set {
	f, err := os.Open(path)
	fatal(err)
	defer f.Close()
	set, err := trace.Read(f)
	fatal(err)
	return set
}

func statsCmd(path string) {
	set := load(path)
	tb := report.NewTable("proc", "piU", "piR", "piD", "crashes", "reclaims")
	for q, v := range set.Vectors {
		piU, piR, piD := trace.EmpiricalStationary(v)
		crashes, reclaims := 0, 0
		for i := 1; i < len(v); i++ {
			if v[i] == avail.Down && v[i-1] != avail.Down {
				crashes++
			}
			if v[i] == avail.Reclaimed && v[i-1] == avail.Up {
				reclaims++
			}
		}
		tb.AddRow(fmt.Sprintf("%d", q),
			fmt.Sprintf("%.3f", piU), fmt.Sprintf("%.3f", piR), fmt.Sprintf("%.3f", piD),
			fmt.Sprintf("%d", crashes), fmt.Sprintf("%d", reclaims))
	}
	fmt.Printf("%s: %d traces × %d slots\n", path, len(set.Vectors), set.Len())
	fmt.Print(tb.String())
}

func fitCmd(path string) {
	set := load(path)
	tb := report.NewTable("proc", "P(u,u)", "P(u,d)", "P+", "E(up)", "empirical piU", "model piU")
	for q, v := range set.Vectors {
		m, err := trace.FitMarkov3(v)
		fatal(err)
		piU, _, _ := m.Stationary()
		empU, _, _ := trace.EmpiricalStationary(v)
		tb.AddRow(fmt.Sprintf("%d", q),
			fmt.Sprintf("%.4f", m.P(avail.Up, avail.Up)),
			fmt.Sprintf("%.4f", m.P(avail.Up, avail.Down)),
			fmt.Sprintf("%.4f", expect.PPlus(m)),
			fmt.Sprintf("%.2f", expect.ExpectedUpStep(m)),
			fmt.Sprintf("%.3f", empU),
			fmt.Sprintf("%.3f", piU))
	}
	fmt.Print(tb.String())
	fmt.Println("\nmodel piU matching empirical piU means the fitted chain reproduces")
	fmt.Println("occupancy; heavy-tailed sojourns still break its *dynamics* (the")
	fmt.Println("memoryless assumption), which is what the tracedriven example probes.")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "volatrace:", err)
		os.Exit(1)
	}
}
