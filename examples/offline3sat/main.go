// Offline3sat: a walk through the off-line theory of Section 4.
//
// It (1) builds the 3SAT → Off-Line reduction for a small formula and shows
// that schedulability within N slots tracks satisfiability (Theorem 1);
// (2) converts a 3-state availability matrix with DOWN slots into the
// equivalent 2-state instance (the DOWN-splitting argument); and (3)
// demonstrates Proposition 2: greedy MCT is optimal without the bandwidth
// bound, and stops being optimal the moment ncom is finite.
package main

import (
	"fmt"
	"log"

	"repro/internal/avail"
	"repro/internal/offline"
)

func main() {
	part1Reduction()
	part2DownSplitting()
	part3MCTOptimality()
}

func part1Reduction() {
	fmt.Println("--- Theorem 1: 3SAT reduces to Off-Line scheduling ---")
	sat := &offline.CNF{NumVars: 3, Clauses: []offline.Clause{
		{1, 2, 3}, {-1, -2, 3}, {1, -3, 2},
	}}
	// The reduction of Theorem 1 applies to any CNF; the minimal
	// unsatisfiable 2-variable formula keeps the exact search tractable.
	unsat := &offline.CNF{NumVars: 2, Clauses: []offline.Clause{
		{1, 2}, {-1, 2}, {1, -2}, {-1, -2},
	}}
	for _, tc := range []struct {
		name string
		f    *offline.CNF
	}{{"satisfiable", sat}, {"unsatisfiable", unsat}} {
		in, err := offline.FromCNF(tc.f)
		fatal(err)
		makespan, err := offline.ExactSearchLimit(in, 1_000_000)
		fatal(err)
		_, isSat := tc.f.Solve()
		fmt.Printf("%s formula (%d clauses): DPLL says SAT=%v; exact solver: ",
			tc.name, len(tc.f.Clauses), isSat)
		if makespan > 0 {
			fmt.Printf("schedulable in %d ≤ N=%d slots\n", makespan, in.N())
		} else {
			fmt.Printf("NOT schedulable within N=%d slots\n", in.N())
		}
	}
	fmt.Println()
}

func part2DownSplitting() {
	fmt.Println("--- Section 4: removing DOWN states by splitting ---")
	v, err := avail.ParseVector("uuduuudu")
	fatal(err)
	fmt.Printf("3-state vector:  %s\n", v)
	in, err := offline.SplitDowns([]avail.Vector{v}, []int{1}, 1, 1, 1, 2)
	fatal(err)
	fmt.Printf("2-state pieces (%d processors):\n", in.P())
	for q, seg := range in.Vectors {
		fmt.Printf("  segment %d:     %s\n", q, seg)
	}
	fmt.Println("each DOWN-free segment acts as an independent processor because a")
	fmt.Println("crash loses program, data and partial work anyway.")
	fmt.Println()
}

func part3MCTOptimality() {
	fmt.Println("--- Proposition 2: MCT and the bandwidth bound ---")
	// Without the bound, greedy MCT is provably optimal.
	v1, _ := avail.ParseVector("uuuuuuuuuuuuuuu")
	v2, _ := avail.ParseVector("ruruuuuuruuuuuu")
	free := &offline.Instance{
		Vectors: []avail.Vector{v1, v2},
		W:       []int{2, 1}, Tprog: 2, Tdata: 1,
		Ncom: offline.NoContention, M: 4,
	}
	alloc, mct, err := offline.MCTNoContention(free)
	fatal(err)
	opt, err := offline.OptimalNoContention(free)
	fatal(err)
	fmt.Printf("ncom=∞: MCT allocation %v, makespan %d; exhaustive optimum %d (equal: %v)\n",
		alloc, mct, opt, mct == opt)

	// With ncom=1, the paper's counterexample defeats the greedy choice.
	s1, _ := avail.ParseVector("uuuuuurrr")
	s2, _ := avail.ParseVector("ruuuuuuuu")
	bounded := &offline.Instance{
		Vectors: []avail.Vector{s1, s2},
		W:       []int{2, 2}, Tprog: 2, Tdata: 2, Ncom: 1, M: 2,
	}
	exact, err := offline.ExactSearch(bounded)
	fatal(err)
	fmt.Printf("ncom=1 counterexample: exact optimum %d slots; greedily serving the\n", exact)
	fmt.Println("immediately-available processor first cannot finish both tasks at all")
	fmt.Println("— the bandwidth bound is what makes the problem NP-hard.")
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
