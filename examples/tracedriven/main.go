// Tracedriven: challenging the Markov assumption (the paper's future-work
// direction, Section 8).
//
// The informed heuristics derive their scores from a 3-state Markov model of
// each processor. Real desktop-grid availability is not Markovian: measured
// UP/RECLAIMED/DOWN sojourns follow heavy-tailed distributions. This example
// synthesizes Failure-Trace-Archive-style availability (Weibull, Pareto and
// log-normal sojourns), fits Markov models to the recorded traces — exactly
// what a master estimating behaviour from history would do — and replays the
// heuristics on the traces via the public RunTrace API.
//
// The qualitative outcome mirrors the paper's expectation: the informed
// heuristics still beat random selection, but their edge over plain MCT
// narrows when the memoryless model misdescribes the platform.
package main

import (
	"fmt"
	"log"
	"os"

	volatile "repro"
	"repro/internal/avail"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	const (
		processors = 12
		horizon    = 60_000 // slots of recorded trace per processor
		trials     = 8
	)
	heuristics := []string{"mct", "emct", "ud", "lw", "random", "random2w"}

	for _, style := range []trace.FTAStyle{trace.Weibull, trace.Pareto, trace.LogNormal} {
		fmt.Printf("=== %s sojourns (synthetic FTA-style availability) ===\n", style)

		totals := map[string]float64{}
		wins := map[string]int{}
		for trial := 0; trial < trials; trial++ {
			r := rng.New(1000*uint64(style) + uint64(trial))

			// Record one trace per processor.
			vectors := make([]string, processors)
			for q := 0; q < processors; q++ {
				proc, err := trace.NewSynthProcess(r.Split(), trace.SynthOptions{Style: style})
				if err != nil {
					log.Fatal(err)
				}
				vectors[q] = avail.Record(proc, horizon).String()
			}

			// The scenario provides speeds and run parameters; RunTrace
			// replaces its availability with the recorded vectors and fits
			// per-processor Markov models from them.
			scn := volatile.NewScenario(500+uint64(trial),
				volatile.Cell{Tasks: 12, Ncom: 6, Wmin: 4},
				volatile.ScenarioOptions{Processors: processors})

			makespans := map[string]int{}
			best := 0
			for _, h := range heuristics {
				res, err := scn.RunTrace(h, uint64(trial), vectors)
				if err != nil {
					log.Fatal(err)
				}
				if !res.Completed {
					fmt.Fprintf(os.Stderr, "warning: %s censored on trial %d\n", h, trial)
				}
				makespans[h] = res.Makespan
				if best == 0 || res.Makespan < best {
					best = res.Makespan
				}
			}
			for h, ms := range makespans {
				totals[h] += 100 * float64(ms-best) / float64(best)
				if ms == best {
					wins[h]++
				}
			}
		}

		tb := report.NewTable("heuristic", "avg dfb (%)", "wins")
		for _, h := range heuristics {
			tb.AddRow(h, fmt.Sprintf("%.2f", totals[h]/trials), fmt.Sprintf("%d", wins[h]))
		}
		fmt.Print(tb.String())
		fmt.Println()
	}

	fmt.Println("Markov models are fitted from each trace (transition counting with")
	fmt.Println("smoothing); the heuristics consume those beliefs while the actual")
	fmt.Println("availability follows the heavy-tailed generators.")
}
