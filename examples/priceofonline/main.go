// Priceofonline: how far are the on-line heuristics from a certified
// optimum?
//
// The paper proves the off-line problem NP-hard, but its relaxation to
// unbounded master bandwidth is solvable exactly (Proposition 2: greedy MCT
// is optimal when ncom = ∞). Combining that with the DOWN-splitting argument
// of Section 4 yields a *certified lower bound* on any schedule's makespan
// for a fixed availability realization:
//
//	bound = MCT∞( SplitDowns(recorded vectors) )  ≤  OPT  ≤  online makespan.
//
// This example records availability realizations, replays the on-line
// heuristics on them (single iteration), and reports each heuristic's
// multiplicative gap to the bound — the combined price of on-line decision
// making and of the bandwidth constraint.
package main

import (
	"fmt"
	"log"

	volatile "repro"
	"repro/internal/avail"
	"repro/internal/offline"
	"repro/internal/report"
	"repro/internal/rng"
)

func main() {
	const (
		processors = 10
		horizon    = 20000
		trials     = 25
	)
	heuristics := []string{"emct*", "emct", "mct", "ud", "lw", "random"}

	gaps := map[string][]float64{}
	master := rng.New(31)
	used := 0
	for trial := 0; trial < trials; trial++ {
		scn := volatile.NewScenario(master.Uint64(),
			volatile.Cell{Tasks: 8, Ncom: 3, Wmin: 2},
			volatile.ScenarioOptions{Processors: processors, Iterations: 1})

		// One fixed availability realization for this trial.
		vecRng := rng.New(master.Uint64())
		vectors := make([]avail.Vector, processors)
		specs := make([]string, processors)
		speeds := make([]int, processors)
		for i := 0; i < processors; i++ {
			stream := vecRng.Split()
			// Use the scenario's own per-processor models to draw the truth.
			vectors[i] = avail.Record(
				modelProcess(scn, i, stream), horizon)
			specs[i] = vectors[i].String()
			speeds[i] = speedOf(scn, i)
		}

		prm := scn.Params()
		in, err := offline.SplitDowns(vectors, speeds, prm.Tprog, prm.Tdata,
			offline.NoContention, prm.M)
		if err != nil {
			log.Fatal(err)
		}
		_, bound, err := offline.MCTNoContention(in)
		if err != nil {
			log.Fatal(err)
		}
		if bound <= 0 {
			continue // realization too hostile even for the relaxed optimum
		}
		used++
		for _, h := range heuristics {
			res, err := scn.RunTrace(h, uint64(trial), specs)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Completed {
				continue
			}
			gaps[h] = append(gaps[h], float64(res.Makespan)/float64(bound))
		}
	}

	fmt.Printf("price of on-line scheduling: %d realizations, 8 tasks, ncom=3\n", used)
	fmt.Println("gap = online makespan / certified lower bound (MCT∞ on split vectors)")
	fmt.Println()
	tb := report.NewTable("heuristic", "mean gap", "min", "max", "runs")
	for _, h := range heuristics {
		g := gaps[h]
		if len(g) == 0 {
			continue
		}
		min, max := g[0], g[0]
		var sum float64
		for _, v := range g {
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		tb.AddRow(h, fmt.Sprintf("%.2f×", sum/float64(len(g))),
			fmt.Sprintf("%.2f×", min), fmt.Sprintf("%.2f×", max),
			fmt.Sprintf("%d", len(g)))
	}
	fmt.Print(tb.String())
	fmt.Println("\nthe bound relaxes BOTH clairvoyance and the bandwidth cap, so even an")
	fmt.Println("optimal on-line scheduler could not reach 1.00×; tighter gaps still")
	fmt.Println("separate the informed heuristics from random selection.")
}

// modelProcess draws the true availability trajectory of processor i from
// the scenario's Markov model.
func modelProcess(scn *volatile.Scenario, i int, r *rng.PCG) avail.Process {
	return scn.ProcessorModel(i).NewProcess(r, avail.Up)
}

// speedOf reads processor i's speed.
func speedOf(scn *volatile.Scenario, i int) int {
	return scn.ProcessorSpeed(i)
}
